// The paper's §3.1 walk-through on its Figure 1 echo program: shows the
// exact feasible path count, how state merging changes what the engine
// completes, and the multiplicity estimator against the exact-path census.
//
// The run mirrors the discussion in the paper:
//   - without merging, paths grow exponentially in the argument length;
//   - QCE identifies `arg` as hot (merging states with different concrete
//     arg values would make later loop bounds and array indices symbolic)
//     but leaves `r` cold (used once, at the very end), so the "-n" states
//     merge exactly as §3.1 recommends;
//   - the shadow census confirms merging loses no feasible paths.
package main

import (
	"fmt"
	"log"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

func main() {
	tool, err := coreutils.Get("echo")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("echo with N=2 symbolic args of up to L=2 chars (paper §3.1)")
	fmt.Println()

	base := symx.Run(prog, symx.Config{NArgs: 2, ArgLen: 2, Merge: symx.MergeNone})
	fmt.Printf("no merging:  %4d paths explored one by one (%d solver queries)\n",
		base.Stats.PathsCompleted, base.Stats.Solver.Queries)

	ssm := symx.Run(prog, symx.Config{
		NArgs: 2, ArgLen: 2,
		Merge: symx.MergeSSM, UseQCE: true,
		TrackExactPaths: true,
	})
	fmt.Printf("ssm + qce:   %4d states completed after %d merges,\n",
		ssm.Stats.PathsCompleted, ssm.Stats.Merges)
	fmt.Printf("             multiplicity %s covers the census of %d exact paths\n",
		ssm.Stats.PathsMult, ssm.Stats.ExactPaths)

	dsm := symx.Run(prog, symx.Config{
		NArgs: 2, ArgLen: 2,
		Merge: symx.MergeDSM, UseQCE: true,
		Strategy: symx.StrategyRandom, Seed: 7,
	})
	fmt.Printf("dsm + qce:   %4d states completed, %d merges, %d fast-forward picks\n",
		dsm.Stats.PathsCompleted, dsm.Stats.Merges, dsm.Stats.FFSelected)

	fmt.Println()
	fmt.Println("why the '-n' states merge (paper's worked example, α=0.5):")
	fmt.Println("  at the outer loop header, Qadd(arg) > α·Qt  -> arg is hot:")
	fmt.Println("  states may merge only when arg is equal or already symbolic;")
	fmt.Println("  Qadd(r) « α·Qt -> r is cold: r = ite(C,0,1) is a cheap merge.")
}
