// Summaries: the function-summary point in the paper's design space (§2.2,
// "Compositionality"). Precise symbolic function summaries merge all of a
// callee's intraprocedural paths when the call returns; the caller then
// continues with a single summarized state whose values carry ite
// expressions instead of one state per callee path.
//
// This example explores a flag parser that funnels every argument character
// through a branching classifier. It contrasts four regimes:
//
//	none            every callee path forks the caller (plain inlining)
//	func            merge everything at function exits (full summaries)
//	func+qce        summaries gated by query count estimation
//	ssm+qce         merging allowed at every join point, QCE-gated
//
// The paper's observation (§2.2) is visible in the printed stats: summaries
// cut the state count, but the summarized values turn later branch
// conditions into solver queries, so the query counter grows relative to the
// state reduction. QCE's job is to keep only the merges whose savings win.
package main

import (
	"fmt"
	"log"

	"symmerge/symx"
)

const src = `
// classify buckets one option character; its four return paths are the
// summary candidates.
int classify(byte c) {
    if (c == 'v') { return 1; } // verbose
    if (c == 'q') { return 2; } // quiet
    if (c >= '0' && c <= '9') { return 3; } // numeric level
    return 0; // unknown
}

void main() {
    int verbose = 0;
    int quiet = 0;
    int level = 0;
    int bad = 0;
    for (int arg = 1; arg < argc(); arg++) {
        if (argchar(arg, 0) != '-') { bad++; continue; }
        for (int i = 1; argchar(arg, i) != 0; i++) {
            int k = classify(argchar(arg, i));
            if (k == 1) { verbose++; }
            else if (k == 2) { quiet++; }
            else if (k == 3) { level = level * 10 + toint(argchar(arg, i) - '0'); }
            else { bad++; }
        }
    }
    if (bad > 0) { putchar('?'); halt(1); }
    if (verbose > 0 && quiet > 0) { putchar('!'); halt(1); }
    if (level > 99) { putchar('#'); halt(1); }
    putchar('.');
    halt(0);
}
`

func main() {
	prog, err := symx.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		cfg  symx.Config
	}{
		{"none    ", symx.Config{Merge: symx.MergeNone}},
		{"func    ", symx.Config{Merge: symx.MergeFunc}},
		{"func+qce", symx.Config{Merge: symx.MergeFunc, UseQCE: true}},
		{"ssm+qce ", symx.Config{Merge: symx.MergeSSM, UseQCE: true}},
	}
	fmt.Println("regime    states  paths   merges  queries  time")
	for _, c := range configs {
		c.cfg.NArgs = 2
		c.cfg.ArgLen = 3
		c.cfg.Seed = 1
		res := symx.Run(prog, c.cfg)
		if !res.Completed {
			log.Fatalf("%s: exploration did not complete", c.name)
		}
		fmt.Printf("%s  %-6d  %-6s  %-6d  %-7d  %.3fs\n",
			c.name, res.Stats.PathsCompleted, res.Stats.PathsMult,
			res.Stats.Merges, res.Stats.Solver.Queries,
			res.Stats.ElapsedSeconds)
	}
}
