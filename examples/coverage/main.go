// Coverage-guided incomplete exploration (the paper's §5.5 scenario): with
// a short time budget and inputs far too large to exhaust, static state
// merging stalls the coverage-guided heuristic by forcing topological
// exploration order, while dynamic state merging preserves its coverage and
// still merges heavily.
package main

import (
	"fmt"
	"log"
	"time"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

func main() {
	fmt.Println("coverage after a 1s budget on oversized inputs (statement %):")
	fmt.Println()
	fmt.Printf("%-10s %8s %8s %8s\n", "tool", "base", "ssm", "dsm")
	for _, name := range []string{"cksum", "wc", "nice", "cat", "sleep"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := tool.Compile()
		if err != nil {
			log.Fatal(err)
		}
		run := func(mode symx.MergeMode, strat symx.Strategy) float64 {
			cfg := tool.BaseConfig()
			if tool.UsesStdin {
				cfg.StdinLen += 24
			} else {
				cfg.ArgLen += 24
			}
			cfg.Merge = mode
			cfg.UseQCE = mode != symx.MergeNone
			cfg.Strategy = strat
			cfg.MaxTime = time.Second
			cfg.Seed = 3
			return symx.Run(prog, cfg).Stats.Coverage()
		}
		base := run(symx.MergeNone, symx.StrategyCoverage)
		ssm := run(symx.MergeSSM, symx.StrategyTopo)
		dsm := run(symx.MergeDSM, symx.StrategyCoverage)
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%%\n",
			name, 100*base, 100*ssm, 100*dsm)
	}
	fmt.Println()
	fmt.Println("dsm rides the driving heuristic (coverage ≈ base); ssm's forced")
	fmt.Println("topological order can starve uncovered code (paper Figure 8).")
}
