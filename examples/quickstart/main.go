// Quickstart: compile a tiny MiniC program and explore it three ways —
// plain symbolic execution, static state merging, and dynamic state merging
// — printing path counts and solver effort for each.
package main

import (
	"fmt"
	"log"

	"symmerge/symx"
)

// A toy password check: a 4-byte symbolic argument is validated character
// by character, then post-processed. Plain symbolic execution explores one
// path per prefix; merging collapses the independent checks.
const src = `
void main() {
    int score = 0;
    for (int i = 0; i < 4; i++) {
        byte c = argchar(1, i);
        if (c >= 'a' && c <= 'z') {
            score++;
        }
    }
    if (score == 4) {
        putchar('O');
        putchar('K');
    } else {
        putchar('n');
        putchar('o');
    }
    putchar('\n');
}
`

func main() {
	prog, err := symx.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		cfg  symx.Config
	}{
		{"plain  ", symx.Config{Merge: symx.MergeNone}},
		{"ssm+qce", symx.Config{Merge: symx.MergeSSM, UseQCE: true}},
		{"dsm+qce", symx.Config{Merge: symx.MergeDSM, UseQCE: true}},
	}
	for _, c := range configs {
		c.cfg.NArgs = 1
		c.cfg.ArgLen = 4
		res := symx.Run(prog, c.cfg)
		fmt.Printf("%s  paths=%-6s states=%-4d merges=%-3d queries=%-4d time=%.3fs\n",
			c.name, res.Stats.PathsMult, res.Stats.PathsCompleted,
			res.Stats.Merges, res.Stats.Solver.Queries, res.Stats.ElapsedSeconds)
	}
}
