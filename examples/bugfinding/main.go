// Bug finding: symbolic execution as a test generator. The program under
// test parses a record from symbolic stdin into a fixed buffer with an
// off-by-one bound and then asserts a checksum invariant that does not hold
// for every input. The engine finds both bugs and emits concrete inputs
// reproducing them.
package main

import (
	"fmt"
	"log"

	"symmerge/symx"
)

const src = `
// Parse "<len><payload>" from stdin into buf, then verify a checksum.
void main() {
    byte buf[4];
    int n = stdinlen();
    if (n < 1) {
        halt(0);
    }
    int want = toint(stdinchar(0)) % 6; // BUG 1: can be 4 or 5, buf holds 4
    int sum = 0;
    for (int i = 0; i < want && i + 1 < n; i++) {
        byte c = stdinchar(i + 1);
        buf[i] = c;             // out-of-bounds write when want > 4
        sum = sum + toint(c);
    }
    // BUG 2: the "invariant" that payloads never sum to zero is wrong for
    // empty payloads and all-zero payloads.
    if (want > 0) {
        assert(sum != 0);
    }
    putchar('o');
    putchar('k');
}
`

func main() {
	prog, err := symx.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res := symx.Run(prog, symx.Config{
		StdinLen:     6,
		Merge:        symx.MergeNone,
		CheckBounds:  true, // out-of-bounds accesses become path errors
		CollectTests: true,
	})

	fmt.Printf("explored %d paths, found %d error paths\n\n",
		res.Stats.PathsCompleted, res.Stats.ErrorsFound)
	for i, e := range res.Errors {
		fmt.Printf("bug %d: %s at source %s\n", i+1, e.Msg, e.Pos)
	}
	fmt.Println()
	for _, tc := range res.Tests {
		if tc.IsErr {
			fmt.Printf("reproducer: stdin=%v -> %s\n", tc.Stdin, tc.Msg)
		}
	}
}
