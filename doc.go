// Package symmerge reproduces "Efficient State Merging in Symbolic
// Execution" (Kuznetsov, Kinder, Bucur, Candea; PLDI 2012) as a
// self-contained Go library.
//
// The public API lives in symmerge/symx (compile MiniC programs, explore
// them symbolically with configurable state merging). The evaluation
// harness regenerating the paper's figures lives in cmd/paperbench; the
// benchmark entry points are in bench_test.go at the module root.
//
// See README.md for the package tour and the architecture notes on the
// incremental solver sessions that back the engine's feasibility queries
// and on the parallel exploration subsystem (symx.Config.Workers) that
// shards the symbolic frontier across worker goroutines.
package symmerge
