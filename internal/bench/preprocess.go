// preprocess.go: the PR-3 benchmark — the solver's preprocessing-pass
// pipeline (simplify → equality substitution → independence slicing over
// canonical n-ary constraints) ablated on vs off across the COREUTILS
// suite, with the machine-readable BENCH_pr3.json report cmd/paperbench
// writes for the bench trajectory.

package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

// Report is the top-level machine-readable benchmark artifact
// (BENCH_pr3.json). The schema is documented in README.md.
type Report struct {
	Schema  string       `json:"schema"` // "symmerge-paperbench/v1"
	Figures []JSONFigure `json:"figures"`
}

// JSONFigure is one figure's machine-readable form: per-arm aggregates
// plus the per-tool rows behind them. Solver-centric figures fill Rows;
// the corpus figure fills CorpusRows (see corpus.go / BENCH_pr4.json); the
// observability figure fills ObsRows and Metrics (obs.go / BENCH_pr7.json);
// the summary-cache figure fills SummaryRows (summaries.go / BENCH_pr8.json);
// the persistent-store figure fills DaemonRows (daemon.go / BENCH_pr9.json).
type JSONFigure struct {
	Name        string           `json:"name"`
	Notes       string           `json:"notes,omitempty"`
	Arms        []JSONArm        `json:"arms,omitempty"`
	Rows        []JSONRow        `json:"rows,omitempty"`
	CorpusRows  []JSONCorpusRow  `json:"corpus_rows,omitempty"`
	ObsRows     []JSONObsRow     `json:"obs_rows,omitempty"`
	SummaryRows []JSONSummaryRow `json:"summary_rows,omitempty"`
	DaemonRows  []JSONDaemonRow  `json:"daemon_rows,omitempty"`
	// AnalysisRows carries the static-analysis figure (analysis.go /
	// BENCH_pr10.json).
	AnalysisRows []JSONAnalysisRow `json:"analysis_rows,omitempty"`
	Metrics      *symx.MetricsSnap `json:"metrics,omitempty"`
}

// JSONArm aggregates one configuration arm over the completed rows.
type JSONArm struct {
	Name        string  `json:"name"`
	Tools       int     `json:"tools"` // completed runs aggregated
	MeanWallS   float64 `json:"mean_wall_s"`
	MedianWallS float64 `json:"median_wall_s"`
	Queries     uint64  `json:"queries"`
	SATCalls    uint64  `json:"sat_calls"`
	SATVars     uint64  `json:"sat_vars"`
	SATClauses  uint64  `json:"sat_clauses"`
}

// JSONRow is one (tool, arm) measurement.
type JSONRow struct {
	Tool        string  `json:"tool"`
	Arm         string  `json:"arm"`
	Completed   bool    `json:"completed"`
	WallS       float64 `json:"wall_s"`
	Queries     uint64  `json:"queries"`
	SATCalls    uint64  `json:"sat_calls"`
	SATVars     uint64  `json:"sat_vars"`
	SATClauses  uint64  `json:"sat_clauses"`
	Paths       string  `json:"paths"`
	CoveragePct float64 `json:"coverage_pct"`
	// Identical is set on "on"-arm rows: paths-multiplicity, coverage and
	// the error set match the "off" arm bit-for-bit (the correctness
	// invariant of a semantics-preserving pipeline).
	Identical *bool `json:"identical,omitempty"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// PreprocessFigure runs the preprocessing ablation: every COREUTILS tool
// explores under SSM+QCE — the merged-state regime whose ite-heavy
// disjunctions the pipeline exists to digest — once with the pipeline off
// and once on, and the table reports wall time, per-query SAT encoding
// size (variables + clauses), and a result-identity check. Sessions are
// disabled in both arms so every query takes the one-shot path the
// pipeline preprocesses; per-query numbers then measure the encoding the
// pipeline actually produced rather than session-reuse deltas.
func PreprocessFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Preprocessing pipeline: simplify + subst-eq + slice over n-ary constraints, on vs off",
		Comment: fmt.Sprintf("timeout %v per run; SSM+QCE, sessions off (every query one-shot); enc/q = (SAT vars+clauses)/query",
			opts.Timeout),
		Header: []string{"tool", "t_off_s", "t_on_s", "speedup",
			"enc/q_off", "enc/q_on", "shrink", "identical"},
	}
	fig := JSONFigure{
		Name: "preprocess",
		Notes: "SSM+QCE over the COREUTILS suite; sessions disabled so every query takes the one-shot " +
			"preprocessing path; identical = paths-multiplicity, coverage and error set match the off arm",
	}

	type arm struct {
		wall           []float64 // completed runs only
		queries, calls uint64
		vars, clauses  uint64
	}
	var on, off arm
	timeouts, mismatches := 0, 0

	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		run := func(spec string) *symx.Result {
			cfg := tool.BaseConfig()
			grow(tool, &cfg, 2)
			cfg.Seed = opts.Seed
			cfg.Workers = opts.Workers
			cfg.Merge = symx.MergeSSM
			cfg.UseQCE = true
			cfg.MaxTime = opts.Timeout
			cfg.DisableSessions = true
			cfg.Preprocess = spec
			return symx.Run(p, cfg)
		}
		resOff := run("off")
		resOn := run("on")

		row := func(arm string, res *symx.Result) JSONRow {
			return JSONRow{
				Tool:        tool.Name,
				Arm:         arm,
				Completed:   res.Completed,
				WallS:       res.Stats.ElapsedSeconds,
				Queries:     res.Stats.Solver.Queries,
				SATCalls:    res.Stats.Solver.SATCalls,
				SATVars:     res.Stats.Solver.SATVars,
				SATClauses:  res.Stats.Solver.SATClauses,
				Paths:       res.Stats.PathsMult.String(),
				CoveragePct: 100 * res.Stats.Coverage(),
			}
		}
		jOff, jOn := row("off", resOff), row("on", resOn)

		if !resOff.Completed || !resOn.Completed {
			timeouts++
			fig.Rows = append(fig.Rows, jOff, jOn)
			t.Rows = append(t.Rows, []string{tool.Name, wallOrTimeout(resOff), wallOrTimeout(resOn),
				"-", "-", "-", "-", "-"})
			continue
		}

		same := sameResult(resOff, resOn)
		jOn.Identical = &same
		if !same {
			mismatches++
		}
		fig.Rows = append(fig.Rows, jOff, jOn)

		encOff := encPerQuery(resOff)
		encOn := encPerQuery(resOn)
		off.wall = append(off.wall, resOff.Stats.ElapsedSeconds)
		on.wall = append(on.wall, resOn.Stats.ElapsedSeconds)
		off.queries += resOff.Stats.Solver.Queries
		on.queries += resOn.Stats.Solver.Queries
		off.calls += resOff.Stats.Solver.SATCalls
		on.calls += resOn.Stats.Solver.SATCalls
		off.vars += resOff.Stats.Solver.SATVars
		on.vars += resOn.Stats.Solver.SATVars
		off.clauses += resOff.Stats.Solver.SATClauses
		on.clauses += resOn.Stats.Solver.SATClauses

		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.3f", resOff.Stats.ElapsedSeconds),
			fmt.Sprintf("%.3f", resOn.Stats.ElapsedSeconds),
			fmt.Sprintf("%.2f", resOff.Stats.ElapsedSeconds/math.Max(resOn.Stats.ElapsedSeconds, 1e-6)),
			fmt.Sprintf("%.0f", encOff),
			fmt.Sprintf("%.0f", encOn),
			fmt.Sprintf("%.0f%%", 100*(1-safeRatio(encOn, encOff))),
			fmt.Sprint(same),
		})
	}

	mkArm := func(name string, a arm) JSONArm {
		return JSONArm{
			Name:        name,
			Tools:       len(a.wall),
			MeanWallS:   mean(a.wall),
			MedianWallS: median(a.wall),
			Queries:     a.queries,
			SATCalls:    a.calls,
			SATVars:     a.vars,
			SATClauses:  a.clauses,
		}
	}
	fig.Arms = []JSONArm{mkArm("off", off), mkArm("on", on)}

	encOffTotal := safePerQuery(off.vars+off.clauses, off.queries)
	encOnTotal := safePerQuery(on.vars+on.clauses, on.queries)
	t.Comment += fmt.Sprintf(
		"\nsuite aggregate: enc/q %.0f (off) -> %.0f (on), %.0f%% smaller; wall mean %.3fs -> %.3fs, median %.3fs -> %.3fs"+
			"\n%d tools aggregated (%d timed-out rows excluded, %d result mismatches)",
		encOffTotal, encOnTotal, 100*(1-safeRatio(encOnTotal, encOffTotal)),
		mean(off.wall), mean(on.wall), median(off.wall), median(on.wall),
		len(on.wall), timeouts, mismatches)
	return t, fig
}

// sameResult checks the ablation's correctness invariant: identical
// paths-multiplicity, coverage, and error set.
func sameResult(a, b *symx.Result) bool {
	if a.Stats.PathsMult.Cmp(b.Stats.PathsMult) != 0 ||
		a.Stats.CoveredInstrs != b.Stats.CoveredInstrs {
		return false
	}
	es := func(r *symx.Result) map[string]bool {
		out := map[string]bool{}
		for _, e := range r.Errors {
			out[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
		}
		return out
	}
	ea, eb := es(a), es(b)
	if len(ea) != len(eb) {
		return false
	}
	for k := range ea {
		if !eb[k] {
			return false
		}
	}
	return true
}

func wallOrTimeout(r *symx.Result) string {
	if !r.Completed {
		return "timeout"
	}
	return fmt.Sprintf("%.3f", r.Stats.ElapsedSeconds)
}

// encPerQuery is the figure's headline metric: SAT variables plus clauses
// emitted per top-level query.
func encPerQuery(r *symx.Result) float64 {
	return safePerQuery(r.Stats.Solver.SATVars+r.Stats.Solver.SATClauses, r.Stats.Solver.Queries)
}

func safePerQuery(total, queries uint64) float64 {
	if queries == 0 {
		return 0
	}
	return float64(total) / float64(queries)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
