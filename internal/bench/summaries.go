// summaries.go: the PR-8 benchmark — compositional function summaries
// measured over the COREUTILS suite. Two contracts: (1) summaries are pure
// acceleration (the emitted canonical corpus and the exact-path census are
// byte-identical with the cache on or off), and (2) they pay for themselves
// (suite wall-clock speedup under SSM+QCE once the shared cache lets every
// later call site of a helper closure skip re-exploring it). The on arm
// shares ONE summary domain across all tools, so the figure also exercises
// cross-tool reuse of the suite's common helper library.

package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

// JSONSummaryRow is one tool's summary-cache measurement in BENCH_pr8.json.
type JSONSummaryRow struct {
	Tool      string  `json:"tool"`
	Completed bool    `json:"completed"`
	OffWallS  float64 `json:"off_wall_s"`
	OnWallS   float64 `json:"on_wall_s"`
	// Speedup is off/on wall clock; set only on completed pairs.
	Speedup float64 `json:"speedup"`
	// Summary-cache activity of the on arm's timed run.
	Hits           uint64 `json:"summary_hits"`
	Records        uint64 `json:"summary_records"`
	Rejects        uint64 `json:"summary_rejects"`
	EntriesApplied uint64 `json:"summary_entries"`
	SummaryQueries uint64 `json:"summary_queries"`
	QueriesOff     uint64 `json:"queries_off"`
	QueriesOn      uint64 `json:"queries_on"`
	// DigestsEqual is the corpus contract: the canonical corpus directory
	// digest of the summary run equals the inline run's, byte for byte.
	DigestsEqual bool `json:"digests_equal"`
	// CensusEqual is the census contract: the exact-path count, coverage
	// and error set of the parity arms match.
	CensusEqual bool `json:"census_equal"`
}

// SummariesFigure measures compositional function summaries on every
// COREUTILS tool under SSM+QCE. Each tool runs two timed arms on a grown
// input (summaries off vs on, the on arm against one suite-wide shared
// domain), then two parity arms at the corpus shapes with canonical-test
// emission and the exact-path census, whose corpus digests and census
// numbers must match.
func SummariesFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Compositional function summaries: SSM+QCE with the shared cache on vs off",
		Comment: fmt.Sprintf("timeout %v per run; timed arms on grown inputs; digest= and census= come from\n"+
			"separate parity arms at the corpus shapes (canonical tests + exact-path census);\n"+
			"the on arm shares one summary domain across the whole suite", opts.Timeout),
		Header: []string{"tool", "t_off_s", "t_on_s", "speedup", "hits", "rec", "rej", "entries", "sum_q", "digest=", "census="},
	}
	fig := JSONFigure{
		Name: "summaries",
		Notes: "each tool explored exhaustively under SSM+QCE, summaries off vs on with one shared " +
			"summary domain across all on-arm runs (cross-tool reuse of the helper library); " +
			"digests_equal compares corpus.DirDigest of canonical-corpus parity runs; census_equal " +
			"compares exact paths, coverage, and the error set of census parity runs",
	}

	tmp, err := os.MkdirTemp("", "paperbench-summaries-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	// One domain for every summary-enabled run in the figure: recordings
	// made while timing one tool discharge call sites in every later tool
	// that shares the closure and input shape.
	dom := symx.NewSummaryDomain()

	var offWall, onWall, speedups []float64
	timeouts, digestMismatches, censusMismatches := 0, 0, 0

	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		run := func(summaries bool, mut func(*symx.Config)) *symx.Result {
			cfg := tool.BaseConfig()
			cfg.Seed = opts.Seed
			cfg.Workers = opts.Workers
			cfg.Preprocess = opts.Preprocess
			cfg.Merge = symx.MergeSSM
			cfg.UseQCE = true
			cfg.MaxTime = opts.Timeout
			if summaries {
				cfg.Summaries = true
				cfg.SummaryDomain = dom
			}
			mut(&cfg)
			return symx.Run(p, cfg)
		}

		// Timed arms: grown inputs so the helper workload dominates, no
		// corpus or census instrumentation in the timing.
		timed := func(cfg *symx.Config) { grow(tool, cfg, 1) }
		resOff := run(false, timed)
		resOn := run(true, timed)

		// Parity arms: the corpus shapes with canonical-test emission and
		// the shadow census — the configuration whose byte output is a
		// function of the explored path set alone.
		parity := func(arm string) func(*symx.Config) {
			return func(cfg *symx.Config) {
				cfg.TrackExactPaths = true
				cfg.CorpusDir = filepath.Join(tmp, tool.Name, arm)
				cfg.CorpusLabel = tool.Name
			}
		}
		parOff := run(false, parity("off"))
		parOn := run(true, parity("on"))

		row := JSONSummaryRow{
			Tool:           tool.Name,
			Completed:      resOff.Completed && resOn.Completed,
			OffWallS:       resOff.Stats.ElapsedSeconds,
			OnWallS:        resOn.Stats.ElapsedSeconds,
			Hits:           resOn.Stats.SummaryHits,
			Records:        resOn.Stats.SummaryRecords,
			Rejects:        resOn.Stats.SummaryRejects,
			EntriesApplied: resOn.Stats.SummaryEntries,
			SummaryQueries: resOn.Stats.Solver.SummaryQueries,
			QueriesOff:     resOff.Stats.Solver.Queries,
			QueriesOn:      resOn.Stats.Solver.Queries,
		}

		dOff, err1 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "off"))
		dOn, err2 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "on"))
		row.DigestsEqual = err1 == nil && err2 == nil && dOff == dOn
		if !row.DigestsEqual {
			digestMismatches++
		}
		row.CensusEqual = parOff.Completed && parOn.Completed &&
			parOff.Stats.ExactPaths == parOn.Stats.ExactPaths &&
			parOff.Stats.CoveredInstrs == parOn.Stats.CoveredInstrs &&
			sameErrors(parOff, parOn)
		if !row.CensusEqual {
			censusMismatches++
		}

		if row.Completed {
			row.Speedup = row.OffWallS / math.Max(row.OnWallS, 1e-6)
			offWall = append(offWall, row.OffWallS)
			onWall = append(onWall, row.OnWallS)
			speedups = append(speedups, row.Speedup)
		} else {
			timeouts++
		}
		fig.SummaryRows = append(fig.SummaryRows, row)

		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.3f", row.OffWallS),
			fmt.Sprintf("%.3f", row.OnWallS),
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprint(row.Hits),
			fmt.Sprint(row.Records),
			fmt.Sprint(row.Rejects),
			fmt.Sprint(row.EntriesApplied),
			fmt.Sprint(row.SummaryQueries),
			fmt.Sprint(row.DigestsEqual),
			fmt.Sprint(row.CensusEqual),
		})
	}

	// The headline compares total wall clock across the suite — the number
	// a batch user experiences — with the per-tool mean alongside
	// (sub-millisecond tools contribute timer noise to the mean, weight to
	// neither).
	aggregate, mean := 0.0, 0.0
	if s := sum(onWall); s > 0 {
		aggregate = sum(offWall) / s
	}
	if len(speedups) > 0 {
		for _, s := range speedups {
			mean += s
		}
		mean /= float64(len(speedups))
	}
	t.Comment += fmt.Sprintf(
		"\nsuite aggregate: wall %.3fs off -> %.3fs on (%.2fx; mean per-tool speedup %.2fx)"+
			"\n%d tools compared (%d timed out, %d digest mismatches, %d census mismatches)",
		sum(offWall), sum(onWall), aggregate, mean,
		len(offWall), timeouts, digestMismatches, censusMismatches)
	return t, fig
}

// sameErrors compares the distinct (location, message) error sets of two runs.
func sameErrors(a, b *symx.Result) bool {
	set := func(res *symx.Result) map[string]bool {
		out := map[string]bool{}
		for _, e := range res.Errors {
			out[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
		}
		return out
	}
	sa, sb := set(a), set(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
