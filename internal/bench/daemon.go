// daemon.go: the PR-9 benchmark — cross-run persistence measured over the
// COREUTILS suite. The daemon's production lever is the persistent store: a
// cold pass explores every tool against an empty store (populating it with
// solver verdicts, blasted-group verdicts, and function summaries), then a
// warm pass rebuilds the domain from the flushed store — the restart a
// long-lived symxd survives — and re-explores the same suite. Two
// contracts: (1) persistence is pure acceleration (the canonical corpus
// digest and census of every tool are byte-identical cold vs warm), and
// (2) it pays for itself (warm per-tool wall clock beats cold, answered
// from disk instead of the SAT solver).

package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/internal/store"
	"symmerge/symx"
)

// JSONDaemonRow is one tool's cold-vs-warm measurement in BENCH_pr9.json.
type JSONDaemonRow struct {
	Tool      string  `json:"tool"`
	Completed bool    `json:"completed"`
	ColdWallS float64 `json:"cold_wall_s"`
	WarmWallS float64 `json:"warm_wall_s"`
	// Speedup is cold/warm wall clock; set only on completed pairs.
	Speedup float64 `json:"speedup"`
	// Store traffic of the warm arm: whole-query and independence-group
	// verdicts answered from the persistent store, and the SAT calls both
	// arms actually paid.
	StableHits      uint64 `json:"stable_hits"`
	StableGroupHits uint64 `json:"stable_group_hits"`
	SATCallsCold    uint64 `json:"sat_calls_cold"`
	SATCallsWarm    uint64 `json:"sat_calls_warm"`
	QueriesCold     uint64 `json:"queries_cold"`
	QueriesWarm     uint64 `json:"queries_warm"`
	// DigestsEqual is the corpus contract: the canonical corpus directory
	// digest of the warm run equals the cold run's, byte for byte.
	DigestsEqual bool `json:"digests_equal"`
	// CensusEqual: exact paths, coverage, and the error set match.
	CensusEqual bool `json:"census_equal"`
}

// DaemonFigure measures cross-run persistence on every COREUTILS tool
// under SSM+QCE with summaries: a cold pass against an empty persistent
// store, a flush, then a warm pass in a fresh domain rehydrated from the
// store (simulating a daemon restart). Each pass runs two arms per tool,
// mirroring the summaries figure's split: a timed arm on grown inputs
// with no corpus or census instrumentation (the wall-clock ratio
// isolates the store), and a parity arm on the corpus shapes with
// canonical-test emission and the shadow census (the byte-output
// contract: the corpus is a function of the explored path set alone, so
// grown inputs whose canonical test set would overflow the test cap are
// kept out of the digest comparison).
func DaemonFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Persistent store: cold pass (empty store) vs warm pass (domain rehydrated from disk)",
		Comment: fmt.Sprintf("timeout %v per run; SSM+QCE with summaries; timed arms on grown inputs without\n"+
			"instrumentation; parity arms emit canonical corpora on the corpus shapes; the warm pass\n"+
			"runs in a fresh domain over a reopened store — the restart path of cmd/symxd", opts.Timeout),
		Header: []string{"tool", "t_cold_s", "t_warm_s", "speedup", "stable", "groups", "sat_cold", "sat_warm", "digest=", "census="},
	}
	fig := JSONFigure{
		Name: "daemon",
		Notes: "cold arms populate an empty persistent store (cex verdicts, blasted-group verdicts, " +
			"summaries) shared across the suite; the store is flushed and reopened; the warm arms run " +
			"every tool again in a fresh domain seeded from disk; digests_equal compares " +
			"corpus.DirDigest of the parity arms' canonical corpora per tool",
	}

	tmp, err := os.MkdirTemp("", "paperbench-daemon-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	st, err := store.Open(filepath.Join(tmp, "store"), store.Options{})
	if err != nil {
		panic(err)
	}
	coldDom := symx.NewDomain(st)

	base := func(tool *coreutils.Tool, dom *symx.Domain) symx.Config {
		cfg := tool.BaseConfig()
		cfg.Seed = opts.Seed
		cfg.Workers = opts.Workers
		cfg.Preprocess = opts.Preprocess
		cfg.Merge = symx.MergeSSM
		cfg.UseQCE = true
		cfg.MaxTime = opts.Timeout
		cfg.Summaries = true
		cfg.Domain = dom
		return cfg
	}
	timed := func(tool *coreutils.Tool, p *symx.Program, dom *symx.Domain) *symx.Result {
		cfg := base(tool, dom)
		grow(tool, &cfg, 2)
		return symx.Run(p, cfg)
	}
	parity := func(tool *coreutils.Tool, p *symx.Program, dom *symx.Domain, arm string) *symx.Result {
		cfg := base(tool, dom)
		cfg.TrackExactPaths = true
		cfg.CorpusDir = filepath.Join(tmp, tool.Name, arm)
		cfg.CorpusLabel = tool.Name
		return symx.Run(p, cfg)
	}

	tools := coreutils.All()
	progs := make([]*symx.Program, len(tools))
	colds := make([]*symx.Result, len(tools))
	coldPars := make([]*symx.Result, len(tools))
	for i, tool := range tools {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		progs[i] = p
		colds[i] = timed(tool, p, coldDom)
		// Steady-state rerun: the first run explored callees inline while
		// recording their summaries, so its query stream is NOT the stream
		// a summary-warm process replays. The rerun (summary cache now
		// populated) issues the steady-state stream; its queries that
		// diverge from run one miss the ID cache and are recorded to the
		// store, so the flushed store covers what a restart will actually
		// ask. The cold measurement stays run one — the true first-request
		// cost.
		timed(tool, p, coldDom)
		coldPars[i] = parity(tool, p, coldDom, "cold")
	}
	if _, err := coldDom.Flush(); err != nil {
		panic(err)
	}

	// The restart: a fresh store handle over the flushed directory, a
	// fresh domain seeded from it. Nothing in-process survives from the
	// cold pass.
	st2, err := store.Open(filepath.Join(tmp, "store"), store.Options{})
	if err != nil {
		panic(err)
	}
	warmDom := symx.NewDomain(st2)

	var coldWall, warmWall, speedups []float64
	timeouts, digestMismatches, censusMismatches := 0, 0, 0
	for i, tool := range tools {
		cold := colds[i]
		warm := timed(tool, progs[i], warmDom)
		coldPar, warmPar := coldPars[i], parity(tool, progs[i], warmDom, "warm")

		row := JSONDaemonRow{
			Tool:            tool.Name,
			Completed:       cold.Completed && warm.Completed,
			ColdWallS:       cold.Stats.ElapsedSeconds,
			WarmWallS:       warm.Stats.ElapsedSeconds,
			StableHits:      warm.Stats.Solver.StableHits,
			StableGroupHits: warm.Stats.Solver.StableGroupHits,
			SATCallsCold:    cold.Stats.Solver.SATCalls,
			SATCallsWarm:    warm.Stats.Solver.SATCalls,
			QueriesCold:     cold.Stats.Solver.Queries,
			QueriesWarm:     warm.Stats.Solver.Queries,
		}

		dCold, err1 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "cold"))
		dWarm, err2 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "warm"))
		row.DigestsEqual = err1 == nil && err2 == nil && dCold == dWarm
		if !row.DigestsEqual {
			digestMismatches++
		}
		row.CensusEqual = coldPar.Completed && warmPar.Completed &&
			coldPar.Stats.ExactPaths == warmPar.Stats.ExactPaths &&
			coldPar.Stats.CoveredInstrs == warmPar.Stats.CoveredInstrs &&
			sameErrors(coldPar, warmPar)
		if !row.CensusEqual {
			censusMismatches++
		}

		if row.Completed {
			row.Speedup = row.ColdWallS / math.Max(row.WarmWallS, 1e-6)
			coldWall = append(coldWall, row.ColdWallS)
			warmWall = append(warmWall, row.WarmWallS)
			speedups = append(speedups, row.Speedup)
		} else {
			timeouts++
		}
		fig.DaemonRows = append(fig.DaemonRows, row)

		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.3f", row.ColdWallS),
			fmt.Sprintf("%.3f", row.WarmWallS),
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprint(row.StableHits),
			fmt.Sprint(row.StableGroupHits),
			fmt.Sprint(row.SATCallsCold),
			fmt.Sprint(row.SATCallsWarm),
			fmt.Sprint(row.DigestsEqual),
			fmt.Sprint(row.CensusEqual),
		})
	}

	aggregate, mean := 0.0, 0.0
	if s := sum(warmWall); s > 0 {
		aggregate = sum(coldWall) / s
	}
	if len(speedups) > 0 {
		for _, s := range speedups {
			mean += s
		}
		mean /= float64(len(speedups))
	}
	stStats := st2.Stats()
	t.Comment += fmt.Sprintf(
		"\nsuite aggregate: wall %.3fs cold -> %.3fs warm (%.2fx; mean per-tool speedup %.2fx)"+
			"\n%d tools compared (%d timed out, %d digest mismatches, %d census mismatches)"+
			"\nstore: %d cex verdicts, %d summaries persisted; warm pass hit %d lookups, seeded %d summaries",
		sum(coldWall), sum(warmWall), aggregate, mean,
		len(coldWall), timeouts, digestMismatches, censusMismatches,
		stStats.CexEntries, stStats.SumEntries, stStats.LookupHits, warmDom.SeededSummaries)
	return t, fig
}
