package bench

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Comment: "line one\nline two",
		Header:  []string{"tool", "value"},
		Rows:    [][]string{{"echo", "1.5"}, {"basename", "22"}},
	}
	s := tab.String()
	for _, want := range []string{"# demo", "#   line one", "#   line two", "tool", "echo", "basename"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns must be aligned: "tool" padded to the width of "basename".
	lines := strings.Split(s, "\n")
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "tool") {
			header = l
		}
		if strings.HasPrefix(l, "echo") {
			row = l
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "1.5") {
		t.Fatalf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestLinearFitPerfectLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	c1, c2, r2 := linearFit(xs, ys)
	if math.Abs(c1-1) > 1e-9 || math.Abs(c2-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit (%f, %f, %f), want (1, 2, 1)", c1, c2, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, r2 := linearFit([]float64{1}, []float64{2}); r2 != 0 {
		t.Fatal("single point should not fit")
	}
	if _, _, r2 := linearFit([]float64{2, 2}, []float64{1, 5}); r2 != 0 {
		t.Fatal("vertical line should not fit")
	}
	// Constant y: perfect fit with slope 0.
	c1, c2, r2 := linearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if c2 != 0 || c1 != 4 || r2 != 1 {
		t.Fatalf("constant fit (%f, %f, %f)", c1, c2, r2)
	}
}

func TestFmtBig(t *testing.T) {
	if got := fmtBig(big.NewInt(12345)); got != "12345" {
		t.Fatalf("fmtBig small = %q", got)
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 100)
	if got := fmtBig(huge); !strings.Contains(got, "e+") {
		t.Fatalf("fmtBig huge = %q, want scientific", got)
	}
}

func TestRatioBig(t *testing.T) {
	if r := ratioBig(big.NewInt(10), big.NewInt(4)); r != 2.5 {
		t.Fatalf("ratio = %f", r)
	}
	if r := ratioBig(big.NewInt(1), big.NewInt(0)); !math.IsInf(r, 1) {
		t.Fatalf("ratio by zero = %f, want +inf", r)
	}
}

// TestFigure3Smoke runs the smallest real experiment end to end and checks
// the log-log fit quality the paper's Figure 3 claims.
func TestFigure3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Options{Budget: time.Second, Timeout: 5 * time.Second, Seed: 1}
	tables := Figure3(opts)
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		min := 2
		if strings.Contains(tab.Title, "tsort") {
			// tsort's shadow census affords a single size at small
			// timeouts (each extra stdin pair multiplies the census
			// cost); the fit comes from seq and join.
			min = 1
		}
		if len(tab.Rows) < min {
			t.Fatalf("%s: only %d data points", tab.Title, len(tab.Rows))
		}
		if !strings.Contains(tab.Comment, "R^2") {
			t.Fatalf("%s: missing fit", tab.Title)
		}
	}
}

// TestFFStatSmoke checks the §5.5 statistic runs and produces sane rates.
func TestFFStatSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := FFStat(Options{Budget: 300 * time.Millisecond, Timeout: time.Second, Seed: 1})
	if len(tab.Rows) < 20 {
		t.Fatalf("ff stat covered %d tools", len(tab.Rows))
	}
}
