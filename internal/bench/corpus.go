// corpus.go: the PR-4 benchmark — every COREUTILS tool explored under the
// unmerged and merged regimes with on-disk corpus emission, each corpus
// replayed through the independent IR interpreter, checking (1) zero
// expectation mismatches, (2) replay branch coverage equal to the symbolic
// run's covered set, and (3) that merging does not change the deduplicated
// concrete test-input set. cmd/paperbench writes the machine-readable
// BENCH_pr4.json report from this figure.

package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

// JSONCorpusRow is one (tool, arm) corpus measurement in BENCH_pr4.json.
type JSONCorpusRow struct {
	Tool      string  `json:"tool"`
	Arm       string  `json:"arm"`
	Completed bool    `json:"completed"`
	WallS     float64 `json:"wall_s"`

	TestsEmitted int `json:"tests_emitted"`
	TestsDeduped int `json:"tests_deduped"`
	TestsUnique  int `json:"tests_unique"`

	ReplayMismatches int  `json:"replay_mismatches"`
	SymCovered       int  `json:"sym_covered"`
	ReplayCovered    int  `json:"replay_covered"`
	CoverageParity   bool `json:"coverage_parity"`
	// InputsMatchBaseline is set on merged arms of fully completed tools:
	// the deduplicated input-ID set equals the unmerged ("none") arm's —
	// the state-merging evaluation's ground-truth equivalence.
	InputsMatchBaseline *bool `json:"inputs_match_baseline,omitempty"`
}

// corpusArms are the merging regimes the figure compares.
var corpusArms = []struct {
	name string
	mut  func(*symx.Config)
}{
	{"none", func(c *symx.Config) { c.Merge = symx.MergeNone }},
	{"ssm+qce", func(c *symx.Config) { c.Merge = symx.MergeSSM; c.UseQCE = true }},
	{"dsm+qce", func(c *symx.Config) { c.Merge = symx.MergeDSM; c.UseQCE = true }},
}

// CorpusFigure runs the corpus emission + replay benchmark.
func CorpusFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Replayable corpus: emission + concrete replay per merging regime",
		Comment: fmt.Sprintf("timeout %v per run; tests = unique corpus entries; mm = replay expectation mismatches;\n"+
			"parity = replay branch coverage == symbolic covered set; inputs≡none = merged arm's deduplicated\n"+
			"input set equals the unmerged arm's", opts.Timeout),
		Header: corpusHeader(),
	}
	fig := JSONFigure{
		Name: "corpus",
		Notes: "each tool explored exhaustively per arm with CorpusDir emission (canonical minimal-model tests, " +
			"per-path census under merging), corpus replayed through internal/ir.InterpWith; " +
			"coverage_parity means replay coverage equals the symbolic covered set",
	}

	tmp, err := os.MkdirTemp("", "paperbench-corpus-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	type armAgg struct {
		wall            []float64
		mismatches      int
		parityFailures  int
		inputMismatches int
	}
	aggs := make([]armAgg, len(corpusArms))
	timeouts := 0

	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		var (
			rows     = make([]*JSONCorpusRow, len(corpusArms))
			baseline map[string]bool // unique input IDs of the "none" arm
			allDone  = true
			mm       int
			parityOK = true
			inputsOK = true
		)
		for ai, arm := range corpusArms {
			dir := filepath.Join(tmp, tool.Name, arm.name)
			cfg := tool.BaseConfig()
			cfg.Seed = opts.Seed
			cfg.Workers = opts.Workers
			cfg.Preprocess = opts.Preprocess
			cfg.MaxTime = opts.Timeout
			cfg.CorpusDir = dir
			cfg.CorpusLabel = tool.Name
			arm.mut(&cfg)
			res := symx.Run(p, cfg)
			row := &JSONCorpusRow{
				Tool:         tool.Name,
				Arm:          arm.name,
				Completed:    res.Completed && res.CorpusErr == nil,
				WallS:        res.Stats.ElapsedSeconds,
				TestsEmitted: res.Stats.TestsEmitted,
				TestsDeduped: res.Stats.TestsDeduped,
				TestsUnique:  res.Stats.TestsEmitted - res.Stats.TestsDeduped,
			}
			rows[ai] = row
			if !row.Completed {
				// A tripped budget — including one that surfaced as a
				// CorpusErr when the deadline hit a model solve — leaves a
				// partial corpus that cannot promise parity; record the
				// arm as incomplete rather than aborting the suite.
				allDone = false
				continue
			}
			rep, err := corpus.Replay(dir, p.Internal())
			if err != nil {
				panic(err)
			}
			man := rep.Manifest
			row.ReplayMismatches = len(rep.Mismatches)
			row.SymCovered = rep.SymCovered
			row.ReplayCovered = rep.ReplayCovered
			row.CoverageParity = rep.ParityOK()
			mm += len(rep.Mismatches)
			parityOK = parityOK && rep.ParityOK()
			aggs[ai].wall = append(aggs[ai].wall, res.Stats.ElapsedSeconds)
			aggs[ai].mismatches += len(rep.Mismatches)
			if !rep.ParityOK() {
				aggs[ai].parityFailures++
			}

			ids := make(map[string]bool, len(man.Tests))
			for _, e := range man.Tests {
				ids[e.ID] = true
			}
			if ai == 0 {
				baseline = ids
			} else if baseline != nil {
				same := sameIDSet(baseline, ids)
				row.InputsMatchBaseline = &same
				if !same {
					inputsOK = false
					aggs[ai].inputMismatches++
				}
			}
		}
		cells := []string{tool.Name}
		for _, r := range rows {
			fig.CorpusRows = append(fig.CorpusRows, *r)
			cells = append(cells, cellOrTimeout(r))
		}
		if !allDone {
			timeouts++
			t.Rows = append(t.Rows, append(cells, "-", "-", "-"))
			continue
		}
		t.Rows = append(t.Rows, append(cells,
			fmt.Sprint(mm), fmt.Sprint(parityOK), fmt.Sprint(inputsOK)))
	}

	for ai, arm := range corpusArms {
		fig.Arms = append(fig.Arms, JSONArm{
			Name:        arm.name,
			Tools:       len(aggs[ai].wall),
			MeanWallS:   mean(aggs[ai].wall),
			MedianWallS: median(aggs[ai].wall),
		})
	}
	totalMM, totalParity, totalInputs := 0, 0, 0
	for _, a := range aggs {
		totalMM += a.mismatches
		totalParity += a.parityFailures
		totalInputs += a.inputMismatches
	}
	t.Comment += fmt.Sprintf("\nsuite aggregate: %d replay mismatches, %d parity failures, %d input-set divergences across all arms"+
		"\n(%d tools with a timed-out arm excluded from the checks)",
		totalMM, totalParity, totalInputs, timeouts)
	return t, fig
}

// corpusHeader derives the table header from the arm list: one unique-test
// column per arm, then the suite-wide verdict columns.
func corpusHeader() []string {
	h := []string{"tool"}
	for _, arm := range corpusArms {
		h = append(h, "tests("+arm.name+")")
	}
	return append(h, "mm", "parity", "inputs≡none")
}

func cellOrTimeout(r *JSONCorpusRow) string {
	if r == nil || !r.Completed {
		return "timeout"
	}
	return fmt.Sprint(r.TestsUnique)
}

func sameIDSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
