// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (§5) on the COREUTILS models: one runner per
// figure, each returning a structured table that cmd/paperbench prints.
//
// Absolute numbers differ from the paper (our substrate is a from-scratch
// engine on reduced models, not KLEE on a 2012 testbed); the runners exist
// to check the paper's *shapes*: who wins, by how much, and how the gap
// scales with symbolic input size.
package bench

import (
	"fmt"
	"math"
	"math/big"
	"strings"
	"time"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

// Options scale the whole evaluation.
type Options struct {
	// Budget is the per-run time budget replacing the paper's 1h/2h.
	Budget time.Duration
	// Timeout is the exhaustive-exploration cutoff (Figures 5, 6, 9).
	Timeout time.Duration
	// Seed drives randomized strategies.
	Seed int64
	// Workers shards every exploration across this many goroutines
	// (0/1 = sequential); the ParallelScaling figure additionally
	// compares this worker count against the sequential baseline.
	Workers int
	// Preprocess, when non-empty, forces the solver preprocessing spec
	// ("on", "off", or a comma list of pass names) on every run — the
	// global ablation hook behind `paperbench -preprocess`. The
	// Preprocess figure ignores it: its whole point is the on/off pair.
	Preprocess string
}

// DefaultOptions returns budgets that complete the full evaluation in a few
// minutes.
func DefaultOptions() Options {
	return Options{Budget: 2 * time.Second, Timeout: 10 * time.Second, Seed: 1}
}

// RunOutcome is one engine run's reduced result.
type RunOutcome struct {
	Completed bool
	// Interrupted is why the run stopped when Completed is false ("budget",
	// "context", ...): a figure built from interrupted runs measures the
	// interruption, not the regime, so the tables surface it.
	Interrupted string
	Elapsed     float64 // seconds
	Paths       *big.Int
	States      uint64 // separately completed states
	Coverage    float64
	Merges      uint64
	FFSelected  uint64
	FFMerged    uint64
	FFRate      float64 // merged / fast-forward-selected
	Exact       uint64  // shadow census (when enabled)
	Queries     uint64

	// Incremental-session solver activity.
	SATTime      float64 // seconds inside blasting + CDCL
	SessQueries  uint64  // queries answered by a persistent session
	SessReuse    uint64  // conjunct blastings reused across queries
	SessBypasses uint64  // session-eligible queries routed one-shot
}

// Status renders the completion cell for tables: "true", or "false(cause)"
// naming why the run was interrupted.
func (o RunOutcome) Status() string {
	if o.Completed {
		return "true"
	}
	return "false(" + o.Interrupted + ")"
}

// runTool executes one configuration on a tool.
func runTool(tool *coreutils.Tool, mut func(*symx.Config), opts Options) (RunOutcome, error) {
	p, err := tool.Compile()
	if err != nil {
		return RunOutcome{}, err
	}
	cfg := tool.BaseConfig()
	cfg.Seed = opts.Seed
	cfg.Workers = opts.Workers
	cfg.Preprocess = opts.Preprocess
	mut(&cfg)
	res := symx.Run(p, cfg)
	out := RunOutcome{
		Completed:  res.Completed,
		Elapsed:    res.Stats.ElapsedSeconds,
		Paths:      new(big.Int).Set(res.Stats.PathsMult),
		States:     res.Stats.PathsCompleted,
		Coverage:   res.Stats.Coverage(),
		Merges:     res.Stats.Merges,
		FFSelected: res.Stats.FFSelected,
		FFMerged:   res.Stats.FFMerged,
		Exact:      res.Stats.ExactPaths,
		Queries:    res.Stats.Solver.Queries,

		SATTime:      res.Stats.Solver.SATTime.Seconds(),
		SessQueries:  res.Stats.Solver.SessionQueries,
		SessReuse:    res.Stats.Solver.SessionBlastReuse,
		SessBypasses: res.Stats.Solver.SessionBypass,
	}
	if !res.Completed {
		out.Interrupted = res.Interrupted.String()
	}
	if res.Stats.FFSelected > 0 {
		out.FFRate = float64(res.Stats.FFMerged) / float64(res.Stats.FFSelected)
	}
	return out, nil
}

// grow scales a tool's symbolic input by a size step: argument-driven tools
// grow ArgLen, stdin-driven tools grow StdinLen.
func grow(tool *coreutils.Tool, cfg *symx.Config, step int) {
	if tool.UsesStdin {
		cfg.StdinLen = tool.DefaultStdin + step
	} else {
		cfg.ArgLen = tool.DefaultLen + step
	}
}

// symBytes reports the total number of symbolic input bytes of a config.
func symBytes(cfg symx.Config) int {
	return cfg.NArgs*cfg.ArgLen + cfg.StdinLen
}

// Table is a printable result table.
type Table struct {
	Title   string
	Comment string
	Header  []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.Comment != "" {
		for _, line := range strings.Split(t.Comment, "\n") {
			fmt.Fprintf(&b, "#   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// fmtBig renders a big integer compactly (scientific above 10^6).
func fmtBig(v *big.Int) string {
	if v.BitLen() <= 20 {
		return v.String()
	}
	f := new(big.Float).SetInt(v)
	return f.Text('e', 2)
}

// ratioBig computes a/b as float64 (safe for huge a).
func ratioBig(a, b *big.Int) float64 {
	fa, _ := new(big.Float).SetInt(a).Float64()
	fb, _ := new(big.Float).SetInt(b).Float64()
	if fb == 0 {
		return math.Inf(1)
	}
	return fa / fb
}

// linearFit returns intercept, slope, and R² of a least-squares line.
func linearFit(xs, ys []float64) (c1, c2, r2 float64) {
	n := float64(len(xs))
	if n < 2 {
		return 0, 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, 0, 0
	}
	c2 = (n*sxy - sx*sy) / denom
	c1 = (sy - c2*sx) / n
	ssTot := syy - sy*sy/n
	var ssRes float64
	for i := range xs {
		d := ys[i] - (c1 + c2*xs[i])
		ssRes += d * d
	}
	if ssTot == 0 {
		return c1, c2, 1
	}
	return c1, c2, 1 - ssRes/ssTot
}
