// obs.go: the PR-7 benchmark — the observability layer's two contracts
// measured over the COREUTILS suite: (1) tracing + metrics are purely
// observational (the emitted corpus is byte-identical with the layer on or
// off), and (2) they are cheap (mean wall-clock overhead within a few
// percent). Every trace produced is schema-validated and run through the
// Chrome trace-event converter, and the traced arm feeds one shared metrics
// registry whose aggregate snapshot — query latency histograms by class,
// merge-gate time, step throughput — lands in BENCH_pr7.json.

package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/internal/obs"
	"symmerge/symx"
)

// JSONObsRow is one tool's tracing-overhead measurement in BENCH_pr7.json.
type JSONObsRow struct {
	Tool        string  `json:"tool"`
	Completed   bool    `json:"completed"`
	BaseWallS   float64 `json:"base_wall_s"`
	TracedWallS float64 `json:"traced_wall_s"`
	// OverheadPct is (traced - base) / base as a percentage; negative
	// values are measurement noise on sub-millisecond runs.
	OverheadPct float64 `json:"overhead_pct"`
	TraceEvents uint64  `json:"trace_events"`
	TraceDrops  uint64  `json:"trace_drops"`
	TraceValid  bool    `json:"trace_valid"`
	// DigestsEqual is the observability contract: the corpus directory
	// digest of the traced run equals the untraced run's.
	DigestsEqual bool `json:"digests_equal"`
}

// ObsFigure runs every COREUTILS tool twice under DSM+QCE with corpus
// emission — once bare, once with the full observability layer attached
// (JSONL trace + metrics registry) — and reports per-tool overhead, trace
// accounting, and corpus-digest parity.
func ObsFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Observability layer: trace + metrics overhead and corpus parity (DSM+QCE)",
		Comment: fmt.Sprintf("timeout %v per run; overhead = wall-clock delta of the traced arm; digest= means the\n"+
			"emitted corpus is byte-identical with tracing on and off; every trace is schema-validated\n"+
			"and Chrome-converted", opts.Timeout),
		Header: []string{"tool", "t_base_s", "t_traced_s", "overhead", "events", "drops", "valid", "digest="},
	}
	fig := JSONFigure{
		Name: "obs",
		Notes: "each tool explored exhaustively under DSM+QCE with corpus emission, bare vs traced+metriced; " +
			"digests_equal means corpus.DirDigest matches across the arms; metrics is the aggregate " +
			"symmerge-metrics/v1 snapshot over all traced runs (query latency histograms split by " +
			"session/oneshot/cached)",
	}

	tmp, err := os.MkdirTemp("", "paperbench-obs-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	// One registry across all traced runs: the figure's headline histogram
	// is the suite-wide latency distribution, not 44 tiny ones.
	met := symx.NewMetrics()

	var baseWall, tracedWall []float64
	var totalEvents, totalDrops uint64
	timeouts, digestMismatches, invalidTraces := 0, 0, 0

	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		run := func(arm string, traced bool) *symx.Result {
			cfg := tool.BaseConfig()
			cfg.Seed = opts.Seed
			cfg.Workers = opts.Workers
			cfg.Preprocess = opts.Preprocess
			cfg.Merge = symx.MergeDSM
			cfg.UseQCE = true
			cfg.MaxTime = opts.Timeout
			cfg.CorpusDir = filepath.Join(tmp, tool.Name, arm)
			cfg.CorpusLabel = tool.Name
			if traced {
				cfg.TraceFile = filepath.Join(tmp, tool.Name, "run.trace")
				cfg.Metrics = met
			}
			return symx.Run(p, cfg)
		}
		resBase := run("base", false)
		resTraced := run("traced", true)

		row := JSONObsRow{
			Tool:        tool.Name,
			Completed:   resBase.Completed && resTraced.Completed,
			BaseWallS:   resBase.Stats.ElapsedSeconds,
			TracedWallS: resTraced.Stats.ElapsedSeconds,
			TraceEvents: resTraced.TraceEvents,
			TraceDrops:  resTraced.TraceDrops,
		}
		totalEvents += row.TraceEvents
		totalDrops += row.TraceDrops

		// The parity and validity checks hold on partial runs too — a
		// budget-interrupted trace is still schema-valid and still must not
		// have perturbed what was emitted — but only completed pairs feed
		// the overhead aggregate (an interrupted pair measures the budget).
		dBase, err1 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "base"))
		dTraced, err2 := corpus.DirDigest(filepath.Join(tmp, tool.Name, "traced"))
		row.DigestsEqual = err1 == nil && err2 == nil && dBase == dTraced
		if !row.DigestsEqual {
			digestMismatches++
		}
		row.TraceValid = validTrace(filepath.Join(tmp, tool.Name, "run.trace"))
		if !row.TraceValid {
			invalidTraces++
		}
		if row.Completed {
			if row.BaseWallS > 0 {
				row.OverheadPct = 100 * (row.TracedWallS - row.BaseWallS) / row.BaseWallS
			}
			baseWall = append(baseWall, row.BaseWallS)
			tracedWall = append(tracedWall, row.TracedWallS)
		} else {
			timeouts++
		}
		fig.ObsRows = append(fig.ObsRows, row)

		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.3f", row.BaseWallS),
			fmt.Sprintf("%.3f", row.TracedWallS),
			fmt.Sprintf("%+.1f%%", row.OverheadPct),
			fmt.Sprint(row.TraceEvents),
			fmt.Sprint(row.TraceDrops),
			fmt.Sprint(row.TraceValid),
			fmt.Sprint(row.DigestsEqual),
		})
	}

	fig.Metrics = met.Snapshot()

	// The suite-level overhead compares total wall clock, not the mean of
	// per-tool ratios: sub-millisecond tools would otherwise dominate with
	// pure timer noise.
	overheadPct := 0.0
	if s := sum(baseWall); s > 0 {
		overheadPct = 100 * (sum(tracedWall) - s) / s
	}
	t.Comment += fmt.Sprintf(
		"\nsuite aggregate: wall %.3fs bare -> %.3fs traced (%+.1f%% overhead); %d events, %d dropped"+
			"\n%d tools compared (%d timed out, %d digest mismatches, %d invalid traces)",
		sum(baseWall), sum(tracedWall), overheadPct, totalEvents, totalDrops,
		len(baseWall), timeouts, digestMismatches, invalidTraces)
	return t, fig
}

// validTrace schema-validates a trace file and exercises the Chrome
// converter on it (the export path the tooling depends on).
func validTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	if _, err := obs.Validate(f); err != nil {
		return false
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false
	}
	return obs.ChromeTrace(f, io.Discard) == nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
