// analysis.go: the PR-10 benchmark — the static dataflow analyses
// (interval/constancy branch pruning, bounds/heap check elision, liveness
// merge-key slimming, heap-gate lifting) ablated on vs off across the
// COREUTILS suite. Two contracts: (1) the analyses are pure acceleration
// (canonical corpus digests and the exact-path census are byte-identical
// either way), and (2) they retire real work (solver queries elided,
// branch sides pruned without queries on the prune fixture, and — on the
// heap-helper fixture — call sites the PR-8 heap gate rejected now
// discharged from summaries).

package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"symmerge/internal/coreutils"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

// JSONAnalysisRow is one workload's analysis measurement in BENCH_pr10.json.
type JSONAnalysisRow struct {
	Tool      string  `json:"tool"`
	Completed bool    `json:"completed"`
	OffWallS  float64 `json:"off_wall_s"`
	OnWallS   float64 `json:"on_wall_s"`
	// Speedup is off/on wall clock; set only on completed pairs.
	Speedup float64 `json:"speedup"`
	// Analysis activity of the on arm's timed run.
	PrunedStatic uint64 `json:"pruned_static"`
	BoundsElided uint64 `json:"bounds_elided"`
	// HeapLifted counts call sites discharged from summaries whose
	// closures the strict heap gate would have rejected (nonzero only on
	// the summary-enabled fixture rows; CheckBounds and summaries are
	// mutually exclusive, so the tool rows measure pruning/elision).
	HeapLifted uint64 `json:"heap_lifted"`
	QueriesOff uint64 `json:"queries_off"`
	QueriesOn  uint64 `json:"queries_on"`
	// DigestsEqual / CensusEqual are the parity contracts over separate
	// corpus-shaped arms (canonical tests + exact-path census). Nil means
	// a parity arm hit its (larger) timeout, so the arms are different
	// truncations of the space rather than comparable results.
	DigestsEqual *bool `json:"digests_equal,omitempty"`
	CensusEqual  *bool `json:"census_equal,omitempty"`
}

// pruneFixtureSrc is the branch-pruning witness: v is a byte widened to an
// int, so the interval analysis decides `v < 300` (always true) and
// `v > 1000` (always false) without feasibility queries, and proves the
// masked index in bounds. The registry's models only branch on conditions
// the inputs genuinely decide (their loop bounds are concrete and
// constant-fold before the pruner is consulted), hence a dedicated row.
const pruneFixtureSrc = `
void main() {
    int v = toint(argchar(1, 0));
    int buf[4];
    if (v < 300) {
        buf[v & 3] = v;
    }
    if (v > 1000) {
        putchar('!');
        halt(1);
    }
    putchar(tobyte(buf[v & 3] & 255));
    halt(0);
}
`

// heapLiftFixtureSrc is the heap-gate witness: fill is heap-contained
// (allocates, branches, reads back only its own cells), so the effect
// analysis admits it to the summary cache where the PR-8 gate rejected
// every heap-touching closure. The registry's own models allocate only in
// main, hence a dedicated fixture row.
const heapLiftFixtureSrc = `
int fill(int a) {
    ptr h = alloc(4);
    h[0] = a;
    if (a > 9) {
        h[0] = 9;
    }
    h[1] = h[0] + 1;
    h[2] = h[1] + h[0];
    return h[2];
}

void main() {
    int x = toint(argchar(1, 0));
    int y = toint(argchar(1, 1));
    int r = fill(x);
    int s = fill(y);
    putchar(tobyte((r + s) & 255));
    halt(0);
}
`

// AnalysisFigure measures the dataflow analyses on every COREUTILS tool
// under SSM+QCE with bounds checking (the configuration where pruning and
// elision retire solver queries), plus the heap-lift fixture under
// compositional summaries. Each workload runs two timed arms on grown
// inputs (analyses off vs on), then two parity arms at the corpus shapes
// whose digests and censuses must match.
func AnalysisFigure(opts Options) (*Table, JSONFigure) {
	t := &Table{
		Title: "Static dataflow analyses: SSM+QCE+bounds with the analyses on vs off",
		Comment: fmt.Sprintf("timeout %v per run; timed arms on grown inputs; digest= and census= come from\n"+
			"separate parity arms at the corpus shapes (canonical tests + exact-path census);\n"+
			"the prune-fixture row witnesses static branch pruning; the heaplift-fixture row runs\n"+
			"under compositional summaries to exercise the lifted heap gate", opts.Timeout),
		Header: []string{"tool", "t_off_s", "t_on_s", "speedup", "pruned", "elided", "lifted", "q_off", "q_on", "digest=", "census="},
	}
	fig := JSONFigure{
		Name: "analysis",
		Notes: "each tool explored exhaustively under SSM+QCE with CheckBounds, dataflow analyses " +
			"(branch pruning, check elision, merge-key slimming) off vs on; the prune-fixture row " +
			"witnesses static branch pruning (the registry's own branches are all genuinely " +
			"input-dependent); the heaplift-fixture row " +
			"instead enables compositional summaries (bounds checking and summaries are mutually " +
			"exclusive) so heap_lifted counts call sites the strict PR-8 heap gate rejected; " +
			"digests_equal compares corpus.DirDigest of canonical-corpus parity runs; census_equal " +
			"compares exact paths, coverage, and the error set of census parity runs",
	}

	tmp, err := os.MkdirTemp("", "paperbench-analysis-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	var offWall, onWall, speedups []float64
	var pruned, elided, lifted uint64
	timeouts, parityTimeouts, digestMismatches, censusMismatches := 0, 0, 0, 0

	measure := func(name string, p *symx.Program, base symx.Config, timed func(*symx.Config)) {
		run := func(disable bool, mut func(*symx.Config)) *symx.Result {
			cfg := base
			cfg.Seed = opts.Seed
			cfg.Workers = opts.Workers
			cfg.Preprocess = opts.Preprocess
			cfg.Merge = symx.MergeSSM
			cfg.UseQCE = true
			cfg.MaxTime = opts.Timeout
			cfg.DisableAnalysis = disable
			mut(&cfg)
			return symx.Run(p, cfg)
		}

		resOff := run(true, timed)
		resOn := run(false, timed)

		// Parity arms are correctness checks, not measurements: give them
		// generous headroom beyond the timed budget, since a truncated
		// exploration yields two different prefixes of the space rather
		// than a meaningful digest comparison.
		parity := func(arm string) func(*symx.Config) {
			return func(cfg *symx.Config) {
				cfg.MaxTime = 10 * opts.Timeout
				cfg.TrackExactPaths = true
				cfg.CorpusDir = filepath.Join(tmp, name, arm)
				cfg.CorpusLabel = name
			}
		}
		parOff := run(true, parity("off"))
		parOn := run(false, parity("on"))

		row := JSONAnalysisRow{
			Tool:         name,
			Completed:    resOff.Completed && resOn.Completed,
			OffWallS:     resOff.Stats.ElapsedSeconds,
			OnWallS:      resOn.Stats.ElapsedSeconds,
			PrunedStatic: resOn.Stats.PrunedStatic,
			BoundsElided: resOn.Stats.BoundsElided,
			HeapLifted:   resOn.Stats.SummaryHeapLifted,
			QueriesOff:   resOff.Stats.Solver.Queries,
			QueriesOn:    resOn.Stats.Solver.Queries,
		}
		pruned += row.PrunedStatic
		elided += row.BoundsElided
		lifted += row.HeapLifted

		if parOff.Completed && parOn.Completed {
			dOff, err1 := corpus.DirDigest(filepath.Join(tmp, name, "off"))
			dOn, err2 := corpus.DirDigest(filepath.Join(tmp, name, "on"))
			dEq := err1 == nil && err2 == nil && dOff == dOn
			row.DigestsEqual = &dEq
			if !dEq {
				digestMismatches++
			}
			cEq := parOff.Stats.ExactPaths == parOn.Stats.ExactPaths &&
				parOff.Stats.CoveredInstrs == parOn.Stats.CoveredInstrs &&
				sameErrors(parOff, parOn)
			row.CensusEqual = &cEq
			if !cEq {
				censusMismatches++
			}
		} else {
			parityTimeouts++
		}

		if row.Completed {
			row.Speedup = row.OffWallS / math.Max(row.OnWallS, 1e-6)
			offWall = append(offWall, row.OffWallS)
			onWall = append(onWall, row.OnWallS)
			speedups = append(speedups, row.Speedup)
		} else {
			timeouts++
		}
		fig.AnalysisRows = append(fig.AnalysisRows, row)

		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.3f", row.OffWallS),
			fmt.Sprintf("%.3f", row.OnWallS),
			fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprint(row.PrunedStatic),
			fmt.Sprint(row.BoundsElided),
			fmt.Sprint(row.HeapLifted),
			fmt.Sprint(row.QueriesOff),
			fmt.Sprint(row.QueriesOn),
			boolOrDash(row.DigestsEqual),
			boolOrDash(row.CensusEqual),
		})
	}

	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		base := tool.BaseConfig()
		base.CheckBounds = true
		measure(tool.Name, p, base, func(cfg *symx.Config) { grow(tool, cfg, 1) })
	}

	// The prune fixture: bounds checking like the tool rows, with branches
	// the interval analysis decides statically.
	pp, err := symx.Compile(pruneFixtureSrc)
	if err != nil {
		panic(err)
	}
	pruneBase := symx.Config{NArgs: 1, ArgLen: 1}
	pruneBase.CheckBounds = true
	measure("prune-fixture", pp, pruneBase, func(cfg *symx.Config) {})

	// The heap-lift fixture: summaries on, bounds off (they are mutually
	// exclusive), a fresh domain per arm so the off arm's strict-gate
	// rejections cannot poison the on arm's cache.
	fp, err := symx.Compile(heapLiftFixtureSrc)
	if err != nil {
		panic(err)
	}
	measure("heaplift-fixture", fp, symx.Config{NArgs: 1, ArgLen: 2},
		func(cfg *symx.Config) {
			cfg.CheckBounds = false
			cfg.Summaries = true
			cfg.SummaryDomain = symx.NewSummaryDomain()
		})

	aggregate, mean := 0.0, 0.0
	if s := sum(onWall); s > 0 {
		aggregate = sum(offWall) / s
	}
	if len(speedups) > 0 {
		for _, s := range speedups {
			mean += s
		}
		mean /= float64(len(speedups))
	}
	t.Comment += fmt.Sprintf(
		"\nsuite aggregate: wall %.3fs off -> %.3fs on (%.2fx; mean per-workload speedup %.2fx)"+
			"\nanalysis activity: %d branch sides pruned, %d checks elided, %d heap-gated sites lifted"+
			"\n%d workloads compared (%d timed out, %d parity arms uncomparable, %d digest mismatches, %d census mismatches)",
		sum(offWall), sum(onWall), aggregate, mean,
		pruned, elided, lifted,
		len(offWall), timeouts, parityTimeouts, digestMismatches, censusMismatches)
	return t, fig
}

// boolOrDash renders a parity verdict, "-" when the arms were uncomparable.
func boolOrDash(b *bool) string {
	if b == nil {
		return "-"
	}
	return fmt.Sprint(*b)
}
