package bench

import (
	"fmt"
	"math"
	"math/big"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

// Figure3 validates the multiplicity → path-count estimator: for seq, join
// and tsort, it runs SSM+QCE with the exact-path shadow census over growing
// input sizes and fits log(paths) ≈ c1 + c2·log(multiplicity). The paper
// observes a linear log-log relation (Figure 3).
func Figure3(opts Options) []*Table {
	var tables []*Table
	// Start offsets and strides keep the shadow census affordable for the
	// heavier models (the census re-checks feasibility per single path)
	// and make each size step change the workload (tsort consumes stdin
	// in pairs, so it needs a stride of 2).
	starts := map[string]int{"seq": 0, "join": 0, "tsort": -2}
	strides := map[string]int{"seq": 1, "join": 1, "tsort": 2}
	for _, name := range []string{"seq", "join", "tsort"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			panic(err)
		}
		t := &Table{
			Title:  fmt.Sprintf("Figure 3: exact path count vs state multiplicity (%s)", name),
			Header: []string{"sym_bytes", "multiplicity", "exact_paths"},
		}
		var logM, logP []float64
		for step0 := 0; step0 < 5; step0++ {
			step := step0*strides[name] + starts[name]
			var bytesUsed int
			out, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeSSM
				cfg.UseQCE = true
				cfg.TrackExactPaths = true
				cfg.MaxTime = opts.Timeout
				bytesUsed = symBytes(*cfg)
			}, opts)
			if err != nil {
				panic(err)
			}
			if !out.Completed || out.Exact == 0 {
				break
			}
			m, _ := new(big.Float).SetInt(out.Paths).Float64()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(bytesUsed), fmtBig(out.Paths), fmt.Sprint(out.Exact)})
			if m > 0 {
				logM = append(logM, math.Log(m))
				logP = append(logP, math.Log(float64(out.Exact)))
			}
		}
		c1, c2, r2 := linearFit(logM, logP)
		t.Comment = fmt.Sprintf("log p = %.3f + %.3f log m, R^2 = %.3f", c1, c2, r2)
		tables = append(tables, t)
	}
	return tables
}

// Figure4 measures, for every tool, the ratio of paths explored by DSM+QCE
// to plain exploration under a fixed time budget (the paper's Figure 4,
// with the 1h budget scaled down). Ratios span orders of magnitude; a few
// tools fall below 1.
func Figure4(opts Options) *Table {
	t := &Table{
		Title: "Figure 4: path ratio (DSM+QCE / base) under a fixed time budget",
		Comment: fmt.Sprintf("budget %v per run; paths counted by multiplicity; input sizes grown to saturate the budget",
			opts.Budget),
		Header: []string{"tool", "paths_base", "paths_dsm", "ratio"},
	}
	for _, tool := range coreutils.All() {
		// Grow inputs so the budget is binding (the paper sizes inputs
		// to keep KLEE busy for the full hour). Base exploration uses
		// DFS, which completes paths steadily under a partial budget —
		// the most favorable baseline for path throughput; DSM rides a
		// coverage-oriented driving heuristic as in the paper.
		const step = 6
		base, err := runTool(tool, func(cfg *symx.Config) {
			grow(tool, cfg, step)
			cfg.Merge = symx.MergeNone
			cfg.Strategy = symx.StrategyDFS
			cfg.MaxTime = opts.Budget
		}, opts)
		if err != nil {
			panic(err)
		}
		dsm, err := runTool(tool, func(cfg *symx.Config) {
			grow(tool, cfg, step)
			cfg.Merge = symx.MergeDSM
			cfg.UseQCE = true
			cfg.Strategy = symx.StrategyCoverage
			cfg.MaxTime = opts.Budget
		}, opts)
		if err != nil {
			panic(err)
		}
		ratio := ratioBig(dsm.Paths, base.Paths)
		t.Rows = append(t.Rows, []string{
			tool.Name, fmtBig(base.Paths), fmtBig(dsm.Paths),
			fmt.Sprintf("%.3g", ratio)})
	}
	return t
}

// Figure5 sweeps the symbolic input size for three representative tools and
// reports the exhaustive-exploration speedup T_base / T_ssm+qce. The paper
// (Figure 5) sees the speedup grow exponentially with input size for link
// and nice and stay flat for basename.
func Figure5(opts Options) *Table {
	t := &Table{
		Title: "Figure 5: exhaustive-exploration speedup of SSM+QCE vs input size",
		Comment: fmt.Sprintf("timeout %v; speedup marked >= when the base run timed out",
			opts.Timeout),
		Header: []string{"tool", "sym_bytes", "t_base_s", "t_ssm_s", "speedup"},
	}
	for _, name := range []string{"link", "nice", "basename"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			panic(err)
		}
		for step := 0; step < 8; step++ {
			var bytesUsed int
			base, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeNone
				cfg.MaxTime = opts.Timeout
				bytesUsed = symBytes(*cfg)
			}, opts)
			if err != nil {
				panic(err)
			}
			ssm, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeSSM
				cfg.UseQCE = true
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			if !ssm.Completed {
				break // merged run over budget: stop the sweep here
			}
			mark := ""
			if !base.Completed {
				mark = ">="
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprint(bytesUsed),
				fmt.Sprintf("%.3f", base.Elapsed),
				fmt.Sprintf("%.3f", ssm.Elapsed),
				fmt.Sprintf("%s%.2f", mark, base.Elapsed/math.Max(ssm.Elapsed, 1e-6))})
			if !base.Completed {
				break
			}
		}
	}
	return t
}

// Figure6 is the scatter of SSM+QCE completion time against base completion
// time over a tool × size grid; base timeouts are lower bounds (the paper's
// triangles).
func Figure6(opts Options) *Table {
	t := &Table{
		Title: "Figure 6: completion time scatter, SSM+QCE vs base",
		Comment: fmt.Sprintf("timeout %v; timeout column marks runs where the base exploration was cut off",
			opts.Timeout),
		Header: []string{"tool", "sym_bytes", "t_base_s", "t_ssm_s", "base_timeout"},
	}
	for _, tool := range coreutils.All() {
		for step := 0; step <= 2; step += 2 {
			var bytesUsed int
			base, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeNone
				cfg.MaxTime = opts.Timeout
				bytesUsed = symBytes(*cfg)
			}, opts)
			if err != nil {
				panic(err)
			}
			ssm, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeSSM
				cfg.UseQCE = true
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			if !ssm.Completed {
				continue
			}
			t.Rows = append(t.Rows, []string{
				tool.Name, fmt.Sprint(bytesUsed),
				fmt.Sprintf("%.3f", base.Elapsed),
				fmt.Sprintf("%.3f", ssm.Elapsed),
				fmt.Sprint(!base.Completed)})
		}
	}
	return t
}

// Figure7 sweeps the QCE threshold α for link, nice, paste and pr: α=∞
// merges everything, α=0 merges only states with no differing concrete
// variables, "none" disables merging. The paper (Figure 7) finds a sweet
// spot between the extremes.
func Figure7(opts Options) *Table {
	alphas := []struct {
		label string
		val   float64
		mode  symx.MergeMode
		qce   bool
	}{
		{"none", 0, symx.MergeNone, false},
		{"0", 1e-300, symx.MergeSSM, true}, // α→0: any nonzero Qadd is hot
		{"1e-12", 1e-12, symx.MergeSSM, true},
		{"1e-3", 1e-3, symx.MergeSSM, true},
		{"0.5", 0.5, symx.MergeSSM, true},
		{"2", 2, symx.MergeSSM, true},
		{"inf", 0, symx.MergeSSM, false}, // merge everything
	}
	t := &Table{
		Title:   "Figure 7: completion time vs QCE threshold alpha",
		Comment: fmt.Sprintf("timeout %v; exhaustive exploration, SSM", opts.Timeout),
		Header:  []string{"tool", "alpha", "t_s", "completed", "merges"},
	}
	for _, name := range []string{"link", "nice", "paste", "pr"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			panic(err)
		}
		for _, a := range alphas {
			out, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, 2)
				cfg.Merge = a.mode
				cfg.UseQCE = a.qce
				if a.qce {
					cfg.QCE = symx.DefaultQCEParams()
					cfg.QCE.Alpha = a.val
				}
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{
				name, a.label,
				fmt.Sprintf("%.3f", out.Elapsed),
				out.Status(),
				fmt.Sprint(out.Merges)})
		}
	}
	return t
}

// Figure8 compares statement coverage under a coverage-guided driving
// heuristic in an incomplete setting: DSM must roughly match the base
// strategy's coverage while SSM falls behind (paper Figure 8).
func Figure8(opts Options) *Table {
	t := &Table{
		Title: "Figure 8: statement coverage, merging vs base under coverage-guided search",
		Comment: fmt.Sprintf("budget %v; large inputs keep the exploration incomplete; deltas in coverage points",
			opts.Budget),
		Header: []string{"tool", "cov_base", "cov_ssm", "cov_dsm", "d_ssm", "d_dsm"},
	}
	for _, tool := range coreutils.All() {
		const step = 24 // far beyond exhaustible sizes
		run := func(merge symx.MergeMode, useQCE bool, strat symx.Strategy) RunOutcome {
			out, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = merge
				cfg.UseQCE = useQCE
				cfg.Strategy = strat
				cfg.MaxTime = opts.Budget
			}, opts)
			if err != nil {
				panic(err)
			}
			return out
		}
		base := run(symx.MergeNone, false, symx.StrategyCoverage)
		ssm := run(symx.MergeSSM, true, symx.StrategyTopo)
		dsm := run(symx.MergeDSM, true, symx.StrategyCoverage)
		if base.Completed && ssm.Completed && dsm.Completed {
			// The paper's Figure 8 includes only tools whose
			// exploration remained incomplete within the budget.
			continue
		}
		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.1f%%", 100*base.Coverage),
			fmt.Sprintf("%.1f%%", 100*ssm.Coverage),
			fmt.Sprintf("%.1f%%", 100*dsm.Coverage),
			fmt.Sprintf("%+.1f", 100*(ssm.Coverage-base.Coverage)),
			fmt.Sprintf("%+.1f", 100*(dsm.Coverage-base.Coverage))})
	}
	return t
}

// Figure9 compares exhaustive completion times of SSM and DSM over a tool ×
// size grid; the paper (Figure 9) finds them comparable with DSM ~15%
// slower on average.
func Figure9(opts Options) *Table {
	t := &Table{
		Title: "Figure 9: exhaustive completion time, DSM vs SSM",
		Comment: fmt.Sprintf("timeout %v; both use QCE; rows where either timed out are dropped",
			opts.Timeout),
		Header: []string{"tool", "sym_bytes", "t_dsm_s", "t_ssm_s", "dsm/ssm"},
	}
	var ratios []float64
	for _, tool := range coreutils.All() {
		for step := 0; step <= 2; step += 2 {
			var bytesUsed int
			ssm, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeSSM
				cfg.UseQCE = true
				cfg.MaxTime = opts.Timeout
				bytesUsed = symBytes(*cfg)
			}, opts)
			if err != nil {
				panic(err)
			}
			dsm, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, step)
				cfg.Merge = symx.MergeDSM
				cfg.UseQCE = true
				cfg.Strategy = symx.StrategyRandom
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			if !ssm.Completed || !dsm.Completed {
				continue
			}
			r := dsm.Elapsed / math.Max(ssm.Elapsed, 1e-6)
			ratios = append(ratios, r)
			t.Rows = append(t.Rows, []string{
				tool.Name, fmt.Sprint(bytesUsed),
				fmt.Sprintf("%.3f", dsm.Elapsed),
				fmt.Sprintf("%.3f", ssm.Elapsed),
				fmt.Sprintf("%.2f", r)})
		}
	}
	if len(ratios) > 0 {
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		t.Comment += fmt.Sprintf("\nmean dsm/ssm ratio: %.2f over %d grid points",
			sum/float64(len(ratios)), len(ratios))
	}
	return t
}

// Spectrum sweeps the paper's §2.2 design space end to end on call-heavy
// tools: no merging (search-based symbolic execution), function summaries
// (MergeFunc, the compositional point), QCE-gated summaries, SSM+QCE, and
// DSM+QCE. The paper argues summaries sit between the extremes: fewer states
// than plain exploration but extra solver work where summarized values feed
// later branches; QCE-gated whole-program merging should win overall.
func Spectrum(opts Options) *Table {
	regimes := []struct {
		label string
		mut   func(*symx.Config)
	}{
		{"none", func(cfg *symx.Config) { cfg.Merge = symx.MergeNone }},
		{"func", func(cfg *symx.Config) { cfg.Merge = symx.MergeFunc }},
		{"func+qce", func(cfg *symx.Config) {
			cfg.Merge = symx.MergeFunc
			cfg.UseQCE = true
		}},
		{"ssm+qce", func(cfg *symx.Config) {
			cfg.Merge = symx.MergeSSM
			cfg.UseQCE = true
		}},
		{"dsm+qce", func(cfg *symx.Config) {
			cfg.Merge = symx.MergeDSM
			cfg.UseQCE = true
		}},
	}
	t := &Table{
		Title: "Design-space spectrum (paper §2.2): none / summaries / SSM / DSM",
		Comment: fmt.Sprintf("timeout %v; exhaustive exploration on call-heavy tools; sess_q counts queries answered by the incremental solver sessions",
			opts.Timeout),
		Header: []string{"tool", "regime", "t_s", "completed", "states", "merges", "queries", "sess_q", "blast_reuse"},
	}
	// Tools whose models route work through helper functions, so function
	// summaries have join points to act on.
	for _, name := range []string{"link", "expr", "base64"} {
		tool, err := coreutils.Get(name)
		if err != nil {
			panic(err)
		}
		for _, r := range regimes {
			out, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, 1)
				r.mut(cfg)
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			t.Rows = append(t.Rows, []string{
				name, r.label,
				fmt.Sprintf("%.3f", out.Elapsed),
				out.Status(),
				fmt.Sprint(out.States),
				fmt.Sprint(out.Merges),
				fmt.Sprint(out.Queries),
				fmt.Sprint(out.SessQueries),
				fmt.Sprint(out.SessReuse)})
		}
	}
	return t
}

// SolverSessions is the incremental-session ablation table: every tool runs
// the Figure-6-style SSM+QCE configuration twice — sessions on (default) and
// off — and reports wall time, solver time, and the session counters. The
// session arm blasts each path-condition conjunct once per lineage and
// answers repeat queries under assumptions; the off arm re-blasts the whole
// constraint set per query, which is the O(n²)-per-path overhead the
// sessions remove.
func SolverSessions(opts Options) *Table {
	t := &Table{
		Title: "Incremental solver sessions: blast-once/assume-many vs one-shot",
		Comment: fmt.Sprintf("timeout %v per run; SSM+QCE on every tool; reuse = conjunct blastings avoided",
			opts.Timeout),
		Header: []string{"tool", "t_oneshot_s", "t_session_s", "speedup",
			"sat_oneshot_s", "sat_session_s", "sess_q", "reuse", "bypass"},
	}
	var speedups []float64
	timeouts := 0
	for _, tool := range coreutils.All() {
		run := func(disable bool) RunOutcome {
			out, err := runTool(tool, func(cfg *symx.Config) {
				grow(tool, cfg, 2)
				cfg.Merge = symx.MergeSSM
				cfg.UseQCE = true
				cfg.DisableSessions = disable
				cfg.MaxTime = opts.Timeout
			}, opts)
			if err != nil {
				panic(err)
			}
			return out
		}
		oneShot := run(true)
		sess := run(false)
		wall := func(o RunOutcome) string {
			if !o.Completed {
				return "timeout"
			}
			return fmt.Sprintf("%.3f", o.Elapsed)
		}
		if !oneShot.Completed || !sess.Completed {
			// A timed-out arm makes the ratio meaningless; keep the row
			// (marked) so the exclusion from the mean stays visible.
			timeouts++
			t.Rows = append(t.Rows, []string{
				tool.Name, wall(oneShot), wall(sess), "-",
				fmt.Sprintf("%.3f", oneShot.SATTime),
				fmt.Sprintf("%.3f", sess.SATTime),
				fmt.Sprint(sess.SessQueries),
				fmt.Sprint(sess.SessReuse),
				fmt.Sprint(sess.SessBypasses)})
			continue
		}
		sp := oneShot.Elapsed / math.Max(sess.Elapsed, 1e-6)
		speedups = append(speedups, sp)
		t.Rows = append(t.Rows, []string{
			tool.Name, wall(oneShot), wall(sess),
			fmt.Sprintf("%.2f", sp),
			fmt.Sprintf("%.3f", oneShot.SATTime),
			fmt.Sprintf("%.3f", sess.SATTime),
			fmt.Sprint(sess.SessQueries),
			fmt.Sprint(sess.SessReuse),
			fmt.Sprint(sess.SessBypasses)})
	}
	if len(speedups) > 0 {
		var sum float64
		for _, s := range speedups {
			sum += s
		}
		t.Comment += fmt.Sprintf("\nmean wall-clock speedup: %.2fx over %d tools (%d timed-out rows excluded)",
			sum/float64(len(speedups)), len(speedups), timeouts)
	}
	return t
}

// ParallelScaling measures the parallel exploration subsystem: every tool
// runs exhaustively at Workers=1 and Workers=N (opts.Workers, default 4)
// and the table reports the wall-clock speedup together with an equality
// check of the exploration results — paths-multiplicity, coverage, and the
// set of distinct errors must be identical, the subsystem's core invariant.
// The sweep uses no merging, the regime where the two runs are strictly
// comparable state-for-state; sharded merging regimes keep the same path
// multiplicity but complete different state counts (merging is
// worker-local), so they are exercised by the differential test suite
// rather than timed here.
func ParallelScaling(opts Options) *Table {
	workers := opts.Workers
	if workers <= 1 {
		workers = 4
	}
	t := &Table{
		Title: fmt.Sprintf("Parallel scaling: %d workers vs 1 (shared-frontier sharding, work-stealing)", workers),
		Comment: fmt.Sprintf("timeout %v per run; no merging; identical = paths-multiplicity, coverage and error set match",
			opts.Timeout),
		Header: []string{"tool", "t_seq_s", "t_par_s", "speedup", "identical", "paths", "coverage"},
	}
	errSet := func(res *symx.Result) map[string]bool {
		out := map[string]bool{}
		for _, e := range res.Errors {
			out[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
		}
		return out
	}
	var speedups []float64
	timeouts, mismatches := 0, 0
	for _, tool := range coreutils.All() {
		p, err := tool.Compile()
		if err != nil {
			panic(err)
		}
		run := func(w int) *symx.Result {
			cfg := tool.BaseConfig()
			grow(tool, &cfg, 1)
			cfg.Seed = opts.Seed
			cfg.MaxTime = opts.Timeout
			cfg.Workers = w
			return symx.Run(p, cfg)
		}
		seq := run(1)
		par := run(workers)
		if !seq.Completed || !par.Completed {
			timeouts++
			t.Rows = append(t.Rows, []string{tool.Name, "timeout", "timeout", "-", "-", "-", "-"})
			continue
		}
		same := seq.Stats.PathsMult.Cmp(par.Stats.PathsMult) == 0 &&
			seq.Stats.CoveredInstrs == par.Stats.CoveredInstrs
		if same {
			se, pe := errSet(seq), errSet(par)
			same = len(se) == len(pe)
			for k := range se {
				same = same && pe[k]
			}
		}
		if !same {
			mismatches++
		}
		sp := seq.Stats.ElapsedSeconds / math.Max(par.Stats.ElapsedSeconds, 1e-6)
		speedups = append(speedups, sp)
		t.Rows = append(t.Rows, []string{
			tool.Name,
			fmt.Sprintf("%.3f", seq.Stats.ElapsedSeconds),
			fmt.Sprintf("%.3f", par.Stats.ElapsedSeconds),
			fmt.Sprintf("%.2f", sp),
			fmt.Sprint(same),
			fmtBig(par.Stats.PathsMult),
			fmt.Sprintf("%.1f%%", 100*par.Stats.Coverage())})
	}
	if len(speedups) > 0 {
		var sum float64
		for _, s := range speedups {
			sum += s
		}
		t.Comment += fmt.Sprintf("\nmean wall-clock speedup: %.2fx over %d tools (%d timed-out rows excluded, %d result mismatches)",
			sum/float64(len(speedups)), len(speedups), timeouts, mismatches)
	}
	return t
}

// FFStat reproduces the §5.5 in-text statistic: the fraction of states
// selected for fast-forwarding that were successfully merged (the paper
// measures 69% on average).
func FFStat(opts Options) *Table {
	t := &Table{
		Title:  "Fast-forwarding success rate (paper §5.5: 69% on average)",
		Header: []string{"tool", "ff_selected", "merges", "success_rate"},
	}
	var rates []float64
	for _, tool := range coreutils.All() {
		out, err := runTool(tool, func(cfg *symx.Config) {
			grow(tool, cfg, 2)
			cfg.Merge = symx.MergeDSM
			cfg.UseQCE = true
			cfg.Strategy = symx.StrategyCoverage
			cfg.MaxTime = opts.Budget
		}, opts)
		if err != nil {
			panic(err)
		}
		if out.FFRate > 0 {
			rates = append(rates, out.FFRate)
		}
		t.Rows = append(t.Rows, []string{
			tool.Name, fmt.Sprint(out.FFSelected), fmt.Sprint(out.FFMerged),
			fmt.Sprintf("%.0f%%", 100*out.FFRate)})
	}
	if len(rates) > 0 {
		var sum float64
		for _, r := range rates {
			sum += r
		}
		t.Comment = fmt.Sprintf("mean success rate: %.0f%%", 100*sum/float64(len(rates)))
	}
	return t
}
