package bench

import (
	"testing"
	"time"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

// BenchmarkSummaryReuse measures what a warm summary cache is worth: the
// same SSM+QCE exploration of a summary-heavy tool against a cold domain
// (every iteration records its own summaries) and against a domain seeded
// by one prior run (every call site is a cache hit). The gap between the
// two is the record-once/apply-many payoff the cache exists for.
func BenchmarkSummaryReuse(b *testing.B) {
	tool, err := coreutils.Get("sleep")
	if err != nil {
		b.Fatal(err)
	}
	p, err := tool.Compile()
	if err != nil {
		b.Fatal(err)
	}
	run := func(dom *symx.SummaryDomain) *symx.Result {
		cfg := tool.BaseConfig()
		cfg.Merge = symx.MergeSSM
		cfg.UseQCE = true
		cfg.MaxTime = 30 * time.Second
		cfg.Summaries = true
		cfg.SummaryDomain = dom
		return symx.Run(p, cfg)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := run(symx.NewSummaryDomain())
			if res.Stats.SummaryRecords == 0 {
				b.Fatal("cold run recorded no summaries")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		dom := symx.NewSummaryDomain()
		run(dom) // seed the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := run(dom)
			if res.Stats.SummaryRecords != 0 {
				b.Fatal("warm run re-recorded a summary")
			}
			if res.Stats.SummaryHits == 0 {
				b.Fatal("warm run missed the cache")
			}
		}
	})
}
