package ir

// A direct concrete interpreter for the IR. It shares no code with the
// symbolic engine (internal/core) or the expression layer (internal/expr):
// arithmetic is implemented on plain Go integers here, so it serves as an
// independent execution oracle. The engine's concrete-replay mode and this
// interpreter must agree on every terminating program — the differential
// tests in symx rely on that.
//
// Semantic notes (matching the engine's published MiniC semantics):
//   - int is 32-bit signed, byte 8-bit unsigned; division and shifts follow
//     SMT-LIB fixed-width conventions (udiv by zero = all-ones, urem by zero
//     = dividend, sdiv/srem by zero sign-dependent, shifts by >= width
//     saturate);
//   - out-of-bounds array reads yield 0 and out-of-bounds writes are
//     dropped (the engine's behaviour when CheckBounds is off);
//   - heap reads through unmapped or out-of-bounds pointers yield 0 and the
//     corresponding writes are dropped; alloc zero-initializes and mints
//     allocation-site-canonical addresses (ir.HeapBase), so addresses agree
//     with the symbolic engine's on every path;
//   - argv is zero-terminated: reads past an argument's end (or with an
//     out-of-range index) yield 0; argv[0] is the fixed program name.

import (
	"errors"
	"fmt"
)

// InterpResult is the outcome of a concrete interpretation.
type InterpResult struct {
	Output []byte
	Exit   int64
	// AssertFailed is set when an assert aborted the run; Msg holds its
	// message and Loc where it tripped.
	AssertFailed bool
	Msg          string
	Loc          Loc
	// AssumeFailed marks a run stopped by a false assume (no observable
	// path; the symbolic engine drops such paths silently).
	AssumeFailed bool
	Steps        uint64
	// Covered is the per-location execution bitmap, indexed by
	// Program.LocIndex, when coverage accounting was requested
	// (InterpOptions.Coverage); nil otherwise. It marks exactly the
	// instructions this run executed — the same location space the
	// symbolic engine's coverage bitmap uses — so a concrete replay's
	// coverage is directly comparable to a symbolic exploration's.
	Covered []bool
}

// InterpOptions configures a concrete interpretation.
type InterpOptions struct {
	// MaxSteps bounds the run; 0 means 1e8 instructions.
	MaxSteps uint64
	// Coverage enables the per-location execution bitmap in the result.
	Coverage bool
}

// ErrBudget is returned when the interpreter exceeds its step budget.
var ErrBudget = errors.New("ir: interpreter step budget exhausted")

// ErrSymbolic is returned when the program requests symbolic input, which a
// concrete interpreter cannot provide.
var ErrSymbolic = errors.New("ir: symbolic intrinsic reached in concrete interpretation")

// ErrAlloc is returned when an allocation is invalid: a negative or
// over-large size, or an allocation site executed more than HeapSiteSpan
// times. The symbolic engine turns the same conditions into (non-replayable)
// path errors, so a stored corpus never contains an input that trips this.
var ErrAlloc = errors.New("ir: invalid heap allocation")

const interpProgName = "prog"

// iframe is one activation record of the interpreter.
type iframe struct {
	fn     *Func
	pc     int
	retDst int
	regs   []uint64   // scalar registers, truncated to their width
	arrs   [][]uint64 // array storage for owning locals; nil for params
	refs   []int      // for array params: index into the interp arena
}

// Interp runs the program on concrete inputs. maxSteps bounds the run
// (0 means 1e8 instructions).
func Interp(p *Program, args [][]byte, stdin []byte, maxSteps uint64) (*InterpResult, error) {
	return InterpWith(p, args, stdin, InterpOptions{MaxSteps: maxSteps})
}

// InterpWith is Interp with options; the corpus replay oracle uses it to
// collect the covered-location set of each test input.
func InterpWith(p *Program, args [][]byte, stdin []byte, opts InterpOptions) (*InterpResult, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1e8
	}
	it := &interp{prog: p, args: args, stdin: stdin, budget: opts.MaxSteps}
	if opts.Coverage {
		it.result.Covered = make([]bool, p.NumLocations())
		it.locBase = make([]int, len(p.Funcs))
		base := 0
		for i, f := range p.Funcs {
			it.locBase[i] = base
			base += len(f.Instrs)
		}
	}
	return it.run()
}

type interp struct {
	prog   *Program
	args   [][]byte
	stdin  []byte
	budget uint64

	// locBase flattens (function, pc) into the coverage bitmap index the
	// same way Program.LocIndex does; nil when coverage is off.
	locBase []int

	// arena holds every live array object; frames reference objects by
	// arena index so by-reference parameters alias correctly.
	arena [][]uint64

	// heap maps an address's object field (HeapObjField; objectID+1) to its
	// cell storage; siteCount numbers allocations per site so addresses are
	// allocation-site-canonical and match the symbolic engine's exactly.
	heap      map[uint32][]uint64
	siteCount []int

	stack  []*iframe
	out    []byte
	result InterpResult
}

// newFrame allocates registers and array storage for a call to fn.
func (it *interp) newFrame(fn *Func, retDst int) *iframe {
	f := &iframe{
		fn:     fn,
		retDst: retDst,
		regs:   make([]uint64, len(fn.Locals)),
		refs:   make([]int, len(fn.Locals)),
	}
	for i := range f.refs {
		f.refs[i] = -1
	}
	for i, l := range fn.Locals {
		if l.Type.Array() {
			it.arena = append(it.arena, make([]uint64, l.Type.Len))
			f.refs[i] = len(it.arena) - 1
		}
	}
	return f
}

func (it *interp) top() *iframe { return it.stack[len(it.stack)-1] }

// val reads a scalar operand in the current frame.
func (f *iframe) val(o Operand, t Type) uint64 {
	if o.IsConst {
		return truncTo(uint64(o.Const), t)
	}
	return f.regs[o.Local]
}

// truncTo truncates a raw value to a scalar type's width.
func truncTo(v uint64, t Type) uint64 {
	switch t.Kind {
	case Bool:
		return v & 1
	case Byte:
		return v & 0xff
	default:
		return v & 0xffffffff
	}
}

func sext32(v uint64) int64 { return int64(int32(uint32(v))) }

func (it *interp) run() (*InterpResult, error) {
	it.stack = append(it.stack, it.newFrame(it.prog.Main, -1))
	for {
		if it.result.Steps >= it.budget {
			return nil, ErrBudget
		}
		it.result.Steps++
		f := it.top()
		if f.pc >= len(f.fn.Instrs) {
			if done := it.doReturn(0, false); done {
				break
			}
			continue
		}
		in := &f.fn.Instrs[f.pc]
		if it.locBase != nil {
			it.result.Covered[it.locBase[f.fn.Index]+f.pc] = true
		}
		switch in.Op {
		case OpNop:
			f.pc++
		case OpMov:
			f.regs[in.Dst] = f.val(in.A, in.T)
			f.pc++
		case OpNot:
			f.regs[in.Dst] = 1 - f.val(in.A, Type{Kind: Bool})
			f.pc++
		case OpNeg:
			f.regs[in.Dst] = truncTo(-f.val(in.A, in.T), in.T)
			f.pc++
		case OpBNot:
			f.regs[in.Dst] = truncTo(^f.val(in.A, in.T), in.T)
			f.pc++
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOrB, OpXor,
			OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpBoolAnd, OpBoolOr:
			f.regs[in.Dst] = binOp(in.Op, f.val(in.A, in.T), f.val(in.B, in.T), in.T)
			f.pc++
		case OpIntToByte:
			f.regs[in.Dst] = f.val(in.A, Type{Kind: Int}) & 0xff
			f.pc++
		case OpByteToInt:
			f.regs[in.Dst] = f.val(in.A, Type{Kind: Byte})
			f.pc++
		case OpBoolToInt:
			f.regs[in.Dst] = f.val(in.A, Type{Kind: Bool})
			f.pc++
		case OpLoad:
			arr := it.arrOf(f, in.A.Local)
			idx := sext32(f.val(in.B, Type{Kind: Int}))
			var v uint64
			if idx >= 0 && idx < int64(len(arr)) {
				v = arr[idx]
			}
			f.regs[in.Dst] = v
			f.pc++
		case OpStore:
			// Dst is the array local, A the index, B the value.
			arr := it.arrOf(f, in.Dst)
			idx := sext32(f.val(in.A, Type{Kind: Int}))
			v := f.val(in.B, in.T)
			if idx >= 0 && idx < int64(len(arr)) {
				arr[idx] = v
			}
			f.pc++
		case OpAlloc:
			base, err := it.alloc(in.Site, sext32(f.val(in.A, Type{Kind: Int})))
			if err != nil {
				return nil, err
			}
			f.regs[in.Dst] = uint64(base)
			f.pc++
		case OpPtrLoad:
			addr := uint32(f.val(in.A, Type{Kind: Ptr}))
			var v uint64
			if obj, ok := it.heap[HeapObjField(addr)]; ok {
				if off := HeapOffset(addr); int(off) < len(obj) {
					v = obj[off]
				}
			}
			f.regs[in.Dst] = v
			f.pc++
		case OpPtrStore:
			addr := uint32(f.val(in.A, Type{Kind: Ptr}))
			if obj, ok := it.heap[HeapObjField(addr)]; ok {
				if off := HeapOffset(addr); int(off) < len(obj) {
					obj[off] = f.val(in.B, Type{Kind: Int})
				}
			}
			f.pc++
		case OpBr:
			f.pc = in.Target
		case OpCondBr:
			if f.val(in.A, Type{Kind: Bool}) != 0 {
				f.pc = in.Target
			} else {
				f.pc = in.FTarget
			}
		case OpCall:
			callee := it.prog.Funcs[in.Callee]
			nf := it.newFrame(callee, in.Dst)
			for i, a := range in.Args {
				pt := callee.Locals[i].Type
				if pt.Array() {
					nf.refs[i] = it.refOf(f, a.Local)
				} else {
					nf.regs[i] = f.val(a, pt)
				}
			}
			f.pc++
			it.stack = append(it.stack, nf)
		case OpRet:
			var rv uint64
			if in.HasVal {
				rv = f.val(in.A, in.T)
			}
			if done := it.doReturn(rv, in.HasVal); done {
				return it.finish(), nil
			}
		case OpHalt:
			if in.HasVal {
				it.result.Exit = sext32(f.val(in.A, in.T))
			}
			return it.finish(), nil
		case OpArgc:
			f.regs[in.Dst] = uint64(len(it.args) + 1)
			f.pc++
		case OpArgChar:
			a := sext32(f.val(in.A, Type{Kind: Int}))
			c := sext32(f.val(in.B, Type{Kind: Int}))
			f.regs[in.Dst] = uint64(it.argChar(a, c))
			f.pc++
		case OpStdin:
			i := sext32(f.val(in.A, Type{Kind: Int}))
			var v byte
			if i >= 0 && i < int64(len(it.stdin)) {
				v = it.stdin[i]
			}
			f.regs[in.Dst] = uint64(v)
			f.pc++
		case OpStdinLen:
			f.regs[in.Dst] = uint64(len(it.stdin))
			f.pc++
		case OpOut:
			it.out = append(it.out, byte(f.val(in.A, in.T)))
			f.pc++
		case OpAssert:
			if f.val(in.A, Type{Kind: Bool}) == 0 {
				it.result.AssertFailed = true
				it.result.Msg = in.Msg
				it.result.Loc = Loc{Fn: f.fn.Index, PC: f.pc}
				return it.finish(), nil
			}
			f.pc++
		case OpAssume:
			if f.val(in.A, Type{Kind: Bool}) == 0 {
				it.result.AssumeFailed = true
				return it.finish(), nil
			}
			f.pc++
		case OpSymInt, OpSymByte, OpSymBool, OpMakeSymArr:
			return nil, ErrSymbolic
		default:
			return nil, fmt.Errorf("ir: interpreter hit unknown opcode %v", in.Op)
		}
	}
	return it.finish(), nil
}

func (it *interp) finish() *InterpResult {
	it.result.Output = it.out
	return &it.result
}

// doReturn pops the frame; reports true when main returned.
func (it *interp) doReturn(rv uint64, hasVal bool) bool {
	top := it.top()
	it.stack = it.stack[:len(it.stack)-1]
	if len(it.stack) == 0 {
		if hasVal {
			it.result.Exit = sext32(rv)
		}
		return true
	}
	if top.retDst >= 0 && hasVal {
		it.top().regs[top.retDst] = rv
	}
	return false
}

// alloc creates the next heap object at the given allocation site and
// returns its base address. Cells are zero-initialized (the published MiniC
// semantics: alloc behaves like calloc, so every read is determinate).
func (it *interp) alloc(site int, n int64) (uint32, error) {
	if n < 0 || n > HeapMaxCells {
		return 0, fmt.Errorf("%w: size %d out of range", ErrAlloc, n)
	}
	if it.heap == nil {
		it.heap = map[uint32][]uint64{}
		it.siteCount = make([]int, it.prog.AllocSites)
	}
	count := it.siteCount[site]
	if count >= HeapSiteSpan || site*HeapSiteSpan+count > HeapMaxID {
		return 0, fmt.Errorf("%w: site %d allocated %d times", ErrAlloc, site, count)
	}
	it.siteCount[site] = count + 1
	base := HeapBase(site, count)
	it.heap[HeapObjField(base)] = make([]uint64, n)
	return base, nil
}

// refOf resolves the arena index of an array local (own or parameter).
func (it *interp) refOf(f *iframe, local int) int {
	return f.refs[local]
}

// arrOf returns the storage of an array local.
func (it *interp) arrOf(f *iframe, local int) []uint64 {
	return it.arena[f.refs[local]]
}

// argChar reads argv[a][c] with the engine's conventions.
func (it *interp) argChar(a, c int64) byte {
	if c < 0 {
		return 0
	}
	if a == 0 {
		if c < int64(len(interpProgName)) {
			return interpProgName[c]
		}
		return 0
	}
	if a < 1 || a > int64(len(it.args)) {
		return 0
	}
	arg := it.args[a-1]
	if c < int64(len(arg)) {
		return arg[c]
	}
	return 0
}

// binOp implements the typed binary operators with SMT-LIB fixed-width
// semantics, independent of internal/expr.
func binOp(op Op, a, b uint64, t Type) uint64 {
	signed := t.Kind == Int
	width := uint64(32)
	allOnes := uint64(0xffffffff)
	if t.Kind == Byte {
		width, allOnes = 8, 0xff
	}
	sa, sb := sext32(a), sext32(b)
	if t.Kind == Byte {
		sa, sb = int64(a), int64(b) // bytes compare unsigned
	}
	tr := func(v uint64) uint64 { return v & allOnes }
	bv := func(c bool) uint64 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return tr(a + b)
	case OpSub:
		return tr(a - b)
	case OpMul:
		return tr(a * b)
	case OpDiv:
		if !signed {
			if b == 0 {
				return allOnes
			}
			return a / b
		}
		switch {
		case sb == 0 && sa < 0:
			return 1
		case sb == 0:
			return allOnes
		case sa == -(1<<31) && sb == -1:
			return tr(uint64(sa))
		default:
			return tr(uint64(sa / sb))
		}
	case OpRem:
		if !signed {
			if b == 0 {
				return a
			}
			return a % b
		}
		switch {
		case sb == 0:
			return tr(uint64(sa))
		case sa == -(1<<31) && sb == -1:
			return 0
		default:
			return tr(uint64(sa % sb))
		}
	case OpAnd:
		return a & b
	case OpOrB:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		if b >= width {
			return 0
		}
		return tr(a << b)
	case OpShr:
		if !signed {
			if b >= width {
				return 0
			}
			return a >> b
		}
		sh := b
		if sh >= width {
			sh = width - 1
		}
		return tr(uint64(sa >> sh))
	case OpEq:
		return bv(a == b)
	case OpNe:
		return bv(a != b)
	case OpLt:
		if signed {
			return bv(sa < sb)
		}
		return bv(a < b)
	case OpLe:
		if signed {
			return bv(sa <= sb)
		}
		return bv(a <= b)
	case OpBoolAnd:
		return a & b
	case OpBoolOr:
		return a | b
	}
	panic("ir: binOp on " + op.String())
}
