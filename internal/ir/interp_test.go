package ir_test

// Unit tests for the concrete IR interpreter. The cross-validation against
// the symbolic engine's replay mode lives in symx (differential fuzz); here
// the interpreter's own semantics are pinned on hand-written programs.

import (
	"testing"

	"symmerge/internal/ir"
	"symmerge/internal/lang"
)

func interpRun(t *testing.T, src string, args []string, stdin string) *ir.InterpResult {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	bargs := make([][]byte, len(args))
	for i, a := range args {
		bargs[i] = []byte(a)
	}
	res, err := ir.Interp(p, bargs, []byte(stdin), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInterpEcho(t *testing.T) {
	src := `
void main() {
    int r = 1;
    int arg = 1;
    if (arg < argc()) {
        if (argchar(arg, 0) == '-' && argchar(arg, 1) == 'n' && argchar(arg, 2) == 0) {
            r = 0;
            arg++;
        }
    }
    for (; arg < argc(); arg++) {
        for (int i = 0; argchar(arg, i) != 0; i++) {
            putchar(argchar(arg, i));
        }
    }
    if (r != 0) { putchar('\n'); }
}
`
	res := interpRun(t, src, []string{"-n", "hi"}, "")
	if string(res.Output) != "hi" {
		t.Fatalf("output %q, want \"hi\"", res.Output)
	}
	res = interpRun(t, src, []string{"yo"}, "")
	if string(res.Output) != "yo\n" {
		t.Fatalf("output %q, want \"yo\\n\"", res.Output)
	}
}

func TestInterpArraysAndCalls(t *testing.T) {
	src := `
void fill(byte buf[4], byte v) {
    for (int i = 0; i < 4; i++) {
        buf[i] = v + tobyte(i);
    }
}
void main() {
    byte b[4];
    fill(b, 'a');
    for (int i = 0; i < 4; i++) {
        putchar(b[i]);
    }
}
`
	res := interpRun(t, src, nil, "")
	if string(res.Output) != "abcd" {
		t.Fatalf("output %q, want abcd (by-reference array param broken)", res.Output)
	}
}

func TestInterpSignedArithmetic(t *testing.T) {
	src := `
void main() {
    int a = -7;
    if (a / 2 == -3) { putchar('q'); }
    if (a % 2 == -1) { putchar('r'); }
    if (a >> 1 == -4) { putchar('s'); }   // arithmetic shift
    byte b = 200;
    if (b > 100) { putchar('u'); }        // bytes unsigned
    int z = 5 / 0;                        // SMT-LIB: positive / 0 = -1
    if (z == -1) { putchar('z'); }
    int w = -5 / 0;                       // negative / 0 = 1
    if (w == 1) { putchar('w'); }
}
`
	res := interpRun(t, src, nil, "")
	if string(res.Output) != "qrsuzw" {
		t.Fatalf("output %q, want qrsuzw", res.Output)
	}
}

func TestInterpHaltAndExit(t *testing.T) {
	res := interpRun(t, `void main() { putchar('x'); halt(3); putchar('y'); }`, nil, "")
	if string(res.Output) != "x" || res.Exit != 3 {
		t.Fatalf("got output %q exit %d", res.Output, res.Exit)
	}
}

func TestInterpAssertFailure(t *testing.T) {
	res := interpRun(t, `void main() { assert(argc() == 5); putchar('n'); }`, nil, "")
	if !res.AssertFailed {
		t.Fatal("assert did not trip")
	}
	if len(res.Output) != 0 {
		t.Fatalf("output %q after failed assert", res.Output)
	}
}

func TestInterpAssumeStops(t *testing.T) {
	res := interpRun(t, `void main() { assume(false); putchar('n'); }`, nil, "")
	if !res.AssumeFailed || len(res.Output) != 0 {
		t.Fatalf("assume(false) produced %+v", res)
	}
}

func TestInterpStdin(t *testing.T) {
	src := `
void main() {
    int n = stdinlen();
    for (int i = n - 1; i >= 0; i--) {
        putchar(stdinchar(i));
    }
}
`
	res := interpRun(t, src, nil, "abc")
	if string(res.Output) != "cba" {
		t.Fatalf("output %q, want cba", res.Output)
	}
}

func TestInterpOutOfBounds(t *testing.T) {
	src := `
void main() {
    byte b[2];
    b[0] = 7;
    b[5] = 9;                   // dropped
    if (b[5] == 0) { putchar('o'); }   // OOB read = 0
    if (b[-1] == 0) { putchar('n'); }  // negative read = 0
    putchar(tobyte('0' + toint(b[0])));
}
`
	res := interpRun(t, src, nil, "")
	if string(res.Output) != "on7" {
		t.Fatalf("output %q, want on7", res.Output)
	}
}

func TestInterpBudget(t *testing.T) {
	p, err := lang.Compile(`void main() { while (true) { } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Interp(p, nil, nil, 1000); err != ir.ErrBudget {
		t.Fatalf("infinite loop returned %v, want ErrBudget", err)
	}
}

func TestInterpRejectsSymbolic(t *testing.T) {
	p, err := lang.Compile(`void main() { int x = sym_int(); putchar(tobyte(x)); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ir.Interp(p, nil, nil, 0); err != ir.ErrSymbolic {
		t.Fatalf("symbolic intrinsic returned %v, want ErrSymbolic", err)
	}
}

func TestInterpRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() {
    putchar(tobyte('0' + fib(10) % 10));  // fib(10) = 55
}
`
	res := interpRun(t, src, nil, "")
	if string(res.Output) != "5" {
		t.Fatalf("output %q, want 5", res.Output)
	}
}
