package ir

import (
	"strings"
	"testing"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		typ    Type
		scalar bool
		array  bool
		width  uint8
	}{
		{Type{Kind: Bool}, true, false, 1},
		{Type{Kind: Byte}, true, false, 8},
		{Type{Kind: Int}, true, false, 32},
		{Type{Kind: ArrayByte, Len: 4}, false, true, 0},
		{Type{Kind: ArrayInt, Len: 2}, false, true, 0},
	}
	for _, c := range cases {
		if c.typ.Scalar() != c.scalar {
			t.Errorf("%v.Scalar() = %v", c.typ, c.typ.Scalar())
		}
		if c.typ.Array() != c.array {
			t.Errorf("%v.Array() = %v", c.typ, c.typ.Array())
		}
		if c.scalar && c.typ.Width() != c.width {
			t.Errorf("%v.Width() = %d, want %d", c.typ, c.typ.Width(), c.width)
		}
	}
	if e := (Type{Kind: ArrayByte, Len: 4}).Elem(); e.Kind != Byte {
		t.Errorf("ArrayByte elem = %v", e)
	}
	if e := (Type{Kind: ArrayInt, Len: 4}).Elem(); e.Kind != Int {
		t.Errorf("ArrayInt elem = %v", e)
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"void":    {Kind: Void},
		"bool":    {Kind: Bool},
		"byte":    {Kind: Byte},
		"int":     {Kind: Int},
		"byte[4]": {Kind: ArrayByte, Len: 4},
		"int[2]":  {Kind: ArrayInt, Len: 2},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v prints %q, want %q", typ.Kind, got, want)
		}
	}
}

func TestSuccessors(t *testing.T) {
	cases := []struct {
		in   Instr
		pc   int
		want []int
	}{
		{Instr{Op: OpBr, Target: 7}, 3, []int{7}},
		{Instr{Op: OpCondBr, Target: 5, FTarget: 9}, 3, []int{5, 9}},
		{Instr{Op: OpRet}, 3, nil},
		{Instr{Op: OpHalt}, 3, nil},
		{Instr{Op: OpMov}, 3, []int{4}},
		{Instr{Op: OpCall}, 3, []int{4}},
	}
	for _, c := range cases {
		got := c.in.Successors(c.pc, nil)
		if len(got) != len(c.want) {
			t.Fatalf("%v successors = %v, want %v", c.in.Op, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v successors = %v, want %v", c.in.Op, got, c.want)
			}
		}
	}
}

func TestTerminators(t *testing.T) {
	terms := []Op{OpBr, OpCondBr, OpRet, OpHalt}
	for _, op := range terms {
		if !(&Instr{Op: op}).IsTerminator() {
			t.Errorf("%v not a terminator", op)
		}
	}
	for _, op := range []Op{OpMov, OpAdd, OpCall, OpAssert, OpOut} {
		if (&Instr{Op: op}).IsTerminator() {
			t.Errorf("%v misclassified as terminator", op)
		}
	}
	if !(&Instr{Op: OpCondBr}).IsBranch() || (&Instr{Op: OpBr}).IsBranch() {
		t.Error("IsBranch wrong")
	}
}

func TestLocIndexDense(t *testing.T) {
	p := &Program{
		Funcs: []*Func{
			{Name: "a", Index: 0, Instrs: make([]Instr, 3)},
			{Name: "b", Index: 1, Instrs: make([]Instr, 2)},
		},
	}
	seen := map[int]bool{}
	for fi, f := range p.Funcs {
		for pc := range f.Instrs {
			idx := p.LocIndex(Loc{Fn: fi, PC: pc})
			if idx < 0 || idx >= p.NumLocations() {
				t.Fatalf("index %d out of range", idx)
			}
			if seen[idx] {
				t.Fatalf("index %d not unique", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 5 || p.NumLocations() != 5 {
		t.Fatalf("expected 5 dense locations, got %d", len(seen))
	}
}

func TestDisassembly(t *testing.T) {
	f := &Func{
		Name:   "f",
		Ret:    Type{Kind: Int},
		Params: 1,
		Locals: []Local{{Name: "x", Type: Type{Kind: Int}}, {Name: "t", Type: Type{Kind: Bool}}},
		Instrs: []Instr{
			{Op: OpLt, Dst: 1, A: LocalOp(0), B: ConstOp(5), T: Type{Kind: Int}},
			{Op: OpCondBr, Dst: -1, A: LocalOp(1), Target: 3, FTarget: 2},
			{Op: OpRet, Dst: -1, A: ConstOp(0), HasVal: true},
			{Op: OpRet, Dst: -1, A: LocalOp(0), HasVal: true},
		},
	}
	s := f.String()
	for _, want := range []string{"func f(", "lt", "condbr", "%x", "@3", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpCondBr.String() != "condbr" {
		t.Error("op names wrong")
	}
	if (Loc{Fn: 1, PC: 2}).String() != "1:2" {
		t.Error("loc format wrong")
	}
	if (Pos{Line: 3, Col: 4}).String() != "3:4" {
		t.Error("pos format wrong")
	}
}
