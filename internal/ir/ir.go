// Package ir defines the three-address register IR that the MiniC compiler
// targets and the symbolic execution engine interprets.
//
// A program is a set of functions; each function is a flat list of
// instructions addressed by index. A location in the sense of the paper's
// Algorithm 1 is a (function, instruction index) pair. Branch targets are
// instruction indices, so every instruction boundary is a potential merge
// point.
//
// Scalar values are 32-bit ints, 8-bit bytes, booleans, and 32-bit heap
// pointers. Arrays are fixed-size and referenced by handle: an array-typed
// local holds a reference to a memory object owned by the executing state.
// Dynamically allocated objects live on a separate heap of 32-bit cells:
// OpAlloc mints allocation-site-canonical addresses (see the Heap*
// constants) and OpPtrLoad/OpPtrStore dereference them, so pointer
// arithmetic is plain 32-bit arithmetic on addresses. The symbolic command
// line (argv) and stdin are exposed through dedicated opcodes, mirroring how
// the paper's evaluation marks program inputs symbolic without modelling a
// full OS environment.
package ir

import (
	"fmt"
	"strings"
)

// TypeKind enumerates the scalar and array types of MiniC.
type TypeKind uint8

// Type kinds.
const (
	Void TypeKind = iota
	Bool
	Byte // 8-bit unsigned
	Int  // 32-bit signed
	Ptr  // 32-bit heap address (see the heap addressing constants below)
	ArrayByte
	ArrayInt
)

// Type is a MiniC type: a kind plus an element count for arrays.
type Type struct {
	Kind TypeKind
	Len  int // number of elements for array kinds
}

// Scalar reports whether the type is bool, byte, int or ptr.
func (t Type) Scalar() bool {
	return t.Kind == Bool || t.Kind == Byte || t.Kind == Int || t.Kind == Ptr
}

// Array reports whether the type is an array.
func (t Type) Array() bool { return t.Kind == ArrayByte || t.Kind == ArrayInt }

// Elem returns the element type of an array type.
func (t Type) Elem() Type {
	switch t.Kind {
	case ArrayByte:
		return Type{Kind: Byte}
	case ArrayInt:
		return Type{Kind: Int}
	}
	panic("ir: Elem of non-array type")
}

// Width returns the bit width of a scalar type (bool is 1 solver-side but
// tracked as width 0 expressions; Width reports the storage width).
func (t Type) Width() uint8 {
	switch t.Kind {
	case Bool:
		return 1
	case Byte:
		return 8
	case Int, Ptr:
		return 32
	}
	panic(fmt.Sprintf("ir: Width of non-scalar type %v", t))
}

func (t Type) String() string {
	switch t.Kind {
	case Void:
		return "void"
	case Bool:
		return "bool"
	case Byte:
		return "byte"
	case Int:
		return "int"
	case Ptr:
		return "ptr"
	case ArrayByte:
		return fmt.Sprintf("byte[%d]", t.Len)
	case ArrayInt:
		return fmt.Sprintf("int[%d]", t.Len)
	}
	return "?"
}

// Local is a function-local register (parameters included).
type Local struct {
	Name string
	Type Type
}

// Operand is either a constant or a local register reference.
type Operand struct {
	IsConst bool
	Const   int64 // constant value (for bool: 0/1)
	Local   int   // register index when !IsConst
}

// ConstOp returns a constant operand.
func ConstOp(v int64) Operand { return Operand{IsConst: true, Const: v} }

// LocalOp returns a register operand.
func LocalOp(idx int) Operand { return Operand{Local: idx} }

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes.
const (
	OpNop Op = iota

	// Dst = UnOp A
	OpMov
	OpNot  // boolean not
	OpNeg  // arithmetic negation
	OpBNot // bitwise complement

	// Dst = A BinOp B
	OpAdd
	OpSub
	OpMul
	OpDiv // signed for Int, unsigned for Byte
	OpRem
	OpAnd // bitwise
	OpOrB
	OpXor
	OpShl
	OpShr // arithmetic for Int, logical for Byte
	OpEq
	OpNe
	OpLt // signed for Int, unsigned for Byte
	OpLe
	OpBoolAnd // strict (non-short-circuit) boolean ops
	OpBoolOr

	// Conversions: Dst = conv(A).
	OpIntToByte
	OpByteToInt
	OpBoolToInt

	// Memory: arrays are locals of array type.
	OpLoad  // Dst = Arr[Idx]
	OpStore // Arr[Idx] = Val

	// Heap: dynamically allocated objects of 32-bit cells addressed through
	// ptr values (see the Heap* constants for the address encoding).
	OpAlloc    // Dst = base address of a fresh A-cell object at site Site
	OpPtrLoad  // Dst = heap cell at address A (0 when unmapped/out of bounds)
	OpPtrStore // heap cell at address A = B (dropped when unmapped/out of bounds)

	// Control flow.
	OpBr     // unconditional jump to Target
	OpCondBr // if Cond then Target else FTarget
	OpCall   // Dst? = Funcs[Callee](Args...)
	OpRet    // return A? (A valid if HasVal)

	// Environment and checking.
	OpArgc    // Dst = number of command line arguments (incl. program name)
	OpArgChar // Dst = argv[A][B] as byte (0 beyond the terminator)
	OpStdin   // Dst = stdin[A] as byte (0 beyond end)
	OpStdinLen
	OpOut        // emit byte A to the program's output stream
	OpAssert     // abort the path if A is false
	OpAssume     // constrain the path condition with A
	OpHalt       // terminate the program (exit code A if HasVal)
	OpSymInt     // Dst = fresh symbolic int input
	OpSymByte    // Dst = fresh symbolic byte input
	OpSymBool    // Dst = fresh symbolic bool input
	OpMakeSymArr // make the array local A fully symbolic

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpMov: "mov", OpNot: "not", OpNeg: "neg", OpBNot: "bnot",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOrB: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le",
	OpBoolAnd: "band", OpBoolOr: "bor",
	OpIntToByte: "i2b", OpByteToInt: "b2i", OpBoolToInt: "bool2i",
	OpLoad: "load", OpStore: "store",
	OpAlloc: "alloc", OpPtrLoad: "pload", OpPtrStore: "pstore",
	OpBr: "br", OpCondBr: "condbr", OpCall: "call", OpRet: "ret",
	OpArgc: "argc", OpArgChar: "argchar", OpStdin: "stdin", OpStdinLen: "stdinlen",
	OpOut: "out", OpAssert: "assert", OpAssume: "assume", OpHalt: "halt",
	OpSymInt: "symint", OpSymByte: "symbyte", OpSymBool: "symbool",
	OpMakeSymArr: "symarr",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is a single three-address instruction.
type Instr struct {
	Op      Op
	Dst     int     // destination register, -1 if none
	A, B    Operand // operands (meaning depends on Op)
	Target  int     // branch target (OpBr, OpCondBr true-arm)
	FTarget int     // OpCondBr false-arm
	Callee  int     // function index for OpCall
	Site    int     // allocation-site index for OpAlloc (program-wide)
	Args    []Operand
	HasVal  bool   // OpRet/OpHalt carry a value
	Msg     string // OpAssert message
	Pos     Pos    // source position for diagnostics
	T       Type   // operand scalar type (signedness/width) for arithmetic,
	// comparisons, loads and stores
}

// Pos is a source location.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Func is a compiled function.
type Func struct {
	Name   string
	Index  int // position in Program.Funcs
	Params int // first Params locals are the parameters
	Ret    Type
	Locals []Local
	Instrs []Instr
}

// Program is a compiled MiniC program.
type Program struct {
	Funcs  []*Func
	ByName map[string]*Func
	Main   *Func
	Source string // original source text, for diagnostics
	// AllocSites is the number of distinct OpAlloc instructions; execution
	// engines size their per-site allocation counters with it.
	AllocSites int
}

// Heap addressing. A ptr value is a 32-bit address whose high 16 bits name a
// heap object and whose low 16 bits are a cell offset into it. The object
// field stores objectID+1, so the null pointer 0 (and any address with a zero
// object field) maps to no object. Object IDs are allocation-site-canonical:
// id = site*HeapSiteSpan + n for the n-th allocation executed at that site
// along the current path. Two execution states forked from a common prefix
// therefore assign the same address to "the next allocation at site s", which
// is what makes heap-carrying states mergeable, and lets the independent
// concrete interpreter agree with the symbolic engine byte-for-byte.
const (
	HeapOffBits  = 16               // low bits: cell offset within the object
	HeapMaxCells = 1 << HeapOffBits // maximum cells per object
	HeapSiteSpan = 256              // allocations per site before overflow
	HeapMaxID    = (1 << 16) - 2    // ids above this cannot be encoded (+1 wraps)
)

// HeapBase returns the base address of the n-th object allocated at site.
func HeapBase(site, n int) uint32 {
	return uint32(site*HeapSiteSpan+n+1) << HeapOffBits
}

// HeapObjField extracts the object field (objectID+1; 0 = no object).
func HeapObjField(addr uint32) uint32 { return addr >> HeapOffBits }

// HeapOffset extracts the cell offset.
func HeapOffset(addr uint32) uint32 { return addr & (HeapMaxCells - 1) }

// Loc is a program location: the paper's ℓ.
type Loc struct {
	Fn int // function index
	PC int // instruction index
}

func (l Loc) String() string { return fmt.Sprintf("%d:%d", l.Fn, l.PC) }

// FuncOf returns the function containing the location.
func (p *Program) FuncOf(l Loc) *Func { return p.Funcs[l.Fn] }

// InstrAt returns the instruction at the location.
func (p *Program) InstrAt(l Loc) *Instr { return &p.Funcs[l.Fn].Instrs[l.PC] }

// NumLocations returns the total number of (function, pc) locations,
// used to size coverage bitmaps.
func (p *Program) NumLocations() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Instrs)
	}
	return n
}

// LocIndex flattens a location into a dense index for coverage bitmaps.
func (p *Program) LocIndex(l Loc) int {
	idx := 0
	for i := 0; i < l.Fn; i++ {
		idx += len(p.Funcs[i].Instrs)
	}
	return idx + l.PC
}

// opFormat returns a human-readable operand rendering.
func (f *Func) operandString(o Operand) string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	if o.Local >= 0 && o.Local < len(f.Locals) {
		return fmt.Sprintf("%%%s", f.Locals[o.Local].Name)
	}
	return fmt.Sprintf("%%r%d", o.Local)
}

// String disassembles the function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i := 0; i < f.Params; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Locals[i].Name, f.Locals[i].Type)
	}
	fmt.Fprintf(&b, ") %s {\n", f.Ret)
	for pc, in := range f.Instrs {
		fmt.Fprintf(&b, "  %3d: %s", pc, in.Op)
		if in.Dst >= 0 {
			fmt.Fprintf(&b, " %s <-", f.operandString(LocalOp(in.Dst)))
		}
		switch in.Op {
		case OpBr:
			fmt.Fprintf(&b, " @%d", in.Target)
		case OpCondBr:
			fmt.Fprintf(&b, " %s @%d @%d", f.operandString(in.A), in.Target, in.FTarget)
		case OpCall:
			fmt.Fprintf(&b, " fn#%d(", in.Callee)
			for i, a := range in.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(f.operandString(a))
			}
			b.WriteString(")")
		case OpRet, OpHalt:
			if in.HasVal {
				fmt.Fprintf(&b, " %s", f.operandString(in.A))
			}
		case OpLoad:
			fmt.Fprintf(&b, " %s[%s]", f.operandString(in.A), f.operandString(in.B))
		case OpStore:
			// For store: Dst is the array local, A the index, B the value.
			fmt.Fprintf(&b, " [%s] = %s", f.operandString(in.A), f.operandString(in.B))
		default:
			if in.Op != OpNop {
				fmt.Fprintf(&b, " %s", f.operandString(in.A))
				switch in.Op {
				case OpMov, OpNot, OpNeg, OpBNot, OpIntToByte, OpByteToInt,
					OpBoolToInt, OpArgc, OpStdinLen, OpOut, OpAssert, OpAssume,
					OpSymInt, OpSymByte, OpSymBool, OpMakeSymArr,
					OpAlloc, OpPtrLoad:
				default:
					fmt.Fprintf(&b, ", %s", f.operandString(in.B))
				}
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// String disassembles the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// IsBranch reports whether the instruction can transfer control to more than
// one successor (the paper's "if(e) goto ℓ'").
func (i *Instr) IsBranch() bool { return i.Op == OpCondBr }

// IsTerminator reports whether control does not fall through.
func (i *Instr) IsTerminator() bool {
	switch i.Op {
	case OpBr, OpCondBr, OpRet, OpHalt:
		return true
	}
	return false
}

// Successors appends the possible next PCs within the same function.
// Ret/Halt have no intraprocedural successors.
func (i *Instr) Successors(pc int, out []int) []int {
	switch i.Op {
	case OpBr:
		return append(out, i.Target)
	case OpCondBr:
		return append(out, i.Target, i.FTarget)
	case OpRet, OpHalt:
		return out
	default:
		return append(out, pc+1)
	}
}
