package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays out a synthetic module tree for Run.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func rules(issues []Issue) []string {
	var r []string
	for _, is := range issues {
		r = append(r, is.Rule)
	}
	return r
}

func TestRepoIsClean(t *testing.T) {
	issues, err := Run(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		t.Errorf("%s", is)
	}
}

func TestExprLiteralFlagged(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/core/bad.go", `package core

import "symmerge/internal/expr"

func bad() *expr.Expr { return &expr.Expr{Kind: 1} }
`)
	// Aliased imports must be seen through.
	write(t, root, "internal/core/alias.go", `package core

import e "symmerge/internal/expr"

var sneaky = e.Expr{}
`)
	// The builder package itself is allowed to construct nodes.
	write(t, root, "internal/expr/builder.go", `package expr

type Expr struct{ Kind int }

func mk() *Expr { return &Expr{Kind: 2} }
`)
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 2 {
		t.Fatalf("got %d issues (%v), want 2", len(issues), issues)
	}
	for _, is := range issues {
		if is.Rule != "expr-builder" {
			t.Errorf("rule %q, want expr-builder", is.Rule)
		}
	}
}

func TestObsEventWithoutSchemaRow(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/obs/obs.go", `package obs

const (
	EvFork    = "fork"
	EvRunaway = "runaway"
)

type O struct{}

func (o *O) head(ev string) []byte { return nil }

func (o *O) emit() {
	o.head(EvRunaway)
	o.head("raw_string")
}
`)
	write(t, root, "internal/obs/schema.go", `package obs

var eventFields = map[string][]string{
	EvFork: {"w"},
}
`)
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	var missing, raw int
	for _, is := range issues {
		if is.Rule != "obs-schema" {
			t.Fatalf("unexpected rule in %v", is)
		}
		if strings.Contains(is.Msg, "EvRunaway") {
			missing++
		}
		if strings.Contains(is.Msg, "head() argument") {
			raw++
		}
	}
	if missing != 1 || raw != 1 {
		t.Fatalf("got %v (rules %v), want one missing-schema-row and one raw-head issue",
			issues, rules(issues))
	}
}

func TestCleanSyntheticTree(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/core/good.go", `package core

import "symmerge/internal/expr"

func good(b *expr.Builder) *expr.Expr { return b.Const(1, 32) }
`)
	issues, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
}
