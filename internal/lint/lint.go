// Package lint implements symmerge's repo-specific static checks, the ones
// go vet cannot know about. Two rules:
//
// Rule expr-builder: expression nodes are hash-consed — pointer equality IS
// structural equality — so an expr.Expr composite literal built outside
// internal/expr bypasses interning and silently breaks every equality test
// downstream. All construction must go through expr.Builder methods.
//
// Rule obs-schema: the trace validator (internal/obs.Validate) rejects any
// event type missing from its eventFields table, so an event emitted without
// a schema row turns every trace containing it invalid. Every Ev* constant
// declared in internal/obs must appear as an eventFields key, and every
// Observer emission must name its event through an Ev* constant (never a raw
// string) so the first check covers it.
//
// The checker is stdlib-only (go/parser + go/ast): it parses source files
// syntactically and resolves imports by name, without type information.
// That is enough because both rules are about syntactic shape in a repo
// whose import names are conventional.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// exprImportPath is the package whose node type must not be literal-built.
const exprImportPath = "symmerge/internal/expr"

// Issue is one finding.
type Issue struct {
	Pos  token.Position
	Rule string // "expr-builder" or "obs-schema"
	Msg  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: %s: %s", i.Pos, i.Rule, i.Msg)
}

// Run checks every .go file under root (a module checkout) and returns the
// issues sorted by position. Test files are included: a test that builds
// raw expr.Expr literals corrupts the same interning invariants.
func Run(root string) ([]Issue, error) {
	fset := token.NewFileSet()
	var issues []Issue
	obs := newObsCheck()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "corpus" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return perr
		}
		rel, _ := filepath.Rel(root, path)
		issues = append(issues, checkExprLiterals(fset, f, rel)...)
		obs.collect(fset, f, rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	issues = append(issues, obs.finish()...)
	sort.Slice(issues, func(a, b int) bool {
		x, y := issues[a].Pos, issues[b].Pos
		if x.Filename != y.Filename {
			return x.Filename < y.Filename
		}
		return x.Offset < y.Offset
	})
	return issues, nil
}

// inExprPackage reports whether the (slash-normalized, root-relative) path
// belongs to internal/expr itself, where literal construction is the
// builder's own implementation.
func inExprPackage(rel string) bool {
	return strings.HasPrefix(filepath.ToSlash(rel), "internal/expr/")
}

// exprImportName returns the local name the file binds to
// symmerge/internal/expr, or "" when the file does not import it.
func exprImportName(f *ast.File) string {
	for _, im := range f.Imports {
		p, err := strconv.Unquote(im.Path.Value)
		if err != nil || p != exprImportPath {
			continue
		}
		if im.Name != nil {
			return im.Name.Name
		}
		return "expr"
	}
	return ""
}

// checkExprLiterals flags expr.Expr composite literals (rule expr-builder).
func checkExprLiterals(fset *token.FileSet, f *ast.File, rel string) []Issue {
	if inExprPackage(rel) {
		return nil
	}
	local := exprImportName(f)
	if local == "" || local == "_" {
		return nil
	}
	var issues []Issue
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		sel, ok := cl.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Expr" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == local {
			issues = append(issues, Issue{
				Pos:  fset.Position(cl.Pos()),
				Rule: "expr-builder",
				Msg:  "expr.Expr composite literal bypasses hash-consing; construct nodes via expr.Builder methods",
			})
		}
		return true
	})
	return issues
}

// obsCheck accumulates rule obs-schema facts across internal/obs files.
type obsCheck struct {
	declared   map[string]token.Position // Ev* const name → declaration site
	schemaKeys map[string]bool           // eventFields key idents
	rawHeads   []Issue                   // head(...) calls with non-ident args
	sawSchema  bool
}

func newObsCheck() *obsCheck {
	return &obsCheck{declared: map[string]token.Position{}, schemaKeys: map[string]bool{}}
}

// collect harvests one file's facts; files outside internal/obs (or test
// files) contribute nothing.
func (c *obsCheck) collect(fset *token.FileSet, f *ast.File, rel string) {
	slash := filepath.ToSlash(rel)
	if !strings.HasPrefix(slash, "internal/obs/") || strings.HasSuffix(slash, "_test.go") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok != token.CONST {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Ev") {
						c.declared[name.Name] = fset.Position(name.Pos())
					}
				}
			}
		case *ast.ValueSpec:
			return true
		case *ast.CallExpr:
			// o.head(EvX) — the one emission envelope. A raw-string
			// argument would dodge the declared-constant check.
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "head" || len(n.Args) != 1 {
				return true
			}
			if _, ok := n.Args[0].(*ast.Ident); !ok {
				c.rawHeads = append(c.rawHeads, Issue{
					Pos:  fset.Position(n.Args[0].Pos()),
					Rule: "obs-schema",
					Msg:  "head() argument must be a declared Ev* constant, not an expression",
				})
			}
		case *ast.CompositeLit:
			// eventFields = map[string][]string{EvX: {...}, ...}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok && strings.HasPrefix(id.Name, "Ev") {
					c.schemaKeys[id.Name] = true
					c.sawSchema = true
				}
			}
		}
		return true
	})
}

// finish cross-checks declarations against the schema table.
func (c *obsCheck) finish() []Issue {
	issues := append([]Issue(nil), c.rawHeads...)
	if !c.sawSchema && len(c.declared) == 0 {
		return issues // not an obs checkout (unit tests on synthetic trees)
	}
	if !c.sawSchema {
		issues = append(issues, Issue{
			Rule: "obs-schema",
			Msg:  "internal/obs declares Ev* event constants but no eventFields schema table was found",
		})
		return issues
	}
	names := make([]string, 0, len(c.declared))
	for name := range c.declared {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !c.schemaKeys[name] {
			issues = append(issues, Issue{
				Pos:  c.declared[name],
				Rule: "obs-schema",
				Msg:  fmt.Sprintf("event constant %s has no eventFields schema row; traces carrying it fail Validate", name),
			})
		}
	}
	return issues
}
