package coreutils

import (
	"fmt"
	"testing"
	"time"

	"symmerge/symx"
)

func TestAllCompile(t *testing.T) {
	names := Names()
	if len(names) < 20 {
		t.Fatalf("only %d tools registered, want at least 20", len(names))
	}
	for _, name := range names {
		tool, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tool.Compile(); err != nil {
			t.Errorf("%s does not compile: %v", name, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-tool"); err == nil {
		t.Fatal("expected error for unknown tool")
	}
}

// TestAllExploreExhaustively runs every tool at its default input size
// without merging and checks the exploration drains (bounded loops, no
// hangs) and visits more than one path.
func TestAllExploreExhaustively(t *testing.T) {
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			cfg := tool.BaseConfig()
			cfg.Merge = symx.MergeNone
			cfg.MaxTime = 20 * time.Second
			res := symx.Run(p, cfg)
			if !res.Completed {
				t.Fatalf("%s did not finish exhaustive exploration", tool.Name)
			}
			if res.Stats.PathsCompleted < 2 {
				t.Fatalf("%s explored %d paths; model too trivial",
					tool.Name, res.Stats.PathsCompleted)
			}
			if res.Stats.ErrorsFound != 0 {
				t.Fatalf("%s reported %d path errors: %v",
					tool.Name, res.Stats.ErrorsFound, res.Errors)
			}
		})
	}
}

// TestPreprocessAblationSoundness sweeps the whole suite under SSM+QCE
// with the solver's preprocessing pipeline on vs off: since every pass is
// semantics-preserving, paths-multiplicity, coverage, and the error set
// must match bit-for-bit. Input sizes are capped as in
// TestMergingSoundness so the double sweep stays inside the package
// timeout; over-budget tools skip.
func TestPreprocessAblationSoundness(t *testing.T) {
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			cfg := tool.BaseConfig()
			if cfg.NArgs > 2 {
				cfg.NArgs = 2
			}
			if cfg.ArgLen > 2 {
				cfg.ArgLen = 2
			}
			if cfg.StdinLen > 3 {
				cfg.StdinLen = 3
			}
			cfg.Merge = symx.MergeSSM
			cfg.UseQCE = true
			cfg.CheckBounds = true
			cfg.MaxTime = 5 * time.Second

			run := func(spec string) *symx.Result {
				c := cfg
				c.Preprocess = spec
				return symx.Run(p, c)
			}
			on, off := run("on"), run("off")
			if !on.Completed || !off.Completed {
				t.Skip("exploration over budget")
			}
			if on.Stats.PathsMult.Cmp(off.Stats.PathsMult) != 0 {
				t.Fatalf("paths-multiplicity diverged: on=%s off=%s",
					on.Stats.PathsMult, off.Stats.PathsMult)
			}
			if on.Stats.CoveredInstrs != off.Stats.CoveredInstrs {
				t.Fatalf("coverage diverged: on=%d off=%d",
					on.Stats.CoveredInstrs, off.Stats.CoveredInstrs)
			}
			errs := func(r *symx.Result) map[string]bool {
				out := map[string]bool{}
				for _, e := range r.Errors {
					out[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
				}
				return out
			}
			eo, ef := errs(on), errs(off)
			if len(eo) != len(ef) {
				t.Fatalf("error sets diverged: on=%d off=%d", len(eo), len(ef))
			}
			for k := range eo {
				if !ef[k] {
					t.Fatalf("error %q only found with preprocessing on", k)
				}
			}
		})
	}
}

// TestMergingSoundness cross-checks multiplicity against exact path counts
// for every tool: exploring with SSM+QCE must account for at least as many
// paths as plain exploration finds, and the shadow census must match the
// plain count exactly.
//
// The shadow census keeps every single-path state alive alongside the merged
// ones (it re-checks feasibility per shadow path at every branch), so a
// census run costs at least as much as plain exploration. Default input
// sizes are tuned for plain runs; here they are capped so the whole sweep
// stays well inside go test's package timeout. Tools that still exceed the
// per-run budget are skipped, not failed — the cross-check is about
// agreement, not speed.
func TestMergingSoundness(t *testing.T) {
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			soundCfg := tool.BaseConfig()
			if soundCfg.NArgs > 2 {
				soundCfg.NArgs = 2
			}
			if soundCfg.ArgLen > 2 {
				soundCfg.ArgLen = 2
			}
			if soundCfg.StdinLen > 3 {
				soundCfg.StdinLen = 3
			}

			base := soundCfg
			base.Merge = symx.MergeNone
			base.MaxTime = 3 * time.Second
			plain := symx.Run(p, base)
			if !plain.Completed {
				t.Skip("plain exploration over budget")
			}

			mcfg := soundCfg
			mcfg.Merge = symx.MergeSSM
			mcfg.UseQCE = true
			mcfg.TrackExactPaths = true
			mcfg.MaxTime = 8 * time.Second
			merged := symx.Run(p, mcfg)
			if !merged.Completed {
				t.Skip("merged exploration over budget")
			}
			if merged.Stats.ExactPaths != plain.Stats.PathsCompleted {
				t.Fatalf("census %d != plain paths %d",
					merged.Stats.ExactPaths, plain.Stats.PathsCompleted)
			}
			if merged.Stats.PathsMult.Uint64() < plain.Stats.PathsCompleted {
				t.Fatalf("multiplicity %s under-counts %d paths",
					merged.Stats.PathsMult, plain.Stats.PathsCompleted)
			}
		})
	}
}
