package coreutils

// Corpus regression suites over the COREUTILS models:
//
//   - TestGoldenCorpusReplay replays the committed golden mini-corpus
//     (testdata/corpus, maintained by cmd/corpusgen) for every tool: any
//     expectation or coverage-parity mismatch means the engine, the
//     interpreter, or a model drifted since the corpus was generated.
//   - TestCorpusConformanceAcrossRegimes regenerates a corpus per tool
//     under none/ssm/dsm × qce on/off and replays each through the
//     interpreter: zero mismatches, exact coverage parity, and the same
//     deduplicated input set in every regime — the end-to-end statement
//     that merged exploration covers exactly the concrete behaviors of
//     unmerged exploration.
//   - TestCorpusDeterminism pins byte-identical corpora (directory digest
//     equality) across repeated runs and across Workers 1 vs 8.

import (
	"path/filepath"
	"testing"

	"symmerge/internal/corpus"
	"symmerge/symx"
)

const goldenDir = "testdata/corpus"

func TestGoldenCorpusReplay(t *testing.T) {
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := corpus.Replay(filepath.Join(goldenDir, tool.Name), p.Internal())
			if err != nil {
				t.Fatalf("replay: %v (regenerate with `go run ./cmd/corpusgen`)", err)
			}
			for _, m := range rep.Mismatches {
				t.Errorf("%s", m)
			}
			if !rep.ParityOK() {
				t.Errorf("coverage parity: %d symbolic locations unreached by replay, %d extra (sym %d, replay %d)",
					len(rep.MissingLocs), len(rep.ExtraLocs), rep.SymCovered, rep.ReplayCovered)
			}
			if rep.Tests == 0 {
				t.Error("golden corpus is empty")
			}
		})
	}
}

// corpusRegimes are the merging configurations the conformance suite
// crosses: none / ssm / dsm, each with QCE gating on and off.
var corpusRegimes = []struct {
	name  string
	merge symx.MergeMode
	qce   bool
}{
	{"none", symx.MergeNone, false},
	{"none+qce", symx.MergeNone, true},
	{"ssm", symx.MergeSSM, false},
	{"ssm+qce", symx.MergeSSM, true},
	{"dsm", symx.MergeDSM, false},
	{"dsm+qce", symx.MergeDSM, true},
}

func TestCorpusConformanceAcrossRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			var baseline map[string]bool
			for _, reg := range corpusRegimes {
				dir := filepath.Join(t.TempDir(), reg.name)
				cfg := tool.MiniConfig()
				cfg.Merge = reg.merge
				cfg.UseQCE = reg.qce
				cfg.CorpusDir = dir
				cfg.CorpusLabel = tool.Name
				res := symx.Run(p, cfg)
				if res.CorpusErr != nil {
					t.Fatalf("%s: corpus emission: %v", reg.name, res.CorpusErr)
				}
				if !res.Completed {
					t.Fatalf("%s: exploration did not complete at mini sizes", reg.name)
				}
				rep, err := corpus.Replay(dir, p.Internal())
				if err != nil {
					t.Fatalf("%s: replay: %v", reg.name, err)
				}
				for _, m := range rep.Mismatches {
					t.Errorf("%s: %s", reg.name, m)
				}
				if !rep.ParityOK() {
					t.Errorf("%s: coverage parity failed (%d missing, %d extra of %d symbolic locations)",
						reg.name, len(rep.MissingLocs), len(rep.ExtraLocs), rep.SymCovered)
				}
				man, _, err := corpus.Load(dir)
				if err != nil {
					t.Fatalf("%s: %v", reg.name, err)
				}
				ids := make(map[string]bool, len(man.Tests))
				for _, e := range man.Tests {
					ids[e.ID] = true
				}
				if baseline == nil {
					baseline = ids
					continue
				}
				if len(ids) != len(baseline) {
					t.Fatalf("%s: %d unique inputs, baseline has %d", reg.name, len(ids), len(baseline))
				}
				for id := range baseline {
					if !ids[id] {
						t.Fatalf("%s: baseline input %s missing", reg.name, id)
					}
				}
			}
		})
	}
}

func TestCorpusDeterminism(t *testing.T) {
	// A representative spread: argv-driven with options, stdin-driven,
	// error paths (seq's numeric validation asserts), heavy branching, and
	// heap-driven tools (sort/fmt allocate and address memory through
	// pointers, whose addresses must also be scheduling-independent).
	for _, name := range []string{"echo", "wc", "seq", "fold", "sort", "tail", "fmt"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tool, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			emit := func(merge symx.MergeMode, workers int) string {
				dir := t.TempDir()
				cfg := tool.MiniConfig()
				cfg.Merge = merge
				cfg.UseQCE = merge != symx.MergeNone
				cfg.Seed = 1
				cfg.Workers = workers
				cfg.CorpusDir = dir
				cfg.CorpusLabel = tool.Name
				res := symx.Run(p, cfg)
				if res.CorpusErr != nil || !res.Completed {
					t.Fatalf("merge=%v workers=%d: err=%v completed=%v", merge, workers, res.CorpusErr, res.Completed)
				}
				d, err := corpus.DirDigest(dir)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			for _, merge := range []symx.MergeMode{symx.MergeNone, symx.MergeSSM} {
				seq1 := emit(merge, 1)
				seq2 := emit(merge, 1)
				if seq1 != seq2 {
					t.Fatalf("merge=%v: two sequential runs produced different corpora", merge)
				}
				par := emit(merge, 8)
				if par != seq1 {
					t.Fatalf("merge=%v: Workers 8 corpus differs from Workers 1 (digest %s… vs %s…)",
						merge, par[:12], seq1[:12])
				}
			}
		})
	}
}
