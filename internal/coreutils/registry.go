// Package coreutils contains MiniC models of GNU COREUTILS used as the
// evaluation workload, standing in for the 96 real COREUTILS the paper runs
// under KLEE (§5.1). Each model keeps the control structure that drives the
// paper's results — option parsing over symbolic argv, character loops over
// zero-terminated arguments, line loops over symbolic stdin, accumulator
// validation — while shrinking constants to laptop timescales.
//
// Models are self-contained MiniC sources (helpers are duplicated per
// program, as in the real tree where lib/ is statically linked into every
// tool).
package coreutils

import (
	"fmt"
	"sort"

	"symmerge/symx"
)

// Tool describes one COREUTILS model.
type Tool struct {
	Name   string
	Source string
	// UsesStdin marks tools whose interesting input is stdin rather
	// than argv.
	UsesStdin bool
	// DefaultArgs/DefaultLen/DefaultStdin are input sizes that finish in
	// roughly a second without merging, for tests and quick benches.
	DefaultArgs  int
	DefaultLen   int
	DefaultStdin int
}

var registry = map[string]*Tool{}

func register(t *Tool) {
	if _, dup := registry[t.Name]; dup {
		panic("coreutils: duplicate tool " + t.Name)
	}
	if t.DefaultArgs == 0 {
		t.DefaultArgs = 2
	}
	if t.DefaultLen == 0 {
		t.DefaultLen = 2
	}
	registry[t.Name] = t
}

// Get returns a tool model by name.
func Get(name string) (*Tool, error) {
	t, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("coreutils: unknown tool %q", name)
	}
	return t, nil
}

// Names returns every registered tool name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered tool, sorted by name.
func All() []*Tool {
	names := Names()
	out := make([]*Tool, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Compile compiles the model.
func (t *Tool) Compile() (*symx.Program, error) {
	return symx.Compile(t.Source)
}

// BaseConfig returns a symx.Config with the tool's default symbolic input
// sizes filled in.
func (t *Tool) BaseConfig() symx.Config {
	return symx.Config{
		NArgs:    t.DefaultArgs,
		ArgLen:   t.DefaultLen,
		StdinLen: t.DefaultStdin,
	}
}

// MiniConfig returns the pinned miniature input sizes behind the committed
// golden corpus (testdata/corpus): one symbolic argument of one character,
// at most two stdin bytes. Small enough that every tool explores
// exhaustively in milliseconds and the corpus stays a few dozen files, big
// enough that option dispatch and the first input byte branch for real.
// Changing this invalidates the committed corpus — regenerate with
// cmd/corpusgen.
func (t *Tool) MiniConfig() symx.Config {
	cfg := symx.Config{NArgs: 1, ArgLen: 1}
	if t.UsesStdin {
		cfg.StdinLen = t.DefaultStdin
		if cfg.StdinLen > 2 {
			cfg.StdinLen = 2
		}
	}
	return cfg
}
