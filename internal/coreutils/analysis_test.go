package coreutils

// Static-analysis suites over the full tool registry:
//
//   - TestAnalyzeAllTools is the termination/latency guard: every model
//     must analyze well under the widening backstop. A hang here means an
//     infinite ascending chain escaped Widen (the interval lattice and the
//     pointer-origin offsets are the unbounded dimensions).
//   - TestAnalysisSoundness is the differential contract: for every tool,
//     across none/ssm+qce/dsm+qce and Workers 1 vs 8, the canonical corpus
//     emitted with the analyses on is byte-identical (directory digest) to
//     the analyses-off corpus, and the invariant census — exact paths,
//     coverage, error set — matches. Pruning, elision, merge-key slimming,
//     and the lifted heap gate must be pure acceleration.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"symmerge/internal/analysis"
	"symmerge/internal/corpus"
	"symmerge/symx"
)

func TestAnalyzeAllTools(t *testing.T) {
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan *analysis.Program, 1)
			go func() { done <- analysis.Analyze(p.Internal()) }()
			select {
			case ap := <-done:
				if len(ap.Funcs) == 0 {
					t.Fatal("no per-function facts")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("analysis did not converge in 10s")
			}
		})
	}
}

// analysisRegimes crosses the merging configurations of the differential
// suite (satellite d of the analysis PR).
var analysisRegimes = []struct {
	name  string
	merge symx.MergeMode
	qce   bool
}{
	{"none", symx.MergeNone, false},
	{"ssm+qce", symx.MergeSSM, true},
	{"dsm+qce", symx.MergeDSM, true},
}

func TestAnalysisSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tool := range All() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			p, err := tool.Compile()
			if err != nil {
				t.Fatal(err)
			}
			for _, reg := range analysisRegimes {
				for _, workers := range []int{1, 8} {
					label := fmt.Sprintf("%s/w%d", reg.name, workers)
					tmp := t.TempDir()
					run := func(arm string, disable bool) (*symx.Result, string) {
						dir := filepath.Join(tmp, arm)
						cfg := tool.MiniConfig()
						cfg.Merge = reg.merge
						cfg.UseQCE = reg.qce
						cfg.Workers = workers
						cfg.TrackExactPaths = true
						cfg.DisableAnalysis = disable
						cfg.CorpusDir = dir
						cfg.CorpusLabel = tool.Name
						res := symx.Run(p, cfg)
						if res.CorpusErr != nil {
							t.Fatalf("%s/%s: corpus emission: %v", label, arm, res.CorpusErr)
						}
						if !res.Completed {
							t.Fatalf("%s/%s: exploration did not complete at mini sizes", label, arm)
						}
						return res, dir
					}
					roff, dirOff := run("off", true)
					ron, dirOn := run("on", false)

					dOff, err1 := corpus.DirDigest(dirOff)
					dOn, err2 := corpus.DirDigest(dirOn)
					if err1 != nil || err2 != nil {
						t.Fatalf("%s: digest: off=%v on=%v", label, err1, err2)
					}
					if dOff != dOn {
						t.Errorf("%s: corpus digest off=%s on=%s", label, dOff, dOn)
					}
					if roff.Stats.ExactPaths != ron.Stats.ExactPaths {
						t.Errorf("%s: exact census off=%d on=%d", label, roff.Stats.ExactPaths, ron.Stats.ExactPaths)
					}
					if roff.Stats.CoveredInstrs != ron.Stats.CoveredInstrs {
						t.Errorf("%s: coverage off=%d on=%d", label, roff.Stats.CoveredInstrs, ron.Stats.CoveredInstrs)
					}
					if !sameErrorSet(roff, ron) {
						t.Errorf("%s: error sets diverge (off %d, on %d)", label, len(roff.Errors), len(ron.Errors))
					}
				}
			}
		})
	}
}

// sameErrorSet compares the distinct (location, message) error sets.
func sameErrorSet(a, b *symx.Result) bool {
	set := func(res *symx.Result) map[string]bool {
		out := map[string]bool{}
		for _, e := range res.Errors {
			out[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
		}
		return out
	}
	sa, sb := set(a), set(b)
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
