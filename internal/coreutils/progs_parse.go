package coreutils

// Parser-heavy tools: printf, expr, factor, od, base64, chmod, date,
// mktemp, pathchk, numfmt, tee, env. These models concentrate on the
// format/mode/number parsers of the real tools — the per-character
// classification loops whose forks drive the paper's path explosion.

func init() {
	register(&Tool{Name: "printf", Source: srcPrintf, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "expr", Source: srcExpr, DefaultArgs: 3, DefaultLen: 1})
	// factor's trial-division loop runs under a symbolic bound, so even one
	// extra operand digit multiplies solver work; a single digit suffices
	// for the parse/divide structure.
	register(&Tool{Name: "factor", Source: srcFactor, DefaultArgs: 1, DefaultLen: 1})
	register(&Tool{Name: "od", Source: srcOd, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 3})
	// base64's encoder forks ~5 ways per emitted character (the alphabet
	// bucket of enc), so stdin is kept to one byte by default.
	register(&Tool{Name: "base64", Source: srcBase64, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 1})
	register(&Tool{Name: "chmod", Source: srcChmod, DefaultArgs: 2, DefaultLen: 3})
	register(&Tool{Name: "date", Source: srcDate, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "mktemp", Source: srcMktemp, DefaultArgs: 1, DefaultLen: 4})
	register(&Tool{Name: "pathchk", Source: srcPathchk, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "numfmt", Source: srcNumfmt, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "tee", Source: srcTee, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 3})
	register(&Tool{Name: "env", Source: srcEnv, DefaultArgs: 2, DefaultLen: 3})
}

const srcPrintf = libPutArg + libParseDecOr + `
// printf FORMAT [ARG] : interpret %s/%d/%c/%% directives and \n/\t escapes.
// The format scanner classifies every character three ways (plain, %, \),
// and each directive consumes the next argument — the real tool's structure.
void main() {
    if (argc() < 2) {
        putchar('?');
        halt(1);
    }
    int arg = 2; // next argument consumed by a directive
    for (int i = 0; argchar(1, i) != 0; i++) {
        byte c = argchar(1, i);
        if (c == '%') {
            i++;
            byte d = argchar(1, i);
            if (d == '%') {
                putchar('%');
            } else if (d == 's') {
                if (arg < argc()) {
                    put_arg(arg, 0);
                    arg++;
                }
            } else if (d == 'c') {
                if (arg < argc()) {
                    putchar(argchar(arg, 0));
                    arg++;
                }
            } else if (d == 'd') {
                // Parse the argument as a number; invalid digits abort.
                // (Out-of-range arguments read as empty, hence 0.)
                int v = parse_dec_or(arg, '!');
                arg++;
                if (v >= 10) { putchar(tobyte('0' + (v / 10) % 10)); }
                putchar(tobyte('0' + v % 10));
            } else {
                // Unknown directive: fatal, like the real printf.
                putchar('?');
                halt(1);
            }
        } else if (c == '\\') {
            i++;
            byte e = argchar(1, i);
            if (e == 'n') { putchar('\n'); }
            else if (e == 't') { putchar('\t'); }
            else if (e == '\\') { putchar('\\'); }
            else { putchar('\\'); putchar(e); }
        } else {
            putchar(c);
        }
    }
    halt(0);
}
`

const srcExpr = `
// expr A OP B : integer arithmetic (+ - '*' / %) and comparison (= !=) on
// decimal operands. Exit status 0 for true/nonzero, 1 for false/zero, 2 for
// syntax errors — matching the real tool's three-way exit protocol.
int parseNum(int arg) {
    int v = 0;
    bool any = false;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte d = argchar(arg, i);
        if (d < '0' || d > '9') {
            return 0 - 1;
        }
        v = v * 10 + toint(d - '0');
        any = true;
    }
    if (!any) { return 0 - 1; }
    return v;
}

void printNum(int v) {
    if (v >= 100) { putchar(tobyte('0' + (v / 100) % 10)); }
    if (v >= 10) { putchar(tobyte('0' + (v / 10) % 10)); }
    putchar(tobyte('0' + v % 10));
    putchar('\n');
}

void main() {
    if (argc() != 4) {
        putchar('?');
        halt(2);
    }
    int a = parseNum(1);
    int b = parseNum(3);
    if (a < 0 || b < 0) {
        putchar('?');
        halt(2);
    }
    byte op = argchar(2, 0);
    bool single = argchar(2, 1) == 0;
    if (op == '+' && single) {
        printNum(a + b);
        if (a + b == 0) { halt(1); }
        halt(0);
    }
    if (op == '-' && single) {
        if (a < b) { putchar('-'); printNum(b - a); halt(0); }
        printNum(a - b);
        if (a == b) { halt(1); }
        halt(0);
    }
    if (op == '*' && single) {
        printNum(a * b);
        if (a * b == 0) { halt(1); }
        halt(0);
    }
    if (op == '/' && single) {
        if (b == 0) { putchar('!'); halt(2); }
        printNum(a / b);
        if (a / b == 0) { halt(1); }
        halt(0);
    }
    if (op == '%' && single) {
        if (b == 0) { putchar('!'); halt(2); }
        printNum(a % b);
        if (a % b == 0) { halt(1); }
        halt(0);
    }
    if (op == '=' && single) {
        if (a == b) { putchar('1'); putchar('\n'); halt(0); }
        putchar('0'); putchar('\n');
        halt(1);
    }
    if (op == '!' && argchar(2, 1) == '=' && argchar(2, 2) == 0) {
        if (a != b) { putchar('1'); putchar('\n'); halt(0); }
        putchar('0'); putchar('\n');
        halt(1);
    }
    putchar('?');
    halt(2);
}
`

const srcFactor = libParseDecOr + `
// factor N : print the prime factorization of a small decimal operand by
// trial division. The parse loop forks per character; the division loop's
// bound depends on the merged parse accumulator — a stress test for QCE's
// hot-variable call (the accumulator IS hot here, unlike sleep's).
void main() {
    if (argc() != 2) {
        putchar('?');
        halt(1);
    }
    int n = parse_dec_or(1, '?');
    n = n % 32; // model bound: keep trial division laptop-sized
    if (n < 2) {
        putchar('!');
        halt(1);
    }
    putchar(tobyte('0' + (n / 10) % 10));
    putchar(tobyte('0' + n % 10));
    putchar(':');
    for (int p = 2; p <= n; p++) {
        while (n % p == 0) {
            putchar(' ');
            if (p >= 10) { putchar(tobyte('0' + (p / 10) % 10)); }
            putchar(tobyte('0' + p % 10));
            n = n / p;
        }
    }
    putchar('\n');
    halt(0);
}
`

const srcOd = libOptFlag + `
// od [-b|-c] : dump stdin, one byte per line, in octal (default/-b) or as
// printable-or-escape (-c). Each byte's class decides the output form.
void main() {
    bool chars = false;
    if (argc() > 1 && argchar(1, 0) == '-' && argchar(1, 2) == 0) {
        if (opt_flag(1, 'c')) {
            chars = true;
        } else if (!opt_flag(1, 'b')) {
            putchar('?');
            halt(1);
        }
    }
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (chars) {
            if (c == '\n') { putchar('\\'); putchar('n'); }
            else if (c == '\t') { putchar('\\'); putchar('t'); }
            else if (c >= ' ' && c <= '~') { putchar(c); }
            else { putchar('.'); }
        } else {
            int v = toint(c);
            putchar(tobyte('0' + (v / 64) % 8));
            putchar(tobyte('0' + (v / 8) % 8));
            putchar(tobyte('0' + v % 8));
        }
        putchar('\n');
    }
    halt(0);
}
`

const srcBase64 = libOptFlag + `
// base64 [-d] : encode stdin (3 bytes -> 4 chars, '=' padding), or with -d
// validate a base64 stream. Decoding classifies every character into five
// alphabet classes — dense branching per input byte.
byte enc(int v) {
    v = v % 64;
    if (v < 26) { return tobyte('A' + v); }
    if (v < 52) { return tobyte('a' + (v - 26)); }
    if (v < 62) { return tobyte('0' + (v - 52)); }
    if (v == 62) { return '+'; }
    return '/';
}

void main() {
    bool decode = false;
    if (argc() > 1 && opt_flag(1, 'd')) {
        decode = true;
    }
    int n = stdinlen();
    if (decode) {
        int got = 0;
        bool pad = false;
        for (int i = 0; i < n; i++) {
            byte c = stdinchar(i);
            if (c == '\n') { continue; }
            bool alpha = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                         (c >= '0' && c <= '9') || c == '+' || c == '/';
            if (c == '=') {
                pad = true;
            } else if (!alpha || pad) {
                // Garbage, or data after padding started.
                putchar('?');
                halt(1);
            }
            got++;
        }
        if (got % 4 != 0) {
            putchar('!');
            halt(1);
        }
        putchar('k');
        halt(0);
    }
    // Encode.
    int acc = 0;
    int bits = 0;
    for (int i = 0; i < n; i++) {
        acc = acc * 256 + toint(stdinchar(i));
        bits = bits + 8;
        while (bits >= 6) {
            bits = bits - 6;
            int idx = acc;
            for (int k = 0; k < bits; k++) { idx = idx / 2; }
            putchar(enc(idx));
            int keep = 1;
            for (int k = 0; k < bits; k++) { keep = keep * 2; }
            acc = acc % keep;
        }
    }
    if (bits > 0) {
        int idx = acc;
        for (int k = bits; k < 6; k++) { idx = idx * 2; }
        putchar(enc(idx));
        putchar('=');
        if (bits == 2) { putchar('='); }
    }
    putchar('\n');
    halt(0);
}
`

const srcChmod = `
// chmod MODE file : parse an octal ("755") or symbolic ("u+rwx") mode.
// The symbolic grammar (who)(op)(perms) is the branchiest parser in the
// suite: three optional who-classes, three ops, three permission bits.
void main() {
    if (argc() < 3) {
        putchar('?');
        halt(1);
    }
    if (argchar(2, 0) == 0) {
        putchar('e');
        halt(1);
    }
    byte c0 = argchar(1, 0);
    if (c0 >= '0' && c0 <= '7') {
        // Octal mode: up to 4 octal digits.
        int mode = 0;
        int len = 0;
        for (int i = 0; argchar(1, i) != 0; i++) {
            byte d = argchar(1, i);
            if (d < '0' || d > '7') {
                putchar('?');
                halt(1);
            }
            mode = mode * 8 + toint(d - '0');
            len++;
        }
        if (len > 4 || mode > 4095) {
            putchar('!');
            halt(1);
        }
        putchar('o');
        halt(0);
    }
    // Symbolic mode: [ugoa]*[+-=][rwxst]+
    int i = 0;
    for (; argchar(1, i) == 'u' || argchar(1, i) == 'g' ||
           argchar(1, i) == 'o' || argchar(1, i) == 'a'; i++) {
    }
    byte op = argchar(1, i);
    if (op != '+' && op != '-' && op != '=') {
        putchar('?');
        halt(1);
    }
    i++;
    bool any = false;
    for (; argchar(1, i) != 0; i++) {
        byte p = argchar(1, i);
        if (p != 'r' && p != 'w' && p != 'x' && p != 's' && p != 't') {
            putchar('?');
            halt(1);
        }
        any = true;
    }
    if (!any && op != '=') {
        // "+"/"-" with no permissions is an error; "=" alone clears.
        putchar('?');
        halt(1);
    }
    putchar('s');
    halt(0);
}
`

const srcDate = `
// date [+FORMAT] : validate a strftime-style format string. Every %
// directive is checked against the supported set; plain characters echo.
void main() {
    if (argc() < 2) {
        // Default format: a fixed timestamp in the model.
        putchar('T');
        putchar('\n');
        halt(0);
    }
    if (argchar(1, 0) != '+') {
        putchar('?');
        halt(1);
    }
    for (int i = 1; argchar(1, i) != 0; i++) {
        byte c = argchar(1, i);
        if (c == '%') {
            i++;
            byte d = argchar(1, i);
            if (d == 'Y') { putchar('2'); putchar('0'); }
            else if (d == 'm') { putchar('0'); putchar('6'); }
            else if (d == 'd') { putchar('1'); putchar('2'); }
            else if (d == 'H') { putchar('1'); putchar('0'); }
            else if (d == 'M') { putchar('3'); putchar('0'); }
            else if (d == 'S') { putchar('0'); putchar('0'); }
            else if (d == 's') { putchar('0'); }
            else if (d == '%') { putchar('%'); }
            else {
                // Unknown directive is fatal (GNU date: invalid format).
                putchar('?');
                halt(1);
            }
        } else {
            putchar(c);
        }
    }
    putchar('\n');
    halt(0);
}
`

const srcMktemp = libArgLen + `
// mktemp TEMPLATE : the template's trailing run of 'X' must be at least 3
// long; shorter runs or X's in the middle only count if trailing.
void main() {
    if (argc() != 2) {
        putchar('?');
        halt(1);
    }
    int len = arg_len(1);
    if (len == 0) {
        putchar('?');
        halt(1);
    }
    int xs = 0;
    for (int i = len - 1; i >= 0; i--) {
        if (argchar(1, i) != 'X') {
            break;
        }
        xs++;
    }
    if (xs < 3) {
        putchar('!');
        halt(1);
    }
    // "Create" the file: echo the prefix and substitute the X's.
    for (int i = 0; i < len - xs; i++) {
        putchar(argchar(1, i));
    }
    for (int k = 0; k < xs; k++) {
        putchar('a');
    }
    putchar('\n');
    halt(0);
}
`

const srcPathchk = libOptFlag + `
// pathchk [-p] name : check a path for validity; -p additionally restricts
// to the POSIX portable character set and a shorter length limit.
void main() {
    int arg = 1;
    bool posix = false;
    if (arg < argc() && opt_flag(arg, 'p')) {
        posix = true;
        arg++;
    }
    if (arg >= argc()) {
        putchar('?');
        halt(1);
    }
    if (argchar(arg, 0) == 0) {
        putchar('e'); // empty name
        halt(1);
    }
    int complen = 0;
    int status = 0;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte c = argchar(arg, i);
        if (c == '/') {
            complen = 0;
            continue;
        }
        complen++;
        // Model bound: components longer than 6 exceed NAME_MAX.
        if (complen > 6) {
            status = 1;
            putchar('l');
        }
        if (posix) {
            bool portable = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
            if (!portable) {
                status = 1;
                putchar('c');
            }
        }
    }
    halt(status);
}
`

const srcNumfmt = `
// numfmt N[K|M|G] : parse a number with an optional unit suffix and print
// it expanded (model: print the exponent instead of multiplying out).
void main() {
    if (argc() != 2) {
        putchar('?');
        halt(1);
    }
    int v = 0;
    bool any = false;
    int i = 0;
    for (; argchar(1, i) >= '0' && argchar(1, i) <= '9'; i++) {
        v = v * 10 + toint(argchar(1, i) - '0');
        any = true;
    }
    if (!any) {
        putchar('?');
        halt(1);
    }
    int exp = 0;
    byte suffix = argchar(1, i);
    if (suffix != 0) {
        if (suffix == 'K') { exp = 1; }
        else if (suffix == 'M') { exp = 2; }
        else if (suffix == 'G') { exp = 3; }
        else {
            putchar('?');
            halt(1);
        }
        i++;
        if (argchar(1, i) != 0) {
            // Trailing junk after the suffix.
            putchar('!');
            halt(1);
        }
    }
    if (v >= 10) { putchar(tobyte('0' + (v / 10) % 10)); }
    putchar(tobyte('0' + v % 10));
    putchar('e');
    putchar(tobyte('0' + exp * 3));
    putchar('\n');
    halt(0);
}
`

const srcTee = libOptFlag + `
// tee [-a] file : copy stdin to stdout (the file side is validated only:
// nonempty name, no NUL-adjacent junk — the model has no filesystem).
void main() {
    int arg = 1;
    if (arg < argc() && opt_flag(arg, 'a')) {
        arg++;
    }
    if (arg < argc() && argchar(arg, 0) == 0) {
        putchar('e');
        halt(1);
    }
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        putchar(stdinchar(i));
    }
    halt(0);
}
`

const srcEnv = libPutArg + `
// env [NAME=VALUE]... [cmd] : each leading operand containing '=' is an
// assignment; the first without '=' is the command to "run". Scanning for
// '=' forks per character of every assignment.
void main() {
    int arg = 1;
    int assigns = 0;
    for (; arg < argc(); arg++) {
        bool hasEq = false;
        bool emptyName = false;
        for (int i = 0; argchar(arg, i) != 0; i++) {
            if (argchar(arg, i) == '=') {
                hasEq = true;
                if (i == 0) {
                    emptyName = true;
                }
                break;
            }
        }
        if (!hasEq) {
            break;
        }
        if (emptyName) {
            putchar('?');
            halt(125);
        }
        assigns++;
    }
    if (arg >= argc()) {
        // No command: print the number of assignments (stands in for the
        // environment listing).
        putchar(tobyte('0' + assigns % 10));
        putchar('\n');
        halt(0);
    }
    // "Execute" the command.
    put_arg(arg, 0);
    putchar('\n');
    halt(0);
}
`
