package coreutils

// Conformance tests: run the models on concrete inputs (the engine as a
// reference interpreter) and check outputs and exit codes against the
// behaviour the models document. This pins the workloads' semantics, so
// benchmark trends cannot drift because a model silently changed meaning.

import (
	"testing"

	"symmerge/internal/ir"
	"symmerge/symx"
)

type conformanceCase struct {
	tool  string
	args  []string
	stdin string
	out   string
	exit  int64
}

func runConformance(t *testing.T, c conformanceCase) {
	t.Helper()
	tool, err := Get(c.tool)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	args := make([][]byte, len(c.args))
	for i, a := range c.args {
		args[i] = []byte(a)
	}
	res := symx.Run(p, symx.Config{
		ConcreteArgs:  args,
		ConcreteStdin: []byte(c.stdin),
		CollectTests:  true,
	})
	if !res.Completed || res.Stats.PathsCompleted != 1 {
		t.Fatalf("%s %q: %d paths (completed=%v), want exactly 1",
			c.tool, c.args, res.Stats.PathsCompleted, res.Completed)
	}
	tc := res.Tests[0]
	if string(tc.Output) != c.out {
		t.Fatalf("%s %q < %q: output %q, want %q",
			c.tool, c.args, c.stdin, tc.Output, c.out)
	}
	if tc.Exit != c.exit {
		t.Fatalf("%s %q: exit %d, want %d", c.tool, c.args, tc.Exit, c.exit)
	}
}

func TestConformance(t *testing.T) {
	cases := []conformanceCase{
		// echo
		{tool: "echo", args: []string{"hi", "yo"}, out: "hi yo\n"},
		{tool: "echo", args: []string{"-n", "hi"}, out: "hi"},
		{tool: "echo", args: []string{"-n"}, out: ""},

		// basename / dirname
		{tool: "basename", args: []string{"/usr/lib"}, out: "lib\n"},
		{tool: "basename", args: []string{"a/b.c", ".c"}, out: "b\n"},
		{tool: "basename", args: []string{"///"}, out: "/\n"},
		{tool: "dirname", args: []string{"/usr/lib"}, out: "/usr\n"},
		{tool: "dirname", args: []string{"lib"}, out: ".\n"},
		{tool: "dirname", args: []string{"/lib"}, out: "/\n"},

		// true / false
		{tool: "true", args: []string{"--help"}, out: "h"},
		{tool: "true", args: []string{}, out: ""},
		{tool: "false", args: []string{}, out: "", exit: 1},

		// yes (model prints 3 repetitions)
		{tool: "yes", args: []string{"ab"}, out: "ab\nab\nab\n"},
		{tool: "yes", args: []string{}, out: "y\ny\ny\n"},

		// cat / head / nl
		{tool: "cat", args: []string{}, stdin: "ab\ncd", out: "ab\ncd"},
		{tool: "cat", args: []string{"-n"}, stdin: "a\nb\n", out: "1 a\n2 b\n"},
		{tool: "head", args: []string{"-n", "1"}, stdin: "a\nb\nc\n", out: "a\n"},
		{tool: "nl", args: []string{}, stdin: "a\n\nb\n", out: "1\ta\n\n2\tb\n"},

		// wc
		{tool: "wc", args: []string{"-l"}, stdin: "a\nb\n", out: "2\n"},
		{tool: "wc", args: []string{"-w"}, stdin: "a b  c\n", out: "3\n"},
		{tool: "wc", args: []string{"-c"}, stdin: "abcd", out: "4\n"},
		{tool: "wc", args: []string{}, stdin: "a b\n", out: "124\n"}, // 1 line, 2 words, 4 bytes
		// cut / tr / fold / expand
		{tool: "cut", args: []string{"-c", "2"}, stdin: "abc\nxy\n", out: "b\ny\n"},
		{tool: "tr", args: []string{"a", "b"}, stdin: "aba", out: "bbb"},
		{tool: "fold", args: []string{"2"}, stdin: "abcde", out: "ab\ncd\ne"},
		{tool: "expand", args: []string{}, stdin: "a\tb", out: "a   b"},

		// paste / comm / join
		{tool: "paste", args: []string{"ab", "x"}, out: "a\tx\nb\t\n"},
		{tool: "comm", args: []string{"abd", "bcd"}, out: "1a\n3b\n2c\n3d\n"},
		{tool: "join", args: []string{"k12", "k34"}, out: "k1234\n"},
		{tool: "join", args: []string{"a1", "b2"}, out: ""},

		// seq / sleep / nice
		{tool: "seq", args: []string{"3"}, out: "1\n2\n3\n"},
		{tool: "seq", args: []string{"x"}, out: "?", exit: 1},
		{tool: "sleep", args: []string{"5", "7"}, out: "z"},
		{tool: "sleep", args: []string{"5x"}, out: "?", exit: 1},
		{tool: "nice", args: []string{"-n", "5", "cmd"}, out: "cmd\n"},
		{tool: "nice", args: []string{"-n", "3"}, out: "03\n"},
		{tool: "nice", args: []string{"-n", "x", "cmd"}, out: "?", exit: 1},

		// link / unlink / mv / rm / test
		{tool: "link", args: []string{"a", "b"}, out: ""},
		{tool: "link", args: []string{"a", "a"}, out: "x", exit: 1},
		{tool: "link", args: []string{"a"}, out: "?", exit: 1},
		{tool: "unlink", args: []string{"."}, out: "d", exit: 1},
		{tool: "unlink", args: []string{"f"}, out: ""},
		{tool: "mv", args: []string{"a", "a"}, out: "x", exit: 1},
		{tool: "mv", args: []string{"-f", "a", "a"}, out: ""},
		{tool: "rm", args: []string{"a", "b"}, out: ""},
		{tool: "rm", args: []string{".."}, out: "d", exit: 1},
		{tool: "test", args: []string{"a", "=", "a"}, out: ""},
		{tool: "test", args: []string{"a", "=", "b"}, out: "", exit: 1},
		{tool: "test", args: []string{"a", "!=", "b"}, out: ""},
		{tool: "test", args: []string{"-n", "x"}, out: ""},
		{tool: "test", args: []string{"-z", "x"}, out: "", exit: 1},

		// pr: page headers every 2 lines
		{tool: "pr", args: []string{}, stdin: "a\nb\nc\n", out: "P1\na\nb\nP2\nc\n"},
		{tool: "pr", args: []string{"-h"}, stdin: "a\n", out: "a\n"},

		// tsort: a->b, b->c gives abc; cycle detected
		{tool: "tsort", args: []string{}, stdin: "abbc", out: "a\nb\nc\n"},
		{tool: "tsort", args: []string{}, stdin: "abba", out: "!", exit: 1},
	}
	for _, c := range cases {
		c := c
		runConformance(t, c)
	}
}

// TestInterpreterAgainstEngine replays fixed concrete inputs through both
// execution pipelines — the symbolic engine in replay mode and the
// independent IR interpreter (internal/ir.Interp) — for every registered
// model, pinning the two executors together on realistic programs (loops,
// calls, arrays, stdin), complementing the generated-program differential
// fuzz in symx.
func TestInterpreterAgainstEngine(t *testing.T) {
	inputs := []struct {
		args  []string
		stdin string
	}{
		{[]string{"-n", "ab"}, "x\ny\n"},
		{[]string{"12", "7"}, "a b\n"},
		{[]string{"u+rwx", "f"}, "abc"},
		{[]string{""}, ""},
	}
	for _, tool := range All() {
		p, err := tool.Compile()
		if err != nil {
			t.Fatalf("%s: %v", tool.Name, err)
		}
		for _, in := range inputs {
			args := make([][]byte, len(in.args))
			for i, a := range in.args {
				args[i] = []byte(a)
			}
			want, err := ir.Interp(p.Internal(), args, []byte(in.stdin), 1e7)
			if err != nil {
				t.Fatalf("%s: interp error: %v", tool.Name, err)
			}
			if want.AssumeFailed {
				continue
			}
			res := symx.Run(p, symx.Config{
				ConcreteArgs: args, ConcreteStdin: []byte(in.stdin),
				CollectTests: true,
			})
			if len(res.Tests) != 1 {
				t.Fatalf("%s %q: engine replay produced %d tests", tool.Name, in.args, len(res.Tests))
			}
			tc := res.Tests[0]
			if string(tc.Output) != string(want.Output) || tc.Exit != want.Exit {
				t.Fatalf("%s %q < %q: engine (%q, %d) vs interpreter (%q, %d)",
					tool.Name, in.args, in.stdin,
					tc.Output, tc.Exit, want.Output, want.Exit)
			}
		}
	}
}

// TestReplayGeneratedTests closes the loop: inputs generated by symbolic
// exploration, replayed concretely, must reproduce the recorded output.
func TestReplayGeneratedTests(t *testing.T) {
	for _, name := range []string{"echo", "sleep", "test", "wc"} {
		tool, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tool.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cfg := tool.BaseConfig()
		cfg.CollectTests = true
		res := symx.Run(p, cfg)
		if len(res.Tests) == 0 {
			t.Fatalf("%s: no tests generated", name)
		}
		replayed := 0
		for _, tc := range res.Tests {
			if replayed >= 16 {
				break
			}
			rr := symx.Run(p, symx.Config{
				ConcreteArgs:  tc.Args,
				ConcreteStdin: tc.Stdin,
				CollectTests:  true,
			})
			if rr.Stats.PathsCompleted != 1 || len(rr.Tests) != 1 {
				t.Fatalf("%s: replay of %q explored %d paths",
					name, tc.Args, rr.Stats.PathsCompleted)
			}
			if string(rr.Tests[0].Output) != string(tc.Output) {
				t.Fatalf("%s: replay of %q produced %q, symbolic run predicted %q",
					name, tc.Args, rr.Tests[0].Output, tc.Output)
			}
			replayed++
		}
	}
}

func TestConformanceParseTools(t *testing.T) {
	cases := []conformanceCase{
		// printf
		{tool: "printf", args: []string{"ab"}, out: "ab"},
		{tool: "printf", args: []string{"a%sb", "XY"}, out: "aXYb"},
		{tool: "printf", args: []string{"%c.", "hi"}, out: "h."},
		{tool: "printf", args: []string{"%d", "42"}, out: "42"},
		{tool: "printf", args: []string{"%d", "4x"}, out: "!", exit: 1},
		{tool: "printf", args: []string{"%%"}, out: "%"},
		{tool: "printf", args: []string{"%q"}, out: "?", exit: 1},
		{tool: "printf", args: []string{"a\\nb"}, out: "a\nb"},
		{tool: "printf", args: []string{}, out: "?", exit: 1},

		// expr
		{tool: "expr", args: []string{"4", "+", "3"}, out: "7\n"},
		{tool: "expr", args: []string{"4", "-", "6"}, out: "-2\n"},
		{tool: "expr", args: []string{"4", "-", "4"}, out: "0\n", exit: 1},
		{tool: "expr", args: []string{"4", "*", "3"}, out: "12\n"},
		{tool: "expr", args: []string{"9", "/", "2"}, out: "4\n"},
		{tool: "expr", args: []string{"9", "/", "0"}, out: "!", exit: 2},
		{tool: "expr", args: []string{"9", "%", "3"}, out: "0\n", exit: 1},
		{tool: "expr", args: []string{"5", "=", "5"}, out: "1\n"},
		{tool: "expr", args: []string{"5", "!=", "5"}, out: "0\n", exit: 1},
		{tool: "expr", args: []string{"a", "+", "1"}, out: "?", exit: 2},

		// factor (model reduces the operand mod 32)
		{tool: "factor", args: []string{"12"}, out: "12: 2 2 3\n"},
		{tool: "factor", args: []string{"7"}, out: "07: 7\n"},
		{tool: "factor", args: []string{"1"}, out: "!", exit: 1},
		{tool: "factor", args: []string{"x"}, out: "?", exit: 1},

		// od
		{tool: "od", args: []string{}, stdin: "A", out: "101\n"},
		{tool: "od", args: []string{"-b"}, stdin: "\n", out: "012\n"},
		{tool: "od", args: []string{"-c"}, stdin: "a\n", out: "a\n\\n\n"},
		{tool: "od", args: []string{"-z"}, stdin: "a", out: "?", exit: 1},

		// base64
		{tool: "base64", args: []string{}, stdin: "abc", out: "YWJj\n"},
		{tool: "base64", args: []string{}, stdin: "a", out: "YQ==\n"},
		{tool: "base64", args: []string{}, stdin: "ab", out: "YWI=\n"},
		{tool: "base64", args: []string{"-d"}, stdin: "YWJj", out: "k"},
		{tool: "base64", args: []string{"-d"}, stdin: "Y!Jj", out: "?", exit: 1},
		{tool: "base64", args: []string{"-d"}, stdin: "YWJ", out: "!", exit: 1},

		// chmod
		{tool: "chmod", args: []string{"755", "f"}, out: "o"},
		{tool: "chmod", args: []string{"758", "f"}, out: "?", exit: 1},
		{tool: "chmod", args: []string{"u+rwx", "f"}, out: "s"},
		{tool: "chmod", args: []string{"a=", "f"}, out: "s"},
		{tool: "chmod", args: []string{"u+", "f"}, out: "?", exit: 1},
		{tool: "chmod", args: []string{"u+q", "f"}, out: "?", exit: 1},
		{tool: "chmod", args: []string{"755", ""}, out: "e", exit: 1},

		// date
		{tool: "date", args: []string{}, out: "T\n"},
		{tool: "date", args: []string{"+%Y-%m"}, out: "20-06\n"},
		{tool: "date", args: []string{"+ok"}, out: "ok\n"},
		{tool: "date", args: []string{"+%q"}, out: "?", exit: 1},
		{tool: "date", args: []string{"x"}, out: "?", exit: 1},

		// mktemp
		{tool: "mktemp", args: []string{"fXXX"}, out: "faaa\n"},
		{tool: "mktemp", args: []string{"fXX"}, out: "!", exit: 1},
		{tool: "mktemp", args: []string{"XXXf"}, out: "!", exit: 1},

		// pathchk (component limit 6 in the model)
		{tool: "pathchk", args: []string{"a/b"}, out: ""},
		{tool: "pathchk", args: []string{"abcdefg"}, out: "l", exit: 1},
		{tool: "pathchk", args: []string{"-p", "a:b"}, out: "c", exit: 1},
		{tool: "pathchk", args: []string{"-p", "a.b-c"}, out: ""},
		{tool: "pathchk", args: []string{""}, out: "e", exit: 1},

		// numfmt
		{tool: "numfmt", args: []string{"42"}, out: "42e0\n"},
		{tool: "numfmt", args: []string{"2K"}, out: "2e3\n"},
		{tool: "numfmt", args: []string{"2G"}, out: "2e9\n"},
		{tool: "numfmt", args: []string{"2Kx"}, out: "!", exit: 1},
		{tool: "numfmt", args: []string{"K"}, out: "?", exit: 1},

		// tee
		{tool: "tee", args: []string{"f"}, stdin: "xyz", out: "xyz"},
		{tool: "tee", args: []string{"-a", "f"}, stdin: "q", out: "q"},
		{tool: "tee", args: []string{""}, stdin: "q", out: "e", exit: 1},

		// env
		{tool: "env", args: []string{"A=1", "B=2", "cmd"}, out: "cmd\n"},
		{tool: "env", args: []string{"A=1"}, out: "1\n"},
		{tool: "env", args: []string{"=x", "cmd"}, out: "?", exit: 125},
		{tool: "env", args: []string{"cmd"}, out: "cmd\n"},
	}
	for _, c := range cases {
		runConformance(t, c)
	}
}

func TestConformanceNewTools(t *testing.T) {
	cases := []conformanceCase{
		{tool: "uniq", args: []string{}, stdin: "a\na\nb\n", out: "a\nb\n"},
		{tool: "uniq", args: []string{"-c"}, stdin: "a\na\nb\n", out: "2 a\n1 b\n"},
		{tool: "uniq", args: []string{}, stdin: "x\n", out: "x\n"},
		{tool: "rev", args: []string{}, stdin: "abc\nde\n", out: "cba\ned\n"},
		{tool: "rev", args: []string{}, stdin: "ab", out: "ba"},
		{tool: "tac", args: []string{}, stdin: "a\nb\nc\n", out: "c\nb\na\n"},
		{tool: "tac", args: []string{}, stdin: "ab\ncd", out: "cd\nab\n"},
	}
	for _, c := range cases {
		runConformance(t, c)
	}
}

func TestConformanceHeapTools(t *testing.T) {
	cases := []conformanceCase{
		// sort: byte records, -r reverses, empty arg counts as absent.
		{tool: "sort", args: []string{}, stdin: "cab", out: "abc"},
		{tool: "sort", args: []string{}, stdin: "banana", out: "aaabnn"},
		{tool: "sort", args: []string{""}, stdin: "ba", out: "ab"},
		{tool: "sort", args: []string{"-r"}, stdin: "cab", out: "cba"},
		{tool: "sort", args: []string{"-r"}, stdin: "", out: ""},
		{tool: "sort", args: []string{"x"}, out: "?", exit: 1},
		{tool: "sort", args: []string{"-n"}, out: "?", exit: 1},

		// tail: last K bytes, default 2.
		{tool: "tail", args: []string{}, stdin: "abcd", out: "cd"},
		{tool: "tail", args: []string{}, stdin: "x", out: "x"},
		{tool: "tail", args: []string{"-3"}, stdin: "abcd", out: "bcd"},
		{tool: "tail", args: []string{"-9"}, stdin: "ab", out: "ab"},
		{tool: "tail", args: []string{""}, stdin: "abc", out: "bc"},
		{tool: "tail", args: []string{"-0"}, out: "?", exit: 1},
		{tool: "tail", args: []string{"q"}, out: "?", exit: 1},

		// fmt: single-space word reflow with trailing newline.
		{tool: "fmt", args: []string{}, stdin: "a b", out: "a b\n"},
		{tool: "fmt", args: []string{}, stdin: "  a \t b \nc ", out: "a b c\n"},
		{tool: "fmt", args: []string{}, stdin: "word", out: "word\n"},
		{tool: "fmt", args: []string{}, stdin: " \n\t", out: ""},
		{tool: "fmt", args: []string{}, stdin: "", out: ""},
	}
	for _, c := range cases {
		runConformance(t, c)
	}
}
