package coreutils

// Numeric and control tools: seq, sleep, nice, link, unlink, test, mv, rm.

func init() {
	register(&Tool{Name: "seq", Source: srcSeq, DefaultArgs: 1, DefaultLen: 1})
	register(&Tool{Name: "sleep", Source: srcSleep, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "nice", Source: srcNice, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "link", Source: srcLink, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "unlink", Source: srcUnlink, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "test", Source: srcTest, DefaultArgs: 3, DefaultLen: 1})
	register(&Tool{Name: "mv", Source: srcMv, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "rm", Source: srcRm, DefaultArgs: 2, DefaultLen: 2})
}

const srcSeq = libParseDecOr + `
// seq last : print 1..last, where last is a single decimal digit argument.
void main() {
    if (argc() < 2) {
        halt(1);
    }
    int last = parse_dec_or(1, '?');
    last = last % 10; // model bound: single-digit sequences
    for (int k = 1; k <= last; k++) {
        putchar(tobyte('0' + k % 10));
        putchar('\n');
    }
}
`

// srcSleep is the paper's §5.4 anecdote: integers parsed from every
// argument are summed into `seconds`; the parse loops fork heavily, but the
// accumulator is used only once in the validation at the end, so QCE lets
// all parse states merge and avoids the exponential blowup.
const srcSleep = libParseScan + `
// sleep n... : sum the integer arguments, validate, and "sleep".
void main() {
    int seconds = 0;
    bool ok = argc() > 1;
    int pr[2];
    for (int arg = 1; arg < argc(); arg++) {
        parse_scan(arg, 0, pr);
        if (pr[1] == 0) {
            ok = false;
        }
        seconds = seconds + pr[0];
    }
    if (!ok) {
        putchar('?');
        halt(1);
    }
    // Validation: the single late use of the merged accumulator.
    if (seconds > 86400) {
        putchar('!');
        halt(1);
    }
    putchar('z');
    halt(0);
}
`

const srcNice = libOptFlag + libParseScan + libPutArg + `
// nice [-n adj] cmd... : parse the adjustment, clamp it, then "run" the
// command by printing its name.
void main() {
    int adj = 10;
    int arg = 1;
    int pr[2];
    if (arg < argc() && opt_flag(arg, 'n')) {
        arg++;
        if (arg >= argc()) {
            putchar('?');
            halt(1);
        }
        bool neg = false;
        int i = 0;
        if (argchar(arg, 0) == '-') {
            neg = true;
            i = 1;
        }
        parse_scan(arg, i, pr);
        if (pr[1] == 0) {
            putchar('?');
            halt(1);
        }
        adj = pr[0];
        if (neg) {
            adj = 0 - adj;
        }
        arg++;
    }
    // Clamp to the valid niceness range.
    if (adj > 19) { adj = 19; }
    if (adj < 0 - 20) { adj = 0 - 20; }
    if (arg >= argc()) {
        // No command: print the current niceness.
        if (adj < 0) {
            putchar('-');
            adj = 0 - adj;
        }
        putchar(tobyte('0' + (adj / 10) % 10));
        putchar(tobyte('0' + adj % 10));
        putchar('\n');
        halt(0);
    }
    // "Execute" the command.
    put_arg(arg, 0);
    putchar('\n');
}
`

const srcLink = libArgsSame + `
// link a b : create a hard link. Like the GNU tool, both operands pass
// through the shell-quoting routine used for diagnostics, which classifies
// every character (both classification outcomes continue execution, so
// paths multiply per character — the structure behind link's top speedup
// in the paper's Figure 5).
int quoteArg(int arg) {
    // Returns the number of characters that would need escaping.
    int esc = 0;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte c = argchar(arg, i);
        bool plain = (c >= 'a' && c <= 'z') || c == '/';
        if (!plain) {
            esc++;
        }
    }
    return esc;
}

void main() {
    if (argc() < 3) {
        putchar('?');
        halt(1);
    }
    if (argc() > 3) {
        putchar('!');
        halt(1);
    }
    // Prepare quoted forms of both operands for any diagnostic.
    int esc1 = quoteArg(1);
    int esc2 = quoteArg(2);
    // Empty operands are invalid.
    if (argchar(1, 0) == 0 || argchar(2, 0) == 0) {
        putchar('e');
        halt(1);
    }
    // Same-name link fails (models EEXIST).
    if (args_same(1, 2)) {
        putchar('x');
        if (esc1 + esc2 > 0) {
            putchar('q'); // names were quoted in the message
        }
        halt(1);
    }
    halt(0);
}
`

const srcUnlink = `
// unlink name : remove a file; validates the operand count and name.
void main() {
    if (argc() != 2) {
        putchar('?');
        halt(1);
    }
    if (argchar(1, 0) == 0) {
        putchar('e');
        halt(1);
    }
    // Refuse to unlink "." or "..".
    if (argchar(1, 0) == '.' && (argchar(1, 1) == 0 ||
        (argchar(1, 1) == '.' && argchar(1, 2) == 0))) {
        putchar('d');
        halt(1);
    }
    halt(0);
}
`

const srcTest = libArgsSame + `
// test args... : evaluate a tiny shell conditional: supported forms are
// "-n STR", "-z STR", "STR", and "A = B" / "A != B" on one-char operands.
void main() {
    int n = argc() - 1;
    if (n == 0) {
        halt(1); // empty expression is false
    }
    if (n == 1) {
        // Nonempty string is true.
        if (argchar(1, 0) != 0) {
            halt(0);
        }
        halt(1);
    }
    if (n == 2) {
        if (argchar(1, 0) == '-' && argchar(1, 2) == 0) {
            byte op = argchar(1, 1);
            if (op == 'n') {
                if (argchar(2, 0) != 0) { halt(0); }
                halt(1);
            }
            if (op == 'z') {
                if (argchar(2, 0) == 0) { halt(0); }
                halt(1);
            }
        }
        putchar('?');
        halt(2);
    }
    if (n == 3) {
        // A = B or A != B over full strings.
        bool eq = args_same(1, 3);
        if (argchar(2, 0) == '=' && argchar(2, 1) == 0) {
            if (eq) { halt(0); }
            halt(1);
        }
        if (argchar(2, 0) == '!' && argchar(2, 1) == '=' && argchar(2, 2) == 0) {
            if (!eq) { halt(0); }
            halt(1);
        }
    }
    putchar('?');
    halt(2);
}
`

const srcMv = libOptFlag + libArgsSame + `
// mv [-f|-i] src dst : validate operands; refuses to move onto itself.
void main() {
    int arg = 1;
    bool force = false;
    if (arg < argc()) {
        if (opt_flag(arg, 'f')) {
            force = true;
            arg++;
        } else if (opt_flag(arg, 'i')) {
            arg++;
        }
    }
    if (argc() - arg < 2) {
        putchar('?');
        halt(1);
    }
    if (args_same(arg, arg + 1) && !force) {
        putchar('x');
        halt(1);
    }
    halt(0);
}
`

const srcRm = libOptFlag + `
// rm [-r] [-f] names... : validate each operand; "." and ".." refused.
void main() {
    int arg = 1;
    bool force = false;
    while (arg < argc() && argchar(arg, 0) == '-' && argchar(arg, 2) == 0) {
        if (opt_flag(arg, 'f')) {
            force = true;
        } else if (!opt_flag(arg, 'r')) {
            putchar('?');
            halt(1);
        }
        arg++;
    }
    if (arg >= argc()) {
        if (force) {
            halt(0); // rm -f with no operands succeeds
        }
        putchar('?');
        halt(1);
    }
    int status = 0;
    for (; arg < argc(); arg++) {
        if (argchar(arg, 0) == 0) {
            status = 1;
            putchar('e');
        } else if (argchar(arg, 0) == '.' && (argchar(arg, 1) == 0 ||
            (argchar(arg, 1) == '.' && argchar(arg, 2) == 0))) {
            status = 1;
            putchar('d');
        }
    }
    halt(status);
}
`
