package coreutils

// Numeric and control tools: seq, sleep, nice, link, unlink, test, mv, rm.

func init() {
	register(&Tool{Name: "seq", Source: srcSeq, DefaultArgs: 1, DefaultLen: 1})
	register(&Tool{Name: "sleep", Source: srcSleep, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "nice", Source: srcNice, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "link", Source: srcLink, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "unlink", Source: srcUnlink, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "test", Source: srcTest, DefaultArgs: 3, DefaultLen: 1})
	register(&Tool{Name: "mv", Source: srcMv, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "rm", Source: srcRm, DefaultArgs: 2, DefaultLen: 2})
}

const srcSeq = `
// seq last : print 1..last, where last is a single decimal digit argument.
void main() {
    if (argc() < 2) {
        halt(1);
    }
    int last = 0;
    for (int i = 0; argchar(1, i) != 0; i++) {
        byte d = argchar(1, i);
        if (d < '0' || d > '9') {
            // invalid number
            putchar('?');
            halt(1);
        }
        last = last * 10 + toint(d - '0');
    }
    last = last % 10; // model bound: single-digit sequences
    for (int k = 1; k <= last; k++) {
        putchar(tobyte('0' + k % 10));
        putchar('\n');
    }
}
`

// srcSleep is the paper's §5.4 anecdote: integers parsed from every
// argument are summed into `seconds`; the parse loops fork heavily, but the
// accumulator is used only once in the validation at the end, so QCE lets
// all parse states merge and avoids the exponential blowup.
const srcSleep = `
// sleep n... : sum the integer arguments, validate, and "sleep".
void main() {
    int seconds = 0;
    bool ok = argc() > 1;
    for (int arg = 1; arg < argc(); arg++) {
        int v = 0;
        bool any = false;
        for (int i = 0; argchar(arg, i) != 0; i++) {
            byte d = argchar(arg, i);
            if (d >= '0' && d <= '9') {
                v = v * 10 + toint(d - '0');
                any = true;
            } else {
                ok = false;
            }
        }
        if (!any) {
            ok = false;
        }
        seconds = seconds + v;
    }
    if (!ok) {
        putchar('?');
        halt(1);
    }
    // Validation: the single late use of the merged accumulator.
    if (seconds > 86400) {
        putchar('!');
        halt(1);
    }
    putchar('z');
    halt(0);
}
`

const srcNice = `
// nice [-n adj] cmd... : parse the adjustment, clamp it, then "run" the
// command by printing its name.
void main() {
    int adj = 10;
    int arg = 1;
    if (arg < argc() && argchar(arg, 0) == '-' && argchar(arg, 1) == 'n' && argchar(arg, 2) == 0) {
        arg++;
        if (arg >= argc()) {
            putchar('?');
            halt(1);
        }
        adj = 0;
        bool neg = false;
        int i = 0;
        if (argchar(arg, 0) == '-') {
            neg = true;
            i = 1;
        }
        bool any = false;
        bool bad = false;
        // strtol-style scan: invalid characters are noted but the scan
        // continues (validation happens once at the end), so both branch
        // outcomes survive every character.
        for (; argchar(arg, i) != 0; i++) {
            byte d = argchar(arg, i);
            if (d < '0' || d > '9') {
                bad = true;
            } else {
                adj = adj * 10 + toint(d - '0');
                any = true;
            }
        }
        if (!any || bad) {
            putchar('?');
            halt(1);
        }
        if (neg) {
            adj = 0 - adj;
        }
        arg++;
    }
    // Clamp to the valid niceness range.
    if (adj > 19) { adj = 19; }
    if (adj < 0 - 20) { adj = 0 - 20; }
    if (arg >= argc()) {
        // No command: print the current niceness.
        if (adj < 0) {
            putchar('-');
            adj = 0 - adj;
        }
        putchar(tobyte('0' + (adj / 10) % 10));
        putchar(tobyte('0' + adj % 10));
        putchar('\n');
        halt(0);
    }
    // "Execute" the command.
    for (int k = 0; argchar(arg, k) != 0; k++) {
        putchar(argchar(arg, k));
    }
    putchar('\n');
}
`

const srcLink = `
// link a b : create a hard link. Like the GNU tool, both operands pass
// through the shell-quoting routine used for diagnostics, which classifies
// every character (both classification outcomes continue execution, so
// paths multiply per character — the structure behind link's top speedup
// in the paper's Figure 5).
int quoteArg(int arg) {
    // Returns the number of characters that would need escaping.
    int esc = 0;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte c = argchar(arg, i);
        bool plain = (c >= 'a' && c <= 'z') || c == '/';
        if (!plain) {
            esc++;
        }
    }
    return esc;
}

void main() {
    if (argc() < 3) {
        putchar('?');
        halt(1);
    }
    if (argc() > 3) {
        putchar('!');
        halt(1);
    }
    // Prepare quoted forms of both operands for any diagnostic.
    int esc1 = quoteArg(1);
    int esc2 = quoteArg(2);
    // Empty operands are invalid.
    if (argchar(1, 0) == 0 || argchar(2, 0) == 0) {
        putchar('e');
        halt(1);
    }
    // Same-name link fails (models EEXIST).
    bool same = true;
    for (int i = 0; same; i++) {
        byte a = argchar(1, i);
        byte b = argchar(2, i);
        if (a != b) {
            same = false;
        }
        if (a == 0 || b == 0) {
            break;
        }
    }
    if (same) {
        putchar('x');
        if (esc1 + esc2 > 0) {
            putchar('q'); // names were quoted in the message
        }
        halt(1);
    }
    halt(0);
}
`

const srcUnlink = `
// unlink name : remove a file; validates the operand count and name.
void main() {
    if (argc() != 2) {
        putchar('?');
        halt(1);
    }
    if (argchar(1, 0) == 0) {
        putchar('e');
        halt(1);
    }
    // Refuse to unlink "." or "..".
    if (argchar(1, 0) == '.' && (argchar(1, 1) == 0 ||
        (argchar(1, 1) == '.' && argchar(1, 2) == 0))) {
        putchar('d');
        halt(1);
    }
    halt(0);
}
`

const srcTest = `
// test args... : evaluate a tiny shell conditional: supported forms are
// "-n STR", "-z STR", "STR", and "A = B" / "A != B" on one-char operands.
void main() {
    int n = argc() - 1;
    if (n == 0) {
        halt(1); // empty expression is false
    }
    if (n == 1) {
        // Nonempty string is true.
        if (argchar(1, 0) != 0) {
            halt(0);
        }
        halt(1);
    }
    if (n == 2) {
        if (argchar(1, 0) == '-' && argchar(1, 2) == 0) {
            byte op = argchar(1, 1);
            if (op == 'n') {
                if (argchar(2, 0) != 0) { halt(0); }
                halt(1);
            }
            if (op == 'z') {
                if (argchar(2, 0) == 0) { halt(0); }
                halt(1);
            }
        }
        putchar('?');
        halt(2);
    }
    if (n == 3) {
        // A = B or A != B over full strings.
        bool eq = true;
        int i = 0;
        while (true) {
            byte a = argchar(1, i);
            byte b = argchar(3, i);
            if (a != b) {
                eq = false;
                break;
            }
            if (a == 0) {
                break;
            }
            i++;
        }
        if (argchar(2, 0) == '=' && argchar(2, 1) == 0) {
            if (eq) { halt(0); }
            halt(1);
        }
        if (argchar(2, 0) == '!' && argchar(2, 1) == '=' && argchar(2, 2) == 0) {
            if (!eq) { halt(0); }
            halt(1);
        }
    }
    putchar('?');
    halt(2);
}
`

const srcMv = `
// mv [-f|-i] src dst : validate operands; refuses to move onto itself.
void main() {
    int arg = 1;
    bool force = false;
    if (arg < argc() && argchar(arg, 0) == '-' && argchar(arg, 2) == 0) {
        byte f = argchar(arg, 1);
        if (f == 'f') {
            force = true;
            arg++;
        } else if (f == 'i') {
            arg++;
        }
    }
    if (argc() - arg < 2) {
        putchar('?');
        halt(1);
    }
    bool same = true;
    for (int i = 0; same; i++) {
        byte a = argchar(arg, i);
        byte b = argchar(arg + 1, i);
        if (a != b) {
            same = false;
        }
        if (a == 0 || b == 0) {
            break;
        }
    }
    if (same && !force) {
        putchar('x');
        halt(1);
    }
    halt(0);
}
`

const srcRm = `
// rm [-r] [-f] names... : validate each operand; "." and ".." refused.
void main() {
    int arg = 1;
    bool force = false;
    while (arg < argc() && argchar(arg, 0) == '-' && argchar(arg, 2) == 0) {
        byte f = argchar(arg, 1);
        if (f == 'f') {
            force = true;
        } else if (f != 'r') {
            putchar('?');
            halt(1);
        }
        arg++;
    }
    if (arg >= argc()) {
        if (force) {
            halt(0); // rm -f with no operands succeeds
        }
        putchar('?');
        halt(1);
    }
    int status = 0;
    for (; arg < argc(); arg++) {
        if (argchar(arg, 0) == 0) {
            status = 1;
            putchar('e');
        } else if (argchar(arg, 0) == '.' && (argchar(arg, 1) == 0 ||
            (argchar(arg, 1) == '.' && argchar(arg, 2) == 0))) {
            status = 1;
            putchar('d');
        }
    }
    halt(status);
}
`
