package coreutils

// Heap-driven tools: models whose working state lives in dynamically
// allocated memory (MiniC ptr locals from alloc) rather than fixed-size
// frame arrays — the workload class the paper's heap-heavy COREUTILS half
// (sort, tail, fmt, uniq -c, ...) represents. Buffers are sized from
// stdinlen() up front (allocation sizes must be concrete; see ROADMAP), and
// the interesting indices — sort's insertion point, tail's start offset,
// fmt's word length — diverge per path, so under merging the p[i] accesses
// go through symbolic addresses and exercise the guarded-select machinery.

func init() {
	register(&Tool{Name: "sort", Source: srcSort, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 3})
	register(&Tool{Name: "tail", Source: srcTail, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 3})
	register(&Tool{Name: "fmt", Source: srcFmt, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 1, DefaultStdin: 4})
}

const srcSort = `
// sort [-r] : sort the bytes of standard input (one record per byte);
// -r sorts in reverse. An empty first argument counts as absent.
void main() {
    bool rev = false;
    if (argc() > 1 && argchar(1, 0) != 0) {
        if (argchar(1, 0) == '-' && argchar(1, 1) == 'r' && argchar(1, 2) == 0) {
            rev = true;
        } else {
            putchar('?');
            halt(1);
        }
    }
    int n = stdinlen();
    ptr buf = alloc(n);
    for (int i = 0; i < n; i++) {
        buf[i] = toint(stdinchar(i));
    }
    // Insertion sort: the insertion point j diverges per path, so merged
    // states read and write buf through symbolic addresses.
    for (int i = 1; i < n; i++) {
        int v = buf[i];
        int j = i;
        while (j > 0 && buf[j - 1] > v) {
            buf[j] = buf[j - 1];
            j--;
        }
        buf[j] = v;
    }
    if (rev) {
        ptr q = buf + n;
        for (int k = 0; k < n; k++) {
            q = q - 1;
            putchar(tobyte(q[0]));
        }
    } else {
        for (int k = 0; k < n; k++) {
            putchar(tobyte(buf[k]));
        }
    }
}
`

const srcTail = `
// tail [-K] : print the last K bytes of standard input (K a single digit;
// default 2). An empty first argument counts as absent.
void main() {
    int n = stdinlen();
    ptr buf = alloc(n);
    for (int i = 0; i < n; i++) {
        buf[i] = toint(stdinchar(i));
    }
    int k = 2;
    if (argc() > 1 && argchar(1, 0) != 0) {
        if (argchar(1, 0) == '-' && argchar(1, 1) >= '1' && argchar(1, 1) <= '9'
                && argchar(1, 2) == 0) {
            k = toint(argchar(1, 1)) - 48;
        } else {
            putchar('?');
            halt(1);
        }
    }
    int start = n - k;
    if (start < 0) {
        start = 0;
    }
    // Walk a moving pointer to the end: merged states make start (and with
    // it q) symbolic, so both the bound check and the reads go through
    // symbolic addresses.
    ptr end = buf + n;
    ptr q = buf + start;
    while (q < end) {
        putchar(tobyte(q[0]));
        q = q + 1;
    }
}
`

const srcFmt = `
// fmt : reflow standard input into words separated by single spaces, with a
// trailing newline when anything was printed. The current word lives in a
// heap buffer whose fill level diverges per path.
void main() {
    int n = stdinlen();
    ptr w = alloc(n);
    int wl = 0;
    bool any = false;
    for (int i = 0; i < n; i++) {
        int c = toint(stdinchar(i));
        if (c == ' ' || c == '\n' || c == '\t') {
            if (wl > 0) {
                if (any) {
                    putchar(' ');
                }
                for (int j = 0; j < wl; j++) {
                    putchar(tobyte(w[j]));
                }
                any = true;
                wl = 0;
            }
        } else {
            w[wl] = c;
            wl++;
        }
    }
    if (wl > 0) {
        if (any) {
            putchar(' ');
        }
        for (int j = 0; j < wl; j++) {
            putchar(tobyte(w[j]));
        }
        any = true;
    }
    if (any) {
        putchar('\n');
    }
}
`
