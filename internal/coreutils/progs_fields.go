package coreutils

// Field- and stream-processing tools: cut, paste, tr, expand, fold, nl,
// sum, pr, comm, join, tsort.

func init() {
	register(&Tool{Name: "cut", Source: srcCut, UsesStdin: true,
		DefaultArgs: 2, DefaultLen: 1, DefaultStdin: 4})
	register(&Tool{Name: "paste", Source: srcPaste, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "tr", Source: srcTr, UsesStdin: true,
		DefaultArgs: 2, DefaultLen: 1, DefaultStdin: 4})
	register(&Tool{Name: "expand", Source: srcExpand, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "fold", Source: srcFold, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 1, DefaultStdin: 4})
	register(&Tool{Name: "nl", Source: srcNl, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "sum", Source: srcSum, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "pr", Source: srcPr, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "comm", Source: srcComm, DefaultArgs: 2, DefaultLen: 2})
	register(&Tool{Name: "join", Source: srcJoin, DefaultArgs: 2, DefaultLen: 3})
	register(&Tool{Name: "tsort", Source: srcTsort, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 1, DefaultStdin: 4})
	register(&Tool{Name: "cksum", Source: srcCksum, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 1})
}

const srcCut = libOptFlag + `
// cut -c N : print the N-th character of every stdin line.
void main() {
    int col = 1;
    if (argc() > 2 && opt_flag(1, 'c')) {
        byte d = argchar(2, 0);
        if (d >= '1' && d <= '9') {
            col = toint(d - '0');
        }
    }
    int pos = 1;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == '\n') {
            putchar('\n');
            pos = 1;
        } else {
            if (pos == col) {
                putchar(c);
            }
            pos++;
        }
    }
}
`

const srcPaste = `
// paste a b : interleave the two arguments character by character,
// separated by tabs (models pasting two one-column files).
void main() {
    if (argc() < 3) {
        halt(1);
    }
    int i = 0;
    int j = 0;
    while (argchar(1, i) != 0 || argchar(2, j) != 0) {
        if (argchar(1, i) != 0) {
            putchar(argchar(1, i));
            i++;
        }
        putchar('\t');
        if (argchar(2, j) != 0) {
            putchar(argchar(2, j));
            j++;
        }
        putchar('\n');
    }
}
`

const srcTr = `
// tr a b : translate occurrences of byte a to byte b on stdin.
void main() {
    if (argc() < 3) {
        halt(1);
    }
    byte from = argchar(1, 0);
    byte to = argchar(2, 0);
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == from) {
            putchar(to);
        } else {
            putchar(c);
        }
    }
}
`

const srcExpand = libOptFlag + `
// expand [-i] : replace tabs on stdin with spaces up to the next 4-column
// stop; -i converts only leading tabs.
void main() {
    bool initialOnly = false;
    if (argc() > 1 && opt_flag(1, 'i')) {
        initialOnly = true;
    }
    int col = 0;
    bool leading = true;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == '\t' && (!initialOnly || leading)) {
            putchar(' ');
            col++;
            while (col % 4 != 0) {
                putchar(' ');
                col++;
            }
        } else if (c == '\n') {
            putchar(c);
            col = 0;
            leading = true;
        } else {
            if (c != '\t' && c != ' ') {
                leading = false;
            }
            putchar(c);
            col++;
        }
    }
}
`

const srcFold = `
// fold -w N : wrap stdin lines at column N (default 3 in the model).
void main() {
    int width = 3;
    if (argc() > 1 && argchar(1, 0) >= '1' && argchar(1, 0) <= '9') {
        width = toint(argchar(1, 0) - '0');
    }
    int col = 0;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == '\n') {
            putchar(c);
            col = 0;
        } else {
            if (col >= width) {
                putchar('\n');
                col = 0;
            }
            putchar(c);
            col++;
        }
    }
}
`

const srcNl = `
// nl [-b a] : number stdin lines; -b a numbers all lines, default numbers
// only non-empty ones.
void main() {
    bool all = false;
    if (argc() > 2 && argchar(1, 0) == '-' && argchar(1, 1) == 'b' && argchar(2, 0) == 'a') {
        all = true;
    }
    int line = 1;
    bool atStart = true;
    bool empty = true;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (atStart) {
            empty = c == '\n';
            if (all || !empty) {
                putchar(tobyte('0' + line % 10));
                putchar('\t');
                line++;
            }
            atStart = false;
        }
        putchar(c);
        if (c == '\n') {
            atStart = true;
        }
    }
}
`

const srcSum = libOptFlag + `
// sum [-r|-s] : checksum stdin; -r (default) is the BSD rotate-and-add
// algorithm, -s the System V straight sum.
void main() {
    bool sysv = false;
    if (argc() > 1 && argchar(1, 0) == '-' && argchar(1, 2) == 0) {
        if (opt_flag(1, 's')) {
            sysv = true;
        } else if (!opt_flag(1, 'r')) {
            putchar('?');
            halt(1);
        }
    }
    int check = 0;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        if (sysv) {
            check = check + toint(stdinchar(i));
        } else {
            // 16-bit right rotate, then add the next byte.
            check = (check >> 1) + ((check & 1) << 15);
            check = check + toint(stdinchar(i));
            check = check & 0xffff;
        }
    }
    if (sysv) {
        check = (check & 0xffff) + (check >> 16);
    }
    // The checksum value itself feeds the output digits: a late use of
    // the accumulated value, like sleep's validation (paper §5.4).
    if (check % 2 == 0) {
        putchar('e');
    }
    putchar(tobyte('0' + (check / 10) % 10));
    putchar(tobyte('0' + check % 10));
    putchar('\n');
}
`

const srcPr = libOptFlag + `
// pr [-h] : paginate stdin: page header, then body lines; -h suppresses
// the header (model: page length 2 lines).
void main() {
    bool header = true;
    if (argc() > 1 && opt_flag(1, 'h')) {
        header = false;
    }
    int lineOnPage = 0;
    int page = 1;
    bool needHeader = true;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        if (needHeader) {
            if (header) {
                putchar('P');
                putchar(tobyte('0' + page % 10));
                putchar('\n');
            }
            needHeader = false;
        }
        byte c = stdinchar(i);
        putchar(c);
        if (c == '\n') {
            lineOnPage++;
            if (lineOnPage >= 2) {
                lineOnPage = 0;
                page++;
                needHeader = true;
            }
        }
    }
}
`

const srcComm = `
// comm a b : compare two sorted sequences (the characters of the two
// arguments); column 1 = only in a, column 2 = only in b, column 3 = both.
void main() {
    if (argc() < 3) {
        halt(1);
    }
    int i = 0;
    int j = 0;
    while (argchar(1, i) != 0 && argchar(2, j) != 0) {
        byte a = argchar(1, i);
        byte b = argchar(2, j);
        if (a < b) {
            putchar('1');
            putchar(a);
            i++;
        } else if (b < a) {
            putchar('2');
            putchar(b);
            j++;
        } else {
            putchar('3');
            putchar(a);
            i++;
            j++;
        }
        putchar('\n');
    }
    while (argchar(1, i) != 0) {
        putchar('1');
        putchar(argchar(1, i));
        putchar('\n');
        i++;
    }
    while (argchar(2, j) != 0) {
        putchar('2');
        putchar(argchar(2, j));
        putchar('\n');
        j++;
    }
}
`

const srcJoin = libPutArg + `
// join a b : join two "files" (the two arguments) on the first field,
// where a field is a single character and records are the remaining
// characters: join emits key + both tails when the keys match.
void main() {
    if (argc() < 3) {
        halt(1);
    }
    byte k1 = argchar(1, 0);
    byte k2 = argchar(2, 0);
    if (k1 != 0 && k1 == k2) {
        putchar(k1);
        put_arg(1, 1);
        put_arg(2, 1);
        putchar('\n');
    }
}
`

const srcTsort = `
// tsort : topological sort of a tiny graph read from stdin as pairs of
// node ids ('a'..'d'); cycles are reported. Models the real tool's
// successive-minimum extraction over an adjacency matrix.
void main() {
    // adj[i*4+j] != 0 means edge i -> j; nodes 'a'..'d'.
    byte adj[16];
    byte indeg[4];
    byte present[4];
    int n = stdinlen();
    int i = 0;
    while (i + 1 < n) {
        byte u = stdinchar(i);
        byte v = stdinchar(i + 1);
        i = i + 2;
        if (u >= 'a' && u <= 'd' && v >= 'a' && v <= 'd') {
            int ui = toint(u - 'a');
            int vi = toint(v - 'a');
            present[ui] = 1;
            present[vi] = 1;
            if (adj[ui * 4 + vi] == 0 && ui != vi) {
                adj[ui * 4 + vi] = 1;
                indeg[vi] = indeg[vi] + 1;
            }
        }
    }
    // Kahn's algorithm, smallest node first.
    for (int round = 0; round < 4; round++) {
        int pick = 0 - 1;
        for (int v = 3; v >= 0; v--) {
            if (present[v] != 0 && indeg[v] == 0) {
                pick = v;
            }
        }
        if (pick < 0) {
            break;
        }
        putchar(tobyte('a' + pick));
        putchar('\n');
        present[pick] = 0;
        for (int w = 0; w < 4; w++) {
            if (adj[pick * 4 + w] != 0) {
                adj[pick * 4 + w] = 0;
                indeg[w] = indeg[w] - 1;
            }
        }
    }
    // Any node left has a cycle.
    for (int v2 = 0; v2 < 4; v2++) {
        if (present[v2] != 0) {
            putchar('!');
            halt(1);
        }
    }
}
`

// srcCksum mirrors the paper's Figure 2 structure: a cheap quick path and an
// expensive CRC whose accumulator feeds a branch on every bit (so its states
// cannot merge — the accumulator is hot), joining at shared output code.
// Static state merging must exhaust the CRC region before the join, starving
// the output code; a coverage-guided strategy (and DSM riding it) reaches it
// through the quick path immediately.
const srcCksum = libOptFlag + `
// cksum [-q] : CRC-16-CCITT of stdin; -q skips the checksum and reports
// only the length.
void main() {
    bool quick = false;
    if (argc() > 1 && opt_flag(1, 'q')) {
        quick = true;
    }
    int h = 0xffff;
    int n = stdinlen();
    if (!quick) {
        for (int i = 0; i < n; i++) {
            h = h ^ (toint(stdinchar(i)) << 8);
            for (int b = 0; b < 8; b++) {
                if ((h & 0x8000) != 0) {
                    h = ((h << 1) ^ 0x1021) & 0xffff;
                } else {
                    h = (h << 1) & 0xffff;
                }
            }
        }
    }
    // Output code after the join (the "handlePacket" of Figure 2).
    if (quick) {
        putchar('q');
    }
    if (h == 0) {
        putchar('z');
    } else if ((h & 1) != 0) {
        putchar('o');
    } else {
        putchar('e');
    }
    putchar(tobyte('0' + (h / 100) % 10));
    putchar(tobyte('0' + (h / 10) % 10));
    putchar(tobyte('0' + h % 10));
    putchar(tobyte('0' + n % 10));
    putchar('\n');
}
`
