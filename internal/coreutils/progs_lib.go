package coreutils

// Shared helper routines used across the tool models, mirroring the real
// tree's lib/ (statically linked into every binary, so every program
// carries its own copy). Tools embed these snippets by string
// concatenation; the compiler gives each copy the same canonical closure,
// so the function-summary cache recognises them as one function across
// tools (and across call sites within a tool). That is the workload the
// compositional-summary layer targets: the parse/format loops below are
// where the suite's path explosion lives, and a summary recorded at one
// call site discharges every later one as assume-summary queries.
//
// Behavioural note: these are exact extractions of the loops they replace
// — the conformance and corpus tests hold the tools' input/output
// behaviour fixed across the refactor.

// libArgLen: strlen over an argument (lib/strnlen in the real tree).
const libArgLen = `
int arg_len(int arg) {
    int n = 0;
    while (argchar(arg, n) != 0) {
        n++;
    }
    return n;
}
`

// libPutArg: write an argument's characters from an offset (fputs).
const libPutArg = `
void put_arg(int arg, int start) {
    for (int i = start; argchar(arg, i) != 0; i++) {
        putchar(argchar(arg, i));
    }
}
`

// libOptFlag: true when the argument is exactly "-f" for the given flag
// byte (the one-letter fast path of getopt).
const libOptFlag = `
bool opt_flag(int arg, byte f) {
    if (argchar(arg, 0) != '-') {
        return false;
    }
    if (argchar(arg, 1) != f) {
        return false;
    }
    if (argchar(arg, 2) != 0) {
        return false;
    }
    return true;
}
`

// libArgsSame: byte-wise equality of two arguments (streq on argv).
const libArgsSame = `
bool args_same(int x, int y) {
    bool same = true;
    for (int i = 0; same; i++) {
        byte a = argchar(x, i);
        byte b = argchar(y, i);
        if (a != b) {
            same = false;
        }
        if (a == 0 || b == 0) {
            break;
        }
    }
    return same;
}
`

// libParseScan: strtol-style scan from an offset. Digits accumulate into
// out[0]; junk characters are noted but the scan continues (validation
// happens once at the end, so both branch outcomes survive every
// character — the paper's §5.4 sleep structure). out[1] is 1 iff at
// least one digit and no junk was seen.
const libParseScan = `
void parse_scan(int arg, int start, int out[2]) {
    int v = 0;
    bool any = false;
    bool bad = false;
    for (int i = start; argchar(arg, i) != 0; i++) {
        byte d = argchar(arg, i);
        if (d >= '0' && d <= '9') {
            v = v * 10 + toint(d - '0');
            any = true;
        } else {
            bad = true;
        }
    }
    out[0] = v;
    out[1] = 0;
    if (any && !bad) {
        out[1] = 1;
    }
}
`

// libParseDecOr: strict decimal parse; the first non-digit prints err and
// halts with status 1. An empty or absent argument parses as 0.
const libParseDecOr = `
int parse_dec_or(int arg, byte err) {
    int v = 0;
    for (int i = 0; argchar(arg, i) != 0; i++) {
        byte d = argchar(arg, i);
        if (d < '0' || d > '9') {
            putchar(err);
            halt(1);
        }
        v = v * 10 + toint(d - '0');
    }
    return v;
}
`

// libIsSpace: the suite's whitespace class (isblank plus newline).
const libIsSpace = `
bool is_space(byte c) {
    if (c == ' ' || c == '\n' || c == '\t') {
        return true;
    }
    return false;
}
`
