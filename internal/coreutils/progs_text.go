package coreutils

// Text-oriented tools driven mainly by argv: echo, basename, dirname, yes,
// true, false, and the stdin streamers cat, head, wc.

func init() {
	register(&Tool{Name: "echo", Source: srcEcho})
	register(&Tool{Name: "basename", Source: srcBasename, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "dirname", Source: srcDirname, DefaultArgs: 1, DefaultLen: 3})
	register(&Tool{Name: "yes", Source: srcYes, DefaultArgs: 1, DefaultLen: 2})
	register(&Tool{Name: "true", Source: srcTrue, DefaultArgs: 1, DefaultLen: 2})
	register(&Tool{Name: "false", Source: srcFalse, DefaultArgs: 1, DefaultLen: 2})
	register(&Tool{Name: "cat", Source: srcCat, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "head", Source: srcHead, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "wc", Source: srcWc, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 4})
	register(&Tool{Name: "uniq", Source: srcUniq, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 2, DefaultStdin: 3})
	register(&Tool{Name: "rev", Source: srcRev, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 1, DefaultStdin: 3})
	register(&Tool{Name: "tac", Source: srcTac, UsesStdin: true,
		DefaultArgs: 1, DefaultLen: 1, DefaultStdin: 3})
}

// srcEcho is the paper's Figure 1 program: print arguments, -n suppresses
// the trailing newline.
const srcEcho = libOptFlag + libPutArg + `
// echo [-n] args... : write arguments to standard output.
void main() {
    int r = 1;
    int arg = 1;
    if (arg < argc()) {
        if (opt_flag(arg, 'n')) {
            r = 0;
            arg++;
        }
    }
    for (; arg < argc(); arg++) {
        put_arg(arg, 0);
        if (arg + 1 < argc()) {
            putchar(' ');
        }
    }
    if (r != 0) {
        putchar('\n');
    }
}
`

const srcBasename = libArgLen + `
// basename path [suffix] : strip directory prefix and optional suffix.
void main() {
    if (argc() < 2) {
        putchar('?');
        halt(1);
    }
    int len = arg_len(1);
    // Find the start of the last path component.
    int start = 0;
    for (int i = 0; i < len; i++) {
        if (argchar(1, i) == '/') {
            start = i + 1;
        }
    }
    int end = len;
    if (argc() > 2) {
        // Strip the suffix if it matches and is shorter than the name.
        int slen = arg_len(2);
        if (slen > 0 && slen < len - start) {
            bool match = true;
            for (int j = 0; j < slen; j++) {
                if (argchar(1, len - slen + j) != argchar(2, j)) {
                    match = false;
                }
            }
            if (match) {
                end = len - slen;
            }
        }
    }
    if (start == end) {
        putchar('/');
    }
    for (int k = start; k < end; k++) {
        putchar(argchar(1, k));
    }
    putchar('\n');
}
`

const srcDirname = libArgLen + `
// dirname path : strip the last path component.
void main() {
    if (argc() < 2) {
        putchar('?');
        halt(1);
    }
    int len = arg_len(1);
    // Trim trailing slashes, then trim the final component.
    while (len > 1 && argchar(1, len - 1) == '/') {
        len--;
    }
    int cut = 0;
    for (int i = 0; i < len; i++) {
        if (argchar(1, i) == '/') {
            cut = i;
        }
    }
    if (cut == 0) {
        if (argchar(1, 0) == '/') {
            putchar('/');
        } else {
            putchar('.');
        }
    } else {
        for (int k = 0; k < cut; k++) {
            putchar(argchar(1, k));
        }
    }
    putchar('\n');
}
`

const srcYes = libPutArg + `
// yes [arg] : repeat the argument (bounded model: 3 repetitions).
void main() {
    for (int rep = 0; rep < 3; rep++) {
        if (argc() > 1) {
            put_arg(1, 0);
        } else {
            putchar('y');
        }
        putchar('\n');
    }
}
`

const srcTrue = `
// true : succeed; handles --help like the GNU tool (prefix check).
void main() {
    if (argc() > 1 && argchar(1, 0) == '-' && argchar(1, 1) == '-') {
        if (argchar(1, 2) == 'h') {
            putchar('h');
        } else if (argchar(1, 2) == 'v') {
            putchar('v');
        }
    }
    halt(0);
}
`

const srcFalse = `
// false : fail; same option surface as true.
void main() {
    if (argc() > 1 && argchar(1, 0) == '-' && argchar(1, 1) == '-') {
        if (argchar(1, 2) == 'h') {
            putchar('h');
        } else if (argchar(1, 2) == 'v') {
            putchar('v');
        }
    }
    halt(1);
}
`

const srcCat = libOptFlag + `
// cat [-n] : copy stdin to stdout, -n numbers lines.
void main() {
    bool number = false;
    if (argc() > 1 && opt_flag(1, 'n')) {
        number = true;
    }
    int line = 1;
    bool atStart = true;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (atStart && number) {
            putchar(tobyte('0' + line % 10));
            putchar(' ');
        }
        atStart = false;
        putchar(c);
        if (c == '\n') {
            line++;
            atStart = true;
        }
    }
}
`

const srcHead = libOptFlag + `
// head [-n N] : print the first N lines of stdin (default 2 in the model).
void main() {
    int limit = 2;
    if (argc() > 2 && opt_flag(1, 'n')) {
        byte d = argchar(2, 0);
        if (d >= '0' && d <= '9') {
            limit = toint(d - '0');
        }
    }
    int lines = 0;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        if (lines >= limit) {
            halt(0);
        }
        byte c = stdinchar(i);
        putchar(c);
        if (c == '\n') {
            lines++;
        }
    }
}
`

const srcWc = libOptFlag + libIsSpace + `
// wc [-l|-w|-c] : count lines, words, bytes of stdin.
void main() {
    bool doLines = false;
    bool doWords = false;
    bool doBytes = false;
    if (argc() > 1) {
        if (opt_flag(1, 'l')) { doLines = true; }
        else if (opt_flag(1, 'w')) { doWords = true; }
        else if (opt_flag(1, 'c')) { doBytes = true; }
    }
    if (!doLines && !doWords && !doBytes) {
        doLines = true;
        doWords = true;
        doBytes = true;
    }
    int lines = 0;
    int words = 0;
    int bytes = 0;
    bool inWord = false;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        bytes++;
        if (c == '\n') {
            lines++;
        }
        if (is_space(c)) {
            inWord = false;
        } else {
            if (!inWord) {
                words++;
            }
            inWord = true;
        }
    }
    if (doLines) { putchar(tobyte('0' + lines % 10)); }
    if (doWords) { putchar(tobyte('0' + words % 10)); }
    if (doBytes) { putchar(tobyte('0' + bytes % 10)); }
    putchar('\n');
}
`

const srcUniq = libOptFlag + `
// uniq [-c] : collapse adjacent duplicate lines of stdin; -c prefixes each
// line with its repeat count (single digit in the model).
void main() {
    bool count = false;
    if (argc() > 1 && opt_flag(1, 'c')) {
        count = true;
    }
    byte prev[8];
    byte cur[8];
    int prevLen = 0 - 1; // no previous line yet
    int curLen = 0;
    int reps = 0;
    int n = stdinlen();
    for (int i = 0; i <= n; i++) {
        byte c = 0;
        if (i < n) {
            c = stdinchar(i);
        }
        if (c == '\n' || i == n) {
            if (i == n && curLen == 0) {
                break;
            }
            // Compare the finished line against the previous one.
            bool same = prevLen == curLen;
            if (same) {
                for (int k = 0; k < curLen; k++) {
                    if (cur[k] != prev[k]) {
                        same = false;
                    }
                }
            }
            if (same) {
                reps++;
            } else {
                if (prevLen >= 0) {
                    if (count) {
                        putchar(tobyte('0' + reps % 10));
                        putchar(' ');
                    }
                    for (int k = 0; k < prevLen; k++) {
                        putchar(prev[k]);
                    }
                    putchar('\n');
                }
                for (int k = 0; k < curLen; k++) {
                    prev[k] = cur[k];
                }
                prevLen = curLen;
                reps = 1;
            }
            curLen = 0;
        } else if (curLen < 8) {
            cur[curLen] = c;
            curLen++;
        }
    }
    if (prevLen >= 0) {
        if (count) {
            putchar(tobyte('0' + reps % 10));
            putchar(' ');
        }
        for (int k = 0; k < prevLen; k++) {
            putchar(prev[k]);
        }
        putchar('\n');
    }
}
`

const srcRev = `
// rev : reverse each line of stdin character-wise.
void main() {
    byte line[8];
    int len = 0;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == '\n') {
            for (int k = len - 1; k >= 0; k--) {
                putchar(line[k]);
            }
            putchar('\n');
            len = 0;
        } else if (len < 8) {
            line[len] = c;
            len++;
        }
    }
    for (int k2 = len - 1; k2 >= 0; k2--) {
        putchar(line[k2]);
    }
}
`

const srcTac = `
// tac : print stdin lines in reverse order (bounded buffer model).
void main() {
    byte buf[16];
    int starts[8];
    int lens[8];
    int nLines = 0;
    int used = 0;
    int cur = 0;
    int n = stdinlen();
    for (int i = 0; i < n; i++) {
        byte c = stdinchar(i);
        if (c == '\n') {
            if (nLines < 8) {
                starts[nLines] = used - cur;
                lens[nLines] = cur;
                nLines++;
            }
            cur = 0;
        } else if (used < 16) {
            buf[used] = c;
            used++;
            cur++;
        }
    }
    if (cur > 0 && nLines < 8) {
        starts[nLines] = used - cur;
        lens[nLines] = cur;
        nLines++;
    }
    for (int l = nLines - 1; l >= 0; l--) {
        for (int k = 0; k < lens[l]; k++) {
            putchar(buf[starts[l] + k]);
        }
        putchar('\n');
    }
}
`
