package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuffer is the trace channel capacity when NewSink is given a
// non-positive buffer size. It is sized so a burst of events (a merge
// cascade, a query storm at a hot branch) rides out a slow disk without
// drops in any workload we run in CI.
const DefaultBuffer = 4096

// Sink is the non-blocking JSONL trace writer. Emitting goroutines encode
// events into pooled buffers and hand them over a bounded channel to one
// background writer; a full channel drops the event and counts it instead
// of stalling the emitter. The drop counter is the back-pressure contract:
// a trace with trace_end "dropped" > 0 is incomplete but every line it does
// contain is intact (lines are handed off whole, never interleaved).
type Sink struct {
	ch     chan []byte
	pool   sync.Pool
	start  time.Time
	met    *Metrics // bound by NewRun before events flow; drop accounting
	drops  atomic.Uint64
	events atomic.Uint64

	done  chan struct{}
	w     *bufio.Writer
	c     io.Closer
	werr  error // writer-goroutine local until done closes
	close sync.Once
	cerr  error
}

// NewSink starts a trace stream on w: it writes the trace_begin header
// synchronously (so even an empty trace is schema-valid) and launches the
// background writer. If w is an io.Closer, Close closes it after the
// trace_end footer.
func NewSink(w io.Writer, buffer int) *Sink {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	s := &Sink{
		ch:    make(chan []byte, buffer),
		start: time.Now(),
		done:  make(chan struct{}),
		w:     bufio.NewWriterSize(w, 1<<16),
	}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	s.pool.New = func() any { return make([]byte, 0, 192) }
	fmt.Fprintf(s.w, "{\"ev\":%q,\"us\":0,\"schema\":%q}\n", EvTraceBegin, SchemaVersion)
	go s.run()
	return s
}

func (s *Sink) run() {
	defer close(s.done)
	for b := range s.ch {
		if _, err := s.w.Write(b); err != nil && s.werr == nil {
			s.werr = err
		}
		s.events.Add(1)
		s.putBuf(b)
	}
}

func (s *Sink) getBuf() []byte { return s.pool.Get().([]byte)[:0] }

func (s *Sink) putBuf(b []byte) {
	if cap(b) <= 1<<10 { // don't retain the occasional oversized line
		s.pool.Put(b) //nolint:staticcheck // slice header allocation is fine here
	}
}

// enqueue hands one complete line to the writer, dropping (and counting)
// instead of blocking when the writer has fallen behind.
func (s *Sink) enqueue(b []byte) {
	select {
	case s.ch <- b:
	default:
		s.drops.Add(1)
		if s.met != nil {
			s.met.noteTraceDrop()
		}
		s.putBuf(b)
	}
}

// Drops returns how many events were discarded because the writer fell
// behind the bounded channel.
func (s *Sink) Drops() uint64 { return s.drops.Load() }

// Events returns how many events were written (header and footer excluded).
func (s *Sink) Events() uint64 { return s.events.Load() }

// Close drains the channel, writes the trace_end footer (event and drop
// totals — the consumer-side completeness check), flushes, and closes the
// underlying writer if it is closable. Safe to call more than once; the
// first error (write, flush, or close) is returned every time.
func (s *Sink) Close() error {
	s.close.Do(func() {
		close(s.ch)
		<-s.done
		fmt.Fprintf(s.w, "{\"ev\":%q,\"us\":%d,\"events\":%d,\"dropped\":%d}\n",
			EvTraceEnd, time.Since(s.start).Microseconds(), s.events.Load(), s.drops.Load())
		s.cerr = s.werr
		if err := s.w.Flush(); err != nil && s.cerr == nil {
			s.cerr = err
		}
		if s.c != nil {
			if err := s.c.Close(); err != nil && s.cerr == nil {
				s.cerr = err
			}
		}
	})
	return s.cerr
}
