package obs

import (
	"expvar"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// counterShards is the stripe count of every counter: lanes hash onto
// stripes so concurrent workers don't contend on one cache line. A power
// of two (the add path masks, never mods).
const counterShards = 8

// gaugeLanes bounds the per-lane gauge array; lanes beyond it alias, which
// only matters for fleets wider than any configuration we run.
const gaugeLanes = 64

// padded is a cache-line-padded atomic cell so neighbouring stripes never
// false-share.
type padded struct {
	v atomic.Uint64
	_ [56]byte
}

type counter struct{ s [counterShards]padded }

func (c *counter) add(lane int, n uint64) {
	c.s[lane&(counterShards-1)].v.Add(n)
}

func (c *counter) load() uint64 {
	var t uint64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}

// gauge keeps one last-written value per lane; Snapshot reports the sum
// across lanes (e.g. total frontier length across workers).
type gauge struct{ s [gaugeLanes]padded }

func (g *gauge) set(lane int, v uint64) {
	g.s[lane&(gaugeLanes-1)].v.Store(v)
}

func (g *gauge) load() uint64 {
	var t uint64
	for i := range g.s {
		t += g.s[i].v.Load()
	}
	return t
}

// histBuckets covers 1µs..2^25µs (~33s) in power-of-two buckets; bucket i
// counts durations in [2^i, 2^(i+1)) µs, the last bucket is open-ended.
const histBuckets = 26

// histogram is a fixed-bucket latency histogram: lock-free observe (one
// atomic add into a power-of-two µs bucket, one into the sum), snapshot by
// summing stripes.
type histogram struct {
	buckets [histBuckets]counter
	sumUS   counter
}

func (h *histogram) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0→0, [2^i,2^(i+1))→i+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].add(0, 1)
	h.sumUS.add(0, us)
}

// HistBucket is one non-empty histogram bucket: N observations at most
// LeUS microseconds (cumulative style, like Prometheus "le").
type HistBucket struct {
	LeUS uint64 `json:"le_us"`
	N    uint64 `json:"n"`
}

// HistSnap is a histogram snapshot with coarse percentile estimates (the
// upper bound of the bucket the quantile falls in).
type HistSnap struct {
	Count   uint64       `json:"count"`
	SumUS   uint64       `json:"sum_us"`
	P50US   uint64       `json:"p50_us"`
	P90US   uint64       `json:"p90_us"`
	P99US   uint64       `json:"p99_us"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

func (h *histogram) snapshot() HistSnap {
	var counts [histBuckets]uint64
	var sn HistSnap
	for i := range h.buckets {
		counts[i] = h.buckets[i].load()
		sn.Count += counts[i]
	}
	sn.SumUS = h.sumUS.load()
	if sn.Count == 0 {
		return sn
	}
	bound := func(i int) uint64 {
		if i == 0 {
			return 1
		}
		return uint64(1) << i
	}
	quantile := func(q float64) uint64 {
		target := uint64(q * float64(sn.Count))
		if target == 0 {
			target = 1
		}
		var cum uint64
		for i, n := range counts {
			cum += n
			if cum >= target {
				return bound(i)
			}
		}
		return bound(histBuckets - 1)
	}
	sn.P50US, sn.P90US, sn.P99US = quantile(0.50), quantile(0.90), quantile(0.99)
	var cum uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		cum += n
		sn.Buckets = append(sn.Buckets, HistBucket{LeUS: bound(i), N: cum})
	}
	return sn
}

// Metrics is the live metrics registry: sharded counters, per-lane gauges,
// and latency histograms, all updated lock-free from worker goroutines and
// snapshotable from any other goroutine at any time. One registry serves a
// whole exploration (all workers, all portfolio arms that share it).
type Metrics struct {
	steps         counter
	forks         counter
	mergeAttempts counter
	merges        counter
	mergeRejects  counter
	ffSelected    counter
	queries       [numQueryClasses]counter
	querySat      counter
	queryUnsat    counter
	queryErr      counter
	steals        counter
	donations     counter
	epochs        counter
	checkpoints   counter
	corpusTests   counter
	traceDropped  counter
	worklist      gauge

	summaryHits        counter
	summaryMisses      counter
	summaryRecords     counter
	summaryInvalidates counter
	prunedStatic       counter

	queryLat      [numQueryClasses]histogram
	mergeGate     histogram
	stepLat       histogram
	summaryLookup histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) noteTraceDrop() { m.traceDropped.add(0, 1) }

// MetricsSnap is a point-in-time JSON view of the registry (schema
// symmerge-metrics/v1). Counters are monotonic totals since the registry
// was created; the snapshot is not atomic across fields (each field is
// individually consistent).
type MetricsSnap struct {
	Schema string `json:"schema"`

	Steps         uint64 `json:"steps"`
	Forks         uint64 `json:"forks"`
	MergeAttempts uint64 `json:"merge_attempts"`
	Merges        uint64 `json:"merges"`
	MergeRejects  uint64 `json:"merge_rejects"`
	FFSelected    uint64 `json:"ff_selected"`

	QueriesSession uint64 `json:"queries_session"`
	QueriesOneShot uint64 `json:"queries_oneshot"`
	QueriesCached  uint64 `json:"queries_cached"`
	QueriesSummary uint64 `json:"queries_summary"`
	QuerySat       uint64 `json:"query_sat"`
	QueryUnsat     uint64 `json:"query_unsat"`
	QueryErr       uint64 `json:"query_err"`

	SummaryHits        uint64 `json:"summary_hits"`
	SummaryMisses      uint64 `json:"summary_misses"`
	SummaryRecords     uint64 `json:"summary_records"`
	SummaryInvalidates uint64 `json:"summary_invalidates"`
	PrunedStatic       uint64 `json:"pruned_static"`

	Steals      uint64 `json:"steals"`
	Donations   uint64 `json:"donations"`
	Epochs      uint64 `json:"epochs"`
	Checkpoints uint64 `json:"checkpoints"`
	CorpusTests uint64 `json:"corpus_tests"`

	TraceDropped uint64 `json:"trace_dropped"`
	Worklist     uint64 `json:"worklist"`

	QueryLatSession HistSnap `json:"query_lat_session"`
	QueryLatOneShot HistSnap `json:"query_lat_oneshot"`
	QueryLatCached  HistSnap `json:"query_lat_cached"`
	QueryLatSummary HistSnap `json:"query_lat_summary"`
	MergeGate       HistSnap `json:"merge_gate"`
	StepLat         HistSnap `json:"step_lat"`
	SummaryLookup   HistSnap `json:"summary_lookup"`
}

// Snapshot captures the registry. Safe to call from any goroutine while
// workers are updating it.
func (m *Metrics) Snapshot() *MetricsSnap {
	if m == nil {
		return nil
	}
	return &MetricsSnap{
		Schema:         "symmerge-metrics/v1",
		Steps:          m.steps.load(),
		Forks:          m.forks.load(),
		MergeAttempts:  m.mergeAttempts.load(),
		Merges:         m.merges.load(),
		MergeRejects:   m.mergeRejects.load(),
		FFSelected:     m.ffSelected.load(),
		QueriesSession: m.queries[QuerySession].load(),
		QueriesOneShot: m.queries[QueryOneShot].load(),
		QueriesCached:  m.queries[QueryCached].load(),
		QueriesSummary: m.queries[QuerySummary].load(),
		QuerySat:       m.querySat.load(),
		QueryUnsat:     m.queryUnsat.load(),
		QueryErr:       m.queryErr.load(),

		SummaryHits:        m.summaryHits.load(),
		SummaryMisses:      m.summaryMisses.load(),
		SummaryRecords:     m.summaryRecords.load(),
		SummaryInvalidates: m.summaryInvalidates.load(),
		PrunedStatic:       m.prunedStatic.load(),
		Steals:             m.steals.load(),
		Donations:          m.donations.load(),
		Epochs:             m.epochs.load(),
		Checkpoints:        m.checkpoints.load(),
		CorpusTests:        m.corpusTests.load(),
		TraceDropped:       m.traceDropped.load(),
		Worklist:           m.worklist.load(),
		QueryLatSession:    m.queryLat[QuerySession].snapshot(),
		QueryLatOneShot:    m.queryLat[QueryOneShot].snapshot(),
		QueryLatCached:     m.queryLat[QueryCached].snapshot(),
		QueryLatSummary:    m.queryLat[QuerySummary].snapshot(),
		MergeGate:          m.mergeGate.snapshot(),
		StepLat:            m.stepLat.snapshot(),
		SummaryLookup:      m.summaryLookup.snapshot(),
	}
}

var expvarOnce sync.Once

// PublishExpvar exports the registry as the expvar variable
// "symmerge.metrics" (importing this package already registers expvar's
// /debug/vars handler on http.DefaultServeMux). Idempotent: expvar
// variables cannot be re-published, so only the first registry wins for
// the life of the process.
func PublishExpvar(m *Metrics) {
	expvarOnce.Do(func() {
		expvar.Publish("symmerge.metrics", expvar.Func(func() any { return m.Snapshot() }))
	})
}
