// Package obs is the exploration observability layer: a structured JSONL
// trace-event stream (schema symmerge-trace/v1), a registry of sharded
// atomic counters/gauges and fixed-bucket latency histograms, and the
// converters/validators the tooling builds on (Chrome trace-event export,
// per-line schema validation).
//
// The design constraint is that observability must never perturb the
// exploration it observes:
//
//   - A disabled layer costs one predictable nil-check branch per hook: a
//     nil *Run hands out nil *Observer lanes, and every Observer method is
//     a no-op on a nil receiver.
//   - The trace sink never blocks a worker. Events are encoded in the
//     emitting goroutine into pooled buffers and handed to a background
//     writer over a bounded channel; when the channel is full the event is
//     dropped and counted (Sink.Drops, the trace_end record, and the
//     trace_dropped metric) rather than applying back-pressure.
//   - Exploration results must be byte-identical with tracing on or off:
//     hooks only read engine state, never branch on it.
//
// One Run is shared by every engine of an exploration (workers, the
// splitter, the checkpoint driver); each engine takes its own lane via
// NewLane, which becomes one thread row in the Chrome trace export.
package obs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// SchemaVersion identifies the JSONL trace schema; the first line of every
// trace is a trace_begin record carrying it.
const SchemaVersion = "symmerge-trace/v1"

// Event type tags (the "ev" field of every trace line).
const (
	EvTraceBegin   = "trace_begin"
	EvFork         = "fork"
	EvMergeAttempt = "merge_attempt"
	EvMergeAccept  = "merge_accept"
	EvMergeReject  = "merge_reject"
	EvQueryBegin   = "query_begin"
	EvQueryEnd     = "query_end"
	EvFFSelect     = "ff_select"
	EvSteal        = "steal"
	EvDonate       = "donate"
	EvEpoch        = "epoch"
	EvCheckpoint   = "checkpoint"
	EvCorpusEmit   = "corpus_emit"
	EvTraceEnd     = "trace_end"

	EvSummaryRecord = "summary_record"
	EvSummaryApply  = "summary_apply"
	EvSummaryReject = "summary_reject"

	EvPruneStatic = "prune_static"
)

// QueryClass classifies how a solver query was answered, the dimension the
// latency histograms split on.
type QueryClass uint8

// Query classes.
const (
	// QuerySession: answered by a persistent incremental session
	// (blast-once/assume-many under assumptions).
	QuerySession QueryClass = iota
	// QueryOneShot: preprocessed and bit-blasted from scratch.
	QueryOneShot
	// QueryCached: answered without SAT — a counterexample-cache hit or a
	// recent-model re-evaluation.
	QueryCached
	// QuerySummary: an assume-summary feasibility query — a summary entry's
	// guard checked against the caller's path condition when a call site is
	// discharged from the compositional summary cache.
	QuerySummary

	numQueryClasses
)

func (c QueryClass) String() string {
	switch c {
	case QuerySession:
		return "session"
	case QueryOneShot:
		return "oneshot"
	case QueryCached:
		return "cached"
	case QuerySummary:
		return "summary"
	}
	return "?"
}

// Run is the shared per-exploration observability context: one trace sink,
// one metrics registry, and a lane allocator. A nil *Run is the disabled
// layer — NewLane then returns nil Observers whose methods no-op.
type Run struct {
	sink  *Sink
	met   *Metrics
	start time.Time
	lanes atomic.Int32
}

// NewRun bundles a sink and a metrics registry (either may be nil) into a
// run context. When both are nil it returns nil: the whole layer compiles
// down to nil-receiver no-ops.
func NewRun(sink *Sink, met *Metrics) *Run {
	if sink == nil && met == nil {
		return nil
	}
	r := &Run{sink: sink, met: met, start: time.Now()}
	if sink != nil {
		// Event timestamps and the sink's own trace_end timestamp must
		// share one epoch.
		r.start = sink.start
		sink.met = met
	}
	return r
}

// Metrics returns the run's metrics registry (nil when disabled).
func (r *Run) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return r.met
}

// NewLane allocates an observer lane — one per engine. Lane numbers become
// the "w" field of trace events and the per-worker rows of the Chrome
// export. Safe on a nil receiver (returns a nil Observer).
func (r *Run) NewLane() *Observer {
	if r == nil {
		return nil
	}
	return &Observer{run: r, lane: int(r.lanes.Add(1)) - 1}
}

func (r *Run) sinceUS() int64 { return time.Since(r.start).Microseconds() }

// Observer is one engine's lane into the run's sink and metrics. All
// methods are safe (and free) on a nil receiver; an Observer is otherwise
// single-goroutine state, like the engine that owns it.
type Observer struct {
	run  *Run
	lane int
	qseq uint64 // per-lane query-span sequence (query_begin/query_end pairing)
}

// Active reports whether any consumer (sink or metrics) is attached; hooks
// that need extra work to assemble an event (timing, QCE estimates) gate on
// it so the disabled path stays a single branch.
func (o *Observer) Active() bool { return o != nil }

// head starts an event line: {"ev":"...","us":...,"w":...
func (o *Observer) head(ev string) []byte {
	b := o.run.sink.getBuf()
	b = append(b, `{"ev":"`...)
	b = append(b, ev...)
	b = append(b, `","us":`...)
	b = strconv.AppendInt(b, o.run.sinceUS(), 10)
	b = append(b, `,"w":`...)
	b = strconv.AppendInt(b, int64(o.lane), 10)
	return b
}

func fInt(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func fUint(b []byte, name string, v uint64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendUint(b, v, 10)
}

func fFloat(b []byte, name string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', 6, 64)
}

func fStr(b []byte, name, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, `":"`...)
	b = append(b, v...) // values are internal identifiers, never user data
	return append(b, '"')
}

func fBool(b []byte, name string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendBool(b, v)
}

func closeLine(b []byte) []byte { return append(b, '}', '\n') }

// Fork records a state fork (branch or assert split) at fn:pc.
func (o *Observer) Fork(parent, child uint64, fn, pc int) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.forks.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvFork)
		b = fUint(b, "parent", parent)
		b = fUint(b, "child", child)
		b = fInt(b, "fn", int64(fn))
		b = fInt(b, "pc", int64(pc))
		s.enqueue(closeLine(b))
	}
}

// MergeAttempt records a similarity check between two same-location states.
func (o *Observer) MergeAttempt(a, b uint64, fn, pc int) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.mergeAttempts.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		buf := o.head(EvMergeAttempt)
		buf = fUint(buf, "a", a)
		buf = fUint(buf, "b", b)
		buf = fInt(buf, "fn", int64(fn))
		buf = fInt(buf, "pc", int64(pc))
		s.enqueue(closeLine(buf))
	}
}

// MergeAccept records a successful merge of a and b into m, with the
// merge-gate duration (similarity check + state combination).
func (o *Observer) MergeAccept(a, b, merged uint64, dur time.Duration) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.merges.add(o.lane, 1)
		m.mergeGate.observe(dur)
	}
	if s := o.run.sink; s != nil {
		buf := o.head(EvMergeAccept)
		buf = fUint(buf, "a", a)
		buf = fUint(buf, "b", b)
		buf = fUint(buf, "m", merged)
		buf = fInt(buf, "dur_us", dur.Microseconds())
		s.enqueue(closeLine(buf))
	}
}

// MergeReject records a failed similarity check, with the gate that refused
// it and the QCE quantities behind the decision (qt is the interprocedural
// query-count estimate Qt_global, threshold is α·Qt_global; both zero when
// QCE is off).
func (o *Observer) MergeReject(a, b uint64, reason string, qt, threshold float64, dur time.Duration) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.mergeRejects.add(o.lane, 1)
		m.mergeGate.observe(dur)
	}
	if s := o.run.sink; s != nil {
		buf := o.head(EvMergeReject)
		buf = fUint(buf, "a", a)
		buf = fUint(buf, "b", b)
		buf = fStr(buf, "reason", reason)
		if qt != 0 || threshold != 0 {
			buf = fFloat(buf, "qt", qt)
			buf = fFloat(buf, "threshold", threshold)
		}
		buf = fInt(buf, "dur_us", dur.Microseconds())
		s.enqueue(closeLine(buf))
	}
}

// QueryBegin opens a solver-query span and returns its lane-local id, to be
// passed to the matching QueryEnd.
func (o *Observer) QueryBegin() uint64 {
	if o == nil {
		return 0
	}
	o.qseq++
	if s := o.run.sink; s != nil {
		b := o.head(EvQueryBegin)
		b = fUint(b, "qid", o.qseq)
		s.enqueue(closeLine(b))
	}
	return o.qseq
}

// QueryEnd closes a solver-query span: how the query was answered (class),
// the verdict, the latency, and the SAT-encoding delta it cost (variables
// allocated and clauses added; zero for cached answers and full session
// reuse). failed marks a budget/timeout error; sat is meaningless then.
func (o *Observer) QueryEnd(qid uint64, class QueryClass, sat, failed bool, dur time.Duration, vars, clauses uint64) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.queries[class].add(o.lane, 1)
		m.queryLat[class].observe(dur)
		switch {
		case failed:
			m.queryErr.add(o.lane, 1)
		case sat:
			m.querySat.add(o.lane, 1)
		default:
			m.queryUnsat.add(o.lane, 1)
		}
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvQueryEnd)
		b = fUint(b, "qid", qid)
		b = fStr(b, "class", class.String())
		b = fBool(b, "sat", sat)
		if failed {
			b = fBool(b, "err", true)
		}
		b = fInt(b, "dur_us", dur.Microseconds())
		b = fUint(b, "sat_vars", vars)
		b = fUint(b, "sat_clauses", clauses)
		s.enqueue(closeLine(b))
	}
}

// FFSelect records a fast-forwarding pick (Algorithm 2's pickNextF
// overriding the driving strategy) of the state at fn:pc.
func (o *Observer) FFSelect(state uint64, fn, pc int) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.ffSelected.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvFFSelect)
		b = fUint(b, "state", state)
		b = fInt(b, "fn", int64(fn))
		b = fInt(b, "pc", int64(pc))
		s.enqueue(closeLine(b))
	}
}

// Steal records this lane claiming n states from the shared frontier.
func (o *Observer) Steal(n int) {
	if o == nil || n <= 0 {
		return
	}
	if m := o.run.met; m != nil {
		m.steals.add(o.lane, uint64(n))
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvSteal)
		b = fInt(b, "n", int64(n))
		s.enqueue(closeLine(b))
	}
}

// Donate records this lane handing n states back to starved peers.
func (o *Observer) Donate(n int) {
	if o == nil || n <= 0 {
		return
	}
	if m := o.run.met; m != nil {
		m.donations.add(o.lane, uint64(n))
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvDonate)
		b = fInt(b, "n", int64(n))
		s.enqueue(closeLine(b))
	}
}

// Epoch records a checkpoint-driver epoch boundary: epoch seq starting with
// the given frontier seed count.
func (o *Observer) Epoch(seq uint64, seeds int) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.epochs.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvEpoch)
		b = fUint(b, "seq", seq)
		b = fInt(b, "seeds", int64(seeds))
		s.enqueue(closeLine(b))
	}
}

// Checkpoint records a snapshot write of the given frontier size; failed
// marks a write that did not persist.
func (o *Observer) Checkpoint(seq uint64, states int, failed bool) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.checkpoints.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvCheckpoint)
		b = fUint(b, "seq", seq)
		b = fInt(b, "states", int64(states))
		if failed {
			b = fBool(b, "err", true)
		}
		s.enqueue(closeLine(b))
	}
}

// CorpusEmit records n test cases streamed to the corpus sink.
func (o *Observer) CorpusEmit(n int) {
	if o == nil || n <= 0 {
		return
	}
	if m := o.run.met; m != nil {
		m.corpusTests.add(o.lane, uint64(n))
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvCorpusEmit)
		b = fInt(b, "n", int64(n))
		s.enqueue(closeLine(b))
	}
}

// SummaryRecord records a completed summary recording for callee fn:
// entries path entries captured in dur (the sub-exploration wall time).
func (o *Observer) SummaryRecord(fn, entries int, dur time.Duration) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.summaryRecords.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvSummaryRecord)
		b = fInt(b, "fn", int64(fn))
		b = fInt(b, "entries", int64(entries))
		b = fInt(b, "dur_us", dur.Microseconds())
		s.enqueue(closeLine(b))
	}
}

// SummaryApply records a call site discharged from the summary cache:
// entries recorded entries considered, feasible of them spliced into the
// caller, in dur (lookup + instantiation + feasibility filtering).
func (o *Observer) SummaryApply(fn, entries, feasible int, dur time.Duration) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.summaryHits.add(o.lane, 1)
		m.summaryLookup.observe(dur)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvSummaryApply)
		b = fInt(b, "fn", int64(fn))
		b = fInt(b, "entries", int64(entries))
		b = fInt(b, "feasible", int64(feasible))
		b = fInt(b, "dur_us", dur.Microseconds())
		s.enqueue(closeLine(b))
	}
}

// SummaryReject records a call site that fell back to inline exploration,
// with the soundness gate (or cache miss policy) that refused it.
func (o *Observer) SummaryReject(fn int, reason string) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.summaryMisses.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvSummaryReject)
		b = fInt(b, "fn", int64(fn))
		b = fStr(b, "reason", reason)
		s.enqueue(closeLine(b))
	}
}

// SummaryInvalidate records a recording attempt that failed dynamically
// (budget truncation, solver abort, entry blow-up) and poisoned its cache
// key. Emits the same summary_reject trace event as SummaryReject, but
// counts as an invalidation rather than a plain miss.
func (o *Observer) SummaryInvalidate(fn int, reason string) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.summaryInvalidates.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvSummaryReject)
		b = fInt(b, "fn", int64(fn))
		b = fStr(b, "reason", reason)
		s.enqueue(closeLine(b))
	}
}

// PruneStatic records a solver query avoided by the static dataflow
// analysis: kind "branch" for a branch side proven infeasible (the whole
// feasibility query pair is skipped), "bounds" for an array bounds check
// elided, "heap" for a heap mapping/bounds check elided.
func (o *Observer) PruneStatic(state uint64, fn, pc int, kind string) {
	if o == nil {
		return
	}
	if m := o.run.met; m != nil {
		m.prunedStatic.add(o.lane, 1)
	}
	if s := o.run.sink; s != nil {
		b := o.head(EvPruneStatic)
		b = fUint(b, "state", state)
		b = fInt(b, "fn", int64(fn))
		b = fInt(b, "pc", int64(pc))
		b = fStr(b, "kind", kind)
		s.enqueue(closeLine(b))
	}
}

// StepStart opens a scheduler-step timing window when step metrics are on;
// it returns the zero time (and StepDone no-ops) otherwise, so the hot path
// with no metrics never reads the clock.
func (o *Observer) StepStart() time.Time {
	if o == nil || o.run.met == nil {
		return time.Time{}
	}
	return time.Now()
}

// StepDone closes a step timing window: throughput counter, step-latency
// histogram, and the lane's worklist-length gauge.
func (o *Observer) StepDone(t0 time.Time, worklist int) {
	if o == nil || o.run.met == nil || t0.IsZero() {
		return
	}
	m := o.run.met
	m.steps.add(o.lane, 1)
	m.stepLat.observe(time.Since(t0))
	m.worklist.set(o.lane, uint64(worklist))
}
