package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON array
// format"), the schema chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // µs
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace converts a symmerge-trace/v1 JSONL stream into Chrome
// trace-event format: one thread row per lane ("w"), solver queries and
// merge-gate decisions as complete ("X") spans, the remaining events as
// thread-scoped instants. query_begin/query_end pairs match on (lane, qid);
// an unmatched begin (its end was dropped or the trace truncated) degrades
// to an instant rather than failing the conversion.
func ChromeTrace(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	out := chromeTrace{DisplayTimeUnit: "ms"}
	type qkey struct {
		w   int
		qid uint64
	}
	open := make(map[qkey]int64) // query_begin timestamps awaiting their end
	lanes := make(map[int]bool)
	lineNo := 0
	num := func(rec record, f string) int64 { v, _ := rec[f].(float64); return int64(v) }
	for sc.Scan() {
		lineNo++
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		ev, _ := rec["ev"].(string)
		us := num(rec, "us")
		lane := int(num(rec, "w"))
		if ev != EvTraceBegin && ev != EvTraceEnd {
			lanes[lane] = true
		}
		span := func(name string, dur int64, args map[string]any) {
			if dur < 1 {
				dur = 1
			}
			ts := us - dur
			if ts < 0 {
				ts = 0
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Phase: "X", TS: ts, Dur: dur, PID: 1, TID: lane, Args: args,
			})
		}
		instant := func(name, scope string, args map[string]any) {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Phase: "i", TS: us, PID: 1, TID: lane, Scope: scope, Args: args,
			})
		}
		switch ev {
		case EvTraceBegin, EvTraceEnd, EvMergeAttempt:
			// Attempts are subsumed by the accept/reject span that follows.
		case EvQueryBegin:
			open[qkey{lane, uint64(num(rec, "qid"))}] = us
		case EvQueryEnd:
			k := qkey{lane, uint64(num(rec, "qid"))}
			dur := num(rec, "dur_us")
			class, _ := rec["class"].(string)
			args := map[string]any{
				"class": class, "sat": rec["sat"],
				"sat_vars": num(rec, "sat_vars"), "sat_clauses": num(rec, "sat_clauses"),
			}
			if rec["err"] == true {
				args["err"] = true
			}
			if ts, ok := open[k]; ok {
				delete(open, k)
				if d := us - ts; d > dur {
					dur = d
				}
			}
			span("query:"+class, dur, args)
		case EvMergeAccept:
			span("merge", num(rec, "dur_us"), map[string]any{
				"a": num(rec, "a"), "b": num(rec, "b"), "m": num(rec, "m"),
			})
		case EvMergeReject:
			args := map[string]any{
				"a": num(rec, "a"), "b": num(rec, "b"), "reason": rec["reason"],
			}
			if qt, ok := rec["qt"]; ok {
				args["qt"], args["threshold"] = qt, rec["threshold"]
			}
			span("merge-reject", num(rec, "dur_us"), args)
		case EvFork:
			instant(ev, "t", map[string]any{"parent": num(rec, "parent"), "child": num(rec, "child")})
		case EvSummaryRecord:
			span("summary-record", num(rec, "dur_us"), map[string]any{
				"fn": num(rec, "fn"), "entries": num(rec, "entries"),
			})
		case EvSummaryApply:
			span("summary-apply", num(rec, "dur_us"), map[string]any{
				"fn": num(rec, "fn"), "entries": num(rec, "entries"), "feasible": num(rec, "feasible"),
			})
		case EvSummaryReject:
			instant(ev, "t", map[string]any{"fn": num(rec, "fn"), "reason": rec["reason"]})
		case EvEpoch, EvCheckpoint:
			instant(ev, "p", map[string]any{"seq": num(rec, "seq")})
		default: // ff_select, steal, donate, corpus_emit, future instants
			instant(ev, "t", nil)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for k, ts := range open { // ends lost to drops/truncation
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "query:?", Phase: "i", TS: ts, PID: 1, TID: k.w, Scope: "t",
		})
	}
	ids := make([]int, 0, len(lanes))
	for l := range lanes {
		ids = append(ids, l)
	}
	sort.Ints(ids)
	for _, l := range ids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: l,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", l)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
