package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// record is one decoded trace line; field presence/typing is checked
// against eventFields, so map decoding is enough.
type record map[string]any

// eventFields lists, per event type, the fields that must be present
// beyond the common envelope ("ev", "us", and — for worker events — "w").
var eventFields = map[string][]string{
	EvTraceBegin:   {"schema"},
	EvFork:         {"w", "parent", "child", "fn", "pc"},
	EvMergeAttempt: {"w", "a", "b", "fn", "pc"},
	EvMergeAccept:  {"w", "a", "b", "m", "dur_us"},
	EvMergeReject:  {"w", "a", "b", "reason", "dur_us"},
	EvQueryBegin:   {"w", "qid"},
	EvQueryEnd:     {"w", "qid", "class", "sat", "dur_us", "sat_vars", "sat_clauses"},
	EvFFSelect:     {"w", "state", "fn", "pc"},
	EvSteal:        {"w", "n"},
	EvDonate:       {"w", "n"},
	EvEpoch:        {"w", "seq", "seeds"},
	EvCheckpoint:   {"w", "seq", "states"},
	EvCorpusEmit:   {"w", "n"},
	EvTraceEnd:     {"events", "dropped"},

	EvSummaryRecord: {"w", "fn", "entries", "dur_us"},
	EvSummaryApply:  {"w", "fn", "entries", "feasible", "dur_us"},
	EvSummaryReject: {"w", "fn", "reason"},

	EvPruneStatic: {"w", "state", "fn", "pc", "kind"},
}

var queryClasses = map[string]bool{"session": true, "oneshot": true, "cached": true, "summary": true}

// TraceSummary is what Validate learned from a schema-valid trace.
type TraceSummary struct {
	Events  uint64            // event lines between header and footer
	Dropped uint64            // trace_end's drop counter
	Lanes   int               // distinct "w" values seen
	ByType  map[string]uint64 // event count per "ev" tag
}

// Validate checks a JSONL trace line by line against symmerge-trace/v1:
// the first line must be a trace_begin carrying the schema version, the
// last a trace_end whose event count matches the lines in between, and
// every line must parse and carry its event type's required fields. It
// returns a summary on success and a line-numbered error on the first
// violation.
func Validate(r io.Reader) (*TraceSummary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	sum := &TraceSummary{ByType: make(map[string]uint64)}
	lanes := make(map[int64]bool)
	lineNo := 0
	sawBegin, sawEnd := false, false
	for sc.Scan() {
		lineNo++
		if sawEnd {
			return nil, fmt.Errorf("line %d: content after trace_end", lineNo)
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		ev, _ := rec["ev"].(string)
		if ev == "" {
			return nil, fmt.Errorf("line %d: missing \"ev\"", lineNo)
		}
		fields, ok := eventFields[ev]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown event type %q", lineNo, ev)
		}
		if _, ok := rec["us"].(float64); !ok {
			return nil, fmt.Errorf("line %d: %s: missing numeric \"us\"", lineNo, ev)
		}
		for _, f := range fields {
			if _, ok := rec[f]; !ok {
				return nil, fmt.Errorf("line %d: %s: missing field %q", lineNo, ev, f)
			}
		}
		switch ev {
		case EvTraceBegin:
			if lineNo != 1 {
				return nil, fmt.Errorf("line %d: trace_begin not first", lineNo)
			}
			if s, _ := rec["schema"].(string); s != SchemaVersion {
				return nil, fmt.Errorf("line %d: schema %q, want %q", lineNo, rec["schema"], SchemaVersion)
			}
			sawBegin = true
			continue
		case EvTraceEnd:
			sawEnd = true
			ev2, _ := rec["events"].(float64)
			dr, _ := rec["dropped"].(float64)
			if uint64(ev2) != sum.Events {
				return nil, fmt.Errorf("line %d: trace_end counts %d events, trace has %d", lineNo, uint64(ev2), sum.Events)
			}
			sum.Dropped = uint64(dr)
			continue
		case EvQueryEnd:
			if c, _ := rec["class"].(string); !queryClasses[c] {
				return nil, fmt.Errorf("line %d: query_end: unknown class %q", lineNo, rec["class"])
			}
		}
		if lineNo == 1 {
			return nil, fmt.Errorf("line 1: expected trace_begin, got %s", ev)
		}
		if w, ok := rec["w"].(float64); ok {
			lanes[int64(w)] = true
		}
		sum.Events++
		sum.ByType[ev]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawBegin {
		return nil, fmt.Errorf("empty trace: no trace_begin")
	}
	if !sawEnd {
		return nil, fmt.Errorf("truncated trace: no trace_end")
	}
	sum.Lanes = len(lanes)
	return sum, nil
}
