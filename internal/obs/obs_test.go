package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// closeBuffer wraps a bytes.Buffer so the sink's writer goroutine and the
// test goroutine never race on it: reads only happen after Close returns.
type closeBuffer struct {
	bytes.Buffer
	closed bool
}

func (b *closeBuffer) Close() error { b.closed = true; return nil }

// emitAll exercises every event type once per lane.
func emitAll(o *Observer) {
	o.Fork(1, 2, 0, 3)
	o.MergeAttempt(2, 3, 0, 7)
	o.MergeAccept(2, 3, 4, 5*time.Microsecond)
	o.MergeReject(4, 5, "hot-var", 12.5, 6.25, 3*time.Microsecond)
	qid := o.QueryBegin()
	o.QueryEnd(qid, QuerySession, true, false, 40*time.Microsecond, 10, 25)
	qid = o.QueryBegin()
	o.QueryEnd(qid, QueryOneShot, false, false, 900*time.Microsecond, 100, 400)
	qid = o.QueryBegin()
	o.QueryEnd(qid, QueryCached, true, false, 0, 0, 0)
	o.FFSelect(7, 1, 2)
	o.Steal(1)
	o.Donate(2)
	o.Epoch(0, 4)
	o.Checkpoint(0, 4, false)
	o.CorpusEmit(3)
	t0 := o.StepStart()
	o.StepDone(t0, 11)
}

func TestNilLayerIsNoOp(t *testing.T) {
	var r *Run
	if r.NewLane() != nil {
		t.Fatal("nil Run should hand out nil lanes")
	}
	if r.Metrics() != nil {
		t.Fatal("nil Run should have nil metrics")
	}
	var o *Observer
	if o.Active() {
		t.Fatal("nil observer is active")
	}
	emitAll(o) // must not panic
	if !o.StepStart().IsZero() {
		t.Fatal("nil observer read the clock")
	}
	if NewRun(nil, nil) != nil {
		t.Fatal("NewRun(nil, nil) should be nil")
	}
}

func TestMetricsCountersAndHistograms(t *testing.T) {
	met := NewMetrics()
	r := NewRun(nil, met)
	const lanes, rounds = 4, 50
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		o := r.NewLane()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				emitAll(o)
			}
		}()
	}
	wg.Wait()
	sn := met.Snapshot()
	const n = lanes * rounds
	if sn.Schema != "symmerge-metrics/v1" {
		t.Fatalf("schema = %q", sn.Schema)
	}
	for name, got := range map[string]uint64{
		"forks":           sn.Forks,
		"merge_attempts":  sn.MergeAttempts,
		"merges":          sn.Merges,
		"merge_rejects":   sn.MergeRejects,
		"ff_selected":     sn.FFSelected,
		"queries_session": sn.QueriesSession,
		"queries_oneshot": sn.QueriesOneShot,
		"queries_cached":  sn.QueriesCached,
		"query_unsat":     sn.QueryUnsat,
		"epochs":          sn.Epochs,
		"checkpoints":     sn.Checkpoints,
		"steps":           sn.Steps,
		"steals":          sn.Steals,
	} {
		if got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
	if sn.QuerySat != 2*n {
		t.Errorf("query_sat = %d, want %d", sn.QuerySat, 2*n)
	}
	if sn.Donations != 2*n || sn.CorpusTests != 3*n {
		t.Errorf("donations/corpus = %d/%d, want %d/%d", sn.Donations, sn.CorpusTests, 2*n, 3*n)
	}
	if sn.Worklist != lanes*11 {
		t.Errorf("worklist gauge = %d, want %d", sn.Worklist, lanes*11)
	}
	for name, h := range map[string]HistSnap{
		"query_lat_session": sn.QueryLatSession,
		"query_lat_oneshot": sn.QueryLatOneShot,
		"query_lat_cached":  sn.QueryLatCached,
		"merge_gate":        sn.MergeGate,
	} {
		want := uint64(n)
		if name == "merge_gate" {
			want = 2 * n // accept + reject both time the gate
		}
		if h.Count != want {
			t.Errorf("%s count = %d, want %d", name, h.Count, want)
		}
	}
	// 900µs lands in the (512,1024] bucket: p50 upper bound must be 1024.
	if sn.QueryLatOneShot.P50US != 1024 {
		t.Errorf("oneshot p50 = %d, want 1024", sn.QueryLatOneShot.P50US)
	}
	if sn.QueryLatSession.SumUS != 40*n {
		t.Errorf("session sum = %d, want %d", sn.QueryLatSession.SumUS, 40*n)
	}
	// The snapshot must be marshalable (it feeds expvar and /progress).
	if _, err := json.Marshal(sn); err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf closeBuffer
	sink := NewSink(&buf, 0)
	met := NewMetrics()
	r := NewRun(sink, met)
	o := r.NewLane()
	o2 := r.NewLane()
	emitAll(o)
	emitAll(o2)
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !buf.closed {
		t.Fatal("sink did not close the underlying writer")
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	sum, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v\ntrace:\n%s", err, buf.String())
	}
	if sum.Dropped != 0 {
		t.Fatalf("dropped = %d", sum.Dropped)
	}
	if sum.Lanes != 2 {
		t.Fatalf("lanes = %d, want 2", sum.Lanes)
	}
	// Each emitAll writes 16 trace events (StepStart/Done are metrics-only).
	if sum.Events != 32 {
		t.Fatalf("events = %d, want 32\ntrace:\n%s", sum.Events, buf.String())
	}
	if sum.ByType[EvQueryEnd] != 6 || sum.ByType[EvMergeReject] != 2 {
		t.Fatalf("by-type counts: %v", sum.ByType)
	}
	if sink.Events() != 32 {
		t.Fatalf("sink.Events = %d", sink.Events())
	}

	var chrome bytes.Buffer
	if err := ChromeTrace(bytes.NewReader(buf.Bytes()), &chrome); err != nil {
		t.Fatalf("chrome: %v", err)
	}
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &ct); err != nil {
		t.Fatalf("chrome output not JSON: %v", err)
	}
	spans, metas := 0, 0
	for _, e := range ct.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
		case "M":
			metas++
		}
	}
	// Per lane: 3 query spans + 1 merge + 1 merge-reject = 5 spans.
	if spans != 10 {
		t.Fatalf("chrome spans = %d, want 10", spans)
	}
	if metas != 2 {
		t.Fatalf("chrome thread metadata = %d, want 2", metas)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	head := `{"ev":"trace_begin","us":0,"schema":"symmerge-trace/v1"}` + "\n"
	cases := map[string]string{
		"missing header": `{"ev":"fork","us":1,"w":0,"parent":1,"child":2,"fn":0,"pc":0}` + "\n",
		"bad schema":     `{"ev":"trace_begin","us":0,"schema":"nope/v9"}` + "\n",
		"unknown event":  head + `{"ev":"warp","us":1,"w":0}` + "\n",
		"missing field":  head + `{"ev":"fork","us":1,"w":0,"parent":1}` + "\n",
		"bad class":      head + `{"ev":"query_end","us":1,"w":0,"qid":1,"class":"warp","sat":true,"dur_us":1,"sat_vars":0,"sat_clauses":0}` + "\n",
		"no footer":      head,
		"wrong count":    head + `{"ev":"steal","us":1,"w":0,"n":1}` + "\n" + `{"ev":"trace_end","us":2,"events":7,"dropped":0}` + "\n",
		"not json":       head + "not json\n",
	}
	for name, trace := range cases {
		if _, err := Validate(strings.NewReader(trace)); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	ok := head + `{"ev":"steal","us":1,"w":0,"n":1}` + "\n" + `{"ev":"trace_end","us":2,"events":1,"dropped":3}` + "\n"
	sum, err := Validate(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if sum.Dropped != 3 || sum.Events != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSinkBackPressureDropsNotBlocks(t *testing.T) {
	// A maximally stalled sink: the writer goroutine has not consumed a
	// single line (it starts only after the burst), so the bounded channel
	// is the whole slack. Every event past its capacity must drop without
	// blocking the emitter.
	var buf closeBuffer
	sink := &Sink{
		ch:    make(chan []byte, 2),
		start: time.Now(),
		done:  make(chan struct{}),
		w:     bufio.NewWriter(&buf),
	}
	sink.pool.New = func() any { return make([]byte, 0, 192) }
	met := NewMetrics()
	r := NewRun(sink, met)
	o := r.NewLane()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			o.Steal(1)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("emitter blocked on a stalled sink")
	}
	if got := sink.Drops(); got != 48 {
		t.Fatalf("drops = %d, want 48", got)
	}
	if met.Snapshot().TraceDropped != 48 {
		t.Fatalf("metrics drop counter = %d, want 48", met.Snapshot().TraceDropped)
	}
	go sink.run() // writer catches up; Close drains the 2 queued lines
	if err := sink.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := sink.Events() + sink.Drops(); got != 50 {
		t.Fatalf("events+drops = %d, want 50", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(0)                    // bucket 0 (le 1)
	h.observe(1 * time.Microsecond) // bucket 1 (le 2)
	h.observe(3 * time.Microsecond) // bucket 2 (le 4)
	h.observe(60 * time.Second)     // clamped to the open-ended last bucket
	sn := h.snapshot()
	if sn.Count != 4 {
		t.Fatalf("count = %d", sn.Count)
	}
	if len(sn.Buckets) != 4 {
		t.Fatalf("buckets = %+v", sn.Buckets)
	}
	if sn.Buckets[0].LeUS != 1 || sn.Buckets[0].N != 1 {
		t.Fatalf("bucket 0 = %+v", sn.Buckets[0])
	}
	if last := sn.Buckets[3]; last.N != 4 {
		t.Fatalf("cumulative last bucket = %+v", last)
	}
	if sn.P50US != 2 {
		t.Fatalf("p50 = %d, want 2", sn.P50US)
	}
}
