package expr

import "fmt"

// Env assigns concrete values to variables for evaluation. Values are stored
// truncated to the variable's width; booleans as 0/1. Missing variables
// evaluate to zero (the solver's convention for don't-care variables).
type Env map[*Expr]uint64

// Eval computes the concrete value of e under env. It is the reference
// semantics: the simplifier, the bit-blaster, and the engine's concrete fast
// paths are all tested against it. Boolean results are 0/1.
func Eval(e *Expr, env Env) uint64 {
	memo := make(map[*Expr]uint64)
	return eval(e, env, memo)
}

func eval(e *Expr, env Env, memo map[*Expr]uint64) uint64 {
	if v, ok := memo[e]; ok {
		return v
	}
	var v uint64
	switch e.Kind {
	case KConst:
		v = e.Val
	case KVar:
		v = truncate(env[e], e.Width)
	case KNot:
		v = 1 - eval(e.Kids[0], env, memo)
	case KAnd:
		// n-ary conjunction: all kids must hold.
		v = 1
		for _, k := range e.Kids {
			v &= eval(k, env, memo)
		}
	case KOr:
		// n-ary disjunction: any kid suffices.
		v = 0
		for _, k := range e.Kids {
			v |= eval(k, env, memo)
		}
	case KXor:
		v = eval(e.Kids[0], env, memo) ^ eval(e.Kids[1], env, memo)
	case KImplies:
		v = (1 - eval(e.Kids[0], env, memo)) | eval(e.Kids[1], env, memo)
	case KEq:
		v = boolVal(eval(e.Kids[0], env, memo) == eval(e.Kids[1], env, memo))
	case KUlt:
		v = boolVal(eval(e.Kids[0], env, memo) < eval(e.Kids[1], env, memo))
	case KUle:
		v = boolVal(eval(e.Kids[0], env, memo) <= eval(e.Kids[1], env, memo))
	case KSlt:
		w := e.Kids[0].Width
		v = boolVal(int64(signExtend(eval(e.Kids[0], env, memo), w)) <
			int64(signExtend(eval(e.Kids[1], env, memo), w)))
	case KSle:
		w := e.Kids[0].Width
		v = boolVal(int64(signExtend(eval(e.Kids[0], env, memo), w)) <=
			int64(signExtend(eval(e.Kids[1], env, memo), w)))
	case KAdd:
		v = truncate(eval(e.Kids[0], env, memo)+eval(e.Kids[1], env, memo), e.Width)
	case KSub:
		v = truncate(eval(e.Kids[0], env, memo)-eval(e.Kids[1], env, memo), e.Width)
	case KMul:
		v = truncate(eval(e.Kids[0], env, memo)*eval(e.Kids[1], env, memo), e.Width)
	case KUDiv:
		a, c := eval(e.Kids[0], env, memo), eval(e.Kids[1], env, memo)
		if c == 0 {
			v = mask(e.Width)
		} else {
			v = a / c
		}
	case KURem:
		a, c := eval(e.Kids[0], env, memo), eval(e.Kids[1], env, memo)
		if c == 0 {
			v = a
		} else {
			v = a % c
		}
	case KSDiv:
		w := e.Width
		sa := int64(signExtend(eval(e.Kids[0], env, memo), w))
		sc := int64(signExtend(eval(e.Kids[1], env, memo), w))
		switch {
		case sc == 0 && sa < 0:
			v = 1
		case sc == 0:
			v = mask(w)
		case sa == -1<<63 && sc == -1:
			v = uint64(sa)
		default:
			v = truncate(uint64(sa/sc), w)
		}
	case KSRem:
		w := e.Width
		sa := int64(signExtend(eval(e.Kids[0], env, memo), w))
		sc := int64(signExtend(eval(e.Kids[1], env, memo), w))
		switch {
		case sc == 0:
			v = truncate(uint64(sa), w)
		case sa == -1<<63 && sc == -1:
			v = 0
		default:
			v = truncate(uint64(sa%sc), w)
		}
	case KBAnd:
		v = eval(e.Kids[0], env, memo) & eval(e.Kids[1], env, memo)
	case KBOr:
		v = eval(e.Kids[0], env, memo) | eval(e.Kids[1], env, memo)
	case KBXor:
		v = eval(e.Kids[0], env, memo) ^ eval(e.Kids[1], env, memo)
	case KBNot:
		v = truncate(^eval(e.Kids[0], env, memo), e.Width)
	case KNeg:
		v = truncate(-eval(e.Kids[0], env, memo), e.Width)
	case KShl:
		a, c := eval(e.Kids[0], env, memo), eval(e.Kids[1], env, memo)
		if c >= uint64(e.Width) {
			v = 0
		} else {
			v = truncate(a<<c, e.Width)
		}
	case KLShr:
		a, c := eval(e.Kids[0], env, memo), eval(e.Kids[1], env, memo)
		if c >= uint64(e.Width) {
			v = 0
		} else {
			v = a >> c
		}
	case KAShr:
		a, c := eval(e.Kids[0], env, memo), eval(e.Kids[1], env, memo)
		sa := int64(signExtend(a, e.Width))
		if c >= uint64(e.Width) {
			c = uint64(e.Width) - 1
		}
		v = truncate(uint64(sa>>c), e.Width)
	case KZExt:
		v = eval(e.Kids[0], env, memo)
	case KSExt:
		v = truncate(signExtend(eval(e.Kids[0], env, memo), uint8(e.Aux)), e.Width)
	case KExtract:
		v = truncate(eval(e.Kids[0], env, memo)>>e.Aux, e.Width)
	case KConcat:
		hi, lo := e.Kids[0], e.Kids[1]
		v = eval(hi, env, memo)<<lo.Width | eval(lo, env, memo)
	case KIte:
		if eval(e.Kids[0], env, memo) != 0 {
			v = eval(e.Kids[1], env, memo)
		} else {
			v = eval(e.Kids[2], env, memo)
		}
	default:
		panic(fmt.Sprintf("expr: eval of unknown kind %v", e.Kind))
	}
	memo[e] = v
	return v
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// EvalBool evaluates a boolean expression under env.
func EvalBool(e *Expr, env Env) bool {
	if !e.IsBool() {
		panic("expr: EvalBool on non-bool expression")
	}
	return Eval(e, env) != 0
}
