package expr

// FuzzSimplify drives the rewrite table with fuzzer-shaped expressions: the
// input bytes program a small stack machine that builds boolean and
// bitvector terms through the Builder, and the properties checked are the
// layer's core contracts — constructor output is canonical (Simplify is the
// identity on it), Simplify and SimplifySet preserve the reference
// semantics of eval.go on every probed assignment, and n-ary invariants
// hold structurally on every reachable node.

import (
	"testing"
)

// buildFuzzExprs interprets data as constructions over two 8-bit variables
// and one boolean variable, returning the boolean terms left on the stack.
func buildFuzzExprs(b *Builder, data []byte) (bools []*Expr, x, y, p *Expr) {
	x = b.Var("x", 8)
	y = b.Var("y", 8)
	p = b.Var("p", 0)
	bvs := []*Expr{x, y}
	bools = []*Expr{p}
	popBV := func(i int) *Expr { return bvs[int(i)%len(bvs)] }
	popB := func(i int) *Expr { return bools[int(i)%len(bools)] }
	const maxTerms = 64 // bound fuzz-driven growth
	for i := 0; i+2 < len(data) && len(bvs)+len(bools) < maxTerms; i += 3 {
		op, a1, a2 := data[i], int(data[i+1]), int(data[i+2])
		switch op % 14 {
		case 0:
			bvs = append(bvs, b.Add(popBV(a1), popBV(a2)))
		case 1:
			bvs = append(bvs, b.Sub(popBV(a1), popBV(a2)))
		case 2:
			bvs = append(bvs, b.Mul(popBV(a1), popBV(a2)))
		case 3:
			bvs = append(bvs, b.BAnd(popBV(a1), popBV(a2)))
		case 4:
			bvs = append(bvs, b.BNot(popBV(a1)))
		case 5:
			bvs = append(bvs, b.Const(uint64(a1)|uint64(a2)<<8, 8))
		case 6:
			bvs = append(bvs, b.Ite(popB(a1), popBV(a2), popBV(a1)))
		case 7:
			bools = append(bools, b.Eq(popBV(a1), popBV(a2)))
		case 8:
			bools = append(bools, b.Ult(popBV(a1), popBV(a2)))
		case 9:
			bools = append(bools, b.Slt(popBV(a1), popBV(a2)))
		case 10:
			bools = append(bools, b.And(popB(a1), popB(a2)))
		case 11:
			bools = append(bools, b.Or(popB(a1), popB(a2)))
		case 12:
			bools = append(bools, b.Not(popB(a1)))
		default:
			bools = append(bools, b.AndN([]*Expr{popB(a1), popB(a2), popB(a1 + a2)}))
		}
	}
	return bools, x, y, p
}

// checkNaryInvariants walks a term and fails on any node violating the
// canonical n-ary form (flattened, ID-sorted, duplicate-free, ≥ 2 kids).
func checkNaryInvariants(t *testing.T, e *Expr, seen map[*Expr]bool) {
	t.Helper()
	if seen[e] {
		return
	}
	seen[e] = true
	if e.Kind == KAnd || e.Kind == KOr {
		if len(e.Kids) < 2 {
			t.Fatalf("n-ary node with %d kids: %s", len(e.Kids), e)
		}
		for i, k := range e.Kids {
			if k.Kind == e.Kind {
				t.Fatalf("unflattened nested %v: %s", e.Kind, e)
			}
			if i > 0 && e.Kids[i-1].ID() >= k.ID() {
				t.Fatalf("kids not strictly ID-sorted: %s", e)
			}
		}
	}
	for _, k := range e.Kids {
		checkNaryInvariants(t, k, seen)
	}
}

func FuzzSimplify(f *testing.F) {
	f.Add([]byte{7, 0, 1, 10, 0, 1, 11, 1, 2, 13, 0, 2})
	f.Add([]byte{8, 1, 0, 12, 1, 0, 10, 1, 2, 11, 2, 3})
	f.Add([]byte{0, 0, 1, 2, 2, 2, 7, 2, 0, 13, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBuilder()
		bools, x, y, p := buildFuzzExprs(b, data)

		seen := map[*Expr]bool{}
		for _, e := range bools {
			checkNaryInvariants(t, e, seen)
			// Constructor output is already canonical: Simplify must be
			// the identity on it (idempotence), and must agree with the
			// reference evaluator regardless.
			s := b.Simplify(e)
			if s != e {
				t.Fatalf("Simplify not idempotent on constructor output: %s -> %s", e, s)
			}
		}

		simplified := b.SimplifySet(bools)
		// Probe assignments derived from the input bytes plus corners.
		probe := func(xv, yv, pv uint64) {
			env := Env{x: xv & 0xff, y: yv & 0xff, p: pv & 1}
			want := true
			for _, c := range bools {
				want = want && EvalBool(c, env)
			}
			got := true
			for _, c := range simplified {
				got = got && EvalBool(c, env)
			}
			if got != want {
				t.Fatalf("SimplifySet changed semantics at x=%d y=%d p=%d:\n  in:  %v\n  out: %v",
					env[x], env[y], env[p], bools, simplified)
			}
		}
		probe(0, 0, 0)
		probe(0xff, 0xff, 1)
		probe(1, 0xfe, 0)
		for i := 0; i+1 < len(data) && i < 32; i += 2 {
			probe(uint64(data[i]), uint64(data[i+1]), uint64(data[i])>>7)
		}
	})
}
