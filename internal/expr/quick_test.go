package expr

// Property-based tests with testing/quick: builder construction over
// symbolic variables must agree with direct Go arithmetic under Eval for
// arbitrary inputs, and structural invariants of hash-consing must hold.

import (
	"testing"
	"testing/quick"
)

var quickCfg = &quick.Config{MaxCount: 2000}

func TestQuickArithmeticAgreesWithGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	f := func(xv, yv uint32) bool {
		env := Env{x: uint64(xv), y: uint64(yv)}
		checks := []struct {
			e    *Expr
			want uint64
		}{
			{b.Add(x, y), uint64(xv + yv)},
			{b.Sub(x, y), uint64(xv - yv)},
			{b.Mul(x, y), uint64(xv * yv)},
			{b.BAnd(x, y), uint64(xv & yv)},
			{b.BOr(x, y), uint64(xv | yv)},
			{b.BXor(x, y), uint64(xv ^ yv)},
			{b.BNot(x), uint64(^xv)},
			{b.Neg(x), uint64(-xv)},
		}
		for _, c := range checks {
			if Eval(c.e, env) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComparisonsAgreeWithGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	f := func(xv, yv uint32) bool {
		env := Env{x: uint64(xv), y: uint64(yv)}
		if EvalBool(b.Ult(x, y), env) != (xv < yv) {
			return false
		}
		if EvalBool(b.Ule(x, y), env) != (xv <= yv) {
			return false
		}
		if EvalBool(b.Slt(x, y), env) != (int32(xv) < int32(yv)) {
			return false
		}
		if EvalBool(b.Sle(x, y), env) != (int32(xv) <= int32(yv)) {
			return false
		}
		if EvalBool(b.Eq(x, y), env) != (xv == yv) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDivisionAgreesWithGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	f := func(xv, yv uint16) bool {
		env := Env{x: uint64(xv), y: uint64(yv)}
		var wantDiv, wantRem uint64
		if yv == 0 {
			wantDiv, wantRem = 0xffff, uint64(xv) // SMT-LIB semantics
		} else {
			wantDiv, wantRem = uint64(xv/yv), uint64(xv%yv)
		}
		return Eval(b.UDiv(x, y), env) == wantDiv &&
			Eval(b.URem(x, y), env) == wantRem
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickShiftsAgreeWithGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	s := b.Var("s", 32)
	f := func(xv uint32, sv uint8) bool {
		shift := uint64(sv % 40) // cover both in-range and saturating
		env := Env{x: uint64(xv), s: shift}
		var wantShl, wantLshr, wantAshr uint64
		if shift >= 32 {
			wantShl, wantLshr = 0, 0
			wantAshr = uint64(uint32(int32(xv) >> 31))
		} else {
			wantShl = uint64(xv << shift)
			wantLshr = uint64(xv >> shift)
			wantAshr = uint64(uint32(int32(xv) >> shift))
		}
		return Eval(b.Shl(x, s), env) == wantShl &&
			Eval(b.LShr(x, s), env) == wantLshr &&
			Eval(b.AShr(x, s), env) == wantAshr
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConstFoldMatchesEval(t *testing.T) {
	// Folding a constant expression must equal evaluating the same
	// structure built over variables.
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	f := func(xv, yv uint8) bool {
		sym := b.Mul(b.Add(x, y), b.Sub(x, y))
		folded := b.Mul(b.Add(b.Const(uint64(xv), 8), b.Const(uint64(yv), 8)),
			b.Sub(b.Const(uint64(xv), 8), b.Const(uint64(yv), 8)))
		if !folded.IsConst() {
			return false
		}
		return Eval(sym, Env{x: uint64(xv), y: uint64(yv)}) == folded.Val
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashConsingIdempotent(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 16)
	f := func(v uint16) bool {
		c := b.Const(uint64(v), 16)
		e1 := b.Add(x, c)
		e2 := b.Add(x, c)
		e3 := b.Add(c, x) // commutative canonical form
		return e1 == e2 && e1 == e3
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIteSelectsArm(t *testing.T) {
	b := NewBuilder()
	c := b.Var("c", 0)
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	f := func(cond bool, xv, yv uint32) bool {
		e := b.Ite(c, x, y)
		env := Env{x: uint64(xv), y: uint64(yv)}
		if cond {
			env[c] = 1
		}
		want := uint64(yv)
		if cond {
			want = uint64(xv)
		}
		return Eval(e, env) == want
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSimplifyAgreesWithEval: Simplify (the whole rewrite table,
// re-run bottom-up) must agree with the eval.go reference semantics on
// n-ary connective compositions under arbitrary assignments, and must be
// idempotent on constructor-built terms.
func TestQuickSimplifyAgreesWithEval(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	p := b.Var("p", 0)
	f := func(xv, yv uint32, pv bool, c uint32) bool {
		env := Env{x: uint64(xv), y: uint64(yv)}
		if pv {
			env[p] = 1
		}
		lim := b.Const(uint64(c), 32)
		parts := []*Expr{
			b.Ult(x, lim),
			b.Or(p, b.Eq(x, y)),
			b.Not(b.And(p, b.Ule(y, lim))),
		}
		and := b.AndN(parts)
		or := b.OrN(parts)
		wantAnd, wantOr := true, false
		for _, pt := range parts {
			v := EvalBool(pt, env)
			wantAnd = wantAnd && v
			wantOr = wantOr || v
		}
		return EvalBool(and, env) == wantAnd &&
			EvalBool(or, env) == wantOr &&
			b.Simplify(and) == and && b.Simplify(or) == or
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExtractConcatRoundTrip(t *testing.T) {
	b := NewBuilder()
	f := func(hi, lo uint8) bool {
		h := b.Const(uint64(hi), 8)
		l := b.Const(uint64(lo), 8)
		cc := b.Concat(h, l)
		return b.Extract(cc, 8, 8).Val == uint64(hi) &&
			b.Extract(cc, 0, 8).Val == uint64(lo)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}
