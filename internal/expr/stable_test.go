package expr

import "testing"

// buildSample constructs a small mixed DAG in b. The construction order is
// controlled by the order of the calls below; callers vary warm-up to force
// different builder-ID assignments.
func buildSample(b *Builder) *Expr {
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	sum := b.Add(x, y)
	cond := b.Ult(sum, b.Const(10, 32))
	flag := b.Var("flag", 0)
	return b.And(b.And(cond, flag), b.Eq(x, b.Const(3, 32)))
}

func TestFingerprintCrossBuilderStable(t *testing.T) {
	b1 := NewBuilder()
	e1 := buildSample(b1)

	// Second builder: intern a pile of unrelated nodes first so every
	// builder-local ID (and therefore every structural hash) differs, then
	// build the same expression.
	b2 := NewBuilder()
	for i := 0; i < 100; i++ {
		b2.Add(b2.Var("warm", 8), b2.Const(uint64(i), 8))
	}
	e2 := buildSample(b2)

	if e1.ID() == e2.ID() {
		t.Fatalf("test premise broken: builder IDs coincide (%d); warm-up did not shift them", e1.ID())
	}

	var f1, f2 Fingerprinter
	fp1, fp2 := f1.Of(e1), f2.Of(e2)
	if fp1.IsZero() {
		t.Fatal("fingerprint is the reserved zero value")
	}
	if fp1 != fp2 {
		t.Errorf("same expression fingerprints differently across builders: %+v vs %+v", fp1, fp2)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	b := NewBuilder()
	var f Fingerprinter
	x, y := b.Var("x", 32), b.Var("y", 32)
	exprs := []*Expr{
		x,
		y,
		b.Var("x", 16), // same name, different width
		b.Const(3, 32),
		b.Const(3, 16), // same value, different width
		b.Add(x, y),
		b.Sub(x, y), // same kids, different kind
		b.Ult(x, y),
		b.Ult(y, x), // same kind, swapped kids
		b.Extract(x, 0, 8),
		b.Extract(x, 8, 8), // differs only in Aux
	}
	seen := map[FP]int{}
	for i, e := range exprs {
		fp := f.Of(e)
		if j, dup := seen[fp]; dup {
			t.Errorf("exprs %d and %d collide on fingerprint %+v", j, i, fp)
		}
		seen[fp] = i
	}
}

func TestFingerprintMemoConsistent(t *testing.T) {
	// Of on a parent first, then a child, must agree with child-first.
	b := NewBuilder()
	x := b.Var("x", 32)
	parent := b.Add(x, b.Const(1, 32))

	var parentFirst, childFirst Fingerprinter
	pf := parentFirst.Of(parent)
	_ = childFirst.Of(x)
	if got := childFirst.Of(parent); got != pf {
		t.Errorf("memoization order changes fingerprint: %+v vs %+v", got, pf)
	}
}

func TestCombineFPsOrderAndDupInvariant(t *testing.T) {
	b := NewBuilder()
	var f Fingerprinter
	a := f.Of(b.Var("a", 0))
	c := f.Of(b.Var("c", 0))
	d := f.Of(b.Var("d", 0))

	base := CombineFPs([]FP{a, c, d})
	if got := CombineFPs([]FP{d, a, c}); got != base {
		t.Errorf("combine is order-sensitive: %+v vs %+v", got, base)
	}
	if got := CombineFPs([]FP{a, a, c, d, d}); got != base {
		t.Errorf("combine is duplicate-sensitive: %+v vs %+v", got, base)
	}
	if got := CombineFPs([]FP{a, c}); got == base {
		t.Error("dropping a member did not change the combined fingerprint")
	}
	if CombineFPs(nil) == base {
		t.Error("empty combine equals non-empty combine")
	}
}

func TestFingerprintDeepDAGNoOverflow(t *testing.T) {
	// A 100k-deep chain would blow the stack under naive recursion.
	b := NewBuilder()
	e := b.Var("x", 32)
	one := b.Const(1, 32)
	for i := 0; i < 100_000; i++ {
		e = b.Add(e, one)
	}
	var f Fingerprinter
	if f.Of(e).IsZero() {
		t.Fatal("zero fingerprint")
	}
}
