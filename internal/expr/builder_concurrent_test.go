package expr

// Concurrency tests for the sharded hash-consing builder: under `go test
// -race` these prove the interning discipline the parallel exploration
// subsystem relies on when all workers share one Builder.

import (
	"sync"
	"testing"
)

// TestBuilderConcurrentInterning has several goroutines construct the same
// expression DAG. Hash-consing must stay canonical across goroutines: every
// goroutine must end up with pointer-identical roots, and the node count
// must reflect one copy of the structure, not one per goroutine.
func TestBuilderConcurrentInterning(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)

	build := func() *Expr {
		// A moderately deep DAG exercising folding, canonical ordering,
		// and several shards.
		e := b.Add(x, y)
		for i := 0; i < 200; i++ {
			e = b.Add(b.Mul(e, b.Const(uint64(i%7+1), 32)), y)
			e = b.Ite(b.Ult(e, b.Const(uint64(i+1), 32)), e, x)
		}
		return e
	}

	const goroutines = 8
	roots := make([]*Expr, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			roots[g] = build()
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if roots[g] != roots[0] {
			t.Fatalf("goroutine %d interned a distinct root for identical structure", g)
		}
	}
	// One goroutine alone creates some N nodes; concurrent duplicates would
	// multiply that. Allow slack for transient interleavings (none expected
	// for identical structure, but the bound is what matters).
	single := NewBuilder()
	sx, sy := single.Var("x", 32), single.Var("y", 32)
	e := single.Add(sx, sy)
	for i := 0; i < 200; i++ {
		e = single.Add(single.Mul(e, single.Const(uint64(i%7+1), 32)), sy)
		e = single.Ite(single.Ult(e, single.Const(uint64(i+1), 32)), e, sx)
	}
	if got, want := b.NumNodes(), single.NumNodes(); got != want {
		t.Fatalf("concurrent interning created %d nodes, single-threaded baseline %d", got, want)
	}
}

// TestBuilderConcurrentDistinct has goroutines build disjoint expression
// families concurrently; IDs must stay unique and every family must remain
// internally canonical.
func TestBuilderConcurrentDistinct(t *testing.T) {
	t.Parallel()
	b := NewBuilder()
	const goroutines = 8
	var wg sync.WaitGroup
	ids := make([]map[uint64]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := map[uint64]bool{}
			v := b.Var(string(rune('a'+g)), 8)
			for i := 0; i < 500; i++ {
				e := b.Add(v, b.Const(uint64(i), 8))
				seen[e.ID()] = true
			}
			ids[g] = seen
		}(g)
	}
	wg.Wait()
	all := map[uint64]int{}
	for g, seen := range ids {
		for id := range seen {
			if prev, dup := all[id]; dup {
				t.Fatalf("node ID %d produced by goroutines %d and %d for distinct structures", id, prev, g)
			}
			all[id] = g
		}
	}
}
