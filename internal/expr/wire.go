package expr

// Raw interning for deserialization. The checkpoint subsystem persists
// expression DAGs in a topologically ordered node table; on load each node
// is re-interned through Intern, which validates the node's shape and
// hash-conses it WITHOUT re-running the rewrite-rule table. Skipping the
// rules is deliberate and safe: every serialized node was produced by a
// rule-running constructor, so it is already in canonical form, and
// re-canonicalizing could change node identity mid-table (a rewritten
// parent would reference kids that no longer exist in the serialized
// shape). Re-interning a snapshot into the builder that produced it yields
// pointer-identical nodes (a pure hash-cons hit per node).

import "fmt"

// Intern reconstructs one deserialized node: it validates the operator's
// arity and sort constraints (a corrupt snapshot must fail loudly here, not
// crash the engine later) and hash-conses the node as-is. Kids must already
// be interned in this builder.
func (b *Builder) Intern(kind Kind, width uint8, val uint64, aux uint16, name string, kids []*Expr) (*Expr, error) {
	if kind >= numKinds {
		return nil, fmt.Errorf("expr: intern: unknown kind %d", uint8(kind))
	}
	if width > 64 {
		return nil, fmt.Errorf("expr: intern: %s width %d out of range", kind, width)
	}
	for i, k := range kids {
		if k == nil {
			return nil, fmt.Errorf("expr: intern: %s kid %d is nil", kind, i)
		}
	}
	nkids := func(n int) error {
		if len(kids) != n {
			return fmt.Errorf("expr: intern: %s wants %d kids, got %d", kind, n, len(kids))
		}
		return nil
	}
	boolKids := func() error {
		for _, k := range kids {
			if !k.IsBool() {
				return fmt.Errorf("expr: intern: %s on non-bool kid %s", kind, k)
			}
		}
		return nil
	}
	sameBVKids := func(w uint8) error {
		for _, k := range kids {
			if k.Width != w || w == 0 {
				return fmt.Errorf("expr: intern: %s kid width %d, want %d", kind, k.Width, w)
			}
		}
		return nil
	}

	var err error
	switch kind {
	case KConst:
		err = nkids(0)
		val = truncate(val, width)
	case KVar:
		err = nkids(0)
		if name == "" {
			err = fmt.Errorf("expr: intern: variable without a name")
		}
	case KNot:
		if err = nkids(1); err == nil {
			err = boolKids()
		}
		width = 0
	case KAnd, KOr:
		if len(kids) < 2 {
			err = fmt.Errorf("expr: intern: %s wants >= 2 kids, got %d", kind, len(kids))
		} else {
			err = boolKids()
		}
		width = 0
	case KXor, KImplies:
		if err = nkids(2); err == nil {
			err = boolKids()
		}
		width = 0
	case KEq:
		if err = nkids(2); err == nil && kids[0].Width != kids[1].Width {
			err = fmt.Errorf("expr: intern: = width mismatch %d vs %d", kids[0].Width, kids[1].Width)
		}
		width = 0
	case KUlt, KUle, KSlt, KSle:
		if err = nkids(2); err == nil {
			err = sameBVKids(kids[0].Width)
		}
		width = 0
	case KAdd, KSub, KMul, KUDiv, KURem, KSDiv, KSRem,
		KBAnd, KBOr, KBXor, KShl, KLShr, KAShr:
		if err = nkids(2); err == nil {
			err = sameBVKids(width)
		}
	case KBNot, KNeg:
		if err = nkids(1); err == nil {
			err = sameBVKids(width)
		}
	case KZExt, KSExt:
		if err = nkids(1); err == nil {
			if uint16(kids[0].Width) != aux || width <= kids[0].Width || kids[0].Width == 0 {
				err = fmt.Errorf("expr: intern: %s %d -> %d (aux %d) invalid", kind, kids[0].Width, width, aux)
			}
		}
	case KExtract:
		if err = nkids(1); err == nil {
			if width == 0 || int(aux)+int(width) > int(kids[0].Width) {
				err = fmt.Errorf("expr: intern: extract [%d+%d] of width-%d", aux, width, kids[0].Width)
			}
		}
	case KConcat:
		if err = nkids(2); err == nil {
			if kids[0].Width == 0 || kids[1].Width == 0 ||
				int(kids[0].Width)+int(kids[1].Width) != int(width) {
				err = fmt.Errorf("expr: intern: concat widths %d+%d != %d", kids[0].Width, kids[1].Width, width)
			}
		}
	case KIte:
		if err = nkids(3); err == nil {
			if !kids[0].IsBool() || kids[1].Width != width || kids[2].Width != width {
				err = fmt.Errorf("expr: intern: ite sorts (%d ? %d : %d) -> %d invalid",
					kids[0].Width, kids[1].Width, kids[2].Width, width)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	// Zero the fields the operator does not use, so stray bytes in a
	// snapshot cannot mint a node that is structurally distinct from (but
	// semantically identical to) the canonical one.
	if kind != KConst {
		val = 0
	}
	if kind != KVar {
		name = ""
	}
	if kind != KZExt && kind != KSExt && kind != KExtract {
		aux = 0
	}
	e := &Expr{Kind: kind, Width: width, Val: val, Aux: aux, Name: name}
	if len(kids) > 0 {
		e.Kids = append([]*Expr(nil), kids...)
	}
	return b.mk(e), nil
}
