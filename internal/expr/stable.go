package expr

// Stable content fingerprints: builder- and process-independent identities
// for expressions, used to key caches that outlive the builder that minted
// the nodes (the cross-run persistent store behind the symxd daemon).
//
// The builder's own IDs and structural hashes are assigned in construction
// order, so two builders that intern the same expressions in different
// orders disagree on both. A stable fingerprint instead hashes the node's
// content — kind, width, constant value, aux, variable name — together with
// the fingerprints of its children, bottom-up. Any two structurally equal
// expressions, in any builder, in any process, fingerprint identically.
//
// Fingerprints are 128 bits (two independently seeded 64-bit FNV-1a style
// accumulators over the same content walk). A persistent store consulted
// without structural verification must not return wrong verdicts on a hash
// collision; at 128 bits the birthday bound across even billions of entries
// is negligible, where 64 bits would merely be unlikely.

import "sync"

// FP is a 128-bit stable content fingerprint.
type FP struct {
	Hi, Lo uint64
}

// IsZero reports whether the fingerprint is the (never produced) zero value.
func (f FP) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// Less orders fingerprints lexicographically (Hi, then Lo); used to
// canonicalize fingerprint sets before combining.
func (f FP) Less(g FP) bool {
	if f.Hi != g.Hi {
		return f.Hi < g.Hi
	}
	return f.Lo < g.Lo
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// altOffset/altPrime seed the second accumulator. The prime is FNV-0's
	// historical alternative (any large odd multiplier decorrelates the two
	// lanes; they see identical input bytes but mix them differently).
	altOffset64 = 0xcbf29ce484222325 ^ 0x9e3779b97f4a7c15
	altPrime64  = 0x100000001b3 ^ 0x3b9aca07
)

// fpState accumulates one fingerprint.
type fpState struct {
	hi, lo uint64
}

func newFPState() fpState { return fpState{hi: altOffset64, lo: fnvOffset64} }

func (s *fpState) mix(v uint64) {
	for i := 0; i < 8; i++ {
		b := v & 0xff
		s.lo = (s.lo ^ b) * fnvPrime64
		s.hi = (s.hi ^ b) * altPrime64
		v >>= 8
	}
}

func (s *fpState) mixString(str string) {
	s.mix(uint64(len(str)))
	for i := 0; i < len(str); i++ {
		b := uint64(str[i])
		s.lo = (s.lo ^ b) * fnvPrime64
		s.hi = (s.hi ^ b) * altPrime64
	}
}

func (s *fpState) done() FP {
	f := FP{Hi: s.hi, Lo: s.lo}
	if f.IsZero() {
		// Reserve the zero value as "never a real fingerprint" so callers
		// can use it as a sentinel. Astronomically unlikely to trigger.
		f.Lo = 1
	}
	return f
}

// Fingerprinter computes and memoizes stable fingerprints per node. It is
// safe for concurrent use (the memo is a sync.Map; racing computations of
// the same node produce identical values, so the race is benign). Nodes are
// memoized by pointer, so one Fingerprinter serves exactly one Builder —
// pair them, and retire both together (the daemon's domain rotation).
type Fingerprinter struct {
	memo sync.Map // *Expr -> FP
}

// Of returns e's stable fingerprint, computing and memoizing any part of
// the DAG not yet fingerprinted. Iterative post-order walk: merged-state
// expressions nest thousands deep, which would overflow the goroutine
// stack under naive recursion.
func (fp *Fingerprinter) Of(e *Expr) FP {
	if v, ok := fp.memo.Load(e); ok {
		return v.(FP)
	}
	type frame struct {
		e   *Expr
		kid int
	}
	stack := []frame{{e: e}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if _, ok := fp.memo.Load(fr.e); ok {
			stack = stack[:len(stack)-1]
			continue
		}
		if fr.kid < len(fr.e.Kids) {
			k := fr.e.Kids[fr.kid]
			fr.kid++
			if _, ok := fp.memo.Load(k); !ok {
				stack = append(stack, frame{e: k})
			}
			continue
		}
		s := newFPState()
		s.mix(uint64(fr.e.Kind))
		s.mix(uint64(fr.e.Width))
		s.mix(fr.e.Val)
		s.mix(uint64(fr.e.Aux))
		s.mixString(fr.e.Name)
		s.mix(uint64(len(fr.e.Kids)))
		for _, k := range fr.e.Kids {
			kf, _ := fp.memo.Load(k)
			f := kf.(FP)
			s.mix(f.Hi)
			s.mix(f.Lo)
		}
		fp.memo.Store(fr.e, s.done())
		stack = stack[:len(stack)-1]
	}
	v, _ := fp.memo.Load(e)
	return v.(FP)
}

// CombineFPs folds a set of fingerprints into one, order-independently: the
// set is sorted and de-duplicated (callers pass conjunct sets, where
// duplicates and ordering are query-formulation noise, not semantics)
// before hashing. The slice is sorted in place.
func CombineFPs(fps []FP) FP {
	// Insertion sort: conjunct sets are small (tens), and this avoids an
	// allocation-per-query sort.Slice closure on the solver's hot path.
	for i := 1; i < len(fps); i++ {
		for j := i; j > 0 && fps[j].Less(fps[j-1]); j-- {
			fps[j], fps[j-1] = fps[j-1], fps[j]
		}
	}
	s := newFPState()
	var last FP
	n := uint64(0)
	for i, f := range fps {
		if i > 0 && f == last {
			continue
		}
		last = f
		s.mix(f.Hi)
		s.mix(f.Lo)
		n++
	}
	s.mix(n)
	return s.done()
}
