// subst.go: variable substitution by memoized rebuild. The compositional
// function-summary layer records callee behavior over canonical placeholder
// parameters; applying a summary at a concrete call site instantiates every
// recorded expression by substituting the actual argument expressions for
// the placeholders. Rebuilding through the Builder constructors re-runs
// constant folding and the local simplification rules, so a summary applied
// to concrete arguments collapses toward constants for free.

package expr

// Subst returns e with every variable node that appears as a key of bind
// replaced by the bound expression, rebuilding all affected interior nodes
// through the Builder's simplifying constructors. Nodes containing no bound
// variable are returned as-is (pointer-shared). memo caches node rewrites
// and may be shared across calls with the same binding to amortize work over
// a set of related expressions (for a summary: all entries' guards, return
// values and effects share one memo).
//
// Bound expressions must be of the same sort (width) as the variables they
// replace; the constructors enforce this.
func (b *Builder) Subst(e *Expr, bind map[*Expr]*Expr, memo map[*Expr]*Expr) *Expr {
	if len(bind) == 0 || !e.symbolic {
		return e
	}
	if r, ok := bind[e]; ok {
		return r
	}
	if r, ok := memo[e]; ok {
		return r
	}
	r := b.substNode(e, bind, memo)
	memo[e] = r
	return r
}

func (b *Builder) substNode(e *Expr, bind map[*Expr]*Expr, memo map[*Expr]*Expr) *Expr {
	if e.Kind == KVar {
		return e // unbound variable (program input, not a placeholder)
	}
	kids := e.Kids
	changed := false
	nk := make([]*Expr, len(kids))
	for i, k := range kids {
		nk[i] = b.Subst(k, bind, memo)
		if nk[i] != k {
			changed = true
		}
	}
	if !changed {
		return e
	}
	switch e.Kind {
	case KNot:
		return b.Not(nk[0])
	case KAnd:
		return b.AndN(nk)
	case KOr:
		return b.OrN(nk)
	case KXor:
		return b.Xor(nk[0], nk[1])
	case KImplies:
		return b.Implies(nk[0], nk[1])
	case KEq:
		return b.Eq(nk[0], nk[1])
	case KUlt:
		return b.Ult(nk[0], nk[1])
	case KUle:
		return b.Ule(nk[0], nk[1])
	case KSlt:
		return b.Slt(nk[0], nk[1])
	case KSle:
		return b.Sle(nk[0], nk[1])
	case KAdd:
		return b.Add(nk[0], nk[1])
	case KSub:
		return b.Sub(nk[0], nk[1])
	case KMul:
		return b.Mul(nk[0], nk[1])
	case KUDiv:
		return b.UDiv(nk[0], nk[1])
	case KURem:
		return b.URem(nk[0], nk[1])
	case KSDiv:
		return b.SDiv(nk[0], nk[1])
	case KSRem:
		return b.SRem(nk[0], nk[1])
	case KBAnd:
		return b.BAnd(nk[0], nk[1])
	case KBOr:
		return b.BOr(nk[0], nk[1])
	case KBXor:
		return b.BXor(nk[0], nk[1])
	case KBNot:
		return b.BNot(nk[0])
	case KNeg:
		return b.Neg(nk[0])
	case KShl:
		return b.Shl(nk[0], nk[1])
	case KLShr:
		return b.LShr(nk[0], nk[1])
	case KAShr:
		return b.AShr(nk[0], nk[1])
	case KZExt:
		return b.ZExt(nk[0], e.Width)
	case KSExt:
		return b.SExt(nk[0], e.Width)
	case KExtract:
		return b.Extract(nk[0], uint8(e.Aux), e.Width)
	case KConcat:
		return b.Concat(nk[0], nk[1])
	case KIte:
		return b.Ite(nk[0], nk[1], nk[2])
	}
	panic("expr: Subst of unexpected kind " + e.Kind.String())
}
