package expr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// internShards is the number of independently locked hash-cons table
// segments. Interning is on the engine's hottest path (every executed
// instruction builds expressions), so when one Builder is shared by several
// exploration workers a single lock would serialize them; sharding by
// structural hash keeps contention negligible. 64 shards cover any
// plausible worker count with headroom.
const internShards = 64

// internShard is one lock-striped segment of the hash-cons table.
type internShard struct {
	mu    sync.Mutex
	table map[uint64][]*Expr // structural hash -> nodes with that hash
}

// Builder constructs hash-consed expressions. A Builder is safe for
// concurrent use: the intern table uses sharded locks and the activity
// counters are atomic, so parallel exploration workers can share one
// Builder (sharing is what makes expression identity — pointer equality
// and builder-unique IDs — globally consistent across workers).
type Builder struct {
	shards [internShards]internShard
	nextID atomic.Uint64

	true_  *Expr
	false_ *Expr

	// ruleHits counts applications per rewrite rule (see rules.go);
	// RuleHits returns the nonzero entries by name.
	ruleHits [numRules]atomic.Uint64

	// Stats counts constructor activity, used by solver benchmarks.
	Stats BuilderStats
}

// BuilderStats are atomic constructor-activity counters.
type BuilderStats struct {
	Nodes atomic.Uint64 // distinct nodes created
	Hits  atomic.Uint64 // hash-cons hits
	Folds atomic.Uint64 // constructions answered by constant folding
	Simps atomic.Uint64 // constructions answered by a simplification rule
}

// NewBuilder returns an empty builder with the boolean constants interned.
func NewBuilder() *Builder {
	b := &Builder{}
	for i := range b.shards {
		b.shards[i].table = make(map[uint64][]*Expr, 16)
	}
	b.false_ = b.mk(&Expr{Kind: KConst, Width: 0, Val: 0})
	b.true_ = b.mk(&Expr{Kind: KConst, Width: 0, Val: 1})
	return b
}

// NumNodes returns the number of distinct interned nodes.
func (b *Builder) NumNodes() int { return int(b.Stats.Nodes.Load()) }

func hashExpr(e *Expr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.Kind))
	mix(uint64(e.Width))
	mix(e.Val)
	mix(uint64(e.Aux))
	for i := 0; i < len(e.Name); i++ {
		h ^= uint64(e.Name[i])
		h *= prime64
	}
	for _, k := range e.Kids {
		mix(k.id)
	}
	return h
}

func sameExpr(a, e *Expr) bool {
	if a.Kind != e.Kind || a.Width != e.Width || a.Val != e.Val ||
		a.Aux != e.Aux || a.Name != e.Name || len(a.Kids) != len(e.Kids) {
		return false
	}
	for i := range a.Kids {
		if a.Kids[i] != e.Kids[i] {
			return false
		}
	}
	return true
}

// mk interns e, returning the canonical node. All of e's derived fields are
// filled in before the node is published into the shard table, so every
// reader — whether it got the pointer from this call or from a later lookup
// under the shard lock — sees a fully initialized, immutable node.
func (b *Builder) mk(e *Expr) *Expr {
	e.hash = hashExpr(e)
	sh := &b.shards[e.hash%internShards]
	sh.mu.Lock()
	for _, cand := range sh.table[e.hash] {
		if sameExpr(cand, e) {
			sh.mu.Unlock()
			b.Stats.Hits.Add(1)
			return cand
		}
	}
	e.id = b.nextID.Add(1) - 1
	e.symbolic = e.Kind == KVar
	e.nodes = 1
	for _, k := range e.Kids {
		e.symbolic = e.symbolic || k.symbolic
		e.nodes += k.nodes
	}
	sh.table[e.hash] = append(sh.table[e.hash], e)
	sh.mu.Unlock()
	b.Stats.Nodes.Add(1)
	return e
}

// --- Leaves ---

// True returns the boolean constant true.
func (b *Builder) True() *Expr { return b.true_ }

// False returns the boolean constant false.
func (b *Builder) False() *Expr { return b.false_ }

// Bool returns the boolean constant for v.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		return b.true_
	}
	return b.false_
}

// Const returns the w-bit constant v (truncated to w bits). w must be 1..64.
func (b *Builder) Const(v uint64, w uint8) *Expr {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("expr: Const width %d out of range", w))
	}
	return b.mk(&Expr{Kind: KConst, Width: w, Val: truncate(v, w)})
}

// Var returns the w-bit input variable with the given name. w==0 makes a
// boolean variable. Variables are identified by name: two calls with the
// same name and width return the same node.
func (b *Builder) Var(name string, w uint8) *Expr {
	if w > 64 {
		panic(fmt.Sprintf("expr: Var width %d out of range", w))
	}
	return b.mk(&Expr{Kind: KVar, Width: w, Name: name})
}

// --- Boolean connectives ---

func (b *Builder) checkBool(op string, es ...*Expr) {
	for _, e := range es {
		if !e.IsBool() {
			panic(fmt.Sprintf("expr: %s applied to non-bool %s", op, e))
		}
	}
}

// Not returns the boolean negation of x.
func (b *Builder) Not(x *Expr) *Expr {
	b.checkBool("not", x)
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Bool(x.Val == 0)
	}
	if r := b.applyRules(KNot, x, nil); r != nil {
		return r
	}
	return b.mk(&Expr{Kind: KNot, Kids: []*Expr{x}})
}

// And returns the boolean conjunction of x and y. Conjunctions are n-ary
// and canonical: see AndN.
func (b *Builder) And(x, y *Expr) *Expr {
	b.checkBool("and", x, y)
	return b.naryBool(KAnd, []*Expr{x, y})
}

// Or returns the boolean disjunction of x and y. Disjunctions are n-ary
// and canonical: see OrN.
func (b *Builder) Or(x, y *Expr) *Expr {
	b.checkBool("or", x, y)
	return b.naryBool(KOr, []*Expr{x, y})
}

// AndN returns the canonical n-ary conjunction of es: nested conjunctions
// flatten, kids sort by node ID, duplicates and absorbed members drop, a
// complementary pair collapses the whole term to ⊥. The empty conjunction
// is ⊤. The slice is not retained.
func (b *Builder) AndN(es []*Expr) *Expr {
	b.checkBool("and", es...)
	return b.naryBool(KAnd, es)
}

// OrN returns the canonical n-ary disjunction of es, dual to AndN, with
// one extra rule: disjuncts sharing common conjuncts factor them out
// ((p∧a) ∨ (p∧b) → p ∧ (a∨b)), which keeps merged-state guards small. The
// empty disjunction is ⊥. The slice is not retained.
func (b *Builder) OrN(es []*Expr) *Expr {
	b.checkBool("or", es...)
	return b.naryBool(KOr, es)
}

// Xor returns the boolean exclusive or of x and y.
func (b *Builder) Xor(x, y *Expr) *Expr {
	b.checkBool("xor", x, y)
	if x.IsConst() && y.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Bool(x.Val != y.Val)
	}
	if r := b.applyRules(KXor, x, y); r != nil {
		return r
	}
	x, y = orderPair(x, y)
	return b.mk(&Expr{Kind: KXor, Kids: []*Expr{x, y}})
}

// Implies returns x → y.
func (b *Builder) Implies(x, y *Expr) *Expr {
	b.checkBool("=>", x, y)
	if r := b.applyRules(KImplies, x, y); r != nil {
		return r
	}
	return b.mk(&Expr{Kind: KImplies, Kids: []*Expr{x, y}})
}

// AndAll is AndN: the conjunction of es as one canonical n-ary node.
func (b *Builder) AndAll(es []*Expr) *Expr { return b.AndN(es) }

// OrAll is OrN: the disjunction of es as one canonical n-ary node.
func (b *Builder) OrAll(es []*Expr) *Expr { return b.OrN(es) }

// orderPair orders a commutative pair by node ID for canonical form.
func orderPair(x, y *Expr) (*Expr, *Expr) {
	if y.id < x.id {
		return y, x
	}
	return x, y
}

// --- Comparisons ---

func (b *Builder) checkSameBV(op string, x, y *Expr) {
	if x.Width == 0 || y.Width == 0 || x.Width != y.Width {
		panic(fmt.Sprintf("expr: %s width mismatch: %s vs %s", op, x, y))
	}
}

// Eq returns x = y. Operands must share a sort (bool or same-width BV).
func (b *Builder) Eq(x, y *Expr) *Expr {
	if x.Width != y.Width {
		panic(fmt.Sprintf("expr: = width mismatch: %s vs %s", x, y))
	}
	if x.IsConst() && y.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Bool(x.Val == y.Val)
	}
	if r := b.applyRules(KEq, x, y); r != nil {
		return r
	}
	x, y = orderPair(x, y)
	return b.mk(&Expr{Kind: KEq, Kids: []*Expr{x, y}})
}

// Ne returns ¬(x = y).
func (b *Builder) Ne(x, y *Expr) *Expr { return b.Not(b.Eq(x, y)) }

func (b *Builder) cmp(k Kind, x, y *Expr, fold func(a, c uint64, w uint8) bool) *Expr {
	b.checkSameBV(k.String(), x, y)
	if x.IsConst() && y.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Bool(fold(x.Val, y.Val, x.Width))
	}
	if r := b.applyRules(k, x, y); r != nil {
		return r
	}
	return b.mk(&Expr{Kind: k, Kids: []*Expr{x, y}})
}

// Ult returns the unsigned comparison x < y.
func (b *Builder) Ult(x, y *Expr) *Expr {
	return b.cmp(KUlt, x, y, func(a, c uint64, _ uint8) bool { return a < c })
}

// Ule returns the unsigned comparison x ≤ y.
func (b *Builder) Ule(x, y *Expr) *Expr {
	return b.cmp(KUle, x, y, func(a, c uint64, _ uint8) bool { return a <= c })
}

// Slt returns the signed comparison x < y.
func (b *Builder) Slt(x, y *Expr) *Expr {
	return b.cmp(KSlt, x, y, func(a, c uint64, w uint8) bool {
		return int64(signExtend(a, w)) < int64(signExtend(c, w))
	})
}

// Sle returns the signed comparison x ≤ y.
func (b *Builder) Sle(x, y *Expr) *Expr {
	return b.cmp(KSle, x, y, func(a, c uint64, w uint8) bool {
		return int64(signExtend(a, w)) <= int64(signExtend(c, w))
	})
}

// Ugt returns x > y (unsigned), encoded as Ult(y, x).
func (b *Builder) Ugt(x, y *Expr) *Expr { return b.Ult(y, x) }

// Uge returns x ≥ y (unsigned), encoded as Ule(y, x).
func (b *Builder) Uge(x, y *Expr) *Expr { return b.Ule(y, x) }

// Sgt returns x > y (signed), encoded as Slt(y, x).
func (b *Builder) Sgt(x, y *Expr) *Expr { return b.Slt(y, x) }

// Sge returns x ≥ y (signed), encoded as Sle(y, x).
func (b *Builder) Sge(x, y *Expr) *Expr { return b.Sle(y, x) }

// --- Arithmetic ---

func (b *Builder) arith(k Kind, x, y *Expr, fold func(a, c uint64, w uint8) uint64) *Expr {
	b.checkSameBV(k.String(), x, y)
	if x.IsConst() && y.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(fold(x.Val, y.Val, x.Width), x.Width)
	}
	return b.mk(&Expr{Kind: k, Width: x.Width, Kids: []*Expr{x, y}})
}

// Add returns x + y (modular).
func (b *Builder) Add(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KAdd, x, y); r != nil {
			return r
		}
	}
	if !x.IsConst() && y.IsConst() || (!x.IsConst() && !y.IsConst() && y.id < x.id) {
		x, y = y, x // canonical: constant or lower-id first
	}
	return b.arith(KAdd, x, y, func(a, c uint64, _ uint8) uint64 { return a + c })
}

// Sub returns x − y (modular).
func (b *Builder) Sub(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KSub, x, y); r != nil {
			return r
		}
	}
	return b.arith(KSub, x, y, func(a, c uint64, _ uint8) uint64 { return a - c })
}

// Mul returns x × y (modular).
func (b *Builder) Mul(x, y *Expr) *Expr {
	if x.IsConst() && x.Val == 0 || y.IsConst() && y.Val == 0 {
		b.Stats.Folds.Add(1)
		return b.Const(0, x.Width)
	}
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KMul, x, y); r != nil {
			return r
		}
	}
	x, y = orderPair(x, y)
	return b.arith(KMul, x, y, func(a, c uint64, _ uint8) uint64 { return a * c })
}

// UDiv returns x ÷ y unsigned; division by zero yields all-ones (SMT-LIB).
func (b *Builder) UDiv(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KUDiv, x, y); r != nil {
			return r
		}
	}
	return b.arith(KUDiv, x, y, func(a, c uint64, w uint8) uint64 {
		if c == 0 {
			return mask(w)
		}
		return a / c
	})
}

// URem returns x mod y unsigned; x mod 0 = x (SMT-LIB).
func (b *Builder) URem(x, y *Expr) *Expr {
	return b.arith(KURem, x, y, func(a, c uint64, _ uint8) uint64 {
		if c == 0 {
			return a
		}
		return a % c
	})
}

// SDiv returns x ÷ y signed (truncating); ÷0 yields 1 or −1 per SMT-LIB.
func (b *Builder) SDiv(x, y *Expr) *Expr {
	return b.arith(KSDiv, x, y, func(a, c uint64, w uint8) uint64 {
		sa, sc := int64(signExtend(a, w)), int64(signExtend(c, w))
		if sc == 0 {
			if sa < 0 {
				return 1
			}
			return mask(w) // -1
		}
		if sa == -1<<63 && sc == -1 {
			return a
		}
		return uint64(sa / sc)
	})
}

// SRem returns x mod y signed (sign of dividend); mod 0 = x per SMT-LIB.
func (b *Builder) SRem(x, y *Expr) *Expr {
	return b.arith(KSRem, x, y, func(a, c uint64, w uint8) uint64 {
		sa, sc := int64(signExtend(a, w)), int64(signExtend(c, w))
		if sc == 0 {
			return a
		}
		if sa == -1<<63 && sc == -1 {
			return 0
		}
		return uint64(sa % sc)
	})
}

// Neg returns −x (two's complement).
func (b *Builder) Neg(x *Expr) *Expr {
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(-x.Val, x.Width)
	}
	if r := b.applyRules(KNeg, x, nil); r != nil {
		return r
	}
	return b.mk(&Expr{Kind: KNeg, Width: x.Width, Kids: []*Expr{x}})
}

// --- Bitwise and shifts ---

// BAnd returns the bitwise conjunction x & y.
func (b *Builder) BAnd(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KBAnd, x, y); r != nil {
			return r
		}
	}
	x, y = orderPair(x, y)
	return b.arith(KBAnd, x, y, func(a, c uint64, _ uint8) uint64 { return a & c })
}

// BOr returns the bitwise disjunction x | y.
func (b *Builder) BOr(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KBOr, x, y); r != nil {
			return r
		}
	}
	x, y = orderPair(x, y)
	return b.arith(KBOr, x, y, func(a, c uint64, _ uint8) uint64 { return a | c })
}

// BXor returns the bitwise exclusive or x ^ y.
func (b *Builder) BXor(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KBXor, x, y); r != nil {
			return r
		}
	}
	x, y = orderPair(x, y)
	return b.arith(KBXor, x, y, func(a, c uint64, _ uint8) uint64 { return a ^ c })
}

// BNot returns the bitwise complement of x.
func (b *Builder) BNot(x *Expr) *Expr {
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(^x.Val, x.Width)
	}
	if r := b.applyRules(KBNot, x, nil); r != nil {
		return r
	}
	return b.mk(&Expr{Kind: KBNot, Width: x.Width, Kids: []*Expr{x}})
}

// Shl returns x << y; shifts ≥ width yield zero.
func (b *Builder) Shl(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KShl, x, y); r != nil {
			return r
		}
	}
	return b.arith(KShl, x, y, func(a, c uint64, w uint8) uint64 {
		if c >= uint64(w) {
			return 0
		}
		return a << c
	})
}

// LShr returns the logical right shift x >> y; shifts ≥ width yield zero.
func (b *Builder) LShr(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KLShr, x, y); r != nil {
			return r
		}
	}
	return b.arith(KLShr, x, y, func(a, c uint64, w uint8) uint64 {
		if c >= uint64(w) {
			return 0
		}
		return a >> c
	})
}

// AShr returns the arithmetic right shift x >> y (sign filling).
func (b *Builder) AShr(x, y *Expr) *Expr {
	if !(x.IsConst() && y.IsConst()) {
		if r := b.applyRules(KAShr, x, y); r != nil {
			return r
		}
	}
	return b.arith(KAShr, x, y, func(a, c uint64, w uint8) uint64 {
		sa := int64(signExtend(a, w))
		if c >= uint64(w) {
			c = uint64(w) - 1
		}
		return truncate(uint64(sa>>c), w)
	})
}

// --- Width changing ---

// ZExt zero-extends x to width w (w ≥ x.Width). Extending to the same width
// returns x unchanged.
func (b *Builder) ZExt(x *Expr, w uint8) *Expr {
	if w < x.Width || x.Width == 0 || w > 64 {
		panic(fmt.Sprintf("expr: zext %d -> %d invalid", x.Width, w))
	}
	if w == x.Width {
		return x
	}
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(x.Val, w)
	}
	return b.mk(&Expr{Kind: KZExt, Width: w, Aux: uint16(x.Width), Kids: []*Expr{x}})
}

// SExt sign-extends x to width w (w ≥ x.Width).
func (b *Builder) SExt(x *Expr, w uint8) *Expr {
	if w < x.Width || x.Width == 0 || w > 64 {
		panic(fmt.Sprintf("expr: sext %d -> %d invalid", x.Width, w))
	}
	if w == x.Width {
		return x
	}
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(signExtend(x.Val, x.Width), w)
	}
	return b.mk(&Expr{Kind: KSExt, Width: w, Aux: uint16(x.Width), Kids: []*Expr{x}})
}

// Extract returns bits [lo+w-1 : lo] of x as a w-bit value.
func (b *Builder) Extract(x *Expr, lo, w uint8) *Expr {
	if w == 0 || int(lo)+int(w) > int(x.Width) {
		panic(fmt.Sprintf("expr: extract [%d+%d] of width-%d", lo, w, x.Width))
	}
	if lo == 0 && w == x.Width {
		return x
	}
	if x.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(x.Val>>lo, w)
	}
	if x.Kind == KZExt || x.Kind == KSExt {
		src := x.Kids[0]
		if int(lo)+int(w) <= int(src.Width) {
			b.hit(rExtractExt)
			return b.Extract(src, lo, w)
		}
	}
	if x.Kind == KConcat {
		hi, lo2 := x.Kids[0], x.Kids[1]
		if int(lo)+int(w) <= int(lo2.Width) {
			b.hit(rExtractConcat)
			return b.Extract(lo2, lo, w)
		}
		if int(lo) >= int(lo2.Width) {
			b.hit(rExtractConcat)
			return b.Extract(hi, lo-lo2.Width, w)
		}
	}
	return b.mk(&Expr{Kind: KExtract, Width: w, Aux: uint16(lo), Kids: []*Expr{x}})
}

// Concat returns hi ∘ lo, with hi occupying the most significant bits.
func (b *Builder) Concat(hi, lo *Expr) *Expr {
	w := int(hi.Width) + int(lo.Width)
	if hi.Width == 0 || lo.Width == 0 || w > 64 {
		panic(fmt.Sprintf("expr: concat widths %d+%d invalid", hi.Width, lo.Width))
	}
	if hi.IsConst() && lo.IsConst() {
		b.Stats.Folds.Add(1)
		return b.Const(hi.Val<<lo.Width|lo.Val, uint8(w))
	}
	if hi.IsConst() && hi.Val == 0 {
		b.hit(rConcatZeroHi)
		return b.ZExt(lo, uint8(w))
	}
	return b.mk(&Expr{Kind: KConcat, Width: uint8(w), Kids: []*Expr{hi, lo}})
}

// --- Ite ---

// Ite returns if-then-else over booleans or same-width bitvectors.
func (b *Builder) Ite(c, t, f *Expr) *Expr {
	b.checkBool("ite", c)
	if t.Width != f.Width {
		panic(fmt.Sprintf("expr: ite arm width mismatch: %s vs %s", t, f))
	}
	if c.IsTrue() {
		b.Stats.Folds.Add(1)
		return t
	}
	if c.IsFalse() {
		b.Stats.Folds.Add(1)
		return f
	}
	if t == f {
		b.hit(rIteSameArms)
		return t
	}
	if c.Kind == KNot {
		b.hit(rIteNotCond)
		c, t, f = c.Kids[0], f, t
	}
	if t.Width == 0 {
		// Boolean ite simplifications.
		switch {
		case t.IsTrue() && f.IsFalse():
			b.hit(rIteBoolLower)
			return c
		case t.IsFalse() && f.IsTrue():
			b.hit(rIteBoolLower)
			return b.Not(c)
		case t.IsTrue():
			b.hit(rIteBoolLower)
			return b.Or(c, f)
		case t.IsFalse():
			b.hit(rIteBoolLower)
			return b.And(b.Not(c), f)
		case f.IsTrue():
			b.hit(rIteBoolLower)
			return b.Or(b.Not(c), t)
		case f.IsFalse():
			b.hit(rIteBoolLower)
			return b.And(c, t)
		}
	}
	// ite(c, ite(c, a, _), f) = ite(c, a, f), same for the else arm.
	if t.Kind == KIte && t.Kids[0] == c {
		b.hit(rIteNested)
		t = t.Kids[1]
	}
	if f.Kind == KIte && f.Kids[0] == c {
		b.hit(rIteNested)
		f = f.Kids[2]
	}
	if t == f {
		return t
	}
	return b.mk(&Expr{Kind: KIte, Width: t.Width, Kids: []*Expr{c, t, f}})
}

// SelectIte builds the read of cells[idx] as an ite chain over the cells,
// mirroring how the engine lowers a symbolic-index array read. Reads out of
// bounds evaluate to the given out-of-bounds value. Cells must share a width.
func (b *Builder) SelectIte(cells []*Expr, idx *Expr, oob *Expr) *Expr {
	if idx.IsConst() {
		i := int(idx.Val)
		if i >= 0 && i < len(cells) {
			return cells[i]
		}
		return oob
	}
	res := oob
	// Build from the highest index down so low indices end up outermost,
	// which keeps common small-index reads cheap after simplification.
	for i := len(cells) - 1; i >= 0; i-- {
		res = b.Ite(b.Eq(idx, b.Const(uint64(i), idx.Width)), cells[i], res)
	}
	return res
}

// SortedVars returns the distinct variables of e sorted by name (then width),
// for deterministic iteration.
func SortedVars(e *Expr) []*Expr {
	set := map[*Expr]bool{}
	e.Vars(set)
	out := make([]*Expr, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Width < out[j].Width
	})
	return out
}
