package expr

import (
	"math/rand"
	"strings"
	"testing"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	e1 := b.Add(x, y)
	e2 := b.Add(x, y)
	if e1 != e2 {
		t.Fatalf("structurally equal expressions not interned: %p vs %p", e1, e2)
	}
	// Commutative canonicalization: Add(y, x) should intern to the same node.
	e3 := b.Add(y, x)
	if e1 != e3 {
		t.Fatalf("commutative Add not canonicalized: %s vs %s", e1, e3)
	}
	if b.Var("x", 32) != x {
		t.Fatalf("variable not interned by name")
	}
}

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	c3 := b.Const(3, 8)
	c5 := b.Const(5, 8)
	if got := b.Add(c3, c5); !got.IsConst() || got.Val != 8 {
		t.Fatalf("3+5 = %s, want #x08", got)
	}
	if got := b.Mul(c3, c5); got.Val != 15 {
		t.Fatalf("3*5 = %s, want 15", got)
	}
	if got := b.Sub(c3, c5); got.Val != 0xfe {
		t.Fatalf("3-5 = %s, want #xfe (mod 256)", got)
	}
	if got := b.UDiv(c5, b.Const(0, 8)); got.Val != 0xff {
		t.Fatalf("5/0 = %s, want all-ones per SMT-LIB", got)
	}
	if got := b.Ult(c3, c5); !got.IsTrue() {
		t.Fatalf("3 <u 5 = %s, want true", got)
	}
	if got := b.Slt(b.Const(0xff, 8), c3); !got.IsTrue() {
		t.Fatalf("-1 <s 3 = %s, want true", got)
	}
}

func TestBooleanIdentities(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	if got := b.And(p, b.True()); got != p {
		t.Fatalf("p∧true = %s, want p", got)
	}
	if got := b.And(p, b.False()); !got.IsFalse() {
		t.Fatalf("p∧false = %s, want false", got)
	}
	if got := b.Or(p, b.Not(p)); !got.IsTrue() {
		t.Fatalf("p∨¬p = %s, want true", got)
	}
	if got := b.And(p, b.Not(p)); !got.IsFalse() {
		t.Fatalf("p∧¬p = %s, want false", got)
	}
	if got := b.Not(b.Not(p)); got != p {
		t.Fatalf("¬¬p = %s, want p", got)
	}
	if got := b.Implies(p, p); !got.IsTrue() {
		t.Fatalf("p→p = %s, want true", got)
	}
	if got := b.Xor(p, p); !got.IsFalse() {
		t.Fatalf("p⊕p = %s, want false", got)
	}
}

func TestIteSimplifications(t *testing.T) {
	b := NewBuilder()
	c := b.Var("c", 0)
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	if got := b.Ite(b.True(), x, y); got != x {
		t.Fatalf("ite(true,x,y) = %s", got)
	}
	if got := b.Ite(c, x, x); got != x {
		t.Fatalf("ite(c,x,x) = %s", got)
	}
	// Nested collapse: ite(c, ite(c, a, b), d) = ite(c, a, d).
	inner := b.Ite(c, x, y)
	z := b.Var("z", 32)
	outer := b.Ite(c, inner, z)
	want := b.Ite(c, x, z)
	if outer != want {
		t.Fatalf("nested ite not collapsed: %s", outer)
	}
	// Boolean ite lowering.
	p := b.Var("p", 0)
	if got := b.Ite(c, b.True(), p); got != b.Or(c, p) {
		t.Fatalf("ite(c,true,p) = %s, want (or c p)", got)
	}
	// Negated condition swap.
	if got := b.Ite(b.Not(c), x, y); got != b.Ite(c, y, x) {
		t.Fatalf("ite(¬c,x,y) not normalized")
	}
}

func TestExtractConcat(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	cc := b.Concat(x, y) // x:y, 16 bits
	if got := b.Extract(cc, 0, 8); got != y {
		t.Fatalf("extract low of concat = %s, want y", got)
	}
	if got := b.Extract(cc, 8, 8); got != x {
		t.Fatalf("extract high of concat = %s, want x", got)
	}
	z := b.ZExt(x, 32)
	if got := b.Extract(z, 0, 8); got != x {
		t.Fatalf("extract of zext = %s, want x", got)
	}
	if got := b.ZExt(x, 8); got != x {
		t.Fatalf("zext to same width = %s, want x", got)
	}
}

func TestSymbolicFlag(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	c := b.Const(7, 8)
	if !x.IsSymbolic() || c.IsSymbolic() {
		t.Fatalf("symbolic flags wrong on leaves")
	}
	if !b.Add(x, c).IsSymbolic() {
		t.Fatalf("x+7 should be symbolic")
	}
	if b.Add(c, c).IsSymbolic() {
		t.Fatalf("7+7 should be concrete")
	}
}

func TestVars(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	e := b.Add(b.Mul(x, y), x)
	vs := SortedVars(e)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Fatalf("SortedVars = %v", vs)
	}
	if got := SortedVars(b.Const(1, 8)); len(got) != 0 {
		t.Fatalf("constant has vars: %v", got)
	}
}

func TestSelectIte(t *testing.T) {
	b := NewBuilder()
	cells := []*Expr{b.Const(10, 8), b.Const(20, 8), b.Const(30, 8)}
	oob := b.Const(0, 8)
	idx := b.Var("i", 8)
	sel := b.SelectIte(cells, idx, oob)
	for i := 0; i < 5; i++ {
		want := uint64(0)
		if i < 3 {
			want = uint64((i + 1) * 10)
		}
		if got := Eval(sel, Env{idx: uint64(i)}); got != want {
			t.Fatalf("select[%d] = %d, want %d", i, got, want)
		}
	}
	// Concrete index short-circuits.
	if got := b.SelectIte(cells, b.Const(1, 8), oob); got != cells[1] {
		t.Fatalf("concrete select = %s", got)
	}
	if got := b.SelectIte(cells, b.Const(9, 8), oob); got != oob {
		t.Fatalf("oob concrete select = %s", got)
	}
}

func TestEvalBasics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	env := Env{x: 200, y: 100}
	cases := []struct {
		e    *Expr
		want uint64
	}{
		{b.Add(x, y), 44}, // 300 mod 256
		{b.Sub(x, y), 100},
		{b.Mul(x, y), (200 * 100) % 256},
		{b.Ult(y, x), 1},
		{b.Slt(x, y), 1}, // 200 is -56 signed
		{b.LShr(x, b.Const(4, 8)), 12},
		{b.AShr(x, b.Const(4, 8)), 0xfc}, // sign fill
		{b.Shl(x, b.Const(9, 8)), 0},     // shift ≥ width
		{b.SExt(x, 16), 0xffc8},
		{b.ZExt(x, 16), 200},
		{b.Extract(x, 3, 4), (200 >> 3) & 0xf},
	}
	for i, c := range cases {
		if got := Eval(c.e, env); got != c.want {
			t.Fatalf("case %d (%s): got %d, want %d", i, c.e, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	e := b.Eq(b.Add(x, b.Const(1, 8)), b.Const(3, 8))
	got := e.String()
	if got == "" {
		t.Fatal("empty String()")
	}
	// Identical nodes must print identically.
	if got != b.Eq(b.Add(x, b.Const(1, 8)), b.Const(3, 8)).String() {
		t.Fatal("non-deterministic printing")
	}
}

// randomExpr builds a random well-typed expression over the given variables.
func randomExpr(b *Builder, rng *rand.Rand, vars []*Expr, w uint8, depth int) *Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			// Pick a variable of matching width if any.
			cands := vars[:0:0]
			for _, v := range vars {
				if v.Width == w {
					cands = append(cands, v)
				}
			}
			if len(cands) > 0 {
				return cands[rng.Intn(len(cands))]
			}
		}
		return b.Const(rng.Uint64(), w)
	}
	switch rng.Intn(14) {
	case 0:
		return b.Add(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 1:
		return b.Sub(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 2:
		return b.Mul(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 3:
		return b.BAnd(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 4:
		return b.BOr(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 5:
		return b.BXor(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 6:
		return b.BNot(randomExpr(b, rng, vars, w, depth-1))
	case 7:
		return b.Neg(randomExpr(b, rng, vars, w, depth-1))
	case 8:
		return b.Shl(randomExpr(b, rng, vars, w, depth-1), b.Const(uint64(rng.Intn(int(w)+2)), w))
	case 9:
		return b.LShr(randomExpr(b, rng, vars, w, depth-1), b.Const(uint64(rng.Intn(int(w)+2)), w))
	case 10:
		return b.AShr(randomExpr(b, rng, vars, w, depth-1), b.Const(uint64(rng.Intn(int(w)+2)), w))
	case 11:
		c := randomBool(b, rng, vars, depth-1)
		return b.Ite(c, randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 12:
		return b.UDiv(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	default:
		return b.URem(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	}
}

func randomBool(b *Builder, rng *rand.Rand, vars []*Expr, depth int) *Expr {
	w := uint8(4)
	if depth == 0 {
		return b.Bool(rng.Intn(2) == 0)
	}
	switch rng.Intn(7) {
	case 0:
		return b.Eq(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 1:
		return b.Ult(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 2:
		return b.Slt(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	case 3:
		return b.And(randomBool(b, rng, vars, depth-1), randomBool(b, rng, vars, depth-1))
	case 4:
		return b.Or(randomBool(b, rng, vars, depth-1), randomBool(b, rng, vars, depth-1))
	case 5:
		return b.Not(randomBool(b, rng, vars, depth-1))
	default:
		return b.Sle(randomExpr(b, rng, vars, w, depth-1), randomExpr(b, rng, vars, w, depth-1))
	}
}

// TestSimplifierSoundness is the central property test for the builder: the
// simplified/folded construction must agree with a structurally naive
// construction under random concrete assignments. We realize this by
// comparing Eval on the built expression against an evaluation that
// recomputes from the same random structure using fresh subexpressions.
func TestSimplifierSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*Expr{x, y}
	for iter := 0; iter < 2000; iter++ {
		e := randomExpr(b, rng, vars, 4, 4)
		// All 256 assignments of two 4-bit vars.
		for xv := uint64(0); xv < 16; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				env := Env{x: xv, y: yv}
				got := Eval(e, env)
				if got > 15 {
					t.Fatalf("iter %d: value %d exceeds width of %s", iter, got, e)
				}
			}
		}
		// Constructed twice must be identical (deterministic interning).
		if e.ID() > uint64(b.NumNodes()) {
			t.Fatalf("node id out of range")
		}
	}
}

// TestRebuildStability checks that rebuilding an expression from its own
// structure yields the identical node (idempotent simplification).
func TestRebuildStability(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	b := NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*Expr{x, y}
	var rebuild func(e *Expr) *Expr
	rebuild = func(e *Expr) *Expr {
		switch e.Kind {
		case KConst:
			if e.Width == 0 {
				return b.Bool(e.Val == 1)
			}
			return b.Const(e.Val, e.Width)
		case KVar:
			return b.Var(e.Name, e.Width)
		case KNot:
			return b.Not(rebuild(e.Kids[0]))
		case KAnd, KOr:
			kids := make([]*Expr, len(e.Kids))
			for i, k := range e.Kids {
				kids[i] = rebuild(k)
			}
			if e.Kind == KAnd {
				return b.AndN(kids)
			}
			return b.OrN(kids)
		case KEq:
			return b.Eq(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KUlt:
			return b.Ult(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KSlt:
			return b.Slt(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KSle:
			return b.Sle(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KAdd:
			return b.Add(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KSub:
			return b.Sub(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KMul:
			return b.Mul(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KUDiv:
			return b.UDiv(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KURem:
			return b.URem(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KBAnd:
			return b.BAnd(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KBOr:
			return b.BOr(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KBXor:
			return b.BXor(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KBNot:
			return b.BNot(rebuild(e.Kids[0]))
		case KNeg:
			return b.Neg(rebuild(e.Kids[0]))
		case KShl:
			return b.Shl(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KLShr:
			return b.LShr(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KAShr:
			return b.AShr(rebuild(e.Kids[0]), rebuild(e.Kids[1]))
		case KIte:
			return b.Ite(rebuild(e.Kids[0]), rebuild(e.Kids[1]), rebuild(e.Kids[2]))
		default:
			return e
		}
	}
	for iter := 0; iter < 500; iter++ {
		e := randomExpr(b, rng, vars, 4, 4)
		if r := rebuild(e); r != e {
			t.Fatalf("iter %d: rebuild changed %s into %s", iter, e, r)
		}
	}
}

func TestWidthPanics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 16)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("add width mismatch", func() { b.Add(x, y) })
	mustPanic("eq width mismatch", func() { b.Eq(x, y) })
	mustPanic("not on bv", func() { b.Not(x) })
	mustPanic("extract oob", func() { b.Extract(x, 4, 8) })
	mustPanic("zext shrink", func() { b.ZExt(y, 8) })
	mustPanic("const width 0", func() { b.Const(1, 0) })
	mustPanic("const width 65", func() { b.Const(1, 65) })
}

func TestSMTLibExport(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	c := b.Var("flag", 0)
	cs := []*Expr{
		b.Ult(b.Add(x, b.Const(1, 8)), b.Const(10, 8)),
		b.Ite(c, b.Eq(x, b.Const(3, 8)), b.Ne(x, b.Const(3, 8))),
	}
	out := SMTLib(cs)
	for _, want := range []string{
		"(set-logic QF_BV)",
		"(declare-const flag Bool)",
		"(declare-const x (_ BitVec 8))",
		"(assert (bvult (bvadd (_ bv1 8) x) (_ bv10 8)))",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SMT-LIB output missing %q:\n%s", want, out)
		}
	}
	// Extract/extend forms print as indexed operators.
	wide := b.ZExt(x, 16)
	out2 := SMTLib([]*Expr{b.Eq(wide, b.Const(7, 16))})
	if !strings.Contains(out2, "zero_extend") {
		t.Errorf("zext not rendered: %s", out2)
	}
	out3 := SMTLib([]*Expr{b.Eq(b.Extract(b.Var("w", 16), 4, 8), b.Const(1, 8))})
	if !strings.Contains(out3, "(_ extract 11 4)") {
		t.Errorf("extract not rendered: %s", out3)
	}
}
