package expr

// Micro-benchmarks for the hash-consed expression layer: construction with
// consing hits, constant folding, and evaluation — the per-instruction costs
// of the engine's hot loop.

import "testing"

func BenchmarkBuilderConsHit(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	y := bld.Var("y", 32)
	first := bld.Add(bld.Mul(x, y), bld.Const(7, 32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bld.Add(bld.Mul(x, y), bld.Const(7, 32)) != first {
			b.Fatal("hash consing missed")
		}
	}
}

func BenchmarkConstFold(b *testing.B) {
	bld := NewBuilder()
	for i := 0; i < b.N; i++ {
		// Varying constants defeat the cons cache, so every iteration
		// exercises the folding path itself.
		c := bld.Const(uint64(i)&0xffff, 32)
		v := bld.Mul(bld.Add(c, bld.Const(3, 32)), bld.Const(5, 32))
		if !v.IsConst() {
			b.Fatal("constant expression did not fold")
		}
	}
}

func BenchmarkEvalDeepTree(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 32)
	e := x
	for i := 0; i < 64; i++ {
		e = bld.Add(bld.Mul(e, bld.Const(3, 32)), x)
	}
	env := Env{x: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(e, env)
	}
}

func BenchmarkIteChainBuild(b *testing.B) {
	bld := NewBuilder()
	x := bld.Var("x", 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := bld.Const(0, 8)
		for k := 0; k < 32; k++ {
			v = bld.Ite(bld.Eq(x, bld.Const(uint64(k), 8)),
				bld.Const(uint64(k+i)&0xff, 8), v)
		}
	}
}
