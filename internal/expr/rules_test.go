package expr

// Tests for the table-driven rewrite layer: canonical n-ary connective
// construction, the structural rules (flatten, dedupe, complement,
// absorption, factoring), per-rule hit counters, Simplify/SimplifySet, and
// the SMT-LIB printer's golden output on n-ary nodes.

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNaryFlattenSortDedupe(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)

	nested := b.And(p, b.And(q, r))
	if nested.Kind != KAnd || len(nested.Kids) != 3 {
		t.Fatalf("nested And did not flatten: %s", nested)
	}
	for i := 1; i < len(nested.Kids); i++ {
		if nested.Kids[i-1].ID() >= nested.Kids[i].ID() {
			t.Fatalf("kids not ID-sorted: %s", nested)
		}
	}
	// Any association and order interns to the same node.
	if got := b.And(b.And(r, p), q); got != nested {
		t.Fatalf("association changed identity: %s vs %s", got, nested)
	}
	if got := b.AndN([]*Expr{r, q, p, q, r}); got != nested {
		t.Fatalf("duplicates not eliminated: %s", got)
	}
	// Dual for Or.
	orN := b.OrN([]*Expr{p, q, r})
	if orN.Kind != KOr || len(orN.Kids) != 3 {
		t.Fatalf("OrN shape: %s", orN)
	}
	if got := b.Or(q, b.Or(r, p)); got != orN {
		t.Fatalf("Or association changed identity: %s vs %s", got, orN)
	}
}

func TestNaryUnitsAndZeros(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	if got := b.AndN([]*Expr{p, b.True(), q}); got != b.And(p, q) {
		t.Fatalf("true conjunct not dropped: %s", got)
	}
	if got := b.AndN([]*Expr{p, b.False(), q}); !got.IsFalse() {
		t.Fatalf("false conjunct did not annihilate: %s", got)
	}
	if got := b.OrN([]*Expr{p, b.False(), q}); got != b.Or(p, q) {
		t.Fatalf("false disjunct not dropped: %s", got)
	}
	if got := b.OrN([]*Expr{p, b.True(), q}); !got.IsTrue() {
		t.Fatalf("true disjunct did not annihilate: %s", got)
	}
	if got := b.AndN(nil); !got.IsTrue() {
		t.Fatalf("empty conjunction = %s, want true", got)
	}
	if got := b.OrN(nil); !got.IsFalse() {
		t.Fatalf("empty disjunction = %s, want false", got)
	}
	if got := b.AndN([]*Expr{p}); got != p {
		t.Fatalf("singleton conjunction = %s, want p", got)
	}
}

func TestNaryComplement(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	if got := b.AndN([]*Expr{p, q, b.Not(q), r}); !got.IsFalse() {
		t.Fatalf("x ∧ ¬x inside n-ary set = %s, want false", got)
	}
	if got := b.OrN([]*Expr{p, q, b.Not(q), r}); !got.IsTrue() {
		t.Fatalf("x ∨ ¬x inside n-ary set = %s, want true", got)
	}
	// Complement arriving via flattening of two disjoint sets.
	left := b.And(p, q)
	right := b.And(r, b.Not(q))
	if got := b.And(left, right); !got.IsFalse() {
		t.Fatalf("complement across flattened sets = %s, want false", got)
	}
}

func TestNaryAbsorption(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	if got := b.And(p, b.Or(p, q)); got != p {
		t.Fatalf("p ∧ (p∨q) = %s, want p", got)
	}
	if got := b.Or(p, b.And(p, q)); got != p {
		t.Fatalf("p ∨ (p∧q) = %s, want p", got)
	}
	// Absorption inside a wider set keeps the rest.
	got := b.AndN([]*Expr{p, r, b.Or(q, p)})
	if got != b.And(p, r) {
		t.Fatalf("absorption in wider set = %s, want (and p r)", got)
	}
}

func TestOrFactoring(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	s := b.Var("s", 0)

	// (p∧q) ∨ (p∧r) → p ∧ (q∨r): the merged-guard shape.
	got := b.Or(b.And(p, q), b.And(p, r))
	want := b.And(p, b.Or(q, r))
	if got != want {
		t.Fatalf("factoring: got %s, want %s", got, want)
	}
	// Multi-conjunct common prefix over three disjuncts.
	got = b.OrN([]*Expr{
		b.AndN([]*Expr{p, q, r}),
		b.AndN([]*Expr{p, q, s}),
		b.AndN([]*Expr{p, q, b.Not(s)}),
	})
	// r ∨ s ∨ ¬s → true, so the whole thing is p ∧ q.
	if got != b.And(p, q) {
		t.Fatalf("multi-way factoring: got %s, want (and p q)", got)
	}
	// No factoring without a shared conjunct.
	got = b.Or(b.And(p, q), b.And(r, s))
	if got.Kind != KOr {
		t.Fatalf("unexpected factoring of disjoint conjunctions: %s", got)
	}
}

func TestRuleHitCounters(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	b.And(p, b.And(q, r))          // and/flatten
	b.Or(b.And(p, q), b.And(p, r)) // or/factor (+ flattens)
	b.Not(b.Not(p))                // not/involution
	x := b.Var("x", 8)
	b.Add(x, b.Const(0, 8)) // add/zero

	hits := map[string]uint64{}
	for _, h := range b.RuleHits() {
		hits[h.Name] = h.Hits
	}
	for _, want := range []string{"and/flatten", "or/factor", "not/involution", "add/zero"} {
		if hits[want] == 0 {
			t.Errorf("rule %q has no recorded hits; got %v", want, hits)
		}
	}
	// Counters feed the aggregate Simps counter too.
	if b.Stats.Simps.Load() == 0 {
		t.Error("aggregate Simps counter not bumped")
	}
}

func TestSimplifyIdempotentOnBuilderOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*Expr{x, y}
	for iter := 0; iter < 500; iter++ {
		e := randomBool(b, rng, vars, 4)
		if s := b.Simplify(e); s != e {
			t.Fatalf("iter %d: Simplify changed constructor output: %s -> %s", iter, e, s)
		}
	}
}

func TestSimplifySetSemantics(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	x := b.Var("x", 4)
	y := b.Var("y", 4)

	cs := []*Expr{p, b.Or(p, q), b.Ult(x, y), b.Ult(x, y), b.True()}
	out := b.SimplifySet(cs)
	// p absorbs (p∨q); the duplicate comparison and the ⊤ conjunct drop.
	if len(out) != 2 {
		t.Fatalf("SimplifySet kept %d conjuncts (%v), want 2", len(out), out)
	}
	// Semantics must be preserved on every assignment.
	for env := uint64(0); env < 1<<10; env++ {
		e := Env{p: env & 1, q: env >> 1 & 1, x: env >> 2 & 0xf, y: env >> 6 & 0xf}
		want := EvalBool(p, e) && EvalBool(b.Or(p, q), e) && EvalBool(b.Ult(x, y), e)
		got := true
		for _, c := range out {
			got = got && EvalBool(c, e)
		}
		if got != want {
			t.Fatalf("SimplifySet changed semantics under %v", e)
		}
	}

	// A contradictory set reduces to a single ⊥ conjunct.
	out = b.SimplifySet([]*Expr{p, q, b.Not(p)})
	if len(out) != 1 || !out[0].IsFalse() {
		t.Fatalf("contradictory set = %v, want [false]", out)
	}
	// An all-⊤ set reduces to nothing.
	if out = b.SimplifySet([]*Expr{b.True(), b.True()}); len(out) != 0 {
		t.Fatalf("trivial set = %v, want empty", out)
	}
}

func TestDagSize(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	sum := b.Add(x, x)      // nodes: x, sum
	prod := b.Mul(sum, sum) // + prod
	if got := DagSize([]*Expr{prod}); got != 3 {
		t.Fatalf("DagSize = %d, want 3 (shared subtrees once)", got)
	}
	if got := DagSize([]*Expr{prod, sum, x}); got != 3 {
		t.Fatalf("DagSize over overlapping set = %d, want 3", got)
	}
}

// TestSMTLibNaryGolden pins the printer's exact output on n-ary nodes:
// SMT-LIB and/or are variadic, so canonical n-ary nodes print directly.
func TestSMTLibNaryGolden(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	x := b.Var("x", 8)

	conj := b.AndN([]*Expr{p, q, r})
	disj := b.OrN([]*Expr{p, b.And(q, b.Ult(x, b.Const(10, 8)))})
	got := SMTLib([]*Expr{conj, disj})
	want := strings.Join([]string{
		"(set-logic QF_BV)",
		"(declare-const p Bool)",
		"(declare-const q Bool)",
		"(declare-const r Bool)",
		"(declare-const x (_ BitVec 8))",
		"(assert (and p q r))",
		"(assert (or p (and q (bvult x (_ bv10 8)))))",
		"(check-sat)",
		"(get-model)",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestNaryStringPrinting pins the debug printer on n-ary nodes.
func TestNaryStringPrinting(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	r := b.Var("r", 0)
	if got := b.AndN([]*Expr{p, q, r}).String(); got != "(and p q r)" {
		t.Fatalf("String() = %q, want (and p q r)", got)
	}
}

// TestQuickNaryAgreesWithEval is the n-ary construction property test: a
// conjunction/disjunction built through any mix of binary and n-ary calls
// must evaluate exactly like the naive fold over its inputs.
func TestQuickNaryAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*Expr{x, y}
	for iter := 0; iter < 400; iter++ {
		n := 2 + rng.Intn(5)
		parts := make([]*Expr, n)
		for i := range parts {
			parts[i] = randomBool(b, rng, vars, 3)
		}
		and := b.AndN(parts)
		or := b.OrN(parts)
		for xv := uint64(0); xv < 16; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				env := Env{x: xv, y: yv}
				wantAnd, wantOr := true, false
				for _, pt := range parts {
					v := EvalBool(pt, env)
					wantAnd = wantAnd && v
					wantOr = wantOr || v
				}
				if EvalBool(and, env) != wantAnd {
					t.Fatalf("iter %d: AndN disagrees with fold at x=%d y=%d: %s", iter, xv, yv, and)
				}
				if EvalBool(or, env) != wantOr {
					t.Fatalf("iter %d: OrN disagrees with fold at x=%d y=%d: %s", iter, xv, yv, or)
				}
			}
		}
	}
}
