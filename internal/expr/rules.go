package expr

// rules.go is the table-driven simplification layer of the Builder: every
// constructor-time rewrite beyond literal constant folding is a named entry
// in ruleTable with its own hit counter. Unary and binary rules are
// dispatched generically by applyRules from the constructors in builder.go;
// the structural rules of the n-ary connectives (flattening, duplicate and
// complement elimination, absorption, guard factoring) are applied by
// naryBool below; a few rules whose shape does not fit the generic
// signature (extract/concat, ite) are applied inline by their constructor
// and charged to their table entry via Builder.hit.
//
// All rules are local and semantics-preserving: eval.go is the reference
// semantics, and the property/fuzz tests check agreement on random
// expressions. Simplify re-runs the whole table bottom-up over an existing
// expression (or a whole path-condition set via SimplifySet), which is how
// the solver's preprocessing pipeline canonicalizes queries before
// bit-blasting.

import (
	"sort"
)

// Rule indices. Order within a kind is the order applyRules attempts them.
const (
	rNotNot = iota

	// n-ary conjunction (structural, applied by naryBool).
	rAndFlatten
	rAndUnit
	rAndZero
	rAndDup
	rAndCompl
	rAndAbsorb

	// n-ary disjunction (structural, applied by naryBool).
	rOrFlatten
	rOrUnit
	rOrOne
	rOrDup
	rOrCompl
	rOrAbsorb
	rOrFactor

	rXorSame
	rXorZero
	rXorOne
	rImpliesSelf
	rImpliesConst
	rEqRefl
	rEqBoolConst
	rCmpRefl
	rAddZero
	rSubZero
	rSubSelf
	rMulOne
	rUDivOne
	rNegNeg
	rBAndIdem
	rBAndZero
	rBAndOnes
	rBOrIdem
	rBOrZero
	rBXorSame
	rBXorZero
	rBNotNot
	rShiftZero

	// Width-changing rules (applied inline by Extract/Concat).
	rExtractExt
	rExtractConcat
	rConcatZeroHi

	// Ite rules (applied inline by Ite).
	rIteSameArms
	rIteNotCond
	rIteBoolLower
	rIteNested

	numRules
)

// rule is one rewrite-table entry. fn is nil for rules applied structurally
// (n-ary normalization, extract/ite shapes); for the rest it attempts the
// rewrite on the operands and returns nil when the rule does not match.
// x is the sole operand of unary rules (y is nil).
type rule struct {
	name  string
	kinds []Kind
	fn    func(b *Builder, k Kind, x, y *Expr) *Expr
}

// ruleTable is populated by init below: the rule closures call back into
// Builder constructors, which consult the table through applyRules, so a
// package-level composite literal would form an initialization cycle.
var ruleTable [numRules]rule

var ruleTableInit = [numRules]rule{
	rNotNot: {name: "not/involution", kinds: []Kind{KNot},
		fn: func(b *Builder, _ Kind, x, _ *Expr) *Expr {
			if x.Kind == KNot {
				return x.Kids[0] // ¬¬a → a
			}
			return nil
		}},

	rAndFlatten: {name: "and/flatten"},
	rAndUnit:    {name: "and/unit"},       // drop ⊤ conjuncts
	rAndZero:    {name: "and/zero"},       // … ∧ ⊥ → ⊥
	rAndDup:     {name: "and/dup"},        // x ∧ x → x
	rAndCompl:   {name: "and/complement"}, // x ∧ ¬x → ⊥
	rAndAbsorb:  {name: "and/absorb"},     // x ∧ (x ∨ y) → x

	rOrFlatten: {name: "or/flatten"},
	rOrUnit:    {name: "or/unit"},       // drop ⊥ disjuncts
	rOrOne:     {name: "or/one"},        // … ∨ ⊤ → ⊤
	rOrDup:     {name: "or/dup"},        // x ∨ x → x
	rOrCompl:   {name: "or/complement"}, // x ∨ ¬x → ⊤
	rOrAbsorb:  {name: "or/absorb"},     // x ∨ (x ∧ y) → x
	rOrFactor:  {name: "or/factor"},     // (p∧a) ∨ (p∧b) → p ∧ (a∨b)

	rXorSame: {name: "xor/same", kinds: []Kind{KXor},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return b.false_
			}
			return nil
		}},
	rXorZero: {name: "xor/zero", kinds: []Kind{KXor},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsFalse() {
				return y
			}
			if y.IsFalse() {
				return x
			}
			return nil
		}},
	rXorOne: {name: "xor/one", kinds: []Kind{KXor},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsTrue() {
				return b.Not(y)
			}
			if y.IsTrue() {
				return b.Not(x)
			}
			return nil
		}},

	rImpliesSelf: {name: "implies/self", kinds: []Kind{KImplies},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return b.true_
			}
			return nil
		}},
	rImpliesConst: {name: "implies/const", kinds: []Kind{KImplies},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			switch {
			case x.IsFalse() || y.IsTrue():
				return b.true_
			case x.IsTrue():
				return y
			case y.IsFalse():
				return b.Not(x)
			}
			return nil
		}},

	rEqRefl: {name: "eq/reflexive", kinds: []Kind{KEq},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return b.true_
			}
			return nil
		}},
	rEqBoolConst: {name: "eq/bool-const", kinds: []Kind{KEq},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.Width != 0 {
				return nil
			}
			switch {
			case x.IsTrue():
				return y
			case y.IsTrue():
				return x
			case x.IsFalse():
				return b.Not(y)
			case y.IsFalse():
				return b.Not(x)
			}
			return nil
		}},

	rCmpRefl: {name: "cmp/reflexive", kinds: []Kind{KUlt, KUle, KSlt, KSle},
		fn: func(b *Builder, k Kind, x, y *Expr) *Expr {
			if x == y {
				// ult/slt are irreflexive, ule/sle reflexive.
				return b.Bool(k == KUle || k == KSle)
			}
			return nil
		}},

	rAddZero: {name: "add/zero", kinds: []Kind{KAdd},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == 0 {
				return y
			}
			if y.IsConst() && y.Val == 0 {
				return x
			}
			return nil
		}},
	rSubZero: {name: "sub/zero", kinds: []Kind{KSub},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if y.IsConst() && y.Val == 0 {
				return x
			}
			return nil
		}},
	rSubSelf: {name: "sub/self", kinds: []Kind{KSub},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return b.Const(0, x.Width)
			}
			return nil
		}},
	rMulOne: {name: "mul/one", kinds: []Kind{KMul},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == 1 {
				return y
			}
			if y.IsConst() && y.Val == 1 {
				return x
			}
			return nil
		}},
	rUDivOne: {name: "udiv/one", kinds: []Kind{KUDiv},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if y.IsConst() && y.Val == 1 {
				return x
			}
			return nil
		}},
	rNegNeg: {name: "neg/involution", kinds: []Kind{KNeg},
		fn: func(b *Builder, _ Kind, x, _ *Expr) *Expr {
			if x.Kind == KNeg {
				return x.Kids[0]
			}
			return nil
		}},

	rBAndIdem: {name: "band/idempotent", kinds: []Kind{KBAnd},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return x
			}
			return nil
		}},
	rBAndZero: {name: "band/zero", kinds: []Kind{KBAnd},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == 0 || y.IsConst() && y.Val == 0 {
				return b.Const(0, x.Width)
			}
			return nil
		}},
	rBAndOnes: {name: "band/ones", kinds: []Kind{KBAnd},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == mask(x.Width) {
				return y
			}
			if y.IsConst() && y.Val == mask(y.Width) {
				return x
			}
			return nil
		}},
	rBOrIdem: {name: "bor/idempotent", kinds: []Kind{KBOr},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return x
			}
			return nil
		}},
	rBOrZero: {name: "bor/zero", kinds: []Kind{KBOr},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == 0 {
				return y
			}
			if y.IsConst() && y.Val == 0 {
				return x
			}
			return nil
		}},
	rBXorSame: {name: "bxor/same", kinds: []Kind{KBXor},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x == y {
				return b.Const(0, x.Width)
			}
			return nil
		}},
	rBXorZero: {name: "bxor/zero", kinds: []Kind{KBXor},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if x.IsConst() && x.Val == 0 {
				return y
			}
			if y.IsConst() && y.Val == 0 {
				return x
			}
			return nil
		}},
	rBNotNot: {name: "bnot/involution", kinds: []Kind{KBNot},
		fn: func(b *Builder, _ Kind, x, _ *Expr) *Expr {
			if x.Kind == KBNot {
				return x.Kids[0]
			}
			return nil
		}},
	rShiftZero: {name: "shift/zero", kinds: []Kind{KShl, KLShr, KAShr},
		fn: func(b *Builder, _ Kind, x, y *Expr) *Expr {
			if y.IsConst() && y.Val == 0 {
				return x
			}
			return nil
		}},

	rExtractExt:    {name: "extract/ext"},
	rExtractConcat: {name: "extract/concat"},
	rConcatZeroHi:  {name: "concat/zero-hi"},

	rIteSameArms:  {name: "ite/same-arms"},
	rIteNotCond:   {name: "ite/not-cond"},
	rIteBoolLower: {name: "ite/bool-lower"},
	rIteNested:    {name: "ite/nested"},
}

// rulesFor indexes the generically dispatched rules by operator kind.
var rulesFor [numKinds][]int

func init() {
	ruleTable = ruleTableInit
	for ri := range ruleTable {
		for _, k := range ruleTable[ri].kinds {
			rulesFor[k] = append(rulesFor[k], ri)
		}
	}
}

// hit charges one application to a rule's counter (and the aggregate
// simplification counter the benchmarks report).
func (b *Builder) hit(ri int) {
	b.ruleHits[ri].Add(1)
	b.Stats.Simps.Add(1)
}

// applyRules attempts every table rule registered for the kind, in table
// order, returning the first rewrite or nil. y is nil for unary operators.
func (b *Builder) applyRules(k Kind, x, y *Expr) *Expr {
	for _, ri := range rulesFor[k] {
		if r := ruleTable[ri].fn(b, k, x, y); r != nil {
			b.hit(ri)
			return r
		}
	}
	return nil
}

// RuleHit is one rule's activity snapshot.
type RuleHit struct {
	Name string
	Hits uint64
}

// RuleHits returns the rules that fired at least once, most active first
// (ties broken by name for determinism). Safe to call concurrently with
// construction; counts are a consistent-enough snapshot for reporting.
func (b *Builder) RuleHits() []RuleHit {
	out := make([]RuleHit, 0, numRules)
	for ri := range ruleTable {
		if h := b.ruleHits[ri].Load(); h > 0 {
			out = append(out, RuleHit{Name: ruleTable[ri].name, Hits: h})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// --- n-ary connective normalization ---

// naryBool builds the canonical n-ary conjunction (KAnd) or disjunction
// (KOr) of es. Canonical form: kids are flattened (no nested node of the
// same kind), sorted by node ID, duplicate-free, contain no complementary
// pair, no kid absorbed by another, and — for disjunctions — share no
// common conjunct (guard factoring hoists it). Zero kids yield the unit
// element, one kid yields the kid itself.
func (b *Builder) naryBool(k Kind, es []*Expr) *Expr {
	if len(es) == 2 {
		if r, ok := b.bool2(k, es[0], es[1]); ok {
			return r
		}
	}
	unit, zero := b.true_, b.false_
	flatten, unitR, zeroR, dupR, complR, absorbR := rAndFlatten, rAndUnit, rAndZero, rAndDup, rAndCompl, rAndAbsorb
	dual := KOr
	if k == KOr {
		unit, zero = b.false_, b.true_
		flatten, unitR, zeroR, dupR, complR, absorbR = rOrFlatten, rOrUnit, rOrOne, rOrDup, rOrCompl, rOrAbsorb
		dual = KAnd
	}

	// Flatten nested nodes of the same kind and strip unit elements; the
	// zero element annihilates immediately.
	kids := make([]*Expr, 0, len(es)+4)
	for _, e := range es {
		switch {
		case e == zero:
			b.hit(zeroR)
			return zero
		case e == unit:
			b.hit(unitR)
		case e.Kind == k:
			b.hit(flatten)
			kids = append(kids, e.Kids...)
		default:
			kids = append(kids, e)
		}
	}

	// Canonical commutative order + duplicate elimination. Nested kids are
	// already duplicate-free, but flattening two sets can re-introduce
	// overlaps, so the scan runs over the merged list.
	sort.Slice(kids, func(i, j int) bool { return kids[i].id < kids[j].id })
	w := 0
	for i, e := range kids {
		if i > 0 && e == kids[i-1] {
			b.hit(dupR)
			continue
		}
		kids[w] = e
		w++
	}
	kids = kids[:w]

	// Complementary pair: x and ¬x together collapse to the zero element.
	for _, e := range kids {
		if e.Kind == KNot && containsNode(kids, e.Kids[0]) {
			b.hit(complR)
			return zero
		}
	}

	// Absorption: a dual-kind kid one of whose operands already appears in
	// the set is redundant (x ∧ (x∨y) → x; x ∨ (x∧y) → x). Absorbers are
	// never dual-kind themselves (dual kids are flattened), so dropping
	// absorbed kids cannot invalidate earlier absorption decisions.
	w = 0
	for _, e := range kids {
		absorbed := false
		if e.Kind == dual {
			for _, c := range e.Kids {
				if containsNode(kids, c) {
					absorbed = true
					break
				}
			}
		}
		if absorbed {
			b.hit(absorbR)
			continue
		}
		kids[w] = e
		w++
	}
	kids = kids[:w]

	switch len(kids) {
	case 0:
		return unit
	case 1:
		return kids[0]
	}

	// Guard factoring (disjunctions only): when every disjunct is a
	// conjunction and all share common conjuncts, hoist the shared part —
	// (p∧a) ∨ (p∧b) → p ∧ (a∨b). This is the structure of merged-state
	// guards: path-condition suffixes that re-conjoin a shared prefix
	// factor back out, so the bit-blaster encodes the prefix once.
	// (After absorption a surviving non-conjunction kid can never be a
	// conjunct of every other kid, so all-KAnd is a complete gate.)
	if k == KOr {
		all := true
		for _, e := range kids {
			if e.Kind != KAnd {
				all = false
				break
			}
		}
		if all {
			common := append([]*Expr(nil), kids[0].Kids...)
			for _, e := range kids[1:] {
				common = intersectSorted(common, e.Kids)
				if len(common) == 0 {
					break
				}
			}
			if len(common) > 0 {
				b.hit(rOrFactor)
				parts := make([]*Expr, 0, len(kids))
				for _, e := range kids {
					parts = append(parts, b.AndN(subtractSorted(e.Kids, common)))
				}
				return b.AndN(append(common, b.OrN(parts)))
			}
		}
	}

	return b.mk(&Expr{Kind: k, Kids: kids})
}

// bool2 is the allocation-free fast path for the binary case — the
// engine's hottest constructor call (one per executed branch). It handles
// units, zeros, duplicates, and complements directly, and reports !ok to
// route to the general slice path whenever a same-kind kid (flattening) or
// dual-kind kid (absorption, factoring) makes the full normalization
// necessary. Results are identical to the slice path by construction.
func (b *Builder) bool2(k Kind, x, y *Expr) (*Expr, bool) {
	unit, zero := b.true_, b.false_
	unitR, zeroR, dupR, complR := rAndUnit, rAndZero, rAndDup, rAndCompl
	dual := KOr
	if k == KOr {
		unit, zero = b.false_, b.true_
		unitR, zeroR, dupR, complR = rOrUnit, rOrOne, rOrDup, rOrCompl
		dual = KAnd
	}
	switch {
	case x == zero || y == zero:
		b.hit(zeroR)
		return zero, true
	case x == unit:
		b.hit(unitR)
		return y, true
	case y == unit:
		b.hit(unitR)
		return x, true
	case x == y:
		b.hit(dupR)
		return x, true
	}
	if x.Kind == k || y.Kind == k || x.Kind == dual || y.Kind == dual {
		return nil, false
	}
	if x.Kind == KNot && x.Kids[0] == y || y.Kind == KNot && y.Kids[0] == x {
		b.hit(complR)
		return zero, true
	}
	if y.id < x.id {
		x, y = y, x
	}
	return b.mk(&Expr{Kind: k, Kids: []*Expr{x, y}}), true
}

// containsNode reports membership of e in an ID-sorted node list.
func containsNode(sorted []*Expr, e *Expr) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid].id < e.id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == e
}

// intersectSorted intersects two ID-sorted node lists into a fresh slice
// reusing a's backing array (a is owned by the caller).
func intersectSorted(a, bs []*Expr) []*Expr {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(bs) {
		switch {
		case a[i].id < bs[j].id:
			i++
		case bs[j].id < a[i].id:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// subtractSorted returns a \ bs over ID-sorted node lists.
func subtractSorted(a, bs []*Expr) []*Expr {
	out := make([]*Expr, 0, len(a))
	j := 0
	for _, e := range a {
		for j < len(bs) && bs[j].id < e.id {
			j++
		}
		if j < len(bs) && bs[j] == e {
			continue
		}
		out = append(out, e)
	}
	return out
}

// --- Whole-expression simplification ---

// Simplify rebuilds e bottom-up through the rule-applying constructors,
// returning the canonical equivalent. On expressions already built by this
// Builder the walk is usually the identity (constructors are idempotent);
// it pays off on terms assembled before a rule existed, on substituted
// terms, and as the first pass of the solver's preprocessing pipeline.
// The memoized walk is linear in the DAG size.
func (b *Builder) Simplify(e *Expr) *Expr {
	return b.simplifyMemo(e, make(map[*Expr]*Expr, 64))
}

func (b *Builder) simplifyMemo(e *Expr, memo map[*Expr]*Expr) *Expr {
	if e.Kind == KConst || e.Kind == KVar {
		return e
	}
	if r, ok := memo[e]; ok {
		return r
	}
	kids := make([]*Expr, len(e.Kids))
	changed := false
	for i, k := range e.Kids {
		kids[i] = b.simplifyMemo(k, memo)
		changed = changed || kids[i] != k
	}
	r := e
	if changed {
		r = b.Rebuild(e, kids)
	}
	memo[e] = r
	return r
}

// SimplifySet canonicalizes a constraint set interpreted as a conjunction:
// every member is simplified, then the members are conjoined through the
// n-ary constructor — which deduplicates, eliminates complementary pairs
// across conjuncts, absorbs, and factors — and the resulting conjunction is
// flattened back into a slice of conjuncts. An empty slice means the set
// reduced to ⊤; a single ⊥ conjunct means it reduced to contradiction.
func (b *Builder) SimplifySet(cs []*Expr) []*Expr {
	if len(cs) == 0 {
		return nil
	}
	memo := make(map[*Expr]*Expr, 64)
	simp := make([]*Expr, len(cs))
	for i, c := range cs {
		simp[i] = b.simplifyMemo(c, memo)
	}
	conj := b.AndN(simp)
	switch {
	case conj.IsTrue():
		return nil
	case conj.Kind == KAnd:
		// Kids are immutable; copy so callers may append or reorder.
		return append([]*Expr(nil), conj.Kids...)
	default:
		return []*Expr{conj}
	}
}

// Rebuild reconstructs a node with new children through the Builder so
// that constant folding and every table rule apply. Kids must be
// sort-compatible with the original node.
func (b *Builder) Rebuild(e *Expr, k []*Expr) *Expr {
	switch e.Kind {
	case KNot:
		return b.Not(k[0])
	case KAnd:
		return b.AndN(k)
	case KOr:
		return b.OrN(k)
	case KXor:
		return b.Xor(k[0], k[1])
	case KImplies:
		return b.Implies(k[0], k[1])
	case KEq:
		return b.Eq(k[0], k[1])
	case KUlt:
		return b.Ult(k[0], k[1])
	case KUle:
		return b.Ule(k[0], k[1])
	case KSlt:
		return b.Slt(k[0], k[1])
	case KSle:
		return b.Sle(k[0], k[1])
	case KAdd:
		return b.Add(k[0], k[1])
	case KSub:
		return b.Sub(k[0], k[1])
	case KMul:
		return b.Mul(k[0], k[1])
	case KUDiv:
		return b.UDiv(k[0], k[1])
	case KURem:
		return b.URem(k[0], k[1])
	case KSDiv:
		return b.SDiv(k[0], k[1])
	case KSRem:
		return b.SRem(k[0], k[1])
	case KBAnd:
		return b.BAnd(k[0], k[1])
	case KBOr:
		return b.BOr(k[0], k[1])
	case KBXor:
		return b.BXor(k[0], k[1])
	case KBNot:
		return b.BNot(k[0])
	case KNeg:
		return b.Neg(k[0])
	case KShl:
		return b.Shl(k[0], k[1])
	case KLShr:
		return b.LShr(k[0], k[1])
	case KAShr:
		return b.AShr(k[0], k[1])
	case KZExt:
		return b.ZExt(k[0], e.Width)
	case KSExt:
		return b.SExt(k[0], e.Width)
	case KExtract:
		return b.Extract(k[0], uint8(e.Aux), e.Width)
	case KConcat:
		return b.Concat(k[0], k[1])
	case KIte:
		return b.Ite(k[0], k[1], k[2])
	}
	panic("expr: Rebuild of unexpected kind " + e.Kind.String())
}

// DagSize counts the distinct nodes reachable from the constraint set —
// the size a structure-sharing consumer (the bit-blaster, whose memo is
// keyed by node) actually processes, as opposed to the tree size Nodes()
// reports.
func DagSize(cs []*Expr) int {
	seen := make(map[*Expr]bool, 64)
	var walk func(e *Expr)
	walk = func(e *Expr) {
		if seen[e] {
			return
		}
		seen[e] = true
		for _, k := range e.Kids {
			walk(k)
		}
	}
	for _, c := range cs {
		walk(c)
	}
	return len(seen)
}
