package expr

import (
	"fmt"
	"sort"
	"strings"
)

// SMTLib renders a conjunction of boolean constraints as a complete SMT-LIB
// 2 script in QF_BV, with declarations for every free variable. The output
// is accepted by stock solvers (z3, cvc5, boolector), which makes it easy
// to cross-check this module's own solver on any query it mishandles, and
// serves as an interchange format for the symx CLI.
func SMTLib(constraints []*Expr) string {
	var b strings.Builder
	b.WriteString("(set-logic QF_BV)\n")

	vars := map[*Expr]bool{}
	for _, c := range constraints {
		c.Vars(vars)
	}
	sorted := make([]*Expr, 0, len(vars))
	for v := range vars {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Width < sorted[j].Width
	})
	for _, v := range sorted {
		if v.Width == 0 {
			fmt.Fprintf(&b, "(declare-const %s Bool)\n", smtName(v))
		} else {
			fmt.Fprintf(&b, "(declare-const %s (_ BitVec %d))\n", smtName(v), v.Width)
		}
	}
	for _, c := range constraints {
		b.WriteString("(assert ")
		writeSMT(&b, c)
		b.WriteString(")\n")
	}
	b.WriteString("(check-sat)\n(get-model)\n")
	return b.String()
}

// smtName sanitizes variable names for SMT-LIB (ours are already plain
// identifiers; quote anything unusual defensively).
func smtName(v *Expr) string {
	for i := 0; i < len(v.Name); i++ {
		c := v.Name[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9') {
			return "|" + v.Name + "|"
		}
	}
	return v.Name
}

func writeSMT(b *strings.Builder, e *Expr) {
	switch e.Kind {
	case KConst:
		if e.Width == 0 {
			if e.Val == 1 {
				b.WriteString("true")
			} else {
				b.WriteString("false")
			}
			return
		}
		fmt.Fprintf(b, "(_ bv%d %d)", e.Val, e.Width)
	case KVar:
		b.WriteString(smtName(e))
	case KExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", int(e.Aux)+int(e.Width)-1, e.Aux)
		writeSMT(b, e.Kids[0])
		b.WriteByte(')')
	case KZExt:
		fmt.Fprintf(b, "((_ zero_extend %d) ", int(e.Width)-int(e.Aux))
		writeSMT(b, e.Kids[0])
		b.WriteByte(')')
	case KSExt:
		fmt.Fprintf(b, "((_ sign_extend %d) ", int(e.Width)-int(e.Aux))
		writeSMT(b, e.Kids[0])
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(smtOpName(e.Kind))
		for _, k := range e.Kids {
			b.WriteByte(' ')
			writeSMT(b, k)
		}
		b.WriteByte(')')
	}
}

func smtOpName(k Kind) string {
	switch k {
	case KNot:
		return "not"
	case KAnd:
		return "and"
	case KOr:
		return "or"
	case KXor:
		return "xor"
	case KImplies:
		return "=>"
	case KEq:
		return "="
	case KBNot:
		return "bvnot"
	case KNeg:
		return "bvneg"
	case KIte:
		return "ite"
	default:
		return k.String()
	}
}
