// Package expr implements the hash-consed symbolic expression language shared
// by the symbolic executor, the QCE static analysis, and the constraint
// solver.
//
// Expressions form the quantifier-free theory of fixed-width bitvectors plus
// booleans (QF_BV). Every expression is built through a Builder, which
// hash-conses: structurally identical expressions are represented by the same
// *Expr pointer. This makes structural equality a pointer comparison, lets
// constructor-time flags (such as "contains a symbolic variable") be computed
// once, and gives every expression a stable small integer ID used by the
// solver caches and by dynamic state merging's similarity hashes.
//
// Builders also perform constant folding and a table of named local
// simplifications (identity elements, ite collapsing, double negation,
// n-ary flattening and factoring, ...; see rules.go), each with a per-rule
// hit counter. Simplify re-runs the table bottom-up over whole expressions
// and SimplifySet over whole path conditions. Simplification is
// semantics-preserving; the evaluator in eval.go is the reference semantics
// and the property/fuzz tests check the two agree.
package expr

import (
	"fmt"
	"strings"
)

// Kind identifies the operator of an expression node.
type Kind uint8

// Expression kinds. Boolean connectives operate on width-0 (boolean)
// expressions; bitvector operators on width 1..64 expressions. Comparisons
// take bitvectors and yield booleans. Ite is polymorphic: its condition is
// boolean and its arms share the result sort.
const (
	KConst Kind = iota // constant (Val, Width; Width==0 means boolean 0/1)
	KVar               // named input variable

	// Boolean connectives. KAnd and KOr are n-ary (Kids holds two or more
	// operands) in canonical form: flattened, ID-sorted, duplicate-free,
	// with no complementary pair and no absorbed member — see
	// Builder.AndN/OrN and naryBool in rules.go. KNot, KXor and KImplies
	// stay unary/binary.
	KNot
	KAnd
	KOr
	KXor
	KImplies

	// Comparisons (bitvector × bitvector → bool).
	KEq
	KUlt
	KUle
	KSlt
	KSle

	// Bitvector arithmetic.
	KAdd
	KSub
	KMul
	KUDiv
	KURem
	KSDiv
	KSRem

	// Bitvector bitwise / shifts.
	KBAnd
	KBOr
	KBXor
	KBNot
	KNeg
	KShl
	KLShr
	KAShr

	// Width changing.
	KZExt    // Aux = original width, Width = new width
	KSExt    // Aux = original width, Width = new width
	KExtract // Aux = low bit, Width = number of bits
	KConcat  // Kids[0] is high part, Kids[1] is low part

	// Polymorphic if-then-else: Kids[0] bool, Kids[1], Kids[2] same sort.
	KIte

	numKinds
)

var kindNames = [numKinds]string{
	KConst: "const", KVar: "var",
	KNot: "not", KAnd: "and", KOr: "or", KXor: "xor", KImplies: "=>",
	KEq: "=", KUlt: "bvult", KUle: "bvule", KSlt: "bvslt", KSle: "bvsle",
	KAdd: "bvadd", KSub: "bvsub", KMul: "bvmul",
	KUDiv: "bvudiv", KURem: "bvurem", KSDiv: "bvsdiv", KSRem: "bvsrem",
	KBAnd: "bvand", KBOr: "bvor", KBXor: "bvxor", KBNot: "bvnot",
	KNeg: "bvneg", KShl: "bvshl", KLShr: "bvlshr", KAShr: "bvashr",
	KZExt: "zext", KSExt: "sext", KExtract: "extract", KConcat: "concat",
	KIte: "ite",
}

// String returns the SMT-LIB-flavoured operator name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Expr is an immutable, hash-consed expression node. Two expressions built by
// the same Builder are structurally equal iff they are the same pointer.
//
// Width 0 denotes the boolean sort; widths 1..64 denote bitvectors.
type Expr struct {
	Kind  Kind
	Width uint8   // result width; 0 = bool
	Val   uint64  // constant value (KConst), truncated to Width
	Aux   uint16  // KExtract: low bit; KZExt/KSExt: source width
	Name  string  // variable name (KVar)
	Kids  []*Expr // operands

	id       uint64 // unique per builder, assigned at construction
	hash     uint64
	symbolic bool // contains at least one KVar
	nodes    int  // node count, for size heuristics
}

// ID returns the builder-unique identifier of the node. IDs increase in
// construction order, so they induce a deterministic total order.
func (e *Expr) ID() uint64 { return e.id }

// Hash returns the structural hash of the node.
func (e *Expr) Hash() uint64 { return e.hash }

// IsBool reports whether the expression has the boolean sort.
func (e *Expr) IsBool() bool { return e.Width == 0 }

// IsConst reports whether the expression is a literal constant.
func (e *Expr) IsConst() bool { return e.Kind == KConst }

// IsTrue reports whether the expression is the boolean constant true.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Width == 0 && e.Val == 1 }

// IsFalse reports whether the expression is the boolean constant false.
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Width == 0 && e.Val == 0 }

// IsSymbolic reports whether the expression contains any input variable.
// Concrete expressions always fold to constants, so in practice this is
// equivalent to !IsConst, but the flag is tracked independently for safety.
func (e *Expr) IsSymbolic() bool { return e.symbolic }

// Nodes returns the number of nodes in the expression DAG counted as a tree
// (shared subtrees counted once per occurrence is avoided: this is the
// DAG-size accumulated at construction, so shared children count once per
// construction edge).
func (e *Expr) Nodes() int { return e.nodes }

// mask returns the w-bit mask (w in 1..64).
func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// truncate reduces v to w bits. For booleans (w==0) it normalizes to 0/1.
func truncate(v uint64, w uint8) uint64 {
	if w == 0 {
		if v != 0 {
			return 1
		}
		return 0
	}
	return v & mask(w)
}

// signExtend interprets v as a w-bit two's-complement value and returns it
// sign-extended to 64 bits.
func signExtend(v uint64, w uint8) uint64 {
	if w == 0 || w >= 64 {
		return v
	}
	signBit := uint64(1) << (w - 1)
	if v&signBit != 0 {
		return v | ^mask(w)
	}
	return v & mask(w)
}

// Vars appends every distinct variable reachable from e to the set. The map
// is keyed by the variable node itself.
func (e *Expr) Vars(set map[*Expr]bool) {
	if !e.symbolic || set[e] {
		return
	}
	if e.Kind == KVar {
		set[e] = true
		return
	}
	// Mark interior nodes visited using a separate traversal to avoid
	// polluting the result set: use an explicit stack with a seen map
	// local to this call for interiors.
	seen := map[*Expr]bool{}
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if !x.symbolic || seen[x] {
			return
		}
		seen[x] = true
		if x.Kind == KVar {
			set[x] = true
			return
		}
		for _, k := range x.Kids {
			walk(k)
		}
	}
	walk(e)
}

// String renders the expression as an SMT-LIB-style s-expression.
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

const maxPrintDepth = 64

func (e *Expr) write(b *strings.Builder, depth int) {
	if depth > maxPrintDepth {
		b.WriteString("...")
		return
	}
	switch e.Kind {
	case KConst:
		if e.Width == 0 {
			if e.Val == 1 {
				b.WriteString("true")
			} else {
				b.WriteString("false")
			}
			return
		}
		fmt.Fprintf(b, "#x%0*x", (int(e.Width)+3)/4, e.Val)
	case KVar:
		b.WriteString(e.Name)
	case KExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", int(e.Aux)+int(e.Width)-1, e.Aux)
		e.Kids[0].write(b, depth+1)
		b.WriteByte(')')
	case KZExt, KSExt:
		fmt.Fprintf(b, "((_ %s %d) ", e.Kind, int(e.Width)-int(e.Aux))
		e.Kids[0].write(b, depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Kind.String())
		for _, k := range e.Kids {
			b.WriteByte(' ')
			k.write(b, depth+1)
		}
		b.WriteByte(')')
	}
}
