package lang

import (
	"fmt"

	"symmerge/internal/ir"
)

// Compile parses and compiles a MiniC source file into an ir.Program.
// The program must define `void main()` (or `int main()`).
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	prog := &ir.Program{ByName: map[string]*ir.Func{}, Source: src}
	decls := map[string]*FuncDecl{}
	// Pass 1: signatures.
	for _, fd := range file.Funcs {
		if _, dup := prog.ByName[fd.Name]; dup {
			return nil, &Error{Line: fd.Line, Col: fd.Col,
				Msg: fmt.Sprintf("function %s redeclared", fd.Name)}
		}
		if isBuiltin(fd.Name) {
			return nil, &Error{Line: fd.Line, Col: fd.Col,
				Msg: fmt.Sprintf("%s is a builtin and cannot be redefined", fd.Name)}
		}
		f := &ir.Func{Name: fd.Name, Index: len(prog.Funcs), Ret: fd.Ret}
		prog.Funcs = append(prog.Funcs, f)
		prog.ByName[fd.Name] = f
		decls[fd.Name] = fd
	}
	// Pass 2: bodies. Allocation sites are numbered program-wide so heap
	// addresses are allocation-site-canonical across the whole program.
	sites := 0
	for i, fd := range file.Funcs {
		c := &funcCompiler{prog: prog, fn: prog.Funcs[i], decl: fd,
			decls: decls, scopes: []map[string]int{{}}, sites: &sites}
		if err := c.compile(); err != nil {
			return nil, err
		}
	}
	prog.AllocSites = sites
	main, ok := prog.ByName["main"]
	if !ok {
		return nil, &Error{Line: 1, Col: 1, Msg: "program has no main function"}
	}
	if main.Params != 0 {
		return nil, &Error{Line: 1, Col: 1, Msg: "main must take no parameters (inputs come from argc/argchar/stdin)"}
	}
	prog.Main = main
	return prog, nil
}

var builtins = map[string]bool{
	"putchar": true, "argc": true, "argchar": true,
	"stdinchar": true, "stdinlen": true,
	"sym_int": true, "sym_byte": true, "sym_bool": true,
	"assume": true, "assert": true, "halt": true,
	"toint": true, "tobyte": true, "make_symbolic": true,
	"alloc": true,
}

func isBuiltin(name string) bool { return builtins[name] }

// funcCompiler compiles one function body.
type funcCompiler struct {
	prog   *ir.Program
	fn     *ir.Func
	decl   *FuncDecl
	decls  map[string]*FuncDecl // all declarations, for callee signatures
	scopes []map[string]int     // name -> local index
	temps  int
	loops  []loopCtx // break/continue patch lists
	sites  *int      // program-wide allocation-site counter (shared)
}

type loopCtx struct {
	breaks    []int // OpBr instructions to patch to loop exit
	continues []int // OpBr instructions to patch to loop post/header
}

func (c *funcCompiler) errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (c *funcCompiler) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *funcCompiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *funcCompiler) lookup(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if idx, ok := c.scopes[i][name]; ok {
			return idx, true
		}
	}
	return 0, false
}

func (c *funcCompiler) declare(name string, t ir.Type, line, col int) (int, error) {
	if _, exists := c.scopes[len(c.scopes)-1][name]; exists {
		return 0, c.errAt(line, col, "variable %s redeclared in this scope", name)
	}
	idx := len(c.fn.Locals)
	c.fn.Locals = append(c.fn.Locals, ir.Local{Name: name, Type: t})
	c.scopes[len(c.scopes)-1][name] = idx
	return idx, nil
}

func (c *funcCompiler) newTemp(t ir.Type) int {
	idx := len(c.fn.Locals)
	c.fn.Locals = append(c.fn.Locals, ir.Local{Name: fmt.Sprintf("$t%d", c.temps), Type: t})
	c.temps++
	return idx
}

func (c *funcCompiler) emit(in ir.Instr) int {
	pc := len(c.fn.Instrs)
	c.fn.Instrs = append(c.fn.Instrs, in)
	return pc
}

func (c *funcCompiler) here() int { return len(c.fn.Instrs) }

func (c *funcCompiler) patchTarget(pc, target int) { c.fn.Instrs[pc].Target = target }

func (c *funcCompiler) compile() error {
	// Parameters become the first locals.
	for _, p := range c.decl.Params {
		if _, err := c.declare(p.Name, p.Type, c.decl.Line, c.decl.Col); err != nil {
			return err
		}
	}
	c.fn.Params = len(c.decl.Params)
	if err := c.compileBlock(c.decl.Body); err != nil {
		return err
	}
	// Implicit return: void returns nothing; non-void returns 0.
	if n := len(c.fn.Instrs); n == 0 || !alwaysExits(c.fn.Instrs) {
		if c.fn.Ret.Kind == ir.Void {
			c.emit(ir.Instr{Op: ir.OpRet, Dst: -1})
		} else {
			c.emit(ir.Instr{Op: ir.OpRet, Dst: -1, A: ir.ConstOp(0), HasVal: true, T: c.fn.Ret})
		}
	}
	return nil
}

// alwaysExits reports (conservatively) whether the last instruction already
// leaves the function; used only to avoid emitting dead implicit returns.
func alwaysExits(instrs []ir.Instr) bool {
	last := instrs[len(instrs)-1]
	return last.Op == ir.OpRet || last.Op == ir.OpHalt
}

func (c *funcCompiler) compileBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *funcCompiler) compileStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.compileBlock(st)
	case *VarDecl:
		return c.compileVarDecl(st)
	case *AssignStmt:
		return c.compileAssign(st)
	case *IfStmt:
		return c.compileIf(st)
	case *WhileStmt:
		return c.compileWhile(st)
	case *ForStmt:
		return c.compileFor(st)
	case *ReturnStmt:
		return c.compileReturn(st)
	case *BreakStmt:
		if len(c.loops) == 0 {
			return c.errAt(st.Line, st.Col, "break outside loop")
		}
		pc := c.emit(ir.Instr{Op: ir.OpBr, Dst: -1})
		lc := &c.loops[len(c.loops)-1]
		lc.breaks = append(lc.breaks, pc)
		return nil
	case *ContinueStmt:
		if len(c.loops) == 0 {
			return c.errAt(st.Line, st.Col, "continue outside loop")
		}
		pc := c.emit(ir.Instr{Op: ir.OpBr, Dst: -1})
		lc := &c.loops[len(c.loops)-1]
		lc.continues = append(lc.continues, pc)
		return nil
	case *ExprStmt:
		call, ok := st.X.(*CallExpr)
		if !ok {
			line, col := st.X.pos()
			return c.errAt(line, col, "expression statement must be a call")
		}
		_, _, err := c.compileCall(call, false)
		return err
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (c *funcCompiler) compileVarDecl(d *VarDecl) error {
	idx, err := c.declare(d.Name, d.Type, d.Line, d.Col)
	if err != nil {
		return err
	}
	if d.Type.Array() {
		if d.HasStr {
			if d.Type.Kind != ir.ArrayByte {
				return c.errAt(d.Line, d.Col, "string initializer requires a byte array")
			}
			if len(d.Str)+1 > d.Type.Len {
				return c.errAt(d.Line, d.Col, "string %q does not fit in byte[%d]", d.Str, d.Type.Len)
			}
			for i := 0; i < len(d.Str); i++ {
				c.emit(ir.Instr{Op: ir.OpStore, Dst: idx,
					A: ir.ConstOp(int64(i)), B: ir.ConstOp(int64(d.Str[i])),
					T: ir.Type{Kind: ir.Byte}, Pos: ir.Pos{Line: d.Line, Col: d.Col}})
			}
			// Remaining cells are zero by construction (fresh object).
		}
		return nil
	}
	init := ir.ConstOp(0)
	if d.Init != nil {
		op, t, err := c.compileExpr(d.Init)
		if err != nil {
			return err
		}
		op, err = c.coerce(op, t, d.Type, d.Init)
		if err != nil {
			return err
		}
		init = op
	}
	c.emit(ir.Instr{Op: ir.OpMov, Dst: idx, A: init, T: d.Type,
		Pos: ir.Pos{Line: d.Line, Col: d.Col}})
	return nil
}

// coerce converts an operand of type from to type to, applying the implicit
// conversions MiniC allows: byte→int widening, int-constant→byte narrowing
// when the value fits, identical types.
func (c *funcCompiler) coerce(op ir.Operand, from, to ir.Type, at Expr) (ir.Operand, error) {
	if from.Kind == to.Kind {
		return op, nil
	}
	line, col := at.pos()
	switch {
	case from.Kind == ir.Byte && to.Kind == ir.Int:
		t := c.newTemp(to)
		c.emit(ir.Instr{Op: ir.OpByteToInt, Dst: t, A: op, T: to,
			Pos: ir.Pos{Line: line, Col: col}})
		return ir.LocalOp(t), nil
	case from.Kind == ir.Int && to.Kind == ir.Byte && op.IsConst:
		if op.Const < 0 || op.Const > 255 {
			return op, c.errAt(line, col, "constant %d does not fit in byte", op.Const)
		}
		return op, nil
	case from.Kind == ir.Int && to.Kind == ir.Ptr && op.IsConst && op.Const == 0:
		return op, nil // the null pointer
	}
	return op, c.errAt(line, col, "cannot use %s value as %s (use toint/tobyte)", from, to)
}

func (c *funcCompiler) compileAssign(a *AssignStmt) error {
	idx, ok := c.lookup(a.Target.Name)
	if !ok {
		return c.errAt(a.Line, a.Col, "undefined variable %s", a.Target.Name)
	}
	lt := c.fn.Locals[idx].Type
	pos := ir.Pos{Line: a.Line, Col: a.Col}

	// Array element / heap cell assignment.
	if a.Target.Index != nil {
		if !lt.Array() && lt.Kind != ir.Ptr {
			return c.errAt(a.Line, a.Col, "%s is not an array or pointer", a.Target.Name)
		}
		elem := ir.Type{Kind: ir.Int} // heap cells are 32-bit ints
		if lt.Array() {
			elem = lt.Elem()
		}
		idxOp, it, err := c.compileExpr(a.Target.Index)
		if err != nil {
			return err
		}
		idxOp, err = c.coerce(idxOp, it, ir.Type{Kind: ir.Int}, a.Target.Index)
		if err != nil {
			return err
		}
		// For a pointer target, fold the index into an address once; load
		// and store below then address the heap through it.
		addr := ir.Operand{}
		if lt.Kind == ir.Ptr {
			at := c.newTemp(ir.Type{Kind: ir.Ptr})
			c.emit(ir.Instr{Op: ir.OpAdd, Dst: at, A: ir.LocalOp(idx), B: idxOp,
				T: ir.Type{Kind: ir.Ptr}, Pos: pos})
			addr = ir.LocalOp(at)
		}
		var valOp ir.Operand
		switch a.Op {
		case tAssign:
			v, vt, err := c.compileExpr(a.Value)
			if err != nil {
				return err
			}
			valOp, err = c.coerce(v, vt, elem, a.Value)
			if err != nil {
				return err
			}
		case tPlusAssign, tMinusAssign, tInc, tDec:
			// Load-modify-store.
			cur := c.newTemp(elem)
			if lt.Kind == ir.Ptr {
				c.emit(ir.Instr{Op: ir.OpPtrLoad, Dst: cur, A: addr, T: elem, Pos: pos})
			} else {
				c.emit(ir.Instr{Op: ir.OpLoad, Dst: cur, A: ir.LocalOp(idx), B: idxOp, T: elem, Pos: pos})
			}
			delta := ir.ConstOp(1)
			if a.Value != nil {
				v, vt, err := c.compileExpr(a.Value)
				if err != nil {
					return err
				}
				delta, err = c.coerce(v, vt, elem, a.Value)
				if err != nil {
					return err
				}
			}
			op := ir.OpAdd
			if a.Op == tMinusAssign || a.Op == tDec {
				op = ir.OpSub
			}
			res := c.newTemp(elem)
			c.emit(ir.Instr{Op: op, Dst: res, A: ir.LocalOp(cur), B: delta, T: elem, Pos: pos})
			valOp = ir.LocalOp(res)
		}
		if lt.Kind == ir.Ptr {
			c.emit(ir.Instr{Op: ir.OpPtrStore, Dst: -1, A: addr, B: valOp, T: elem, Pos: pos})
		} else {
			c.emit(ir.Instr{Op: ir.OpStore, Dst: idx, A: idxOp, B: valOp, T: elem, Pos: pos})
		}
		return nil
	}

	if lt.Array() {
		return c.errAt(a.Line, a.Col, "cannot assign to array %s", a.Target.Name)
	}
	switch a.Op {
	case tAssign:
		v, vt, err := c.compileExpr(a.Value)
		if err != nil {
			return err
		}
		v, err = c.coerce(v, vt, lt, a.Value)
		if err != nil {
			return err
		}
		c.emit(ir.Instr{Op: ir.OpMov, Dst: idx, A: v, T: lt, Pos: pos})
	case tPlusAssign, tMinusAssign:
		v, vt, err := c.compileExpr(a.Value)
		if err != nil {
			return err
		}
		// Pointer strides are int-typed: p += n advances n cells.
		want := lt
		if lt.Kind == ir.Ptr {
			want = ir.Type{Kind: ir.Int}
		}
		v, err = c.coerce(v, vt, want, a.Value)
		if err != nil {
			return err
		}
		op := ir.OpAdd
		if a.Op == tMinusAssign {
			op = ir.OpSub
		}
		c.emit(ir.Instr{Op: op, Dst: idx, A: ir.LocalOp(idx), B: v, T: lt, Pos: pos})
	case tInc, tDec:
		if lt.Kind == ir.Bool {
			return c.errAt(a.Line, a.Col, "cannot increment bool")
		}
		op := ir.OpAdd
		if a.Op == tDec {
			op = ir.OpSub
		}
		c.emit(ir.Instr{Op: op, Dst: idx, A: ir.LocalOp(idx), B: ir.ConstOp(1), T: lt, Pos: pos})
	}
	return nil
}

func (c *funcCompiler) compileCond(e Expr) (ir.Operand, error) {
	op, t, err := c.compileExpr(e)
	if err != nil {
		return op, err
	}
	if t.Kind != ir.Bool {
		line, col := e.pos()
		return op, c.errAt(line, col, "condition must be bool, got %s", t)
	}
	return op, nil
}

func (c *funcCompiler) compileIf(s *IfStmt) error {
	cond, err := c.compileCond(s.Cond)
	if err != nil {
		return err
	}
	br := c.emit(ir.Instr{Op: ir.OpCondBr, Dst: -1, A: cond})
	c.fn.Instrs[br].Target = c.here()
	if err := c.compileStmt(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		c.fn.Instrs[br].FTarget = c.here()
		return nil
	}
	skip := c.emit(ir.Instr{Op: ir.OpBr, Dst: -1})
	c.fn.Instrs[br].FTarget = c.here()
	if err := c.compileStmt(s.Else); err != nil {
		return err
	}
	c.patchTarget(skip, c.here())
	return nil
}

func (c *funcCompiler) compileWhile(s *WhileStmt) error {
	header := c.here()
	cond, err := c.compileCond(s.Cond)
	if err != nil {
		return err
	}
	br := c.emit(ir.Instr{Op: ir.OpCondBr, Dst: -1, A: cond})
	c.fn.Instrs[br].Target = c.here()
	c.loops = append(c.loops, loopCtx{})
	if err := c.compileStmt(s.Body); err != nil {
		return err
	}
	lc := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	for _, pc := range lc.continues {
		c.patchTarget(pc, header)
	}
	c.emit(ir.Instr{Op: ir.OpBr, Dst: -1, Target: header})
	exit := c.here()
	c.fn.Instrs[br].FTarget = exit
	for _, pc := range lc.breaks {
		c.patchTarget(pc, exit)
	}
	return nil
}

func (c *funcCompiler) compileFor(s *ForStmt) error {
	c.pushScope()
	defer c.popScope()
	if s.Init != nil {
		if err := c.compileStmt(s.Init); err != nil {
			return err
		}
	}
	header := c.here()
	var br int
	if s.Cond != nil {
		cond, err := c.compileCond(s.Cond)
		if err != nil {
			return err
		}
		br = c.emit(ir.Instr{Op: ir.OpCondBr, Dst: -1, A: cond})
		c.fn.Instrs[br].Target = c.here()
	} else {
		br = -1
	}
	c.loops = append(c.loops, loopCtx{})
	if err := c.compileStmt(s.Body); err != nil {
		return err
	}
	lc := c.loops[len(c.loops)-1]
	c.loops = c.loops[:len(c.loops)-1]
	post := c.here()
	for _, pc := range lc.continues {
		c.patchTarget(pc, post)
	}
	if s.Post != nil {
		if err := c.compileStmt(s.Post); err != nil {
			return err
		}
	}
	c.emit(ir.Instr{Op: ir.OpBr, Dst: -1, Target: header})
	exit := c.here()
	if br >= 0 {
		c.fn.Instrs[br].FTarget = exit
	}
	for _, pc := range lc.breaks {
		c.patchTarget(pc, exit)
	}
	return nil
}

func (c *funcCompiler) compileReturn(s *ReturnStmt) error {
	if c.fn.Ret.Kind == ir.Void {
		if s.Value != nil {
			return c.errAt(s.Line, s.Col, "void function cannot return a value")
		}
		c.emit(ir.Instr{Op: ir.OpRet, Dst: -1, Pos: ir.Pos{Line: s.Line, Col: s.Col}})
		return nil
	}
	if s.Value == nil {
		return c.errAt(s.Line, s.Col, "function %s must return %s", c.fn.Name, c.fn.Ret)
	}
	v, vt, err := c.compileExpr(s.Value)
	if err != nil {
		return err
	}
	v, err = c.coerce(v, vt, c.fn.Ret, s.Value)
	if err != nil {
		return err
	}
	c.emit(ir.Instr{Op: ir.OpRet, Dst: -1, A: v, HasVal: true, T: c.fn.Ret,
		Pos: ir.Pos{Line: s.Line, Col: s.Col}})
	return nil
}

// compileExpr compiles an expression, returning the operand and its type.
func (c *funcCompiler) compileExpr(e Expr) (ir.Operand, ir.Type, error) {
	switch x := e.(type) {
	case *IntLit:
		if x.IsChar {
			return ir.ConstOp(x.Val), ir.Type{Kind: ir.Byte}, nil
		}
		return ir.ConstOp(x.Val), ir.Type{Kind: ir.Int}, nil
	case *BoolLit:
		v := int64(0)
		if x.Val {
			v = 1
		}
		return ir.ConstOp(v), ir.Type{Kind: ir.Bool}, nil
	case *Ident:
		idx, ok := c.lookup(x.Name)
		if !ok {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "undefined variable %s", x.Name)
		}
		return ir.LocalOp(idx), c.fn.Locals[idx].Type, nil
	case *IndexExpr:
		idx, ok := c.lookup(x.Name)
		if !ok {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "undefined variable %s", x.Name)
		}
		at := c.fn.Locals[idx].Type
		if !at.Array() && at.Kind != ir.Ptr {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "%s is not an array or pointer", x.Name)
		}
		iop, it, err := c.compileExpr(x.Index)
		if err != nil {
			return ir.Operand{}, ir.Type{}, err
		}
		iop, err = c.coerce(iop, it, ir.Type{Kind: ir.Int}, x.Index)
		if err != nil {
			return ir.Operand{}, ir.Type{}, err
		}
		pos := ir.Pos{Line: x.Line, Col: x.Col}
		if at.Kind == ir.Ptr {
			// p[i] reads the heap cell at address p+i.
			intT := ir.Type{Kind: ir.Int}
			addr := c.newTemp(ir.Type{Kind: ir.Ptr})
			c.emit(ir.Instr{Op: ir.OpAdd, Dst: addr, A: ir.LocalOp(idx), B: iop,
				T: ir.Type{Kind: ir.Ptr}, Pos: pos})
			dst := c.newTemp(intT)
			c.emit(ir.Instr{Op: ir.OpPtrLoad, Dst: dst, A: ir.LocalOp(addr), T: intT, Pos: pos})
			return ir.LocalOp(dst), intT, nil
		}
		elem := at.Elem()
		dst := c.newTemp(elem)
		c.emit(ir.Instr{Op: ir.OpLoad, Dst: dst, A: ir.LocalOp(idx), B: iop, T: elem, Pos: pos})
		return ir.LocalOp(dst), elem, nil
	case *CallExpr:
		op, t, err := c.compileCall(x, true)
		return op, t, err
	case *UnaryExpr:
		return c.compileUnary(x)
	case *BinaryExpr:
		return c.compileBinary(x)
	}
	return ir.Operand{}, ir.Type{}, fmt.Errorf("lang: unknown expression %T", e)
}

func (c *funcCompiler) compileUnary(x *UnaryExpr) (ir.Operand, ir.Type, error) {
	op, t, err := c.compileExpr(x.X)
	if err != nil {
		return op, t, err
	}
	pos := ir.Pos{Line: x.Line, Col: x.Col}
	switch x.Op {
	case tBang:
		if t.Kind != ir.Bool {
			return op, t, c.errAt(x.Line, x.Col, "! requires bool, got %s", t)
		}
		dst := c.newTemp(t)
		c.emit(ir.Instr{Op: ir.OpNot, Dst: dst, A: op, T: t, Pos: pos})
		return ir.LocalOp(dst), t, nil
	case tMinus:
		if t.Kind != ir.Int && t.Kind != ir.Byte {
			return op, t, c.errAt(x.Line, x.Col, "- requires numeric, got %s", t)
		}
		dst := c.newTemp(t)
		c.emit(ir.Instr{Op: ir.OpNeg, Dst: dst, A: op, T: t, Pos: pos})
		return ir.LocalOp(dst), t, nil
	case tTilde:
		if t.Kind != ir.Int && t.Kind != ir.Byte {
			return op, t, c.errAt(x.Line, x.Col, "~ requires numeric, got %s", t)
		}
		dst := c.newTemp(t)
		c.emit(ir.Instr{Op: ir.OpBNot, Dst: dst, A: op, T: t, Pos: pos})
		return ir.LocalOp(dst), t, nil
	}
	return op, t, c.errAt(x.Line, x.Col, "unknown unary operator")
}

func (c *funcCompiler) compileBinary(x *BinaryExpr) (ir.Operand, ir.Type, error) {
	pos := ir.Pos{Line: x.Line, Col: x.Col}
	boolT := ir.Type{Kind: ir.Bool}

	// Short-circuit operators compile to real control flow, matching the
	// branch structure LLVM gives KLEE.
	if x.Op == tAndAnd || x.Op == tOrOr {
		res := c.newTemp(boolT)
		l, err := c.compileCond(x.L)
		if err != nil {
			return ir.Operand{}, boolT, err
		}
		c.emit(ir.Instr{Op: ir.OpMov, Dst: res, A: l, T: boolT, Pos: pos})
		br := c.emit(ir.Instr{Op: ir.OpCondBr, Dst: -1, A: ir.LocalOp(res), Pos: pos})
		rhsStart := c.here()
		r, err := c.compileCond(x.R)
		if err != nil {
			return ir.Operand{}, boolT, err
		}
		c.emit(ir.Instr{Op: ir.OpMov, Dst: res, A: r, T: boolT, Pos: pos})
		end := c.here()
		if x.Op == tAndAnd {
			// if res goto rhs else goto end
			c.fn.Instrs[br].Target = rhsStart
			c.fn.Instrs[br].FTarget = end
		} else {
			// if res goto end else goto rhs
			c.fn.Instrs[br].Target = end
			c.fn.Instrs[br].FTarget = rhsStart
		}
		return ir.LocalOp(res), boolT, nil
	}

	l, lt, err := c.compileExpr(x.L)
	if err != nil {
		return ir.Operand{}, ir.Type{}, err
	}
	r, rt, err := c.compileExpr(x.R)
	if err != nil {
		return ir.Operand{}, ir.Type{}, err
	}

	// Boolean equality.
	if lt.Kind == ir.Bool || rt.Kind == ir.Bool {
		if x.Op != tEq && x.Op != tNe {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col,
				"operator %s not defined on bool", opName(x.Op))
		}
		if lt.Kind != rt.Kind {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "type mismatch: %s vs %s", lt, rt)
		}
		dst := c.newTemp(boolT)
		o := ir.OpEq
		if x.Op == tNe {
			o = ir.OpNe
		}
		c.emit(ir.Instr{Op: o, Dst: dst, A: l, B: r, T: boolT, Pos: pos})
		return ir.LocalOp(dst), boolT, nil
	}

	// Pointer operands: cell-granular address arithmetic, same-object
	// ordering, and null/equality tests.
	if lt.Kind == ir.Ptr || rt.Kind == ir.Ptr {
		return c.compilePtrBinary(x, l, lt, r, rt)
	}

	// Numeric operands: unify types.
	opT, err2 := c.unifyNumeric(&l, lt, &r, rt, x)
	if err2 != nil {
		return ir.Operand{}, ir.Type{}, err2
	}

	var o ir.Op
	resT := opT
	switch x.Op {
	case tPlus:
		o = ir.OpAdd
	case tMinus:
		o = ir.OpSub
	case tStar:
		o = ir.OpMul
	case tSlash:
		o = ir.OpDiv
	case tPercent:
		o = ir.OpRem
	case tAmp:
		o = ir.OpAnd
	case tPipe:
		o = ir.OpOrB
	case tCaret:
		o = ir.OpXor
	case tShl:
		o = ir.OpShl
	case tShr:
		o = ir.OpShr
	case tEq:
		o, resT = ir.OpEq, boolT
	case tNe:
		o, resT = ir.OpNe, boolT
	case tLt:
		o, resT = ir.OpLt, boolT
	case tLe:
		o, resT = ir.OpLe, boolT
	case tGt:
		o, resT = ir.OpLt, boolT
		l, r = r, l
	case tGe:
		o, resT = ir.OpLe, boolT
		l, r = r, l
	default:
		return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "unknown operator")
	}
	dst := c.newTemp(resT)
	c.emit(ir.Instr{Op: o, Dst: dst, A: l, B: r, T: opT, Pos: pos})
	return ir.LocalOp(dst), resT, nil
}

// compilePtrBinary compiles the binary operators defined on pointers:
//
//	ptr + int, int + ptr, ptr - int  -> ptr   (cell-granular strides)
//	ptr - ptr                        -> int   (cell distance; meaningful
//	                                           within one object)
//	ptr == / != ptr (or the 0 null constant) -> bool
//	ptr < <= > >= ptr                -> bool  (unsigned address order;
//	                                           meaningful within one object)
//
// Everything else is a compile error. Byte operands widen to int first so a
// byte-valued stride works unannotated.
func (c *funcCompiler) compilePtrBinary(x *BinaryExpr, l ir.Operand, lt ir.Type, r ir.Operand, rt ir.Type) (ir.Operand, ir.Type, error) {
	pos := ir.Pos{Line: x.Line, Col: x.Col}
	ptrT := ir.Type{Kind: ir.Ptr}
	intT := ir.Type{Kind: ir.Int}
	boolT := ir.Type{Kind: ir.Bool}
	var err error
	if lt.Kind == ir.Byte {
		if l, err = c.coerce(l, lt, intT, x.L); err != nil {
			return ir.Operand{}, ir.Type{}, err
		}
		lt = intT
	}
	if rt.Kind == ir.Byte {
		if r, err = c.coerce(r, rt, intT, x.R); err != nil {
			return ir.Operand{}, ir.Type{}, err
		}
		rt = intT
	}
	bothPtr := lt.Kind == ir.Ptr && rt.Kind == ir.Ptr
	emit := func(op ir.Op, resT ir.Type) (ir.Operand, ir.Type, error) {
		dst := c.newTemp(resT)
		c.emit(ir.Instr{Op: op, Dst: dst, A: l, B: r, T: ptrT, Pos: pos})
		return ir.LocalOp(dst), resT, nil
	}
	switch x.Op {
	case tPlus:
		if bothPtr {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "cannot add two pointers")
		}
		if lt.Kind != ir.Ptr { // int + ptr: commute so A is the pointer
			l, r = r, l
		}
		return emit(ir.OpAdd, ptrT)
	case tMinus:
		if bothPtr {
			return emit(ir.OpSub, intT)
		}
		if lt.Kind != ir.Ptr {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col, "cannot subtract a pointer from an int")
		}
		return emit(ir.OpSub, ptrT)
	case tEq, tNe:
		if !bothPtr {
			// Only the null constant compares against a pointer.
			if lt.Kind != ir.Ptr {
				if l, err = c.coerce(l, lt, ptrT, x.L); err != nil {
					return ir.Operand{}, ir.Type{}, err
				}
			} else if r, err = c.coerce(r, rt, ptrT, x.R); err != nil {
				return ir.Operand{}, ir.Type{}, err
			}
		}
		op := ir.OpEq
		if x.Op == tNe {
			op = ir.OpNe
		}
		return emit(op, boolT)
	case tLt, tLe, tGt, tGe:
		if !bothPtr {
			return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col,
				"pointer ordering requires two pointers")
		}
		if x.Op == tGt || x.Op == tGe {
			l, r = r, l
		}
		op := ir.OpLt
		if x.Op == tLe || x.Op == tGe {
			op = ir.OpLe
		}
		return emit(op, boolT)
	}
	return ir.Operand{}, ir.Type{}, c.errAt(x.Line, x.Col,
		"operator %s not defined on ptr", opName(x.Op))
}

// unifyNumeric reconciles the operand types of a numeric binary operator:
// byte⊕byte stays byte, int⊕int stays int, and mixed combinations promote
// byte to int — except that an int *constant* meeting a byte narrows to byte
// when it fits, which keeps `buf[i] != '0'`-style comparisons byte-width.
func (c *funcCompiler) unifyNumeric(l *ir.Operand, lt ir.Type, r *ir.Operand, rt ir.Type, x *BinaryExpr) (ir.Type, error) {
	intT := ir.Type{Kind: ir.Int}
	byteT := ir.Type{Kind: ir.Byte}
	switch {
	case lt.Kind == ir.Int && rt.Kind == ir.Int:
		return intT, nil
	case lt.Kind == ir.Byte && rt.Kind == ir.Byte:
		return byteT, nil
	case lt.Kind == ir.Byte && rt.Kind == ir.Int:
		if r.IsConst && r.Const >= 0 && r.Const <= 255 {
			return byteT, nil
		}
		v, err := c.coerce(*l, lt, intT, x.L)
		if err != nil {
			return intT, err
		}
		*l = v
		return intT, nil
	case lt.Kind == ir.Int && rt.Kind == ir.Byte:
		if l.IsConst && l.Const >= 0 && l.Const <= 255 {
			return byteT, nil
		}
		v, err := c.coerce(*r, rt, intT, x.R)
		if err != nil {
			return intT, err
		}
		*r = v
		return intT, nil
	}
	return intT, c.errAt(x.Line, x.Col, "invalid operand types %s and %s", lt, rt)
}

func opName(k tokKind) string {
	switch k {
	case tPlus:
		return "+"
	case tMinus:
		return "-"
	case tStar:
		return "*"
	case tSlash:
		return "/"
	case tPercent:
		return "%"
	case tLt:
		return "<"
	case tLe:
		return "<="
	case tGt:
		return ">"
	case tGe:
		return ">="
	case tEq:
		return "=="
	case tNe:
		return "!="
	default:
		return "?"
	}
}

// compileCall handles builtins and user calls. wantValue reports whether the
// caller uses the result.
func (c *funcCompiler) compileCall(x *CallExpr, wantValue bool) (ir.Operand, ir.Type, error) {
	pos := ir.Pos{Line: x.Line, Col: x.Col}
	intT := ir.Type{Kind: ir.Int}
	byteT := ir.Type{Kind: ir.Byte}
	boolT := ir.Type{Kind: ir.Bool}
	voidT := ir.Type{Kind: ir.Void}

	argError := func(want string) error {
		return c.errAt(x.Line, x.Col, "%s expects %s", x.Name, want)
	}
	compileArgs := func() ([]ir.Operand, []ir.Type, error) {
		ops := make([]ir.Operand, len(x.Args))
		ts := make([]ir.Type, len(x.Args))
		for i, a := range x.Args {
			op, t, err := c.compileExpr(a)
			if err != nil {
				return nil, nil, err
			}
			ops[i], ts[i] = op, t
		}
		return ops, ts, nil
	}

	switch x.Name {
	case "putchar":
		if len(x.Args) != 1 {
			return ir.Operand{}, voidT, argError("1 argument")
		}
		op, t, err := c.compileExpr(x.Args[0])
		if err != nil {
			return ir.Operand{}, voidT, err
		}
		if t.Kind != ir.Byte && t.Kind != ir.Int {
			return ir.Operand{}, voidT, argError("a byte or int")
		}
		c.emit(ir.Instr{Op: ir.OpOut, Dst: -1, A: op, T: t, Pos: pos})
		return ir.Operand{}, voidT, nil
	case "argc":
		if len(x.Args) != 0 {
			return ir.Operand{}, intT, argError("no arguments")
		}
		dst := c.newTemp(intT)
		c.emit(ir.Instr{Op: ir.OpArgc, Dst: dst, T: intT, Pos: pos})
		return ir.LocalOp(dst), intT, nil
	case "argchar":
		if len(x.Args) != 2 {
			return ir.Operand{}, byteT, argError("2 int arguments")
		}
		ops, ts, err := compileArgs()
		if err != nil {
			return ir.Operand{}, byteT, err
		}
		for i := range ops {
			if ops[i], err = c.coerce(ops[i], ts[i], intT, x.Args[i]); err != nil {
				return ir.Operand{}, byteT, err
			}
		}
		dst := c.newTemp(byteT)
		c.emit(ir.Instr{Op: ir.OpArgChar, Dst: dst, A: ops[0], B: ops[1], T: byteT, Pos: pos})
		return ir.LocalOp(dst), byteT, nil
	case "stdinchar":
		if len(x.Args) != 1 {
			return ir.Operand{}, byteT, argError("1 int argument")
		}
		op, t, err := c.compileExpr(x.Args[0])
		if err != nil {
			return ir.Operand{}, byteT, err
		}
		if op, err = c.coerce(op, t, intT, x.Args[0]); err != nil {
			return ir.Operand{}, byteT, err
		}
		dst := c.newTemp(byteT)
		c.emit(ir.Instr{Op: ir.OpStdin, Dst: dst, A: op, T: byteT, Pos: pos})
		return ir.LocalOp(dst), byteT, nil
	case "stdinlen":
		if len(x.Args) != 0 {
			return ir.Operand{}, intT, argError("no arguments")
		}
		dst := c.newTemp(intT)
		c.emit(ir.Instr{Op: ir.OpStdinLen, Dst: dst, T: intT, Pos: pos})
		return ir.LocalOp(dst), intT, nil
	case "sym_int", "sym_byte", "sym_bool":
		if len(x.Args) != 0 {
			return ir.Operand{}, intT, argError("no arguments")
		}
		var o ir.Op
		var t ir.Type
		switch x.Name {
		case "sym_int":
			o, t = ir.OpSymInt, intT
		case "sym_byte":
			o, t = ir.OpSymByte, byteT
		default:
			o, t = ir.OpSymBool, boolT
		}
		dst := c.newTemp(t)
		c.emit(ir.Instr{Op: o, Dst: dst, T: t, Pos: pos})
		return ir.LocalOp(dst), t, nil
	case "assume", "assert":
		if len(x.Args) != 1 {
			return ir.Operand{}, voidT, argError("1 bool argument")
		}
		op, err := c.compileCond(x.Args[0])
		if err != nil {
			return ir.Operand{}, voidT, err
		}
		o := ir.OpAssume
		msg := ""
		if x.Name == "assert" {
			o = ir.OpAssert
			msg = "assertion failed"
		}
		c.emit(ir.Instr{Op: o, Dst: -1, A: op, Msg: msg, Pos: pos})
		return ir.Operand{}, voidT, nil
	case "halt":
		if len(x.Args) > 1 {
			return ir.Operand{}, voidT, argError("0 or 1 int arguments")
		}
		in := ir.Instr{Op: ir.OpHalt, Dst: -1, Pos: pos}
		if len(x.Args) == 1 {
			op, t, err := c.compileExpr(x.Args[0])
			if err != nil {
				return ir.Operand{}, voidT, err
			}
			if op, err = c.coerce(op, t, intT, x.Args[0]); err != nil {
				return ir.Operand{}, voidT, err
			}
			in.A, in.HasVal, in.T = op, true, intT
		}
		c.emit(in)
		return ir.Operand{}, voidT, nil
	case "toint":
		if len(x.Args) != 1 {
			return ir.Operand{}, intT, argError("1 argument")
		}
		op, t, err := c.compileExpr(x.Args[0])
		if err != nil {
			return ir.Operand{}, intT, err
		}
		dst := c.newTemp(intT)
		switch t.Kind {
		case ir.Byte:
			c.emit(ir.Instr{Op: ir.OpByteToInt, Dst: dst, A: op, T: intT, Pos: pos})
		case ir.Bool:
			c.emit(ir.Instr{Op: ir.OpBoolToInt, Dst: dst, A: op, T: intT, Pos: pos})
		case ir.Int, ir.Ptr:
			c.emit(ir.Instr{Op: ir.OpMov, Dst: dst, A: op, T: intT, Pos: pos})
		default:
			return ir.Operand{}, intT, argError("a scalar")
		}
		return ir.LocalOp(dst), intT, nil
	case "alloc":
		ptrT := ir.Type{Kind: ir.Ptr}
		if len(x.Args) != 1 {
			return ir.Operand{}, ptrT, argError("1 int argument")
		}
		op, t, err := c.compileExpr(x.Args[0])
		if err != nil {
			return ir.Operand{}, ptrT, err
		}
		if op, err = c.coerce(op, t, intT, x.Args[0]); err != nil {
			return ir.Operand{}, ptrT, err
		}
		// Site indices must stay encodable: site*HeapSiteSpan+count <= HeapMaxID.
		if *c.sites >= ir.HeapMaxID/ir.HeapSiteSpan {
			return ir.Operand{}, ptrT, c.errAt(x.Line, x.Col,
				"too many allocation sites (max %d)", ir.HeapMaxID/ir.HeapSiteSpan)
		}
		site := *c.sites
		*c.sites++
		dst := c.newTemp(ptrT)
		c.emit(ir.Instr{Op: ir.OpAlloc, Dst: dst, A: op, Site: site, T: ptrT, Pos: pos})
		return ir.LocalOp(dst), ptrT, nil
	case "tobyte":
		if len(x.Args) != 1 {
			return ir.Operand{}, byteT, argError("1 argument")
		}
		op, t, err := c.compileExpr(x.Args[0])
		if err != nil {
			return ir.Operand{}, byteT, err
		}
		dst := c.newTemp(byteT)
		switch t.Kind {
		case ir.Int:
			c.emit(ir.Instr{Op: ir.OpIntToByte, Dst: dst, A: op, T: byteT, Pos: pos})
		case ir.Byte:
			c.emit(ir.Instr{Op: ir.OpMov, Dst: dst, A: op, T: byteT, Pos: pos})
		default:
			return ir.Operand{}, byteT, argError("a numeric value")
		}
		return ir.LocalOp(dst), byteT, nil
	case "make_symbolic":
		if len(x.Args) != 1 {
			return ir.Operand{}, voidT, argError("1 array argument")
		}
		id, ok := x.Args[0].(*Ident)
		if !ok {
			return ir.Operand{}, voidT, argError("an array variable")
		}
		idx, ok := c.lookup(id.Name)
		if !ok || !c.fn.Locals[idx].Type.Array() {
			return ir.Operand{}, voidT, argError("an array variable")
		}
		c.emit(ir.Instr{Op: ir.OpMakeSymArr, Dst: -1, A: ir.LocalOp(idx), Pos: pos})
		return ir.Operand{}, voidT, nil
	}

	// User-defined function.
	callee, ok := c.prog.ByName[x.Name]
	if !ok {
		return ir.Operand{}, voidT, c.errAt(x.Line, x.Col, "undefined function %s", x.Name)
	}
	decl := c.calleeDecl(x.Name)
	if len(x.Args) != len(decl.Params) {
		return ir.Operand{}, voidT, c.errAt(x.Line, x.Col,
			"%s expects %d arguments, got %d", x.Name, len(decl.Params), len(x.Args))
	}
	args := make([]ir.Operand, len(x.Args))
	for i, a := range x.Args {
		op, t, err := c.compileExpr(a)
		if err != nil {
			return ir.Operand{}, voidT, err
		}
		want := decl.Params[i].Type
		if want.Array() {
			if t.Kind != want.Kind || t.Len != want.Len {
				line, col := a.pos()
				return ir.Operand{}, voidT, c.errAt(line, col,
					"argument %d: cannot pass %s as %s", i+1, t, want)
			}
			args[i] = op
			continue
		}
		op, err = c.coerce(op, t, want, a)
		if err != nil {
			return ir.Operand{}, voidT, err
		}
		args[i] = op
	}
	dst := -1
	if callee.Ret.Kind != ir.Void && wantValue {
		dst = c.newTemp(callee.Ret)
	}
	c.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Callee: callee.Index, Args: args,
		T: callee.Ret, Pos: pos})
	if dst < 0 {
		return ir.Operand{}, callee.Ret, nil
	}
	return ir.LocalOp(dst), callee.Ret, nil
}

// calleeDecl finds the AST declaration for a function (needed for parameter
// types before the callee's body has been compiled).
func (c *funcCompiler) calleeDecl(name string) *FuncDecl {
	fd, ok := c.decls[name]
	if !ok {
		panic("lang: missing declaration for " + name)
	}
	return fd
}
