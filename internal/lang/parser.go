package lang

import (
	"fmt"

	"symmerge/internal/ir"
)

// parser is a hand-written recursive-descent parser for MiniC.
type parser struct {
	lex *lexer
	tok token // lookahead
}

// Parse parses a MiniC compilation unit.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.kind != tEOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	return f, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) accept(k tokKind) (bool, error) {
	if p.tok.kind != k {
		return false, nil
	}
	return true, p.advance()
}

// parseTypeName parses a scalar type keyword (or void).
func (p *parser) parseTypeName() (ir.Type, bool, error) {
	var t ir.Type
	switch p.tok.kind {
	case tKwInt:
		t = ir.Type{Kind: ir.Int}
	case tKwByte:
		t = ir.Type{Kind: ir.Byte}
	case tKwBool:
		t = ir.Type{Kind: ir.Bool}
	case tKwPtr:
		t = ir.Type{Kind: ir.Ptr}
	case tKwVoid:
		t = ir.Type{Kind: ir.Void}
	default:
		return ir.Type{}, false, nil
	}
	return t, true, p.advance()
}

// arrayOf converts a scalar type into its array type.
func arrayOf(elem ir.Type, n int) (ir.Type, error) {
	switch elem.Kind {
	case ir.Byte:
		return ir.Type{Kind: ir.ArrayByte, Len: n}, nil
	case ir.Int:
		return ir.Type{Kind: ir.ArrayInt, Len: n}, nil
	}
	return ir.Type{}, fmt.Errorf("arrays of %s are not supported", elem)
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	ret, ok, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, p.errf("expected type at top level, found %s", p.tok)
	}
	name, err := p.expect(tIdent, "function name")
	if err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.text, Ret: ret, Line: name.line, Col: name.col}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	for p.tok.kind != tRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tComma, "','"); err != nil {
				return nil, err
			}
		}
		pt, ok, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if !ok || pt.Kind == ir.Void {
			return nil, p.errf("expected parameter type, found %s", p.tok)
		}
		pname, err := p.expect(tIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		// Array parameter: `byte buf[16]` (size required: arrays are
		// fixed-size values passed by reference).
		if ok, err := p.accept(tLBracket); err != nil {
			return nil, err
		} else if ok {
			size, err := p.expect(tInt, "array size")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket, "']'"); err != nil {
				return nil, err
			}
			at, aerr := arrayOf(pt, int(size.val))
			if aerr != nil {
				return nil, &Error{Line: pname.line, Col: pname.col, Msg: aerr.Error()}
			}
			pt = at
		}
		fn.Params = append(fn.Params, Param{Name: pname.text, Type: pt})
	}
	if err := p.advance(); err != nil { // consume ')'
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for p.tok.kind != tRBrace {
		if p.tok.kind == tEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance()
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.tok.kind {
	case tLBrace:
		return p.parseBlock()
	case tKwInt, tKwByte, tKwBool, tKwPtr:
		s, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tSemi, "';'")
		return s, err
	case tKwIf:
		return p.parseIf()
	case tKwWhile:
		return p.parseWhile()
	case tKwFor:
		return p.parseFor()
	case tKwReturn:
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		st := &ReturnStmt{Line: line, Col: col}
		if p.tok.kind != tSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Value = e
		}
		_, err := p.expect(tSemi, "';'")
		return st, err
	case tKwBreak:
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(tSemi, "';'")
		return &BreakStmt{Line: line, Col: col}, err
	case tKwContinue:
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(tSemi, "';'")
		return &ContinueStmt{Line: line, Col: col}, err
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	_, err = p.expect(tSemi, "';'")
	return s, err
}

// parseVarDecl parses `type name`, `type name = expr`, `type name[N]`,
// `type name[] = "str"`, or `type name[N] = "str"`.
func (p *parser) parseVarDecl() (Stmt, error) {
	t, _, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if t.Kind == ir.Void {
		return nil, p.errf("cannot declare void variable")
	}
	name, err := p.expect(tIdent, "variable name")
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.text, Type: t, Line: name.line, Col: name.col}
	if ok, err := p.accept(tLBracket); err != nil {
		return nil, err
	} else if ok {
		size := -1
		if p.tok.kind == tInt {
			size = int(p.tok.val)
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		if ok, err := p.accept(tAssign); err != nil {
			return nil, err
		} else if ok {
			str, err := p.expect(tString, "string initializer")
			if err != nil {
				return nil, err
			}
			d.Str, d.HasStr = str.text, true
			if size < 0 {
				size = len(str.text) + 1 // include NUL terminator
			}
		}
		if size < 0 {
			return nil, &Error{Line: name.line, Col: name.col,
				Msg: "array declaration needs a size or string initializer"}
		}
		at, aerr := arrayOf(t, size)
		if aerr != nil {
			return nil, &Error{Line: name.line, Col: name.col, Msg: aerr.Error()}
		}
		d.Type = at
		return d, nil
	}
	if ok, err := p.accept(tAssign); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	return d, nil
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.tok.kind != tIdent {
		return nil, p.errf("expected statement, found %s", p.tok)
	}
	name := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch p.tok.kind {
	case tLParen:
		// function call statement
		call, err := p.parseCallAfterName(name)
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: call}, nil
	case tLBracket:
		if err := p.advance(); err != nil {
			return nil, err
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "']'"); err != nil {
			return nil, err
		}
		lv := &LValue{Name: name.text, Index: idx, Line: name.line, Col: name.col}
		return p.parseAssignTail(lv)
	default:
		lv := &LValue{Name: name.text, Line: name.line, Col: name.col}
		return p.parseAssignTail(lv)
	}
}

func (p *parser) parseAssignTail(lv *LValue) (Stmt, error) {
	op := p.tok.kind
	switch op {
	case tAssign, tPlusAssign, tMinusAssign:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lv, Op: op, Value: e, Line: lv.Line, Col: lv.Col}, nil
	case tInc, tDec:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lv, Op: op, Line: lv.Line, Col: lv.Col}, nil
	}
	return nil, p.errf("expected assignment operator, found %s", p.tok)
}

func (p *parser) parseIf() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if ok, err := p.accept(tKwElse); err != nil {
		return nil, err
	} else if ok {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if p.tok.kind != tSemi {
		var err error
		if p.tok.kind == tKwInt || p.tok.kind == tKwByte || p.tok.kind == tKwBool || p.tok.kind == tKwPtr {
			st.Init, err = p.parseVarDecl()
		} else {
			st.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tSemi, "';'"); err != nil {
		return nil, err
	}
	if p.tok.kind != tSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(tSemi, "';'"); err != nil {
		return nil, err
	}
	if p.tok.kind != tRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// --- Expressions (precedence climbing) ---

// Binding powers, loosest first: || && | ^ & ==,!= <,<=,>,>= <<,>> +,- *,/,%
func binPrec(k tokKind) int {
	switch k {
	case tOrOr:
		return 1
	case tAndAnd:
		return 2
	case tPipe:
		return 3
	case tCaret:
		return 4
	case tAmp:
		return 5
	case tEq, tNe:
		return 6
	case tLt, tLe, tGt, tGe:
		return 7
	case tShl, tShr:
		return 8
	case tPlus, tMinus:
		return 9
	case tStar, tSlash, tPercent:
		return 10
	}
	return 0
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.tok.kind)
		if prec < minPrec {
			return lhs, nil
		}
		op := p.tok.kind
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, L: lhs, R: rhs, Line: line, Col: col}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.tok.kind {
	case tBang, tMinus, tTilde:
		op := p.tok.kind
		line, col := p.tok.line, p.tok.col
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Line: line, Col: col}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tInt:
		e := &IntLit{Val: p.tok.val, Line: p.tok.line, Col: p.tok.col}
		return e, p.advance()
	case tChar:
		e := &IntLit{Val: p.tok.val, IsChar: true, Line: p.tok.line, Col: p.tok.col}
		return e, p.advance()
	case tKwTrue:
		e := &BoolLit{Val: true, Line: p.tok.line, Col: p.tok.col}
		return e, p.advance()
	case tKwFalse:
		e := &BoolLit{Val: false, Line: p.tok.line, Col: p.tok.col}
		return e, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tRParen, "')'")
		return e, err
	case tIdent:
		name := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tLParen:
			return p.parseCallAfterName(name)
		case tLBracket:
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket, "']'"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name.text, Index: idx, Line: name.line, Col: name.col}, nil
		}
		return &Ident{Name: name.text, Line: name.line, Col: name.col}, nil
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}

func (p *parser) parseCallAfterName(name token) (Expr, error) {
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	call := &CallExpr{Name: name.text, Line: name.line, Col: name.col}
	for p.tok.kind != tRParen {
		if len(call.Args) > 0 {
			if _, err := p.expect(tComma, "','"); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
	}
	return call, p.advance()
}
