package lang_test

// Conformance tests for MiniC semantics: each program is fully concrete
// (single path), so the engine acts as a reference interpreter and the
// program's output pins down evaluation semantics end to end — parser,
// compiler, IR, engine, and the expression layer's constant folding.

import (
	"testing"

	"symmerge/symx"
)

// runConcrete executes a concrete MiniC program and returns its single
// path's output and exit code.
func runConcrete(t *testing.T, src string) (string, int64) {
	t.Helper()
	p, err := symx.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := symx.Run(p, symx.Config{CollectTests: true})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Stats.PathsCompleted != 1 {
		t.Fatalf("concrete program explored %d paths", res.Stats.PathsCompleted)
	}
	if len(res.Tests) != 1 {
		t.Fatalf("got %d tests", len(res.Tests))
	}
	return string(res.Tests[0].Output), res.Tests[0].Exit
}

func TestArithmetic(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    int a = 7;
    int b = 3;
    putchar(tobyte('0' + a + b - 1));     // 9
    putchar(tobyte('0' + a * b % 10));    // 21 % 10 = 1
    putchar(tobyte('0' + a / b));         // 2
    putchar(tobyte('0' + a % b));         // 1
}
`)
	if out != "9121" {
		t.Fatalf("output %q, want 9121", out)
	}
}

func TestSignedDivision(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    int a = -7;
    int b = 2;
    int q = a / b;  // -3 (truncating)
    int r = a % b;  // -1 (sign of dividend)
    if (q == -3) { putchar('q'); }
    if (r == -1) { putchar('r'); }
}
`)
	if out != "qr" {
		t.Fatalf("output %q, want qr", out)
	}
}

func TestByteWraparound(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    byte b = 250;
    b += 10; // wraps to 4
    putchar('0' + b);
    byte c = 3;
    c -= 5;  // wraps to 254
    if (c == 254) { putchar('w'); }
}
`)
	if out != "4w" {
		t.Fatalf("output %q, want 4w", out)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    int x = 0x0f;
    if ((x & 0x3) == 3) { putchar('a'); }
    if ((x | 0x10) == 0x1f) { putchar('b'); }
    if ((x ^ 0xff) == 0xf0) { putchar('c'); }
    if ((x << 2) == 0x3c) { putchar('d'); }
    if ((x >> 2) == 3) { putchar('e'); }
    if ((~x & 0xff) == 0xf0) { putchar('f'); }
    int neg = -8;
    if ((neg >> 1) == -4) { putchar('g'); } // arithmetic shift on int
}
`)
	if out != "abcdefg" {
		t.Fatalf("output %q, want abcdefg", out)
	}
}

func TestShortCircuitSkipsRHS(t *testing.T) {
	// The right-hand side increments a counter; with short-circuit
	// evaluation it must run only when the left side allows.
	out, _ := runConcrete(t, `
bool bump() {
    // no globals in MiniC: simulate by output side effect
    putchar('x');
    return true;
}
void main() {
    if (false && bump()) { putchar('?'); }
    if (true || bump()) { putchar('y'); }
    if (true && bump()) { putchar('z'); }
}
`)
	// bump runs once (third condition), printing x before z.
	if out != "yxz" {
		t.Fatalf("output %q, want yxz", out)
	}
}

func TestLoopsBreakContinue(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    for (int i = 0; i < 10; i++) {
        if (i == 2) { continue; }
        if (i == 5) { break; }
        putchar(tobyte('0' + i));
    }
    int j = 0;
    while (true) {
        j++;
        if (j >= 3) { break; }
    }
    putchar(tobyte('0' + j));
}
`)
	if out != "01343" {
		t.Fatalf("output %q, want 01343", out)
	}
}

func TestArraysAndStrings(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    byte s[] = "ab";
    int v[4];
    v[0] = 10;
    v[1] = v[0] * 2;
    v[3] = v[1] + v[0];
    putchar(s[0]);
    putchar(s[1]);
    if (s[2] == 0) { putchar('0'); }       // NUL terminator
    putchar(tobyte('0' + v[3] / 10));       // 3
    if (v[2] == 0) { putchar('z'); }        // zero initialized
}
`)
	if out != "ab03z" {
		t.Fatalf("output %q, want ab03z", out)
	}
}

func TestArrayParamByReference(t *testing.T) {
	out, _ := runConcrete(t, `
void fill(byte buf[4], byte c) {
    for (int i = 0; i < 4; i++) {
        buf[i] = c + tobyte(i);
    }
}
void main() {
    byte b[4];
    fill(b, 'a');
    putchar(b[0]);
    putchar(b[3]);
}
`)
	if out != "ad" {
		t.Fatalf("output %q, want ad", out)
	}
}

func TestRecursion(t *testing.T) {
	out, _ := runConcrete(t, `
int fact(int n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
void main() {
    int f = fact(5); // 120
    putchar(tobyte('0' + f / 100));
    putchar(tobyte('0' + (f / 10) % 10));
    putchar(tobyte('0' + f % 10));
}
`)
	if out != "120" {
		t.Fatalf("output %q, want 120", out)
	}
}

func TestMutualRecursion(t *testing.T) {
	// Signatures are collected before bodies compile, so mutual recursion
	// needs no forward declarations.
	out, _ := runConcrete(t, `
bool isEven(int n) {
    if (n == 0) { return true; }
    return isOdd(n - 1);
}
bool isOdd(int n) {
    if (n == 0) { return false; }
    return isEven(n - 1);
}
void main() {
    if (isEven(6)) { putchar('e'); }
    if (isOdd(7)) { putchar('o'); }
}
`)
	if out != "eo" {
		t.Fatalf("output %q, want eo", out)
	}
}

func TestExitCode(t *testing.T) {
	_, exit := runConcrete(t, `void main() { halt(3); }`)
	if exit != 3 {
		t.Fatalf("exit %d, want 3", exit)
	}
	_, exit = runConcrete(t, `void main() { putchar('x'); }`)
	if exit != 0 {
		t.Fatalf("implicit exit %d, want 0", exit)
	}
}

func TestCompoundAssignOnArrays(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    int v[2];
    v[0] = 5;
    v[0] += 3;
    v[0] -= 1;
    v[1]++;
    putchar(tobyte('0' + v[0] % 10)); // 7
    putchar(tobyte('0' + v[1]));      // 1
}
`)
	if out != "71" {
		t.Fatalf("output %q, want 71", out)
	}
}

func TestComparisonChain(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    byte lo = 10;
    byte hi = 200;
    if (lo < hi) { putchar('a'); }   // unsigned byte compare
    int slo = -5;
    int shi = 5;
    if (slo < shi) { putchar('b'); } // signed int compare
    if (slo <= -5) { putchar('c'); }
    if (shi >= 5) { putchar('d'); }
    if (shi > slo) { putchar('e'); }
    if (lo != hi) { putchar('f'); }
}
`)
	if out != "abcdef" {
		t.Fatalf("output %q, want abcdef", out)
	}
}

func TestNestedScopes(t *testing.T) {
	out, _ := runConcrete(t, `
void main() {
    int x = 1;
    {
        int y = 2;
        putchar(tobyte('0' + x + y)); // 3
    }
    for (int y = 0; y < 1; y++) {
        putchar(tobyte('0' + x + y)); // 1
    }
    putchar(tobyte('0' + x));         // 1
}
`)
	if out != "311" {
		t.Fatalf("output %q, want 311", out)
	}
}
