package lang

import (
	"strings"
	"testing"

	"symmerge/internal/ir"
)

func TestLexerBasics(t *testing.T) {
	l := newLexer(`int x = 0x1f; // comment
/* block
comment */ byte c = 'a'; s = "hi\n";`)
	var kinds []tokKind
	var vals []int64
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind == tEOF {
			break
		}
		kinds = append(kinds, tok.kind)
		vals = append(vals, tok.val)
	}
	want := []tokKind{tKwInt, tIdent, tAssign, tInt, tSemi,
		tKwByte, tIdent, tAssign, tChar, tSemi,
		tIdent, tAssign, tString, tSemi}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(kinds), len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, kinds[i], want[i])
		}
	}
	if vals[3] != 0x1f {
		t.Fatalf("hex literal = %d, want 31", vals[3])
	}
	if vals[8] != 'a' {
		t.Fatalf("char literal = %d, want 'a'", vals[8])
	}
}

func TestLexerOperators(t *testing.T) {
	l := newLexer(`== != <= >= << >> && || ++ -- += -= = < >`)
	want := []tokKind{tEq, tNe, tLe, tGe, tShl, tShr, tAndAnd, tOrOr,
		tInc, tDec, tPlusAssign, tMinusAssign, tAssign, tLt, tGt}
	for i, w := range want {
		tok, err := l.next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.kind != w {
			t.Fatalf("token %d: got %v (%q), want %v", i, tok.kind, tok.text, w)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"'a",      // unterminated char
		`"abc`,    // unterminated string
		"/* nope", // unterminated comment
		`'\q'`,    // unknown escape
		"@",       // stray character
	}
	for _, src := range cases {
		l := newLexer(src)
		var err error
		for err == nil {
			var tok token
			tok, err = l.next()
			if err == nil && tok.kind == tEOF {
				t.Fatalf("lexing %q did not error", src)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", `void f() {}`, "no main"},
		{"undefined var", `void main() { x = 1; }`, "undefined variable"},
		{"undefined func", `void main() { g(); }`, "undefined function"},
		{"redeclared", `void main() { int x; int x; }`, "redeclared"},
		{"type mismatch", `void main() { bool b = 1; }`, "cannot use"},
		{"bool condition", `void main() { if (1) { } }`, "must be bool"},
		{"break outside", `void main() { break; }`, "break outside loop"},
		{"continue outside", `void main() { continue; }`, "continue outside"},
		{"void value", `void f() {} void main() { int x = f(); }`, "cannot use"},
		{"wrong arity", `void f(int a) {} void main() { f(); }`, "expects 1 arguments"},
		{"return from void", `void main() { return 3; }`, "cannot return a value"},
		{"missing return value", `int f() { return; } void main() {}`, "must return"},
		{"array assign", `void main() { byte b[4]; b = b; }`, "cannot assign to array"},
		{"index scalar", `void main() { int x; x[0] = 1; }`, "not an array"},
		{"main with params", `void main(int a) {}`, "main must take no parameters"},
		{"builtin redefined", `void putchar(int c) {} void main() {}`, "builtin"},
		{"dup function", `void f() {} void f() {} void main() {}`, "redeclared"},
		{"string too long", `void main() { byte b[2] = "abc"; }`, "does not fit"},
		{"byte overflow", `void main() { byte b = 300; }`, "does not fit"},
		{"bool arith", `void main() { bool b; int x = 1 + (b == b); }`, "not defined on bool"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("%s: compiled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`void main() {`,
		`void main() { int; }`,
		`void main( { }`,
		`int 3x() {}`,
		`void main() { if x { } }`,
		`void main() { x += ; }`,
		`void main() { for (;;;) {} }`,
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("parsed invalid source %q", src)
		}
	}
}

func TestCompileStructure(t *testing.T) {
	p, err := Compile(`
int add(int a, int b) { return a + b; }
void main() {
    int x = add(2, 3);
    putchar(tobyte(x + '0'));
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("got %d functions", len(p.Funcs))
	}
	add := p.ByName["add"]
	if add.Params != 2 || add.Ret.Kind != ir.Int {
		t.Fatalf("add signature wrong: %d params ret %v", add.Params, add.Ret)
	}
	if p.Main == nil || p.Main.Name != "main" {
		t.Fatal("main not identified")
	}
	// Disassembly should mention the call.
	if !strings.Contains(p.String(), "call") {
		t.Fatal("missing call in disassembly")
	}
}

func TestShortCircuitCompilesToBranches(t *testing.T) {
	p, err := Compile(`
void main() {
    if (argchar(1,0) == 'a' && argchar(1,1) == 'b') {
        putchar('y');
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	branches := 0
	for _, in := range p.Main.Instrs {
		if in.Op == ir.OpCondBr {
			branches++
		}
	}
	// One branch for the && short-circuit plus one for the if.
	if branches < 2 {
		t.Fatalf("&& compiled to %d branches, want >= 2", branches)
	}
}

func TestStringInitializer(t *testing.T) {
	p, err := Compile(`
void main() {
    byte s[] = "hi";
    putchar(s[0]);
    putchar(s[1]);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// The array must be sized len+1 for the NUL.
	var found bool
	for _, l := range p.Main.Locals {
		if l.Name == "s" {
			found = true
			if l.Type.Kind != ir.ArrayByte || l.Type.Len != 3 {
				t.Fatalf("s has type %v, want byte[3]", l.Type)
			}
		}
	}
	if !found {
		t.Fatal("local s not found")
	}
}

func TestPositionsInErrors(t *testing.T) {
	_, err := Compile("void main() {\n  int x = yy;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line number 2", err)
	}
}
