package lang

import "symmerge/internal/ir"

// File is a parsed MiniC compilation unit.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is a function declaration with body.
type FuncDecl struct {
	Name   string
	Ret    ir.Type
	Params []Param
	Body   *BlockStmt
	Line   int
	Col    int
}

// Param is a function parameter.
type Param struct {
	Name string
	Type ir.Type
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface {
	exprNode()
	pos() (int, int)
}

// BlockStmt is `{ ... }`.
type BlockStmt struct{ Stmts []Stmt }

// VarDecl declares a local, optionally initialized. For byte arrays, Str
// holds an optional string-literal initializer.
type VarDecl struct {
	Name      string
	Type      ir.Type
	Init      Expr   // scalar initializer, may be nil
	Str       string // byte-array string initializer ("" if absent)
	HasStr    bool
	Line, Col int
}

// AssignStmt is lvalue = expr, or compound (+=, -=), or ++/--.
type AssignStmt struct {
	Target    *LValue
	Op        tokKind // tAssign, tPlusAssign, tMinusAssign, tInc, tDec
	Value     Expr    // nil for ++/--
	Line, Col int
}

// LValue is a variable or an array element.
type LValue struct {
	Name      string
	Index     Expr // nil for scalars
	Line, Col int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// ForStmt is for(init; cond; post) body.
type ForStmt struct {
	Init Stmt // may be nil (VarDecl or AssignStmt)
	Cond Expr // may be nil (=true)
	Post Stmt // may be nil
	Body Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Value     Expr // may be nil
	Line, Col int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line, Col int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line, Col int }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct{ X Expr }

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// IntLit is an integer literal (also used for char literals).
type IntLit struct {
	Val       int64
	IsChar    bool
	Line, Col int
}

// BoolLit is true/false.
type BoolLit struct {
	Val       bool
	Line, Col int
}

// Ident references a variable.
type Ident struct {
	Name      string
	Line, Col int
}

// IndexExpr is arr[i].
type IndexExpr struct {
	Name      string
	Index     Expr
	Line, Col int
}

// CallExpr is f(args...) — user function or builtin.
type CallExpr struct {
	Name      string
	Args      []Expr
	Line, Col int
}

// UnaryExpr is !x, -x, ~x.
type UnaryExpr struct {
	Op        tokKind
	X         Expr
	Line, Col int
}

// BinaryExpr is x op y, including short-circuit && and ||.
type BinaryExpr struct {
	Op        tokKind
	L, R      Expr
	Line, Col int
}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}

func (e *IntLit) pos() (int, int)     { return e.Line, e.Col }
func (e *BoolLit) pos() (int, int)    { return e.Line, e.Col }
func (e *Ident) pos() (int, int)      { return e.Line, e.Col }
func (e *IndexExpr) pos() (int, int)  { return e.Line, e.Col }
func (e *CallExpr) pos() (int, int)   { return e.Line, e.Col }
func (e *UnaryExpr) pos() (int, int)  { return e.Line, e.Col }
func (e *BinaryExpr) pos() (int, int) { return e.Line, e.Col }
