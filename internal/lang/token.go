// Package lang implements MiniC, the small C-like language in which the
// COREUTILS models and examples are written, together with its compiler to
// the symmerge/internal/ir three-address representation.
//
// MiniC is deliberately close to the C subset the paper's evaluation
// exercises: scalar ints/bytes/bools, fixed-size arrays, heap pointers
// (ptr locals from alloc(n), with pointer arithmetic and p[i] indirection),
// functions, short-circuit conditions (compiled to real branches, as LLVM
// does), loops, and intrinsics for symbolic input (argc/argchar/stdin/
// sym_*), assumptions and assertions.
package lang

import (
	"fmt"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tChar
	tString

	// punctuation
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBracket
	tRBracket
	tComma
	tSemi

	// operators
	tAssign
	tPlusAssign
	tMinusAssign
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tAmp
	tPipe
	tCaret
	tTilde
	tShl
	tShr
	tBang
	tAndAnd
	tOrOr
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tInc
	tDec

	// keywords
	tKwInt
	tKwByte
	tKwBool
	tKwPtr
	tKwVoid
	tKwIf
	tKwElse
	tKwWhile
	tKwFor
	tKwReturn
	tKwBreak
	tKwContinue
	tKwTrue
	tKwFalse
)

var keywords = map[string]tokKind{
	"int": tKwInt, "byte": tKwByte, "bool": tKwBool, "ptr": tKwPtr, "void": tKwVoid,
	"if": tKwIf, "else": tKwElse, "while": tKwWhile, "for": tKwFor,
	"return": tKwReturn, "break": tKwBreak, "continue": tKwContinue,
	"true": tKwTrue, "false": tKwFalse,
}

type token struct {
	kind tokKind
	text string
	val  int64 // tInt, tChar
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tIdent, tInt:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a positioned compile error.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...interface{}) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextByte() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.nextByte()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.nextByte()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.nextByte()
			l.nextByte()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.nextByte()
					l.nextByte()
					closed = true
					break
				}
				l.nextByte()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next scans the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.pos >= len(l.src) {
		return mk(tEOF, ""), nil
	}
	c := l.nextByte()
	switch {
	case isIdentStart(c):
		start := l.pos - 1
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.nextByte()
		}
		text := l.src[start:l.pos]
		if k, ok := keywords[text]; ok {
			return mk(k, text), nil
		}
		return mk(tIdent, text), nil
	case unicode.IsDigit(rune(c)):
		start := l.pos - 1
		base := int64(10)
		if c == '0' && l.pos < len(l.src) && (l.peekByte() == 'x' || l.peekByte() == 'X') {
			l.nextByte()
			base = 16
		}
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peekByte())) ||
			(base == 16 && isHexDigit(l.peekByte()))) {
			l.nextByte()
		}
		text := l.src[start:l.pos]
		var v int64
		var err error
		if base == 16 {
			v, err = parseInt(text[2:], 16)
		} else {
			v, err = parseInt(text, 10)
		}
		if err != nil {
			return token{}, &Error{Line: line, Col: col, Msg: "invalid integer literal " + text}
		}
		t := mk(tInt, text)
		t.val = v
		return t, nil
	case c == '\'':
		v, err := l.scanCharBody()
		if err != nil {
			return token{}, err
		}
		if l.pos >= len(l.src) || l.nextByte() != '\'' {
			return token{}, &Error{Line: line, Col: col, Msg: "unterminated character literal"}
		}
		t := mk(tChar, "")
		t.val = int64(v)
		return t, nil
	case c == '"':
		var buf []byte
		for {
			if l.pos >= len(l.src) {
				return token{}, &Error{Line: line, Col: col, Msg: "unterminated string literal"}
			}
			if l.peekByte() == '"' {
				l.nextByte()
				break
			}
			v, err := l.scanCharBody()
			if err != nil {
				return token{}, err
			}
			buf = append(buf, v)
		}
		return mk(tString, string(buf)), nil
	}
	two := func(second byte, k2, k1 tokKind) token {
		if l.peekByte() == second {
			l.nextByte()
			return mk(k2, string(c)+string(second))
		}
		return mk(k1, string(c))
	}
	switch c {
	case '(':
		return mk(tLParen, "("), nil
	case ')':
		return mk(tRParen, ")"), nil
	case '{':
		return mk(tLBrace, "{"), nil
	case '}':
		return mk(tRBrace, "}"), nil
	case '[':
		return mk(tLBracket, "["), nil
	case ']':
		return mk(tRBracket, "]"), nil
	case ',':
		return mk(tComma, ","), nil
	case ';':
		return mk(tSemi, ";"), nil
	case '+':
		if l.peekByte() == '+' {
			l.nextByte()
			return mk(tInc, "++"), nil
		}
		return two('=', tPlusAssign, tPlus), nil
	case '-':
		if l.peekByte() == '-' {
			l.nextByte()
			return mk(tDec, "--"), nil
		}
		return two('=', tMinusAssign, tMinus), nil
	case '*':
		return mk(tStar, "*"), nil
	case '/':
		return mk(tSlash, "/"), nil
	case '%':
		return mk(tPercent, "%"), nil
	case '~':
		return mk(tTilde, "~"), nil
	case '^':
		return mk(tCaret, "^"), nil
	case '&':
		return two('&', tAndAnd, tAmp), nil
	case '|':
		return two('|', tOrOr, tPipe), nil
	case '!':
		return two('=', tNe, tBang), nil
	case '=':
		return two('=', tEq, tAssign), nil
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			return mk(tShl, "<<"), nil
		}
		return two('=', tLe, tLt), nil
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			return mk(tShr, ">>"), nil
		}
		return two('=', tGe, tGt), nil
	}
	return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *lexer) scanCharBody() (byte, error) {
	if l.pos >= len(l.src) {
		return 0, l.errf("unterminated literal")
	}
	c := l.nextByte()
	if c != '\\' {
		return c, nil
	}
	if l.pos >= len(l.src) {
		return 0, l.errf("unterminated escape")
	}
	e := l.nextByte()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\', '\'', '"':
		return e, nil
	}
	return 0, l.errf("unknown escape \\%c", e)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func parseInt(s string, base int64) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty")
	}
	var v int64
	for i := 0; i < len(s); i++ {
		var d int64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		if d >= base {
			return 0, fmt.Errorf("digit %q out of range for base %d", c, base)
		}
		v = v*base + d
		if v > 1<<40 {
			return 0, fmt.Errorf("literal too large")
		}
	}
	return v, nil
}
