// sig.go: static eligibility analysis and canonical closure signatures.
//
// A callee is summarizable only when its call closure — the callee plus
// every function transitively reachable from it — is (a) acyclic, so
// recording terminates and never re-enters itself, (b) heap-contained, so
// the memory a summary must replay is the callee's array parameters plus
// heap objects the closure itself allocates, and (c) free of
// fresh-symbolic-input opcodes, whose variable numbering depends on how
// many symbolic values the *caller* path has already minted. Anything else
// falls back to inline exploration (the ISSUE's soundness gates).
//
// Heap containment refines the original all-or-nothing heap gate: when the
// dataflow effect analysis (internal/analysis) proves every heap read and
// write of the closure lands in objects allocated at the closure's own
// allocation sites, the closure cannot observe or mutate caller heap state,
// so its behavior is still a pure function of (arguments, environment) —
// provided the apply site has never executed those sites (fresh per-site
// counters reproduce the recording's canonical addresses; the engine checks
// that dynamically, RejectHeapBusy). Without analysis facts the strict gate
// stands.
//
// For an eligible callee the analysis renders the closure as a canonical
// signature string: every instruction of every closure function, in
// deterministic DFS order, with call targets renumbered to closure ordinals
// and source positions omitted. Two callees with equal signatures have
// bit-identical behavior as a function of (arguments, environment), so the
// signature — not the function index — keys the shared cache, letting all
// 47 coreutils tools in a paperbench run share summaries for their common
// helper functions.

package summary

import (
	"strconv"
	"strings"
	"sync"

	"symmerge/internal/analysis"
	"symmerge/internal/ir"
)

// Reason classifies why a call site was not discharged from a summary. The
// zero value means "no rejection".
type Reason uint8

// Rejection reasons, surfaced through obs summary_reject events and the
// negative-cache entries.
const (
	RejectNone      Reason = iota
	RejectRecursive        // call closure contains a cycle
	RejectHeap             // closure allocates or dereferences heap pointers
	RejectSymInput         // closure mints fresh symbolic inputs
	RejectTrivial          // closure too small for a summary to pay off
	RejectTruncated        // recording hit the step budget or was cancelled
	RejectAbort            // recording hit an engine-analysis failure
	RejectTooLarge         // recording produced more entries than the cap
	RejectDisabled         // summaries off for this engine (bounds checking)
	RejectAliased          // two array arguments alias the same object at this site
	RejectHeapBusy         // an allocation site of the closure already executed on this path
)

var reasonNames = [...]string{
	RejectNone: "none", RejectRecursive: "recursive", RejectHeap: "heap",
	RejectSymInput: "syminput", RejectTrivial: "trivial",
	RejectTruncated: "truncated", RejectAbort: "abort",
	RejectTooLarge: "toolarge", RejectDisabled: "disabled",
	RejectAliased: "aliased", RejectHeapBusy: "heapbusy",
}

func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "reason(" + strconv.Itoa(int(r)) + ")"
}

// FuncInfo is the per-callee verdict of the static analysis.
type FuncInfo struct {
	Reject   Reason // RejectNone when the callee is summarizable
	Sig      string // canonical closure signature ("" when rejected)
	SigID    int    // interned signature id within the cache (set by the engine)
	Closure  []int  // closure function indices, DFS order; Closure[0] = callee
	ReadsEnv bool   // closure reads argv/stdin — env fingerprint joins the key
	Branches int    // conditional branches in the closure
	Calls    int    // call instructions in the closure
	Instrs   int    // total instructions in the closure
	// HeapSites is the closure's own allocation sites (sorted), non-empty
	// exactly when the heap gate was lifted by the effect analysis. The
	// applying engine must see a zero allocation counter at each site
	// (RejectHeapBusy otherwise) and replays the recorded objects.
	HeapSites []int
}

// Worth reports whether summarizing is expected to beat inlining: the
// closure must either branch (so inlining multiplies paths) or be large
// enough that skipping straight-line re-execution pays for the cache
// machinery. The QCE analysis refines this with its per-callee query
// estimate when available (see qce.Analysis.SummaryBenefit).
func (fi *FuncInfo) Worth() bool {
	return fi.Branches > 0 || fi.Calls > 0 || fi.Instrs >= 16
}

// ProgInfo lazily computes and memoizes FuncInfo per function of one
// program. It is safe for concurrent use by the workers sharing an
// exploration.
type ProgInfo struct {
	p  *ir.Program
	mu sync.Mutex
	ap *analysis.Program
	fi []*FuncInfo
}

// NewProgInfo returns an empty analysis memo for p.
func NewProgInfo(p *ir.Program) *ProgInfo {
	return &ProgInfo{p: p, fi: make([]*FuncInfo, len(p.Funcs))}
}

// SetAnalysis supplies the dataflow facts that lift the heap gate. The
// first non-nil registration wins and later ones are ignored (every engine
// of a run shares one facts table, so they all pass the same pointer);
// verdicts memoized before registration keep the strict gate.
func (pi *ProgInfo) SetAnalysis(ap *analysis.Program) {
	pi.mu.Lock()
	if pi.ap == nil {
		pi.ap = ap
	}
	pi.mu.Unlock()
}

// Info returns the (memoized) analysis of function fi.
func (pi *ProgInfo) Info(fi int) *FuncInfo {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.fi[fi] == nil {
		pi.fi[fi] = analyze(pi.p, fi, pi.ap)
	}
	return pi.fi[fi]
}

// heapContained reports whether the effect analysis proves the closure
// rooted at fn touches only heap objects it allocates itself, returning the
// closure's allocation sites. A closure that reads or writes a site outside
// its own allocation set — or whose effects escaped to External (unknown
// pointer origins, cyclic call graph) — keeps the strict gate.
func heapContained(ap *analysis.Program, fn int) ([]int, bool) {
	eff := &ap.Effects[fn]
	if !eff.SiteStable() {
		return nil, false
	}
	own := make(map[int]bool, len(eff.Sites))
	for _, s := range eff.Sites {
		own[s] = true
	}
	for _, s := range eff.Reads {
		if !own[s] {
			return nil, false
		}
	}
	for _, s := range eff.Writes {
		if !own[s] {
			return nil, false
		}
	}
	return eff.Sites, true
}

func analyze(p *ir.Program, root int, ap *analysis.Program) *FuncInfo {
	info := &FuncInfo{}
	// Closure walk: DFS following call edges in instruction order. color
	// 1 = on stack (a revisit means a cycle), 2 = done.
	color := make(map[int]uint8)
	sawHeap := false
	var walk func(fn int) bool
	walk = func(fn int) bool {
		switch color[fn] {
		case 1:
			return false // cycle
		case 2:
			return true
		}
		color[fn] = 1
		info.Closure = append(info.Closure, fn)
		for i := range p.Funcs[fn].Instrs {
			in := &p.Funcs[fn].Instrs[i]
			info.Instrs++
			switch in.Op {
			case ir.OpAlloc, ir.OpPtrLoad, ir.OpPtrStore:
				// Not an immediate reject: the post-walk containment
				// check may lift the gate. Without analysis facts it
				// cannot, so bail out of the walk early then.
				sawHeap = true
				if ap == nil {
					info.Reject = RejectHeap
					return false
				}
			case ir.OpSymInt, ir.OpSymByte, ir.OpSymBool, ir.OpMakeSymArr:
				info.Reject = RejectSymInput
				return false
			case ir.OpArgc, ir.OpArgChar, ir.OpStdin, ir.OpStdinLen:
				info.ReadsEnv = true
			case ir.OpCondBr:
				info.Branches++
			case ir.OpCall:
				info.Calls++
				if !walk(in.Callee) {
					return false
				}
			}
		}
		color[fn] = 2
		return true
	}
	if !walk(root) {
		if info.Reject == RejectNone {
			info.Reject = RejectRecursive
		}
		info.Closure = nil
		return info
	}
	if sawHeap {
		sites, ok := heapContained(ap, root)
		if !ok {
			info.Reject = RejectHeap
			info.Closure = nil
			return info
		}
		info.HeapSites = sites
	}
	if !info.Worth() {
		info.Reject = RejectTrivial
		info.Closure = nil
		return info
	}
	info.Sig = encodeClosure(p, info.Closure)
	return info
}

// encodeClosure renders the closure as a canonical, position-independent
// signature. Call targets are rewritten to closure ordinals so two
// structurally identical helper sets in different programs (different
// function indices) encode identically.
func encodeClosure(p *ir.Program, closure []int) string {
	ord := make(map[int]int, len(closure))
	for i, fn := range closure {
		ord[fn] = i
	}
	var sb strings.Builder
	sb.Grow(64 * len(closure))
	num := func(v int64) {
		sb.WriteString(strconv.FormatInt(v, 36))
		sb.WriteByte(',')
	}
	operand := func(o ir.Operand) {
		if o.IsConst {
			sb.WriteByte('c')
			num(o.Const)
		} else {
			sb.WriteByte('l')
			num(int64(o.Local))
		}
	}
	typ := func(t ir.Type) {
		num(int64(t.Kind))
		if t.Array() {
			num(int64(t.Len))
		}
	}
	for _, fn := range closure {
		f := p.Funcs[fn]
		sb.WriteByte('F')
		num(int64(f.Params))
		typ(f.Ret)
		for _, l := range f.Locals {
			typ(l.Type)
		}
		sb.WriteByte(';')
		for i := range f.Instrs {
			in := &f.Instrs[i]
			num(int64(in.Op))
			num(int64(in.Dst))
			operand(in.A)
			operand(in.B)
			switch in.Op {
			case ir.OpBr:
				num(int64(in.Target))
			case ir.OpCondBr:
				num(int64(in.Target))
				num(int64(in.FTarget))
			case ir.OpAlloc:
				// The site id is baked into every address the allocation
				// mints (ir.HeapBase), so closures that differ only in
				// site numbering are behaviorally distinct.
				num(int64(in.Site))
			case ir.OpCall:
				num(int64(ord[in.Callee]))
				for _, a := range in.Args {
					operand(a)
				}
			case ir.OpRet, ir.OpHalt:
				if in.HasVal {
					sb.WriteByte('v')
				}
			case ir.OpAssert:
				sb.WriteString(strconv.Quote(in.Msg))
			}
			typ(in.T)
			sb.WriteByte(';')
		}
	}
	return sb.String()
}
