// Package summary implements the compositional function-summary cache: per
// callee, the set of (guard → return value, output effects, array-parameter
// writes, coverage, error obligations) entries obtained by exploring the
// callee once from an empty path condition over canonical placeholder
// arguments. A call site with a cache hit skips callee exploration
// entirely: the engine instantiates the entries by substituting the actual
// argument expressions for the placeholders, splices each entry's guard
// into the caller's path condition conjunct-wise, and discharges entry
// feasibility as assume-summary queries against the caller's incremental
// solver session.
//
// The cache is two-level and keyed by symbolic input class:
//
//   - The generic level stores one parameterized summary per (closure
//     signature, argument class, environment fingerprint). The argument
//     class abstracts each scalar argument and array-parameter cell to
//     either its concrete value (baked into the recording, so constant
//     folding prunes callee paths at record time) or a placeholder ordinal
//     that captures aliasing between symbolic slots but not their identity
//     — so a helper called in a loop with a different symbolic byte each
//     iteration is recorded once and instantiated per iteration.
//
//   - The instance level memoizes instantiated entry sets keyed by the
//     generic key plus the hash-consed canonical IDs of the distinct
//     actual argument expressions, so repeated visits of the same call
//     site with the same arguments pay no substitution cost.
//
// Both levels are sharded and safe for concurrent use: the cache joins the
// shared builder / shared solver-cache infrastructure injected across
// parallel workers, and — because summaries are canonical functions of the
// input class — a value computed by any worker is identical to the value
// any other worker would compute, so racing recorders are benign.
//
// The package depends only on expr and ir; the recording and application
// machinery lives in internal/core, which needs engine internals.
package summary

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"symmerge/internal/expr"
	"symmerge/internal/ir"
)

// EntryKind says how a recorded callee path terminated.
type EntryKind uint8

// Entry kinds.
const (
	KindReturn EntryKind = iota // normal return to the caller
	KindHalt                    // the callee executed halt(...)
	KindError                   // assertion failure / analysis error
	// KindSilent is a coverage-only entry: the prefix of a callee path up
	// to an assume that may be infeasible under a caller's path condition
	// the recording could not see. Applying it marks the prefix covered
	// (inline exploration would have executed it before dying) but
	// produces no continuation state.
	KindSilent
)

// LocRef is a coverage location within the closure: (closure ordinal,
// instruction index). The applying engine maps ordinals back to function
// indices through FuncInfo.Closure.
type LocRef struct {
	Ord, PC int
}

// ErrInfo is a recorded error obligation, location in closure-ordinal form.
// Source positions are reattached at apply time from the applying program.
type ErrInfo struct {
	Ord, PC int
	Msg     string
	Assert  bool
}

// OutEffect is one guarded output byte emitted by the callee.
type OutEffect struct {
	Guard *expr.Expr // nil = unconditional
	Val   *expr.Expr
}

// CellWrite records the final value of one array-parameter cell that the
// callee (possibly) changed.
type CellWrite struct {
	Param, Cell int
	Val         *expr.Expr
}

// HeapObj is one heap object a recorded callee path allocated, identified
// by its allocation site and its allocation-site-canonical object id (the
// id doAlloc mints from a zero per-site counter — the precondition the
// applying engine enforces via RejectHeapBusy). Cells hold the object's
// final values over the placeholders. Only return entries carry heap
// objects: a halted or errored path's heap is unobservable.
type HeapObj struct {
	Site  int
	ID    uint32
	Cells []*expr.Expr
}

// Entry is one callee path: its guard (the callee-relative path condition,
// conjunct list over placeholders and environment variables) plus the
// path's complete observable effect.
type Entry struct {
	PC     []*expr.Expr
	Kind   EntryKind
	Ret    *expr.Expr // return value (KindReturn) or exit code (KindHalt); may be nil
	Err    *ErrInfo   // KindError only
	Out    []OutEffect
	Writes []CellWrite
	Heap   []HeapObj
	Cov    []LocRef
}

// FuncSummary is a parameterized summary: the recorded entries over the
// placeholder variables in Placeholders (first-appearance order of the
// distinct symbolic argument slots).
type FuncSummary struct {
	Placeholders []*expr.Expr
	Entries      []Entry
}

// Instance is a summary instantiated for concrete actual arguments.
type Instance struct {
	Entries []Entry
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits, Misses   uint64 // generic-level lookups
	Records        uint64 // summaries recorded and stored
	Negative       uint64 // lookups answered by the negative cache
	InstHits       uint64 // instance-level lookups answered from cache
	InstBuilds     uint64 // instances built by substitution
	NegativeStored uint64 // negative entries stored
}

const nShards = 16

type shard struct {
	mu    sync.RWMutex
	sums  map[string]*FuncSummary
	insts map[string]*Instance
	neg   map[string]Reason
}

// Cache is the concurrent, sharded summary store shared engine-wide (and,
// in a paperbench run, across tools through a shared builder).
type Cache struct {
	shards [nShards]shard

	sigMu    sync.Mutex
	sigIDs   map[string]int
	sigsByID []string // dense reverse map: sigsByID[id-1] = signature text

	progMu sync.Mutex
	progs  map[*ir.Program]*ProgInfo

	hits, misses, records atomic.Uint64
	negHits, negStored    atomic.Uint64
	instHits, instBuilds  atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{sigIDs: make(map[string]int), progs: make(map[*ir.Program]*ProgInfo)}
	for i := range c.shards {
		c.shards[i].sums = make(map[string]*FuncSummary)
		c.shards[i].insts = make(map[string]*Instance)
		c.shards[i].neg = make(map[string]Reason)
	}
	return c
}

// Prog returns the (shared, lazily created) static-analysis memo for p. One
// cache may serve engines running different programs — paperbench shares a
// cache across all coreutils tools — so the memo is keyed per program.
func (c *Cache) Prog(p *ir.Program) *ProgInfo {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	pi, ok := c.progs[p]
	if !ok {
		pi = NewProgInfo(p)
		c.progs[p] = pi
	}
	return pi
}

// SigID interns a closure signature, returning a dense id that stands in
// for the full signature text in runtime keys. Interning compares the
// signature exactly — equal ids mean equal closure code, with no hash
// collision risk.
func (c *Cache) SigID(sig string) int {
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	id, ok := c.sigIDs[sig]
	if !ok {
		id = len(c.sigIDs) + 1
		c.sigIDs[sig] = id
		c.sigsByID = append(c.sigsByID, sig)
	}
	return id
}

// Export calls fn for every generic-level summary under its
// builder-independent identity: the full closure-signature text plus the
// key remainder (environment fingerprint and argument class — everything
// after the interned sig id). This is the persistence surface: sig ids are
// cache-local, signature text is canonical across processes. Negative and
// instance entries are process-local heuristic state and are not exported.
// fn runs outside the shard locks and must not call back into the cache.
func (c *Cache) Export(fn func(sig, rest string, s *FuncSummary)) {
	c.sigMu.Lock()
	byID := append([]string(nil), c.sigsByID...)
	c.sigMu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		type kv struct {
			key string
			s   *FuncSummary
		}
		sh.mu.RLock()
		pairs := make([]kv, 0, len(sh.sums))
		for k, s := range sh.sums {
			pairs = append(pairs, kv{k, s})
		}
		sh.mu.RUnlock()
		for _, p := range pairs {
			cut := strings.IndexByte(p.key, '|')
			if cut < 0 {
				continue
			}
			id, err := strconv.Atoi(p.key[:cut])
			if err != nil || id < 1 || id > len(byID) {
				continue
			}
			fn(byID[id-1], p.key[cut+1:], p.s)
		}
	}
}

// Seed installs a persisted summary under its builder-independent identity,
// interning sig into this cache's id space. First writer wins, same as
// Store; the summary's expressions must already live in the builder this
// cache's engines share.
func (c *Cache) Seed(sig, rest string, s *FuncSummary) {
	key := strconv.Itoa(c.SigID(sig)) + "|" + rest
	c.Store(key, s)
}

func (c *Cache) shard(key string) *shard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%nShards]
}

// Lookup consults the generic level. It returns the summary on a hit, or
// (nil, reason, false) when the key is negatively cached, or
// (nil, RejectNone, false) on a plain miss.
func (c *Cache) Lookup(key string) (*FuncSummary, Reason, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	s, ok := sh.sums[key]
	var neg Reason
	if !ok {
		neg = sh.neg[key]
	}
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return s, RejectNone, true
	}
	if neg != RejectNone {
		c.negHits.Add(1)
		return nil, neg, false
	}
	c.misses.Add(1)
	return nil, RejectNone, false
}

// Store publishes a recorded summary; the first writer wins and every
// caller continues with the canonical copy. (Racing recorders compute
// identical summaries — the recording is a deterministic function of the
// key — so either copy is the canonical one.)
func (c *Cache) Store(key string, s *FuncSummary) *FuncSummary {
	sh := c.shard(key)
	sh.mu.Lock()
	if prev, ok := sh.sums[key]; ok {
		sh.mu.Unlock()
		return prev
	}
	sh.sums[key] = s
	sh.mu.Unlock()
	c.records.Add(1)
	return s
}

// StoreNegative marks a key as not summarizable (dynamic gates: truncated
// or aborted recording, entry-count blowup) so later call sites skip the
// recording attempt and inline immediately.
func (c *Cache) StoreNegative(key string, r Reason) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, ok := sh.neg[key]; !ok {
		sh.neg[key] = r
		c.negStored.Add(1)
	}
	sh.mu.Unlock()
}

// Inst consults the instance level.
func (c *Cache) Inst(key string) (*Instance, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	in, ok := sh.insts[key]
	sh.mu.RUnlock()
	if ok {
		c.instHits.Add(1)
	}
	return in, ok
}

// StoreInst publishes an instantiated summary; first writer wins.
func (c *Cache) StoreInst(key string, in *Instance) *Instance {
	sh := c.shard(key)
	sh.mu.Lock()
	if prev, ok := sh.insts[key]; ok {
		sh.mu.Unlock()
		return prev
	}
	sh.insts[key] = in
	sh.mu.Unlock()
	c.instBuilds.Add(1)
	return in
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Records:        c.records.Load(),
		Negative:       c.negHits.Load(),
		InstHits:       c.instHits.Load(),
		InstBuilds:     c.instBuilds.Load(),
		NegativeStored: c.negStored.Load(),
	}
}

// Instantiate substitutes the actual expressions for the summary's
// placeholders across every entry, sharing one memo so common subterms
// rebuild once. actuals[i] replaces Placeholders[i].
func (s *FuncSummary) Instantiate(b *expr.Builder, actuals []*expr.Expr) *Instance {
	bind := make(map[*expr.Expr]*expr.Expr, len(actuals))
	for i, p := range s.Placeholders {
		bind[p] = actuals[i]
	}
	memo := make(map[*expr.Expr]*expr.Expr)
	sub := func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		return b.Subst(e, bind, memo)
	}
	inst := &Instance{Entries: make([]Entry, len(s.Entries))}
	for i := range s.Entries {
		src := &s.Entries[i]
		dst := &inst.Entries[i]
		*dst = *src // shares Cov, Err; expr-bearing slices rebuilt below
		dst.Ret = sub(src.Ret)
		if len(src.PC) > 0 {
			dst.PC = make([]*expr.Expr, 0, len(src.PC))
			for _, c := range src.PC {
				sc := sub(c)
				switch {
				case sc.IsTrue():
					// folded away under concrete arguments
				case sc.Kind == expr.KAnd:
					dst.PC = append(dst.PC, sc.Kids...)
				default:
					dst.PC = append(dst.PC, sc)
				}
			}
		}
		if len(src.Out) > 0 {
			dst.Out = make([]OutEffect, len(src.Out))
			for j, o := range src.Out {
				dst.Out[j] = OutEffect{Guard: sub(o.Guard), Val: sub(o.Val)}
			}
		}
		if len(src.Writes) > 0 {
			dst.Writes = make([]CellWrite, len(src.Writes))
			for j, w := range src.Writes {
				dst.Writes[j] = CellWrite{Param: w.Param, Cell: w.Cell, Val: sub(w.Val)}
			}
		}
		if len(src.Heap) > 0 {
			dst.Heap = make([]HeapObj, len(src.Heap))
			for j, h := range src.Heap {
				cells := make([]*expr.Expr, len(h.Cells))
				for c, v := range h.Cells {
					cells[c] = sub(v)
				}
				dst.Heap[j] = HeapObj{Site: h.Site, ID: h.ID, Cells: cells}
			}
		}
	}
	return inst
}

// KeyBuilder accumulates the two cache keys for one call site visit: the
// generic key (signature id + environment fingerprint + argument class)
// and the instance key (generic key + distinct actual expression IDs). It
// also collects the distinct symbolic actuals, in first-appearance order,
// matching the placeholder numbering the recorder uses.
type KeyBuilder struct {
	sb      strings.Builder
	seen    map[*expr.Expr]int
	Actuals []*expr.Expr // distinct symbolic argument slots, class order
}

// NewKeyBuilder starts a key for the given interned signature id, with the
// environment fingerprint (empty unless the closure reads argv/stdin).
func NewKeyBuilder(sigID int, env string) *KeyBuilder {
	kb := &KeyBuilder{seen: make(map[*expr.Expr]int)}
	kb.sb.WriteString(strconv.Itoa(sigID))
	kb.sb.WriteByte('|')
	kb.sb.WriteString(env)
	kb.sb.WriteByte('|')
	return kb
}

// Slot classifies one scalar argument or array cell: concrete values are
// baked into the class; symbolic expressions become placeholder ordinals
// that capture aliasing (the same expression in two slots reuses one
// ordinal). It returns the slot's placeholder ordinal, or -1 for a
// concrete slot, so the caller can mirror the recorder's placeholder
// numbering without a second pass.
func (kb *KeyBuilder) Slot(e *expr.Expr) int {
	if e.IsConst() {
		kb.sb.WriteByte('c')
		kb.sb.WriteString(strconv.FormatUint(e.Val, 36))
		kb.sb.WriteByte(',')
		return -1
	}
	ord, ok := kb.seen[e]
	if !ok {
		ord = len(kb.Actuals)
		kb.seen[e] = ord
		kb.Actuals = append(kb.Actuals, e)
	}
	kb.sb.WriteByte('s')
	kb.sb.WriteString(strconv.Itoa(ord))
	kb.sb.WriteByte(',')
	return ord
}

// Array opens an array-parameter group (length and element width join the
// class; the caller then Slots each cell).
func (kb *KeyBuilder) Array(n int, width uint8) {
	kb.sb.WriteByte('a')
	kb.sb.WriteString(strconv.Itoa(n))
	kb.sb.WriteByte(':')
	kb.sb.WriteString(strconv.Itoa(int(width)))
	kb.sb.WriteByte(';')
}

// GenericKey finalizes the generic-level key.
func (kb *KeyBuilder) GenericKey() string { return kb.sb.String() }

// InstanceKey derives the instance-level key from the generic key and the
// distinct actuals' hash-consed IDs.
func (kb *KeyBuilder) InstanceKey(generic string) string {
	var sb strings.Builder
	sb.Grow(len(generic) + 12*len(kb.Actuals) + 2)
	sb.WriteString(generic)
	sb.WriteByte('#')
	for _, a := range kb.Actuals {
		sb.WriteString(strconv.FormatUint(a.ID(), 36))
		sb.WriteByte(',')
	}
	return sb.String()
}

// EnvFingerprint renders the symbolic-environment configuration that the
// closure's argv/stdin reads depend on. Concrete bytes are embedded
// verbatim — the key must be exact, not probabilistic.
func EnvFingerprint(nargs, arglen, stdinlen int, concreteArgs []string, concreteStdin []byte, concrete bool) string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(nargs))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(arglen))
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(stdinlen))
	if concrete {
		sb.WriteByte('!')
		for _, a := range concreteArgs {
			sb.WriteString(strconv.Quote(a))
		}
		sb.WriteByte('/')
		sb.WriteString(strconv.Quote(string(concreteStdin)))
	}
	return sb.String()
}
