package core

import (
	"fmt"

	"symmerge/internal/analysis"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
)

// stepBlock executes the state up to the next basic-block boundary (branch
// taken, call, return, halt) and returns the successor states. The input
// state is reused as one of the successors whenever possible.
func (e *Engine) stepBlock(s *State) []*State {
	s.justRet = false
	for {
		f := s.top()
		fn := e.prog.Funcs[f.Fn]
		if f.PC >= len(fn.Instrs) {
			// Fell off the function end; treat as return (main: halt).
			if done := e.doReturnValue(s, nil); done {
				return []*State{s}
			}
			return e.blockBoundary(s)
		}
		loc := ir.Loc{Fn: f.Fn, PC: f.PC}
		in := &fn.Instrs[f.PC]
		e.markCovered(loc)
		e.stats.Instructions++
		if e.recording != nil {
			// Summary recording: keep the executed-location trail; it
			// becomes the entry's coverage set (summary.go).
			s.covTrail = append(s.covTrail, loc)
		}

		switch in.Op {
		case ir.OpNop:
			f.PC++
		case ir.OpMov, ir.OpNot, ir.OpNeg, ir.OpBNot,
			ir.OpIntToByte, ir.OpByteToInt, ir.OpBoolToInt:
			f.Locals[in.Dst] = Value{E: e.evalUnary(s, in)}
			f.PC++
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
			ir.OpAnd, ir.OpOrB, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpBoolAnd, ir.OpBoolOr:
			f.Locals[in.Dst] = Value{E: e.evalBinary(s, in)}
			f.PC++
		case ir.OpLoad:
			v, err := e.doLoad(s, in)
			if err != nil {
				e.failPath(s, loc, in.Pos, err.Error())
				return []*State{s}
			}
			f.Locals[in.Dst] = Value{E: v}
			f.PC++
		case ir.OpStore:
			if err := e.doStore(s, in); err != nil {
				e.failPath(s, loc, in.Pos, err.Error())
				return []*State{s}
			}
			f.PC++
		case ir.OpAlloc:
			v, err := e.doAlloc(s, in)
			if err != nil {
				e.failPath(s, loc, in.Pos, err.Error())
				return []*State{s}
			}
			f.Locals[in.Dst] = Value{E: v}
			f.PC++
		case ir.OpPtrLoad:
			v, err := e.doPtrLoad(s, in)
			if err != nil {
				e.failPath(s, loc, in.Pos, err.Error())
				return []*State{s}
			}
			f.Locals[in.Dst] = Value{E: v}
			f.PC++
		case ir.OpPtrStore:
			if err := e.doPtrStore(s, in); err != nil {
				e.failPath(s, loc, in.Pos, err.Error())
				return []*State{s}
			}
			f.PC++
		case ir.OpArgc:
			f.Locals[in.Dst] = Value{E: e.build.Const(uint64(e.cfg.NArgs+1), 32)}
			f.PC++
		case ir.OpArgChar:
			f.Locals[in.Dst] = Value{E: e.doArgChar(s, in)}
			f.PC++
		case ir.OpStdin:
			idx := e.operand(s, in.A, ir.Type{Kind: ir.Int})
			f.Locals[in.Dst] = Value{E: e.build.SelectIte(e.stdin, idx, e.zero8)}
			f.PC++
		case ir.OpStdinLen:
			f.Locals[in.Dst] = Value{E: e.build.Const(uint64(e.cfg.StdinLen), 32)}
			f.PC++
		case ir.OpOut:
			v := e.operand(s, in.A, in.T)
			if in.T.Kind == ir.Int {
				v = e.build.Extract(v, 0, 8)
			}
			s.Output = appendOut(s.Output, OutEntry{Val: v})
			f.PC++
		case ir.OpSymInt, ir.OpSymByte, ir.OpSymBool:
			f.Locals[in.Dst] = Value{E: e.freshInput(s, in.Op)}
			f.PC++
		case ir.OpMakeSymArr:
			e.doMakeSymbolic(s, in)
			f.PC++
		case ir.OpAssume:
			cond := e.operand(s, in.A, ir.Type{Kind: ir.Bool})
			if e.recording != nil && !cond.IsTrue() {
				// The assume may cut this path short under a caller path
				// condition the recording cannot see; snapshot the prefix
				// so apply time can replicate inline partial coverage. A
				// trivially true assume never cuts, so every downstream
				// entry already carries this prefix's coverage.
				e.recording.assumePoint(s)
			}
			if !e.assume(s, cond) {
				s.Halt = HaltSilent // path contradiction: drop
				return []*State{s}
			}
			f.PC++
		case ir.OpAssert:
			return e.doAssert(s, in, loc)
		case ir.OpBr:
			f.PC = in.Target
			return e.blockBoundary(s)
		case ir.OpCondBr:
			return e.doBranch(s, in, loc)
		case ir.OpCall:
			if e.sum != nil {
				if succs, ok := e.summaryCall(s, in, loc); ok {
					return succs
				}
			}
			e.doCall(s, in)
			return e.blockBoundary(s)
		case ir.OpRet:
			var rv *expr.Expr
			if in.HasVal {
				rv = e.operand(s, in.A, in.T)
			}
			if done := e.doReturnValue(s, rv); done {
				return []*State{s}
			}
			return e.blockBoundary(s)
		case ir.OpHalt:
			s.Halt = HaltExit
			if in.HasVal {
				s.ExitCode = e.operand(s, in.A, in.T)
			}
			return []*State{s}
		default:
			panic(fmt.Sprintf("core: unknown opcode %v", in.Op))
		}
	}
}

// blockBoundary finalizes a step that ended at a new block: DSM history and
// current-hash maintenance happen here.
func (e *Engine) blockBoundary(s *State) []*State {
	if e.cfg.Merge == MergeDSM {
		h := e.simHash(s)
		s.pushHistory(h, e.cfg.DSMDelta)
	}
	return []*State{s}
}

// operand evaluates an operand in the current frame.
func (e *Engine) operand(s *State, o ir.Operand, t ir.Type) *expr.Expr {
	if o.IsConst {
		switch t.Kind {
		case ir.Bool:
			return e.build.Bool(o.Const != 0)
		case ir.Byte:
			return e.build.Const(uint64(o.Const), 8)
		default:
			return e.build.Const(uint64(o.Const), 32)
		}
	}
	v := s.top().Locals[o.Local]
	if v.E == nil {
		panic(fmt.Sprintf("core: scalar read of array local %d", o.Local))
	}
	return v.E
}

func (e *Engine) evalUnary(s *State, in *ir.Instr) *expr.Expr {
	b := e.build
	switch in.Op {
	case ir.OpMov:
		return e.operand(s, in.A, in.T)
	case ir.OpNot:
		return b.Not(e.operand(s, in.A, ir.Type{Kind: ir.Bool}))
	case ir.OpNeg:
		return b.Neg(e.operand(s, in.A, in.T))
	case ir.OpBNot:
		return b.BNot(e.operand(s, in.A, in.T))
	case ir.OpIntToByte:
		return b.Extract(e.operand(s, in.A, ir.Type{Kind: ir.Int}), 0, 8)
	case ir.OpByteToInt:
		return b.ZExt(e.operand(s, in.A, ir.Type{Kind: ir.Byte}), 32)
	case ir.OpBoolToInt:
		c := e.operand(s, in.A, ir.Type{Kind: ir.Bool})
		return b.Ite(c, b.Const(1, 32), e.zero32)
	}
	panic("core: evalUnary on " + in.Op.String())
}

func (e *Engine) evalBinary(s *State, in *ir.Instr) *expr.Expr {
	b := e.build
	t := in.T
	x := e.operand(s, in.A, t)
	y := e.operand(s, in.B, t)
	signed := t.Kind == ir.Int // bytes are unsigned, ints signed
	switch in.Op {
	case ir.OpAdd:
		return b.Add(x, y)
	case ir.OpSub:
		return b.Sub(x, y)
	case ir.OpMul:
		return b.Mul(x, y)
	case ir.OpDiv:
		if signed {
			return b.SDiv(x, y)
		}
		return b.UDiv(x, y)
	case ir.OpRem:
		if signed {
			return b.SRem(x, y)
		}
		return b.URem(x, y)
	case ir.OpAnd:
		return b.BAnd(x, y)
	case ir.OpOrB:
		return b.BOr(x, y)
	case ir.OpXor:
		return b.BXor(x, y)
	case ir.OpShl:
		return b.Shl(x, y)
	case ir.OpShr:
		if signed {
			return b.AShr(x, y)
		}
		return b.LShr(x, y)
	case ir.OpEq:
		return b.Eq(x, y)
	case ir.OpNe:
		return b.Ne(x, y)
	case ir.OpLt:
		if signed {
			return b.Slt(x, y)
		}
		return b.Ult(x, y)
	case ir.OpLe:
		if signed {
			return b.Sle(x, y)
		}
		return b.Ule(x, y)
	case ir.OpBoolAnd:
		return b.And(x, y)
	case ir.OpBoolOr:
		return b.Or(x, y)
	}
	panic("core: evalBinary on " + in.Op.String())
}

// arrayRef returns the object reference held by an array-typed operand.
func (s *State) arrayRef(o ir.Operand) ObjRef {
	v := s.top().Locals[o.Local]
	if v.E != nil {
		panic("core: array operand holds scalar")
	}
	return v.Ref
}

// doLoad implements Dst = Arr[Idx]. A symbolic index expands to an ite chain
// over the cells — exactly the cost the paper attributes to merged states
// whose indices became symbolic (§3.1). Out of bounds reads 0 unless
// CheckBounds is set.
func (e *Engine) doLoad(s *State, in *ir.Instr) (*expr.Expr, error) {
	obj := s.object(s.arrayRef(in.A), false)
	idx := e.operand(s, in.B, ir.Type{Kind: ir.Int})
	oob := e.zero8
	if obj.Width == 32 {
		oob = e.zero32
	}
	if e.cfg.CheckBounds {
		if e.indexElidable(s, in.B, len(obj.Cells)) {
			e.noteElided(s, "bounds")
		} else if err := e.checkIndex(s, idx, len(obj.Cells)); err != nil {
			return nil, err
		}
	}
	return e.build.SelectIte(obj.Cells, idx, oob), nil
}

// doStore implements Arr[Idx] = Val. A symbolic index rewrites every cell
// with a guarded ite. Out of bounds is a no-op unless CheckBounds is set.
func (e *Engine) doStore(s *State, in *ir.Instr) error {
	ref := s.arrayRef(ir.LocalOp(in.Dst))
	idx := e.operand(s, in.A, ir.Type{Kind: ir.Int})
	val := e.operand(s, in.B, in.T)
	obj := s.object(ref, true)
	if e.cfg.CheckBounds {
		if e.indexElidable(s, in.A, len(obj.Cells)) {
			e.noteElided(s, "bounds")
		} else if err := e.checkIndex(s, idx, len(obj.Cells)); err != nil {
			return err
		}
	}
	if idx.IsConst() {
		i := int(int32(idx.Val))
		if i >= 0 && i < len(obj.Cells) {
			obj.Cells[i] = val
		}
		return nil
	}
	for i := range obj.Cells {
		c := e.build.Eq(idx, e.build.Const(uint64(i), 32))
		obj.Cells[i] = e.build.Ite(c, val, obj.Cells[i])
	}
	return nil
}

// doAlloc implements Dst = alloc(A): a fresh zero-initialized heap object at
// the instruction's allocation site. The size must have folded to a constant
// — a genuinely symbolic size is a path error (concretization policies are a
// deliberate non-goal for now; see ROADMAP). The returned address is
// allocation-site-canonical (ir.HeapBase), so it depends only on the path,
// not on scheduling.
func (e *Engine) doAlloc(s *State, in *ir.Instr) (*expr.Expr, error) {
	size := e.operand(s, in.A, ir.Type{Kind: ir.Int})
	if !size.IsConst() {
		return nil, fmt.Errorf("symbolic allocation size at site %d", in.Site)
	}
	n := int(int32(size.Val))
	if n < 0 || n > ir.HeapMaxCells {
		return nil, fmt.Errorf("allocation size %d out of range [0,%d]", n, ir.HeapMaxCells)
	}
	count := int(s.allocs[in.Site])
	if count >= ir.HeapSiteSpan || in.Site*ir.HeapSiteSpan+count > ir.HeapMaxID {
		return nil, fmt.Errorf("allocation site %d executed %d times (max %d)",
			in.Site, count, ir.HeapSiteSpan)
	}
	s.allocs[in.Site]++
	base := ir.HeapBase(in.Site, count)
	cells := make([]*expr.Expr, n)
	for i := range cells {
		cells[i] = e.zero32
	}
	s.insertHeap(ir.HeapObjField(base), &Object{Cells: cells, Width: 32})
	return e.build.Const(uint64(base), 32), nil
}

// heapAddrParts splits an address expression into its object field and cell
// offset (both 32-bit; constant addresses fold at the builder).
func (e *Engine) heapAddrParts(addr *expr.Expr) (objF, off *expr.Expr) {
	objF = e.build.LShr(addr, e.build.Const(ir.HeapOffBits, 32))
	off = e.build.BAnd(addr, e.build.Const(ir.HeapMaxCells-1, 32))
	return objF, off
}

// doPtrLoad implements Dst = *(A). A concrete address reads its cell
// directly; a symbolic address lowers to nested guarded selects — one
// object-identity guard per live heap object, each wrapping the familiar
// SelectIte over that object's cells — exactly the ite expansion the paper
// charges to merged states whose addresses went symbolic (§3.1). Unmapped or
// out-of-bounds reads yield 0 unless CheckBounds is set.
func (e *Engine) doPtrLoad(s *State, in *ir.Instr) (*expr.Expr, error) {
	addr := e.operand(s, in.A, ir.Type{Kind: ir.Ptr})
	if e.cfg.CheckBounds {
		if e.heapElidable(s, in.A) {
			e.noteElided(s, "heap")
		} else if err := e.checkHeapAddr(s, addr); err != nil {
			return nil, err
		}
	}
	if addr.IsConst() {
		a := uint32(addr.Val)
		obj := s.heapObjByAddr(a)
		if obj == nil {
			return e.zero32, nil
		}
		off := int(ir.HeapOffset(a))
		if off >= len(obj.Cells) {
			return e.zero32, nil
		}
		return obj.Cells[off], nil
	}
	objF, off := e.heapAddrParts(addr)
	res := e.zero32
	for _, h := range s.heap {
		g := e.build.Eq(objF, e.build.Const(uint64(h.id), 32))
		if g.IsFalse() {
			continue
		}
		sel := e.build.SelectIte(h.obj.Cells, off, e.zero32)
		if g.IsTrue() {
			// The object field was concrete after all: no other object
			// can match, and earlier guards all folded to false.
			return sel, nil
		}
		res = e.build.Ite(g, sel, res)
	}
	return res, nil
}

// doPtrStore implements *(A) = B with the same lowering as doPtrLoad: a
// concrete address writes one cell of one (copy-on-write) object; a symbolic
// address rewrites every cell of every possibly-matching object under an
// object-identity ∧ offset guard. Unmapped or out-of-bounds writes are
// dropped unless CheckBounds is set.
func (e *Engine) doPtrStore(s *State, in *ir.Instr) error {
	addr := e.operand(s, in.A, ir.Type{Kind: ir.Ptr})
	val := e.operand(s, in.B, ir.Type{Kind: ir.Int})
	if e.cfg.CheckBounds {
		if e.heapElidable(s, in.A) {
			e.noteElided(s, "heap")
		} else if err := e.checkHeapAddr(s, addr); err != nil {
			return err
		}
	}
	if addr.IsConst() {
		a := uint32(addr.Val)
		i := s.findHeap(ir.HeapObjField(a))
		if i < 0 {
			return nil
		}
		off := int(ir.HeapOffset(a))
		if off >= len(s.heap[i].obj.Cells) {
			return nil
		}
		s.heapObjectAt(i, true).Cells[off] = val
		return nil
	}
	objF, off := e.heapAddrParts(addr)
	for i := range s.heap {
		g := e.build.Eq(objF, e.build.Const(uint64(s.heap[i].id), 32))
		if g.IsFalse() {
			continue
		}
		obj := s.heapObjectAt(i, true)
		for ci := range obj.Cells {
			cond := e.build.And(g, e.build.Eq(off, e.build.Const(uint64(ci), 32)))
			obj.Cells[ci] = e.build.Ite(cond, val, obj.Cells[ci])
		}
		if g.IsTrue() {
			return nil // concrete object field: no other object can match
		}
	}
	return nil
}

// checkHeapAddr reports an error if the address can fall outside every live
// heap object (the heap counterpart of checkIndex, for CheckBounds runs).
func (e *Engine) checkHeapAddr(s *State, addr *expr.Expr) error {
	objF, off := e.heapAddrParts(addr)
	valid := e.build.Bool(false)
	for _, h := range s.heap {
		g := e.build.And(
			e.build.Eq(objF, e.build.Const(uint64(h.id), 32)),
			e.build.Ult(off, e.build.Const(uint64(len(h.obj.Cells)), 32)))
		valid = e.build.Or(valid, g)
	}
	may, err := e.solv.MayBeTrueIn(s.sess, s.PC, e.build.Not(valid))
	if err != nil {
		return err
	}
	if may {
		return fmt.Errorf("heap access can fall outside every allocation")
	}
	return nil
}

// checkIndex reports an error if the index can fall outside [0, n).
func (e *Engine) checkIndex(s *State, idx *expr.Expr, n int) error {
	inBounds := e.build.Ult(idx, e.build.Const(uint64(n), 32)) // unsigned: negative is huge
	may, err := e.solv.MayBeTrueIn(s.sess, s.PC, e.build.Not(inBounds))
	if err != nil {
		return err
	}
	if may {
		return fmt.Errorf("array index can exceed bounds [0,%d)", n)
	}
	return nil
}

// indexElidable reports whether interval analysis proves the index operand
// lies in [0, n) at the current location. The bound holds over every
// execution reaching this pc, so checkIndex's query is fixed at unsat and
// skipping it cannot change the solution set.
func (e *Engine) indexElidable(s *State, o ir.Operand, n int) bool {
	if e.an == nil {
		return false
	}
	f := s.top()
	return e.an.Funcs[f.Fn].IndexInBounds(f.PC, o, n)
}

// heapElidable reports whether pointer analysis pins the address operand to
// a single allocation site with an in-object offset range. The site's object
// is live (never freed) on every path reaching the dereference, so
// checkHeapAddr would always pass.
func (e *Engine) heapElidable(s *State, o ir.Operand) bool {
	if e.an == nil {
		return false
	}
	f := s.top()
	return e.an.PtrSite(e.an.Funcs[f.Fn], f.PC, o) >= 0
}

// noteElided attributes one statically-discharged bounds/heap check.
func (e *Engine) noteElided(s *State, kind string) {
	f := s.top()
	e.stats.BoundsElided++
	e.obs.PruneStatic(s.ID, f.Fn, f.PC, kind)
}

// doArgChar reads argv[A][B]. argv[0] is the concrete program name; symbolic
// arguments are byte cells with a forced zero terminator (paper §3.1's input
// preconditions).
func (e *Engine) doArgChar(s *State, in *ir.Instr) *expr.Expr {
	b := e.build
	ai := e.operand(s, in.A, ir.Type{Kind: ir.Int})
	ci := e.operand(s, in.B, ir.Type{Kind: ir.Int})
	// Build per-argument reads, then select over the argument index.
	readArg := func(arg int) *expr.Expr {
		if arg == 0 {
			cells := make([]*expr.Expr, len(e.argv0)+1)
			for i, c := range e.argv0 {
				cells[i] = b.Const(uint64(c), 8)
			}
			cells[len(e.argv0)] = e.zero8
			return b.SelectIte(cells, ci, e.zero8)
		}
		if arg-1 < len(e.argv) {
			return b.SelectIte(e.argv[arg-1], ci, e.zero8)
		}
		return e.zero8
	}
	if ai.IsConst() {
		return readArg(int(int32(ai.Val)))
	}
	res := e.zero8
	for arg := e.cfg.NArgs; arg >= 0; arg-- {
		res = b.Ite(b.Eq(ai, b.Const(uint64(arg), 32)), readArg(arg), res)
	}
	return res
}

// freshInput introduces a new symbolic input variable on this path.
func (e *Engine) freshInput(s *State, op ir.Op) *expr.Expr {
	name := fmt.Sprintf("sym%d", s.nSyms)
	s.nSyms++
	switch op {
	case ir.OpSymInt:
		return e.build.Var(name, 32)
	case ir.OpSymByte:
		return e.build.Var(name, 8)
	default:
		return e.build.Var(name, 0)
	}
}

// doMakeSymbolic replaces every cell of the array with fresh inputs.
func (e *Engine) doMakeSymbolic(s *State, in *ir.Instr) {
	obj := s.object(s.arrayRef(in.A), true)
	for i := range obj.Cells {
		name := fmt.Sprintf("sym%d", s.nSyms)
		s.nSyms++
		obj.Cells[i] = e.build.Var(name, obj.Width)
	}
}

// assume conjoins cond to the path condition, returning false when the path
// becomes infeasible.
func (e *Engine) assume(s *State, cond *expr.Expr) bool {
	if cond.IsTrue() {
		return true
	}
	if cond.IsFalse() {
		return false
	}
	may, err := e.solv.MayBeTrueIn(s.sess, s.PC, cond)
	if err != nil {
		// A solver failure is cache- and deadline-dependent, not a
		// function of the path: a summary recording must not bake it in.
		if e.recording != nil {
			e.recording.aborted = true
		}
		return false
	}
	if !may {
		return false
	}
	s.PC = appendPC(s.PC, cond)
	s.sess.NoteConjunct(cond)
	return true
}

// appendPC appends a conjunct, forcing a copy boundary so sibling states keep
// sharing the prefix array.
func appendPC(pc []*expr.Expr, c *expr.Expr) []*expr.Expr {
	out := make([]*expr.Expr, len(pc)+1)
	copy(out, pc)
	out[len(pc)] = c
	return out
}

// appendOut appends an output entry with the same copy discipline.
func appendOut(o []OutEntry, e OutEntry) []OutEntry {
	out := make([]OutEntry, len(o)+1)
	copy(out, o)
	out[len(o)] = e
	return out
}

// failPath marks the state as an error path.
func (e *Engine) failPath(s *State, loc ir.Loc, pos ir.Pos, msg string) {
	s.Halt = HaltError
	s.Err = &PathError{Loc: loc, Pos: pos, Msg: msg}
}

// doAssert checks an assertion: if it can fail, an error state is recorded;
// if it can also hold, exploration continues under the assertion.
func (e *Engine) doAssert(s *State, in *ir.Instr, loc ir.Loc) []*State {
	cond := e.operand(s, in.A, ir.Type{Kind: ir.Bool})
	f := s.top()
	if cond.IsTrue() {
		f.PC++
		return []*State{s}
	}
	mayFail, err := e.solv.MayBeTrueIn(s.sess, s.PC, e.build.Not(cond))
	if err != nil {
		e.failPath(s, loc, in.Pos, "solver budget exhausted at assert")
		return []*State{s}
	}
	if !mayFail {
		f.PC++
		return []*State{s}
	}
	mayHold := false
	if !cond.IsFalse() {
		var err2 error
		mayHold, err2 = e.solv.MayBeTrueIn(s.sess, s.PC, cond)
		if err2 != nil && e.recording != nil {
			// A budget failure must not be baked into a cached summary.
			e.recording.aborted = true
		}
	}
	if !mayHold {
		// Assertion always fails here.
		e.failPath(s, loc, in.Pos, in.Msg)
		s.Err.Assert = true
		return []*State{s}
	}
	// Both possible: fork an error state, continue the main state.
	errState := s.fork(e.nextID)
	e.nextID++
	e.stats.Forks++
	e.obs.Fork(s.ID, errState.ID, loc.Fn, loc.PC)
	errState.PC = appendPC(errState.PC, e.build.Not(cond))
	errState.sess.NoteConjunct(e.build.Not(cond))
	e.failPath(errState, loc, in.Pos, in.Msg)
	errState.Err.Assert = true
	s.PC = appendPC(s.PC, cond)
	s.sess.NoteConjunct(cond)
	f.PC++
	if s.Shadow != nil {
		e.splitShadow(s, errState, cond)
	}
	return []*State{s, errState}
}

// doBranch implements the paper's branch rule (Algorithm 1 lines 7–11):
// check feasibility of each side, forking when both are possible.
func (e *Engine) doBranch(s *State, in *ir.Instr, loc ir.Loc) []*State {
	cond := e.operand(s, in.A, ir.Type{Kind: ir.Bool})
	f := s.top()
	if cond.IsConst() {
		if cond.IsTrue() {
			f.PC = in.Target
		} else {
			f.PC = in.FTarget
		}
		return e.blockBoundary(s)
	}
	if e.an != nil {
		if v := e.an.Funcs[loc.Fn].Branch[loc.PC]; v != analysis.VUnknown {
			// The interval analysis proved the condition constant over every
			// execution reaching this pc, so the other side is unsat for this
			// state too, and — since the state's path condition already
			// implies the condition — the conjunct is redundant: the solution
			// set, and with it models, tests, and the shadow census, is
			// unchanged by skipping it. Both feasibility queries are saved.
			if e.cfg.CrossCheckAnalysis {
				pruned := cond
				if v == analysis.VTrue {
					pruned = e.build.Not(cond)
				}
				if may, err := e.solv.MayBeTrueIn(s.sess, s.PC, pruned); err == nil && may {
					panic(fmt.Sprintf("analysis cross-check: pruned branch side is satisfiable at fn %d pc %d (verdict %v)",
						loc.Fn, loc.PC, v))
				}
			}
			e.stats.PrunedStatic++
			e.obs.PruneStatic(s.ID, loc.Fn, loc.PC, "branch")
			if v == analysis.VTrue {
				f.PC = in.Target
			} else {
				f.PC = in.FTarget
			}
			return e.blockBoundary(s)
		}
	}
	mayTrue, err1 := e.solv.MayBeTrueIn(s.sess, s.PC, cond)
	notCond := e.build.Not(cond)
	mayFalse, err2 := e.solv.MayBeTrueIn(s.sess, s.PC, notCond)
	if err1 != nil || err2 != nil {
		// Solver budget: be conservative, follow both without narrowing
		// is unsound; instead kill the path silently. A summary recording
		// aborts instead — the failure is not a function of the cache key.
		if e.recording != nil {
			e.recording.aborted = true
		}
		s.Halt = HaltSilent
		return []*State{s}
	}
	switch {
	case mayTrue && mayFalse:
		other := s.fork(e.nextID)
		e.nextID++
		e.stats.Forks++
		e.obs.Fork(s.ID, other.ID, loc.Fn, loc.PC)
		s.PC = appendPC(s.PC, cond)
		s.sess.NoteConjunct(cond)
		f.PC = in.Target
		other.PC = appendPC(other.PC, notCond)
		other.sess.NoteConjunct(notCond)
		other.top().PC = in.FTarget
		if s.Shadow != nil {
			e.splitShadow(s, other, cond)
		}
		return append(e.blockBoundary(s), e.blockBoundary(other)...)
	case mayTrue:
		s.PC = appendPC(s.PC, cond)
		s.sess.NoteConjunct(cond)
		f.PC = in.Target
	case mayFalse:
		s.PC = appendPC(s.PC, notCond)
		s.sess.NoteConjunct(notCond)
		f.PC = in.FTarget
	default:
		// Path condition itself became unsat (possible after merges
		// with approximate feasibility): drop.
		s.Halt = HaltSilent
		return []*State{s}
	}
	return e.blockBoundary(s)
}

// splitShadow distributes the exact-path census across a fork: each shadow
// path goes to the side(s) it can feasibly follow (paper §5.2: "maintaining
// all the original single-path states along with the merged states").
func (e *Engine) splitShadow(sTrue, sFalse *State, cond *expr.Expr) {
	paths := sTrue.Shadow
	sTrue.Shadow = nil
	sFalse.Shadow = nil
	notCond := e.build.Not(cond)
	for _, p := range paths {
		// Shadow paths are built from the same conjuncts as the real
		// path conditions, so they ride the same session's blasted set.
		if may, err := e.solv.MayBeTrueIn(sTrue.sess, p, cond); err == nil && may {
			sTrue.Shadow = append(sTrue.Shadow, appendPC(p, cond))
		}
		if may, err := e.solv.MayBeTrueIn(sTrue.sess, p, notCond); err == nil && may {
			sFalse.Shadow = append(sFalse.Shadow, appendPC(p, notCond))
		}
	}
}

// doCall pushes a callee frame, binding arguments.
func (e *Engine) doCall(s *State, in *ir.Instr) {
	f := s.top()
	callee := e.prog.Funcs[in.Callee]
	nf := e.newFrame(callee, in.Dst)
	// Bind parameters before pushing (operands read the caller frame).
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		pt := callee.Locals[i].Type
		if pt.Array() {
			args[i] = Value{Ref: s.arrayRef(a)}
		} else {
			args[i] = Value{E: e.operand(s, a, pt)}
		}
	}
	f.PC++ // return address
	s.pushFrame(nf)
	nf = s.top()
	for i := range args {
		if args[i].E == nil {
			// Parameter references the caller's object: clear the
			// own-object slot so resolveRef follows the reference.
			nf.Objects[i] = nil
		}
		nf.Locals[i] = args[i]
	}
}

// doReturnValue pops the top frame, delivering rv to the caller. It returns
// true when the program terminated (bottom frame returned).
func (e *Engine) doReturnValue(s *State, rv *expr.Expr) bool {
	top := s.Frames[len(s.Frames)-1]
	if len(s.Frames) == 1 {
		s.Halt = HaltExit
		s.ExitCode = rv
		if e.recording != nil {
			// The recorded callee returned normally (vs executing halt):
			// the summary entry binds the caller's destination register.
			s.retNormal = true
		}
		return true
	}
	s.Frames = s.Frames[:len(s.Frames)-1]
	if top.RetDst >= 0 && rv != nil {
		s.top().Locals[top.RetDst] = Value{E: rv}
	}
	s.justRet = true
	return false
}
