// summary.go: recording and application of compositional function summaries
// (internal/summary holds the cache and key machinery; this file holds the
// engine halves that need execution internals).
//
// At an OpCall the engine classifies the call site into a symbolic input
// class (closure signature + per-slot argument class + environment
// fingerprint). On a cache hit the callee is not explored at all: the cached
// entries are instantiated for the actual arguments, each entry's guard is
// discharged as an assume-summary query against the caller's incremental
// solver session, and the feasible entries materialize as successor states
// with the guard spliced into the path condition conjunct-wise. On a miss
// the callee is explored once by a nested sub-engine over canonical
// placeholder arguments and the resulting path set is recorded for every
// later call site — in this engine, in sibling workers, and (through a
// shared cache) in other tools of a paperbench run.
//
// Soundness gates: static ineligibility (recursion, heap, fresh symbolic
// inputs) comes from summary.ProgInfo; dynamically, a recording that hits
// the step budget, a solver failure, the entry cap, or an aliased pair of
// array arguments falls back to inline exploration (the first three are
// negatively cached; aliasing is a property of the call site, not the
// closure, so it is re-checked per visit).
//
// Exactness: a summary entry is one recorded callee path. Under MergeNone
// the apply forks exactly the states inline exploration would have produced
// at the return point, with the same path-condition solution sets, outputs,
// array effects, and multiplicities — PathsMult is byte-identical with
// summaries on or off. Under a merging regime, forking one state per exact
// callee path and re-merging would invert the merger's own win (the callee's
// paths were the explosion being merged away), so the apply instead combines
// the return entries into ONE merged continuation and the halting entries
// into one merged exit state, mirroring merge(): the group disjunction is
// spliced into the path condition, values become ite-chains over the entry
// guards, and outputs carry their entry guard. Feasibility is then a single
// assume-summary query per group instead of one per entry. The exact-path
// census stays exact in both modes — shadow paths split per entry with a
// per-path feasibility query, so corpus bytes and Figure-3 census numbers
// are unchanged by the merged representation.
package core

import (
	"math/big"
	"time"

	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/summary"
)

// maxSummaryEntries caps one recording's entry count (real + coverage-only).
// A callee whose path set exceeds it is negatively cached as too large.
const maxSummaryEntries = 512

// defaultSummarySteps is the recording step budget when the configuration
// leaves SummaryMaxSteps zero.
const defaultSummarySteps = 4096

// sumFn is the engine-local per-callee memo: the shared static analysis
// verdict plus the interned signature id, resolved once so the hot call
// path never takes the ProgInfo mutex.
type sumFn struct {
	init   bool
	logged bool // a summary_reject event was emitted for this callee
	reject summary.Reason
	fi     *summary.FuncInfo
	sigID  int
}

// engineSummaries is the per-engine summary machinery: the shared cache,
// the shared per-program static analysis, and engine-local memos.
type engineSummaries struct {
	cache    *summary.Cache
	pinfo    *summary.ProgInfo
	fns      []sumFn
	env      string // environment fingerprint (keys closures that read argv/stdin)
	maxSteps uint64
}

func newEngineSummaries(e *Engine, c *summary.Cache) *engineSummaries {
	ms := e.cfg.SummaryMaxSteps
	if ms == 0 {
		ms = defaultSummarySteps
	}
	concrete := e.cfg.ConcreteArgs != nil || e.cfg.ConcreteStdin != nil
	pinfo := c.Prog(e.prog)
	if e.an != nil {
		// Dataflow effect facts lift the static heap gate (sig.go
		// heapContained); without them the strict gate stands.
		pinfo.SetAnalysis(e.an)
	}
	return &engineSummaries{
		cache: c,
		pinfo: pinfo,
		fns:   make([]sumFn, len(e.prog.Funcs)),
		env: summary.EnvFingerprint(e.cfg.NArgs, e.cfg.ArgLen, e.cfg.StdinLen,
			argStrings(e.cfg.ConcreteArgs), e.cfg.ConcreteStdin, concrete),
		maxSteps: ms,
	}
}

func argStrings(args [][]byte) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = string(a)
	}
	return out
}

// recordingState marks an engine as a summary recorder and accumulates what
// the recording produces: terminated callee states (one per path) and the
// assume-prefix snapshots that become coverage-only entries.
type recordingState struct {
	// aborted is set when the recording hit a solver failure — an outcome
	// that depends on cache state and deadlines, not on the cache key, so
	// it must not be baked into a summary.
	aborted  bool
	finished []*State
	silent   []silentPoint
}

// silentPoint snapshots a path prefix at an assume instruction. Under a
// caller path condition the recording cannot see, the assume may cut the
// path; inline exploration would still have covered the prefix, so apply
// time replays that coverage from these snapshots (summary.KindSilent).
type silentPoint struct {
	pc    []*expr.Expr
	trail []ir.Loc
}

func (r *recordingState) assumePoint(s *State) {
	r.silent = append(r.silent, silentPoint{
		pc:    s.PC[:len(s.PC):len(s.PC)],
		trail: s.covTrail[:len(s.covTrail):len(s.covTrail)],
	})
}

// collect receives a terminated recording state from finishState.
func (r *recordingState) collect(s *State) {
	if s.Halt == HaltSilent {
		// Statically infeasible path: it vanishes identically inline
		// (no entry ≡ killed caller path), and any caller-dependent
		// partial coverage is replayed from the assume snapshots.
		return
	}
	if s.Err != nil && !s.Err.Assert {
		// Engine-analysis failure (exhausted solver budget at an assert):
		// like aborted branches, not a function of the key.
		r.aborted = true
		return
	}
	r.finished = append(r.finished, s)
}

// lifoStrategy is the recorder's driving strategy: depth-first over the
// callee, deterministic, and core-internal (the search package imports core,
// so recordings cannot use it).
type lifoStrategy struct{ stack []*State }

func (l *lifoStrategy) Add(s *State) { l.stack = append(l.stack, s) }

func (l *lifoStrategy) Remove(s *State) {
	for i := len(l.stack) - 1; i >= 0; i-- {
		if l.stack[i] == s {
			l.stack = append(l.stack[:i], l.stack[i+1:]...)
			return
		}
	}
}

func (l *lifoStrategy) Pick() *State {
	if len(l.stack) == 0 {
		return nil
	}
	return l.stack[len(l.stack)-1]
}

func (l *lifoStrategy) Len() int { return len(l.stack) }

// sumArg is one callee argument lowered to the placeholder domain: concrete
// slots keep their constant expressions (so constant folding prunes callee
// paths at record time), symbolic slots become canonical placeholders.
type sumArg struct {
	scalar *expr.Expr   // non-nil for scalar parameters
	cells  []*expr.Expr // non-nil for array parameters
	width  uint8
}

// summaryCall attempts to discharge the call instruction from the summary
// cache. It returns (successors, true) when the site was discharged —
// including recording the callee first on a miss — and (nil, false) when the
// caller must fall back to inline exploration (doCall).
func (e *Engine) summaryCall(s *State, in *ir.Instr, loc ir.Loc) ([]*State, bool) {
	su := e.sum
	sf := &su.fns[in.Callee]
	if !sf.init {
		sf.init = true
		sf.fi = su.pinfo.Info(in.Callee)
		sf.reject = sf.fi.Reject
		if sf.reject == summary.RejectNone && e.qce != nil &&
			sf.fi.Branches == 0 && e.qce.EntryQueries(in.Callee) == 0 {
			// QCE refinement: the closure neither forks nor triggers
			// solver queries, so inlining it is nearly free and the
			// cache machinery would not pay for itself.
			sf.reject = summary.RejectTrivial
		}
		if sf.reject == summary.RejectNone {
			sf.sigID = su.cache.SigID(sf.fi.Sig)
		}
	}
	if sf.reject != summary.RejectNone {
		e.rejectSummary(sf, in.Callee, sf.reject)
		return nil, false
	}
	fi := sf.fi
	// A heap-lifted closure replays allocations with the canonical
	// addresses a zero per-site counter mints (doAlloc); a path that
	// already executed one of its sites would re-mint colliding ids, so
	// it falls back to inline exploration. Per-path dynamic condition,
	// like aliasing: no negative caching.
	for _, site := range fi.HeapSites {
		if s.allocs[site] != 0 {
			e.rejectSummary(sf, in.Callee, summary.RejectHeapBusy)
			return nil, false
		}
	}
	t0 := time.Now()

	// Classify the arguments into the cache key, detect array-argument
	// aliasing, and lower the slots to the placeholder domain.
	env := ""
	if fi.ReadsEnv {
		env = su.env
	}
	kb := summary.NewKeyBuilder(sf.sigID, env)
	callee := e.prog.Funcs[in.Callee]
	args := make([]sumArg, len(in.Args))
	var ph []*expr.Expr
	slot := func(v *expr.Expr) *expr.Expr {
		ord := kb.Slot(v)
		if ord < 0 {
			return v
		}
		if ord == len(ph) {
			ph = append(ph, e.build.Var(placeholderName(ord, v.Width), v.Width))
		}
		return ph[ord]
	}
	var seenRefs []ObjRef
	for i, a := range in.Args {
		pt := callee.Locals[i].Type
		if !pt.Array() {
			args[i] = sumArg{scalar: slot(e.operand(s, a, pt))}
			continue
		}
		ref := s.resolveRef(s.arrayRef(a))
		for _, prev := range seenRefs {
			if prev == ref {
				// Two array parameters alias one object: the recording
				// would seed them as separate objects and miss the
				// write aliasing. Property of this call site's
				// arguments, so no negative caching.
				e.rejectSummary(sf, in.Callee, summary.RejectAliased)
				return nil, false
			}
		}
		seenRefs = append(seenRefs, ref)
		obj := s.Frames[ref.Depth].Objects[ref.Local]
		kb.Array(len(obj.Cells), obj.Width)
		cells := make([]*expr.Expr, len(obj.Cells))
		for c, cell := range obj.Cells {
			cells[c] = slot(cell)
		}
		args[i] = sumArg{cells: cells, width: obj.Width}
	}

	gkey := kb.GenericKey()
	ikey := kb.InstanceKey(gkey)
	if inst, ok := su.cache.Inst(ikey); ok {
		e.noteHeapLift(fi)
		return e.applySummary(s, in, loc, fi, inst, t0)
	}
	fs, negReason, ok := su.cache.Lookup(gkey)
	if !ok {
		if negReason != summary.RejectNone {
			e.rejectSummary(sf, in.Callee, negReason)
			return nil, false
		}
		fs = e.recordSummary(in.Callee, fi, gkey, args, ph)
		if fs == nil {
			e.stats.SummaryRejects++
			return nil, false
		}
	}
	inst := su.cache.StoreInst(ikey, fs.Instantiate(e.build, kb.Actuals))
	e.noteHeapLift(fi)
	return e.applySummary(s, in, loc, fi, inst, t0)
}

// noteHeapLift counts a call-site discharge that the original heap gate
// would have sent to inline exploration.
func (e *Engine) noteHeapLift(fi *summary.FuncInfo) {
	if len(fi.HeapSites) > 0 {
		e.stats.SummaryHeapLifted++
	}
}

// rejectSummary accounts an inline fallback. The trace event is emitted once
// per callee per engine (static verdicts repeat at every visit and would
// flood the stream) except for per-site dynamic reasons, which are rare and
// always emitted.
func (e *Engine) rejectSummary(sf *sumFn, fn int, r summary.Reason) {
	e.stats.SummaryRejects++
	if r == summary.RejectAliased {
		e.obs.SummaryReject(fn, r.String())
		return
	}
	if !sf.logged {
		sf.logged = true
		e.obs.SummaryReject(fn, r.String())
	}
}

func placeholderName(ord int, width uint8) string {
	// The width joins the name so placeholders for different slot widths
	// never collide in the shared builder's hash-consing.
	return "p!" + itoa(ord) + "_" + itoa(int(width))
}

// recordSummary explores the callee once over placeholder arguments with a
// nested sub-engine and stores the resulting summary under gkey. It returns
// nil when a dynamic gate fired (the failure is negatively cached).
func (e *Engine) recordSummary(callee int, fi *summary.FuncInfo, gkey string, args []sumArg, ph []*expr.Expr) *summary.FuncSummary {
	su := e.sum
	t0 := time.Now()
	rec := &recordingState{}
	scfg := Config{
		Merge:           MergeNone,
		NArgs:           e.cfg.NArgs,
		ArgLen:          e.cfg.ArgLen,
		StdinLen:        e.cfg.StdinLen,
		ConcreteArgs:    e.cfg.ConcreteArgs,
		ConcreteStdin:   e.cfg.ConcreteStdin,
		MaxSteps:        su.maxSteps,
		Context:         e.cfg.Context,
		PollEvery:       e.cfg.PollEvery,
		Builder:         e.build,
		DisableSessions: e.cfg.DisableSessions,
		SolverOpts:      e.cfg.SolverOpts,
	}
	sub := NewEngine(e.prog, scfg, &lifoStrategy{})
	// The recording runs nested and synchronously on this goroutine, so it
	// shares the parent's solver outright: query/cache statistics, the
	// counterexample cache, deadlines, and trace attribution all flow
	// through the parent's instance (the solver built by NewEngine above is
	// discarded). Sessions forked below root in the parent solver too.
	sub.solv = e.solv
	sub.recording = rec
	sub.Begin(false)
	sub.deadline = e.deadline

	// Seed: the callee as the bottom frame over an empty path condition,
	// scalar parameters bound to their class slots and array parameters to
	// fresh objects of the caller's actual length.
	seed := &State{ID: sub.nextID, Mult: big.NewInt(1)}
	sub.nextID++
	if n := e.prog.AllocSites; n > 0 {
		seed.allocs = make([]uint16, n)
	}
	seed.sess = sub.forkRootSession()
	fr := sub.newFrame(e.prog.Funcs[callee], -1)
	seed.pushFrame(fr)
	seedCells := make([][]*expr.Expr, len(args))
	for i, a := range args {
		if a.cells != nil {
			cells := make([]*expr.Expr, len(a.cells))
			copy(cells, a.cells)
			fr.Objects[i] = &Object{Cells: cells, Width: a.width}
			fr.Locals[i] = Value{Ref: ObjRef{Depth: 0, Local: i}}
			seedCells[i] = a.cells
		} else {
			fr.Objects[i] = nil
			fr.Locals[i] = Value{E: a.scalar}
		}
	}
	sub.addState(seed)

	truncated := false
	for sub.strategy.Len() > 0 && !rec.aborted {
		if sub.stopRequested() {
			truncated = true
			break
		}
		if len(rec.finished)+len(rec.silent) > maxSummaryEntries {
			break
		}
		if !sub.stepOnce() {
			break
		}
	}

	// The recording's execution work is the parent's work: absorb it into
	// the main counters (solver statistics flowed through the shared
	// instance already; SummarySteps keeps the recording share visible).
	e.stats.Instructions += sub.stats.Instructions
	e.stats.Forks += sub.stats.Forks
	e.stats.SummarySteps += sub.stats.Steps

	fail := func(r summary.Reason) *summary.FuncSummary {
		su.cache.StoreNegative(gkey, r)
		e.obs.SummaryInvalidate(callee, r.String())
		return nil
	}
	switch {
	case rec.aborted:
		return fail(summary.RejectAbort)
	case truncated:
		return fail(summary.RejectTruncated)
	case len(rec.finished)+len(rec.silent) > maxSummaryEntries:
		return fail(summary.RejectTooLarge)
	}

	ordOf := make(map[int]int, len(fi.Closure))
	for i, fn := range fi.Closure {
		ordOf[fn] = i
	}
	covRefs := func(trail []ir.Loc) []summary.LocRef {
		seen := make(map[ir.Loc]bool, len(trail))
		out := make([]summary.LocRef, 0, len(trail))
		for _, l := range trail {
			if seen[l] {
				continue
			}
			seen[l] = true
			out = append(out, summary.LocRef{Ord: ordOf[l.Fn], PC: l.PC})
		}
		return out
	}

	entries := make([]summary.Entry, 0, len(rec.finished)+len(rec.silent))
	for _, fin := range rec.finished {
		en := summary.Entry{PC: fin.PC, Cov: covRefs(fin.covTrail)}
		switch {
		case fin.Err != nil:
			en.Kind = summary.KindError
			en.Err = &summary.ErrInfo{
				Ord: ordOf[fin.Err.Loc.Fn], PC: fin.Err.Loc.PC,
				Msg: fin.Err.Msg, Assert: fin.Err.Assert,
			}
		case fin.retNormal:
			en.Kind = summary.KindReturn
			en.Ret = fin.ExitCode // doReturnValue parks the return value here
		default:
			en.Kind = summary.KindHalt
			en.Ret = fin.ExitCode
		}
		for _, o := range fin.Output {
			en.Out = append(en.Out, summary.OutEffect{Guard: o.Guard, Val: o.Val})
		}
		for pi, cells := range seedCells {
			if cells == nil {
				continue
			}
			obj := fin.object(ObjRef{Depth: 0, Local: pi}, false)
			for ci, c := range obj.Cells {
				// Hash-consing makes value equality pointer equality, so
				// a pointer diff against the seed finds exactly the cells
				// the path (possibly) changed.
				if c != cells[ci] {
					en.Writes = append(en.Writes, summary.CellWrite{Param: pi, Cell: ci, Val: c})
				}
			}
		}
		if en.Kind == summary.KindReturn && len(fin.heap) > 0 {
			// Heap-lifted closure: the seed heap was empty, so every live
			// object is closure-allocated and survives into the caller.
			// Halted and errored paths skip this — their heap dies with
			// the state.
			for _, he := range fin.heap {
				site := (int(he.id) - 1) / ir.HeapSiteSpan
				cells := make([]*expr.Expr, len(he.obj.Cells))
				copy(cells, he.obj.Cells)
				en.Heap = append(en.Heap, summary.HeapObj{Site: site, ID: he.id, Cells: cells})
			}
		}
		entries = append(entries, en)
	}
	for _, sp := range rec.silent {
		entries = append(entries, summary.Entry{
			PC: sp.pc, Kind: summary.KindSilent, Cov: covRefs(sp.trail),
		})
	}

	sum := su.cache.Store(gkey, &summary.FuncSummary{Placeholders: ph, Entries: entries})
	e.stats.SummaryRecords++
	e.obs.SummaryRecord(callee, len(entries), time.Since(t0))
	return sum
}

// guardOf conjoins an entry's path-condition conjuncts into the single
// assume-summary query expression.
func (e *Engine) guardOf(pc []*expr.Expr) *expr.Expr {
	if len(pc) == 0 {
		return e.build.Bool(true)
	}
	return e.build.AndN(pc)
}

// sumItem pairs an instantiated entry with its conjoined guard during apply.
type sumItem struct {
	en    *summary.Entry
	guard *expr.Expr
}

// applySummary discharges the call site from an instantiated summary,
// choosing the representation that matches the caller's search regime:
// exact per-entry forking under MergeNone, merged groups otherwise.
func (e *Engine) applySummary(s *State, in *ir.Instr, loc ir.Loc, fi *summary.FuncInfo, inst *summary.Instance, t0 time.Time) ([]*State, bool) {
	if e.cfg.Merge != MergeNone && summaryMergeable(in, inst) {
		return e.applySummaryMerged(s, in, loc, fi, inst, t0)
	}
	return e.applySummaryExact(s, in, loc, fi, inst, t0)
}

// summaryMergeable reports whether the instance's entries can be ite-combined:
// return values and exit codes must be uniformly present (or, for returns with
// an unused result, uniformly absent) so the chains are well-formed. Entries
// carrying heap objects force the exact representation — different callee
// paths may allocate different object sets, and a merged continuation has one
// heap shape.
func summaryMergeable(in *ir.Instr, inst *summary.Instance) bool {
	retVal, retVoid := false, false
	for i := range inst.Entries {
		en := &inst.Entries[i]
		if len(en.Heap) > 0 {
			return false
		}
		switch en.Kind {
		case summary.KindReturn:
			if en.Ret != nil {
				retVal = true
			} else {
				retVoid = true
			}
		case summary.KindHalt:
			if en.Ret == nil {
				return false
			}
		}
	}
	return !(in.Dst >= 0 && retVal && retVoid)
}

// applySummaryExact discharges the call site with one feasibility query per
// entry against the caller's session; the feasible entries materialize as
// one successor state each (the MergeNone representation).
func (e *Engine) applySummaryExact(s *State, in *ir.Instr, loc ir.Loc, fi *summary.FuncInfo, inst *summary.Instance, t0 time.Time) ([]*State, bool) {
	type feasEntry struct {
		en    *summary.Entry
		guard *expr.Expr
	}
	feas := make([]feasEntry, 0, len(inst.Entries))
	e.solv.SummaryScope(true)
	for i := range inst.Entries {
		en := &inst.Entries[i]
		guard := e.guardOf(en.PC)
		if guard.IsFalse() {
			continue
		}
		if en.Kind == summary.KindSilent && e.allCovered(en.Cov, fi) {
			// Coverage-only entry with nothing left to mark: skip the
			// feasibility query entirely.
			continue
		}
		if !guard.IsTrue() {
			may, err := e.solv.MayBeTrueIn(s.sess, s.PC, guard)
			if err != nil || !may {
				// An error kills the entry conservatively, exactly as a
				// solver failure at an inline callee branch kills the
				// path (doBranch).
				continue
			}
		}
		if en.Kind == summary.KindSilent {
			// Inline exploration would have walked this prefix before the
			// assume cut it; replay its coverage and drop the path.
			for _, lr := range en.Cov {
				e.markCovered(ir.Loc{Fn: fi.Closure[lr.Ord], PC: lr.PC})
			}
			continue
		}
		feas = append(feas, feasEntry{en, guard})
	}
	e.solv.SummaryScope(false)

	e.stats.SummaryHits++
	e.stats.SummaryEntries += uint64(len(feas))
	e.obs.SummaryApply(in.Callee, len(inst.Entries), len(feas), time.Since(t0))

	if len(feas) == 0 {
		// Every callee path is infeasible under the caller's path
		// condition: the caller path dies, exactly as it would inline.
		s.Halt = HaltSilent
		return []*State{s}, true
	}

	// Materialize continuations: fork for all but the last entry while s is
	// still unmodified, reuse s for the last.
	states := make([]*State, len(feas))
	for k := 0; k < len(feas)-1; k++ {
		ns := s.fork(e.nextID)
		e.nextID++
		e.stats.Forks++
		e.obs.Fork(s.ID, ns.ID, loc.Fn, loc.PC)
		states[k] = ns
	}
	states[len(feas)-1] = s
	out := make([]*State, 0, len(feas))
	for k, fe := range feas {
		ns := states[k]
		e.applyEntry(ns, in, fi, fe.en, fe.guard)
		if ns.Halt != HaltNone {
			out = append(out, ns)
		} else {
			out = append(out, e.blockBoundary(ns)...)
		}
	}
	return out, true
}

// applySummaryMerged discharges the call site for a merging search regime.
// Return entries collapse into one merged continuation and halt entries into
// one merged exit state — the states merge() would eventually rebuild, built
// here without ever forking the constituents. Feasibility is one
// assume-summary query per group (the disjunction of the entry guards);
// per-entry queries survive only for error obligations, for coverage replay
// of entries with not-yet-covered locations (gone once the closure's
// coverage saturates), and for the exact-path census.
func (e *Engine) applySummaryMerged(s *State, in *ir.Instr, loc ir.Loc, fi *summary.FuncInfo, inst *summary.Instance, t0 time.Time) ([]*State, bool) {
	b := e.build
	var rets, halts, errs []sumItem
	e.solv.SummaryScope(true)
	for i := range inst.Entries {
		en := &inst.Entries[i]
		guard := e.guardOf(en.PC)
		if guard.IsFalse() {
			continue
		}
		switch en.Kind {
		case summary.KindSilent:
			if e.allCovered(en.Cov, fi) {
				continue
			}
			if !guard.IsTrue() {
				if may, err := e.solv.MayBeTrueIn(s.sess, s.PC, guard); err != nil || !may {
					continue
				}
			}
			for _, lr := range en.Cov {
				e.markCovered(ir.Loc{Fn: fi.Closure[lr.Ord], PC: lr.PC})
			}
		case summary.KindError:
			if !guard.IsTrue() {
				if may, err := e.solv.MayBeTrueIn(s.sess, s.PC, guard); err != nil || !may {
					continue
				}
			}
			errs = append(errs, sumItem{en, guard})
		case summary.KindReturn:
			rets = append(rets, sumItem{en, guard})
		case summary.KindHalt:
			halts = append(halts, sumItem{en, guard})
		}
	}

	// Coverage replay. An entry whose locations are all covered already is
	// free; the rest need a feasibility check before marking (coverage must
	// not record locations only infeasible paths reach), and a refuted entry
	// drops out of its group. A kept-without-query entry may be infeasible
	// under the caller: harmless, since its guard is unsatisfiable inside the
	// merged state's disjunction — the same unpruned arms inline merging
	// carries.
	replay := func(items []sumItem) []sumItem {
		kept := items[:0]
		for _, it := range items {
			if !e.allCovered(it.en.Cov, fi) {
				if !it.guard.IsTrue() {
					if may, err := e.solv.MayBeTrueIn(s.sess, s.PC, it.guard); err != nil || !may {
						continue
					}
				}
				for _, lr := range it.en.Cov {
					e.markCovered(ir.Loc{Fn: fi.Closure[lr.Ord], PC: lr.PC})
				}
			}
			kept = append(kept, it)
		}
		return kept
	}
	rets = replay(rets)
	halts = replay(halts)

	// One assume-summary query per group. An infeasible disjunction kills
	// the whole group, exactly where inline exploration would have died at
	// the callee's branches.
	group := func(items []sumItem) ([]sumItem, *expr.Expr) {
		if len(items) == 0 {
			return nil, nil
		}
		g := items[0].guard
		for _, it := range items[1:] {
			g = b.Or(g, it.guard)
		}
		if g.IsFalse() {
			return nil, nil
		}
		if !g.IsTrue() {
			if may, err := e.solv.MayBeTrueIn(s.sess, s.PC, g); err != nil || !may {
				return nil, nil
			}
		}
		return items, g
	}
	var retG, haltG *expr.Expr
	rets, retG = group(rets)
	halts, haltG = group(halts)
	e.solv.SummaryScope(false)

	total := len(rets) + len(halts) + len(errs)
	e.stats.SummaryHits++
	e.stats.SummaryEntries += uint64(total)
	e.obs.SummaryApply(in.Callee, len(inst.Entries), total, time.Since(t0))

	if total == 0 {
		s.Halt = HaltSilent
		return []*State{s}, true
	}

	// Successors: one state per error obligation, one merged exit, one
	// merged continuation. Fork all but the last while s is unmodified.
	nSucc := len(errs)
	if len(halts) > 0 {
		nSucc++
	}
	if len(rets) > 0 {
		nSucc++
	}
	states := make([]*State, nSucc)
	for k := 0; k < nSucc-1; k++ {
		ns := s.fork(e.nextID)
		e.nextID++
		e.stats.Forks++
		e.obs.Fork(s.ID, ns.ID, loc.Fn, loc.PC)
		states[k] = ns
	}
	states[nSucc-1] = s

	out := make([]*State, 0, nSucc)
	idx := 0
	for _, it := range errs {
		ns := states[idx]
		idx++
		e.applyEntry(ns, in, fi, it.en, it.guard)
		out = append(out, ns)
	}
	if len(halts) > 0 {
		ns := states[idx]
		idx++
		e.applyGroup(ns, halts, haltG)
		ns.Halt = HaltExit
		ns.ExitCode = iteFold(b, halts, func(it sumItem) *expr.Expr { return it.en.Ret })
		out = append(out, ns)
	}
	if len(rets) > 0 {
		ns := states[idx]
		e.applyGroup(ns, rets, retG)
		e.applyGroupWrites(ns, in, rets)
		f := ns.top()
		if in.Dst >= 0 && rets[0].en.Ret != nil {
			f.Locals[in.Dst] = Value{E: iteFold(b, rets, func(it sumItem) *expr.Expr { return it.en.Ret })}
		}
		f.PC++ // doCall's return-address bump never happened
		ns.justRet = true
		out = append(out, e.blockBoundary(ns)...)
	}
	return out, true
}

// applyGroup replays the parts a merged group shares onto one caller state:
// the census split, the path-condition splice of the group disjunction, the
// entry-guarded outputs, and the multiplicity of the combined paths.
func (e *Engine) applyGroup(ns *State, items []sumItem, g *expr.Expr) {
	e.filterShadowGroup(ns, items)
	// Splice the disjunction the way merge() does: a factored disjunction
	// comes back as a conjunction (shared ∧ residual-or) whose conjuncts go
	// in separately, so the session blasts each once and the independence
	// slicer can partition them.
	var added []*expr.Expr
	switch {
	case g.IsTrue():
	case g.Kind == expr.KAnd:
		added = g.Kids
	default:
		added = []*expr.Expr{g}
	}
	for _, c := range added {
		ns.PC = appendPC(ns.PC, c)
		ns.sess.NoteConjunct(c)
	}
	if len(items) > 1 {
		// Each constituent path carries the caller's multiplicity, and a
		// merge sums them. Unproven-infeasible members over-approximate,
		// which is Mult's contract under merging.
		ns.Mult = new(big.Int).Mul(ns.Mult, big.NewInt(int64(len(items))))
	}
	for _, it := range items {
		for _, o := range it.en.Out {
			oe := OutEntry{Guard: o.Guard, Val: o.Val}
			if len(items) > 1 {
				oe = guardOut(e.build, oe, it.guard)
			}
			ns.Output = appendOut(ns.Output, oe)
		}
	}
}

// applyGroupWrites merges the array-parameter effects of a group: every cell
// any member wrote becomes an ite-chain over the entry guards, defaulting to
// the caller's current cell value for members that left it unchanged.
func (e *Engine) applyGroupWrites(ns *State, in *ir.Instr, items []sumItem) {
	if len(items) == 1 {
		for _, w := range items[0].en.Writes {
			obj := ns.object(ns.arrayRef(in.Args[w.Param]), true)
			if w.Cell < len(obj.Cells) {
				obj.Cells[w.Cell] = w.Val
			}
		}
		return
	}
	type cellKey struct{ param, cell int }
	var order []cellKey
	seen := make(map[cellKey]bool)
	for _, it := range items {
		for _, w := range it.en.Writes {
			k := cellKey{w.Param, w.Cell}
			if !seen[k] {
				seen[k] = true
				order = append(order, k)
			}
		}
	}
	for _, k := range order {
		obj := ns.object(ns.arrayRef(in.Args[k.param]), true)
		if k.cell >= len(obj.Cells) {
			continue
		}
		v := obj.Cells[k.cell]
		for i := len(items) - 1; i >= 0; i-- {
			for _, w := range items[i].en.Writes {
				if w.Param == k.param && w.Cell == k.cell {
					v = e.build.Ite(items[i].guard, w.Val, v)
					break
				}
			}
		}
		obj.Cells[k.cell] = v
	}
}

// iteFold chains a per-entry value over the entry guards. The guards are
// mutually exclusive (distinct exact callee paths), so the chain order only
// needs to be deterministic, not semantic.
func iteFold(b *expr.Builder, items []sumItem, val func(sumItem) *expr.Expr) *expr.Expr {
	v := val(items[len(items)-1])
	for i := len(items) - 2; i >= 0; i-- {
		v = b.Ite(items[i].guard, val(items[i]), v)
	}
	return v
}

// filterShadowGroup distributes the exact-path census across a merged group:
// each caller shadow path forks into one extension per member entry it is
// jointly feasible with — the per-entry exactness that keeps the census and
// the canonical corpus byte-identical while the states themselves merge.
func (e *Engine) filterShadowGroup(ns *State, items []sumItem) {
	if ns.Shadow == nil {
		return
	}
	kept := make([][]*expr.Expr, 0, len(ns.Shadow))
	for _, p := range ns.Shadow {
		for _, it := range items {
			if !it.guard.IsTrue() {
				if may, err := e.solv.MayBeTrueIn(ns.sess, p, it.guard); err != nil || !may {
					continue
				}
			}
			np := p
			for _, c := range it.en.PC {
				np = appendPC(np, c)
			}
			kept = append(kept, np)
		}
	}
	ns.Shadow = kept
}

// allCovered reports whether every location of a coverage set has already
// been executed.
func (e *Engine) allCovered(cov []summary.LocRef, fi *summary.FuncInfo) bool {
	for _, lr := range cov {
		if !e.coverage[e.prog.LocIndex(ir.Loc{Fn: fi.Closure[lr.Ord], PC: lr.PC})] {
			return false
		}
	}
	return true
}

// applyEntry replays one feasible summary entry onto a caller state: path
// condition, shadow census, coverage, output, array-parameter writes, and
// the terminal (return-value binding, halt, or error obligation).
func (e *Engine) applyEntry(ns *State, in *ir.Instr, fi *summary.FuncInfo, en *summary.Entry, guard *expr.Expr) {
	e.filterShadow(ns, en.PC, guard)
	for _, c := range en.PC {
		ns.PC = appendPC(ns.PC, c)
		ns.sess.NoteConjunct(c)
	}
	for _, lr := range en.Cov {
		e.markCovered(ir.Loc{Fn: fi.Closure[lr.Ord], PC: lr.PC})
	}
	for _, o := range en.Out {
		ns.Output = appendOut(ns.Output, OutEntry{Guard: o.Guard, Val: o.Val})
	}
	for _, w := range en.Writes {
		obj := ns.object(ns.arrayRef(in.Args[w.Param]), true)
		if w.Cell < len(obj.Cells) {
			obj.Cells[w.Cell] = w.Val
		}
	}
	for _, h := range en.Heap {
		// Replay the closure's allocations exactly as doAlloc would have
		// produced them: the RejectHeapBusy gate guaranteed zero per-site
		// counters, so the recorded ids are the ids inline execution mints.
		cells := make([]*expr.Expr, len(h.Cells))
		copy(cells, h.Cells)
		ns.insertHeap(h.ID, &Object{Cells: cells, Width: 32})
		ns.allocs[h.Site]++
	}
	f := ns.top()
	switch en.Kind {
	case summary.KindReturn:
		if in.Dst >= 0 && en.Ret != nil {
			f.Locals[in.Dst] = Value{E: en.Ret}
		}
		f.PC++ // doCall's return-address bump never happened
		ns.justRet = true
	case summary.KindHalt:
		ns.Halt = HaltExit
		ns.ExitCode = en.Ret
	case summary.KindError:
		fnIdx := fi.Closure[en.Err.Ord]
		eloc := ir.Loc{Fn: fnIdx, PC: en.Err.PC}
		// Positions are reattached from the applying program: the summary
		// may have been recorded from a structurally identical closure of
		// another program (cross-tool sharing).
		e.failPath(ns, eloc, e.prog.Funcs[fnIdx].Instrs[en.Err.PC].Pos, en.Err.Msg)
		ns.Err.Assert = en.Err.Assert
	}
}

// filterShadow distributes the exact-path census across a summary entry: a
// shadow path follows this entry iff it is feasible under the entry's guard
// (the n-way generalization of splitShadow).
func (e *Engine) filterShadow(ns *State, pcs []*expr.Expr, guard *expr.Expr) {
	if ns.Shadow == nil {
		return
	}
	kept := make([][]*expr.Expr, 0, len(ns.Shadow))
	for _, p := range ns.Shadow {
		if !guard.IsTrue() {
			if may, err := e.solv.MayBeTrueIn(ns.sess, p, guard); err != nil || !may {
				continue
			}
		}
		np := p
		for _, c := range pcs {
			np = appendPC(np, c)
		}
		kept = append(kept, np)
	}
	ns.Shadow = kept
}
