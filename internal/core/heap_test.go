package core

// White-box tests for the symbolic heap: allocation-site-canonical
// addressing, copy-on-write across forks, the merge gating on heap shape,
// and cell-wise heap merging under guard-ite.

import (
	"testing"

	"symmerge/internal/ir"
)

const heapSrc = `
void main() {
    ptr p = alloc(4);
    p[0] = 1;
    p[1] = 2;
    ptr q = alloc(2);
    q[0] = p[0] + p[1];
    putchar(tobyte(q[0]));
}
`

func TestHeapAllocCanonicalAddresses(t *testing.T) {
	e := newTestEngine(t, heapSrc, Config{})
	s := e.initialState()
	a1, err := e.doAlloc(s, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(4), Site: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	// A sibling forked before the second allocation must mint the same
	// address for it: addresses depend on (site, per-site count) only.
	sib := s.fork(99)
	a2, err := e.doAlloc(s, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	a2s, err := e.doAlloc(sib, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Val == a2.Val {
		t.Fatalf("two allocations share address %#x", a1.Val)
	}
	if a2.Val != a2s.Val {
		t.Fatalf("sibling allocations at the same site diverged: %#x vs %#x", a2.Val, a2s.Val)
	}
	if got := ir.HeapBase(0, 0); uint32(a1.Val) != got {
		t.Fatalf("first address %#x, want %#x", a1.Val, got)
	}
}

func TestHeapCopyOnWriteAcrossFork(t *testing.T) {
	e := newTestEngine(t, heapSrc, Config{})
	s := e.initialState()
	addr, err := e.doAlloc(s, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	id := ir.HeapObjField(uint32(addr.Val))

	i := s.findHeap(id)
	s.heapObjectAt(i, true).Cells[0] = e.build.Const(11, 32)

	child := s.fork(99)
	child.heapObjectAt(child.findHeap(id), true).Cells[0] = e.build.Const(22, 32)

	if v := s.heap[s.findHeap(id)].obj.Cells[0].Val; v != 11 {
		t.Fatalf("parent heap cell changed to %d after child write", v)
	}
	if v := child.heap[child.findHeap(id)].obj.Cells[0].Val; v != 22 {
		t.Fatalf("child heap cell is %d, want 22", v)
	}
}

func TestHeapShapeGatesMerging(t *testing.T) {
	e := newTestEngine(t, heapSrc, Config{Merge: MergeSSM})
	s := e.initialState()
	if _, err := e.doAlloc(s, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 0, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	twin := s.fork(1)
	if !sameHeapShape(s, twin) || !e.similar(s, twin) {
		t.Fatal("identical heap shapes must be similar")
	}
	if s.stackHash() != twin.stackHash() {
		t.Fatal("identical states hash differently")
	}
	// One side allocates again: shapes diverge, merging must be blocked.
	if _, err := e.doAlloc(twin, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 1, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	if sameHeapShape(s, twin) {
		t.Fatal("diverged heaps report the same shape")
	}
	if e.similar(s, twin) {
		t.Fatal("states with different heap shapes must not be similar")
	}
	if s.stackHash() == twin.stackHash() {
		t.Fatal("heap shape not mixed into the merge-candidate hash")
	}
}

func TestHeapMergeCellWise(t *testing.T) {
	e := newTestEngine(t, heapSrc, Config{Merge: MergeSSM})
	s1 := e.initialState()
	if _, err := e.doAlloc(s1, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(2), Site: 0, Dst: 0}); err != nil {
		t.Fatal(err)
	}
	s2 := s1.fork(1)
	cond := e.build.Var("c", 0)
	s1.PC = appendPC(s1.PC, cond)
	s2.PC = appendPC(s2.PC, e.build.Not(cond))

	shared := e.build.Const(7, 32)
	s1.heapObjectAt(0, true).Cells[0] = shared
	s2.heapObjectAt(0, true).Cells[0] = shared
	s1.heapObjectAt(0, true).Cells[1] = e.build.Const(1, 32)
	s2.heapObjectAt(0, true).Cells[1] = e.build.Const(2, 32)

	m := e.merge(s1, s2)
	if len(m.heap) != 1 {
		t.Fatalf("merged heap has %d objects, want 1", len(m.heap))
	}
	cells := m.heap[0].obj.Cells
	if cells[0] != shared {
		t.Fatalf("equal cells must merge to the shared node, got %v", cells[0])
	}
	if cells[1].IsConst() {
		t.Fatalf("divergent cells must merge to a guarded ite, got %v", cells[1])
	}
	if m.allocs == nil || m.allocs[0] != 1 {
		t.Fatalf("merged allocation counters wrong: %v", m.allocs)
	}
}

func TestHeapSymbolicOffsetStoreLoad(t *testing.T) {
	e := newTestEngine(t, heapSrc, Config{})
	s := e.initialState()
	addr, err := e.doAlloc(s, &ir.Instr{Op: ir.OpAlloc, A: ir.ConstOp(3), Site: 0, Dst: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Seed a frame whose local 0 holds base+sym (a symbolic address).
	sym := e.build.Var("i", 32)
	symAddr := e.build.Add(addr, sym)
	s.top().Locals = append([]Value{{E: symAddr}, {E: e.build.Const(42, 32)}}, s.top().Locals...)

	if err := e.doPtrStore(s, &ir.Instr{Op: ir.OpPtrStore, A: ir.LocalOp(0), B: ir.LocalOp(1)}); err != nil {
		t.Fatal(err)
	}
	obj := s.heap[0].obj
	for i, c := range obj.Cells {
		if c.IsConst() {
			t.Fatalf("cell %d stayed concrete (%v) after a symbolic-offset store", i, c)
		}
	}
	v, err := e.doPtrLoad(s, &ir.Instr{Op: ir.OpPtrLoad, A: ir.LocalOp(0), Dst: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.IsConst() {
		t.Fatalf("symbolic-offset load folded to a constant %v", v)
	}
}
