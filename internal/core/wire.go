package core

// Wire form of an execution state, for checkpoint/resume. StateWire is the
// exported, validated intermediate between a live *State (whose heap,
// allocation counters, and solver session are unexported or engine-bound)
// and the on-disk snapshot the internal/checkpoint package encodes: every
// expression stays a *expr.Expr here — the checkpoint layer is what maps
// pointers to topologically ordered node-table indices and back.
//
// What a StateWire captures: the call stack with locals and array objects,
// the path condition, the copy-on-write heap segment with its per-site
// allocation counters, multiplicity, the guarded output stream, the shadow
// exact-path census, and the DSM bookkeeping a resumed engine needs
// (predecessor-hash ring, sym_* input numbering, function-exit flag).
//
// What it deliberately drops: the engine-assigned state ID (Inject
// renumbers migrants into the receiving engine's ID space), the solver
// session (worker-local; the path condition re-blasts on demand in the
// resumed engine, exactly as it does for a cross-worker migrant), and the
// transient fast-forward pick flag.

import (
	"fmt"
	"math/big"
	"sort"

	"symmerge/internal/expr"
)

// WireObject is a serialized array object (frame-local or heap).
type WireObject struct {
	Cells []*expr.Expr
	Width uint8
}

// WireValue is a serialized local: a scalar expression, or (when E is nil)
// a reference to the array object owned by frame Depth at slot Local.
type WireValue struct {
	E     *expr.Expr
	Depth int
	Local int
}

// WireFrame is a serialized activation record.
type WireFrame struct {
	Fn      int
	PC      int
	RetDst  int
	Locals  []WireValue
	Objects []*WireObject // index-aligned with Locals; nil for scalars
}

// WireHeapEntry is a serialized heap object with its address identity
// (ir.HeapObjField of every address into the object).
type WireHeapEntry struct {
	ID  uint32
	Obj WireObject
}

// WireOut is one serialized guarded output byte.
type WireOut struct {
	Guard *expr.Expr // nil = unconditional
	Val   *expr.Expr
}

// StateWire is the serializable form of a live (non-halted) worklist state.
type StateWire struct {
	Frames  []WireFrame
	PC      []*expr.Expr
	Heap    []WireHeapEntry
	Allocs  []uint16
	Mult    string // decimal big.Int
	Output  []WireOut
	NSyms   int
	History []uint64
	HistPos int
	Shadow  [][]*expr.Expr
	JustRet bool
}

// ToWire serializes the state. Every slice is copied (expressions are
// immutable and stay shared), so the wire form is immune to the engine's
// later in-place mutations of the live state — Snapshot is non-destructive.
func (s *State) ToWire() *StateWire {
	w := &StateWire{
		Mult:    s.Mult.String(),
		NSyms:   s.nSyms,
		HistPos: s.histPos,
		JustRet: s.justRet,
		PC:      append([]*expr.Expr(nil), s.PC...),
	}
	w.Frames = make([]WireFrame, len(s.Frames))
	for i, f := range s.Frames {
		wf := WireFrame{Fn: f.Fn, PC: f.PC, RetDst: f.RetDst}
		wf.Locals = make([]WireValue, len(f.Locals))
		for j, v := range f.Locals {
			wf.Locals[j] = WireValue{E: v.E, Depth: v.Ref.Depth, Local: v.Ref.Local}
		}
		wf.Objects = make([]*WireObject, len(f.Objects))
		for j, o := range f.Objects {
			if o != nil {
				wf.Objects[j] = &WireObject{Cells: append([]*expr.Expr(nil), o.Cells...), Width: o.Width}
			}
		}
		w.Frames[i] = wf
	}
	if len(s.heap) > 0 {
		w.Heap = make([]WireHeapEntry, len(s.heap))
		for i, he := range s.heap {
			w.Heap[i] = WireHeapEntry{
				ID:  he.id,
				Obj: WireObject{Cells: append([]*expr.Expr(nil), he.obj.Cells...), Width: he.obj.Width},
			}
		}
	}
	if s.allocs != nil {
		w.Allocs = append([]uint16(nil), s.allocs...)
	}
	if len(s.Output) > 0 {
		w.Output = make([]WireOut, len(s.Output))
		for i, o := range s.Output {
			w.Output[i] = WireOut{Guard: o.Guard, Val: o.Val}
		}
	}
	if s.history != nil {
		w.History = append([]uint64(nil), s.history...)
	}
	if s.Shadow != nil {
		w.Shadow = make([][]*expr.Expr, len(s.Shadow))
		for i, p := range s.Shadow {
			w.Shadow[i] = append([]*expr.Expr(nil), p...)
		}
	}
	return w
}

// Snapshot serializes every live worklist state, ordered by state ID (the
// deterministic engine-assigned order). The engine is untouched: Snapshot
// can run mid-exploration between StepN quanta and the run continues.
func (e *Engine) Snapshot() []*StateWire {
	states := make([]*State, 0, len(e.worklist))
	for s := range e.worklist {
		states = append(states, s)
	}
	sortStatesByID(states)
	out := make([]*StateWire, len(states))
	for i, s := range states {
		out[i] = s.ToWire()
	}
	return out
}

// Restore validates and injects previously snapshotted states into the
// engine's worklist (after Begin(false)): the resume counterpart of
// Snapshot. Injection renumbers each state into this engine's ID space and
// attaches a fresh solver session, exactly as for a cross-worker migrant;
// an injected state may immediately merge with a resident one.
func (e *Engine) Restore(wires []*StateWire) error {
	states, err := e.MaterializeStates(wires)
	if err != nil {
		return err
	}
	for _, s := range states {
		e.Inject(s)
	}
	return nil
}

// MaterializeStates rebuilds live, detached states from wire form without
// injecting them anywhere — the checkpoint driver uses it to hand a resumed
// frontier to the parallel pool as seeds (the claiming worker's Inject does
// the renumbering and session attach). The receiver only supplies the
// program the wires are validated against.
func (e *Engine) MaterializeStates(wires []*StateWire) ([]*State, error) {
	out := make([]*State, len(wires))
	for i, w := range wires {
		s, err := e.stateFromWire(w)
		if err != nil {
			return nil, fmt.Errorf("state %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// stateFromWire rebuilds a live state, validating every program-relative
// field against this engine's program: a snapshot from a different program
// (or a corrupted one) must be refused here, not crash the stepper later.
func (e *Engine) stateFromWire(w *StateWire) (*State, error) {
	if len(w.Frames) == 0 {
		return nil, fmt.Errorf("no frames")
	}
	mult, ok := new(big.Int).SetString(w.Mult, 10)
	if !ok || mult.Sign() <= 0 {
		return nil, fmt.Errorf("bad multiplicity %q", w.Mult)
	}
	s := &State{
		Mult:    mult,
		nSyms:   w.NSyms,
		histPos: w.HistPos,
		justRet: w.JustRet,
		PC:      append([]*expr.Expr(nil), w.PC...),
	}
	for i, c := range w.PC {
		if c == nil || !c.IsBool() {
			return nil, fmt.Errorf("path conjunct %d is not boolean", i)
		}
	}
	s.Frames = make([]*Frame, len(w.Frames))
	for i, wf := range w.Frames {
		if wf.Fn < 0 || wf.Fn >= len(e.prog.Funcs) {
			return nil, fmt.Errorf("frame %d: function %d out of range", i, wf.Fn)
		}
		fn := e.prog.Funcs[wf.Fn]
		if wf.PC < 0 || wf.PC >= len(fn.Instrs) {
			return nil, fmt.Errorf("frame %d: pc %d out of range for %s", i, wf.PC, fn.Name)
		}
		if len(wf.Locals) != len(fn.Locals) || len(wf.Objects) != len(fn.Locals) {
			return nil, fmt.Errorf("frame %d: %d locals serialized, %s has %d", i, len(wf.Locals), fn.Name, len(fn.Locals))
		}
		f := &Frame{Fn: wf.Fn, PC: wf.PC, RetDst: wf.RetDst}
		f.Locals = make([]Value, len(wf.Locals))
		f.Objects = make([]*Object, len(wf.Objects))
		for j, wv := range wf.Locals {
			if wv.E != nil {
				f.Locals[j] = Value{E: wv.E}
				continue
			}
			if wv.Depth < 0 || wv.Depth >= len(w.Frames) {
				return nil, fmt.Errorf("frame %d local %d: ref depth %d out of range", i, j, wv.Depth)
			}
			if wv.Local < 0 || wv.Local >= len(w.Frames[wv.Depth].Locals) {
				return nil, fmt.Errorf("frame %d local %d: ref slot %d out of range", i, j, wv.Local)
			}
			f.Locals[j] = Value{Ref: ObjRef{Depth: wv.Depth, Local: wv.Local}}
		}
		for j, wo := range wf.Objects {
			if wo == nil {
				continue
			}
			o, err := objectFromWire(wo)
			if err != nil {
				return nil, fmt.Errorf("frame %d object %d: %w", i, j, err)
			}
			f.Objects[j] = o
		}
		s.Frames[i] = f
	}
	if len(w.Heap) > 0 {
		s.heap = make([]heapEntry, len(w.Heap))
		for i, wh := range w.Heap {
			if i > 0 && w.Heap[i-1].ID >= wh.ID {
				return nil, fmt.Errorf("heap not sorted by object id at entry %d", i)
			}
			o, err := objectFromWire(&wh.Obj)
			if err != nil {
				return nil, fmt.Errorf("heap object %d: %w", i, err)
			}
			s.heap[i] = heapEntry{id: wh.ID, obj: o}
		}
	}
	if want := e.prog.AllocSites; want > 0 || len(w.Allocs) > 0 {
		if len(w.Allocs) != want {
			return nil, fmt.Errorf("%d allocation counters serialized, program has %d sites", len(w.Allocs), want)
		}
		s.allocs = append([]uint16(nil), w.Allocs...)
	}
	if len(w.Output) > 0 {
		s.Output = make([]OutEntry, len(w.Output))
		for i, o := range w.Output {
			if o.Val == nil {
				return nil, fmt.Errorf("output entry %d has no value", i)
			}
			if o.Guard != nil && !o.Guard.IsBool() {
				return nil, fmt.Errorf("output entry %d: non-boolean guard", i)
			}
			s.Output[i] = OutEntry{Guard: o.Guard, Val: o.Val}
		}
	}
	if len(w.History) > 0 {
		if w.HistPos < 0 || w.HistPos >= len(w.History) {
			return nil, fmt.Errorf("history position %d out of range", w.HistPos)
		}
		s.history = append([]uint64(nil), w.History...)
	} else if w.HistPos != 0 {
		return nil, fmt.Errorf("history position %d with empty history", w.HistPos)
	}
	if w.Shadow != nil {
		s.Shadow = make([][]*expr.Expr, len(w.Shadow))
		for i, p := range w.Shadow {
			for j, c := range p {
				if c == nil || !c.IsBool() {
					return nil, fmt.Errorf("shadow path %d conjunct %d is not boolean", i, j)
				}
			}
			s.Shadow[i] = append([]*expr.Expr(nil), p...)
		}
	}
	return s, nil
}

func objectFromWire(wo *WireObject) (*Object, error) {
	if wo.Width != 8 && wo.Width != 32 {
		return nil, fmt.Errorf("cell width %d (want 8 or 32)", wo.Width)
	}
	for i, c := range wo.Cells {
		if c == nil || c.Width != wo.Width {
			return nil, fmt.Errorf("cell %d does not have width %d", i, wo.Width)
		}
	}
	return &Object{Cells: append([]*expr.Expr(nil), wo.Cells...), Width: wo.Width}, nil
}

func sortStatesByID(ss []*State) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].ID < ss[j].ID })
}
