package core

import (
	"context"
	"math/big"
	"sort"
	"sync/atomic"
	"time"

	"symmerge/internal/analysis"
	"symmerge/internal/cfg"
	"symmerge/internal/checkpoint/faultinject"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/obs"
	"symmerge/internal/qce"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

// MergeMode selects the state-merging regime (paper §2.2, §4).
type MergeMode uint8

// Merge modes.
const (
	// MergeNone explores every path separately (plain KLEE).
	MergeNone MergeMode = iota
	// MergeSSM is static state merging: states are picked in CFG
	// topological order and merged at join points whenever the
	// similarity relation allows.
	MergeSSM
	// MergeDSM is dynamic state merging (Algorithm 2): an arbitrary
	// driving strategy picks states, and fast-forwarding briefly
	// overrides it when a state is similar to a recent predecessor of
	// another worklist state.
	MergeDSM
	// MergeFunc merges states only at function-exit join points,
	// realizing precise symbolic function summaries (paper §2.2,
	// "Compositionality"): all intraprocedural paths of a callee are
	// combined into one state when the call returns, and no other merge
	// points exist. With UseQCE the summaries become selective.
	MergeFunc
)

func (m MergeMode) String() string {
	switch m {
	case MergeNone:
		return "none"
	case MergeSSM:
		return "ssm"
	case MergeDSM:
		return "dsm"
	case MergeFunc:
		return "func"
	}
	return "?"
}

// Strategy picks the next state to explore; implementations live in
// symmerge/internal/search. The engine calls Add for every state entering
// the worklist and Remove for every state leaving it.
type Strategy interface {
	Add(*State)
	Remove(*State)
	Pick() *State
	Len() int
}

// StrategyContext is the engine view offered to strategies.
type StrategyContext interface {
	// IsCovered reports whether the instruction has been executed.
	IsCovered(ir.Loc) bool
	// TopoLess orders states by interprocedural CFG topological order.
	TopoLess(a, b *State) bool
}

// Config configures an exploration.
type Config struct {
	Merge MergeMode
	// UseQCE enables the QCE similarity relation; when false and merging
	// is on, all same-location states merge (the Hansen-style baseline).
	UseQCE bool
	QCE    qce.Params

	// Symbolic environment (paper §5.1: symbolic command line and stdin).
	NArgs    int // number of symbolic arguments
	ArgLen   int // max characters per argument (zero-terminated)
	StdinLen int // symbolic stdin bytes

	// ConcreteArgs/ConcreteStdin pin the environment to constants instead
	// (overriding NArgs/ArgLen/StdinLen), turning the engine into a
	// reference interpreter: exactly one path is feasible per branch.
	// Used by the model-conformance tests and for replaying test cases.
	ConcreteArgs  [][]byte
	ConcreteStdin []byte

	// DSMDelta is the fast-forwarding distance δ in basic blocks
	// (paper §5.5 uses 8).
	DSMDelta int

	// Budgets; zero means unlimited.
	MaxSteps  uint64
	MaxTime   time.Duration
	MaxStates int // prune excess states beyond this worklist size

	// Context, when non-nil, cancels the exploration early: the step loop
	// polls it on the same cadence as the wall-clock deadline, so portfolio
	// losers and interrupted CLI runs stop promptly with Completed=false.
	Context context.Context

	// PollEvery sets the step cadence of the context/deadline poll (0 =
	// every 64 steps). The checkpoint driver sets 1: its epoch boundaries
	// arrive as context timeouts, and the default cadence would quantize
	// an epoch shorter than 64 steps' worth of work up to that boundary.
	// A step executes a whole basic block (often with solver queries), so
	// even the every-step poll is noise there.
	PollEvery int

	// Builder, when non-nil, supplies the expression builder instead of a
	// private one. The parallel subsystem shares one (concurrency-safe)
	// builder across all workers so expression identity — pointer equality,
	// builder-unique IDs, and thus counterexample-cache fingerprints — is
	// globally consistent and states can migrate between workers.
	Builder *expr.Builder

	// QCEAnalysis, when non-nil and UseQCE is set, supplies a precomputed
	// analysis instead of running qce.Analyze per engine. The analysis is
	// immutable after construction, so parallel workers share one.
	QCEAnalysis *qce.Analysis

	// Analysis, when non-nil, attaches the program's static dataflow facts
	// (internal/analysis): branch sides the interval analysis proves
	// infeasible are taken without solver queries or path-condition
	// conjuncts, provably-in-bounds array and heap accesses skip their
	// CheckBounds queries, and merging skips ite selectors for locals that
	// are dead at the merge point. All facts are sound over-approximations,
	// so the explored path set — and with it coverage, errors, the exact-path
	// census, and canonical corpora — is identical with or without it; only
	// the work spent proving feasibility shrinks. Immutable after
	// construction; parallel workers share one.
	Analysis *analysis.Program

	// CrossCheckAnalysis re-validates every statically-pruned branch side
	// with a solver query and panics when the solver finds it satisfiable
	// (pruned ⇒ unsat is the analysis soundness contract). Test-only: the
	// fuzz harness runs with it set.
	CrossCheckAnalysis bool

	// CheckBounds makes out-of-bounds array accesses path errors instead
	// of returning 0 / ignoring the write.
	CheckBounds bool

	// TrackExactPaths enables the shadow path census used by Figure 3.
	TrackExactPaths bool

	// MaxTests bounds the number of recorded test cases (0 = 256).
	MaxTests int

	// CollectTests solves for a concrete model at every path end.
	CollectTests bool

	// CanonicalTests makes collected tests replayable and run-independent:
	// inputs come from the lexicographically minimal model of each path
	// (solver.MinModelIn) instead of an arbitrary solver model, so the same
	// path yields byte-identical inputs regardless of worker count, search
	// strategy, or cache state; and a merged state with a shadow census
	// (TrackExactPaths) emits one test per constituent single path rather
	// than one per state, so the union of the tests' concrete executions
	// covers exactly what the symbolic run covered. The corpus subsystem
	// sets this; plain CollectTests keeps the cheaper arbitrary-model path.
	CanonicalTests bool

	// TestSink, when non-nil, receives every collected test case as it is
	// generated, before (and regardless of) the MaxTests-bounded in-memory
	// recording. The corpus writer streams tests to disk through it; with
	// parallel workers all engines share one sink, which therefore must be
	// safe for concurrent calls.
	TestSink func(TestCase)

	// DisableSessions turns off the incremental solver sessions (one
	// blast-once/assume-many SAT instance shared along a state lineage)
	// and makes every query take the one-shot blast path. Ablation knob:
	// the default, sessions on, is measurably faster on branch-heavy
	// workloads.
	DisableSessions bool

	// Obs, when non-nil, attaches the observability layer: each engine
	// takes one trace/metrics lane from it (NewLane) and threads it through
	// its own hooks and its solver. Purely observational — exploration
	// results are byte-identical with or without it.
	Obs *obs.Run

	// Summaries, when non-nil, enables compositional function summaries:
	// eligible call sites are discharged from the shared cache instead of
	// exploring the callee inline (recording the callee once on a miss).
	// The cache must be paired with the builder that minted the expression
	// IDs in its keys — parallel workers and paperbench tools share one
	// (builder, cache) pair. Ignored under CheckBounds: bounds errors are
	// caller-environment-dependent, so summarized callees would miss them.
	Summaries *summary.Cache

	// SummaryMaxSteps bounds one summary recording (0 = 4096 scheduler
	// steps). A callee that exceeds it is negatively cached as truncated
	// and explored inline forever after.
	SummaryMaxSteps uint64

	SolverOpts solver.Options
}

// TestCase is a concrete input reproducing one explored path.
type TestCase struct {
	Args   [][]byte // argv[1..]
	Stdin  []byte
	Output []byte // concrete output bytes under this input (best effort)
	Exit   int64
	IsErr  bool
	Msg    string
	// Assert marks an error test whose failure is an assert tripping —
	// program semantics a concrete interpreter reproduces. Other error
	// kinds (bounds checking, solver budget) are engine analyses with no
	// concrete-replay counterpart; the corpus writer skips those.
	Assert bool
}

// Stats aggregates engine activity.
type Stats struct {
	Steps        uint64
	Instructions uint64
	Forks        uint64

	MergeAttempts uint64 // similarity checks at matching locations
	Merges        uint64
	FFSelected    uint64 // states picked from the fast-forwarding set
	FFMerged      uint64 // fast-forwarded states that did merge

	PathsCompleted uint64   // halted states (a merged state counts once)
	PathsMult      *big.Int // Σ multiplicity over halted states
	ExactPaths     uint64   // shadow census: true single paths completed

	ErrorsFound int
	MaxWorklist int
	Pruned      uint64

	// Static-analysis activity (zero unless Config.Analysis is set).
	PrunedStatic      uint64 // branch sides decided without solver queries
	BoundsElided      uint64 // array/heap bounds queries skipped as provably safe
	SummaryHeapLifted uint64 // heap-touching call sites admitted via effect summaries

	// Summary-cache activity (zero unless Config.Summaries is set).
	SummaryHits    uint64 // call sites discharged from a cached summary
	SummaryRejects uint64 // call sites that fell back to inline exploration
	SummaryRecords uint64 // summaries recorded by this engine
	SummaryEntries uint64 // Σ feasible entries applied at discharged sites
	SummarySteps   uint64 // scheduler steps spent inside recordings

	CoveredInstrs  int
	TotalInstrs    int
	ElapsedSeconds float64

	// Corpus emission counters, filled by the symx layer when the run was
	// configured with a CorpusDir: tests streamed to the writer and
	// duplicates dropped by input-hash deduplication.
	TestsEmitted int
	TestsDeduped int
	// TestGenFailures counts path ends whose test was dropped because the
	// model solve failed (solver budget/deadline) rather than being
	// infeasible. A non-zero count means the test set under-represents
	// the explored paths — corpus emission turns it into a CorpusErr so
	// a later replay parity failure is explained at emission time.
	TestGenFailures int

	Solver solver.Stats

	// Rules is a snapshot of the expression builder's per-rewrite-rule hit
	// counters (expr/rules.go), most active first. With a shared builder
	// (parallel workers) the counts are builder-global, not per-engine.
	Rules []expr.RuleHit
}

// Coverage returns statement coverage as a fraction in [0,1].
func (st *Stats) Coverage() float64 {
	if st.TotalInstrs == 0 {
		return 0
	}
	return float64(st.CoveredInstrs) / float64(st.TotalInstrs)
}

// Engine explores a program symbolically.
type Engine struct {
	prog  *ir.Program
	cfg   Config
	build *expr.Builder
	solv  *solver.Solver
	qce   *qce.Analysis
	an    *analysis.Program
	cfgs  []*cfg.FuncCFG

	strategy Strategy
	worklist map[*State]bool
	byStack  map[uint64][]*State // merge-candidate index (stack hash)

	// DSM bookkeeping.
	predCount map[uint64]int             // multiset of all worklist states' history hashes
	curIndex  map[uint64]map[*State]bool // states by current similarity hash
	ffSet     map[*State]uint64          // fast-forwarding set F with matched hash

	coverage []bool
	covered  int

	nextID uint64
	zero8  *expr.Expr
	zero32 *expr.Expr
	argv   [][]*expr.Expr // argv[i] = cells (length ArgLen+1, last forced 0)
	argv0  []byte
	stdin  []*expr.Expr
	hotBuf []int
	inVars []*expr.Expr // cached canonical input-variable order (inputVars)

	stats     Stats
	testCases []TestCase
	errors    []PathError
	deadline  time.Time
	started   time.Time
	stopCause Interrupted

	// sessRoot is the engine's root solver session. Every state lineage —
	// the entry state and every injected migrant — forks it, so the whole
	// engine shares one persistent SAT core: conjuncts blast once per
	// worker and learned clauses amortize across subtrees, exactly as they
	// do across fork lineages in a sequential run. Nil until first use and
	// when sessions are disabled.
	sessRoot *solver.Session

	// obs is this engine's observability lane (nil when disabled); progPub
	// holds the latest published progress snapshot, the race-free view
	// Stats/LiveProgress serve to other goroutines.
	obs     *obs.Observer
	progPub atomic.Pointer[progressSnap]

	// sum is the compositional-summary machinery (nil when disabled); see
	// summary.go in this package.
	sum *engineSummaries

	// recording, when non-nil, marks this engine as a summary recorder: a
	// throwaway sub-engine exploring one callee from an empty path
	// condition. Terminated states are collected instead of being turned
	// into tests/errors, and solver failures abort the recording.
	recording *recordingState
}

// progressSnap is one published progress snapshot: a self-contained Stats
// copy (PathsMult detached), the coverage bitmap, and the worklist length
// at publish time. Immutable once stored.
type progressSnap struct {
	stats    Stats
	coverage []bool
	worklist int
}

// NewEngine prepares an exploration of prog under cfg with the given driving
// strategy (may be nil for MergeNone+DFS default — callers normally supply
// one from symmerge/internal/search).
func NewEngine(prog *ir.Program, config Config, strat Strategy) *Engine {
	build := config.Builder
	if build == nil {
		build = expr.NewBuilder()
	}
	e := &Engine{
		prog:      prog,
		cfg:       config,
		build:     build,
		solv:      solver.New(config.SolverOpts),
		worklist:  map[*State]bool{},
		byStack:   map[uint64][]*State{},
		predCount: map[uint64]int{},
		curIndex:  map[uint64]map[*State]bool{},
		ffSet:     map[*State]uint64{},
		coverage:  make([]bool, prog.NumLocations()),
		strategy:  strat,
	}
	e.solv.AttachBuilder(e.build)
	e.zero8 = e.build.Const(0, 8)
	e.zero32 = e.build.Const(0, 32)
	e.cfgs = make([]*cfg.FuncCFG, len(prog.Funcs))
	for i, f := range prog.Funcs {
		e.cfgs[i] = cfg.Build(f)
	}
	if config.UseQCE {
		if config.QCEAnalysis != nil {
			e.qce = config.QCEAnalysis
		} else {
			e.qce = qce.Analyze(prog, config.QCE)
		}
	}
	e.an = config.Analysis
	if e.cfg.DSMDelta == 0 {
		e.cfg.DSMDelta = 8
	}
	if e.cfg.MaxTests == 0 {
		e.cfg.MaxTests = 256
	}
	e.obs = config.Obs.NewLane()
	e.solv.Observe(e.obs)
	e.setupEnv()
	if config.Summaries != nil && !config.CheckBounds {
		e.sum = newEngineSummaries(e, config.Summaries)
	}
	e.publishProgress() // Stats() is valid (if empty) before Begin
	return e
}

// Obs exposes the engine's observability lane (nil when disabled); the
// parallel pool emits frontier steal/donate events on the lane of the
// engine doing the stealing or donating.
func (e *Engine) Obs() *obs.Observer { return e.obs }

// Builder exposes the engine's expression builder (used by tests).
func (e *Engine) Builder() *expr.Builder { return e.build }

// Solver exposes the engine's solver (used by tests).
func (e *Engine) Solver() *solver.Solver { return e.solv }

// setupEnv creates the argv and stdin cell arrays: symbolic variables by
// default, constants when the configuration pins concrete inputs.
func (e *Engine) setupEnv() {
	e.argv0 = []byte("prog")
	if e.cfg.ConcreteArgs != nil || e.cfg.ConcreteStdin != nil {
		for _, arg := range e.cfg.ConcreteArgs {
			cells := make([]*expr.Expr, len(arg)+1)
			for j, c := range arg {
				cells[j] = e.build.Const(uint64(c), 8)
			}
			cells[len(arg)] = e.zero8
			e.argv = append(e.argv, cells)
		}
		e.cfg.NArgs = len(e.cfg.ConcreteArgs)
		for _, c := range e.cfg.ConcreteStdin {
			e.stdin = append(e.stdin, e.build.Const(uint64(c), 8))
		}
		e.cfg.StdinLen = len(e.cfg.ConcreteStdin)
		return
	}
	for i := 0; i < e.cfg.NArgs; i++ {
		cells := make([]*expr.Expr, e.cfg.ArgLen+1)
		for j := 0; j < e.cfg.ArgLen; j++ {
			cells[j] = e.build.Var(argName(i+1, j), 8)
		}
		cells[e.cfg.ArgLen] = e.zero8 // forced terminator
		e.argv = append(e.argv, cells)
	}
	for j := 0; j < e.cfg.StdinLen; j++ {
		e.stdin = append(e.stdin, e.build.Var(stdinName(j), 8))
	}
}

func argName(arg, idx int) string { return "arg" + itoa(arg) + "_" + itoa(idx) }
func stdinName(idx int) string    { return "stdin_" + itoa(idx) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// initialState builds the entry state at main.
func (e *Engine) initialState() *State {
	s := &State{
		ID:   e.nextID,
		Mult: big.NewInt(1),
	}
	if n := e.prog.AllocSites; n > 0 {
		s.allocs = make([]uint16, n)
	}
	s.sess = e.forkRootSession()
	e.nextID++
	s.pushFrame(e.newFrame(e.prog.Main, -1))
	if e.cfg.TrackExactPaths {
		s.Shadow = [][]*expr.Expr{nil}
	}
	return s
}

// newFrame allocates a frame with zero-initialized locals and fresh array
// objects for array-typed locals.
func (e *Engine) newFrame(fn *ir.Func, retDst int) *Frame {
	f := &Frame{Fn: fn.Index, RetDst: retDst}
	f.Locals = make([]Value, len(fn.Locals))
	f.Objects = make([]*Object, len(fn.Locals))
	for i, l := range fn.Locals {
		switch l.Type.Kind {
		case ir.Bool:
			f.Locals[i] = Value{E: e.build.False()}
		case ir.Byte:
			f.Locals[i] = Value{E: e.zero8}
		case ir.Int, ir.Ptr: // ptr zero-initializes to the null pointer
			f.Locals[i] = Value{E: e.zero32}
		case ir.ArrayByte, ir.ArrayInt:
			w := uint8(8)
			zeroCell := e.zero8
			if l.Type.Kind == ir.ArrayInt {
				w, zeroCell = 32, e.zero32
			}
			cells := make([]*expr.Expr, l.Type.Len)
			for c := range cells {
				cells[c] = zeroCell
			}
			f.Objects[i] = &Object{Cells: cells, Width: w}
			f.Locals[i] = Value{Ref: ObjRef{Depth: -1, Local: i}} // own; depth fixed on push
		}
	}
	return f
}

// pushFrame appends the frame, fixing self-references to the actual depth.
func (s *State) pushFrame(f *Frame) {
	depth := len(s.Frames)
	for i := range f.Locals {
		if f.Objects[i] != nil {
			f.Locals[i].Ref = ObjRef{Depth: depth, Local: i}
		}
	}
	s.Frames = append(s.Frames, f)
}

// Interrupted classifies why an exploration returned with Completed=false,
// so a truncated run is never silently reported as a full census. The
// values are ordered by how much the caller should care: when parallel
// workers stop for different reasons the aggregate keeps the maximum.
type Interrupted uint8

// Interruption causes.
const (
	// IntrNone: not interrupted (the worklist drained).
	IntrNone Interrupted = iota
	// IntrBudget: a resource budget tripped (MaxSteps or MaxTime).
	IntrBudget
	// IntrContext: Config.Context was cancelled (Ctrl-C, portfolio loss).
	IntrContext
	// IntrCheckpoint: the run stopped early but its frontier was written to
	// a checkpoint — the exploration is resumable, nothing was dropped.
	// Set by the symx checkpoint driver, not by the engine itself.
	IntrCheckpoint
)

func (i Interrupted) String() string {
	switch i {
	case IntrNone:
		return "none"
	case IntrBudget:
		return "budget"
	case IntrContext:
		return "context"
	case IntrCheckpoint:
		return "checkpoint"
	}
	return "?"
}

// Result bundles the outcome of Run.
type Result struct {
	Stats  Stats
	Tests  []TestCase
	Errors []PathError
	// Completed is true when the worklist drained (exhaustive
	// exploration); false when a budget stopped the run.
	Completed bool
	// Interrupted records why the run stopped when Completed is false
	// (budget, cancellation, or preemption-with-checkpoint); IntrNone when
	// the exploration finished.
	Interrupted Interrupted
	// PortfolioWinner is the index of the winning configuration when the
	// run raced a portfolio (symx.Config.Portfolio); -1 otherwise.
	PortfolioWinner int
	// CoverageMask is the per-location coverage bitmap (Program.LocIndex
	// order; CoveredInstrs counts its set bits). The corpus manifest
	// records it as the symbolic covered set replays are checked against.
	CoverageMask []bool
	// CorpusErr reports a corpus-emission failure (symx.Config.CorpusDir):
	// an unwritable directory, a non-replayable program, or an I/O error
	// while streaming tests. The exploration result itself is unaffected.
	CorpusErr error
	// CheckpointErr reports a failure to persist a snapshot
	// (symx.Config.CheckpointDir). The exploration result itself is
	// unaffected, but a crash would lose the progress made since the last
	// snapshot that did persist.
	CheckpointErr error
	// ConfigErr reports a configuration the run refused up front (an
	// unknown search strategy, for example): nothing was explored and the
	// rest of the result is empty. Refusing beats the historical behaviour
	// of silently exploring under a fallback strategy while any corpus
	// manifest recorded the misspelled name.
	ConfigErr error
	// Trace accounting, filled by the symx layer when the run was
	// configured with a trace file: events written, events dropped because
	// the sink's bounded buffer was full (a non-zero count means the trace
	// is incomplete — the exploration itself is never affected), and any
	// write/close error on the trace stream.
	TraceEvents uint64
	TraceDrops  uint64
	TraceErr    error
}

// Run explores until the worklist drains or a budget trips.
func (e *Engine) Run() *Result {
	e.Begin(true)
	completed := true
	for e.strategy.Len() > 0 {
		if e.stopRequested() {
			completed = false
			break
		}
		if !e.stepOnce() {
			break
		}
	}
	return e.Finish(completed)
}

// Begin starts the exploration clock, arms the budgets, and (when seed is
// set) enqueues the entry state. Parallel workers call Begin(false) and
// receive their states via Inject; Run calls Begin(true).
func (e *Engine) Begin(seed bool) {
	e.started = time.Now()
	if e.cfg.MaxTime > 0 {
		e.deadline = e.started.Add(e.cfg.MaxTime)
		// Bound individual solver calls by the same deadline (plus
		// slack for the final call in flight): merged states can
		// produce single queries that would otherwise outlive the
		// whole exploration budget.
		e.solv.SetDeadline(e.deadline.Add(e.cfg.MaxTime / 4))
	}
	e.stats.PathsMult = big.NewInt(0)
	e.stats.TotalInstrs = e.prog.NumLocations()
	if seed {
		e.addState(e.initialState())
	}
	e.publishProgress()
}

// stopRequested reports whether a budget or cancellation should end the
// exploration, recording the cause for Result.Interrupted. The wall clock
// and the context are polled every 64 steps.
func (e *Engine) stopRequested() bool {
	if e.cfg.MaxSteps > 0 && e.stats.Steps >= e.cfg.MaxSteps {
		e.stopCause = IntrBudget
		return true
	}
	poll := uint64(64)
	if e.cfg.PollEvery > 0 {
		poll = uint64(e.cfg.PollEvery)
	}
	if e.stats.Steps%poll == 0 {
		if e.cfg.Context != nil && e.cfg.Context.Err() != nil {
			e.stopCause = IntrContext
			return true
		}
		if !e.deadline.IsZero() && time.Now().After(e.deadline) {
			e.stopCause = IntrBudget
			return true
		}
	}
	return false
}

// stepOnce runs one scheduler step: pick, step to the next block boundary,
// dispatch successors. It reports whether a state was stepped.
func (e *Engine) stepOnce() bool {
	faultinject.Hit(faultinject.PointStep)
	s := e.pickNext()
	if s == nil {
		return false
	}
	e.removeState(s)
	e.stats.Steps++
	t0 := e.obs.StepStart()
	succs := e.stepBlock(s)
	for _, ns := range succs {
		e.dispatch(ns)
	}
	e.obs.StepDone(t0, len(e.worklist))
	if n := e.strategy.Len(); n > e.stats.MaxWorklist {
		e.stats.MaxWorklist = n
	}
	if e.cfg.MaxStates > 0 {
		e.pruneExcess()
	}
	if e.stats.Steps&63 == 0 {
		e.publishProgress()
	}
	return true
}

// RunStatus is the outcome of a bounded StepN call.
type RunStatus uint8

// StepN outcomes.
const (
	// RunMore: the quantum ran out with work remaining.
	RunMore RunStatus = iota
	// RunDrained: the worklist is empty.
	RunDrained
	// RunStopped: a budget tripped or the context was cancelled.
	RunStopped
)

// StepN runs up to n scheduler steps. It is the quantum the parallel
// subsystem's workers interleave with frontier polls: returning to the
// caller every n steps bounds how stale a worker's view of the shared
// frontier (hungry peers, cancellation) can get.
func (e *Engine) StepN(n int) RunStatus {
	for i := 0; i < n; i++ {
		if e.strategy.Len() == 0 {
			return RunDrained
		}
		if e.stopRequested() {
			return RunStopped
		}
		if !e.stepOnce() {
			return RunDrained
		}
	}
	if e.strategy.Len() == 0 {
		return RunDrained
	}
	return RunMore
}

// Finish closes the exploration and packages the result. completed should
// be false when a budget or cancellation stopped the run early.
func (e *Engine) Finish(completed bool) *Result {
	e.stats.CoveredInstrs = e.covered
	e.stats.Solver = e.solv.Stats
	if e.cfg.Builder == nil {
		// Rule counters are builder-global. Only an engine that owns its
		// builder may embed them; with a shared builder (parallel workers,
		// the checkpoint driver) every worker would report the same global
		// counters and summing snapshots would multiply them by the worker
		// count — parallel.Combine attributes the shared builder's counters
		// exactly once, at the pool level.
		e.stats.Rules = e.build.RuleHits()
	}
	e.stats.ElapsedSeconds = time.Since(e.started).Seconds()
	e.publishProgress()
	res := &Result{
		Stats:           e.stats,
		Tests:           e.testCases,
		Errors:          e.errors,
		Completed:       completed,
		PortfolioWinner: -1,
		CoverageMask:    e.CoverageMask(),
	}
	if !completed {
		res.Interrupted = e.stopCause
		if res.Interrupted == IntrNone {
			// Stopped for a reason the engine never observed itself (a
			// parallel frontier closing on a peer's budget): a budget-class
			// interruption.
			res.Interrupted = IntrBudget
		}
	}
	return res
}

// Progress packages the engine's cumulative result so far WITHOUT closing
// the exploration: the checkpoint driver persists it alongside the frontier
// snapshot between StepN quanta while the run continues.
func (e *Engine) Progress() *Result {
	res := e.Finish(false)
	res.Interrupted = IntrNone
	if res.Stats.PathsMult != nil {
		// Detach from the live counter, which later steps mutate in place.
		res.Stats.PathsMult = new(big.Int).Set(res.Stats.PathsMult)
	}
	return res
}

// WorklistLen reports the number of live states awaiting exploration.
func (e *Engine) WorklistLen() int { return len(e.worklist) }

// Inject adopts a state detached from another engine (or freshly seeded by
// the splitter): it re-numbers the state into this engine's ID space —
// keeping victim selection and TopoLess tie-breaks deterministic per worker
// — attaches a fresh solver session (the path condition re-blasts here on
// demand), and dispatches it, so an incoming state may immediately merge
// with a resident one.
func (e *Engine) Inject(s *State) {
	s.ID = e.nextID
	e.nextID++
	if s.sess == nil {
		s.sess = e.forkRootSession()
	}
	e.dispatch(s)
}

// forkRootSession hands out a lineage session sharing the engine-wide
// persistent SAT core (nil when sessions are disabled).
func (e *Engine) forkRootSession() *solver.Session {
	if e.cfg.DisableSessions {
		return nil
	}
	if e.sessRoot == nil {
		e.sessRoot = e.solv.NewSession()
	}
	return e.sessRoot.Fork()
}

// ExtractStates detaches up to max worklist states for migration to another
// engine, always leaving at least one behind (the donor keeps working).
// Victims are the oldest states (lowest ID): in a forking exploration the
// oldest frontier entries root the largest unexplored subtrees, which makes
// them the best work to ship elsewhere. Returned states are fully detached
// — no mutable memory is shared with this engine (see State.detach).
func (e *Engine) ExtractStates(max int) []*State {
	return e.extract(max, 1)
}

// ExtractAll detaches every worklist state (the splitter's hand-off to the
// frontier after the initial sharding phase).
func (e *Engine) ExtractAll() []*State {
	return e.extract(len(e.worklist), 0)
}

func (e *Engine) extract(max, keep int) []*State {
	n := len(e.worklist) - keep
	if n > max {
		n = max
	}
	if n <= 0 {
		return nil
	}
	all := make([]*State, 0, len(e.worklist))
	for s := range e.worklist {
		all = append(all, s)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	victims := all[:n]
	for _, s := range victims {
		e.removeState(s)
		s.detach()
	}
	return victims
}

// CoverageMask returns a copy of the per-location coverage bitmap, for
// cross-worker union at join time.
func (e *Engine) CoverageMask() []bool {
	out := make([]bool, len(e.coverage))
	copy(out, e.coverage)
	return out
}

// dispatch routes a stepped successor: record completion, attempt merging,
// or return it to the worklist.
func (e *Engine) dispatch(ns *State) {
	if ns.Halt != HaltNone {
		e.finishState(ns)
		return
	}
	mergeable := e.cfg.Merge != MergeNone
	if e.cfg.Merge == MergeFunc {
		// Function-summary merging joins states only where a call just
		// returned; everywhere else paths stay separate.
		mergeable = ns.justRet
	}
	if mergeable {
		if merged := e.tryMerge(ns); merged {
			return
		}
	}
	e.addState(ns)
}

// addState inserts a state into the worklist and all indexes.
func (e *Engine) addState(s *State) {
	e.worklist[s] = true
	e.strategy.Add(s)
	key := s.stackHash()
	e.byStack[key] = append(e.byStack[key], s)
	if e.cfg.Merge == MergeDSM {
		for _, h := range s.history {
			e.predCount[h]++
		}
		ch := e.simHash(s)
		s.curHash = ch
		set := e.curIndex[ch]
		if set == nil {
			set = map[*State]bool{}
			e.curIndex[ch] = set
		}
		set[s] = true
		e.refreshFF(s)
	}
}

// removeState removes a state from the worklist and all indexes.
func (e *Engine) removeState(s *State) {
	delete(e.worklist, s)
	e.strategy.Remove(s)
	key := s.stackHash()
	list := e.byStack[key]
	for i, x := range list {
		if x == s {
			list[i] = list[len(list)-1]
			e.byStack[key] = list[:len(list)-1]
			break
		}
	}
	if len(e.byStack[key]) == 0 {
		delete(e.byStack, key)
	}
	if e.cfg.Merge == MergeDSM {
		for _, h := range s.history {
			if e.predCount[h]--; e.predCount[h] <= 0 {
				delete(e.predCount, h)
			}
		}
		if set := e.curIndex[s.curHash]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(e.curIndex, s.curHash)
			}
		}
		delete(e.ffSet, s)
	}
}

// pickNext implements Algorithm 2 when DSM is active, otherwise defers to
// the driving strategy.
func (e *Engine) pickNext() *State {
	if e.cfg.Merge == MergeDSM && len(e.ffSet) > 0 {
		// pickNextF: the topologically earliest state in F, so lagging
		// states catch up to their merge candidates (paper §4.3).
		var best *State
		for s, h := range e.ffSet {
			if !e.worklist[s] || !e.stillForwardable(s, h) {
				delete(e.ffSet, s)
				continue
			}
			if best == nil || e.TopoLess(s, best) {
				best = s
			}
		}
		if best != nil {
			e.stats.FFSelected++
			if e.obs.Active() {
				loc := best.Loc()
				e.obs.FFSelect(best.ID, loc.Fn, loc.PC)
			}
			best.ff = true
			return best
		}
	}
	s := e.strategy.Pick()
	if s != nil {
		s.ff = false
	}
	return s
}

// stillForwardable re-validates an F-set member: its current hash must still
// match some other state's recent predecessor hash.
func (e *Engine) stillForwardable(s *State, _ uint64) bool {
	h := s.curHash
	own := 0
	for _, x := range s.history {
		if x == h {
			own++
		}
	}
	return e.predCount[h] > own
}

// refreshFF updates fast-forwarding-set membership for s itself and for the
// states whose current hash matches s's newly published history entries.
func (e *Engine) refreshFF(s *State) {
	if e.stillForwardable(s, s.curHash) {
		e.ffSet[s] = s.curHash
	}
	for _, h := range s.history {
		for o := range e.curIndex[h] {
			if o != s && e.stillForwardable(o, o.curHash) {
				e.ffSet[o] = o.curHash
			}
		}
	}
}

// pruneExcess drops the lowest-priority states beyond MaxStates, folding
// their multiplicity into the prune counter (soundness note: pruning makes
// the exploration incomplete, exactly like KLEE's state cap).
func (e *Engine) pruneExcess() {
	for e.strategy.Len() > e.cfg.MaxStates {
		keep := e.strategy.Pick() // never prune the strategy's next choice
		var victim *State
		for w := range e.worklist {
			if w == keep {
				continue
			}
			if victim == nil || w.ID > victim.ID {
				victim = w // deterministic: newest state goes first
			}
		}
		if victim == nil {
			return
		}
		e.removeState(victim)
		e.stats.Pruned++
	}
}

// finishState records a terminated state.
func (e *Engine) finishState(s *State) {
	if e.recording != nil {
		// Summary recording: collect the callee path for entry
		// construction instead of reporting it (summary.go).
		e.recording.collect(s)
		return
	}
	switch s.Halt {
	case HaltExit, HaltError:
		e.stats.PathsCompleted++
		e.stats.PathsMult.Add(e.stats.PathsMult, s.Mult)
		e.stats.ExactPaths += uint64(len(s.Shadow))
		if s.Err != nil {
			e.stats.ErrorsFound++
			if len(e.errors) < e.cfg.MaxTests {
				pe := *s.Err
				if model, err := e.solv.GetModelIn(s.sess, s.PC); err == nil && model != nil {
					pe.Args = e.concretizeArgs(model)
				}
				e.errors = append(e.errors, pe)
			}
		}
		if e.cfg.CollectTests && (e.cfg.TestSink != nil || len(e.testCases) < e.cfg.MaxTests) {
			emitted := 0
			for _, tc := range e.makeTests(s) {
				if e.cfg.TestSink != nil {
					e.cfg.TestSink(tc)
					emitted++
				}
				if len(e.testCases) < e.cfg.MaxTests {
					e.testCases = append(e.testCases, tc)
				}
			}
			e.obs.CorpusEmit(emitted)
		}
	case HaltSilent:
		// infeasible or pruned: nothing to record
	}
}

// makeTests turns a finished state into concrete test cases. The default
// path produces one test from an arbitrary model of the state's path
// condition. With CanonicalTests, inputs come from the canonical minimal
// model instead, and a merged state carrying a shadow census emits one test
// per constituent single path — together these make the test set a function
// of the explored path set alone, independent of scheduling (the property
// the corpus determinism and strategy-parity suites pin down).
func (e *Engine) makeTests(s *State) []TestCase {
	if !e.cfg.CanonicalTests {
		if tc, ok := e.makeTest(e.pathModel(s.PC, s), s); ok {
			return []TestCase{tc}
		}
		return nil
	}
	if len(s.Shadow) > 0 {
		out := make([]TestCase, 0, len(s.Shadow))
		for _, p := range s.Shadow {
			if tc, ok := e.makeTest(e.canonModel(p, s), s); ok {
				out = append(out, tc)
			}
		}
		return out
	}
	if tc, ok := e.makeTest(e.canonModel(s.PC, s), s); ok {
		return []TestCase{tc}
	}
	return nil
}

// pathModel solves a path condition for an arbitrary model.
func (e *Engine) pathModel(pc []*expr.Expr, s *State) solver.Model {
	model, err := e.solv.GetModelIn(s.sess, pc)
	if err != nil {
		e.stats.TestGenFailures++
		return nil
	}
	return model
}

// canonModel solves a path condition for the canonical minimal model over
// the program's input variables.
func (e *Engine) canonModel(pc []*expr.Expr, s *State) solver.Model {
	model, err := e.solv.MinModelIn(s.sess, pc, e.inputVars())
	if err != nil {
		e.stats.TestGenFailures++
		return nil
	}
	return model
}

// inputVars lists the symbolic environment cells in canonical order — argv
// byte cells argument-major, then stdin bytes — the variable order the
// canonical minimal model minimizes lexicographically.
func (e *Engine) inputVars() []*expr.Expr {
	if e.inVars != nil {
		return e.inVars
	}
	vars := []*expr.Expr{}
	for _, cells := range e.argv {
		for _, c := range cells {
			if !c.IsConst() {
				vars = append(vars, c)
			}
		}
	}
	for _, c := range e.stdin {
		if !c.IsConst() {
			vars = append(vars, c)
		}
	}
	e.inVars = vars
	return vars
}

// makeTest concretizes inputs and expectations under a path model (nil when
// the solve failed; the test is then dropped).
func (e *Engine) makeTest(model solver.Model, s *State) (TestCase, bool) {
	if model == nil {
		return TestCase{}, false
	}
	tc := TestCase{Args: e.concretizeArgs(model)}
	env := expr.Env(model)
	for _, cell := range e.stdin {
		tc.Stdin = append(tc.Stdin, byte(expr.Eval(cell, env)))
	}
	for _, o := range s.Output {
		if o.Guard == nil || expr.EvalBool(o.Guard, env) {
			tc.Output = append(tc.Output, byte(expr.Eval(o.Val, env)))
		}
	}
	if s.ExitCode != nil {
		tc.Exit = int64(int32(expr.Eval(s.ExitCode, env)))
	}
	if s.Err != nil {
		tc.IsErr, tc.Msg, tc.Assert = true, s.Err.Msg, s.Err.Assert
	}
	return tc, true
}

// concretizeArgs reads the argv cells under a model. Cells after an embedded
// NUL are kept (trimming only trailing zeros): the paper's sym-args model
// leaves bytes past the terminator readable and unconstrained, and programs
// that index past the terminator depend on them — dropping them would make
// generated tests unreplayable.
func (e *Engine) concretizeArgs(model solver.Model) [][]byte {
	env := expr.Env(model)
	var out [][]byte
	for _, cells := range e.argv {
		arg := make([]byte, len(cells))
		for i, c := range cells {
			arg[i] = byte(expr.Eval(c, env))
		}
		n := len(arg)
		for n > 0 && arg[n-1] == 0 {
			n--
		}
		out = append(out, arg[:n])
	}
	return out
}

// --- StrategyContext ---

// IsCovered reports whether the location has been executed.
func (e *Engine) IsCovered(l ir.Loc) bool {
	return e.coverage[e.prog.LocIndex(l)]
}

func (e *Engine) markCovered(l ir.Loc) {
	idx := e.prog.LocIndex(l)
	if !e.coverage[idx] {
		e.coverage[idx] = true
		e.covered++
	}
}

// TopoLess orders states by interprocedural topological position: compare
// call stacks frame by frame from the bottom using each function's reverse
// postorder rank; a state deeper inside calls at the same outer position
// comes first (it must return before the caller can advance).
func (e *Engine) TopoLess(a, b *State) bool {
	n := len(a.Frames)
	if len(b.Frames) < n {
		n = len(b.Frames)
	}
	for i := 0; i < n; i++ {
		fa, fb := a.Frames[i], b.Frames[i]
		ra := e.rankOf(fa)
		rb := e.rankOf(fb)
		if fa.Fn != fb.Fn {
			return fa.Fn < fb.Fn
		}
		if ra != rb {
			return ra < rb
		}
	}
	if len(a.Frames) != len(b.Frames) {
		return len(a.Frames) > len(b.Frames) // deeper first
	}
	return a.ID < b.ID
}

func (e *Engine) rankOf(f *Frame) int {
	g := e.cfgs[f.Fn]
	pc := f.PC
	if pc >= len(g.Fn.Instrs) {
		pc = len(g.Fn.Instrs) - 1
	}
	if pc < 0 {
		return 0
	}
	return g.TopoRank(pc)
}

// publishProgress stores a fresh progress snapshot for Stats/LiveProgress.
// Called on the engine's own goroutine at construction, Begin, every 64
// steps, and Finish; the snapshot is immutable after the store, which is
// what makes the accessors safe from any goroutine.
func (e *Engine) publishProgress() {
	st := e.stats
	st.CoveredInstrs = e.covered
	st.Solver = e.solv.Stats
	if e.cfg.Builder == nil {
		st.Rules = e.build.RuleHits() // builder-global; see Finish
	}
	if st.PathsMult != nil {
		// Detach from the live counter, which later steps mutate in place.
		st.PathsMult = new(big.Int).Set(st.PathsMult)
	}
	if !e.started.IsZero() {
		st.ElapsedSeconds = time.Since(e.started).Seconds()
	}
	e.progPub.Store(&progressSnap{
		stats:    st,
		coverage: e.CoverageMask(),
		worklist: len(e.worklist),
	})
}

// Stats returns the most recently published statistics snapshot. Safe to
// call from any goroutine while the engine runs; mid-run it may lag the
// live counters by up to 64 steps (the publish cadence).
func (e *Engine) Stats() Stats {
	return e.progPub.Load().stats
}

// LiveProgress returns the published progress snapshot: statistics, the
// coverage bitmap as of the snapshot, and the worklist length. The bitmap
// is shared and must be treated as read-only. Same safety and staleness
// contract as Stats.
func (e *Engine) LiveProgress() (Stats, []bool, int) {
	p := e.progPub.Load()
	return p.stats, p.coverage, p.worklist
}
