package core

// White-box engine tests: state forking and copy-on-write, path-condition
// prefix sharing, merging mechanics, similarity hashing, and the
// Algorithm 1 / Algorithm 2 bookkeeping that the public API tests cannot
// observe directly.

import (
	"math/big"
	"testing"

	"symmerge/internal/expr"

	"symmerge/internal/lang"
	"symmerge/internal/qce"
)

// dfs is a minimal strategy for white-box engine tests.
type dfs struct{ items []*State }

func (s *dfs) Add(st *State) { s.items = append(s.items, st) }
func (s *dfs) Remove(st *State) {
	for i, x := range s.items {
		if x == st {
			s.items = append(s.items[:i], s.items[i+1:]...)
			return
		}
	}
}
func (s *dfs) Pick() *State {
	if len(s.items) == 0 {
		return nil
	}
	return s.items[len(s.items)-1]
}
func (s *dfs) Len() int { return len(s.items) }

func newTestEngine(t *testing.T, src string, cfg Config) *Engine {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UseQCE && cfg.QCE.Beta == 0 {
		cfg.QCE = qce.DefaultParams()
	}
	return NewEngine(p, cfg, &dfs{})
}

const arraySrc = `
void touch(byte buf[4]) {
    buf[1] = 7;
}
void main() {
    byte b[4];
    b[0] = 1;
    touch(b);
    putchar(b[0]);
}
`

func TestForkCopyOnWrite(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	s := e.initialState()
	// Write into the parent's array, fork, then write into the child.
	obj := s.object(ObjRef{Depth: 0, Local: 0}, true)
	obj.Cells[0] = e.build.Const(11, 8)

	child := s.fork(99)
	cobj := child.object(ObjRef{Depth: 0, Local: 0}, true)
	cobj.Cells[0] = e.build.Const(22, 8)

	// The parent must be unaffected by the child's write.
	pv := s.object(ObjRef{Depth: 0, Local: 0}, false).Cells[0]
	if pv.Val != 11 {
		t.Fatalf("parent cell changed to %d after child write", pv.Val)
	}
	cv := child.object(ObjRef{Depth: 0, Local: 0}, false).Cells[0]
	if cv.Val != 22 {
		t.Fatalf("child cell is %d, want 22", cv.Val)
	}
}

func TestForkSharesUntouchedObjects(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	s := e.initialState()
	child := s.fork(99)
	// Reading must not clone.
	po := s.object(ObjRef{Depth: 0, Local: 0}, false)
	co := child.object(ObjRef{Depth: 0, Local: 0}, false)
	if po != co {
		t.Fatal("untouched objects were copied on fork")
	}
}

func TestAppendPCSharing(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	b := e.build
	x := b.Var("x", 8)
	base := appendPC(nil, b.Ult(x, b.Const(5, 8)))
	c1 := appendPC(base, b.Eq(x, b.Const(1, 8)))
	c2 := appendPC(base, b.Eq(x, b.Const(2, 8)))
	// The shared prefix must remain pointer-identical for prefix
	// factoring during merges.
	if c1[0] != c2[0] || c1[0] != base[0] {
		t.Fatal("prefix sharing broken")
	}
	if len(base) != 1 {
		t.Fatal("appendPC mutated its input")
	}
}

func TestStackHashAndSameStack(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	a := e.initialState()
	b := e.initialState()
	if a.stackHash() != b.stackHash() || !sameStack(a, b) {
		t.Fatal("identical stacks hash differently")
	}
	b.top().PC = 3
	if a.stackHash() == b.stackHash() || sameStack(a, b) {
		t.Fatal("different PCs produce same stack hash")
	}
}

func TestMergeScalarsAndMultiplicity(t *testing.T) {
	src := `
void main() {
    int r = 1;
    if (argchar(1, 0) == '-') {
        r = 0;
    }
    putchar(tobyte('0' + r));
}
`
	e := newTestEngine(t, src, Config{NArgs: 1, ArgLen: 1, Merge: MergeSSM})
	s := e.initialState()
	succ := e.stepBlock(s)
	if len(succ) != 2 {
		t.Fatalf("branch produced %d states, want 2", len(succ))
	}
	a, b := succ[0], succ[1]
	// Drive both to the same location (the merge point after the if).
	for !sameStack(a, b) {
		if e.TopoLess(a, b) {
			a = e.stepBlock(a)[0]
		} else {
			b = e.stepBlock(b)[0]
		}
	}
	if !e.similar(a, b) {
		t.Fatal("same-location states not similar under merge-everything")
	}
	m := e.merge(a, b)
	if m.Mult.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("merged multiplicity %s, want 2", m.Mult)
	}
	// r must now be an ite (or otherwise symbolic) in the merged store.
	rIdx := -1
	for i, l := range e.prog.Main.Locals {
		if l.Name == "r" {
			rIdx = i
		}
	}
	rv := m.Frames[0].Locals[rIdx].E
	if rv == nil || !rv.IsSymbolic() {
		t.Fatalf("merged r = %v, want symbolic ite", rv)
	}
	// The merged path condition must be weaker than either side: its
	// conjunction is satisfiable and covers both branches.
	if ok, _, err := e.solv.CheckSat(m.PC); err != nil || !ok {
		t.Fatalf("merged pc unsat: %v", err)
	}
}

func TestMergePrefixFactoring(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	b := e.build
	x := b.Var("x", 8)
	shared := b.Ult(x, b.Const(100, 8))

	s1 := e.initialState()
	s2 := s1.fork(e.nextID)
	s1.PC = appendPC(appendPC(nil, shared), b.Eq(x, b.Const(1, 8)))
	s2.PC = appendPC(appendPC(nil, shared), b.Eq(x, b.Const(2, 8)))
	m := e.merge(s1, s2)
	// The merged pc must keep the shared conjunct unwrapped and add a
	// single disjunction for the differing suffix.
	if len(m.PC) != 2 {
		t.Fatalf("merged pc has %d conjuncts, want 2 (prefix + disjunction)", len(m.PC))
	}
	if m.PC[0] != shared {
		t.Fatal("common prefix not factored")
	}
}

func TestSimilarRequiresEqualHotConcretes(t *testing.T) {
	src := `
void main() {
    int n = 0;
    if (argchar(1, 0) == 'x') {
        n = 2;
    } else {
        n = 1;
    }
    for (int i = 0; i < n; i++) {
        putchar('y');
    }
    putchar('\n');
}
`
	// n drives a later loop bound: with a small alpha it must be hot, so
	// states with different concrete n may not merge. Both branches fall
	// into the loop, so the states first share a stack at the loop body
	// where n is live.
	cfg := Config{NArgs: 1, ArgLen: 1, Merge: MergeSSM, UseQCE: true}
	cfg.QCE = qce.Params{Alpha: 0.01, Beta: 0.8, Kappa: 10, Zeta: 1}
	e := newTestEngine(t, src, cfg)
	s := e.initialState()
	succ := e.stepBlock(s)
	if len(succ) != 2 {
		t.Fatalf("got %d successors", len(succ))
	}
	a, b := succ[0], succ[1]
	for !sameStack(a, b) {
		if e.TopoLess(a, b) {
			a = e.stepBlock(a)[0]
		} else {
			b = e.stepBlock(b)[0]
		}
	}
	if e.similar(a, b) {
		t.Fatal("states with differing hot concrete n reported similar")
	}
	// With merging-everything (no QCE) they must be similar.
	e.qce = nil
	if !e.similar(a, b) {
		t.Fatal("merge-everything rejected same-location states")
	}
}

func TestSimHashFiltersSymbolic(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{UseQCE: true, Merge: MergeDSM})
	b := e.build
	if filterHash(b.Var("x", 8)) != filterHash(b.Var("y", 8)) {
		t.Fatal("two symbolic values hash differently (must both be ⋆)")
	}
	if filterHash(b.Const(1, 8)) == filterHash(b.Const(2, 8)) {
		t.Fatal("distinct concrete values collide trivially")
	}
}

func TestHistoryRing(t *testing.T) {
	s := &State{}
	for i := uint64(1); i <= 10; i++ {
		s.pushHistory(i, 4)
	}
	if len(s.history) != 4 {
		t.Fatalf("ring size %d, want 4", len(s.history))
	}
	// Must contain exactly 7..10.
	seen := map[uint64]bool{}
	for _, h := range s.history {
		seen[h] = true
	}
	for i := uint64(7); i <= 10; i++ {
		if !seen[i] {
			t.Fatalf("ring lost recent entry %d: %v", i, s.history)
		}
	}
}

func TestOutputGuardedMerge(t *testing.T) {
	e := newTestEngine(t, arraySrc, Config{})
	b := e.build
	c := b.Var("c", 0)
	s1 := e.initialState()
	s2 := s1.fork(e.nextID)
	s1.PC = appendPC(nil, c)
	s2.PC = appendPC(nil, b.Not(c))
	s1.Output = []OutEntry{{Val: b.Const('a', 8)}, {Val: b.Const('b', 8)}}
	s2.Output = []OutEntry{{Val: b.Const('a', 8)}}
	m := e.merge(s1, s2)
	// Common prefix 'a' unguarded; 'b' guarded by s1's suffix condition.
	if len(m.Output) != 2 {
		t.Fatalf("merged output has %d entries, want 2", len(m.Output))
	}
	if m.Output[0].Guard != nil || m.Output[0].Val.Val != 'a' {
		t.Fatalf("entry 0 = %+v, want unguarded 'a'", m.Output[0])
	}
	if m.Output[1].Guard == nil || m.Output[1].Val.Val != 'b' {
		t.Fatalf("entry 1 = %+v, want guarded 'b'", m.Output[1])
	}
	// Under c the guard holds ('ab' printed); under ¬c it does not ('a').
	if !expr.EvalBool(m.Output[1].Guard, expr.Env{c: 1}) {
		t.Fatal("guard false under the s1 branch")
	}
	if expr.EvalBool(m.Output[1].Guard, expr.Env{c: 0}) {
		t.Fatal("guard true under the s2 branch")
	}
}

// summarySrc calls a branching helper twice: function-summary merging must
// collapse the helper's intraprocedural paths at each return, keeping the
// caller's state count flat where plain exploration multiplies it.
const summarySrc = `
int classify(byte c) {
    if (c == '-') { return 0; }
    if (c < '0') { return 1; }
    if (c > '9') { return 2; }
    return 3;
}
void main() {
    int a = classify(argchar(1, 0));
    int b = classify(argchar(2, 0));
    putchar(tobyte('0' + a + b));
}
`

func runWithMode(t *testing.T, src string, mode MergeMode) *Result {
	t.Helper()
	cfg := Config{NArgs: 2, ArgLen: 1, Merge: mode}
	e := newTestEngine(t, src, cfg)
	if mode != MergeNone {
		// Summary/SSM merging needs topological exploration; the engine
		// test strategy is DFS, which suffices here because merging
		// happens whenever states meet — drive with topo for fairness.
		e.strategy = &topoTestStrategy{e: e}
	}
	res := e.Run()
	if !res.Completed {
		t.Fatalf("mode %v did not complete", mode)
	}
	return res
}

// topoTestStrategy picks the topologically earliest state (test-local clone
// of search.Topo, which core cannot import without a cycle).
type topoTestStrategy struct {
	e     *Engine
	items []*State
}

func (s *topoTestStrategy) Add(st *State) { s.items = append(s.items, st) }
func (s *topoTestStrategy) Remove(st *State) {
	for i, x := range s.items {
		if x == st {
			s.items = append(s.items[:i], s.items[i+1:]...)
			return
		}
	}
}
func (s *topoTestStrategy) Pick() *State {
	if len(s.items) == 0 {
		return nil
	}
	best := s.items[0]
	for _, st := range s.items[1:] {
		if s.e.TopoLess(st, best) {
			best = st
		}
	}
	return best
}
func (s *topoTestStrategy) Len() int { return len(s.items) }

func TestMergeFuncSummaries(t *testing.T) {
	plain := runWithMode(t, summarySrc, MergeNone)
	summ := runWithMode(t, summarySrc, MergeFunc)

	// Soundness: the summary run must account for exactly the same number
	// of single paths via multiplicity.
	if summ.Stats.PathsMult.Uint64() != plain.Stats.PathsCompleted {
		t.Fatalf("summary multiplicity %s != plain paths %d",
			summ.Stats.PathsMult, plain.Stats.PathsCompleted)
	}
	if summ.Stats.Merges == 0 {
		t.Fatal("function-summary merging performed no merges")
	}
	// Benefit: merging at each classify return collapses 4 callee paths
	// into 1, so far fewer states complete.
	if summ.Stats.PathsCompleted >= plain.Stats.PathsCompleted {
		t.Fatalf("summary completed %d states, plain %d; expected a reduction",
			summ.Stats.PathsCompleted, plain.Stats.PathsCompleted)
	}
}

// TestMergeFuncOnlyAtReturns: in a program whose branching happens only in
// main (no calls), MergeFunc must behave exactly like MergeNone.
func TestMergeFuncOnlyAtReturns(t *testing.T) {
	src := `
void main() {
    int r = 1;
    if (argchar(1, 0) == '-') { r = 0; }
    if (argchar(1, 1) == 'n') { r = r + 2; }
    putchar(tobyte('0' + r));
}
`
	plain := runWithMode(t, src, MergeNone)
	summ := runWithMode(t, src, MergeFunc)
	if summ.Stats.Merges != 0 {
		t.Fatalf("MergeFunc merged %d times with no call sites", summ.Stats.Merges)
	}
	if summ.Stats.PathsCompleted != plain.Stats.PathsCompleted {
		t.Fatalf("paths %d != plain %d", summ.Stats.PathsCompleted, plain.Stats.PathsCompleted)
	}
}

// TestFullVariantStricterThanPrototype: with a huge ζ, merging symbolic-
// differing values becomes expensive in the Equation (7) criterion, so the
// full variant must reject merges the prototype variant accepts.
func TestFullVariantStricterThanPrototype(t *testing.T) {
	src := `
void main() {
    int x = 0;
    if (argchar(1, 0) == 'x') {
        x = toint(argchar(1, 1)); // symbolic on this side
    }
    for (int i = 0; i < 3; i++) {
        if (x > i) { putchar('y'); }
    }
}
`
	mk := func(zeta float64) (*Engine, *State, *State) {
		cfg := Config{NArgs: 1, ArgLen: 2, Merge: MergeSSM, UseQCE: true}
		cfg.QCE = qce.Params{Alpha: 0.5, Beta: 0.8, Kappa: 10, Zeta: zeta}
		e := newTestEngine(t, src, cfg)
		s := e.initialState()
		succ := e.stepBlock(s)
		if len(succ) != 2 {
			t.Fatalf("got %d successors", len(succ))
		}
		a, b := succ[0], succ[1]
		for i := 0; i < 200 && !sameStack(a, b); i++ {
			if e.TopoLess(a, b) {
				a = e.stepBlock(a)[0]
			} else {
				b = e.stepBlock(b)[0]
			}
		}
		if !sameStack(a, b) {
			t.Fatal("states did not meet")
		}
		return e, a, b
	}
	e1, a1, b1 := mk(1) // prototype variant: x symbolic in one side => mergeable
	if !e1.similar(a1, b1) {
		t.Fatal("prototype variant rejected a merge Equation (1) allows")
	}
	e2, a2, b2 := mk(1e9) // full variant with prohibitive ite cost
	if e2.similar(a2, b2) {
		t.Fatal("full variant with huge ζ still merged ite-creating states")
	}
}
