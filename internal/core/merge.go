package core

import (
	"math/big"
	"time"

	"symmerge/internal/checkpoint/faultinject"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
)

// globalQt computes the interprocedural query-count estimate Qt_global for
// a state: the local Qt of every return location on the stack plus the
// current frame's Qt (paper §3.2). Zero when QCE is disabled.
func (e *Engine) globalQt(s *State) float64 {
	if e.qce == nil {
		return 0
	}
	total := 0.0
	for i, f := range s.Frames {
		fq := e.qce.PerFunc[f.Fn]
		if i < len(s.Frames)-1 {
			// Return location: the PC already points past the call.
			total += fq.QtAt(f.PC)
		} else if f.PC < len(fq.Qt) {
			total += fq.Qt[f.PC]
		}
	}
	return total
}

// hotLocals computes the hot-variable set for a frame (Equation 2):
// v is hot at ℓ iff Qadd(ℓ,v) > α·Qt_global. When QCE is disabled, no
// variable is hot and every same-location pair may merge.
func (e *Engine) hotLocals(s *State, depth int, out []int) []int {
	if e.qce == nil {
		return out[:0]
	}
	globalQt := e.globalQt(s)
	f := s.Frames[depth]
	fq := e.qce.PerFunc[f.Fn]
	pc := f.PC
	if pc >= len(fq.Qadd) {
		pc = len(fq.Qadd) - 1
	}
	return fq.HotSet(pc, globalQt, e.qce.Params.Alpha, out)
}

// simHash computes the state-similarity hash of §4.3: the call stack plus,
// for every hot variable, h(v) = ⋆ if symbolic else its concrete value.
// States with equal hashes are candidates for merging or fast-forwarding.
func (e *Engine) simHash(s *State) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(s.stackHash())
	for depth := range s.Frames {
		hot := e.hotLocals(s, depth, e.hotBuf)
		e.hotBuf = hot[:0]
		f := s.Frames[depth]
		fn := e.prog.Funcs[f.Fn]
		for _, v := range hot {
			val := f.Locals[v]
			if val.E != nil {
				mix(filterHash(val.E))
				// Hot pointers carry the heap cells addressed through
				// them into the similarity hash (paper §3.1).
				if fn.Locals[v].Type.Kind == ir.Ptr && val.E.IsConst() {
					if obj := s.heapObjByAddr(uint32(val.E.Val)); obj != nil {
						for _, c := range obj.Cells {
							mix(filterHash(c))
						}
					}
				}
				continue
			}
			obj := s.object(val.Ref, false)
			for _, c := range obj.Cells {
				mix(filterHash(c))
			}
		}
	}
	return h
}

// filterHash maps symbolic expressions to a single marker value (the paper's
// h(v) = ite(I◁v, ⋆, v)) and concrete expressions to their value.
func filterHash(v *expr.Expr) uint64 {
	if v.IsSymbolic() {
		return 0x5bd1e995 // ⋆
	}
	return v.Val*2 + uint64(v.Width) + 1
}

// similar implements the similarity relation ∼qce of Equation (1): every hot
// variable must be equal in both states or symbolic in at least one. When
// ζ > 1 the full cost model of §3.3 (Equation 7) is used instead, which
// additionally charges queries that gain ite expressions — the variant the
// paper describes but leaves out of its prototype.
func (e *Engine) similar(a, b *State) bool {
	if !sameStack(a, b) {
		return false
	}
	// Heap shapes must be positionally alignable for a cell-wise merge —
	// a state that allocated and one that did not never merge.
	if !sameHeapShape(a, b) {
		return false
	}
	if e.qce == nil {
		return true // merge-everything baseline
	}
	if e.qce.Params.Zeta > 1 {
		return e.similarFullVariant(a, b)
	}
	for depth := range a.Frames {
		hot := e.hotLocals(a, depth, e.hotBuf)
		e.hotBuf = hot[:0]
		fa, fb := a.Frames[depth], b.Frames[depth]
		fn := e.prog.Funcs[fa.Fn]
		for _, v := range hot {
			va, vb := fa.Locals[v], fb.Locals[v]
			if va.E != nil {
				if !mergeableScalar(va.E, vb.E) {
					return false
				}
				// A hot pointer stands for the heap cells addressed
				// through it (paper §3.1: queries reach the pointed-to
				// data): when both sides agree on a concrete address,
				// the object's cells must themselves be mergeable.
				if fn.Locals[v].Type.Kind == ir.Ptr && va.E.IsConst() && va.E == vb.E {
					oa := a.heapObjByAddr(uint32(va.E.Val))
					ob := b.heapObjByAddr(uint32(vb.E.Val))
					if oa != nil && ob != nil {
						for i := range oa.Cells {
							if !mergeableScalar(oa.Cells[i], ob.Cells[i]) {
								return false
							}
						}
					}
				}
				continue
			}
			oa := a.object(va.Ref, false)
			ob := b.object(vb.Ref, false)
			if len(oa.Cells) != len(ob.Cells) {
				return false
			}
			for i := range oa.Cells {
				if !mergeableScalar(oa.Cells[i], ob.Cells[i]) {
					return false
				}
			}
		}
	}
	return true
}

// mergeableScalar is the per-variable condition of Equation (1):
// s1[v] = s2[v] ∨ I◁s1[v] ∨ I◁s2[v].
func mergeableScalar(x, y *expr.Expr) bool {
	return x == y || x.IsSymbolic() || y.IsSymbolic()
}

// similarFullVariant implements Equation (7) of §3.3:
//
//	(ζ−1)·max{v: s1[v]≠ₛs2[v]} Qite(ℓ,v) + max{v: s1[v]≠ᶜs2[v]} Qadd(ℓ,v) < α·Qt
//
// where ≠ₛ marks differing values with a symbolic side (merging wraps them
// in new ite expressions) and ≠ᶜ differing concrete values (merging makes
// previously-concrete branches query the solver). The per-variable counts
// coincide (Qite(ℓ,v) = Qadd(ℓ,v), §3.3), so one table serves both terms.
func (e *Engine) similarFullVariant(a, b *State) bool {
	p := e.qce.Params
	globalQt := 0.0
	for _, f := range a.Frames {
		fq := e.qce.PerFunc[f.Fn]
		if pc := f.PC; pc < len(fq.Qt) {
			globalQt += fq.Qt[pc]
		}
	}
	maxIte, maxAdd := 0.0, 0.0
	scan := func(q float64, x, y *expr.Expr) {
		if x == y {
			return
		}
		if x.IsSymbolic() || y.IsSymbolic() {
			if q > maxIte {
				maxIte = q
			}
		} else if q > maxAdd {
			maxAdd = q
		}
	}
	for depth := range a.Frames {
		fa, fb := a.Frames[depth], b.Frames[depth]
		fq := e.qce.PerFunc[fa.Fn]
		pc := fa.PC
		if pc >= len(fq.Qadd) {
			pc = len(fq.Qadd) - 1
		}
		for v := range fa.Locals {
			q := fq.Qadd[pc][v]
			if q == 0 {
				continue
			}
			va, vb := fa.Locals[v], fb.Locals[v]
			if va.E != nil {
				scan(q, va.E, vb.E)
				if fq.Fn.Locals[v].Type.Kind == ir.Ptr && va.E.IsConst() && va.E == vb.E {
					oa := a.heapObjByAddr(uint32(va.E.Val))
					ob := b.heapObjByAddr(uint32(vb.E.Val))
					if oa != nil && ob != nil {
						for c := range oa.Cells {
							scan(q, oa.Cells[c], ob.Cells[c])
						}
					}
				}
				continue
			}
			oa := a.object(va.Ref, false)
			ob := b.object(vb.Ref, false)
			if len(oa.Cells) != len(ob.Cells) {
				return false
			}
			for c := range oa.Cells {
				scan(q, oa.Cells[c], ob.Cells[c])
			}
		}
	}
	return (p.Zeta-1)*maxIte+maxAdd < p.Alpha*globalQt
}

// rejectReason classifies a failed similarity check for the trace by
// re-running the gates of similar in order and naming the first one that
// refuses. Trace-only: it runs solely when a sink or metrics registry is
// attached, never on the plain exploration path.
func (e *Engine) rejectReason(a, b *State) string {
	switch {
	case !sameStack(a, b):
		return "stack"
	case !sameHeapShape(a, b):
		return "heap-shape"
	case e.qce != nil && e.qce.Params.Zeta > 1:
		return "cost-model" // Equation 7's aggregate term tipped the scale
	default:
		return "hot-var" // some hot variable differs concretely (Equation 1)
	}
}

// tryMerge looks for a worklist state at the same location similar to ns and
// merges them (Algorithm 1, lines 17–22). It reports whether ns was
// consumed by a merge.
func (e *Engine) tryMerge(ns *State) bool {
	key := ns.stackHash()
	for _, cand := range e.byStack[key] {
		e.stats.MergeAttempts++
		var gate0 time.Time
		if e.obs.Active() {
			loc := ns.Loc()
			e.obs.MergeAttempt(ns.ID, cand.ID, loc.Fn, loc.PC)
			gate0 = time.Now()
		}
		if !e.similar(ns, cand) {
			if e.obs.Active() {
				qt := e.globalQt(ns)
				var threshold float64
				if e.qce != nil {
					threshold = e.qce.Params.Threshold(qt)
				}
				e.obs.MergeReject(ns.ID, cand.ID, e.rejectReason(ns, cand), qt, threshold, time.Since(gate0))
			}
			continue
		}
		e.removeState(cand)
		// Crash-recovery hook: dying here leaves the widest in-memory
		// inconsistency the engine has — the candidate is already off the
		// worklist and the merged state does not exist yet.
		faultinject.Hit(faultinject.PointMerge)
		merged := e.merge(cand, ns)
		e.stats.Merges++
		if ns.ff {
			e.stats.FFMerged++
		}
		if e.obs.Active() {
			e.obs.MergeAccept(cand.ID, ns.ID, merged.ID, time.Since(gate0))
		}
		// The merged state may itself merge further (rare).
		if !e.tryMerge(merged) {
			e.addState(merged)
		}
		return true
	}
	return false
}

// merge combines two states at the same location into one precise state
// (Algorithm 1 line 20): pc' = pc1 ∨ pc2 with the common prefix factored
// out, and store values guarded by ite over the differing suffix.
func (e *Engine) merge(s1, s2 *State) *State {
	b := e.build

	// Factor the path conditions: the positionally common prefix is shared
	// structurally (same backing array, zero new nodes); each differing
	// suffix becomes ONE canonical n-ary conjunction; and the disjunction
	// of the suffixes factors any conjuncts they still share — the
	// or/factor rewrite rule — which catches prefixes that earlier merges
	// re-conjoined out of positional alignment.
	k := 0
	for k < len(s1.PC) && k < len(s2.PC) && s1.PC[k] == s2.PC[k] {
		k++
	}
	c1 := b.AndN(s1.PC[k:])
	c2 := b.AndN(s2.PC[k:])
	disj := b.Or(c1, c2)
	// A factored disjunction comes back as a conjunction
	// (shared ∧ residual-or): splice its conjuncts into the path condition
	// separately, so the session blasts each once and the independence
	// slicer can partition them.
	var added []*expr.Expr
	switch {
	case disj.IsTrue():
	case disj.Kind == expr.KAnd:
		added = disj.Kids
	default:
		added = []*expr.Expr{disj}
	}
	newPC := append(s1.PC[:k:k], added...) // full slice expr: append copies

	m := &State{
		ID:     e.nextID,
		Frames: make([]*Frame, len(s1.Frames)),
		PC:     newPC,
		Mult:   new(big.Int).Add(s1.Mult, s2.Mult),
		nSyms:  maxInt(s1.nSyms, s2.nSyms),
		// Sessions from one solver share their blasted prefix, so either
		// side's session serves the merged lineage.
		sess: s1.sess.Fork(),
	}
	e.nextID++
	for _, c := range added {
		m.sess.NoteConjunct(c)
	}

	// Merge outputs precisely: the common prefix stays as is; each side's
	// divergent suffix is guarded by that side's path-condition suffix,
	// so replaying a model reproduces exactly the bytes that path printed.
	n := len(s1.Output)
	if len(s2.Output) < n {
		n = len(s2.Output)
	}
	k2 := 0
	for k2 < n && s1.Output[k2] == s2.Output[k2] {
		k2++
	}
	out := make([]OutEntry, 0, len(s1.Output)+len(s2.Output)-k2)
	out = append(out, s1.Output[:k2]...)
	for _, en := range s1.Output[k2:] {
		out = append(out, guardOut(b, en, c1))
	}
	for _, en := range s2.Output[k2:] {
		out = append(out, guardOut(b, en, c2))
	}
	m.Output = out

	// Merge frames: scalars via ite, arrays cell-wise.
	for depth := range s1.Frames {
		f1, f2 := s1.Frames[depth], s2.Frames[depth]
		nf := &Frame{Fn: f1.Fn, PC: f1.PC, RetDst: f1.RetDst}
		nf.Locals = make([]Value, len(f1.Locals))
		nf.Objects = make([]*Object, len(f1.Objects))
		// Dead-slot slimming: a slot liveness proves dead at the resume pc
		// is never read before being redefined, so either side's value is
		// interchangeable — keep s1's and skip the ite selector. QCE hot
		// sets are already liveness-masked, so similarity scoring and merge
		// gating see identical inputs with or without the analysis; only
		// the unobservable dead contents differ.
		var lrow []bool
		if e.an != nil {
			if lv := e.an.Funcs[f1.Fn].Live; f1.PC < len(lv) {
				lrow = lv[f1.PC]
			}
		}
		for i := range f1.Locals {
			v1, v2 := f1.Locals[i], f2.Locals[i]
			if lrow != nil && i < len(lrow) && !lrow[i] {
				if v1.E != nil {
					nf.Locals[i] = v1
				} else {
					nf.Locals[i] = Value{Ref: v1.Ref}
					if o1 := f1.Objects[i]; o1 != nil {
						// Reuse s1's object; mark it shared so any
						// later write copies first (COW).
						o1.shared = true
						nf.Objects[i] = o1
					}
				}
				continue
			}
			if v1.E != nil {
				if v1.E == v2.E {
					nf.Locals[i] = v1
				} else {
					nf.Locals[i] = Value{E: b.Ite(c1, v1.E, v2.E)}
				}
				continue
			}
			// Array local: parameters keep their (identical by
			// sameStack) reference; owned objects merge cell-wise.
			nf.Locals[i] = Value{Ref: v1.Ref}
			o1 := f1.Objects[i]
			if o1 == nil {
				continue // parameter reference
			}
			o2 := f2.Objects[i]
			merged := make([]*expr.Expr, len(o1.Cells))
			for c := range o1.Cells {
				if o1.Cells[c] == o2.Cells[c] {
					merged[c] = o1.Cells[c]
				} else {
					merged[c] = b.Ite(c1, o1.Cells[c], o2.Cells[c])
				}
			}
			nf.Objects[i] = &Object{Cells: merged, Width: o1.Width}
		}
		m.Frames[depth] = nf
	}

	// Merge the heap segment cell-wise under the same guard, exactly like
	// frame-owned array objects. Allocation-site-canonical ids make the two
	// segments positionally identical (sameHeapShape gated the merge), and
	// the per-site counters agree for the same reason — no object is ever
	// freed, so equal shapes imply equal allocation histories.
	if s1.heap != nil {
		m.heap = make([]heapEntry, len(s1.heap))
		for i := range s1.heap {
			o1, o2 := s1.heap[i].obj, s2.heap[i].obj
			merged := make([]*expr.Expr, len(o1.Cells))
			for c := range o1.Cells {
				if o1.Cells[c] == o2.Cells[c] {
					merged[c] = o1.Cells[c]
				} else {
					merged[c] = b.Ite(c1, o1.Cells[c], o2.Cells[c])
				}
			}
			m.heap[i] = heapEntry{id: s1.heap[i].id, obj: &Object{Cells: merged, Width: o1.Width}}
		}
	}
	if s1.allocs != nil {
		m.allocs = make([]uint16, len(s1.allocs))
		copy(m.allocs, s1.allocs)
	}

	// DSM history: a merged state starts a fresh history (its past is
	// ambiguous); census lists concatenate.
	if s1.Shadow != nil || s2.Shadow != nil {
		m.Shadow = append(append([][]*expr.Expr{}, s1.Shadow...), s2.Shadow...)
	}
	return m
}

// guardOut strengthens an output entry's guard with cond.
func guardOut(b *expr.Builder, en OutEntry, cond *expr.Expr) OutEntry {
	if en.Guard == nil {
		return OutEntry{Guard: cond, Val: en.Val}
	}
	return OutEntry{Guard: b.And(en.Guard, cond), Val: en.Val}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
