// Package core implements the merging symbolic execution engine: the
// generic worklist exploration of the paper's Algorithm 1 with selectable
// state merging (none / static / dynamic), query count estimation as the
// similarity relation, state multiplicity accounting, and the shadow
// exact-path census used to validate multiplicity against true path counts
// (paper §5.2).
package core

import (
	"fmt"
	"math/big"

	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/solver"
)

// Object is a fixed-size array of scalar cells living in a stack frame.
// Objects are copy-on-write: forking marks them shared, and the first write
// afterwards clones.
type Object struct {
	Cells  []*expr.Expr
	Width  uint8 // element width in bits (8 or 32)
	shared bool
}

func (o *Object) clone() *Object {
	cells := make([]*expr.Expr, len(o.Cells))
	copy(cells, o.Cells)
	return &Object{Cells: cells, Width: o.Width}
}

// Value is the content of a local register: either a scalar expression or a
// reference to an array object. Array locals declared in the frame own their
// object (Ref.Depth == own depth); array parameters reference the declaring
// ancestor frame.
type Value struct {
	E   *expr.Expr // scalar value; nil for arrays
	Ref ObjRef     // array reference; valid when E == nil
}

// ObjRef names an array object by the frame that owns it and the local slot
// it occupies there.
type ObjRef struct {
	Depth int // frame index from the bottom of the stack
	Local int
}

// heapEntry pairs a heap object with its identity. The object field is the
// high half of every address into the object (ir.HeapObjField: objectID+1),
// which is allocation-site-canonical — two states forked from a common
// prefix give "the n-th allocation at site s" the same field value, so their
// heaps stay positionally alignable and mergeable.
type heapEntry struct {
	id  uint32 // ir.HeapObjField of every address into the object
	obj *Object
}

// OutEntry is one conditionally-emitted output byte.
type OutEntry struct {
	Guard *expr.Expr // nil = unconditional
	Val   *expr.Expr // 8-bit value
}

// Frame is one activation record.
type Frame struct {
	Fn     int
	PC     int
	RetDst int // caller register receiving the return value; -1 if none
	Locals []Value
	// Objects[i] is the array storage for array-typed local i owned by
	// this frame (nil for scalars and parameters).
	Objects []*Object
}

func (f *Frame) clone() *Frame {
	nf := &Frame{Fn: f.Fn, PC: f.PC, RetDst: f.RetDst}
	nf.Locals = make([]Value, len(f.Locals))
	copy(nf.Locals, f.Locals)
	nf.Objects = make([]*Object, len(f.Objects))
	copy(nf.Objects, f.Objects)
	return nf
}

// HaltKind describes why a state stopped.
type HaltKind uint8

// Halt kinds.
const (
	HaltNone   HaltKind = iota
	HaltExit            // program halted normally
	HaltError           // assertion failure or memory error
	HaltSilent          // infeasible path or resource pruning
)

// PathError describes an error found on a path.
type PathError struct {
	Loc  ir.Loc
	Pos  ir.Pos
	Msg  string
	Args [][]byte // concrete argv reproducing the error (excluding argv[0])
	// Assert marks a genuine assert failure (program semantics, concretely
	// replayable) as opposed to an engine-side analysis error like a bounds
	// violation or an exhausted solver budget.
	Assert bool
}

func (e *PathError) Error() string {
	return fmt.Sprintf("%s at %s (loc %s)", e.Msg, e.Pos, e.Loc)
}

// State is one symbolic execution state: the paper's (ℓ, pc, s) plus the
// bookkeeping that merging and DSM need.
type State struct {
	ID     uint64
	Frames []*Frame
	// PC is the path condition as a conjunct list. Forked children share
	// the prefix slices structurally, which merging exploits to factor
	// the common prefix out of the disjunction.
	PC []*expr.Expr

	// heap is the dynamically allocated memory segment: copy-on-write
	// objects sorted by id. allocs counts executed allocations per site
	// (indexed by ir.Instr.Site), which makes fresh addresses a function of
	// the path alone — independent of scheduling, worker count, and sibling
	// states.
	heap   []heapEntry
	allocs []uint16

	// Mult is the state multiplicity: 1 for a single-path state, the sum
	// of the merged states' multiplicities after a merge (paper §5.2).
	Mult *big.Int

	// Output is the byte stream written by putchar along this path as
	// guarded entries: an entry is emitted under a model iff its guard
	// holds (nil guard = always). Merging guards each side's divergent
	// suffix with that side's path-condition suffix, so merged outputs
	// stay fully precise.
	Output []OutEntry

	Halt     HaltKind
	ExitCode *expr.Expr
	Err      *PathError

	// nSyms numbers sym_* intrinsic inputs along this path.
	nSyms int

	// history is the DSM predecessor ring: similarity hashes at the last
	// δ basic-block boundaries (paper §4.3).
	history []uint64
	histPos int

	// Shadow is the exact-path census (nil unless enabled): the path
	// conditions of the unmerged single-path states this merged state
	// stands for.
	Shadow [][]*expr.Expr

	// curHash caches the similarity hash at the last block boundary; it
	// is maintained by the engine's DSM bookkeeping.
	curHash uint64

	// ff marks a state picked from the fast-forwarding set during the
	// current step, for the merge-success statistic of §5.5.
	ff bool

	// justRet marks that the last executed step popped a stack frame, so
	// the state now sits at a function-exit join point. MergeFunc merges
	// only such states.
	justRet bool

	// covTrail lists the locations this path executed, in order. Only
	// maintained inside a summary recording (the recorder turns it into
	// the entry's coverage set); nil during normal exploration.
	covTrail []ir.Loc

	// retNormal marks a recording state that finished by returning from
	// the bottom frame (KindReturn) rather than executing halt (KindHalt).
	// Only meaningful inside a summary recording.
	retNormal bool

	// sess is the state lineage's incremental solver session: the path
	// condition is blasted into it exactly once, and feasibility queries
	// reuse the encoding via assumptions. Forks share the blasted prefix.
	// Nil when sessions are disabled; queries then take the one-shot path.
	sess *solver.Session
}

func (s *State) top() *Frame { return s.Frames[len(s.Frames)-1] }

// Loc returns the state's current location.
func (s *State) Loc() ir.Loc {
	t := s.top()
	return ir.Loc{Fn: t.Fn, PC: t.PC}
}

// fork deep-copies control state and marks all objects shared (copy-on-write).
func (s *State) fork(newID uint64) *State {
	ns := &State{
		ID:      newID,
		Frames:  make([]*Frame, len(s.Frames)),
		PC:      s.PC[:len(s.PC):len(s.PC)],
		Mult:    new(big.Int).Set(s.Mult),
		Output:  s.Output[:len(s.Output):len(s.Output)],
		nSyms:   s.nSyms,
		histPos: s.histPos,
		ff:      s.ff,
		sess:    s.sess.Fork(),

		covTrail:  s.covTrail[:len(s.covTrail):len(s.covTrail)],
		retNormal: s.retNormal,
	}
	for i, f := range s.Frames {
		for _, o := range f.Objects {
			if o != nil {
				o.shared = true
			}
		}
		ns.Frames[i] = f.clone()
	}
	if s.heap != nil {
		ns.heap = make([]heapEntry, len(s.heap))
		copy(ns.heap, s.heap)
		for _, h := range s.heap {
			h.obj.shared = true
		}
	}
	if s.allocs != nil {
		ns.allocs = make([]uint16, len(s.allocs))
		copy(ns.allocs, s.allocs)
	}
	if s.history != nil {
		ns.history = make([]uint64, len(s.history))
		copy(ns.history, s.history)
	}
	if s.Shadow != nil {
		ns.Shadow = make([][]*expr.Expr, len(s.Shadow))
		for i, p := range s.Shadow {
			ns.Shadow[i] = p[:len(p):len(p)]
		}
	}
	return ns
}

// detach severs every mutable tie between the state and its originating
// engine so it can migrate to another worker:
//
//   - Array objects are cloned. Copy-on-write sharing with sibling states
//     is safe within one engine (one goroutine), but across workers even
//     the redundant `shared = true` store during a sibling's fork would
//     race with a reader; cloning leaves nothing mutable in common. The
//     path condition, output entries, and shadow census keep sharing their
//     slices — they are length-clamped and their contents (hash-consed
//     expressions from the shared builder) are immutable.
//   - The solver session is dropped: sessions wrap a worker-local SAT
//     instance. The receiving engine attaches a fresh one on Inject and
//     the path condition re-blasts there on demand.
func (s *State) detach() {
	for _, f := range s.Frames {
		for i, o := range f.Objects {
			if o != nil {
				f.Objects[i] = o.clone()
			}
		}
	}
	for i, h := range s.heap {
		s.heap[i].obj = h.obj.clone()
	}
	s.sess = nil
	s.ff = false
}

// resolveRef walks parameter references to the owning frame's object.
func (s *State) resolveRef(r ObjRef) ObjRef {
	for {
		f := s.Frames[r.Depth]
		if f.Objects[r.Local] != nil {
			return r
		}
		// The slot is a parameter holding a further reference.
		v := f.Locals[r.Local]
		if v.E != nil {
			panic("core: array reference resolves to scalar")
		}
		r = v.Ref
	}
}

// object returns the array object for a reference, cloning first if the
// object is shared and forWrite is set.
func (s *State) object(r ObjRef, forWrite bool) *Object {
	r = s.resolveRef(r)
	o := s.Frames[r.Depth].Objects[r.Local]
	if forWrite && o.shared {
		o = o.clone()
		s.Frames[r.Depth].Objects[r.Local] = o
	}
	return o
}

// findHeap returns the index of the heap entry with the given object field,
// or -1. The heap is sorted by id, so a binary search suffices.
func (s *State) findHeap(id uint32) int {
	lo, hi := 0, len(s.heap)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.heap[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.heap) && s.heap[lo].id == id {
		return lo
	}
	return -1
}

// insertHeap adds a fresh object, keeping the segment sorted by id.
func (s *State) insertHeap(id uint32, o *Object) {
	i := len(s.heap)
	for i > 0 && s.heap[i-1].id > id {
		i--
	}
	s.heap = append(s.heap, heapEntry{})
	copy(s.heap[i+1:], s.heap[i:])
	s.heap[i] = heapEntry{id: id, obj: o}
}

// heapObjectAt returns the object at heap index i, cloning first if it is
// shared and forWrite is set (the same copy-on-write discipline as frame
// objects).
func (s *State) heapObjectAt(i int, forWrite bool) *Object {
	o := s.heap[i].obj
	if forWrite && o.shared {
		o = o.clone()
		s.heap[i].obj = o
	}
	return o
}

// heapObjByAddr resolves a concrete address to its object, or nil.
func (s *State) heapObjByAddr(addr uint32) *Object {
	if i := s.findHeap(ir.HeapObjField(addr)); i >= 0 {
		return s.heap[i].obj
	}
	return nil
}

// sameHeapShape reports whether two states hold the same heap objects with
// the same sizes — the precondition for merging their heaps cell-wise.
func sameHeapShape(a, b *State) bool {
	if len(a.heap) != len(b.heap) {
		return false
	}
	for i := range a.heap {
		if a.heap[i].id != b.heap[i].id ||
			len(a.heap[i].obj.Cells) != len(b.heap[i].obj.Cells) {
			return false
		}
	}
	return true
}

// stackHash summarizes the control state two merge candidates must share
// exactly: the call stack (functions, PCs, return slots) plus the heap shape
// (object identities and sizes).
func (s *State) stackHash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, f := range s.Frames {
		h = (h ^ uint64(f.Fn)) * prime
		h = (h ^ uint64(f.PC)) * prime
		h = (h ^ uint64(f.RetDst+1)) * prime
	}
	for _, he := range s.heap {
		h = (h ^ uint64(he.id)) * prime
		h = (h ^ uint64(len(he.obj.Cells))) * prime
	}
	return h
}

// sameStack reports whether two states have identical call stacks.
func sameStack(a, b *State) bool {
	if len(a.Frames) != len(b.Frames) {
		return false
	}
	for i := range a.Frames {
		fa, fb := a.Frames[i], b.Frames[i]
		if fa.Fn != fb.Fn || fa.PC != fb.PC || fa.RetDst != fb.RetDst {
			return false
		}
	}
	return true
}

// pushHistory records the current similarity hash in the DSM ring.
func (s *State) pushHistory(h uint64, delta int) {
	if delta <= 0 {
		return
	}
	if len(s.history) < delta {
		s.history = append(s.history, h)
		return
	}
	s.history[s.histPos] = h
	s.histPos = (s.histPos + 1) % delta
}

// String renders a compact state description for debugging.
func (s *State) String() string {
	return fmt.Sprintf("state#%d@%s pc=%d conj mult=%s", s.ID, s.Loc(), len(s.PC), s.Mult)
}
