package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symmerge/internal/expr"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func fp(hi, lo uint64) expr.FP { return expr.FP{Hi: hi, Lo: lo} }

func TestCexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	model := []solver.StableAssign{{Name: "x", Width: 8, Val: 4}, {Name: "y", Width: 0, Val: 1}}
	s.InsertCex(fp(1, 2), true, model)
	s.InsertCex(fp(3, 4), false, nil)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Reopen: both verdicts and the full model must survive.
	s2 := openT(t, dir, Options{})
	sat, m, ok := s2.LookupCex(fp(1, 2))
	if !ok || !sat || len(m) != 2 || m[0].Name != "x" || m[0].Val != 4 || m[1].Name != "y" {
		t.Fatalf("sat entry did not round-trip: ok=%v sat=%v m=%v", ok, sat, m)
	}
	if sat, _, ok := s2.LookupCex(fp(3, 4)); !ok || sat {
		t.Fatalf("unsat entry did not round-trip: ok=%v sat=%v", ok, sat)
	}
	if _, _, ok := s2.LookupCex(fp(9, 9)); ok {
		t.Fatal("phantom entry")
	}
	if st := s2.Stats(); st.CexLoaded != 2 || st.CexEntries != 2 {
		t.Fatalf("stats after reload: %+v", st)
	}
}

// makeSummary builds a small but representative FuncSummary in b.
func makeSummary(b *expr.Builder) *summary.FuncSummary {
	p0 := b.Var("p!0_8", 8)
	env := b.Var("arg0_0", 8)
	guard := b.Ult(p0, b.Const(10, 8))
	return &summary.FuncSummary{
		Placeholders: []*expr.Expr{p0},
		Entries: []summary.Entry{
			{
				PC:     []*expr.Expr{guard, b.Eq(env, b.Const(65, 8))},
				Kind:   summary.KindReturn,
				Ret:    b.Add(p0, b.Const(1, 8)),
				Out:    []summary.OutEffect{{Guard: guard, Val: p0}, {Guard: nil, Val: env}},
				Writes: []summary.CellWrite{{Param: 1, Cell: 3, Val: b.Add(p0, env)}},
				Cov:    []summary.LocRef{{Ord: 0, PC: 2}, {Ord: 1, PC: 0}},
			},
			{
				Kind: summary.KindError,
				Err:  &summary.ErrInfo{Ord: 0, PC: 7, Msg: "division by zero", Assert: false},
				PC:   []*expr.Expr{b.Eq(p0, b.Const(0, 8))},
			},
		},
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})

	// Record a summary into a cache, harvest, flush.
	b1 := expr.NewBuilder()
	c1 := summary.NewCache()
	c1.Seed("sigA(code)", "0/0/0|s0,", makeSummary(b1))
	if n := s.HarvestSummaries(c1); n != 1 {
		t.Fatalf("harvested %d summaries, want 1", n)
	}
	if n := s.HarvestSummaries(c1); n != 0 {
		t.Fatalf("second harvest found %d new summaries, want 0", n)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	// Rehydrate into a fresh builder + cache in a "new process".
	s2 := openT(t, dir, Options{})
	b2 := expr.NewBuilder()
	// Shift builder IDs so pointer/ID reuse cannot mask decode bugs.
	for i := 0; i < 50; i++ {
		b2.Const(uint64(i), 32)
	}
	c2 := summary.NewCache()
	if n := s2.SeedSummaries(b2, c2); n != 1 {
		t.Fatalf("seeded %d summaries, want 1", n)
	}
	key := "1|0/0/0|s0," // first interned sig gets id 1
	got, _, ok := c2.Lookup(key)
	if !ok {
		t.Fatalf("seeded summary not found under %q", key)
	}
	if len(got.Placeholders) != 1 || got.Placeholders[0].Name != "p!0_8" {
		t.Fatalf("placeholders: %v", got.Placeholders)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries: %d", len(got.Entries))
	}
	e0 := got.Entries[0]
	if e0.Kind != summary.KindReturn || e0.Ret == nil || len(e0.PC) != 2 ||
		len(e0.Out) != 2 || e0.Out[1].Guard != nil || len(e0.Writes) != 1 || len(e0.Cov) != 2 {
		t.Fatalf("entry 0 shape: %+v", e0)
	}
	e1 := got.Entries[1]
	if e1.Kind != summary.KindError || e1.Err == nil || e1.Err.Msg != "division by zero" {
		t.Fatalf("entry 1 shape: %+v", e1)
	}
	// The decoded guard must be the canonical node in b2: instantiating
	// with a constant must fold.
	inst := got.Instantiate(b2, []*expr.Expr{b2.Const(3, 8)})
	if len(inst.Entries[1].PC) != 1 || !inst.Entries[1].PC[0].IsFalse() {
		t.Fatalf("instantiated error guard did not fold: %v", inst.Entries[1].PC)
	}
}

func TestSchemaRefusal(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.InsertCex(fp(1, 1), true, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the manifest under a bumped schema: Open must refuse, same
	// discipline as checkpoint resume.
	data, err := json.Marshal(manifest{Schema: "symmerge-store/v999"})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFileChecksummed(filepath.Join(dir, "MANIFEST.json"), data); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a store written under a different schema")
	} else if !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("refusal error does not explain itself: %v", err)
	}
}

func TestStaleTagRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Tag: "engine/v1"})
	s.InsertCex(fp(1, 1), true, nil)
	b := expr.NewBuilder()
	c := summary.NewCache()
	c.Seed("sig", "0/0/0|", makeSummary(b))
	s.HarvestSummaries(c)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// An "upgraded" engine (new canonical-form generation) must not reuse
	// entries fingerprinted under the old rules.
	s2 := openT(t, dir, Options{Tag: "engine/v2"})
	if _, _, ok := s2.LookupCex(fp(1, 1)); ok {
		t.Fatal("stale-tag verdict was silently reused")
	}
	st := s2.Stats()
	if st.StaleSegs == 0 {
		t.Fatalf("stale segment not counted: %+v", st)
	}
	if st.CexEntries != 0 || st.SumEntries != 0 {
		t.Fatalf("stale entries loaded: %+v", st)
	}

	// Same tag still loads.
	s3 := openT(t, dir, Options{Tag: "engine/v1"})
	if _, _, ok := s3.LookupCex(fp(1, 1)); !ok {
		t.Fatal("matching-tag verdict lost")
	}
}

func TestTornSegmentQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.InsertCex(fp(1, 1), true, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.InsertCex(fp(2, 2), false, nil)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Tear the second segment in half.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if _, _, ok := s2.LookupCex(fp(1, 1)); !ok {
		t.Fatal("intact segment lost alongside the torn one")
	}
	if _, _, ok := s2.LookupCex(fp(2, 2)); ok {
		t.Fatal("torn segment's entry resurrected")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine count: %+v", st)
	}
	if _, err := os.Stat(path + ".quarantine"); err != nil {
		t.Fatalf("torn segment not renamed aside: %v", err)
	}
	// A third open must not re-quarantine (the file is gone).
	if st := openT(t, dir, Options{}).Stats(); st.Quarantined != 0 {
		t.Fatalf("quarantine repeated: %+v", st)
	}
}

func TestCorruptChecksumQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.InsertCex(fp(7, 7), true, []solver.StableAssign{{Name: "x", Width: 8, Val: 1}})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // flip a payload byte; the digest no longer matches
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if _, _, ok := s2.LookupCex(fp(7, 7)); ok {
		t.Fatal("corrupt segment's entry reused")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine count: %+v", st)
	}
}

func TestCompactionBoundsSegments(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CompactAt: 3})
	for i := 0; i < 10; i++ {
		s.InsertCex(fp(uint64(i+1), 1), true, nil)
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 10 flushes with CompactAt=3: %+v", st)
	}
	if st.Segments > 3+1 {
		t.Fatalf("segment count unbounded: %+v", st)
	}
	// All entries survive compaction, across a reopen.
	s2 := openT(t, dir, Options{CompactAt: 3})
	for i := 0; i < 10; i++ {
		if _, _, ok := s2.LookupCex(fp(uint64(i+1), 1)); !ok {
			t.Fatalf("entry %d lost in compaction", i+1)
		}
	}
}

func TestCexEvictionBound(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxCexEntries: 100})
	for i := 0; i < 1000; i++ {
		s.InsertCex(fp(uint64(i+1), 2), i%2 == 0, nil)
	}
	st := s.Stats()
	if st.CexEntries > 100 {
		t.Fatalf("capacity bound not enforced: %d entries", st.CexEntries)
	}
	if st.Evicted == 0 {
		t.Fatal("no evictions counted")
	}
	// Newest entries survive.
	if _, _, ok := s.LookupCex(fp(1000, 2)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestFlushNothingIsNoop(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 0 || st.Flushes != 0 {
		t.Fatalf("empty flush wrote a segment: %+v", st)
	}
}

func TestBadSummaryDroppedAtSeed(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	// Hand-craft a segment with a structurally invalid summary (a KAdd
	// whose kids have mismatched widths) next to a valid one.
	b := expr.NewBuilder()
	c := summary.NewCache()
	c.Seed("good", "0/0/0|", makeSummary(b))
	s.HarvestSummaries(c)
	s.mu.Lock()
	s.sums["bad\x1fx"] = &sumRec{wire: wireSummary{
		Sig: "bad", Rest: "x",
		Exprs: []wireNode{
			{K: uint8(expr.KVar), W: 8, N: "a"},
			{K: uint8(expr.KVar), W: 16, N: "b"},
			{K: uint8(expr.KAdd), W: 8, Kids: []uint32{1, 2}},
		},
		Entries: []wireEntry{{Ret: 3}},
	}, dirty: true}
	s.mu.Unlock()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	b2 := expr.NewBuilder()
	c2 := summary.NewCache()
	if n := s2.SeedSummaries(b2, c2); n != 1 {
		t.Fatalf("seeded %d summaries, want 1 (the valid one)", n)
	}
	st := s2.Stats()
	if st.BadEntries != 1 || st.SumEntries != 1 {
		t.Fatalf("invalid summary not dropped: %+v", st)
	}
}
