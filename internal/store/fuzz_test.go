package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"symmerge/internal/expr"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

// seedSegmentBytes renders a well-formed segment file (payload + checksum)
// so the fuzzer starts from the interesting region of the input space.
func seedSegmentBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.(*testing.F).TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	s.InsertCex(expr.FP{Hi: 1, Lo: 2}, true,
		[]solver.StableAssign{{Name: "x", Width: 8, Val: 200}})
	b := expr.NewBuilder()
	c := summary.NewCache()
	c.Seed("sig(code)", "1/2/0|s0,", makeSummary(b))
	s.HarvestSummaries(c)
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzStoreRoundTrip drops arbitrary bytes in place of a segment file and
// opens the store: load must never panic, never error out of Open, and
// never let an invalid entry reach a summary cache or return an
// ill-formed verdict — corrupt input degrades to quarantine/skip counts.
func FuzzStoreRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not json at all\ndeadbeef\n"))
	f.Add([]byte(`{"schema":"symmerge-store/v1","tag":"engine/v1"}`)) // no checksum line
	seed := seedSegmentBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // torn
	f.Add(seed[:len(seed)-3]) // checksum truncated
	// Checksummed-but-hostile payloads: valid files whose JSON carries
	// out-of-range refs, zero fingerprints, junk kinds.
	for _, hostile := range []segment{
		{Schema: Schema, Tag: DefaultTag, Cex: []wireCex{{Hi: "0", Lo: "0", Sat: true}}},
		{Schema: Schema, Tag: DefaultTag, Cex: []wireCex{{Hi: "18446744073709551616", Lo: "1"}}},
		{Schema: Schema, Tag: DefaultTag, Cex: []wireCex{{Hi: "5", Lo: "6", Sat: true,
			Model: []solver.StableAssign{{Name: "", Width: 99, Val: 1}}}}},
		{Schema: Schema, Tag: DefaultTag, Sums: []wireSummary{{Sig: "s", Rest: "r",
			Exprs:   []wireNode{{K: 200}, {K: 3, Kids: []uint32{9}}},
			Entries: []wireEntry{{Ret: 77}}}}},
	} {
		payload, err := json.Marshal(hostile)
		if err != nil {
			f.Fatal(err)
		}
		dir := f.TempDir()
		path := filepath.Join(dir, "x")
		if err := writeFileChecksummed(path, payload); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open must degrade, not fail, on segment corruption: %v", err)
		}
		// Whatever loaded must be internally consistent: fingerprints
		// non-zero, models well-formed.
		s.mu.Lock()
		for fp, r := range s.cex {
			if fp.IsZero() {
				t.Error("zero fingerprint loaded")
			}
			for _, a := range r.model {
				if a.Name == "" || a.Width > 64 {
					t.Errorf("ill-formed model assignment loaded: %+v", a)
				}
			}
		}
		s.mu.Unlock()
		// Summaries must either seed cleanly or be dropped — never panic,
		// never seed a malformed entry.
		b := expr.NewBuilder()
		c := summary.NewCache()
		s.SeedSummaries(b, c)
		// The store must remain writable after swallowing garbage.
		s.InsertCex(expr.FP{Hi: 11, Lo: 12}, false, nil)
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush after corrupt load: %v", err)
		}
		if _, err := Open(dir, Options{}); err != nil {
			t.Fatalf("reopen after corrupt load: %v", err)
		}
	})
}
