package store

// Wire structs for the persistent store, mirroring the checkpoint
// conventions: expression DAGs travel as topologically ordered node tables
// (kids always precede parents, references are 1-based table indices with 0
// meaning nil), uint64s travel as decimal strings so non-Go tooling cannot
// lose precision, and every file is one JSON line followed by one line of
// hex SHA-256 over the JSON bytes.

import (
	"fmt"
	"strconv"

	"symmerge/internal/expr"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

// wireNode is one expression node (same field layout as the checkpoint
// schema's node table; defined locally so the store does not depend on the
// checkpoint package's engine-state types).
type wireNode struct {
	K    uint8    `json:"k"`
	W    uint8    `json:"w,omitempty"`
	A    uint16   `json:"a,omitempty"`
	V    string   `json:"v,omitempty"`
	N    string   `json:"n,omitempty"`
	Kids []uint32 `json:"c,omitempty"`
}

// wireCex is one persisted counterexample-cache verdict.
type wireCex struct {
	Hi    string                `json:"h"` // fingerprint halves, decimal
	Lo    string                `json:"l"`
	Sat   bool                  `json:"s,omitempty"`
	Model []solver.StableAssign `json:"m,omitempty"`
}

// wireSummary is one persisted function summary under its
// builder-independent key (signature text + key remainder).
type wireSummary struct {
	Sig          string      `json:"sig"`
	Rest         string      `json:"rest"`
	Exprs        []wireNode  `json:"x,omitempty"`
	Placeholders []uint32    `json:"ph,omitempty"`
	Entries      []wireEntry `json:"en"`
}

type wireEntry struct {
	PC     []uint32    `json:"pc,omitempty"`
	Kind   uint8       `json:"k,omitempty"`
	Ret    uint32      `json:"r,omitempty"`
	Err    *wireErr    `json:"e,omitempty"`
	Out    []wireOut   `json:"o,omitempty"`
	Writes []wireWrite `json:"w,omitempty"`
	Heap   []wireHeap  `json:"h,omitempty"`
	Cov    []wireLoc   `json:"c,omitempty"`
}

// wireHeap is one closure-allocated heap object (summary.HeapObj).
type wireHeap struct {
	S     int      `json:"s"`
	ID    uint32   `json:"i"`
	Cells []uint32 `json:"x"`
}

type wireErr struct {
	Ord    int    `json:"o"`
	PC     int    `json:"p"`
	Msg    string `json:"m"`
	Assert bool   `json:"a,omitempty"`
}

type wireOut struct {
	G uint32 `json:"g,omitempty"`
	V uint32 `json:"v"`
}

type wireWrite struct {
	P int    `json:"p"`
	C int    `json:"c"`
	V uint32 `json:"v"`
}

type wireLoc struct {
	O int `json:"o"`
	P int `json:"p"`
}

// segment is the content of one store segment file.
type segment struct {
	Schema string        `json:"schema"`
	Tag    string        `json:"tag"`
	Cex    []wireCex     `json:"cex,omitempty"`
	Sums   []wireSummary `json:"sums,omitempty"`
}

// --- expression encoding ---

// exprEnc builds one node table; ref() returns 1-based indices.
type exprEnc struct {
	idx   map[*expr.Expr]uint32
	nodes []wireNode
}

func newExprEnc() *exprEnc { return &exprEnc{idx: make(map[*expr.Expr]uint32)} }

// visit interns e's DAG into the table, kids first (iterative post-order:
// summary guards over merged placeholders can nest deeply).
func (enc *exprEnc) visit(e *expr.Expr) {
	if _, ok := enc.idx[e]; ok {
		return
	}
	type frame struct {
		e   *expr.Expr
		kid int
	}
	stack := []frame{{e: e}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if _, ok := enc.idx[fr.e]; ok {
			stack = stack[:len(stack)-1]
			continue
		}
		if fr.kid < len(fr.e.Kids) {
			k := fr.e.Kids[fr.kid]
			fr.kid++
			if _, ok := enc.idx[k]; !ok {
				stack = append(stack, frame{e: k})
			}
			continue
		}
		n := wireNode{K: uint8(fr.e.Kind), W: fr.e.Width, A: fr.e.Aux, N: fr.e.Name}
		if fr.e.Val != 0 {
			n.V = strconv.FormatUint(fr.e.Val, 10)
		}
		for _, k := range fr.e.Kids {
			n.Kids = append(n.Kids, enc.idx[k])
		}
		enc.nodes = append(enc.nodes, n)
		enc.idx[fr.e] = uint32(len(enc.nodes)) // 1-based
		stack = stack[:len(stack)-1]
	}
}

func (enc *exprEnc) ref(e *expr.Expr) uint32 {
	if e == nil {
		return 0
	}
	enc.visit(e)
	return enc.idx[e]
}

// encodeSummary renders one summary to wire form under its persistent key.
func encodeSummary(sig, rest string, s *summary.FuncSummary) wireSummary {
	enc := newExprEnc()
	w := wireSummary{Sig: sig, Rest: rest}
	for _, p := range s.Placeholders {
		w.Placeholders = append(w.Placeholders, enc.ref(p))
	}
	for i := range s.Entries {
		src := &s.Entries[i]
		we := wireEntry{Kind: uint8(src.Kind), Ret: enc.ref(src.Ret)}
		for _, c := range src.PC {
			we.PC = append(we.PC, enc.ref(c))
		}
		if src.Err != nil {
			we.Err = &wireErr{Ord: src.Err.Ord, PC: src.Err.PC, Msg: src.Err.Msg, Assert: src.Err.Assert}
		}
		for _, o := range src.Out {
			we.Out = append(we.Out, wireOut{G: enc.ref(o.Guard), V: enc.ref(o.Val)})
		}
		for _, cw := range src.Writes {
			we.Writes = append(we.Writes, wireWrite{P: cw.Param, C: cw.Cell, V: enc.ref(cw.Val)})
		}
		for _, h := range src.Heap {
			wh := wireHeap{S: h.Site, ID: h.ID}
			for _, c := range h.Cells {
				wh.Cells = append(wh.Cells, enc.ref(c))
			}
			we.Heap = append(we.Heap, wh)
		}
		for _, l := range src.Cov {
			we.Cov = append(we.Cov, wireLoc{O: l.Ord, P: l.PC})
		}
		w.Entries = append(w.Entries, we)
	}
	w.Exprs = enc.nodes
	return w
}

// --- expression decoding ---

// exprDec re-interns one wire node table through a builder.
type exprDec struct {
	nodes []*expr.Expr
}

// decodeTable validates and interns every node. Errors (unknown kinds,
// arity/sort violations, forward references) fail the whole summary — a
// corrupt entry is skipped by the caller, never partially applied.
func decodeTable(b *expr.Builder, table []wireNode) (*exprDec, error) {
	dec := &exprDec{nodes: make([]*expr.Expr, 0, len(table))}
	var kidBuf []*expr.Expr
	for i, n := range table {
		var val uint64
		if n.V != "" {
			var err error
			val, err = strconv.ParseUint(n.V, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("store: node %d: bad value %q", i, n.V)
			}
		}
		kidBuf = kidBuf[:0]
		for _, r := range n.Kids {
			if r == 0 || int(r) > i {
				return nil, fmt.Errorf("store: node %d: kid ref %d out of range", i, r)
			}
			kidBuf = append(kidBuf, dec.nodes[r-1])
		}
		e, err := b.Intern(expr.Kind(n.K), n.W, val, n.A, n.N, kidBuf)
		if err != nil {
			return nil, err
		}
		dec.nodes = append(dec.nodes, e)
	}
	return dec, nil
}

func (dec *exprDec) ref(r uint32) (*expr.Expr, error) {
	if r == 0 {
		return nil, nil
	}
	if int(r) > len(dec.nodes) {
		return nil, fmt.Errorf("store: expr ref %d out of range", r)
	}
	return dec.nodes[r-1], nil
}

// mustRef is ref for slots that may not be nil.
func (dec *exprDec) mustRef(r uint32) (*expr.Expr, error) {
	e, err := dec.ref(r)
	if err == nil && e == nil {
		return nil, fmt.Errorf("store: nil expr ref where one is required")
	}
	return e, err
}

// decodeSummary rebuilds a FuncSummary in the given builder. Any
// inconsistency fails the whole summary.
func decodeSummary(b *expr.Builder, w *wireSummary) (*summary.FuncSummary, error) {
	dec, err := decodeTable(b, w.Exprs)
	if err != nil {
		return nil, err
	}
	s := &summary.FuncSummary{}
	for _, r := range w.Placeholders {
		p, err := dec.mustRef(r)
		if err != nil {
			return nil, err
		}
		if p.Kind != expr.KVar {
			return nil, fmt.Errorf("store: placeholder is not a variable")
		}
		s.Placeholders = append(s.Placeholders, p)
	}
	for i := range w.Entries {
		we := &w.Entries[i]
		if we.Kind > uint8(summary.KindSilent) {
			return nil, fmt.Errorf("store: entry kind %d unknown", we.Kind)
		}
		e := summary.Entry{Kind: summary.EntryKind(we.Kind)}
		if e.Ret, err = dec.ref(we.Ret); err != nil {
			return nil, err
		}
		for _, r := range we.PC {
			c, err := dec.mustRef(r)
			if err != nil {
				return nil, err
			}
			if !c.IsBool() {
				return nil, fmt.Errorf("store: non-bool guard conjunct")
			}
			e.PC = append(e.PC, c)
		}
		if we.Err != nil {
			e.Err = &summary.ErrInfo{Ord: we.Err.Ord, PC: we.Err.PC, Msg: we.Err.Msg, Assert: we.Err.Assert}
		}
		for _, o := range we.Out {
			g, err := dec.ref(o.G)
			if err != nil {
				return nil, err
			}
			v, err := dec.mustRef(o.V)
			if err != nil {
				return nil, err
			}
			e.Out = append(e.Out, summary.OutEffect{Guard: g, Val: v})
		}
		for _, cw := range we.Writes {
			v, err := dec.mustRef(cw.V)
			if err != nil {
				return nil, err
			}
			e.Writes = append(e.Writes, summary.CellWrite{Param: cw.P, Cell: cw.C, Val: v})
		}
		for _, wh := range we.Heap {
			if wh.S < 0 || wh.ID == 0 {
				return nil, fmt.Errorf("store: heap object with invalid site %d / id %d", wh.S, wh.ID)
			}
			h := summary.HeapObj{Site: wh.S, ID: wh.ID, Cells: make([]*expr.Expr, 0, len(wh.Cells))}
			for _, r := range wh.Cells {
				c, err := dec.mustRef(r)
				if err != nil {
					return nil, err
				}
				h.Cells = append(h.Cells, c)
			}
			e.Heap = append(e.Heap, h)
		}
		for _, l := range we.Cov {
			e.Cov = append(e.Cov, summary.LocRef{Ord: l.O, PC: l.P})
		}
		s.Entries = append(s.Entries, e)
	}
	return s, nil
}

// decodeCex parses one persisted cex entry's fingerprint.
func decodeCex(w *wireCex) (expr.FP, error) {
	hi, err := strconv.ParseUint(w.Hi, 10, 64)
	if err != nil {
		return expr.FP{}, fmt.Errorf("store: bad cex fingerprint hi %q", w.Hi)
	}
	lo, err := strconv.ParseUint(w.Lo, 10, 64)
	if err != nil {
		return expr.FP{}, fmt.Errorf("store: bad cex fingerprint lo %q", w.Lo)
	}
	fp := expr.FP{Hi: hi, Lo: lo}
	if fp.IsZero() {
		return expr.FP{}, fmt.Errorf("store: zero cex fingerprint")
	}
	for _, a := range w.Model {
		if a.Name == "" || a.Width > 64 {
			return expr.FP{}, fmt.Errorf("store: bad model assignment %q/%d", a.Name, a.Width)
		}
	}
	return fp, nil
}
