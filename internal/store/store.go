// Package store is the cross-run persistence layer behind the symxd
// daemon: an on-disk, crash-safe store of solver verdicts (the
// counterexample cache, keyed by 128-bit stable expression fingerprints)
// and compositional function summaries (keyed by canonical closure
// signatures), so repeat and near-repeat programs skip most solver work in
// any later job, process, or machine that opens the same directory.
//
// The disk discipline mirrors internal/checkpoint: every file is one line
// of JSON followed by one line with the hex SHA-256 of the JSON bytes,
// written to a temp file in the same directory and renamed into place. A
// file is either entirely present or entirely absent; a torn or corrupted
// file fails its digest, is renamed aside with a .quarantine suffix, and
// the load continues — persistence is an accelerator, and a damaged store
// degrades to a cold one, never to wrong results or a crash.
//
// Layout: MANIFEST.json carries the schema; data lives in numbered segment
// files (seg-%08d.seg), each an append batch from one Flush. Open refuses a
// directory whose manifest declares a different schema (the same refusal
// discipline as checkpoint resume: a stale store must never be silently
// misread), and skips — counting them as stale — segments written under a
// different engine tag (the canonical-form generation: entries fingerprint
// expressions after the producer's rewrite rules, so a different rule
// generation means the keys no longer mean the same thing). Flush compacts
// when the segment count grows past a threshold, dropping stale, evicted,
// and duplicate entries, which keeps the directory bounded under sustained
// daemon traffic.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"symmerge/internal/expr"
	"symmerge/internal/solver"
	"symmerge/internal/summary"
)

// Schema is the store wire-format identifier. Bump on any incompatible
// change; Open refuses directories written under another schema.
const Schema = "symmerge-store/v1"

// DefaultTag is the current engine tag: the generation of the expression
// canonical form (rewrite rules + fingerprint definition). Segments written
// under a different tag are rejected on load. Bump when either changes
// meaning.
const DefaultTag = "engine/v1"

// Options configures a Store.
type Options struct {
	// Tag overrides DefaultTag (tests use this to simulate an engine
	// upgrade against an old store).
	Tag string
	// MaxCexEntries bounds the in-memory (and, after compaction, on-disk)
	// verdict count; 0 selects the default. When full, the oldest half is
	// dropped — same two-generation shape as the in-memory cache.
	MaxCexEntries int
	// CompactAt is the segment count that triggers compaction on Flush or
	// Open; 0 selects the default.
	CompactAt int
}

const (
	defaultMaxCex    = 1 << 20
	defaultCompactAt = 8
)

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	CexEntries  int    // live persisted verdicts
	SumEntries  int    // live persisted summaries
	Segments    int    // segment files on disk
	CexLoaded   int    // verdicts loaded by Open
	SumLoaded   int    // summaries loaded by Open
	Quarantined int    // files renamed aside (torn/corrupt/foreign schema)
	StaleSegs   int    // segments rejected for a mismatched engine tag
	BadEntries  int    // individual entries skipped by validation
	Evicted     int    // verdicts dropped by the capacity bound
	Flushes     uint64 // Flush calls that wrote a segment
	Compactions uint64
	LookupHits  uint64 // LookupCex hits (the daemon's warm counter feeds on this)
	Inserts     uint64
}

type cexRec struct {
	sat   bool
	model []solver.StableAssign
	seq   uint64 // insertion order, for oldest-half eviction
}

type sumRec struct {
	wire  wireSummary
	dirty bool
}

// Store is safe for concurrent use; LookupCex/InsertCex sit on the
// solver's miss path (after the in-memory ID cache), so a single mutex is
// plenty.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cex      map[expr.FP]*cexRec
	cexOrder []expr.FP // insertion order; may contain evicted strays
	dirtyCex []expr.FP
	sums     map[string]*sumRec // key: sig + "\x1f" + rest
	nextSeg  uint64
	seqNo    uint64
	stats    Stats
}

// Open opens (creating if needed) the store directory, loading every
// readable segment. A manifest declaring a different schema is a hard
// error; everything else degrades gracefully (quarantine / skip / count).
func Open(dir string, opts Options) (*Store, error) {
	if opts.Tag == "" {
		opts.Tag = DefaultTag
	}
	if opts.MaxCexEntries <= 0 {
		opts.MaxCexEntries = defaultMaxCex
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = defaultCompactAt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:  dir,
		opts: opts,
		cex:  make(map[expr.FP]*cexRec),
		sums: make(map[string]*sumRec),
	}
	if err := s.checkManifest(); err != nil {
		return nil, err
	}
	s.loadSegments()
	if s.stats.Segments > opts.CompactAt {
		s.mu.Lock()
		s.compactLocked()
		s.mu.Unlock()
	}
	return s, nil
}

// manifest is the content of MANIFEST.json.
type manifest struct {
	Schema string `json:"schema"`
}

func (s *Store) manifestPath() string { return filepath.Join(s.dir, "MANIFEST.json") }

func (s *Store) checkManifest() error {
	path := s.manifestPath()
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m manifest
		if payload, ok := verifyChecksum(data); ok && json.Unmarshal(payload, &m) == nil {
			if m.Schema != Schema {
				return fmt.Errorf("store: %s was written under schema %q, this binary speaks %q; refusing to reuse it",
					s.dir, m.Schema, Schema)
			}
			return nil
		}
		// Torn or corrupt manifest: quarantine and fall through to
		// recreate. Safety does not rest on the manifest — every segment
		// repeats the schema and tag.
		s.quarantine(path)
	case !os.IsNotExist(err):
		return err
	}
	data, err = json.Marshal(manifest{Schema: Schema})
	if err != nil {
		return err
	}
	return writeFileChecksummed(path, data)
}

// segName renders a segment file name.
func segName(n uint64) string { return fmt.Sprintf("seg-%08d.seg", n) }

// loadSegments reads every segment in numeric order. Later entries win on
// duplicate keys (a later flush may carry a fresher summary; cex verdicts
// are immutable facts, so either copy is fine).
func (s *Store) loadSegments() {
	names := s.listSegments()
	for _, n := range names {
		path := filepath.Join(s.dir, segName(n))
		if n >= s.nextSeg {
			s.nextSeg = n + 1
		}
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		payload, ok := verifyChecksum(data)
		if !ok {
			s.quarantine(path)
			continue
		}
		var seg segment
		if json.Unmarshal(payload, &seg) != nil || seg.Schema != Schema {
			s.quarantine(path)
			continue
		}
		if seg.Tag != s.opts.Tag {
			s.stats.StaleSegs++
			continue
		}
		for i := range seg.Cex {
			w := &seg.Cex[i]
			fp, err := decodeCex(w)
			if err != nil {
				s.stats.BadEntries++
				continue
			}
			s.addCexLocked(fp, w.Sat, w.Model, false)
			s.stats.CexLoaded++
		}
		for i := range seg.Sums {
			w := seg.Sums[i]
			if w.Sig == "" {
				s.stats.BadEntries++
				continue
			}
			// Structural validation (and builder interning) happens at
			// SeedSummaries time; here the wire form is retained as-is.
			s.sums[w.Sig+"\x1f"+w.Rest] = &sumRec{wire: w}
			s.stats.SumLoaded++
		}
		s.stats.Segments++
	}
}

func (s *Store) listSegments() []uint64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range ents {
		var n uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.seg", &n); err == nil &&
			e.Name() == segName(n) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quarantine renames a damaged file aside so it is never re-read (and a
// human can inspect it), counting it. Rename failures degrade to ignoring
// the file for this process.
func (s *Store) quarantine(path string) {
	_ = os.Rename(path, path+".quarantine")
	s.stats.Quarantined++
}

// addCexLocked records a verdict in memory (caller holds mu for the loaded
// path; Open runs single-goroutine so lock-free use there is fine too).
func (s *Store) addCexLocked(fp expr.FP, sat bool, model []solver.StableAssign, dirty bool) {
	if _, ok := s.cex[fp]; ok {
		return
	}
	s.seqNo++
	s.cex[fp] = &cexRec{sat: sat, model: model, seq: s.seqNo}
	s.cexOrder = append(s.cexOrder, fp)
	if dirty {
		s.dirtyCex = append(s.dirtyCex, fp)
	}
	if len(s.cex) > s.opts.MaxCexEntries {
		s.evictOldestLocked()
	}
}

// evictOldestLocked drops the oldest half of the verdicts (two-generation
// discipline, matching the in-memory cache). cexOrder is rebuilt from the
// survivors, which also sheds strays left by earlier evictions.
func (s *Store) evictOldestLocked() {
	drop := len(s.cex) / 2
	kept := s.cexOrder[:0]
	for _, fp := range s.cexOrder {
		if _, ok := s.cex[fp]; !ok {
			continue // stray from an earlier eviction
		}
		if drop > 0 {
			delete(s.cex, fp)
			drop--
			s.stats.Evicted++
			continue
		}
		kept = append(kept, fp)
	}
	s.cexOrder = kept
}

// --- solver.StableBackend ---

// LookupCex returns the persisted verdict for a query fingerprint. The
// returned model slice is the stored one; callers must not mutate it (the
// solver only reads it to materialize a Model).
func (s *Store) LookupCex(fp expr.FP) (bool, []solver.StableAssign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.cex[fp]
	if !ok {
		return false, nil, false
	}
	s.stats.LookupHits++
	return r.sat, r.model, true
}

// InsertCex persists a verdict (in memory until the next Flush).
func (s *Store) InsertCex(fp expr.FP, sat bool, model []solver.StableAssign) {
	if fp.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Inserts++
	s.addCexLocked(fp, sat, model, true)
}

// --- summaries ---

// SeedSummaries rehydrates every persisted summary into the given cache,
// interning expressions through b (the builder the cache's engines share).
// Summaries that fail structural validation are dropped from the store and
// counted; they cannot poison results because they never reach the cache.
// It returns the number of summaries seeded.
func (s *Store) SeedSummaries(b *expr.Builder, c *summary.Cache) int {
	s.mu.Lock()
	recs := make([]*sumRec, 0, len(s.sums))
	keys := make([]string, 0, len(s.sums))
	for k, r := range s.sums {
		recs = append(recs, r)
		keys = append(keys, k)
	}
	s.mu.Unlock()

	seeded := 0
	var bad []string
	for i, r := range recs {
		fs, err := decodeSummary(b, &r.wire)
		if err != nil {
			bad = append(bad, keys[i])
			continue
		}
		c.Seed(r.wire.Sig, r.wire.Rest, fs)
		seeded++
	}
	if len(bad) > 0 {
		s.mu.Lock()
		for _, k := range bad {
			delete(s.sums, k)
			s.stats.BadEntries++
		}
		s.mu.Unlock()
	}
	return seeded
}

// HarvestSummaries pulls every summary the cache recorded that the store
// does not yet hold, encoding them to wire form for the next Flush. It
// returns the number of new summaries captured.
func (s *Store) HarvestSummaries(c *summary.Cache) int {
	type pending struct {
		key  string
		wire wireSummary
	}
	var fresh []pending
	seen := func(key string) bool {
		s.mu.Lock()
		_, ok := s.sums[key]
		s.mu.Unlock()
		return ok
	}
	c.Export(func(sig, rest string, fs *summary.FuncSummary) {
		key := sig + "\x1f" + rest
		if seen(key) {
			return
		}
		fresh = append(fresh, pending{key: key, wire: encodeSummary(sig, rest, fs)})
	})
	if len(fresh) == 0 {
		return 0
	}
	s.mu.Lock()
	n := 0
	for _, p := range fresh {
		if _, ok := s.sums[p.key]; ok {
			continue
		}
		s.sums[p.key] = &sumRec{wire: p.wire, dirty: true}
		n++
	}
	s.mu.Unlock()
	return n
}

// --- flushing ---

// Flush writes every entry recorded since the last flush as one new
// segment, then compacts if the directory has grown past the threshold.
// Flushing nothing is a no-op.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	seg := segment{Schema: Schema, Tag: s.opts.Tag}
	for _, fp := range s.dirtyCex {
		r, ok := s.cex[fp]
		if !ok {
			continue // evicted before it was ever flushed
		}
		seg.Cex = append(seg.Cex, wireCex{
			Hi: strconv.FormatUint(fp.Hi, 10), Lo: strconv.FormatUint(fp.Lo, 10),
			Sat: r.sat, Model: r.model,
		})
	}
	dirtyKeys := make([]string, 0)
	for k, r := range s.sums {
		if r.dirty {
			dirtyKeys = append(dirtyKeys, k)
		}
	}
	sort.Strings(dirtyKeys) // deterministic segment bytes
	for _, k := range dirtyKeys {
		seg.Sums = append(seg.Sums, s.sums[k].wire)
	}

	if len(seg.Cex) == 0 && len(seg.Sums) == 0 {
		return nil
	}
	if err := s.writeSegmentLocked(&seg); err != nil {
		return err
	}
	s.dirtyCex = s.dirtyCex[:0]
	for _, k := range dirtyKeys {
		s.sums[k].dirty = false
	}
	s.stats.Flushes++
	if s.stats.Segments > s.opts.CompactAt {
		s.compactLocked()
	}
	return nil
}

// writeSegmentLocked writes one segment file with the checksum discipline.
func (s *Store) writeSegmentLocked(seg *segment) error {
	data, err := json.Marshal(seg)
	if err != nil {
		return err
	}
	path := filepath.Join(s.dir, segName(s.nextSeg))
	if err := writeFileChecksummed(path, data); err != nil {
		return err
	}
	s.nextSeg++
	s.stats.Segments++
	return nil
}

// compactLocked rewrites every live entry into one fresh segment and
// removes the older files. The new segment lands (temp+rename) before any
// old file is removed, so a crash mid-compaction leaves duplicates, never
// losses; duplicate entries dedup through the maps on the next Open.
func (s *Store) compactLocked() {
	seg := segment{Schema: Schema, Tag: s.opts.Tag}
	// Live verdicts in insertion order (deterministic, oldest first).
	order := make([]expr.FP, 0, len(s.cex))
	for _, fp := range s.cexOrder {
		if _, ok := s.cex[fp]; ok {
			order = append(order, fp)
		}
	}
	for _, fp := range order {
		r := s.cex[fp]
		seg.Cex = append(seg.Cex, wireCex{
			Hi: strconv.FormatUint(fp.Hi, 10), Lo: strconv.FormatUint(fp.Lo, 10),
			Sat: r.sat, Model: r.model,
		})
	}
	keys := make([]string, 0, len(s.sums))
	for k := range s.sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		seg.Sums = append(seg.Sums, s.sums[k].wire)
	}

	old := s.listSegments()
	if err := s.writeSegmentLocked(&seg); err != nil {
		return // keep the old segments; compaction retries next flush
	}
	for _, n := range old {
		if os.Remove(filepath.Join(s.dir, segName(n))) == nil {
			s.stats.Segments--
		}
	}
	s.dirtyCex = s.dirtyCex[:0]
	for _, k := range keys {
		s.sums[k].dirty = false
	}
	s.stats.Compactions++
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CexEntries = len(s.cex)
	st.SumEntries = len(s.sums)
	return st
}

// --- file discipline ---

// writeFileChecksummed writes payload + "\n" + hex sha256(payload) + "\n"
// via a temp file in the same directory and an atomic rename.
func writeFileChecksummed(path string, payload []byte) error {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(len(payload) + 2*sha256.Size + 2)
	buf.Write(payload)
	buf.WriteByte('\n')
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')

	tmp, err := os.CreateTemp(filepath.Dir(path), ".store-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(buf.Bytes())
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		if werr != nil {
			return werr
		}
		if serr != nil {
			return serr
		}
		return cerr
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// verifyChecksum splits a checksummed file into its payload, reporting
// whether the trailing digest matches.
func verifyChecksum(data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	payload := data[:nl]
	rest := bytes.TrimSpace(data[nl+1:])
	if len(rest) != 2*sha256.Size {
		return nil, false
	}
	want, err := hex.DecodeString(string(rest))
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	return payload, bytes.Equal(sum[:], want)
}
