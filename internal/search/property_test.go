package search

// Model-based property tests: each strategy is driven with random
// Add/Remove/Pick sequences and compared against a naive reference
// implementation — the pre-optimization eager-splice worklist for DFS/BFS
// and the linear-scan minimum for Topo. The deterministic strategies must
// agree with the reference on every Pick; the randomized ones must satisfy
// the membership contract. Run under -race in CI like the rest of the suite.

import (
	"math/rand"
	"testing"

	"symmerge/internal/core"
)

// refWorklist is the naive order-preserving reference: eager O(n) splice on
// Remove, scan-based Pick. Exactly the semantics the optimized strategies
// must preserve.
type refWorklist struct {
	items []*core.State
	ctx   core.StrategyContext
}

func (r *refWorklist) Add(st *core.State) { r.items = append(r.items, st) }

func (r *refWorklist) Remove(st *core.State) {
	for i, x := range r.items {
		if x == st {
			r.items = append(r.items[:i], r.items[i+1:]...)
			return
		}
	}
}

func (r *refWorklist) Len() int { return len(r.items) }

func (r *refWorklist) PickLIFO() *core.State {
	if len(r.items) == 0 {
		return nil
	}
	return r.items[len(r.items)-1]
}

func (r *refWorklist) PickFIFO() *core.State {
	if len(r.items) == 0 {
		return nil
	}
	return r.items[0]
}

func (r *refWorklist) PickTopo() *core.State {
	if len(r.items) == 0 {
		return nil
	}
	best := r.items[0]
	for _, st := range r.items[1:] {
		if r.ctx.TopoLess(st, best) {
			best = st
		}
	}
	return best
}

// TestRemovePreservesPickOrder is the regression test for the lazy-deletion
// rewrite: removing states from arbitrary positions (as DSM fast-forwarding
// and MaxStates pruning do) must leave the remaining LIFO/FIFO pick order
// intact — a swap-delete would pass the membership contract and still
// corrupt it.
func TestRemovePreservesPickOrder(t *testing.T) {
	states := make([]*core.State, 8)
	for i := range states {
		states[i] = mkState(uint64(i+1), i)
	}
	t.Run("dfs", func(t *testing.T) {
		s := mustNew(t, DFS, &fakeCtx{}, 0)
		for _, st := range states {
			s.Add(st)
		}
		// Remove from the middle and the live end.
		s.Remove(states[3])
		s.Remove(states[7])
		s.Remove(states[5])
		want := []uint64{7, 5, 3, 2, 1} // IDs newest-first, skipping removed
		for _, id := range want {
			got := s.Pick()
			if got == nil || got.ID != id {
				t.Fatalf("Pick = %v, want ID %d", got, id)
			}
			s.Remove(got)
		}
		if s.Pick() != nil {
			t.Fatal("drained worklist still picks")
		}
	})
	t.Run("bfs", func(t *testing.T) {
		s := mustNew(t, BFS, &fakeCtx{}, 0)
		for _, st := range states {
			s.Add(st)
		}
		s.Remove(states[0])
		s.Remove(states[4])
		s.Remove(states[6])
		want := []uint64{2, 3, 4, 6, 8} // IDs oldest-first, skipping removed
		for _, id := range want {
			got := s.Pick()
			if got == nil || got.ID != id {
				t.Fatalf("Pick = %v, want ID %d", got, id)
			}
			s.Remove(got)
		}
		if s.Pick() != nil {
			t.Fatal("drained worklist still picks")
		}
	})
}

// TestStrategyAgainstReference drives every strategy and the reference with
// the same random op sequence. DFS/BFS/Topo must pick exactly what the
// reference picks at every step; Random/Coverage must pick members.
func TestStrategyAgainstReference(t *testing.T) {
	ctx := &fakeCtx{}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(kind)) * 7919))
			s := mustNew(t, kind, ctx, 3)
			ref := &refWorklist{ctx: ctx}
			member := map[*core.State]bool{}
			var pool []*core.State
			nextID := uint64(1)
			refPick := func() *core.State {
				switch kind {
				case DFS:
					return ref.PickLIFO()
				case BFS:
					return ref.PickFIFO()
				case Topo:
					return ref.PickTopo()
				}
				return nil
			}
			for step := 0; step < 5000; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // add
					st := mkState(nextID, int(rng.Intn(23)))
					nextID++
					pool = append(pool, st)
					s.Add(st)
					ref.Add(st)
					member[st] = true
				case op < 7: // remove (members and non-members alike)
					if len(pool) == 0 {
						continue
					}
					st := pool[rng.Intn(len(pool))]
					s.Remove(st)
					ref.Remove(st)
					delete(member, st)
				default: // pick
					got := s.Pick()
					switch kind {
					case DFS, BFS, Topo:
						if want := refPick(); got != want {
							t.Fatalf("step %d: Pick = %v, reference picks %v", step, got, want)
						}
					default:
						if len(member) == 0 {
							if got != nil {
								t.Fatalf("step %d: Pick on empty returned %v", step, got)
							}
						} else if got == nil || !member[got] {
							t.Fatalf("step %d: Pick returned non-member %v", step, got)
						}
					}
				}
				if s.Len() != ref.Len() {
					t.Fatalf("step %d: Len = %d, reference %d", step, s.Len(), ref.Len())
				}
			}
		})
	}
}
