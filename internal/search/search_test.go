package search

import (
	"math/big"
	"math/rand"
	"testing"

	"symmerge/internal/core"
	"symmerge/internal/ir"
)

// fakeCtx implements core.StrategyContext with scripted answers.
type fakeCtx struct {
	covered map[ir.Loc]bool
}

func (f *fakeCtx) IsCovered(l ir.Loc) bool { return f.covered[l] }

func (f *fakeCtx) TopoLess(a, b *core.State) bool {
	la, lb := a.Loc(), b.Loc()
	if la.Fn != lb.Fn {
		return la.Fn < lb.Fn
	}
	if la.PC != lb.PC {
		return la.PC < lb.PC
	}
	return a.ID < b.ID
}

// mkState fabricates a minimal state at a location.
func mkState(id uint64, pc int) *core.State {
	return &core.State{
		ID:     id,
		Frames: []*core.Frame{{Fn: 0, PC: pc, RetDst: -1}},
		Mult:   big.NewInt(1),
	}
}

// mustNew builds a strategy for a known-valid kind.
func mustNew(t *testing.T, kind Kind, ctx core.StrategyContext, seed int64) core.Strategy {
	t.Helper()
	s, err := New(kind, ctx, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDFSOrder(t *testing.T) {
	s := mustNew(t, DFS, &fakeCtx{}, 0)
	a, b, c := mkState(1, 0), mkState(2, 1), mkState(3, 2)
	s.Add(a)
	s.Add(b)
	s.Add(c)
	if s.Pick() != c {
		t.Fatal("DFS must pick the newest state")
	}
	s.Remove(c)
	if s.Pick() != b {
		t.Fatal("DFS must pick the next newest")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestBFSOrder(t *testing.T) {
	s := mustNew(t, BFS, &fakeCtx{}, 0)
	a, b := mkState(1, 0), mkState(2, 1)
	s.Add(a)
	s.Add(b)
	if s.Pick() != a {
		t.Fatal("BFS must pick the oldest state")
	}
}

func TestPickDoesNotRemove(t *testing.T) {
	for _, kind := range []Kind{DFS, BFS, Random, Coverage, Topo} {
		s := mustNew(t, kind, &fakeCtx{covered: map[ir.Loc]bool{}}, 1)
		a := mkState(1, 0)
		s.Add(a)
		if s.Pick() == nil || s.Len() != 1 {
			t.Fatalf("%s: Pick consumed the state", kind)
		}
		if s.Pick() != a {
			t.Fatalf("%s: Pick unstable on singleton", kind)
		}
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) []uint64 {
		s := mustNew(t, Random, &fakeCtx{}, seed)
		for i := uint64(1); i <= 10; i++ {
			s.Add(mkState(i, int(i)))
		}
		var picks []uint64
		for s.Len() > 0 {
			p := s.Pick()
			picks = append(picks, p.ID)
			s.Remove(p)
		}
		return picks
	}
	p1, p2 := mk(42), mk(42)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different pick order")
		}
	}
	p3 := mk(43)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical order (suspicious)")
	}
}

func TestCoveragePrefersUncovered(t *testing.T) {
	ctx := &fakeCtx{covered: map[ir.Loc]bool{
		{Fn: 0, PC: 0}: true,
		{Fn: 0, PC: 1}: true,
	}}
	s := mustNew(t, Coverage, ctx, 7)
	covered1 := mkState(1, 0)
	covered2 := mkState(2, 1)
	fresh := mkState(3, 9) // uncovered location
	s.Add(covered1)
	s.Add(covered2)
	s.Add(fresh)
	for i := 0; i < 20; i++ {
		if s.Pick() != fresh {
			t.Fatal("coverage strategy ignored the uncovered state")
		}
	}
}

func TestTopoPicksEarliest(t *testing.T) {
	s := mustNew(t, Topo, &fakeCtx{}, 0)
	late := mkState(1, 9)
	early := mkState(2, 1)
	mid := mkState(3, 4)
	s.Add(late)
	s.Add(early)
	s.Add(mid)
	if s.Pick() != early {
		t.Fatal("topo strategy must pick the topologically earliest state")
	}
	s.Remove(early)
	if s.Pick() != mid {
		t.Fatal("topo strategy order wrong after removal")
	}
}

func TestRemoveAbsentIsNoop(t *testing.T) {
	for _, kind := range []Kind{DFS, BFS, Random, Coverage, Topo} {
		s := mustNew(t, kind, &fakeCtx{covered: map[ir.Loc]bool{}}, 1)
		a := mkState(1, 0)
		s.Remove(a) // must not panic
		s.Add(a)
		s.Remove(a)
		s.Remove(a)
		if s.Len() != 0 {
			t.Fatalf("%s: Len = %d after removals", kind, s.Len())
		}
		if s.Pick() != nil {
			t.Fatalf("%s: Pick on empty returned a state", kind)
		}
	}
}

// TestFuzzStrategyInvariants drives every strategy with a random Add /
// Remove / Pick sequence and checks the worklist-container contract the
// engine relies on: Len tracks membership, Pick returns a current member
// (never a removed state, never nil while non-empty), and removal of the
// picked state always succeeds.
func TestFuzzStrategyInvariants(t *testing.T) {
	for _, kind := range []Kind{DFS, BFS, Random, Coverage, Topo} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			s := mustNew(t, kind, &fakeCtx{covered: map[ir.Loc]bool{}}, 5)
			member := map[*core.State]bool{}
			var pool []*core.State
			nextID := uint64(1)
			for step := 0; step < 3000; step++ {
				switch rng.Intn(3) {
				case 0: // add a fresh state
					st := mkState(nextID, int(nextID%17))
					nextID++
					pool = append(pool, st)
					s.Add(st)
					member[st] = true
				case 1: // remove a random member (or a non-member: no-op)
					if len(pool) == 0 {
						continue
					}
					st := pool[rng.Intn(len(pool))]
					s.Remove(st)
					delete(member, st)
				default: // pick
					st := s.Pick()
					if len(member) == 0 {
						if st != nil {
							t.Fatalf("step %d: Pick returned %v from empty worklist", step, st)
						}
						continue
					}
					if st == nil {
						t.Fatalf("step %d: Pick returned nil with %d members", step, len(member))
					}
					if !member[st] {
						t.Fatalf("step %d: Pick returned removed state %d", step, st.ID)
					}
				}
				if s.Len() != len(member) {
					t.Fatalf("step %d: Len=%d, membership=%d", step, s.Len(), len(member))
				}
			}
		})
	}
}

func TestUnknownKindIsAnError(t *testing.T) {
	// A typo like "tope" must refuse to build, not silently explore DFS
	// while the corpus manifest records the misspelled name.
	for _, bogus := range []Kind{"bogus", "tope", "", "DFS"} {
		if s, err := New(bogus, &fakeCtx{}, 0); err == nil || s != nil {
			t.Fatalf("New(%q) = (%v, %v), want a nil strategy and an error", bogus, s, err)
		}
		if err := Validate(bogus); err == nil {
			t.Fatalf("Validate(%q) accepted an unknown kind", bogus)
		}
	}
	for _, kind := range Kinds() {
		if err := Validate(kind); err != nil {
			t.Fatalf("Validate(%q): %v", kind, err)
		}
	}
}
