// Package search provides the exploration strategies ("pickNext" in the
// paper's Algorithm 1) that drive the symbolic execution engine: DFS, BFS,
// seeded random search, a coverage-optimized heuristic in the spirit of
// KLEE's covnew, and the CFG-topological order used by static state merging.
//
// Dynamic state merging itself is not a strategy here: following Algorithm 2
// it is a layer inside the engine that overrides whatever driving strategy
// is configured whenever the fast-forwarding set is non-empty.
package search

import (
	"math/rand"

	"symmerge/internal/core"
)

// Kind names a strategy.
type Kind string

// Strategy kinds.
const (
	DFS      Kind = "dfs"
	BFS      Kind = "bfs"
	Random   Kind = "random"
	Coverage Kind = "coverage"
	Topo     Kind = "topo" // CFG topological order (for SSM)
)

// New builds a strategy. ctx is the engine (its StrategyContext view); seed
// feeds the deterministic RNG of the randomized strategies.
func New(kind Kind, ctx core.StrategyContext, seed int64) core.Strategy {
	switch kind {
	case DFS:
		return &stackStrategy{lifo: true}
	case BFS:
		return &stackStrategy{}
	case Random:
		return &randomStrategy{rng: rand.New(rand.NewSource(seed)), pos: map[*core.State]int{}}
	case Coverage:
		return &coverageStrategy{
			ctx: ctx,
			rng: rand.New(rand.NewSource(seed)),
			pos: map[*core.State]int{},
		}
	case Topo:
		return &topoStrategy{ctx: ctx, pos: map[*core.State]int{}}
	default:
		return &stackStrategy{lifo: true}
	}
}

// --- DFS / BFS ---

// stackStrategy explores newest-first (DFS) or oldest-first (BFS).
type stackStrategy struct {
	lifo  bool
	items []*core.State
}

func (s *stackStrategy) Add(st *core.State) { s.items = append(s.items, st) }

func (s *stackStrategy) Remove(st *core.State) {
	for i, x := range s.items {
		if x == st {
			s.items = append(s.items[:i], s.items[i+1:]...)
			return
		}
	}
}

func (s *stackStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	if s.lifo {
		return s.items[len(s.items)-1]
	}
	return s.items[0]
}

func (s *stackStrategy) Len() int { return len(s.items) }

// --- Random ---

// randomStrategy picks uniformly at random with a deterministic seed
// (KLEE's random-state search, used by the paper for complete explorations).
type randomStrategy struct {
	rng   *rand.Rand
	items []*core.State
	pos   map[*core.State]int
}

func (s *randomStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *randomStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, st)
}

func (s *randomStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	return s.items[s.rng.Intn(len(s.items))]
}

func (s *randomStrategy) Len() int { return len(s.items) }

// --- Coverage-optimized ---

// coverageStrategy prioritizes states whose next instruction is uncovered
// (KLEE's coverage-optimized search [6], simplified): uncovered-next states
// are picked first (round-robin among them); otherwise a uniformly random
// state, biasing exploration toward new code instead of deeper loop
// unrollings (paper §2.2, §5.5).
type coverageStrategy struct {
	ctx   core.StrategyContext
	rng   *rand.Rand
	items []*core.State
	pos   map[*core.State]int
}

func (s *coverageStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *coverageStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, st)
}

func (s *coverageStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	// Prefer a state sitting at uncovered code; sample a bounded number
	// of random probes so Pick stays O(1)-ish on huge worklists.
	probes := len(s.items)
	if probes > 64 {
		probes = 64
	}
	start := s.rng.Intn(len(s.items))
	for k := 0; k < probes; k++ {
		st := s.items[(start+k)%len(s.items)]
		if !s.ctx.IsCovered(st.Loc()) {
			return st
		}
	}
	return s.items[s.rng.Intn(len(s.items))]
}

func (s *coverageStrategy) Len() int { return len(s.items) }

// --- Topological (SSM) ---

// topoStrategy always picks the topologically earliest state, realizing the
// exploration order of static state merging: all predecessors of a join
// point execute before any state at the join point, maximizing merge
// opportunities (paper §2.2 "static state merging", §5.4).
type topoStrategy struct {
	ctx   core.StrategyContext
	items []*core.State
	pos   map[*core.State]int
}

func (s *topoStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *topoStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, st)
}

func (s *topoStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	best := s.items[0]
	for _, st := range s.items[1:] {
		if s.ctx.TopoLess(st, best) {
			best = st
		}
	}
	return best
}

func (s *topoStrategy) Len() int { return len(s.items) }
