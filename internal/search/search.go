// Package search provides the exploration strategies ("pickNext" in the
// paper's Algorithm 1) that drive the symbolic execution engine: DFS, BFS,
// seeded random search, a coverage-optimized heuristic in the spirit of
// KLEE's covnew, and the CFG-topological order used by static state merging.
//
// Dynamic state merging itself is not a strategy here: following Algorithm 2
// it is a layer inside the engine that overrides whatever driving strategy
// is configured whenever the fast-forwarding set is non-empty.
package search

import (
	"fmt"
	"math/rand"

	"symmerge/internal/core"
)

// Kind names a strategy.
type Kind string

// Strategy kinds.
const (
	DFS      Kind = "dfs"
	BFS      Kind = "bfs"
	Random   Kind = "random"
	Coverage Kind = "coverage"
	Topo     Kind = "topo" // CFG topological order (for SSM)
)

// Kinds lists every valid strategy kind.
func Kinds() []Kind { return []Kind{DFS, BFS, Random, Coverage, Topo} }

// Validate reports whether kind names a known strategy. The empty kind is
// invalid too: defaulting is the caller's decision (symx resolves it from
// the merge mode), not this package's.
func Validate(kind Kind) error {
	for _, k := range Kinds() {
		if kind == k {
			return nil
		}
	}
	return fmt.Errorf("search: unknown strategy %q (valid: dfs, bfs, random, coverage, topo)", kind)
}

// New builds a strategy. ctx is the engine (its StrategyContext view); seed
// feeds the deterministic RNG of the randomized strategies. An unknown kind
// is an error — a silent fallback would explore under a different strategy
// than the one the caller (and any corpus manifest recording the
// configuration) believes it asked for.
func New(kind Kind, ctx core.StrategyContext, seed int64) (core.Strategy, error) {
	switch kind {
	case DFS:
		return newStackStrategy(true), nil
	case BFS:
		return newStackStrategy(false), nil
	case Random:
		return &randomStrategy{rng: rand.New(rand.NewSource(seed)), pos: map[*core.State]int{}}, nil
	case Coverage:
		return &coverageStrategy{
			ctx: ctx,
			rng: rand.New(rand.NewSource(seed)),
			pos: map[*core.State]int{},
		}, nil
	case Topo:
		return &topoStrategy{ctx: ctx, pos: map[*core.State]int{}}, nil
	default:
		return nil, Validate(kind)
	}
}

// --- DFS / BFS ---

// stackStrategy explores newest-first (DFS) or oldest-first (BFS).
//
// Removal is order-preserving lazy deletion: the engine removes a state on
// every scheduler step (and DSM's fast-forwarding and MaxStates pruning
// remove states from arbitrary positions), so an eager O(n) splice — or a
// swap-delete, which would silently corrupt LIFO/FIFO order — made stepping
// quadratic on large worklists. Instead, an index map locates the slot, the
// slot becomes a tombstone (nil), and Pick skips and trims tombstones at the
// live end; a full order-preserving compaction runs when tombstones outnumber
// live states. Every operation is amortized O(1).
type stackStrategy struct {
	lifo  bool
	items []*core.State       // insertion order; nil slots are tombstones
	pos   map[*core.State]int // state -> index in items
	head  int                 // first slot that may be live (FIFO end)
	dead  int                 // tombstones in items[head:]
}

func newStackStrategy(lifo bool) *stackStrategy {
	return &stackStrategy{lifo: lifo, pos: map[*core.State]int{}}
}

func (s *stackStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *stackStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	delete(s.pos, st)
	s.items[i] = nil
	s.dead++
}

func (s *stackStrategy) Pick() *core.State {
	// Trim tombstones at the picking end so the scan below is amortized
	// O(1): every trimmed slot was tombstoned by exactly one Remove.
	if s.lifo {
		for n := len(s.items); n > s.head && s.items[n-1] == nil; n = len(s.items) {
			s.items = s.items[:n-1]
			s.dead--
		}
		if len(s.items) == s.head {
			return nil
		}
		s.compactIfStale()
		return s.items[len(s.items)-1]
	}
	for s.head < len(s.items) && s.items[s.head] == nil {
		s.head++
		s.dead--
	}
	if s.head == len(s.items) {
		return nil
	}
	s.compactIfStale()
	return s.items[s.head]
}

// compactIfStale rebuilds the slice in order once tombstones dominate,
// bounding memory at O(live) without disturbing LIFO/FIFO order.
func (s *stackStrategy) compactIfStale() {
	if s.dead <= len(s.pos) {
		return
	}
	live := s.items[:0]
	for _, st := range s.items[s.head:] {
		if st != nil {
			s.pos[st] = len(live)
			live = append(live, st)
		}
	}
	s.items = live
	s.head = 0
	s.dead = 0
}

func (s *stackStrategy) Len() int { return len(s.pos) }

// --- Random ---

// randomStrategy picks uniformly at random with a deterministic seed
// (KLEE's random-state search, used by the paper for complete explorations).
type randomStrategy struct {
	rng   *rand.Rand
	items []*core.State
	pos   map[*core.State]int
}

func (s *randomStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *randomStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, st)
}

func (s *randomStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	return s.items[s.rng.Intn(len(s.items))]
}

func (s *randomStrategy) Len() int { return len(s.items) }

// --- Coverage-optimized ---

// coverageStrategy prioritizes states whose next instruction is uncovered
// (KLEE's coverage-optimized search [6], simplified): uncovered-next states
// are picked first (round-robin among them); otherwise a uniformly random
// state, biasing exploration toward new code instead of deeper loop
// unrollings (paper §2.2, §5.5).
type coverageStrategy struct {
	ctx   core.StrategyContext
	rng   *rand.Rand
	items []*core.State
	pos   map[*core.State]int
}

func (s *coverageStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
}

func (s *coverageStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	delete(s.pos, st)
}

func (s *coverageStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	// Prefer a state sitting at uncovered code; sample a bounded number
	// of random probes so Pick stays O(1)-ish on huge worklists.
	probes := len(s.items)
	if probes > 64 {
		probes = 64
	}
	start := s.rng.Intn(len(s.items))
	for k := 0; k < probes; k++ {
		st := s.items[(start+k)%len(s.items)]
		if !s.ctx.IsCovered(st.Loc()) {
			return st
		}
	}
	return s.items[s.rng.Intn(len(s.items))]
}

func (s *coverageStrategy) Len() int { return len(s.items) }

// --- Topological (SSM) ---

// topoStrategy always picks the topologically earliest state, realizing the
// exploration order of static state merging: all predecessors of a join
// point execute before any state at the join point, maximizing merge
// opportunities (paper §2.2 "static state merging", §5.4).
//
// The worklist is a binary min-heap ordered by the engine's topological rank
// (core.StrategyContext.TopoLess, a total order — ties break on state ID), with
// an index map for O(log n) removal of arbitrary states. The previous
// linear-scan Pick made SSM exploration O(n²) in the worklist size; the heap
// picks the same state — the unique TopoLess-minimum — in O(1), so corpus
// digests and exploration orders are unchanged. States are immutable while
// queued (the engine removes a state before stepping it), so heap keys never
// rot.
type topoStrategy struct {
	ctx   core.StrategyContext
	items []*core.State       // binary min-heap under ctx.TopoLess
	pos   map[*core.State]int // state -> heap index
}

func (s *topoStrategy) less(i, j int) bool { return s.ctx.TopoLess(s.items[i], s.items[j]) }

func (s *topoStrategy) swap(i, j int) {
	s.items[i], s.items[j] = s.items[j], s.items[i]
	s.pos[s.items[i]] = i
	s.pos[s.items[j]] = j
}

func (s *topoStrategy) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *topoStrategy) down(i int) {
	n := len(s.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}

func (s *topoStrategy) Add(st *core.State) {
	s.pos[st] = len(s.items)
	s.items = append(s.items, st)
	s.up(len(s.items) - 1)
}

func (s *topoStrategy) Remove(st *core.State) {
	i, ok := s.pos[st]
	if !ok {
		return
	}
	last := len(s.items) - 1
	s.swap(i, last)
	s.items = s.items[:last]
	delete(s.pos, st)
	if i < last {
		s.down(i)
		s.up(i)
	}
}

func (s *topoStrategy) Pick() *core.State {
	if len(s.items) == 0 {
		return nil
	}
	return s.items[0]
}

func (s *topoStrategy) Len() int { return len(s.items) }
