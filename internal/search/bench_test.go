package search

// Benchmarks for the worklist-strategy bugfixes: the engine calls
// Strategy.Remove on every scheduler step and topo's Pick on every SSM step,
// so both must be (amortized) constant-or-logarithmic. The *Naive variants
// measure the pre-fix implementations (eager-splice Remove, linear-scan
// Pick) for the speedup comparison:
//
//	go test ./internal/search -bench 'StrategyRemove|TopoPick' -benchtime 2x
//
// At n=4096 the fixed DFS Remove+Pick and topo Pick are well over 10x the
// naive versions (the gap grows linearly with n).

import (
	"testing"

	"symmerge/internal/core"
)

const benchN = 4096

func benchStates(n int) []*core.State {
	states := make([]*core.State, n)
	for i := range states {
		states[i] = mkState(uint64(i+1), i%37)
	}
	return states
}

// stepLoop models the engine's per-step strategy traffic on a large
// worklist: pick the next state, remove it, add its successor back (reusing
// the state object so the measurement is the strategy's work, not
// allocation).
func stepLoop(b *testing.B, s core.Strategy, states []*core.State) {
	b.Helper()
	for _, st := range states {
		s.Add(st)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for step := 0; step < len(states); step++ {
			st := s.Pick()
			s.Remove(st)
			s.Add(st)
		}
	}
}

func BenchmarkStrategyRemoveDFS(b *testing.B) {
	s := newStackStrategy(true)
	stepLoop(b, s, benchStates(benchN))
}

func BenchmarkStrategyRemoveDFSNaive(b *testing.B) {
	s := &refWorklist{}
	stepLoop(b, naiveStack{s}, benchStates(benchN))
}

func BenchmarkTopoPick(b *testing.B) {
	s := &topoStrategy{ctx: &fakeCtx{}, pos: map[*core.State]int{}}
	stepLoop(b, s, benchStates(benchN))
}

func BenchmarkTopoPickNaive(b *testing.B) {
	s := &refWorklist{ctx: &fakeCtx{}}
	stepLoop(b, naiveTopo{s}, benchStates(benchN))
}

// naiveStack / naiveTopo adapt the reference worklist to core.Strategy.
type naiveStack struct{ *refWorklist }

func (s naiveStack) Pick() *core.State { return s.PickLIFO() }

type naiveTopo struct{ *refWorklist }

func (s naiveTopo) Pick() *core.State { return s.PickTopo() }
