// Package parallel is the multi-worker exploration subsystem: it shards the
// symbolic frontier across N goroutines, each running its own core.Engine
// over subtrees claimed from a shared, mutex-guarded frontier, with
// work-stealing when a worker's local worklist drains.
//
// What is shared and what is per-worker:
//
//   - Shared, race-clean: one expr.Builder (sharded-lock hash-consing, so
//     expression identity and builder-unique IDs are globally consistent),
//     one counterexample cache (sharded locks, atomic hit/miss counters),
//     one immutable QCE analysis, and the frontier itself.
//   - Per-worker: the engine, its solver (incremental sessions, the
//     recent-model ring, scratch buffers), its driving strategy, its DSM
//     bookkeeping, and its stats. Merging (SSM/DSM, Algorithm 2) therefore
//     stays worker-local per subtree: two states can only merge if the same
//     worker holds both, which keeps the paper's merge bookkeeping entirely
//     lock-free. Cross-worker sharding forgoes some merges — that changes
//     how many *states* complete, never how many *paths* they represent
//     (Σ multiplicity), nor coverage, nor the set of errors reachable.
//
// Exploration runs in two phases. A splitter engine runs the entry state
// single-threaded until the frontier is wide enough (or the program is
// done), then hands every live state to the frontier. Workers then claim
// states, explore the claimed subtree to exhaustion with their own engine,
// and claim again; a worker whose quantum ends while peers are starved
// donates its oldest states (the roots of its largest unexplored subtrees)
// back to the frontier. At join, per-worker stats are aggregated into one
// deterministic Result (fixed summation order: splitter, then workers by
// index).
package parallel

import (
	"context"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"symmerge/internal/core"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/qce"
	"symmerge/internal/solver"
)

// NewEngineFunc builds one exploration engine (with its driving strategy)
// for the given configuration. The symx layer supplies it; parallel calls
// it once for the splitter and once per worker, after injecting the shared
// builder, cache, and QCE analysis into the configuration.
type NewEngineFunc func(core.Config) *core.Engine

// Options tunes the pool.
type Options struct {
	// Workers is the number of exploration goroutines; values <= 1 run the
	// single-threaded path.
	Workers int
	// SplitFactor scales the initial sharding phase: the splitter runs
	// until the frontier holds SplitFactor*Workers states (default 4).
	SplitFactor int
	// StepQuantum is how many scheduler steps a worker runs between
	// frontier polls (default 128).
	StepQuantum int
}

func (o Options) splitTarget() int {
	f := o.SplitFactor
	if f <= 0 {
		f = 4
	}
	return f * o.Workers
}

func (o Options) quantum() int {
	if o.StepQuantum > 0 {
		return o.StepQuantum
	}
	return 128
}

// maxSplitSteps bounds the single-threaded sharding phase: a program whose
// frontier never widens (merging collapses it, or a long straight-line
// prefix) must not serialize the whole run. Past the cap, whatever frontier
// exists is handed off and workers balance via stealing.
const maxSplitSteps = 4096

// Explore shards the exploration of prog under cfg across opts.Workers
// goroutines and returns the aggregated result.
func Explore(prog *ir.Program, cfg core.Config, opts Options, newEngine NewEngineFunc) *core.Result {
	if opts.Workers <= 1 {
		return newEngine(cfg).Run()
	}
	start := time.Now()

	// Shared infrastructure. The builder must be common to all workers:
	// states migrate with their expressions, and the counterexample cache
	// keys on builder-unique expression IDs.
	if cfg.Builder == nil {
		cfg.Builder = expr.NewBuilder()
	}
	if cfg.SolverOpts.EnableCexCache && cfg.SolverOpts.SharedCache == nil {
		cfg.SolverOpts.SharedCache = solver.NewSharedCache()
	}
	if cfg.UseQCE && cfg.QCEAnalysis == nil {
		cfg.QCEAnalysis = qce.Analyze(prog, cfg.QCE)
	}
	baseCtx := cfg.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	pctx, cancel := context.WithCancel(baseCtx)
	defer cancel()
	cfg.Context = pctx

	// Phase 1: single-threaded split until the frontier is wide enough.
	split := newEngine(cfg)
	split.Begin(true)
	status := core.RunDrained
	for steps := 0; split.WorklistLen() > 0 && split.WorklistLen() < opts.splitTarget() && steps < maxSplitSteps; steps++ {
		status = split.StepN(1)
		if status != core.RunMore {
			break
		}
	}
	if status == core.RunDrained && split.WorklistLen() == 0 {
		// The program was exhausted (or every path pruned) before the
		// frontier ever widened: the splitter's run is the whole result.
		res := split.Finish(true)
		res.Stats.ElapsedSeconds = time.Since(start).Seconds()
		return res
	}
	if status == core.RunStopped {
		return split.Finish(false)
	}
	seeds := split.ExtractAll()
	splitRes := split.Finish(true)

	fr := newFrontier(opts.Workers)
	fr.put(seeds)

	// Phase 2: the worker fleet. Budgets are split across workers: each
	// gets an equal share of the remaining steps and the remaining wall
	// clock (workers start together, so their deadlines coincide).
	wcfg := cfg
	if cfg.MaxSteps > 0 {
		rem := uint64(0)
		if cfg.MaxSteps > splitRes.Stats.Steps {
			rem = cfg.MaxSteps - splitRes.Stats.Steps
		}
		wcfg.MaxSteps = max(rem/uint64(opts.Workers), 1)
	}
	if cfg.MaxStates > 0 {
		// Keep the configured bound a cap on *total* live states (it is a
		// memory budget): worklists are disjoint shards, so each worker
		// prunes past an equal share.
		wcfg.MaxStates = max(cfg.MaxStates/opts.Workers, 1)
	}
	if cfg.MaxTime > 0 {
		wcfg.MaxTime = max(cfg.MaxTime-time.Since(start), time.Millisecond)
	}

	engines := make([]*core.Engine, opts.Workers)
	results := make([]*core.Result, opts.Workers)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for i := range engines {
		engines[i] = newEngine(wcfg)
	}
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runWorker(engines[i], fr, &stopped, opts.quantum())
		}(i)
	}
	wg.Wait()

	masks := make([][]bool, 0, opts.Workers+1)
	masks = append(masks, split.CoverageMask())
	for _, e := range engines {
		masks = append(masks, e.CoverageMask())
	}
	all := append([]*core.Result{splitRes}, results...)
	res := aggregate(all, masks, !stopped.Load(), cfg)
	res.Stats.ElapsedSeconds = time.Since(start).Seconds()
	return res
}

// runWorker is one exploration goroutine: claim a subtree root from the
// frontier, run it to exhaustion in quanta, donate states to starved peers
// between quanta, repeat until the frontier closes.
func runWorker(eng *core.Engine, fr *frontier, stopped *atomic.Bool, quantum int) *core.Result {
	eng.Begin(false)
	for {
		s := fr.take()
		if s == nil {
			return eng.Finish(true)
		}
		eng.Inject(s)
	subtree:
		for {
			switch eng.StepN(quantum) {
			case core.RunDrained:
				break subtree
			case core.RunStopped:
				// This worker's budget share tripped (or the shared
				// context/deadline fired, which every peer observes on
				// its own within a step-poll). Retire locally instead
				// of cancelling the pool: peers keep spending their own
				// shares, so an imbalanced frontier cannot strand most
				// of the configured budget. The claimed states left in
				// this worklist are abandoned, exactly like a
				// budget-stop in a sequential run.
				stopped.Store(true)
				fr.leave()
				return eng.Finish(false)
			case core.RunMore:
				if n := fr.hungry(); n > 0 {
					fr.put(eng.ExtractStates(n))
				}
			}
		}
	}
}

// frontier is the shared, mutex-guarded work pool. take blocks until a
// state is available; when every worker is blocked simultaneously with the
// queue empty, no work can ever appear again and the frontier closes.
type frontier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*core.State
	waiting int
	workers int
	closed  bool

	// starved mirrors `waiting` atomically so donors can poll it between
	// step quanta without taking the lock.
	starved atomic.Int32
}

func newFrontier(workers int) *frontier {
	f := &frontier{workers: workers}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// put appends detached states and wakes starved workers.
func (f *frontier) put(ss []*core.State) {
	if len(ss) == 0 {
		return
	}
	f.mu.Lock()
	f.queue = append(f.queue, ss...)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// take returns the next claimable state, blocking while the queue is empty
// and some peer might still donate. It returns nil once the frontier is
// closed (global drain, budget stop, or cancellation).
func (f *frontier) take() *core.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil
		}
		if len(f.queue) > 0 {
			s := f.queue[0]
			f.queue[0] = nil // release the claimed state's backing slot
			f.queue = f.queue[1:]
			return s
		}
		f.waiting++
		f.starved.Add(1)
		if f.waiting == f.workers {
			// Everyone is starved with an empty queue: nobody is
			// running, so nobody can donate. Global drain.
			f.closed = true
			f.cond.Broadcast()
			return nil
		}
		f.cond.Wait()
		f.waiting--
		f.starved.Add(-1)
	}
}

// leave retires a worker that stopped on its own budget share: the drain
// detection must no longer count it, and if every remaining worker is
// already starved with an empty queue, the frontier closes now (the
// leaver was the only one who could still have donated).
func (f *frontier) leave() {
	f.mu.Lock()
	f.workers--
	if f.waiting >= f.workers && len(f.queue) == 0 {
		f.closed = true
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// close wakes every blocked worker and makes all future takes return nil.
func (f *frontier) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// hungry reports how many workers are currently blocked on an empty queue —
// the donation target for a running worker's next steal poll.
func (f *frontier) hungry() int { return int(f.starved.Load()) }

// aggregate folds the splitter's and every worker's result into one, in
// fixed order so the output is deterministic for a given set of per-worker
// results. Counters sum; coverage is the union of the per-engine bitmaps;
// MaxWorklist is the per-worker maximum (worklists are disjoint shards);
// solver time sums across workers, so it can exceed wall-clock — it is
// aggregate solver effort, as in the paper's query-time accounting.
func aggregate(all []*core.Result, masks [][]bool, completed bool, cfg core.Config) *core.Result {
	agg := &core.Result{Completed: completed, PortfolioWinner: -1}
	st := &agg.Stats
	st.PathsMult = big.NewInt(0)
	maxTests := cfg.MaxTests
	if maxTests == 0 {
		maxTests = 256
	}
	for _, r := range all {
		s := r.Stats
		st.Steps += s.Steps
		st.Instructions += s.Instructions
		st.Forks += s.Forks
		st.MergeAttempts += s.MergeAttempts
		st.Merges += s.Merges
		st.FFSelected += s.FFSelected
		st.FFMerged += s.FFMerged
		st.PathsCompleted += s.PathsCompleted
		if s.PathsMult != nil {
			st.PathsMult.Add(st.PathsMult, s.PathsMult)
		}
		st.ExactPaths += s.ExactPaths
		st.ErrorsFound += s.ErrorsFound
		st.Pruned += s.Pruned
		st.TestGenFailures += s.TestGenFailures
		if s.MaxWorklist > st.MaxWorklist {
			st.MaxWorklist = s.MaxWorklist
		}
		st.TotalInstrs = s.TotalInstrs

		st.Solver.Queries += s.Solver.Queries
		st.Solver.CacheHits += s.Solver.CacheHits
		st.Solver.ModelReuseHits += s.Solver.ModelReuseHits
		st.Solver.SATCalls += s.Solver.SATCalls
		st.Solver.SATTime += s.Solver.SATTime
		st.Solver.IndepSliced += s.Solver.IndepSliced
		st.Solver.Timeouts += s.Solver.Timeouts
		st.Solver.SessionQueries += s.Solver.SessionQueries
		st.Solver.SessionBlastReuse += s.Solver.SessionBlastReuse
		st.Solver.SessionBypass += s.Solver.SessionBypass
		st.Solver.SessionRebases += s.Solver.SessionRebases
		st.Solver.PreprocQueries += s.Solver.PreprocQueries
		st.Solver.PreprocNodesIn += s.Solver.PreprocNodesIn
		st.Solver.PreprocNodesOut += s.Solver.PreprocNodesOut
		st.Solver.SATVars += s.Solver.SATVars
		st.Solver.SATClauses += s.Solver.SATClauses

		// Rule hits are builder-global (workers share one builder): every
		// snapshot reports the same cumulative counters at slightly
		// different times, so keep the latest (largest) one, not the sum.
		if ruleTotal(s.Rules) > ruleTotal(st.Rules) {
			st.Rules = s.Rules
		}

		if len(agg.Tests) < maxTests {
			agg.Tests = append(agg.Tests, r.Tests...)
		}
		if len(agg.Errors) < maxTests {
			agg.Errors = append(agg.Errors, r.Errors...)
		}
		agg.Completed = agg.Completed && r.Completed
	}
	if len(agg.Tests) > maxTests {
		agg.Tests = agg.Tests[:maxTests]
	}
	if len(agg.Errors) > maxTests {
		agg.Errors = agg.Errors[:maxTests]
	}
	covered := 0
	if len(masks) > 0 {
		union := make([]bool, len(masks[0]))
		for _, m := range masks {
			for i, c := range m {
				if c && !union[i] {
					union[i] = true
					covered++
				}
			}
		}
		agg.CoverageMask = union
	}
	st.CoveredInstrs = covered
	return agg
}

// ruleTotal sums a rule-hit snapshot for the keep-the-latest comparison in
// aggregate (counters are monotone, so the largest total is the newest).
func ruleTotal(rs []expr.RuleHit) uint64 {
	var t uint64
	for _, r := range rs {
		t += r.Hits
	}
	return t
}
