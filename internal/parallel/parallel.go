// Package parallel is the multi-worker exploration subsystem: it shards the
// symbolic frontier across N goroutines, each running its own core.Engine
// over subtrees claimed from a shared, mutex-guarded frontier, with
// work-stealing when a worker's local worklist drains.
//
// What is shared and what is per-worker:
//
//   - Shared, race-clean: one expr.Builder (sharded-lock hash-consing, so
//     expression identity and builder-unique IDs are globally consistent),
//     one counterexample cache (sharded locks, atomic hit/miss counters),
//     one immutable QCE analysis, and the frontier itself.
//   - Per-worker: the engine, its solver (incremental sessions, the
//     recent-model ring, scratch buffers), its driving strategy, its DSM
//     bookkeeping, and its stats. Merging (SSM/DSM, Algorithm 2) therefore
//     stays worker-local per subtree: two states can only merge if the same
//     worker holds both, which keeps the paper's merge bookkeeping entirely
//     lock-free. Cross-worker sharding forgoes some merges — that changes
//     how many *states* complete, never how many *paths* they represent
//     (Σ multiplicity), nor coverage, nor the set of errors reachable.
//
// Exploration runs in two phases. A splitter engine runs the entry state
// single-threaded until the frontier is wide enough (or the program is
// done), then hands every live state to the frontier. Workers then claim
// states, explore the claimed subtree to exhaustion with their own engine,
// and claim again; a worker whose quantum ends while peers are starved
// donates its oldest states (the roots of its largest unexplored subtrees)
// back to the frontier. At join, per-worker stats are aggregated into one
// deterministic Result (fixed summation order: splitter, then workers by
// index).
package parallel

import (
	"context"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"symmerge/internal/checkpoint/faultinject"
	"symmerge/internal/core"
	"symmerge/internal/expr"
	"symmerge/internal/ir"
	"symmerge/internal/qce"
	"symmerge/internal/solver"
)

// NewEngineFunc builds one exploration engine (with its driving strategy)
// for the given configuration. The symx layer supplies it; parallel calls
// it once for the splitter and once per worker, after injecting the shared
// builder, cache, and QCE analysis into the configuration.
type NewEngineFunc func(core.Config) *core.Engine

// Options tunes the pool.
type Options struct {
	// Workers is the number of exploration goroutines; values <= 1 run the
	// single-threaded path.
	Workers int
	// SplitFactor scales the initial sharding phase: the splitter runs
	// until the frontier holds SplitFactor*Workers states (default 4).
	SplitFactor int
	// StepQuantum is how many scheduler steps a worker runs between
	// frontier polls (default 128).
	StepQuantum int
	// Seeds, when non-empty, replaces the splitter phase: the frontier is
	// primed with these detached states instead of sharding from the entry
	// state. The checkpoint driver uses it to hand a resumed (or previous
	// epoch's) frontier straight to the worker fleet.
	Seeds []*core.State
}

func (o Options) splitTarget() int {
	f := o.SplitFactor
	if f <= 0 {
		f = 4
	}
	return f * o.Workers
}

func (o Options) quantum() int {
	if o.StepQuantum > 0 {
		return o.StepQuantum
	}
	return 128
}

// maxSplitSteps bounds the single-threaded sharding phase: a program whose
// frontier never widens (merging collapses it, or a long straight-line
// prefix) must not serialize the whole run. Past the cap, whatever frontier
// exists is handed off and workers balance via stealing.
const maxSplitSteps = 4096

// Explore shards the exploration of prog under cfg across opts.Workers
// goroutines and returns the aggregated result.
func Explore(prog *ir.Program, cfg core.Config, opts Options, newEngine NewEngineFunc) *core.Result {
	res, _ := explore(prog, cfg, opts, newEngine, false)
	return res
}

// ExplorePreemptible is Explore for the checkpoint driver: when a budget or
// cancellation stops the run, the states every worker still held — plus any
// left unclaimed on the frontier — come back as detached leftovers instead
// of being abandoned, so the caller can snapshot them and hand them to the
// next epoch (or the next process) as Seeds. Leftovers is nil when the run
// completed.
func ExplorePreemptible(prog *ir.Program, cfg core.Config, opts Options, newEngine NewEngineFunc) (*core.Result, []*core.State) {
	return explore(prog, cfg, opts, newEngine, true)
}

func explore(prog *ir.Program, cfg core.Config, opts Options, newEngine NewEngineFunc, preempt bool) (*core.Result, []*core.State) {
	if opts.Workers <= 1 {
		return exploreSeq(cfg, opts, newEngine, preempt)
	}
	start := time.Now()

	// Shared infrastructure. The builder must be common to all workers:
	// states migrate with their expressions, and the counterexample cache
	// keys on builder-unique expression IDs.
	if cfg.Builder == nil {
		cfg.Builder = expr.NewBuilder()
	}
	if cfg.SolverOpts.EnableCexCache && cfg.SolverOpts.SharedCache == nil {
		cfg.SolverOpts.SharedCache = solver.NewSharedCache()
	}
	if cfg.UseQCE && cfg.QCEAnalysis == nil {
		cfg.QCEAnalysis = qce.Analyze(prog, cfg.QCE)
	}
	baseCtx := cfg.Context
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	pctx, cancel := context.WithCancel(baseCtx)
	defer cancel()
	cfg.Context = pctx

	// Phase 1: single-threaded split until the frontier is wide enough —
	// skipped entirely when the caller seeds the frontier with an already
	// sharded (resumed or previous-epoch) frontier.
	var splitRes *core.Result
	seeds := opts.Seeds
	if len(seeds) == 0 {
		split := newEngine(cfg)
		split.Begin(true)
		status := core.RunDrained
		for steps := 0; split.WorklistLen() > 0 && split.WorklistLen() < opts.splitTarget() && steps < maxSplitSteps; steps++ {
			status = split.StepN(1)
			if status != core.RunMore {
				break
			}
		}
		if status == core.RunDrained && split.WorklistLen() == 0 {
			// The program was exhausted (or every path pruned) before the
			// frontier ever widened: the splitter's run is the whole result.
			res := split.Finish(true)
			res.Stats.ElapsedSeconds = time.Since(start).Seconds()
			return res, nil
		}
		if status == core.RunStopped {
			res := split.Finish(false)
			var left []*core.State
			if preempt {
				left = split.ExtractAll()
			}
			return res, left
		}
		seeds = split.ExtractAll()
		splitRes = split.Finish(true)
	}

	fr := newFrontier(opts.Workers)
	fr.put(seeds)

	// Phase 2: the worker fleet. Budgets are split across workers: each
	// gets an equal share of the remaining steps and the remaining wall
	// clock (workers start together, so their deadlines coincide).
	wcfg := cfg
	if cfg.MaxSteps > 0 {
		rem := cfg.MaxSteps
		if splitRes != nil {
			rem = 0
			if cfg.MaxSteps > splitRes.Stats.Steps {
				rem = cfg.MaxSteps - splitRes.Stats.Steps
			}
		}
		wcfg.MaxSteps = max(rem/uint64(opts.Workers), 1)
	}
	if cfg.MaxStates > 0 {
		// Keep the configured bound a cap on *total* live states (it is a
		// memory budget): worklists are disjoint shards, so each worker
		// prunes past an equal share.
		wcfg.MaxStates = max(cfg.MaxStates/opts.Workers, 1)
	}
	if cfg.MaxTime > 0 {
		wcfg.MaxTime = max(cfg.MaxTime-time.Since(start), time.Millisecond)
	}

	engines := make([]*core.Engine, opts.Workers)
	results := make([]*core.Result, opts.Workers)
	leftovers := make([][]*core.State, opts.Workers)
	var killed atomic.Pointer[faultinject.Killed]
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for i := range engines {
		engines[i] = newEngine(wcfg)
	}
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// An injected kill panicking out of a worker goroutine would
			// abort the whole test process before the harness could
			// resume in-process: catch it, close the frontier so peers
			// wind down, and re-panic from the caller's goroutine below —
			// the harness recovers it there, exactly as if the process
			// had died with some workers mid-step.
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if k, ok := r.(faultinject.Killed); ok {
					killed.CompareAndSwap(nil, &k)
					stopped.Store(true)
					fr.close()
					return
				}
				panic(r)
			}()
			results[i], leftovers[i] = runWorker(engines[i], fr, &stopped, opts.quantum(), preempt)
		}(i)
	}
	wg.Wait()
	if k := killed.Load(); k != nil {
		panic(*k)
	}

	var left []*core.State
	if preempt && stopped.Load() {
		for _, l := range leftovers {
			left = append(left, l...)
		}
		// States still sitting unclaimed on the frontier are part of the
		// resumable picture too.
		left = append(left, fr.drain()...)
	}
	all := results
	if splitRes != nil {
		all = append([]*core.Result{splitRes}, results...)
	}
	res := Combine(all, !stopped.Load(), cfg)
	res.Stats.ElapsedSeconds = time.Since(start).Seconds()
	return res, left
}

// exploreSeq is the single-engine path: no frontier, no goroutines, but
// the same seeding and preemption contract as the worker fleet.
func exploreSeq(cfg core.Config, opts Options, newEngine NewEngineFunc, preempt bool) (*core.Result, []*core.State) {
	if !preempt && len(opts.Seeds) == 0 {
		return newEngine(cfg).Run(), nil
	}
	eng := newEngine(cfg)
	if len(opts.Seeds) > 0 {
		eng.Begin(false)
		for _, s := range opts.Seeds {
			eng.Inject(s)
		}
	} else {
		eng.Begin(true)
	}
	completed := true
loop:
	for {
		switch eng.StepN(opts.quantum()) {
		case core.RunDrained:
			break loop
		case core.RunStopped:
			completed = false
			break loop
		}
	}
	res := eng.Finish(completed)
	var left []*core.State
	if !completed && preempt {
		left = eng.ExtractAll()
	}
	return res, left
}

// runWorker is one exploration goroutine: claim a subtree root from the
// frontier, run it to exhaustion in quanta, donate states to starved peers
// between quanta, repeat until the frontier closes.
func runWorker(eng *core.Engine, fr *frontier, stopped *atomic.Bool, quantum int, preempt bool) (*core.Result, []*core.State) {
	eng.Begin(false)
	for {
		s := fr.take()
		if s == nil {
			return eng.Finish(true), nil
		}
		eng.Obs().Steal(1)
		eng.Inject(s)
	subtree:
		for {
			switch eng.StepN(quantum) {
			case core.RunDrained:
				break subtree
			case core.RunStopped:
				// This worker's budget share tripped (or the shared
				// context/deadline fired, which every peer observes on
				// its own within a step-poll). Retire locally instead
				// of cancelling the pool: peers keep spending their own
				// shares, so an imbalanced frontier cannot strand most
				// of the configured budget. The claimed states left in
				// this worklist are abandoned, exactly like a
				// budget-stop in a sequential run — unless the caller
				// asked for preemption, in which case they come back as
				// resumable leftovers.
				stopped.Store(true)
				res := eng.Finish(false)
				var left []*core.State
				if preempt {
					left = eng.ExtractAll()
				}
				fr.leave()
				return res, left
			case core.RunMore:
				if n := fr.hungry(); n > 0 {
					donated := eng.ExtractStates(n)
					eng.Obs().Donate(len(donated))
					fr.put(donated)
				}
			}
		}
	}
}

// frontier is the shared, mutex-guarded work pool. take blocks until a
// state is available; when every worker is blocked simultaneously with the
// queue empty, no work can ever appear again and the frontier closes.
type frontier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*core.State
	waiting int
	workers int
	closed  bool

	// starved mirrors `waiting` atomically so donors can poll it between
	// step quanta without taking the lock.
	starved atomic.Int32
}

func newFrontier(workers int) *frontier {
	f := &frontier{workers: workers}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// put appends detached states and wakes starved workers.
func (f *frontier) put(ss []*core.State) {
	if len(ss) == 0 {
		return
	}
	f.mu.Lock()
	f.queue = append(f.queue, ss...)
	f.mu.Unlock()
	f.cond.Broadcast()
}

// take returns the next claimable state, blocking while the queue is empty
// and some peer might still donate. It returns nil once the frontier is
// closed (global drain, budget stop, or cancellation).
func (f *frontier) take() *core.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.closed {
			return nil
		}
		if len(f.queue) > 0 {
			s := f.queue[0]
			f.queue[0] = nil // release the claimed state's backing slot
			f.queue = f.queue[1:]
			return s
		}
		f.waiting++
		f.starved.Add(1)
		if f.waiting == f.workers {
			// Everyone is starved with an empty queue: nobody is
			// running, so nobody can donate. Global drain.
			f.closed = true
			f.cond.Broadcast()
			return nil
		}
		f.cond.Wait()
		f.waiting--
		f.starved.Add(-1)
	}
}

// leave retires a worker that stopped on its own budget share: the drain
// detection must no longer count it, and if every remaining worker is
// already starved with an empty queue, the frontier closes now (the
// leaver was the only one who could still have donated).
func (f *frontier) leave() {
	f.mu.Lock()
	f.workers--
	if f.waiting >= f.workers && len(f.queue) == 0 {
		f.closed = true
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// close wakes every blocked worker and makes all future takes return nil.
func (f *frontier) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// drain removes and returns every unclaimed state. Called after the worker
// fleet has joined, when a preempted pool collects its resumable frontier.
func (f *frontier) drain() []*core.State {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.queue
	f.queue = nil
	return out
}

// hungry reports how many workers are currently blocked on an empty queue —
// the donation target for a running worker's next steal poll.
func (f *frontier) hungry() int { return int(f.starved.Load()) }

// Combine folds per-engine results into one, in fixed order so the output
// is deterministic for a given input sequence. Counters sum; coverage is
// the union of the per-result bitmaps; MaxWorklist is the per-worker
// maximum (worklists are disjoint shards); solver time sums across
// workers, so it can exceed wall-clock — it is aggregate solver effort, as
// in the paper's query-time accounting; Interrupted keeps the most
// specific cause (the maximum, per its ordering). Completed is taken from
// the caller, who knows whether the whole pool drained — a retired
// worker's own Completed=false is subsumed by that. Exported for the symx
// checkpoint driver, which folds a resumed run's engine totals onto the
// progress base restored from the snapshot; nil entries (a skipped
// worker) are ignored.
func Combine(all []*core.Result, completed bool, cfg core.Config) *core.Result {
	agg := &core.Result{Completed: completed, PortfolioWinner: -1}
	st := &agg.Stats
	st.PathsMult = big.NewInt(0)
	maxTests := cfg.MaxTests
	if maxTests == 0 {
		maxTests = 256
	}
	for _, r := range all {
		if r == nil {
			continue
		}
		s := r.Stats
		st.Steps += s.Steps
		st.Instructions += s.Instructions
		st.Forks += s.Forks
		st.MergeAttempts += s.MergeAttempts
		st.Merges += s.Merges
		st.FFSelected += s.FFSelected
		st.FFMerged += s.FFMerged
		st.PathsCompleted += s.PathsCompleted
		if s.PathsMult != nil {
			st.PathsMult.Add(st.PathsMult, s.PathsMult)
		}
		st.ExactPaths += s.ExactPaths
		st.ErrorsFound += s.ErrorsFound
		st.Pruned += s.Pruned
		st.PrunedStatic += s.PrunedStatic
		st.BoundsElided += s.BoundsElided
		st.SummaryHeapLifted += s.SummaryHeapLifted
		st.TestGenFailures += s.TestGenFailures
		st.SummaryHits += s.SummaryHits
		st.SummaryRejects += s.SummaryRejects
		st.SummaryRecords += s.SummaryRecords
		st.SummaryEntries += s.SummaryEntries
		st.SummarySteps += s.SummarySteps
		if s.MaxWorklist > st.MaxWorklist {
			st.MaxWorklist = s.MaxWorklist
		}
		if s.TotalInstrs != 0 {
			st.TotalInstrs = s.TotalInstrs
		}
		if r.Interrupted > agg.Interrupted {
			agg.Interrupted = r.Interrupted
		}

		st.Solver.Queries += s.Solver.Queries
		st.Solver.CacheHits += s.Solver.CacheHits
		st.Solver.ModelReuseHits += s.Solver.ModelReuseHits
		st.Solver.SATCalls += s.Solver.SATCalls
		st.Solver.SATTime += s.Solver.SATTime
		st.Solver.IndepSliced += s.Solver.IndepSliced
		st.Solver.Timeouts += s.Solver.Timeouts
		st.Solver.SessionQueries += s.Solver.SessionQueries
		st.Solver.SessionBlastReuse += s.Solver.SessionBlastReuse
		st.Solver.SessionBypass += s.Solver.SessionBypass
		st.Solver.SessionRebases += s.Solver.SessionRebases
		st.Solver.StableHits += s.Solver.StableHits
		st.Solver.StableGroupHits += s.Solver.StableGroupHits
		st.Solver.SummaryQueries += s.Solver.SummaryQueries
		st.Solver.PreprocQueries += s.Solver.PreprocQueries
		st.Solver.PreprocNodesIn += s.Solver.PreprocNodesIn
		st.Solver.PreprocNodesOut += s.Solver.PreprocNodesOut
		st.Solver.SATVars += s.Solver.SATVars
		st.Solver.SATClauses += s.Solver.SATClauses

		// Rule hits are builder-global. Engines sharing a builder omit them
		// from their snapshots (core.Engine.Finish) and the pool attributes
		// the builder's counters once below; this keep-the-latest fold only
		// handles results that do embed a snapshot (private-builder engines
		// combined by exported-API callers) — counters are monotone, so the
		// largest total is the newest, and summing would multiply shared
		// counters by the worker count.
		if ruleTotal(s.Rules) > ruleTotal(st.Rules) {
			st.Rules = s.Rules
		}

		if len(agg.Tests) < maxTests {
			agg.Tests = append(agg.Tests, r.Tests...)
		}
		if len(agg.Errors) < maxTests {
			agg.Errors = append(agg.Errors, r.Errors...)
		}
	}
	if len(agg.Tests) > maxTests {
		agg.Tests = agg.Tests[:maxTests]
	}
	if len(agg.Errors) > maxTests {
		agg.Errors = agg.Errors[:maxTests]
	}
	covered := 0
	var union []bool
	for _, r := range all {
		if r == nil || r.CoverageMask == nil {
			continue
		}
		if union == nil {
			union = make([]bool, len(r.CoverageMask))
		}
		for i, c := range r.CoverageMask {
			if c && !union[i] {
				union[i] = true
				covered++
			}
		}
	}
	agg.CoverageMask = union
	st.CoveredInstrs = covered
	if cfg.Builder != nil {
		// Shared-resource attribution, once at pool level: the rewrite-rule
		// counters of the shared builder belong to the pool as a whole.
		st.Rules = cfg.Builder.RuleHits()
	}
	return agg
}

// ruleTotal sums a rule-hit snapshot for the keep-the-latest comparison in
// aggregate (counters are monotone, so the largest total is the newest).
func ruleTotal(rs []expr.RuleHit) uint64 {
	var t uint64
	for _, r := range rs {
		t += r.Hits
	}
	return t
}
