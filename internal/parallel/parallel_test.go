package parallel_test

// Black-box tests for the parallel exploration subsystem, driven through
// the public symx API (this external test package may import symx even
// though symx imports parallel).
//
// The differential suite is the subsystem's core correctness claim:
// sharding the frontier across workers must not change *what* is explored,
// only *who* explores it. On exhaustive runs, paths-multiplicity (the
// number of execution paths the completed states stand for), coverage, and
// the set of distinct errors are sharding-invariant. The count of
// separately completed states is NOT invariant — merging is worker-local,
// so two states sharded to different workers complete separately where a
// single-threaded run would merge them — which is exactly why the suite
// compares multiplicity, not state counts.

import (
	"context"
	"fmt"
	"math/big"
	"testing"
	"time"

	"symmerge/internal/coreutils"
	"symmerge/symx"
)

// mode is one merging regime of the differential sweep.
type mode struct {
	name  string
	merge symx.MergeMode
	qce   bool
}

var modes = []mode{
	{"none", symx.MergeNone, false},
	{"ssm", symx.MergeSSM, false},
	{"ssm+qce", symx.MergeSSM, true},
	{"dsm", symx.MergeDSM, false},
	{"dsm+qce", symx.MergeDSM, true},
}

// outcome reduces a result to its sharding-invariant components.
type outcome struct {
	paths    *big.Int
	covered  int
	errorSet map[string]bool
}

func reduce(t *testing.T, res *symx.Result) outcome {
	t.Helper()
	if !res.Completed {
		t.Fatal("exploration did not complete; the differential invariants need exhaustive runs")
	}
	errs := map[string]bool{}
	for _, e := range res.Errors {
		errs[fmt.Sprintf("%v|%s", e.Loc, e.Msg)] = true
	}
	return outcome{
		paths:    new(big.Int).Set(res.Stats.PathsMult),
		covered:  res.Stats.CoveredInstrs,
		errorSet: errs,
	}
}

func sameOutcome(a, b outcome) string {
	if a.paths.Cmp(b.paths) != 0 {
		return fmt.Sprintf("paths-multiplicity %s vs %s", a.paths, b.paths)
	}
	if a.covered != b.covered {
		return fmt.Sprintf("coverage %d vs %d instructions", a.covered, b.covered)
	}
	if len(a.errorSet) != len(b.errorSet) {
		return fmt.Sprintf("error sets differ in size: %d vs %d", len(a.errorSet), len(b.errorSet))
	}
	for k := range a.errorSet {
		if !b.errorSet[k] {
			return fmt.Sprintf("error %q missing from the other run", k)
		}
	}
	return ""
}

// TestParallelDifferential asserts Workers:1 and Workers:8 agree on
// paths-multiplicity, coverage, and errors found for a sample of coreutils
// models under none/ssm/dsm × QCE on/off.
func TestParallelDifferential(t *testing.T) {
	t.Parallel()
	tools := []string{"echo", "basename", "cat", "expr"}
	for _, name := range tools {
		tool, err := coreutils.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := tool.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			t.Run(name+"/"+m.name, func(t *testing.T) {
				t.Parallel()
				base := tool.BaseConfig()
				base.Merge, base.UseQCE = m.merge, m.qce
				base.Seed = 1
				base.CheckBounds = true // give error paths a chance to exist

				base.Workers = 1
				seq := reduce(t, symx.Run(prog, base))
				base.Workers = 8
				par := reduce(t, symx.Run(prog, base))
				if diff := sameOutcome(seq, par); diff != "" {
					t.Fatalf("workers=1 vs workers=8 diverged: %s", diff)
				}
			})
		}
	}
}

// TestPreprocessDifferential asserts that the solver's preprocessing
// pipeline is invisible to the exploration: for merged-state regimes over
// coreutils models, preprocess on vs off — and each crossed with Workers 1
// vs 8 — produce bit-identical paths-multiplicity, coverage, and error
// sets. This is the guard on the refactor's hash-consing invariants:
// preprocessing rewrites queries *after* fingerprinting and sessions key
// on conjunct identity, so no pipeline configuration may change what gets
// explored.
func TestPreprocessDifferential(t *testing.T) {
	t.Parallel()
	tools := []string{"echo", "basename", "cat", "expr"}
	regimes := []mode{
		{"ssm+qce", symx.MergeSSM, true},
		{"dsm+qce", symx.MergeDSM, true},
	}
	for _, name := range tools {
		tool, err := coreutils.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := tool.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range regimes {
			t.Run(name+"/"+m.name, func(t *testing.T) {
				t.Parallel()
				base := tool.BaseConfig()
				base.Merge, base.UseQCE = m.merge, m.qce
				base.Seed = 1
				base.CheckBounds = true

				var ref *outcome
				for _, workers := range []int{1, 8} {
					for _, spec := range []string{"on", "off"} {
						cfg := base
						cfg.Workers = workers
						cfg.Preprocess = spec
						got := reduce(t, symx.Run(prog, cfg))
						if ref == nil {
							ref = &got
							continue
						}
						if diff := sameOutcome(*ref, got); diff != "" {
							t.Fatalf("workers=%d preprocess=%s diverged from baseline: %s",
								workers, spec, diff)
						}
					}
				}
			})
		}
	}
}

// TestParallelRepeatable runs the same sharded exploration twice: the
// invariant components must also be stable run-to-run (scheduling noise may
// reorder workers, never change the explored set).
func TestParallelRepeatable(t *testing.T) {
	t.Parallel()
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tool.BaseConfig()
	cfg.Merge, cfg.UseQCE = symx.MergeDSM, true
	cfg.Seed = 1
	cfg.Workers = 4
	a := reduce(t, symx.Run(prog, cfg))
	b := reduce(t, symx.Run(prog, cfg))
	if diff := sameOutcome(a, b); diff != "" {
		t.Fatalf("two identical sharded runs diverged: %s", diff)
	}
}

// TestParallelMaxStepsShares: MaxSteps is divided across workers as a
// total-work budget. With comfortable headroom the pool must still finish
// the exploration — a worker exhausting its own share retires without
// cancelling its peers, so an imbalanced frontier cannot strand the budget.
func TestParallelMaxStepsShares(t *testing.T) {
	t.Parallel()
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := tool.BaseConfig()
	cfg.Seed = 1
	seq := symx.Run(prog, cfg)
	if !seq.Completed {
		t.Fatal("sequential baseline did not complete")
	}

	cfg.MaxSteps = 8 * seq.Stats.Steps
	cfg.Workers = 4
	par := symx.Run(prog, cfg)
	if !par.Completed {
		t.Fatalf("parallel run with 8x step headroom stopped early (%d of %d steps used)",
			par.Stats.Steps, cfg.MaxSteps)
	}
	if par.Stats.PathsMult.Cmp(seq.Stats.PathsMult) != 0 {
		t.Fatalf("paths-multiplicity %s vs sequential %s", par.Stats.PathsMult, seq.Stats.PathsMult)
	}
}

// TestContextCancelSequential: a cancelled context stops a single-threaded
// exploration promptly with Completed=false.
func TestContextCancelSequential(t *testing.T) {
	t.Parallel()
	testContextCancel(t, 1)
}

// TestContextCancelParallel: cancellation reaches every worker of a pool.
func TestContextCancelParallel(t *testing.T) {
	t.Parallel()
	testContextCancel(t, 4)
}

func testContextCancel(t *testing.T, workers int) {
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must bail out almost immediately

	cfg := tool.BaseConfig()
	cfg.ArgLen = 8 // far too large to explore exhaustively here
	cfg.Workers = workers
	cfg.Context = ctx
	start := time.Now()
	res := symx.Run(prog, cfg)
	if res.Completed {
		t.Fatal("cancelled exploration reported Completed")
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("cancellation took %v; the context poll is not reaching the step loop", wall)
	}
}

// TestPortfolio races three regimes on one tool: the winner index must be
// valid, the result complete, and the losers' cancellation must keep the
// wall clock near the fastest arm rather than the sum of all arms.
func TestPortfolio(t *testing.T) {
	t.Parallel()
	tool, err := coreutils.Get("echo")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	small := tool.BaseConfig()
	small.Seed = 1
	huge := small
	huge.ArgLen = 8 // this arm would run for a very long time uncancelled

	res := symx.Run(prog, symx.Config{Portfolio: []symx.Config{huge, small, small}})
	if !res.Completed {
		t.Fatal("portfolio produced no completed result")
	}
	if res.PortfolioWinner != 1 && res.PortfolioWinner != 2 {
		t.Fatalf("winner = %d, want one of the small arms", res.PortfolioWinner)
	}
	if res.Stats.PathsMult.Sign() <= 0 {
		t.Fatal("winner carries no exploration result")
	}
}

// TestPortfolioWinnerIsolated: a non-portfolio run reports -1.
func TestPortfolioWinnerIsolated(t *testing.T) {
	t.Parallel()
	tool, err := coreutils.Get("true")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tool.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res := symx.Run(prog, tool.BaseConfig())
	if res.PortfolioWinner != -1 {
		t.Fatalf("PortfolioWinner = %d for a plain run, want -1", res.PortfolioWinner)
	}
}
