package parallel

import (
	"context"
	"math/big"
	"testing"
	"time"

	"symmerge/internal/core"
)

// fakeResult builds a minimal well-formed result for portfolio plumbing
// tests.
func fakeResult(completed bool, testGenFailures int, covered int) *core.Result {
	res := &core.Result{Completed: completed, PortfolioWinner: -1}
	res.Stats.PathsMult = big.NewInt(1)
	res.Stats.TestGenFailures = testGenFailures
	res.Stats.CoveredInstrs = covered
	res.Stats.TotalInstrs = 100
	return res
}

// TestPortfolioWinnerOnlyStats pins the winner-verbatim contract: a losing
// arm's counters — TestGenFailures in particular, which corpus emission
// turns into a hard error — must never bleed into the returned result. A
// regression here would make finishCorpus fail a clean winning run because
// a cancelled loser dropped test generations on its way out.
func TestPortfolioWinnerOnlyStats(t *testing.T) {
	runs := []func(context.Context) *core.Result{
		// The loser: never completes, and reports dropped test
		// generations plus better coverage than the winner.
		func(ctx context.Context) *core.Result {
			<-ctx.Done() // cancelled when the other arm completes
			return fakeResult(false, 7, 90)
		},
		func(context.Context) *core.Result {
			return fakeResult(true, 0, 50)
		},
	}
	idx, res := Portfolio(context.Background(), runs)
	if idx != 1 {
		t.Fatalf("winner = %d, want 1 (the completed arm)", idx)
	}
	if !res.Completed {
		t.Fatal("winner's result lost its Completed flag")
	}
	if res.Stats.TestGenFailures != 0 {
		t.Fatalf("TestGenFailures = %d leaked from the losing arm, want 0", res.Stats.TestGenFailures)
	}
	if res.Stats.CoveredInstrs != 50 {
		t.Fatalf("CoveredInstrs = %d, want the winner's 50", res.Stats.CoveredInstrs)
	}
}

// TestPortfolioNoWinnerPicksBestCoverage covers the all-budgeted fallback:
// with no completed arm, best coverage wins and its counters come back
// verbatim too.
func TestPortfolioNoWinnerPicksBestCoverage(t *testing.T) {
	runs := []func(context.Context) *core.Result{
		func(context.Context) *core.Result { return fakeResult(false, 3, 40) },
		func(context.Context) *core.Result {
			time.Sleep(10 * time.Millisecond) // finish last; index must not matter
			return fakeResult(false, 0, 80)
		},
	}
	idx, res := Portfolio(context.Background(), runs)
	if idx != 1 {
		t.Fatalf("winner = %d, want 1 (best coverage)", idx)
	}
	if res.Stats.TestGenFailures != 0 || res.Stats.CoveredInstrs != 80 {
		t.Fatalf("result is not the best-coverage arm's verbatim: failures=%d covered=%d",
			res.Stats.TestGenFailures, res.Stats.CoveredInstrs)
	}
}
