package parallel

// Portfolio mode: race several complete exploration configurations and keep
// the first to finish. Merging regimes trade off differently per program
// (the paper's central observation); racing none/SSM/DSM concurrently buys
// the best regime's wall-clock without knowing it in advance.

import (
	"context"

	"symmerge/internal/core"
)

// Portfolio runs every entry concurrently, each under a context that is
// cancelled as soon as one entry finishes its exploration completely
// (Result.Completed). The winner is the first completed entry; if no entry
// completes (every arm hit its budget), the entry with the best coverage
// wins, ties broken by lowest index. It returns the winning entry's index
// and result; losers stop promptly via cancellation and are discarded.
//
// The returned result is the winner's verbatim: statistics, test cases and
// counters (TestGenFailures included) describe the winning configuration's
// run alone, never an aggregate over the losing arms — each arm runs its
// own engines over its own builder, so there is no cross-entry state to
// leak. TestPortfolioWinnerOnlyStats pins this.
func Portfolio(ctx context.Context, runs []func(context.Context) *core.Result) (int, *core.Result) {
	if len(runs) == 0 {
		return -1, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res *core.Result
	}
	ch := make(chan outcome, len(runs))
	for i, run := range runs {
		go func(i int, run func(context.Context) *core.Result) {
			ch <- outcome{i, run(pctx)}
		}(i, run)
	}

	winnerIdx, results := -1, make([]*core.Result, len(runs))
	for n := 0; n < len(runs); n++ {
		o := <-ch
		results[o.idx] = o.res
		if o.res != nil && o.res.Completed && winnerIdx == -1 {
			winnerIdx = o.idx
			cancel() // losers stop at their next context poll
		}
	}
	if winnerIdx >= 0 {
		return winnerIdx, results[winnerIdx]
	}
	// No arm completed: best coverage, lowest index on ties.
	for i, r := range results {
		if r == nil {
			continue
		}
		if winnerIdx == -1 || r.Stats.Coverage() > results[winnerIdx].Stats.Coverage() {
			winnerIdx = i
		}
	}
	if winnerIdx == -1 {
		return -1, nil
	}
	return winnerIdx, results[winnerIdx]
}
