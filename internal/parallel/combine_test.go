package parallel

// White-box regression test for Combine's shared-counter attribution: rule
// hits live on the expression builder, so a pool whose workers share one
// builder must report the builder's counters exactly once — not once per
// worker, and not whatever stale snapshot a worker embedded.

import (
	"reflect"
	"testing"

	"symmerge/internal/core"
	"symmerge/internal/expr"
)

func TestCombineRulesSharedBuilder(t *testing.T) {
	b := expr.NewBuilder()
	// Fire at least one rewrite rule so the builder has non-empty counters.
	x := b.Var("x", 32)
	b.Add(x, b.Const(0, 32))
	want := b.RuleHits()

	// Two worker results that (wrongly, as pre-fix engines did) embed
	// builder-global snapshots: summing or keeping them would misattribute.
	stale := []expr.RuleHit{{Name: "bogus", Hits: 999}}
	mk := func() *core.Result {
		r := &core.Result{}
		r.Stats.Rules = stale
		return r
	}
	res := Combine([]*core.Result{mk(), mk()}, true, core.Config{Builder: b})
	if !reflect.DeepEqual(res.Stats.Rules, want) {
		t.Fatalf("shared builder: Rules = %v, want the builder's own counters %v", res.Stats.Rules, want)
	}
}

func TestCombineRulesPrivateBuilders(t *testing.T) {
	// Without a shared builder, Combine keeps the largest snapshot (the
	// counters are monotone, so the largest is the newest) rather than
	// summing — summing would multiply shared counters by the worker count.
	older := &core.Result{}
	older.Stats.Rules = []expr.RuleHit{{Name: "r", Hits: 10}}
	newer := &core.Result{}
	newer.Stats.Rules = []expr.RuleHit{{Name: "r", Hits: 25}}
	res := Combine([]*core.Result{older, newer}, true, core.Config{})
	if len(res.Stats.Rules) != 1 || res.Stats.Rules[0].Hits != 25 {
		t.Fatalf("private builders: Rules = %v, want the newest snapshot (hits 25)", res.Stats.Rules)
	}
}
