package parallel

// White-box tests for the shared frontier: claim ordering, global-drain
// detection (all workers starved with an empty queue), and close semantics.

import (
	"sync"
	"testing"
	"time"

	"symmerge/internal/core"
)

func TestFrontierFIFO(t *testing.T) {
	f := newFrontier(1)
	a, b := &core.State{ID: 1}, &core.State{ID: 2}
	f.put([]*core.State{a, b})
	if got := f.take(); got != a {
		t.Fatalf("first take = %v, want first deposit", got)
	}
	if got := f.take(); got != b {
		t.Fatalf("second take = %v, want second deposit", got)
	}
}

func TestFrontierGlobalDrain(t *testing.T) {
	const workers = 4
	f := newFrontier(workers)
	f.put([]*core.State{{ID: 1}, {ID: 2}})

	var wg sync.WaitGroup
	claimed := make(chan *core.State, 8)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := f.take()
				if s == nil {
					return
				}
				claimed <- s
			}
		}()
	}
	// Two states, four workers: two claim and return for more, all four
	// end up starved simultaneously, and the frontier must close itself.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("frontier failed to detect global drain; workers deadlocked")
	}
	close(claimed)
	n := 0
	for range claimed {
		n++
	}
	if n != 2 {
		t.Fatalf("claimed %d states, want 2", n)
	}
}

func TestFrontierDonationWakesStarved(t *testing.T) {
	f := newFrontier(2)
	got := make(chan *core.State, 1)
	go func() { got <- f.take() }()
	// Wait until the taker is starved, as a donor would observe it.
	for f.hungry() == 0 {
		time.Sleep(time.Millisecond)
	}
	s := &core.State{ID: 7}
	f.put([]*core.State{s})
	select {
	case x := <-got:
		if x != s {
			t.Fatalf("taker woke with %v, want donated state", x)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("donation did not wake the starved worker")
	}
}

func TestFrontierCloseUnblocks(t *testing.T) {
	f := newFrontier(3)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s := f.take(); s != nil {
				t.Errorf("take after close = %v, want nil", s)
			}
		}()
	}
	for f.hungry() < 2 {
		time.Sleep(time.Millisecond)
	}
	f.close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("close did not unblock takers")
	}
}
