package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"symmerge/internal/core"
	"symmerge/internal/corpus"
	"symmerge/internal/expr"
)

// wireFixture builds a small but representative pair of states sharing
// expression structure: symbolic locals, a path condition, heap cells, a
// guarded output byte, and a shadow path.
func wireFixture(b *expr.Builder) []*core.StateWire {
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	sum := b.Add(x, y)
	cond := b.Ult(x, b.Const(10, 8))
	big := b.Const(1<<63|12345, 64)
	return []*core.StateWire{
		{
			Frames: []core.WireFrame{{
				Fn: 0, PC: 3, RetDst: -1,
				Locals:  []core.WireValue{{E: sum}, {Depth: 0, Local: 1}, {E: big}},
				Objects: []*core.WireObject{nil, {Cells: []*expr.Expr{x, sum}, Width: 8}, nil},
			}},
			PC:      []*expr.Expr{cond},
			Heap:    []core.WireHeapEntry{{ID: 2, Obj: core.WireObject{Cells: []*expr.Expr{y}, Width: 8}}},
			Allocs:  []uint16{1, 0},
			Mult:    "3",
			Output:  []core.WireOut{{Guard: cond, Val: x}},
			NSyms:   2,
			History: []uint64{7, 9, 0},
			HistPos: 1,
			Shadow:  [][]*expr.Expr{{cond}, {b.Not(cond)}},
		},
		{
			Frames: []core.WireFrame{{
				Fn: 0, PC: 5, RetDst: -1,
				Locals:  []core.WireValue{{E: x}, {E: y}, {E: sum}},
				Objects: []*core.WireObject{nil, nil, nil},
			}},
			PC:   []*expr.Expr{b.Not(cond)},
			Mult: "1",
		},
	}
}

// TestEncodeDecodeRoundTrip checks the node table + index encoding against
// both decode targets: the same builder must yield pointer-identical
// expressions (pure hash-cons hits), and a fresh builder must yield a
// byte-identical re-encoding.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := expr.NewBuilder()
	wires := wireFixture(b)

	var sn Snapshot
	sn.EncodeStates(wires)
	enc1, err := json.Marshal(&sn)
	if err != nil {
		t.Fatal(err)
	}

	// Same builder: every decoded expression is the original pointer.
	back, err := sn.DecodeStates(b)
	if err != nil {
		t.Fatalf("decode (same builder): %v", err)
	}
	if len(back) != len(wires) {
		t.Fatalf("decoded %d states, want %d", len(back), len(wires))
	}
	if back[0].PC[0] != wires[0].PC[0] {
		t.Error("path conjunct did not hash-cons back to the original pointer")
	}
	if back[0].Frames[0].Locals[0].E != wires[0].Frames[0].Locals[0].E {
		t.Error("local did not hash-cons back to the original pointer")
	}
	if back[0].Heap[0].Obj.Cells[0] != wires[0].Heap[0].Obj.Cells[0] {
		t.Error("heap cell did not hash-cons back to the original pointer")
	}
	if back[0].Frames[0].Locals[1].E != nil || back[0].Frames[0].Locals[1].Local != 1 {
		t.Error("object reference local did not survive")
	}
	if got := back[0].Frames[0].Locals[2].E; got.Val != 1<<63|12345 {
		t.Errorf("uint64 constant corrupted: %d", got.Val)
	}

	// Fresh builder: decode, re-encode, byte-identical snapshot.
	fresh, err := sn.DecodeStates(expr.NewBuilder())
	if err != nil {
		t.Fatalf("decode (fresh builder): %v", err)
	}
	var sn2 Snapshot
	sn2.EncodeStates(fresh)
	sn2.Schema = sn.Schema
	enc2, err := json.Marshal(&sn2)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Errorf("re-encoding through a fresh builder diverged:\n%s\nvs\n%s", enc1, enc2)
	}
}

func TestDecodeRejectsForwardReference(t *testing.T) {
	sn := Snapshot{
		Exprs: []Node{{K: uint8(expr.KNot), Kids: []uint32{1}}, {K: uint8(expr.KVar), N: "b"}},
	}
	if _, err := sn.DecodeStates(expr.NewBuilder()); err == nil {
		t.Fatal("forward kid reference decoded without error")
	}
}

func TestWriteLoadLatest(t *testing.T) {
	dir := t.TempDir()
	b := expr.NewBuilder()

	if sn, err := LoadLatest(dir); err != nil || sn != nil {
		t.Fatalf("empty dir: got (%v, %v), want (nil, nil)", sn, err)
	}

	for seq := uint64(0); seq < 4; seq++ {
		sn := &Snapshot{Seq: seq, Program: corpus.ProgramInfo{Name: "t", Hash: "h"}, Config: "c"}
		sn.EncodeStates(wireFixture(b))
		if _, err := Write(dir, sn); err != nil {
			t.Fatalf("write %d: %v", seq, err)
		}
	}

	got, err := LoadLatest(dir)
	if err != nil || got == nil || got.Seq != 3 {
		t.Fatalf("LoadLatest = (%+v, %v), want seq 3", got, err)
	}

	// Pruning keeps only the newest two.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("prune left %v, want 2 files", names)
	}

	// A torn newest snapshot is skipped, not fatal: corrupt seq 3 and the
	// loader must fall back to seq 2.
	path := filepath.Join(dir, "snap-00000003.ckpt")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadLatest(dir)
	if err != nil || got == nil || got.Seq != 2 {
		t.Fatalf("after tearing seq 3: LoadLatest = (%+v, %v), want seq 2", got, err)
	}

	// A wrong-schema snapshot is refused the same way.
	raw := []byte(`{"schema":"symmerge-checkpoint/v999","seq":9,"states":[]}`)
	writeRaw(t, dir, "snap-00000009.ckpt", raw)
	got, err = LoadLatest(dir)
	if err != nil || got == nil || got.Seq != 2 {
		t.Fatalf("after foreign schema: LoadLatest = (%+v, %v), want seq 2", got, err)
	}
}

// writeRaw writes body plus a valid checksum trailer, bypassing Write, so
// tests can plant snapshots whose JSON the loader must reject on content.
func writeRaw(t *testing.T, dir, name string, body []byte) {
	t.Helper()
	sum := sha256.Sum256(body)
	data := append(append(body, '\n'), hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}
