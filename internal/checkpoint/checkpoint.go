// Package checkpoint implements the versioned, self-describing snapshot
// format that makes exploration crash-safe: a snapshot captures the
// engine's live frontier (every worklist state in core.StateWire form),
// the cumulative progress counters, and the corpus writer's dedup state,
// so a killed run resumes from its last snapshot and converges to the
// same census and corpus as an uninterrupted run.
//
// On disk a snapshot is a single file, snap-%08d.ckpt, holding one line
// of JSON followed by one line with the hex SHA-256 of the JSON bytes.
// The trailing digest is what distinguishes "the previous run died after
// renaming a complete snapshot into place" from "the filesystem tore the
// file": LoadLatest verifies it and silently falls back to the next-newest
// snapshot when it does not match. Writes go through a temp file in the
// same directory plus os.Rename, so a snapshot is either entirely present
// or entirely absent.
//
// Expressions are serialized once per snapshot as a node table in builder
// ID order. A builder assigns IDs at construction and every operand is
// constructed before its parent, so ID order is a topological order: the
// decoder re-interns nodes first-to-last through expr.Builder.Intern
// (which hash-conses without re-running rewrite rules — snapshot nodes
// are already canonical) and every Kids reference points backwards.
// Expression references elsewhere in the snapshot are uint32 node-table
// indices offset by one, with 0 meaning nil.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"symmerge/internal/core"
	"symmerge/internal/corpus"
	"symmerge/internal/expr"
)

// Schema is the wire-format identifier. Bump it on any incompatible
// change to Snapshot or the node encoding; Load refuses other schemas so
// a stale snapshot can never be misread as current.
const Schema = "symmerge-checkpoint/v1"

// keepSnapshots is how many verified snapshots Write leaves behind: the
// one just written plus its predecessor, in case the newest is lost to a
// tear between rename and fsync of the directory.
const keepSnapshots = 2

// Node is one expression in the snapshot's topologically ordered table.
// The constant value travels as a decimal string: JSON numbers cannot
// carry a full uint64 through non-Go tooling without precision loss.
type Node struct {
	K    uint8    `json:"k"`
	W    uint8    `json:"w,omitempty"`
	A    uint16   `json:"a,omitempty"`
	V    string   `json:"v,omitempty"`
	N    string   `json:"n,omitempty"`
	Kids []uint32 `json:"c,omitempty"`
}

// Ref is a node-table reference: 0 is nil, r points at table index r-1.
type Ref = uint32

// Value, Object, Frame, HeapEntry, Out and State mirror the core wire
// structs with every *expr.Expr replaced by a Ref.
type Value struct {
	E     Ref `json:"e,omitempty"`
	Depth int `json:"d,omitempty"`
	Local int `json:"l,omitempty"`
}

type Object struct {
	Cells []Ref `json:"cells"`
	Width uint8 `json:"width"`
}

type Frame struct {
	Fn      int       `json:"fn"`
	PC      int       `json:"pc"`
	RetDst  int       `json:"ret"`
	Locals  []Value   `json:"locals,omitempty"`
	Objects []*Object `json:"objects,omitempty"`
}

type HeapEntry struct {
	ID  uint32 `json:"id"`
	Obj Object `json:"obj"`
}

type Out struct {
	Guard Ref `json:"g,omitempty"`
	Val   Ref `json:"v"`
}

type State struct {
	Frames  []Frame     `json:"frames"`
	PC      []Ref       `json:"pc,omitempty"`
	Heap    []HeapEntry `json:"heap,omitempty"`
	Allocs  []uint16    `json:"allocs,omitempty"`
	Mult    string      `json:"mult"`
	Output  []Out       `json:"output,omitempty"`
	NSyms   int         `json:"nsyms,omitempty"`
	History []uint64    `json:"history,omitempty"`
	HistPos int         `json:"histpos,omitempty"`
	Shadow  [][]Ref     `json:"shadow,omitempty"`
	JustRet bool        `json:"justret,omitempty"`
}

// Progress is the cumulative exploration result as of the snapshot. A
// resumed run adds its own engine totals on top of this base; the split
// is exact because the snapshot is taken between scheduler steps, so no
// work is counted on both sides. Rules is deliberately absent: rewrite
// counters are builder-global diagnostics that a resumed (fresh) builder
// cannot continue.
type Progress struct {
	Stats core.Stats `json:"stats"`
	// Covered is the cumulative coverage bitmap as a sorted range list
	// over LocIndex values (the corpus manifest encoding).
	Covered string           `json:"covered"`
	Tests   []core.TestCase  `json:"tests,omitempty"`
	Errors  []core.PathError `json:"errors,omitempty"`
}

// CorpusState is the writer's dedup and counter state; restoring it makes
// post-snapshot test emission idempotent (see corpus.Writer.RestoreState).
type CorpusState struct {
	Seen    []string `json:"seen,omitempty"`
	Emitted int      `json:"emitted"`
	Skipped int      `json:"skipped,omitempty"`
}

// Snapshot is one complete resumable picture of an exploration.
type Snapshot struct {
	Schema string `json:"schema"`
	// Seq increases by one per snapshot of a logical run and survives
	// resume (a resumed run continues the numbering), so the newest
	// snapshot in a directory is the one with the highest Seq.
	Seq uint64 `json:"seq"`
	// Program identifies what was being explored; Load refuses to resume
	// onto a program with a different IR hash.
	Program corpus.ProgramInfo `json:"program"`
	// Config is the canonical exploration descriptor (merge regime, QCE,
	// strategy, seed, input sizes — the corpus manifest convention).
	// Resuming under a different descriptor would silently change the
	// census, so Load refuses that too.
	Config   string       `json:"config"`
	Progress Progress     `json:"progress"`
	Corpus   *CorpusState `json:"corpus,omitempty"`
	Exprs    []Node       `json:"exprs,omitempty"`
	States   []State      `json:"states"`
}

// EncodeStates fills the snapshot's expression table and state list from
// live wire states. All states must come from engines sharing one
// expr.Builder (true for both the sequential and the epoch-parallel
// checkpoint drivers): builder IDs are the topological order the table
// is sorted by, and IDs from different builders are incomparable.
func (sn *Snapshot) EncodeStates(wires []*core.StateWire) {
	enc := &encoder{index: map[*expr.Expr]uint32{}}
	// First pass: collect every distinct reachable node.
	for _, w := range wires {
		enc.visitState(w)
	}
	sort.Slice(enc.nodes, func(i, j int) bool { return enc.nodes[i].ID() < enc.nodes[j].ID() })
	for i, e := range enc.nodes {
		enc.index[e] = uint32(i)
	}
	sn.Exprs = make([]Node, len(enc.nodes))
	for i, e := range enc.nodes {
		n := Node{K: uint8(e.Kind), W: e.Width, A: e.Aux, N: e.Name}
		if e.Kind == expr.KConst && e.Val != 0 {
			n.V = strconv.FormatUint(e.Val, 10)
		}
		if len(e.Kids) > 0 {
			n.Kids = make([]uint32, len(e.Kids))
			for j, k := range e.Kids {
				n.Kids[j] = enc.index[k]
			}
		}
		sn.Exprs[i] = n
	}
	sn.States = make([]State, len(wires))
	for i, w := range wires {
		sn.States[i] = enc.state(w)
	}
}

type encoder struct {
	index map[*expr.Expr]uint32 // collection: presence; encoding: table index
	nodes []*expr.Expr
}

func (enc *encoder) visit(e *expr.Expr) {
	if e == nil {
		return
	}
	if _, ok := enc.index[e]; ok {
		return
	}
	enc.index[e] = 0
	for _, k := range e.Kids {
		enc.visit(k)
	}
	enc.nodes = append(enc.nodes, e)
}

func (enc *encoder) visitState(w *core.StateWire) {
	for _, f := range w.Frames {
		for _, v := range f.Locals {
			enc.visit(v.E)
		}
		for _, o := range f.Objects {
			if o != nil {
				for _, c := range o.Cells {
					enc.visit(c)
				}
			}
		}
	}
	for _, c := range w.PC {
		enc.visit(c)
	}
	for _, h := range w.Heap {
		for _, c := range h.Obj.Cells {
			enc.visit(c)
		}
	}
	for _, o := range w.Output {
		enc.visit(o.Guard)
		enc.visit(o.Val)
	}
	for _, p := range w.Shadow {
		for _, c := range p {
			enc.visit(c)
		}
	}
}

func (enc *encoder) ref(e *expr.Expr) Ref {
	if e == nil {
		return 0
	}
	return enc.index[e] + 1
}

func (enc *encoder) object(o *core.WireObject) Object {
	cells := make([]Ref, len(o.Cells))
	for i, c := range o.Cells {
		cells[i] = enc.ref(c)
	}
	return Object{Cells: cells, Width: o.Width}
}

func (enc *encoder) state(w *core.StateWire) State {
	st := State{
		Mult:    w.Mult,
		NSyms:   w.NSyms,
		HistPos: w.HistPos,
		JustRet: w.JustRet,
		Allocs:  w.Allocs,
		History: w.History,
	}
	st.Frames = make([]Frame, len(w.Frames))
	for i, f := range w.Frames {
		cf := Frame{Fn: f.Fn, PC: f.PC, RetDst: f.RetDst}
		if len(f.Locals) > 0 {
			cf.Locals = make([]Value, len(f.Locals))
			for j, v := range f.Locals {
				cf.Locals[j] = Value{E: enc.ref(v.E), Depth: v.Depth, Local: v.Local}
			}
		}
		if len(f.Objects) > 0 {
			cf.Objects = make([]*Object, len(f.Objects))
			for j, o := range f.Objects {
				if o != nil {
					obj := enc.object(o)
					cf.Objects[j] = &obj
				}
			}
		}
		st.Frames[i] = cf
	}
	if len(w.PC) > 0 {
		st.PC = make([]Ref, len(w.PC))
		for i, c := range w.PC {
			st.PC[i] = enc.ref(c)
		}
	}
	if len(w.Heap) > 0 {
		st.Heap = make([]HeapEntry, len(w.Heap))
		for i, h := range w.Heap {
			st.Heap[i] = HeapEntry{ID: h.ID, Obj: enc.object(&h.Obj)}
		}
	}
	if len(w.Output) > 0 {
		st.Output = make([]Out, len(w.Output))
		for i, o := range w.Output {
			st.Output[i] = Out{Guard: enc.ref(o.Guard), Val: enc.ref(o.Val)}
		}
	}
	if len(w.Shadow) > 0 {
		st.Shadow = make([][]Ref, len(w.Shadow))
		for i, p := range w.Shadow {
			refs := make([]Ref, len(p))
			for j, c := range p {
				refs[j] = enc.ref(c)
			}
			st.Shadow[i] = refs
		}
	}
	return st
}

// DecodeStates re-interns the snapshot's expression table through b and
// rebuilds the wire states with live expression pointers. The builder
// should be the one the resuming engines share, so every decoded node is
// a hash-cons hit or a fresh canonical node in the right ID space.
func (sn *Snapshot) DecodeStates(b *expr.Builder) ([]*core.StateWire, error) {
	exprs := make([]*expr.Expr, len(sn.Exprs))
	for i, n := range sn.Exprs {
		var val uint64
		if n.V != "" {
			v, err := strconv.ParseUint(n.V, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("node %d: bad value %q", i, n.V)
			}
			val = v
		}
		kids := make([]*expr.Expr, len(n.Kids))
		for j, r := range n.Kids {
			if int(r) >= i {
				return nil, fmt.Errorf("node %d: kid %d is not a predecessor", i, r)
			}
			kids[j] = exprs[r]
		}
		e, err := b.Intern(expr.Kind(n.K), n.W, val, n.A, n.N, kids)
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", i, err)
		}
		exprs[i] = e
	}
	dec := &decoder{exprs: exprs}
	out := make([]*core.StateWire, len(sn.States))
	for i := range sn.States {
		w, err := dec.state(&sn.States[i])
		if err != nil {
			return nil, fmt.Errorf("state %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

type decoder struct {
	exprs []*expr.Expr
}

func (dec *decoder) ref(r Ref) (*expr.Expr, error) {
	if r == 0 {
		return nil, nil
	}
	if int(r) > len(dec.exprs) {
		return nil, fmt.Errorf("expression reference %d out of range", r)
	}
	return dec.exprs[r-1], nil
}

func (dec *decoder) refs(rs []Ref) ([]*expr.Expr, error) {
	if rs == nil {
		return nil, nil
	}
	out := make([]*expr.Expr, len(rs))
	for i, r := range rs {
		e, err := dec.ref(r)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

func (dec *decoder) object(o *Object) (*core.WireObject, error) {
	cells, err := dec.refs(o.Cells)
	if err != nil {
		return nil, err
	}
	return &core.WireObject{Cells: cells, Width: o.Width}, nil
}

func (dec *decoder) state(st *State) (*core.StateWire, error) {
	w := &core.StateWire{
		Mult:    st.Mult,
		NSyms:   st.NSyms,
		HistPos: st.HistPos,
		JustRet: st.JustRet,
		Allocs:  st.Allocs,
		History: st.History,
	}
	var err error
	if w.PC, err = dec.refs(st.PC); err != nil {
		return nil, err
	}
	w.Frames = make([]core.WireFrame, len(st.Frames))
	for i, f := range st.Frames {
		wf := core.WireFrame{Fn: f.Fn, PC: f.PC, RetDst: f.RetDst}
		wf.Locals = make([]core.WireValue, len(f.Locals))
		for j, v := range f.Locals {
			e, err := dec.ref(v.E)
			if err != nil {
				return nil, err
			}
			wf.Locals[j] = core.WireValue{E: e, Depth: v.Depth, Local: v.Local}
		}
		wf.Objects = make([]*core.WireObject, len(f.Objects))
		for j, o := range f.Objects {
			if o == nil {
				continue
			}
			if wf.Objects[j], err = dec.object(o); err != nil {
				return nil, err
			}
		}
		w.Frames[i] = wf
	}
	if len(st.Heap) > 0 {
		w.Heap = make([]core.WireHeapEntry, len(st.Heap))
		for i, h := range st.Heap {
			o, err := dec.object(&h.Obj)
			if err != nil {
				return nil, err
			}
			w.Heap[i] = core.WireHeapEntry{ID: h.ID, Obj: *o}
		}
	}
	if len(st.Output) > 0 {
		w.Output = make([]core.WireOut, len(st.Output))
		for i, o := range st.Output {
			g, err := dec.ref(o.Guard)
			if err != nil {
				return nil, err
			}
			v, err := dec.ref(o.Val)
			if err != nil {
				return nil, err
			}
			w.Output[i] = core.WireOut{Guard: g, Val: v}
		}
	}
	if st.Shadow != nil {
		w.Shadow = make([][]*expr.Expr, len(st.Shadow))
		for i, p := range st.Shadow {
			if w.Shadow[i], err = dec.refs(p); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// fileName returns the snapshot's name inside its directory.
func fileName(seq uint64) string { return fmt.Sprintf("snap-%08d.ckpt", seq) }

// Write persists the snapshot atomically (temp file + rename into dir,
// which is created if needed) and prunes all but the newest keepSnapshots
// verified snapshots. It returns the snapshot's final path.
func Write(dir string, sn *Snapshot) (string, error) {
	sn.Schema = Schema
	body, err := json.Marshal(sn)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(body)
	data := make([]byte, 0, len(body)+2*sha256.Size+2)
	data = append(data, body...)
	data = append(data, '\n')
	data = append(data, hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fileName(sn.Seq))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", err
	}
	prune(dir, sn.Seq)
	return path, nil
}

// prune best-effort deletes snapshots older than the keepSnapshots newest
// (by sequence number, relative to the one just written).
func prune(dir string, latest uint64) {
	for _, seq := range listSeqs(dir) {
		if seq+keepSnapshots <= latest {
			_ = os.Remove(filepath.Join(dir, fileName(seq)))
		}
	}
}

// listSeqs returns the sequence numbers of the snapshot files present in
// dir, ascending.
func listSeqs(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, ent := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(ent.Name(), "snap-%d.ckpt", &seq); n == 1 && err == nil && ent.Name() == fileName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// LoadLatest returns the newest snapshot in dir that passes the checksum
// and schema checks, skipping over corrupt or torn newer ones (a crash
// can interrupt Write at any byte). It returns (nil, nil) when the
// directory holds no usable snapshot — the caller starts fresh.
func LoadLatest(dir string) (*Snapshot, error) {
	seqs := listSeqs(dir)
	for i := len(seqs) - 1; i >= 0; i-- {
		sn, err := load(filepath.Join(dir, fileName(seqs[i])))
		if err != nil {
			continue
		}
		return sn, nil
	}
	return nil, nil
}

// load reads and verifies one snapshot file.
func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, trailer, ok := bytes.Cut(data, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("%s: no checksum trailer", path)
	}
	sum := sha256.Sum256(body)
	if want := hex.EncodeToString(sum[:]); string(bytes.TrimSpace(trailer)) != want {
		return nil, fmt.Errorf("%s: checksum mismatch", path)
	}
	var sn Snapshot
	if err := json.Unmarshal(body, &sn); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sn.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q (want %q)", path, sn.Schema, Schema)
	}
	return &sn, nil
}
