// Package faultinject deterministically kills an in-process exploration at
// a chosen instrumentation point, for the crash-recovery test harness.
//
// The engine, the merger, and the corpus writer each call Hit at their
// instrumented point. When the package is disarmed (the default, and the
// only state production code ever observes) a hit is a single atomic load.
// When a test arms a point with a countdown, the Nth hit at that point
// panics with Killed — the in-process stand-in for SIGKILL: the panic
// unwinds through the exploration without running any of its completion
// paths, leaving only what was already durably on disk, exactly like a
// process death. The harness recovers the Killed value at its call site,
// discards every in-memory result, and resumes from the latest snapshot.
//
// All state is atomic so the hooks are race-clean under parallel
// exploration workers; tests that arm points must not run in parallel with
// each other (they share the global countdowns).
package faultinject

import (
	"fmt"
	"sync/atomic"
)

// Point names an instrumented kill site.
type Point uint8

// Instrumented points.
const (
	// PointStep fires at the top of every engine scheduler step.
	PointStep Point = iota
	// PointMerge fires inside a state merge, after the merge partners were
	// removed from the worklist but before the merged state is dispatched —
	// the widest in-memory inconsistency window the engine has.
	PointMerge
	// PointCorpusWrite fires inside the corpus writer's test-file write,
	// after a deliberately torn file has been left at the final path —
	// simulating the non-atomic write of a pre-crash-safety corpus (or a
	// filesystem that tears on power loss), the case the resume-time
	// quarantine pass exists for.
	PointCorpusWrite

	numPoints
)

func (p Point) String() string {
	switch p {
	case PointStep:
		return "step"
	case PointMerge:
		return "merge"
	case PointCorpusWrite:
		return "corpus-write"
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Killed is the panic value of an injected kill. The harness recovers it by
// type; any other panic keeps propagating.
type Killed struct{ At Point }

func (k Killed) Error() string { return "faultinject: killed at " + k.At.String() }

var (
	armed    atomic.Bool
	counters [numPoints]atomic.Int64
)

// Arm schedules a kill at the nth Hit (n >= 1) of the given point,
// replacing any previous schedule. Counting starts now.
func Arm(p Point, n int64) {
	if n < 1 {
		panic("faultinject: Arm needs n >= 1")
	}
	for i := range counters {
		counters[i].Store(0)
	}
	counters[p].Store(n)
	armed.Store(true)
}

// Disarm clears every scheduled kill. Harnesses must call it (deferred)
// so a test failure cannot leak an armed point into later tests.
func Disarm() {
	armed.Store(false)
	for i := range counters {
		counters[i].Store(0)
	}
}

// Hit notes one crossing of the instrumented point, panicking with Killed
// when an armed countdown reaches zero. Disarmed cost: one atomic load.
func Hit(p Point) {
	HitWith(p, nil)
}

// HitWith is Hit with a pre-death callback: when the countdown fires, f
// runs first — instrumentation sites use it to leave a deliberately broken
// artifact (a torn corpus file) behind — and then the Killed panic unwinds.
func HitWith(p Point, f func()) {
	if !armed.Load() {
		return
	}
	if c := counters[p].Load(); c > 0 && counters[p].Add(-1) == 0 {
		if f != nil {
			f()
		}
		panic(Killed{At: p})
	}
}
