package daemon

// End-to-end daemon tests over real HTTP: concurrent submission, per-job
// timeout enforcement, graceful drain with in-flight jobs checkpointed and
// later resumed, and warm-store counters across a simulated restart — all
// against live listeners on loopback, asserting through the same wire
// surface (streaming JSONL + /v1/stats) that clients and CI use.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// quickSrc explores in well under a second but still issues real solver
// queries: two branch cascades per argv byte plus a cross-arg accumulator.
const quickSrc = `
int classify(byte c) {
    if (c < 'a') { return 0; }
    if (c > 'z') { return 1; }
    if (c == 'q') { return 2; }
    return 3;
}

void main() {
    int total = 0;
    total = total + classify(argchar(1, 0));
    total = total + classify(argchar(1, 1));
    total = total + classify(argchar(2, 0));
    putchar(tobyte('0' + total % 10));
    if (total == 6) {
        putchar('!');
    }
}
`

// slowSrc path-explodes: with three 6-char symbolic args and no merging
// the branch cascade per byte multiplies far past anything a sub-second
// deadline can finish — the timeout and drain tests rely on that.
const slowSrc = `
void main() {
    int total = 0;
    for (int arg = 1; arg < argc(); arg++) {
        for (int i = 0; argchar(arg, i) != 0; i++) {
            byte c = argchar(arg, i);
            if (c > 'a') { total = total + 1; }
            if (c > 'f') { total = total + 2; }
            if (c > 'm') { total = total + 3; }
            if (c > 't') { total = total + 4; }
        }
    }
    putchar(tobyte('0' + total % 10));
}
`

func startServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// submit posts a job and decodes the full JSONL event stream.
func submit(t *testing.T, addr string, req JobRequest) []Event {
	t.Helper()
	evs, err := trySubmit(addr, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return evs
}

func trySubmit(addr string, req JobRequest) ([]Event, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return evs, fmt.Errorf("bad event line %q: %w", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs, sc.Err()
}

// resultOf digs the final "result" event out of a stream.
func resultOf(t *testing.T, evs []Event) *JobResult {
	t.Helper()
	for _, ev := range evs {
		if ev.Event == "result" {
			if ev.JobResult == nil {
				t.Fatal("result event without payload")
			}
			return ev.JobResult
		}
		if ev.Event == "error" {
			t.Fatalf("job failed: %s", ev.Error)
		}
	}
	t.Fatalf("no result event in %d events", len(evs))
	return nil
}

func getStats(t *testing.T, addr string) StatsDoc {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var doc StatsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return doc
}

// TestDaemonConcurrentSubmissions: more jobs than slots, submitted at
// once. Every job completes, all runs of the same program agree on the
// corpus digest (the shared domain must not leak state into results), and
// the counters account for every submission.
func TestDaemonConcurrentSubmissions(t *testing.T) {
	s := startServer(t, Options{MaxJobs: 3})
	const n = 6
	results := make([]*JobResult, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			evs, err := trySubmit(s.Addr(), JobRequest{
				Source: quickSrc, Label: fmt.Sprintf("job-%d", i),
				Merge: "dsm", Summaries: true, Tests: i == 0,
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			for _, ev := range evs {
				if ev.Event == "result" {
					results[i] = ev.JobResult
				}
			}
		}(i)
	}
	wg.Wait()
	var digest string
	for i, r := range results {
		if r == nil {
			t.Fatalf("job %d: no result", i)
		}
		if !r.Completed {
			t.Errorf("job %d: incomplete", i)
		}
		if digest == "" {
			digest = r.CorpusDigest
		} else if r.CorpusDigest != digest {
			t.Errorf("job %d: corpus digest %s != %s", i, r.CorpusDigest, digest)
		}
	}
	doc := getStats(t, s.Addr())
	if doc.JobsAccepted != n || doc.JobsCompleted != n {
		t.Errorf("accounting: accepted=%d completed=%d want %d", doc.JobsAccepted, doc.JobsCompleted, n)
	}
	if doc.JobsActive != 0 {
		t.Errorf("%d jobs still registered after completion", doc.JobsActive)
	}
	// Later jobs share the first job's domain: the in-process cex cache
	// must have answered some of their queries.
	if doc.CacheHits == 0 {
		t.Error("shared domain produced no cache hits across identical jobs")
	}
}

// TestDaemonPerJobTimeout: a path-exploding job under a sub-second
// deadline must come back promptly, marked timed out, without taking the
// daemon down.
func TestDaemonPerJobTimeout(t *testing.T) {
	s := startServer(t, Options{MaxJobs: 1})
	start := time.Now()
	evs := submit(t, s.Addr(), JobRequest{
		Source: slowSrc, Merge: "none",
		NArgs: 3, ArgLen: 6, TimeoutSec: 0.3,
	})
	took := time.Since(start)
	res := resultOf(t, evs)
	if res.Completed {
		t.Fatal("path-exploding job claims completion under a 0.3s deadline")
	}
	if !res.TimedOut {
		t.Errorf("timeout not attributed: interrupted=%s", res.Interrupted)
	}
	if took > 10*time.Second {
		t.Errorf("deadline enforcement took %v", took)
	}
	doc := getStats(t, s.Addr())
	if doc.JobsTimedOut != 1 {
		t.Errorf("jobs_timed_out=%d want 1", doc.JobsTimedOut)
	}
	// The daemon must still serve after a timeout.
	if res := resultOf(t, submit(t, s.Addr(), JobRequest{Source: quickSrc})); !res.Completed {
		t.Error("daemon unhealthy after a job timeout")
	}
}

// TestDaemonDrainCheckpointsInFlight: SIGTERM semantics. A keyed in-flight
// job is preempted into a resumable snapshot during Drain; a fresh daemon
// over the same directories resumes it to the exact corpus an
// uninterrupted run produces.
func TestDaemonDrainCheckpointsInFlight(t *testing.T) {
	ckpt := t.TempDir()
	opts := Options{
		MaxJobs:         2,
		CheckpointDir:   ckpt,
		CheckpointEvery: 50 * time.Millisecond,
	}
	s := startServer(t, opts)

	// Reference: an uninterrupted keyed run that spans several checkpoint
	// epochs (so mid-run snapshots exist on disk) yet completes fast.
	ref := resultOf(t, submit(t, s.Addr(), JobRequest{
		Source: slowSrc, Merge: "none", NArgs: 2, ArgLen: 2,
		Key: "ref", TimeoutSec: 120,
	}))
	if !ref.Completed {
		t.Fatal("reference run incomplete")
	}

	// In-flight job to drain: same program, bigger environment, long
	// deadline — it cannot finish before Drain fires.
	type outcome struct {
		evs []Event
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		evs, err := trySubmit(s.Addr(), JobRequest{
			Source: slowSrc, Merge: "none", NArgs: 3, ArgLen: 6,
			Key: "drainee", TimeoutSec: 120,
		})
		done <- outcome{evs, err}
	}()
	// Wait until the job is live (visible in /v1/progress), then a little
	// longer so at least one checkpoint epoch has elapsed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("drainee never became active")
		}
		resp, err := http.Get("http://" + s.Addr() + "/v1/progress")
		if err != nil {
			t.Fatal(err)
		}
		var doc ProgressDoc
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if doc.Active >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("drained job stream: %v", out.err)
	}
	res := resultOf(t, out.evs)
	if res.Completed {
		t.Fatal("drained job claims completion")
	}
	if !res.Checkpointed || res.Interrupted != "checkpoint" {
		t.Fatalf("drain did not checkpoint: checkpointed=%v interrupted=%s",
			res.Checkpointed, res.Interrupted)
	}
	if res.TimedOut {
		t.Error("drain misattributed as a per-job timeout")
	}
	snaps, err := os.ReadDir(filepath.Join(ckpt, "drainee"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot on disk after drain: %v (%d entries)", err, len(snaps))
	}

	// Restart: a new daemon over the same checkpoint root resumes the
	// key. The job is huge, so bound the resumed leg by timeout and only
	// assert it picked the snapshot up (resumable again, made progress).
	s2 := startServer(t, opts)
	resumed := resultOf(t, submit(t, s2.Addr(), JobRequest{
		Source: slowSrc, Merge: "none", NArgs: 3, ArgLen: 6,
		Key: "drainee", Resume: true, TimeoutSec: 0.5,
	}))
	if resumed.Completed {
		t.Fatal("resumed leg of the huge job cannot have completed in 0.5s")
	}
	if !resumed.Checkpointed {
		t.Errorf("resumed leg not checkpointed again: interrupted=%s", resumed.Interrupted)
	}

	// Resume-to-completion parity: the ref key's newest snapshot is a
	// mid-run frontier, so this resumes partway and must still converge
	// to the uninterrupted run's corpus digest.
	full := resultOf(t, submit(t, s2.Addr(), JobRequest{
		Source: slowSrc, Merge: "none", NArgs: 2, ArgLen: 2,
		Key: "ref", Resume: true, TimeoutSec: 120,
	}))
	if !full.Completed {
		t.Fatal("resumed reference incomplete")
	}
	if full.CorpusDigest != ref.CorpusDigest {
		t.Errorf("resumed corpus digest %s != reference %s", full.CorpusDigest, ref.CorpusDigest)
	}
	doc := getStats(t, s2.Addr())
	if doc.JobsCheckpointed == 0 {
		t.Error("restarted daemon recorded no checkpointed job")
	}
}

// TestDaemonWarmStoreAcrossRestart: with a persistent store, a restarted
// daemon answers queries from disk — warm-hit counters move, results do
// not.
func TestDaemonWarmStoreAcrossRestart(t *testing.T) {
	storeDir := t.TempDir()
	opts := Options{MaxJobs: 2, StoreDir: storeDir}
	s := startServer(t, opts)
	req := JobRequest{Source: quickSrc, Merge: "dsm", Summaries: true}
	cold := resultOf(t, submit(t, s.Addr(), req))
	if !cold.Completed {
		t.Fatal("cold job incomplete")
	}
	if err := s.Close(); err != nil { // Close flushes the domain to disk
		t.Fatalf("close: %v", err)
	}

	s2 := startServer(t, opts)
	warm := resultOf(t, submit(t, s2.Addr(), req))
	if !warm.Completed {
		t.Fatal("warm job incomplete")
	}
	if warm.CorpusDigest != cold.CorpusDigest {
		t.Fatalf("warm corpus digest %s != cold %s", warm.CorpusDigest, cold.CorpusDigest)
	}
	if warm.StableHits+warm.StableGroupHits == 0 {
		t.Error("warm job answered nothing from the persistent store")
	}
	doc := getStats(t, s2.Addr())
	if doc.WarmHits == 0 {
		t.Error("stats endpoint shows no warm-store hits")
	}
	if doc.SeededSummaries == 0 {
		t.Error("restarted daemon seeded no summaries from the store")
	}
	if doc.Store == nil || doc.Store.CexLoaded == 0 {
		t.Error("stats endpoint shows no persisted cex entries loaded")
	}
}

// TestDaemonRejectsBadRequests: compile errors and unknown configurations
// come back as structured 4xx errors, drain refuses new work with 503, and
// none of it disturbs the counters for real jobs.
func TestDaemonRejectsBadRequests(t *testing.T) {
	s := startServer(t, Options{MaxJobs: 1})
	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	if resp, _ := post(`{"source":""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: status %d", resp.StatusCode)
	}
	if resp, body := post(`{"source":"void main() { syntax error"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad program: status %d body %s", resp.StatusCode, body)
	}
	if resp, _ := post(`{"source":"void main() { }","merge":"zzz"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad merge mode: status %d", resp.StatusCode)
	}
	if resp, _ := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d", resp.StatusCode)
	}
	doc := getStats(t, s.Addr())
	if doc.JobsAccepted != 0 {
		t.Errorf("rejections counted as accepted jobs: %d", doc.JobsAccepted)
	}
	if doc.JobsFailed == 0 {
		t.Error("no failures recorded")
	}
}
