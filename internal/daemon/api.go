package daemon

// The HTTP/JSON wire surface: job submission (streaming JSONL response),
// the live progress view, and the stats document CI and the leak test
// assert against.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"symmerge/internal/corpus"
	"symmerge/internal/store"
	"symmerge/symx"
)

const (
	// StatsSchema versions the /v1/stats document.
	StatsSchema = "symmerge-symxd-stats/v1"
	// ProgressSchema versions the /v1/progress document.
	ProgressSchema = "symmerge-symxd-progress/v1"
)

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// Label names the job in progress views and logs.
	Label string `json:"label,omitempty"`
	// Key, with the daemon's -checkpoint-dir set, gives the job a stable
	// per-key checkpoint directory: a drain preempts it into a resumable
	// snapshot, and resubmitting the same Key with Resume continues it.
	Key string `json:"key,omitempty"`
	// Resume restores the newest valid snapshot under Key before
	// exploring (no-op when none exists).
	Resume bool `json:"resume,omitempty"`

	// Merge is "none", "ssm", "dsm", or "func" (default "dsm").
	Merge string `json:"merge,omitempty"`
	// QCE gates merging on the query-count similarity relation
	// (default true under a merging regime).
	QCE *bool `json:"qce,omitempty"`
	// Workers shards the exploration (default 1).
	Workers int `json:"workers,omitempty"`
	// Summaries enables the compositional summary cache.
	Summaries bool `json:"summaries,omitempty"`

	// Symbolic environment (defaults: 2 args × 2 chars, no stdin).
	NArgs    int `json:"nargs,omitempty"`
	ArgLen   int `json:"arglen,omitempty"`
	StdinLen int `json:"stdin_len,omitempty"`

	// TimeoutSec bounds the job's wall clock (default and cap are daemon
	// options); MaxSteps bounds engine steps (0 = unlimited).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	MaxSteps   uint64  `json:"max_steps,omitempty"`

	// Tests streams every canonical corpus entry back as a "test" event.
	Tests bool `json:"tests,omitempty"`
}

// Event is one line of the streaming job response. Event is "accepted",
// "test", "result", or "error"; the other fields are event-specific.
type Event struct {
	Event string `json:"event"`
	ID    uint64 `json:"id,omitempty"`
	Error string `json:"error,omitempty"`

	// "test" events: one canonical corpus entry.
	Args   []string `json:"args,omitempty"`
	Stdin  string   `json:"stdin,omitempty"`
	Output string   `json:"output,omitempty"`
	Exit   int64    `json:"exit,omitempty"`
	IsErr  bool     `json:"is_err,omitempty"`
	Msg    string   `json:"msg,omitempty"`

	// "result" event.
	*JobResult `json:"result,omitempty"`
}

// JobResult summarizes a finished (or preempted) job.
type JobResult struct {
	Completed bool `json:"completed"`
	// Interrupted is "none", "budget", "context", or "checkpoint"; a
	// "checkpoint" stop is resumable by resubmitting the same key with
	// resume set.
	Interrupted string `json:"interrupted"`
	// Checkpointed is true when the stop left a resumable snapshot.
	Checkpointed bool `json:"checkpointed"`
	// TimedOut distinguishes a per-job deadline from a daemon drain.
	TimedOut bool `json:"timed_out,omitempty"`

	Paths       string  `json:"paths"` // multiplicity census (big integer)
	ExactPaths  uint64  `json:"exact_paths,omitempty"`
	ErrorsFound int     `json:"errors_found"`
	Coverage    float64 `json:"coverage"`
	Steps       uint64  `json:"steps"`
	Tests       int     `json:"tests"`

	// CorpusDigest is a deterministic hash of the canonical test set —
	// equal digests mean byte-identical corpora, which is how warm-store
	// parity is asserted end to end.
	CorpusDigest string `json:"corpus_digest"`

	Queries         uint64 `json:"queries"`
	CacheHits       uint64 `json:"cache_hits"`
	SATCalls        uint64 `json:"sat_calls"`
	StableHits      uint64 `json:"stable_hits"`
	StableGroupHits uint64 `json:"stable_group_hits"`
	SummaryHits     uint64 `json:"summary_hits,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// StatsDoc is the GET /v1/stats document — the daemon's own expvar-style
// counter surface (served on its own mux so several daemons coexist in
// one test process).
type StatsDoc struct {
	Schema string `json:"schema"`

	JobsAccepted     uint64 `json:"jobs_accepted"`
	JobsCompleted    uint64 `json:"jobs_completed"`
	JobsFailed       uint64 `json:"jobs_failed"`
	JobsTimedOut     uint64 `json:"jobs_timed_out"`
	JobsCheckpointed uint64 `json:"jobs_checkpointed"`
	JobsRejected     uint64 `json:"jobs_rejected"`
	JobsActive       int    `json:"jobs_active"`

	// Domain lifecycle: live intern-table size, rotations performed, and
	// how many retired domains the garbage collector has actually
	// reclaimed (process-wide — the leak test's signal).
	DomainNodes       int    `json:"domain_nodes"`
	DomainRefs        int64  `json:"domain_refs"`
	DomainsRotated    uint64 `json:"domains_rotated"`
	BuildersReclaimed uint64 `json:"builders_reclaimed"`
	SeededSummaries   int    `json:"seeded_summaries"`

	// Aggregate solver counters over finished jobs. WarmHits is the
	// persistent store's lookup-hit count: queries this process answered
	// from knowledge a previous run persisted.
	Queries         uint64 `json:"queries"`
	CacheHits       uint64 `json:"cache_hits"`
	SATCalls        uint64 `json:"sat_calls"`
	StableHits      uint64 `json:"stable_hits"`
	StableGroupHits uint64 `json:"stable_group_hits"`
	WarmHits        uint64 `json:"warm_hits"`

	Store *store.Stats `json:"store,omitempty"`
}

// ProgressDoc is the GET /v1/progress document: the fold of every
// in-flight job's live monitor.
type ProgressDoc struct {
	Schema string        `json:"schema"`
	Active int           `json:"active"`
	Jobs   []JobProgress `json:"jobs"`
}

// JobProgress is one in-flight job's live view.
type JobProgress struct {
	ID             uint64        `json:"id"`
	Label          string        `json:"label,omitempty"`
	Key            string        `json:"key,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Progress       symx.Progress `json:"progress"`
}

// corpusDigest hashes the canonical test set deterministically: tests are
// keyed by input hash, sorted, and folded with their observable behavior.
// Two runs with equal digests produced byte-identical corpora.
func corpusDigest(tests []symx.TestCase) string {
	lines := make([]string, len(tests))
	for i, tc := range tests {
		lines[i] = fmt.Sprintf("%s|%x|%d|%v|%s",
			corpus.InputID(tc.Args, tc.Stdin), tc.Output, tc.Exit, tc.IsErr, tc.Msg)
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// jobConfig lowers a request to a symx.Config (domain and context are
// attached by the handler).
func (s *Server) jobConfig(req *JobRequest) (symx.Config, error) {
	cfg := symx.Config{
		NArgs:        req.NArgs,
		ArgLen:       req.ArgLen,
		StdinLen:     req.StdinLen,
		Workers:      req.Workers,
		Summaries:    req.Summaries,
		MaxSteps:     req.MaxSteps,
		CollectTests: true,
	}
	cfg.CanonicalTests = true
	// Uncap the canonical set: the corpus digest must cover every test,
	// not an order-dependent 256-test prefix of them.
	cfg.MaxTests = 1 << 20
	if cfg.NArgs == 0 && cfg.StdinLen == 0 {
		cfg.NArgs = 2
	}
	if cfg.NArgs > 0 && cfg.ArgLen == 0 {
		cfg.ArgLen = 2
	}
	switch req.Merge {
	case "", "dsm":
		cfg.Merge = symx.MergeDSM
	case "none":
		cfg.Merge = symx.MergeNone
	case "ssm":
		cfg.Merge = symx.MergeSSM
	case "func":
		cfg.Merge = symx.MergeFunc
	default:
		return cfg, fmt.Errorf("unknown merge mode %q (none|ssm|dsm|func)", req.Merge)
	}
	if req.QCE != nil {
		cfg.UseQCE = *req.QCE
	} else {
		cfg.UseQCE = cfg.Merge != symx.MergeNone
	}
	if cfg.Merge != symx.MergeNone {
		cfg.TrackExactPaths = true
	}
	if dir := s.checkpointDirFor(req.Key); dir != "" {
		cfg.CheckpointDir = dir
		cfg.CheckpointEvery = s.opts.CheckpointEvery
		cfg.Resume = req.Resume
	}
	return cfg, nil
}

// writeJSONError terminates a request with a one-line error document
// before any streaming started.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(Event{Event: "error", Error: msg})
}

// handleJobs is POST /v1/jobs: compile, queue on the job semaphore, run
// under the per-job deadline inside the shared domain, and stream
// accepted/test/result events as JSON lines.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.jobsRejected.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Source == "" {
		writeJSONError(w, http.StatusBadRequest, "empty source")
		return
	}
	p, err := symx.Compile(req.Source)
	if err != nil {
		s.jobsFailed.Add(1)
		writeJSONError(w, http.StatusBadRequest, "compile: "+err.Error())
		return
	}
	cfg, err := s.jobConfig(&req)
	if err != nil {
		s.jobsFailed.Add(1)
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Queue: a slot, the client giving up, or a drain — whichever first.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		return
	case <-s.jobsCtx.Done():
		s.jobsRejected.Add(1)
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}

	id := s.nextID.Add(1)
	s.jobsAccepted.Add(1)

	// Per-job deadline under the drain context: a drain cancels the job
	// early; its own timeout otherwise.
	timeout := s.opts.DefaultTimeout
	if req.TimeoutSec > 0 {
		timeout = time.Duration(req.TimeoutSec * float64(time.Second))
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(s.jobsCtx, timeout)
	defer cancel()
	cfg.Context = ctx

	mon := symx.NewMonitor()
	cfg.Monitor = mon
	unregister := s.registerJob(&jobInfo{ID: id, Label: req.Label, Key: req.Key,
		Started: time.Now(), Mon: mon})
	defer unregister()

	dom := s.acquireDomain()
	cfg.Domain = dom

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(Event{Event: "accepted", ID: id})

	res := symx.Run(p, cfg)
	dom.Release()
	s.maybeRotate()

	if res.ConfigErr != nil {
		s.jobsFailed.Add(1)
		emit(Event{Event: "error", ID: id, Error: "config: " + res.ConfigErr.Error()})
		return
	}

	s.jobsCompleted.Add(1)
	s.queries.Add(res.Stats.Solver.Queries)
	s.cexCacheHits.Add(res.Stats.Solver.CacheHits)
	s.satCalls.Add(res.Stats.Solver.SATCalls)
	s.stableHits.Add(res.Stats.Solver.StableHits)
	s.stableGroupHits.Add(res.Stats.Solver.StableGroupHits)

	checkpointed := res.Interrupted == symx.IntrCheckpoint && res.CheckpointErr == nil
	if checkpointed {
		s.jobsCheckpointed.Add(1)
	}
	// The job's own deadline fired iff its context expired while the
	// daemon-wide drain context did not.
	timedOut := !res.Completed && ctx.Err() != nil && s.jobsCtx.Err() == nil
	if timedOut {
		s.jobsTimedOut.Add(1)
	}

	if req.Tests {
		for _, tc := range res.Tests {
			args := make([]string, len(tc.Args))
			for i, a := range tc.Args {
				args[i] = string(a)
			}
			emit(Event{Event: "test", ID: id, Args: args, Stdin: string(tc.Stdin),
				Output: string(tc.Output), Exit: tc.Exit, IsErr: tc.IsErr, Msg: tc.Msg})
		}
	}

	emit(Event{Event: "result", ID: id, JobResult: &JobResult{
		Completed:       res.Completed,
		Interrupted:     res.Interrupted.String(),
		Checkpointed:    checkpointed,
		TimedOut:        timedOut,
		Paths:           res.Stats.PathsMult.String(),
		ExactPaths:      res.Stats.ExactPaths,
		ErrorsFound:     res.Stats.ErrorsFound,
		Coverage:        res.Stats.Coverage(),
		Steps:           res.Stats.Steps,
		Tests:           len(res.Tests),
		CorpusDigest:    corpusDigest(res.Tests),
		Queries:         res.Stats.Solver.Queries,
		CacheHits:       res.Stats.Solver.CacheHits,
		SATCalls:        res.Stats.Solver.SATCalls,
		StableHits:      res.Stats.Solver.StableHits,
		StableGroupHits: res.Stats.Solver.StableGroupHits,
		SummaryHits:     res.Stats.SummaryHits,
		ElapsedSeconds:  res.Stats.ElapsedSeconds,
	}})
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	doc := StatsDoc{
		Schema:          StatsSchema,
		JobsActive:      len(s.jobs),
		DomainNodes:     s.dom.NumNodes(),
		DomainRefs:      s.dom.Refs(),
		SeededSummaries: s.dom.SeededSummaries,
	}
	s.mu.Unlock()
	doc.JobsAccepted = s.jobsAccepted.Load()
	doc.JobsCompleted = s.jobsCompleted.Load()
	doc.JobsFailed = s.jobsFailed.Load()
	doc.JobsTimedOut = s.jobsTimedOut.Load()
	doc.JobsCheckpointed = s.jobsCheckpointed.Load()
	doc.JobsRejected = s.jobsRejected.Load()
	doc.DomainsRotated = s.domainsRotated.Load()
	doc.BuildersReclaimed = symx.DomainsReclaimed()
	doc.Queries = s.queries.Load()
	doc.CacheHits = s.cexCacheHits.Load()
	doc.SATCalls = s.satCalls.Load()
	doc.StableHits = s.stableHits.Load()
	doc.StableGroupHits = s.stableGroupHits.Load()
	if s.st != nil {
		st := s.st.Stats()
		doc.Store = &st
		doc.WarmHits = st.LookupHits
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// handleProgress is GET /v1/progress.
func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	infos := make([]*jobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		infos = append(infos, j)
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	doc := ProgressDoc{Schema: ProgressSchema, Active: len(infos), Jobs: []JobProgress{}}
	for _, j := range infos {
		doc.Jobs = append(doc.Jobs, JobProgress{
			ID: j.ID, Label: j.Label, Key: j.Key,
			ElapsedSeconds: time.Since(j.Started).Seconds(),
			Progress:       j.Mon.Progress(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
