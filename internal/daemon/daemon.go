// Package daemon implements symxd, the long-lived symbolic-execution
// service behind cmd/symxd. It accepts MiniC programs over HTTP, runs each
// as one symx exploration job under a per-job deadline, and streams the
// result — census, solver counters, and the canonical corpus entries — back
// as JSON lines.
//
// What makes the daemon more than a loop around symx.Run is the shared
// symx.Domain: every job interns expressions into one builder and shares
// the counterexample and summary caches, optionally backed by a persistent
// internal/store directory so knowledge survives restarts. Two disciplines
// keep that sound and bounded:
//
//   - Soundness: the domain only ever carries completed solver verdicts and
//     validated summaries, so a warm daemon produces byte-identical corpus
//     digests to a cold one (pinned by symx's differential tests). Nothing
//     a job observes depends on which jobs ran before it.
//
//   - Boundedness: the builder's intern table and the fingerprint memo only
//     grow. Once the table passes Options.RotateNodes and no job holds the
//     domain, the daemon flushes it to the store and rotates to a fresh
//     domain rehydrated from disk; the retired builder, caches, and memo
//     become garbage at that instant. symx.DomainsReclaimed (served as
//     builders_reclaimed in /v1/stats) proves the collector actually frees
//     them — the leak test drives a sustained submit loop and watches both
//     that counter and the live node count.
//
// Graceful drain: Drain stops admitting jobs, cancels the in-flight ones,
// and waits for them. Jobs submitted with a "key" run under a per-key
// checkpoint directory, so cancellation lands them as resumable snapshots
// (symx IntrCheckpoint) instead of lost work; resubmitting the same key
// with "resume" continues where the drain preempted them.
package daemon

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"symmerge/internal/store"
	"symmerge/symx"
)

// Options configures a Server. The zero value listens on a random
// localhost port with an in-memory domain and no checkpointing.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string

	// StoreDir, when non-empty, backs the domain with a persistent store
	// at that directory: counterexample verdicts, blasted-group verdicts,
	// and function summaries survive daemon restarts.
	StoreDir string
	// StoreTag is the engine canonical-form generation recorded in
	// persisted segments (default store.DefaultTag).
	StoreTag string

	// CheckpointDir, when non-empty, is the root under which jobs
	// submitted with a key get per-key checkpoint directories, making
	// them drain-safe and resumable.
	CheckpointDir string
	// CheckpointEvery is the per-job snapshot interval (default 2s — a
	// daemon job should lose little work to a drain).
	CheckpointEvery time.Duration

	// MaxJobs bounds concurrently running jobs (default 2); further
	// submissions queue on the semaphore.
	MaxJobs int
	// DefaultTimeout applies to jobs that do not set one (default 60s);
	// MaxTimeout caps what a job may request (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// RotateNodes is the builder intern-table watermark above which the
	// daemon rotates to a fresh domain between jobs (default 1<<20 nodes;
	// negative disables rotation).
	RotateNodes int
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.StoreTag == "" {
		o.StoreTag = store.DefaultTag
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 2 * time.Second
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 2
	}
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.RotateNodes == 0 {
		o.RotateNodes = 1 << 20
	}
}

// jobInfo is the live-registry entry behind /v1/progress.
type jobInfo struct {
	ID      uint64
	Label   string
	Key     string
	Started time.Time
	Mon     *symx.Monitor
}

// Server is the symxd HTTP service. Create with New, start with Start,
// stop with Drain (graceful) or Close (Drain with a short grace period).
type Server struct {
	opts Options
	st   *store.Store

	ln   net.Listener
	http *http.Server

	// jobsCtx parents every job's context; drainAll cancels it so
	// in-flight jobs checkpoint and return.
	jobsCtx  context.Context
	drainAll context.CancelFunc
	draining atomic.Bool

	sem chan struct{}

	mu   sync.Mutex
	dom  *symx.Domain
	jobs map[uint64]*jobInfo

	nextID atomic.Uint64

	// Counters served at /v1/stats.
	jobsAccepted     atomic.Uint64
	jobsCompleted    atomic.Uint64
	jobsFailed       atomic.Uint64 // compile/config refusals
	jobsTimedOut     atomic.Uint64
	jobsCheckpointed atomic.Uint64
	jobsRejected     atomic.Uint64 // refused because draining
	domainsRotated   atomic.Uint64
	stableHits       atomic.Uint64 // Σ solver whole-query stable hits
	stableGroupHits  atomic.Uint64 // Σ solver group-level stable hits
	cexCacheHits     atomic.Uint64 // Σ in-process cex cache hits
	satCalls         atomic.Uint64
	queries          atomic.Uint64
}

// New builds a server: opens (or refuses) the persistent store and seeds
// the first domain from it. The listener is not bound until Start.
func New(opts Options) (*Server, error) {
	opts.fill()
	s := &Server{opts: opts, jobs: make(map[uint64]*jobInfo)}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir, store.Options{Tag: opts.StoreTag})
		if err != nil {
			return nil, fmt.Errorf("daemon: store: %w", err)
		}
		s.st = st
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("daemon: checkpoint dir: %w", err)
		}
	}
	s.dom = symx.NewDomain(s.st)
	s.sem = make(chan struct{}, opts.MaxJobs)
	s.jobsCtx, s.drainAll = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/progress", s.handleProgress)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: mux}
	return s, nil
}

// Start binds the listen address and serves in the background. Binding
// failures are synchronous so a typo'd address fails startup, not the
// first request.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("daemon: listen: %w", err)
	}
	s.ln = ln
	go s.http.Serve(ln)
	return nil
}

// Addr reports the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain performs the SIGTERM shutdown: stop admitting jobs, cancel the
// in-flight ones (checkpoint-keyed jobs snapshot and report resumable),
// wait for the handlers to finish streaming their results within ctx, then
// flush the domain to the persistent store. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainAll()
	// Shutdown waits for active requests — i.e. for every job handler to
	// observe its cancelled context, checkpoint, and write its final event.
	err := s.http.Shutdown(ctx)
	s.mu.Lock()
	dom := s.dom
	s.mu.Unlock()
	if dom != nil {
		if _, ferr := dom.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// Close is Drain with a 10s grace period, for defer-style teardown.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// acquireDomain hands the caller the current domain with a reference
// held; the caller must Release it when the job ends.
func (s *Server) acquireDomain() *symx.Domain {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dom.Acquire()
	return s.dom
}

// maybeRotate retires the current domain once the intern table passes the
// watermark and no job holds it: flush to the store, swap in a fresh
// domain rehydrated from disk, and drop the old pointer — the builder, its
// memo, and both caches become garbage here. Called after each job.
func (s *Server) maybeRotate() {
	if s.opts.RotateNodes < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dom.NumNodes() < s.opts.RotateNodes || s.dom.Refs() != 0 {
		return
	}
	// Refs()==0 under s.mu means no job holds the domain and none can
	// acquire it concurrently (acquireDomain also locks s.mu).
	old := s.dom
	if s.st != nil {
		old.Flush() // best-effort: rotation must not fail the daemon
	}
	s.dom = symx.NewDomain(s.st)
	s.domainsRotated.Add(1)
}

// registerJob adds a job to the live registry; the returned func removes it.
func (s *Server) registerJob(info *jobInfo) func() {
	s.mu.Lock()
	s.jobs[info.ID] = info
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.jobs, info.ID)
		s.mu.Unlock()
	}
}

// checkpointDirFor maps a job key to its stable per-key snapshot
// directory, or "" when checkpointing is off. Keys are flattened to a
// filesystem-safe alphabet so a hostile key cannot escape the root.
func (s *Server) checkpointDirFor(key string) string {
	if key == "" || s.opts.CheckpointDir == "" {
		return ""
	}
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, key)
	if safe == "" || strings.Trim(safe, ".") == "" {
		safe = "job"
	}
	return filepath.Join(s.opts.CheckpointDir, safe)
}
