package daemon

// The builder-collection leak test (run under -race in CI): a sustained
// submit loop against a daemon with a tiny rotation watermark must keep
// the live intern table bounded, and the retired domains — builder,
// hash-cons buckets, fingerprint memo, caches — must be demonstrably
// reclaimed by the garbage collector, observed through the same
// builders_reclaimed counter /v1/stats serves. Without rotation (or with
// a rotation that secretly retains the old builder) an assertion fails:
// nodes grow without bound, or the reclaim counter never moves. Each job
// submits a slightly different program — identical programs hash-cons
// into the same nodes and would never grow the table past the watermark.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"symmerge/symx"
)

// variedSrc generates the i-th job's program: same shape, different
// constants, so every job interns fresh expression nodes.
func variedSrc(i int) string {
	return fmt.Sprintf(`
void main() {
    int total = %d;
    byte c = argchar(1, 0);
    if (c > 'a') { total = total + %d; }
    if (c > 'm') { total = total + 2; }
    byte d = argchar(1, 1);
    if (d == c) { total = total + %d; }
    putchar(tobyte('0' + total %% 10));
}
`, i*7, i+1, i%5+3)
}

func TestDomainRotationBoundsBuilderGrowth(t *testing.T) {
	const watermark = 150 // below two varied jobs' worth of interning
	s := startServer(t, Options{
		MaxJobs:     1,
		StoreDir:    t.TempDir(),
		RotateNodes: watermark,
	})

	// Baseline: the first job tells us how many nodes one run interns, so
	// the growth bound below is principled rather than a magic constant.
	if res := resultOf(t, submit(t, s.Addr(), JobRequest{
		Source: variedSrc(0), Merge: "dsm", Summaries: true,
	})); !res.Completed {
		t.Fatal("seed job incomplete")
	}
	perJob := getStats(t, s.Addr()).DomainNodes
	if perJob == 0 {
		t.Fatal("no nodes interned by a real job")
	}
	// A domain rotates as soon as a job leaves it past the watermark, so
	// the live table never exceeds the watermark plus one job's growth —
	// with cushion for what store rehydration interns into fresh domains.
	bound := watermark + 4*perJob

	reclaimedBefore := symx.DomainsReclaimed()
	const jobs = 12
	for i := 1; i <= jobs; i++ {
		if res := resultOf(t, submit(t, s.Addr(), JobRequest{
			Source: variedSrc(i), Merge: "dsm", Summaries: true,
		})); !res.Completed {
			t.Fatalf("job %d incomplete", i)
		}
		if nodes := getStats(t, s.Addr()).DomainNodes; nodes > bound {
			t.Fatalf("job %d: live intern table %d nodes exceeds bound %d — rotation is not bounding growth",
				i, nodes, bound)
		}
	}
	doc := getStats(t, s.Addr())
	if doc.DomainsRotated == 0 {
		t.Fatal("sustained load never rotated the domain")
	}
	if doc.JobsCompleted != jobs+1 {
		t.Errorf("jobs_completed=%d want %d", doc.JobsCompleted, jobs+1)
	}
	// The persistent store stays bounded too: every rotation flushes, and
	// compaction must keep the segment count at the compaction threshold
	// (+1 for the freshly written segment), not one file per flush.
	if doc.Store == nil {
		t.Fatal("store-backed daemon reports no store stats")
	}
	if doc.Store.Segments > 9 {
		t.Errorf("store grew to %d segments under sustained flushes — compaction is not running",
			doc.Store.Segments)
	}

	// The rotated-out domains must be collectible: nothing in the daemon
	// (job registry, monitors, store) may retain them. Finalizers need a
	// couple of GC cycles to run, so poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for symx.DomainsReclaimed() == reclaimedBefore {
		if time.Now().After(deadline) {
			t.Fatalf("GC reclaimed no retired domain after %d rotations — a reference is leaking",
				doc.DomainsRotated)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if got := getStats(t, s.Addr()).BuildersReclaimed; got == 0 {
		t.Error("stats endpoint does not surface builders_reclaimed")
	}

	// Rotation must not have cost correctness: the same program re-run in
	// whatever domain is now live still completes and agrees with itself.
	a := resultOf(t, submit(t, s.Addr(), JobRequest{Source: variedSrc(3), Merge: "dsm", Summaries: true}))
	b := resultOf(t, submit(t, s.Addr(), JobRequest{Source: variedSrc(3), Merge: "dsm", Summaries: true}))
	if !a.Completed || !b.Completed || a.CorpusDigest != b.CorpusDigest {
		t.Errorf("post-rotation runs disagree: %v/%v %s vs %s",
			a.Completed, b.Completed, a.CorpusDigest, b.CorpusDigest)
	}
}
