// Package cfg computes control-flow structure over the ir representation:
// basic blocks, reverse postorder, natural loops with static trip-count
// detection, topological ranks for the static-state-merging exploration
// order, and the interprocedural call graph with a bottom-up SCC order used
// by the compositional QCE analysis.
package cfg

import (
	"sort"

	"symmerge/internal/ir"
)

// Block is a maximal straight-line sequence of instructions.
type Block struct {
	Index int // block index in the function CFG
	Start int // first instruction PC
	End   int // one past the last instruction PC
	Succs []int
	Preds []int
}

// FuncCFG is the control-flow graph of one function.
type FuncCFG struct {
	Fn        *ir.Func
	Blocks    []*Block
	BlockOf   []int // PC -> block index
	RPO       []int // block indices in reverse postorder from entry
	RPOIndex  []int // block index -> position in RPO (topological rank)
	BackEdges []Edge
	Loops     []*Loop
	LoopOf    []int // block index -> innermost loop index, -1 if none
}

// Edge is a CFG edge between blocks.
type Edge struct{ From, To int }

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header    int          // header block index
	Body      map[int]bool // block indices, header included
	TripCount int          // statically known trip count, 0 if unknown

	// Counted-loop shape, filled when TripCount != 0 (the canonical
	// `condbr (cmp i, C)` header detectTripCount recognizes); dataflow
	// analyses reuse it for interval refinement and full-overwrite
	// array kills. IVar is -1 when the shape was not recognized.
	IVar  int   // induction variable local index
	Init  int64 // constant initial value reaching the header
	Step  int64 // constant increment per iteration
	Bound int64 // comparison bound C
	CmpOp ir.Op // OpLt, OpLe or OpNe
}

// Build computes the CFG for a function.
func Build(fn *ir.Func) *FuncCFG {
	n := len(fn.Instrs)
	if n == 0 {
		return &FuncCFG{Fn: fn}
	}
	// Find leaders.
	leader := make([]bool, n)
	leader[0] = true
	var scratch []int
	for pc := range fn.Instrs {
		in := &fn.Instrs[pc]
		if in.IsTerminator() {
			scratch = in.Successors(pc, scratch[:0])
			for _, s := range scratch {
				if s < n {
					leader[s] = true
				}
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	g := &FuncCFG{Fn: fn, BlockOf: make([]int, n)}
	for pc := 0; pc < n; {
		end := pc + 1
		for end < n && !leader[end] && !fn.Instrs[end-1].IsTerminator() {
			end++
		}
		// A block ends at its first terminator or just before the next leader.
		for e := pc; e < end; e++ {
			if fn.Instrs[e].IsTerminator() {
				end = e + 1
				break
			}
		}
		b := &Block{Index: len(g.Blocks), Start: pc, End: end}
		g.Blocks = append(g.Blocks, b)
		for i := pc; i < end; i++ {
			g.BlockOf[i] = b.Index
		}
		pc = end
	}
	// Successor edges.
	for _, b := range g.Blocks {
		last := &fn.Instrs[b.End-1]
		scratch = last.Successors(b.End-1, scratch[:0])
		if !last.IsTerminator() && b.End < n {
			scratch = append(scratch[:0], b.End)
		}
		seen := map[int]bool{}
		for _, s := range scratch {
			if s >= n {
				continue
			}
			sb := g.BlockOf[s]
			if !seen[sb] {
				seen[sb] = true
				b.Succs = append(b.Succs, sb)
			}
		}
		sort.Ints(b.Succs)
		for _, sb := range b.Succs {
			g.Blocks[sb].Preds = append(g.Blocks[sb].Preds, b.Index)
		}
	}
	g.computeRPO()
	g.findLoops()
	return g
}

func (g *FuncCFG) computeRPO() {
	nb := len(g.Blocks)
	visited := make([]bool, nb)
	post := make([]int, 0, nb)
	var dfs func(int)
	dfs = func(b int) {
		visited[b] = true
		// Visit successors in descending block order so that the
		// compiler's fall-through layout (loop body before loop exit)
		// ends up with the body *earlier* in reverse postorder; this
		// keeps TopoRank a true topological order on the acyclic part
		// with in-loop code ranked before the code after the loop.
		succs := g.Blocks[b].Succs
		for i := len(succs) - 1; i >= 0; i-- {
			if s := succs[i]; !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if nb > 0 {
		dfs(0)
	}
	// Unreachable blocks go last, in index order.
	for b := 0; b < nb; b++ {
		if !visited[b] {
			post = append([]int{b}, post...)
		}
	}
	g.RPO = make([]int, len(post))
	g.RPOIndex = make([]int, nb)
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range g.RPO {
		g.RPOIndex[b] = i
	}
}

// findLoops detects back edges (edge u->h where h's RPO rank ≤ u's and h
// dominates u approximately via natural-loop construction) and builds
// natural loops. For reducible graphs produced by the MiniC compiler this
// matches classic natural loops.
func (g *FuncCFG) findLoops() {
	nb := len(g.Blocks)
	g.LoopOf = make([]int, nb)
	for i := range g.LoopOf {
		g.LoopOf[i] = -1
	}
	dom := g.dominators()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if dominates(dom, s, b.Index) {
				g.BackEdges = append(g.BackEdges, Edge{From: b.Index, To: s})
			}
		}
	}
	for _, e := range g.BackEdges {
		l := &Loop{Header: e.To, Body: map[int]bool{e.To: true}}
		// Walk predecessors from the latch up to the header.
		stack := []int{e.From}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.Body[x] {
				continue
			}
			l.Body[x] = true
			for _, p := range g.Blocks[x].Preds {
				stack = append(stack, p)
			}
		}
		l.IVar = -1
		l.TripCount = g.detectTripCount(l)
		idx := len(g.Loops)
		g.Loops = append(g.Loops, l)
		for b := range l.Body {
			// Inner loops (smaller bodies) win.
			if g.LoopOf[b] == -1 || len(g.Loops[g.LoopOf[b]].Body) > len(l.Body) {
				g.LoopOf[b] = idx
			}
		}
	}
}

// dominators computes the dominator sets with the classic iterative
// algorithm (bitset-free; functions are small).
func (g *FuncCFG) dominators() []map[int]bool {
	nb := len(g.Blocks)
	dom := make([]map[int]bool, nb)
	all := map[int]bool{}
	for i := 0; i < nb; i++ {
		all[i] = true
	}
	for i := range dom {
		if i == 0 {
			dom[i] = map[int]bool{0: true}
		} else {
			cp := map[int]bool{}
			for k := range all {
				cp[k] = true
			}
			dom[i] = cp
		}
	}
	changed := true
	for changed {
		changed = false
		for _, bi := range g.RPO {
			if bi == 0 {
				continue
			}
			b := g.Blocks[bi]
			var inter map[int]bool
			for _, p := range b.Preds {
				if inter == nil {
					inter = map[int]bool{}
					for k := range dom[p] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[int]bool{}
			}
			inter[bi] = true
			if len(inter) != len(dom[bi]) {
				dom[bi] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[bi][k] {
					dom[bi] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

func dominates(dom []map[int]bool, a, b int) bool { return dom[b][a] }

// detectTripCount recognizes the canonical counted loop emitted by the MiniC
// compiler: a header block whose terminator is `condbr (lt i, C) body exit`
// with a single in-loop store to i of the form `i = i + 1` and an initial
// constant assignment reaching the header from outside. Returns 0 when the
// trip count is not statically evident.
func (g *FuncCFG) detectTripCount(l *Loop) int {
	fn := g.Fn
	hdr := g.Blocks[l.Header]
	term := &fn.Instrs[hdr.End-1]
	if term.Op != ir.OpCondBr || term.A.IsConst {
		return 0
	}
	condReg := term.A.Local
	// Find the comparison defining condReg inside the header block.
	var cmp *ir.Instr
	for pc := hdr.Start; pc < hdr.End-1; pc++ {
		in := &fn.Instrs[pc]
		if in.Dst == condReg && (in.Op == ir.OpLt || in.Op == ir.OpLe || in.Op == ir.OpNe) {
			cmp = in
		}
	}
	if cmp == nil || cmp.A.IsConst || !cmp.B.IsConst {
		return 0
	}
	ivar := cmp.A.Local
	bound := cmp.B.Const
	// The induction variable must be incremented by a constant exactly
	// once in the loop and never otherwise written inside the loop.
	step := int64(0)
	writes := 0
	for bi := range l.Body {
		b := g.Blocks[bi]
		for pc := b.Start; pc < b.End; pc++ {
			in := &fn.Instrs[pc]
			if in.Dst != ivar {
				continue
			}
			if bi == l.Header && in == cmp {
				continue
			}
			writes++
			if in.Op == ir.OpAdd && !in.A.IsConst && in.A.Local == ivar && in.B.IsConst {
				step = in.B.Const
			}
		}
	}
	if writes != 1 || step <= 0 {
		return 0
	}
	// Find a constant initialization dominating the loop: scan backwards
	// from the header start in the straight-line prefix.
	init, found := int64(0), false
	for pc := hdr.Start - 1; pc >= 0; pc-- {
		in := &fn.Instrs[pc]
		if in.Dst == ivar {
			if in.Op == ir.OpMov && in.A.IsConst {
				init, found = in.A.Const, true
			}
			break
		}
		if in.IsTerminator() {
			break
		}
	}
	if !found {
		return 0
	}
	var trips int64
	switch cmp.Op {
	case ir.OpLt:
		trips = (bound - init + step - 1) / step
	case ir.OpLe:
		trips = (bound - init + step) / step
	case ir.OpNe:
		if (bound-init)%step != 0 {
			return 0
		}
		trips = (bound - init) / step
	}
	if trips <= 0 || trips > 1<<20 {
		return 0
	}
	l.IVar, l.Init, l.Step, l.Bound, l.CmpOp = ivar, init, step, bound, cmp.Op
	return int(trips)
}

// --- Call graph ---

// CallGraph holds per-function callee lists and a bottom-up traversal order.
type CallGraph struct {
	Callees  [][]int // function index -> callee indices (deduplicated)
	BottomUp []int   // function indices, callees before callers (SCCs broken arbitrarily)
	InCycle  []bool  // function participates in a recursion cycle
}

// BuildCallGraph computes the call graph of a program.
func BuildCallGraph(p *ir.Program) *CallGraph {
	n := len(p.Funcs)
	cg := &CallGraph{Callees: make([][]int, n), InCycle: make([]bool, n)}
	for i, f := range p.Funcs {
		seen := map[int]bool{}
		for pc := range f.Instrs {
			in := &f.Instrs[pc]
			if in.Op == ir.OpCall && !seen[in.Callee] {
				seen[in.Callee] = true
				cg.Callees[i] = append(cg.Callees[i], in.Callee)
			}
		}
		sort.Ints(cg.Callees[i])
	}
	// Tarjan SCC to find recursion and produce bottom-up order.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var sccs [][]int
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range cg.Callees[v] {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	// Tarjan emits SCCs in reverse topological order of the condensation,
	// i.e. callees' SCCs before callers': exactly bottom-up.
	for _, scc := range sccs {
		if len(scc) > 1 {
			for _, v := range scc {
				cg.InCycle[v] = true
			}
		} else {
			v := scc[0]
			for _, w := range cg.Callees[v] {
				if w == v {
					cg.InCycle[v] = true
				}
			}
		}
		cg.BottomUp = append(cg.BottomUp, scc...)
	}
	return cg
}

// TopoRank returns a global topological rank for a location, used by the
// static-state-merging strategy to pick states in CFG topological order:
// earlier blocks in RPO come first; within a block, instruction order.
func (g *FuncCFG) TopoRank(pc int) int {
	if len(g.Blocks) == 0 {
		return pc
	}
	b := g.BlockOf[pc]
	return g.RPOIndex[b]<<16 | (pc - g.Blocks[b].Start)
}
