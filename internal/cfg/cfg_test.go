package cfg_test

import (
	"testing"

	"symmerge/internal/cfg"
	"symmerge/internal/ir"
	"symmerge/internal/lang"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStraightLine(t *testing.T) {
	p := compile(t, `void main() { int x = 1; int y = x + 2; putchar(tobyte(y)); }`)
	g := cfg.Build(p.Main)
	if len(g.Blocks) != 1 {
		t.Fatalf("straight-line function has %d blocks, want 1", len(g.Blocks))
	}
	if len(g.Loops) != 0 || len(g.BackEdges) != 0 {
		t.Fatalf("unexpected loops %d / back edges %d", len(g.Loops), len(g.BackEdges))
	}
}

func TestIfElseDiamond(t *testing.T) {
	p := compile(t, `
void main() {
    int x = sym_int();
    int y = 0;
    if (x > 0) { y = 1; } else { y = 2; }
    putchar(tobyte(y));
}
`)
	g := cfg.Build(p.Main)
	// entry, then-branch, else-branch, join = at least 4 blocks.
	if len(g.Blocks) < 4 {
		t.Fatalf("diamond has %d blocks, want >= 4", len(g.Blocks))
	}
	if len(g.Loops) != 0 {
		t.Fatal("diamond misdetected as loop")
	}
	// RPO must start at the entry block.
	if g.RPO[0] != 0 {
		t.Fatalf("RPO starts at block %d, want 0", g.RPO[0])
	}
	// Every non-entry block must have a predecessor.
	for _, b := range g.Blocks[1:] {
		if len(b.Preds) == 0 {
			t.Fatalf("block %d unreachable", b.Index)
		}
	}
}

func TestCountedLoopTripCount(t *testing.T) {
	p := compile(t, `
void main() {
    int s = 0;
    for (int i = 0; i < 7; i++) {
        s += i;
    }
    putchar(tobyte(s));
}
`)
	g := cfg.Build(p.Main)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	if tc := g.Loops[0].TripCount; tc != 7 {
		t.Fatalf("trip count %d, want 7", tc)
	}
}

func TestSymbolicBoundNoTripCount(t *testing.T) {
	p := compile(t, `
void main() {
    int n = sym_int();
    for (int i = 0; i < n; i++) {
        putchar('x');
    }
}
`)
	g := cfg.Build(p.Main)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	if tc := g.Loops[0].TripCount; tc != 0 {
		t.Fatalf("trip count %d for symbolic bound, want 0 (unknown)", tc)
	}
}

func TestNestedLoops(t *testing.T) {
	p := compile(t, `
void main() {
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) {
            putchar('x');
        }
    }
}
`)
	g := cfg.Build(p.Main)
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	// One loop's body must contain the other's header.
	var inner, outer *cfg.Loop
	if len(g.Loops[0].Body) < len(g.Loops[1].Body) {
		inner, outer = g.Loops[0], g.Loops[1]
	} else {
		inner, outer = g.Loops[1], g.Loops[0]
	}
	if !outer.Body[inner.Header] {
		t.Fatal("inner loop header not inside outer loop body")
	}
	if inner.TripCount != 4 || outer.TripCount != 3 {
		t.Fatalf("trip counts inner=%d outer=%d, want 4 and 3",
			inner.TripCount, outer.TripCount)
	}
}

func TestWhileLoopDetected(t *testing.T) {
	p := compile(t, `
void main() {
    int i = 0;
    while (i < 5) {
        i++;
    }
}
`)
	g := cfg.Build(p.Main)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
}

func TestTopoRankMonotonicOnStraightLine(t *testing.T) {
	p := compile(t, `void main() { int x = 1; if (x > 0) { x = 2; } putchar(tobyte(x)); }`)
	g := cfg.Build(p.Main)
	// The entry instruction must have the smallest rank; the final
	// instruction (join) the largest among its block's start.
	first := g.TopoRank(0)
	last := g.TopoRank(len(p.Main.Instrs) - 1)
	if first >= last {
		t.Fatalf("rank(entry)=%d >= rank(exit)=%d", first, last)
	}
}

func TestCallGraphBottomUp(t *testing.T) {
	p := compile(t, `
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) * 2; }
void main() { putchar(tobyte(mid(1))); }
`)
	cg := cfg.BuildCallGraph(p)
	pos := map[int]int{}
	for i, f := range cg.BottomUp {
		pos[f] = i
	}
	leaf := p.ByName["leaf"].Index
	mid := p.ByName["mid"].Index
	main := p.Main.Index
	if !(pos[leaf] < pos[mid] && pos[mid] < pos[main]) {
		t.Fatalf("bottom-up order wrong: leaf=%d mid=%d main=%d",
			pos[leaf], pos[mid], pos[main])
	}
	for _, f := range []int{leaf, mid, main} {
		if cg.InCycle[f] {
			t.Fatalf("function %d misdetected as recursive", f)
		}
	}
}

func TestCallGraphMutualRecursion(t *testing.T) {
	p := compile(t, `
int f(int n) { if (n <= 0) { return 0; } return g(n - 1); }
int g(int n) { return f(n); }
void main() { putchar(tobyte(f(3))); }
`)
	cg := cfg.BuildCallGraph(p)
	f := p.ByName["f"].Index
	g := p.ByName["g"].Index
	if !cg.InCycle[f] || !cg.InCycle[g] {
		t.Fatal("mutual recursion not detected")
	}
	if cg.InCycle[p.Main.Index] {
		t.Fatal("main misdetected as recursive")
	}
}

func TestSelfRecursionDetected(t *testing.T) {
	p := compile(t, `
int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }
void main() { putchar(tobyte(f(3))); }
`)
	cg := cfg.BuildCallGraph(p)
	if !cg.InCycle[p.ByName["f"].Index] {
		t.Fatal("self recursion not detected")
	}
}
