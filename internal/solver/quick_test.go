package solver

// Property-based tests with testing/quick: the bit-blasted solver must
// agree with concrete arithmetic on pinned inputs and always return models
// that satisfy the constraints.

import (
	"testing"
	"testing/quick"

	"symmerge/internal/expr"
)

func TestQuickPinnedArithmetic(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	s := New(Options{})
	f := func(xv, yv uint16) bool {
		// x = xv ∧ y = yv ∧ x+y = (xv+yv mod 2^16) must be sat;
		// replacing the sum with a wrong value must be unsat.
		sum := b.Add(x, y)
		good := []*expr.Expr{
			b.Eq(x, b.Const(uint64(xv), 16)),
			b.Eq(y, b.Const(uint64(yv), 16)),
			b.Eq(sum, b.Const(uint64(xv+yv), 16)),
		}
		ok, m, err := s.CheckSat(good)
		if err != nil || !ok {
			return false
		}
		if m[x] != uint64(xv) || m[y] != uint64(yv) {
			return false
		}
		bad := []*expr.Expr{
			b.Eq(x, b.Const(uint64(xv), 16)),
			b.Eq(y, b.Const(uint64(yv), 16)),
			b.Eq(sum, b.Const(uint64(xv+yv)+1, 16)),
		}
		ok, _, err = s.CheckSat(bad)
		return err == nil && !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDivInverse(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 12)
	s := New(Options{})
	f := func(raw uint16) bool {
		v := uint64(raw) & 0xfff
		// (x * 3) udiv 3 == x whenever x*3 does not wrap: pick v small.
		v %= 1000
		cs := []*expr.Expr{
			b.Eq(x, b.Const(v, 12)),
			b.Eq(b.UDiv(b.Mul(x, b.Const(3, 12)), b.Const(3, 12)), b.Const(v, 12)),
		}
		ok, _, err := s.CheckSat(cs)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModelsSatisfyConstraints(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	s := New(DefaultOptions())
	f := func(lo, hi uint8, mask uint8) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		cs := []*expr.Expr{
			b.Uge(x, b.Const(uint64(lo), 8)),
			b.Ule(x, b.Const(uint64(hi), 8)),
			b.Eq(b.BAnd(y, b.Const(uint64(mask), 8)), b.Const(0, 8)),
		}
		ok, m, err := s.CheckSat(cs)
		if err != nil {
			return false
		}
		if !ok {
			return false // the range is always non-empty
		}
		env := expr.Env(m)
		for _, c := range cs {
			if !expr.EvalBool(c, env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnsatRanges(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	s := New(DefaultOptions())
	f := func(pivot uint8) bool {
		// x < p ∧ x >= p is always unsat.
		cs := []*expr.Expr{
			b.Ult(x, b.Const(uint64(pivot), 8)),
			b.Uge(x, b.Const(uint64(pivot), 8)),
		}
		ok, _, err := s.CheckSat(cs)
		return err == nil && !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
