package solver

// Micro-benchmarks for the bit-blasting frontend and the KLEE-style solver
// optimizations (counterexample cache, independence slicing, model reuse).

import (
	"testing"

	"symmerge/internal/expr"
)

// addersQuery builds x0 + x1 + ... + x(n-1) == target over 16-bit vars.
func addersQuery(b *expr.Builder, n int, target uint64) []*expr.Expr {
	sum := b.Const(0, 16)
	for i := 0; i < n; i++ {
		sum = b.Add(sum, b.Var("x"+string(rune('a'+i)), 16))
	}
	return []*expr.Expr{b.Eq(sum, b.Const(target, 16))}
}

func BenchmarkBlastAdderChain(b *testing.B) {
	eb := expr.NewBuilder()
	cs := addersQuery(eb, 6, 1234)
	for i := 0; i < b.N; i++ {
		s := New(Options{}) // fresh solver: no caching, pure blast+solve
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("adder chain: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkBlastIteChain(b *testing.B) {
	// A deep ite chain over one byte — the expression shape state merging
	// produces (the cost QCE exists to predict).
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	v := eb.Const(0, 8)
	for i := 0; i < 48; i++ {
		v = eb.Ite(eb.Eq(x, eb.Const(uint64(i), 8)), eb.Const(uint64(i*3), 8), v)
	}
	cs := []*expr.Expr{eb.Eq(v, eb.Const(60, 8))}
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("ite chain: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkCexCacheHitPath(b *testing.B) {
	// Repeated identical queries: after the first call everything is a
	// cache hit, measuring the lookup overhead the engine pays per branch.
	eb := expr.NewBuilder()
	s := New(DefaultOptions())
	cs := addersQuery(eb, 4, 99)
	if ok, _, err := s.CheckSat(cs); err != nil || !ok {
		b.Fatalf("warmup: ok=%v err=%v", ok, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, _ := s.CheckSat(cs); !ok {
			b.Fatal("cached query flipped")
		}
	}
}

// BenchmarkSessionVsOneShot measures the tentpole trade: a state exploring a
// path issues feasibility queries over an ever-growing prefix of dependent
// conjuncts (the engine's MayBeTrue pattern). The one-shot path re-blasts
// the whole prefix per query (O(n²) total encoding work); the session blasts
// each conjunct once and re-solves under assumptions (O(n) encoding work).
// Caches are disabled in both arms so the measurement isolates blasting +
// CDCL, matching the engine reality where every query along a path is
// distinct.
func BenchmarkSessionVsOneShot(b *testing.B) {
	const depth = 24
	eb := expr.NewBuilder()
	vars := make([]*expr.Expr, depth+1)
	for i := range vars {
		vars[i] = eb.Var("p"+string(rune('A'+i/26))+string(rune('a'+i%26)), 8)
	}
	// Dependent chain p0 < p1 < ... — connected, so independence slicing
	// could not split it on the one-shot path either.
	pc := make([]*expr.Expr, depth)
	for i := 0; i < depth; i++ {
		pc[i] = eb.Ult(vars[i], vars[i+1])
	}
	runPath := func(b *testing.B, useSession bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(Options{})
			var sess *Session
			if useSession {
				sess = s.NewSession()
			}
			for k := 1; k <= depth; k++ {
				ok, _, err := s.CheckSatIn(sess, pc[:k])
				if err != nil || !ok {
					b.Fatalf("prefix %d: ok=%v err=%v", k, ok, err)
				}
			}
			if useSession && s.Stats.SessionQueries != depth {
				b.Fatalf("only %d/%d queries took the session path",
					s.Stats.SessionQueries, depth)
			}
		}
	}
	b.Run("one-shot", func(b *testing.B) { runPath(b, false) })
	b.Run("session", func(b *testing.B) { runPath(b, true) })
}

func BenchmarkIndependenceSlicing(b *testing.B) {
	// Many independent conjuncts; slicing should keep per-query SAT
	// instances small even as the path condition grows.
	eb := expr.NewBuilder()
	var cs []*expr.Expr
	for i := 0; i < 24; i++ {
		v := eb.Var("v"+string(rune('a'+i)), 8)
		cs = append(cs, eb.Ult(v, eb.Const(uint64(10+i), 8)))
	}
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions())
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("sliced query: ok=%v err=%v", ok, err)
		}
	}
}
