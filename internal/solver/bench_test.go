package solver

// Micro-benchmarks for the bit-blasting frontend and the KLEE-style solver
// optimizations (counterexample cache, independence slicing, model reuse).

import (
	"testing"

	"symmerge/internal/expr"
)

// addersQuery builds x0 + x1 + ... + x(n-1) == target over 16-bit vars.
func addersQuery(b *expr.Builder, n int, target uint64) []*expr.Expr {
	sum := b.Const(0, 16)
	for i := 0; i < n; i++ {
		sum = b.Add(sum, b.Var("x"+string(rune('a'+i)), 16))
	}
	return []*expr.Expr{b.Eq(sum, b.Const(target, 16))}
}

func BenchmarkBlastAdderChain(b *testing.B) {
	eb := expr.NewBuilder()
	cs := addersQuery(eb, 6, 1234)
	for i := 0; i < b.N; i++ {
		s := New(Options{}) // fresh solver: no caching, pure blast+solve
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("adder chain: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkBlastIteChain(b *testing.B) {
	// A deep ite chain over one byte — the expression shape state merging
	// produces (the cost QCE exists to predict).
	eb := expr.NewBuilder()
	x := eb.Var("x", 8)
	v := eb.Const(0, 8)
	for i := 0; i < 48; i++ {
		v = eb.Ite(eb.Eq(x, eb.Const(uint64(i), 8)), eb.Const(uint64(i*3), 8), v)
	}
	cs := []*expr.Expr{eb.Eq(v, eb.Const(60, 8))}
	for i := 0; i < b.N; i++ {
		s := New(Options{})
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("ite chain: ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkCexCacheHitPath(b *testing.B) {
	// Repeated identical queries: after the first call everything is a
	// cache hit, measuring the lookup overhead the engine pays per branch.
	eb := expr.NewBuilder()
	s := New(DefaultOptions())
	cs := addersQuery(eb, 4, 99)
	if ok, _, err := s.CheckSat(cs); err != nil || !ok {
		b.Fatalf("warmup: ok=%v err=%v", ok, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _, _ := s.CheckSat(cs); !ok {
			b.Fatal("cached query flipped")
		}
	}
}

func BenchmarkIndependenceSlicing(b *testing.B) {
	// Many independent conjuncts; slicing should keep per-query SAT
	// instances small even as the path condition grows.
	eb := expr.NewBuilder()
	var cs []*expr.Expr
	for i := 0; i < 24; i++ {
		v := eb.Var("v"+string(rune('a'+i)), 8)
		cs = append(cs, eb.Ult(v, eb.Const(uint64(10+i), 8)))
	}
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions())
		ok, _, err := s.CheckSat(cs)
		if err != nil || !ok {
			b.Fatalf("sliced query: ok=%v err=%v", ok, err)
		}
	}
}
