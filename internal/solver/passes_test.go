package solver

// Tests for the preprocessing-pass pipeline (passes.go) and the n-ary
// clause-group bit-blasting: pipeline configurations must agree on every
// verdict, models must satisfy the original (pre-pipeline) constraints,
// and the pipeline must shrink the emitted CNF on redundancy-heavy queries.

import (
	"math/rand"
	"testing"

	"symmerge/internal/expr"
)

func TestParsePasses(t *testing.T) {
	cases := []struct {
		spec  string
		names []string
		err   bool
	}{
		{"", []string{"simplify", "subst-eq", "slice"}, false},
		{"on", []string{"simplify", "subst-eq", "slice"}, false},
		{"off", []string{}, false},
		{"none", []string{}, false},
		{"simplify", []string{"simplify"}, false},
		{"slice,simplify", []string{"slice", "simplify"}, false},
		{" subst-eq , slice ", []string{"subst-eq", "slice"}, false},
		{"bogus", nil, true},
		{"simplify,bogus", nil, true},
	}
	for _, c := range cases {
		got, err := ParsePasses(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParsePasses(%q): expected error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePasses(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.names) {
			t.Errorf("ParsePasses(%q) = %d passes, want %v", c.spec, len(got), c.names)
			continue
		}
		for i, p := range got {
			if p.Name != c.names[i] {
				t.Errorf("ParsePasses(%q)[%d] = %q, want %q", c.spec, i, p.Name, c.names[i])
			}
		}
	}
}

// TestPipelineConfigsAgree fuzzes random conjunction sets through four
// pipeline configurations; all must return the same verdict and
// constraint-satisfying models.
func TestPipelineConfigsAgree(t *testing.T) {
	b := expr.NewBuilder()
	g := &exprGen{rng: rand.New(rand.NewSource(3)), b: b,
		x: b.Var("x", 4), y: b.Var("y", 4)}
	mk := func(spec string) *Solver {
		passes, err := ParsePasses(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Options{Passes: passes})
		s.AttachBuilder(b)
		return s
	}
	solvers := map[string]*Solver{
		"off":      mk("off"),
		"simplify": mk("simplify"),
		"full":     mk("on"),
		"sliced":   mk("slice"),
	}
	for iter := 0; iter < 200; iter++ {
		n := 1 + g.rng.Intn(4)
		cs := make([]*expr.Expr, n)
		for i := range cs {
			cs[i] = g.cond(2)
		}
		// Brute-force ground truth.
		want := false
		for xv := uint64(0); xv < 16 && !want; xv++ {
			for yv := uint64(0); yv < 16 && !want; yv++ {
				env := expr.Env{g.x: xv, g.y: yv}
				ok := true
				for _, c := range cs {
					ok = ok && expr.EvalBool(c, env)
				}
				want = ok
			}
		}
		for name, s := range solvers {
			got, m, err := s.CheckSat(cs)
			if err != nil {
				t.Fatalf("iter %d (%s): %v", iter, name, err)
			}
			if got != want {
				t.Fatalf("iter %d (%s): verdict %v, brute force says %v for %v",
					iter, name, got, want, cs)
			}
			if got && !modelSatisfies(m, cs) {
				t.Fatalf("iter %d (%s): model %v does not satisfy original constraints %v",
					iter, name, m, cs)
			}
		}
	}
}

// TestPipelineShrinksEncoding builds a redundancy-heavy query — duplicated
// conjuncts, absorbed disjunctions, re-conjoined shared guards — and
// checks the pipeline emits strictly fewer SAT variables and clauses than
// the off baseline while agreeing on the verdict.
func TestPipelineShrinksEncoding(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	z := b.Var("z", 8)
	p := b.Ult(x, b.Const(100, 8))
	q := b.Ult(y, x)
	r := b.Eq(b.BAnd(z, b.Const(3, 8)), b.Const(1, 8))
	cs := []*expr.Expr{
		p,
		b.Or(p, q),                     // absorbed by p
		p,                              // duplicate
		b.Or(b.And(p, q), b.And(p, r)), // factors to p ∧ (q∨r); p already present
		b.Ult(b.Const(0, 8), y),
	}
	run := func(spec string) (bool, uint64) {
		passes, err := ParsePasses(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Options{Passes: passes})
		s.AttachBuilder(b)
		res, m, err := s.CheckSat(cs)
		if err != nil {
			t.Fatal(err)
		}
		if res && !modelSatisfies(m, cs) {
			t.Fatalf("%s: model does not satisfy constraints", spec)
		}
		return res, s.Stats.SATVars + s.Stats.SATClauses
	}
	resOff, encOff := run("off")
	resOn, encOn := run("on")
	if resOff != resOn {
		t.Fatalf("verdicts diverge: off=%v on=%v", resOff, resOn)
	}
	if encOn >= encOff {
		t.Fatalf("pipeline did not shrink the encoding: off=%d on=%d", encOff, encOn)
	}
}

// TestNaryBlastAgainstBruteForce checks the one-clause-group encoding of
// wide n-ary connectives against exhaustive enumeration.
func TestNaryBlastAgainstBruteForce(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	s := New(Options{})
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(5)
		parts := make([]*expr.Expr, n)
		for i := range parts {
			l := b.Const(uint64(rng.Intn(16)), 4)
			switch rng.Intn(3) {
			case 0:
				parts[i] = b.Ult(x, b.Add(y, l))
			case 1:
				parts[i] = b.Eq(b.BXor(x, y), l)
			default:
				parts[i] = b.Slt(b.Sub(y, l), x)
			}
		}
		var conds []*expr.Expr
		if iter%2 == 0 {
			conds = []*expr.Expr{b.AndN(parts)}
		} else {
			conds = []*expr.Expr{b.Not(b.OrN(parts))}
		}
		want := false
		for xv := uint64(0); xv < 16 && !want; xv++ {
			for yv := uint64(0); yv < 16 && !want; yv++ {
				want = expr.EvalBool(conds[0], expr.Env{x: xv, y: yv})
			}
		}
		got, m, err := s.CheckSat(conds)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: n-ary blast verdict %v, brute force %v: %s", iter, got, want, conds[0])
		}
		if got && !modelSatisfies(m, conds) {
			t.Fatalf("iter %d: model fails the n-ary condition", iter)
		}
	}
}

// TestPreprocNodeCounts checks the pipeline's node-trajectory stats move in
// the right direction on a shrinkable query.
func TestPreprocNodeCounts(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	p := b.Ult(x, b.Const(50, 8))
	q := b.Ult(b.Const(5, 8), x)
	s := New(DefaultOptions())
	s.AttachBuilder(b)
	if _, _, err := s.CheckSat([]*expr.Expr{p, b.Or(p, q), p}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats
	if st.PreprocQueries == 0 {
		t.Fatal("pipeline did not run")
	}
	if st.PreprocNodesOut >= st.PreprocNodesIn {
		t.Fatalf("node count did not shrink: in=%d out=%d", st.PreprocNodesIn, st.PreprocNodesOut)
	}
}
