package solver

// passes.go: the ordered preprocessing-pass pipeline applied to one-shot
// queries before bit-blasting.
//
// Historically the one-shot path interleaved its rewrites ad hoc inside
// checkSatIn: equality substitution inline, independence slicing hidden in
// checkSliced, and simplification scattered across the expression builder's
// constructors. The pipeline makes the order explicit and ablatable: a
// query is a mutable Query value threaded through Options.Passes in order,
// after which the (possibly grouped) constraints are bit-blasted. The
// incremental-session path (session.go) deliberately bypasses the pipeline:
// rewriting conjuncts would change their identity and defeat the
// blast-once/assume-many reuse that sessions exist for.
//
// Every pass must be semantics-preserving (sat/unsat verdicts and the
// original constraints' satisfiability under the returned model are
// invariant) and safe for concurrent use from multiple Solvers: pass values
// are stateless — all mutable state lives in the per-query Query.

import (
	"fmt"
	"strings"

	"symmerge/internal/expr"
)

// Query is the mutable state threaded through the preprocessing pipeline
// for one satisfiability question.
type Query struct {
	// Constraints is the working constraint set (a conjunction).
	Constraints []*expr.Expr
	// Binding accumulates variables pinned to constants by substitution
	// passes. The solver folds the bindings back into the model after
	// solving, so callers still see values for substituted variables.
	Binding expr.Env
	// Groups, when non-nil, partitions Constraints into variable-disjoint
	// subsets that are satisfiability-independent; the solver then blasts
	// and solves each group separately (the slice pass's output).
	Groups [][]*expr.Expr
}

// Pass is one step of the preprocessing pipeline. Fn mutates q in place;
// the Solver is passed for its builder and statistics.
type Pass struct {
	Name string
	Fn   func(s *Solver, q *Query)
}

// SimplifyPass canonicalizes the constraint set through the expression
// rewrite table (expr/rules.go): each conjunct is simplified bottom-up,
// then the set is re-conjoined through the n-ary constructor — which
// deduplicates, eliminates complementary pairs, absorbs, and factors
// across conjuncts — and flattened back into conjuncts.
func SimplifyPass() Pass {
	return Pass{Name: "simplify", Fn: func(s *Solver, q *Query) {
		if s.build == nil {
			return
		}
		q.Constraints = s.build.SimplifySet(q.Constraints)
	}}
}

// SubstitutePass rewrites the constraint set using the equalities it
// contains (KLEE's ConstraintManager simplification): a conjunct of the
// form `x = const` lets every other conjunct evaluate x concretely, which
// often collapses whole subtrees before bit-blasting.
func SubstitutePass() Pass {
	return Pass{Name: "subst-eq", Fn: func(s *Solver, q *Query) {
		if s.build == nil {
			return
		}
		out, binding := substituteEqualities(s.build, q.Constraints)
		if len(binding) == 0 {
			return
		}
		q.Constraints = out
		if q.Binding == nil {
			q.Binding = binding
			return
		}
		for v, val := range binding {
			q.Binding[v] = val
		}
	}}
}

// SlicePass partitions the constraints into independent groups (connected
// components of the shared-variable graph); the conjunction is sat iff
// every component is, and each component blasts to a much smaller CNF.
func SlicePass() Pass {
	return Pass{Name: "slice", Fn: func(s *Solver, q *Query) {
		if len(q.Constraints) <= 1 {
			return
		}
		groups := independentGroups(q.Constraints)
		if len(groups) > 1 {
			s.Stats.IndepSliced++
			q.Groups = groups
		}
	}}
}

// DefaultPasses returns the full preprocessing pipeline in its canonical
// order: simplify (cheap, may erase work for the later passes), equality
// substitution (may split variable dependencies), then independence
// slicing (best run last, on the smallest constraint set).
func DefaultPasses() []Pass {
	return []Pass{SimplifyPass(), SubstitutePass(), SlicePass()}
}

// ParsePasses resolves a CLI preprocessing spec: "" or "on" selects
// DefaultPasses, "off"/"none" disables preprocessing entirely, and a
// comma-separated list of pass names ("simplify,slice") selects a custom
// pipeline in the given order — the ablation hook for the benchmarks.
func ParsePasses(spec string) ([]Pass, error) {
	switch strings.TrimSpace(spec) {
	case "", "on":
		return DefaultPasses(), nil
	case "off", "none":
		return []Pass{}, nil
	}
	known := map[string]func() Pass{
		"simplify": SimplifyPass,
		"subst-eq": SubstitutePass,
		"slice":    SlicePass,
	}
	var out []Pass
	for _, name := range strings.Split(spec, ",") {
		mk, ok := known[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("solver: unknown preprocessing pass %q (known: simplify, subst-eq, slice)", name)
		}
		out = append(out, mk())
	}
	if out == nil {
		out = []Pass{}
	}
	return out, nil
}

// runPasses executes the pipeline over the live constraint set and records
// the node-count trajectory (`symx -stats`). Counts use the per-node
// construction sizes cached in Expr.Nodes() — O(1) per conjunct — rather
// than a distinct-node DAG walk, so the bookkeeping costs nothing on the
// query path.
func (s *Solver) runPasses(live []*expr.Expr) *Query {
	q := &Query{Constraints: live}
	if len(s.passes) == 0 {
		return q
	}
	s.Stats.PreprocQueries++
	s.Stats.PreprocNodesIn += sumNodes(live)
	for _, p := range s.passes {
		p.Fn(s, q)
	}
	s.Stats.PreprocNodesOut += sumNodes(q.Constraints)
	return q
}

// sumNodes totals the cached tree-node counts of a constraint set.
func sumNodes(cs []*expr.Expr) uint64 {
	var n uint64
	for _, c := range cs {
		n += uint64(c.Nodes())
	}
	return n
}
