package sat

import "testing"

func TestDbgPH(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := New()
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("pigeonhole(%d): got %v, want unsat", n, got)
		}
		t.Logf("n=%d ok, conflicts=%d", n, s.Stats.Conflicts)
	}
}
