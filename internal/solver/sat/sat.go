// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// in the MiniSat lineage: two-watched-literal propagation, first-UIP conflict
// analysis with recursive clause minimization, exponential VSIDS branching,
// phase saving, Luby-sequence restarts, and activity-based learned-clause
// deletion.
//
// It is the decision procedure underneath the bit-blasting SMT layer in
// package solver, standing in for the STP solver used by the paper's KLEE
// prototype.
package sat

import (
	"fmt"
	"math"
	"time"
)

// Lit is a literal: variable index shifted left once, with the low bit set
// for negated occurrences. Variables are numbered from 0.
type Lit int32

// MkLit returns the literal for variable v, negated if neg.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable index of the literal.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is a negated occurrence.
func (l Lit) Neg() bool { return l&1 != 0 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

// String renders the literal in DIMACS style (1-based, '-' for negation).
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit // if blocker is true the clause is satisfied; skip it
}

type varData struct {
	assign   lbool
	level    int32
	reason   *clause
	activity float64
	phase    bool // saved phase: last assigned polarity
	seen     bool // scratch for conflict analysis
}

// Stats counts solver activity across Solve calls.
type Stats struct {
	Solves       uint64 // Solve invocations (incremental callers reuse one instance)
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learnt       uint64
	MaxLearnt    int
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	vars    []varData
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	order  heap // VSIDS order
	varInc float64
	claInc float64

	unsatAtRoot bool
	numAdded    uint64 // problem clauses accepted by AddClause

	// conflict analysis scratch
	analyzeStack []Lit
	learntLits   []Lit
	clearSeen    []Lit

	model []bool // snapshot of the last satisfying assignment

	// Budget limits a Solve call to at most Budget conflicts (0 = no
	// limit); when exceeded, Solve returns Unknown. The SMT layer uses it
	// to implement soft solver timeouts.
	Budget uint64

	// Deadline, when non-zero, makes Solve return Unknown once the wall
	// clock passes it (checked between restarts, so a call may overshoot
	// by one restart's worth of work). The engine sets it from its own
	// exploration time budget so that a single pathological query — e.g.
	// the giant ite stores that aggressive state merging produces —
	// cannot stall the whole run.
	Deadline time.Time

	Stats Stats
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.order.s = s
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.vars) }

// NumClauses returns the number of problem clauses accepted by AddClause
// (root-satisfied and tautological submissions excluded; learnt clauses are
// tracked separately in Stats). The SMT layer reads this to report encoding
// sizes per query.
func (s *Solver) NumClauses() uint64 { return s.numAdded }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.vars)
	s.vars = append(s.vars, varData{assign: lUndef, level: -1})
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	a := s.vars[l.Var()].assign
	if a == lUndef {
		return lUndef
	}
	if l.Neg() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

// AddClause adds a clause over existing variables. Adding the empty clause,
// or a clause falsified at the root level, makes the instance trivially
// unsat. AddClause must be called before Solve (between Solve calls is fine:
// the solver backtracks to the root level after each Solve).
func (s *Solver) AddClause(lits ...Lit) {
	if s.unsatAtRoot {
		return
	}
	// Simplify: drop duplicate and false literals; detect tautologies.
	out := lits[:0:0]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			if s.vars[l.Var()].level == 0 {
				return // satisfied at root
			}
		case lFalse:
			if s.vars[l.Var()].level == 0 {
				continue // falsified at root: drop literal
			}
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Flip() {
				return // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.unsatAtRoot = true
		return
	case 1:
		s.numAdded++
		if !s.enqueue(out[0], nil) {
			s.unsatAtRoot = true
			return
		}
		if s.propagate() != nil {
			s.unsatAtRoot = true
		}
		return
	}
	s.numAdded++
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
}

func (s *Solver) attach(c *clause) {
	// Watch the first two literals.
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Flip()] = append(s.watches[l0.Flip()], watcher{c, l1})
	s.watches[l1.Flip()] = append(s.watches[l1.Flip()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l Lit, reason *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	vd := &s.vars[l.Var()]
	if l.Neg() {
		vd.assign = lFalse
	} else {
		vd.assign = lTrue
	}
	vd.phase = !l.Neg()
	vd.level = int32(s.decisionLevel())
	vd.reason = reason
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			// Normalize so that lits[1] is the false literal p.Flip().
			falseLit := p.Flip()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Flip()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.vars[v].activity += s.varInc
	if s.vars[v].activity > 1e100 {
		for i := range s.vars {
			s.vars[i].activity *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, l := range s.learnts {
			l.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay = 1.0 / 0.95
	claDecay = 1.0 / 0.999
)

// analyze performs first-UIP conflict analysis, filling s.learntLits with the
// learned clause (asserting literal first) and returning the backtrack level.
func (s *Solver) analyze(confl *clause) int {
	s.learntLits = s.learntLits[:0]
	s.learntLits = append(s.learntLits, 0) // room for asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl == nil {
			panic(fmt.Sprintf("analyze: nil reason for %v (level %d, dl %d, counter %d, trail %v)",
				p, s.vars[p.Var()].level, s.decisionLevel(), counter, s.trail))
		}
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.vars[v].seen && s.vars[v].level > 0 {
				s.vars[v].seen = true
				s.bumpVar(v)
				if int(s.vars[v].level) >= s.decisionLevel() {
					counter++
				} else {
					s.learntLits = append(s.learntLits, q)
				}
			}
		}
		// Select next literal on the trail to expand.
		for !s.vars[s.trail[idx].Var()].seen {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.vars[p.Var()].seen = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.vars[p.Var()].reason
	}
	s.learntLits[0] = p.Flip()

	// Recursive minimization: drop literals implied by the rest.
	s.analyzeStack = s.analyzeStack[:0]
	out := s.learntLits[:1]
	for _, l := range s.learntLits[1:] {
		if s.vars[l.Var()].reason == nil || !s.litRedundant(l) {
			out = append(out, l)
		} else {
			// Dropped as redundant: its seen mark must still be
			// cleared below, so remember it.
			s.clearSeen = append(s.clearSeen, l)
		}
	}
	s.learntLits = out

	// Find backtrack level: max level among lits[1:].
	btLevel := 0
	if len(s.learntLits) > 1 {
		maxI := 1
		for i := 2; i < len(s.learntLits); i++ {
			if s.vars[s.learntLits[i].Var()].level > s.vars[s.learntLits[maxI].Var()].level {
				maxI = i
			}
		}
		s.learntLits[1], s.learntLits[maxI] = s.learntLits[maxI], s.learntLits[1]
		btLevel = int(s.vars[s.learntLits[1].Var()].level)
	}
	// Clear seen flags for the literals we kept (expanded ones were
	// cleared during the loop; kept ones and redundant-check marks next).
	for _, l := range s.learntLits {
		s.vars[l.Var()].seen = false
	}
	for _, l := range s.clearSeen {
		s.vars[l.Var()].seen = false
	}
	s.clearSeen = s.clearSeen[:0]
	return btLevel
}

// litRedundant reports whether l is implied by the remaining learnt literals,
// walking the implication graph (simple recursive minimization).
func (s *Solver) litRedundant(l Lit) bool {
	s.analyzeStack = append(s.analyzeStack[:0], l)
	top := len(s.clearSeen)
	for len(s.analyzeStack) > 0 {
		p := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		reason := s.vars[p.Var()].reason
		for i, q := range reason.lits {
			if i == 0 && q == p.Flip() {
				continue
			}
			v := q.Var()
			if s.vars[v].seen || s.vars[v].level == 0 {
				continue
			}
			if s.vars[v].reason == nil {
				// Reached a decision not in the clause: not redundant.
				for _, m := range s.clearSeen[top:] {
					s.vars[m.Var()].seen = false
				}
				s.clearSeen = s.clearSeen[:top]
				return false
			}
			s.vars[v].seen = true
			s.clearSeen = append(s.clearSeen, q)
			s.analyzeStack = append(s.analyzeStack, q)
		}
	}
	return true
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.vars[v].assign = lUndef
		s.vars[v].reason = nil
		s.vars[v].level = -1
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.vars[v].assign == lUndef {
			return MkLit(v, !s.vars[v].phase)
		}
	}
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i uint64) uint64 {
	for k := uint(1); k < 64; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
	}
	k := uint(1)
	for ; i >= (1<<k)-1; k++ {
	}
	k--
	return luby(i - (1 << k) + 1)
}

func (s *Solver) reduceDB() {
	// Keep the better half by activity; never remove reason clauses.
	if len(s.learnts) < 2 {
		return
	}
	// Partial selection: simple sort by activity.
	ls := s.learnts
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].activity < ls[j-1].activity; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	keepFrom := len(ls) / 2
	kept := ls[:0]
	for i, c := range ls {
		if i >= keepFrom || s.isReason(c) || len(c.lits) == 2 {
			kept = append(kept, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = kept
}

func (s *Solver) isReason(c *clause) bool {
	if len(c.lits) == 0 {
		return false
	}
	v := c.lits[0].Var()
	return s.vars[v].assign != lUndef && s.vars[v].reason == c
}

func (s *Solver) detach(c *clause) {
	for _, wl := range []Lit{c.lits[0].Flip(), c.lits[1].Flip()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve determines satisfiability under the given assumptions. On Sat, the
// model is readable through Value. On Unsat with assumptions, the instance
// is unsatisfiable under those assumptions (the solver does not produce an
// unsat core). Solve may be called repeatedly with different assumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.Stats.Solves++
	if s.unsatAtRoot {
		return Unsat
	}
	defer s.backtrackTo(0)

	maxLearnts := len(s.clauses)/3 + 100
	restartNum := uint64(0)
	conflictsAtStart := s.Stats.Conflicts

	for {
		restartNum++
		budget := luby(restartNum) * 100
		st := s.search(assumptions, budget, &maxLearnts)
		if st == Sat {
			// Snapshot the model before the deferred backtrack
			// erases the assignment. Unassigned variables default
			// to false.
			if cap(s.model) < len(s.vars) {
				s.model = make([]bool, len(s.vars))
			}
			s.model = s.model[:len(s.vars)]
			for v := range s.vars {
				s.model[v] = s.vars[v].assign == lTrue
			}
			return Sat
		}
		if st == Unsat {
			return Unsat
		}
		if s.Budget > 0 && s.Stats.Conflicts-conflictsAtStart > s.Budget {
			return Unknown
		}
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			return Unknown
		}
		s.Stats.Restarts++
		s.backtrackTo(0)
	}
}

// search runs CDCL until a result, a restart budget exhaustion (Unknown), or
// conflict overload triggers DB reduction.
func (s *Solver) search(assumptions []Lit, budget uint64, maxLearnts *int) Status {
	conflicts := uint64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsatAtRoot = true
				return Unsat
			}
			btLevel := s.analyze(confl)
			// Don't backtrack past the assumption levels: if the
			// asserting literal must hold below an assumption
			// decision, assumptions are in conflict.
			s.backtrackTo(btLevel)
			lits := make([]Lit, len(s.learntLits))
			copy(lits, s.learntLits)
			if len(lits) == 1 {
				if !s.enqueue(lits[0], nil) {
					return Unsat
				}
			} else {
				c := &clause{lits: lits, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.enqueue(lits[0], c)
				s.Stats.Learnt++
				if len(s.learnts) > s.Stats.MaxLearnt {
					s.Stats.MaxLearnt = len(s.learnts)
				}
			}
			s.varInc *= varDecay
			s.claInc *= claDecay
			if len(s.learnts) > *maxLearnts {
				*maxLearnts += *maxLearnts / 10
				s.reduceDB()
			}
			continue
		}
		if conflicts >= budget {
			return Unknown // restart
		}
		// Apply assumptions as pseudo-decisions.
		next := Lit(-1)
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open a dummy level so indices advance.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat // conflicting assumptions
			}
			next = a
		}
		if next == -1 {
			next = s.pickBranchLit()
			if next == -1 {
				return Sat // all variables assigned
			}
			s.Stats.Decisions++
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, nil)
	}
}

// Value returns the model value of variable v after a Sat result. Variables
// left unassigned by the solver (pure don't-cares) read as false.
func (s *Solver) Value(v int) bool {
	if v >= len(s.model) {
		return false
	}
	return s.model[v]
}

// ValueLit returns the model value of a literal after a Sat result.
func (s *Solver) ValueLit(l Lit) bool {
	v := s.Value(l.Var())
	if l.Neg() {
		return !v
	}
	return v
}

// validActivity is used by the solver's internal consistency tests.
func validActivity(a float64) bool { return !math.IsNaN(a) && !math.IsInf(a, 0) }
