package sat

// heap is a max-heap of variables ordered by VSIDS activity, with position
// tracking so activities can be bumped in place (MiniSat's order heap).
type heap struct {
	s    *Solver
	data []int // variable indices
	pos  []int // variable -> index in data, -1 if absent
}

func (h *heap) less(a, b int) bool {
	return h.s.vars[a].activity > h.s.vars[b].activity
}

func (h *heap) ensure(v int) {
	for len(h.pos) <= v {
		h.pos = append(h.pos, -1)
	}
}

func (h *heap) push(v int) {
	h.ensure(v)
	if h.pos[v] >= 0 {
		return
	}
	h.data = append(h.data, v)
	h.pos[v] = len(h.data) - 1
	h.up(len(h.data) - 1)
}

func (h *heap) pushIfAbsent(v int) { h.push(v) }

func (h *heap) pop() (int, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.pos[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// update restores the heap property after v's activity increased.
func (h *heap) update(v int) {
	h.ensure(v)
	if p := h.pos[v]; p >= 0 {
		h.up(p)
	}
}

func (h *heap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.pos[h.data[i]] = i
	h.pos[h.data[j]] = j
}

func (h *heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.data[i], h.data[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *heap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.data[l], h.data[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.data[r], h.data[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
