package sat

// Micro-benchmarks for the CDCL core: structured-unsat (pigeonhole),
// random-sat, and incremental-assumption workloads, the three query shapes
// the bit-blaster produces.

import (
	"math/rand"
	"testing"
)

// pigeonholeInstance encodes PHP(n+1, n): n+1 pigeons in n holes, unsat.
func pigeonholeInstance(s *Solver, n int) {
	// vars[p][h] = pigeon p sits in hole h.
	vars := make([][]int, n+1)
	for p := range vars {
		vars[p] = make([]int, n)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ { // every pigeon somewhere
		lits := make([]Lit, n)
		for h := 0; h < n; h++ {
			lits[h] = MkLit(vars[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < n; h++ { // no two pigeons share a hole
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(vars[p1][h], true), MkLit(vars[p2][h], true))
			}
		}
	}
}

func BenchmarkPigeonholeUnsat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonholeInstance(s, 7)
		if s.Solve() != Unsat {
			b.Fatal("pigeonhole reported sat")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	// Clause/variable ratio 3.5: mostly satisfiable but non-trivial.
	const nv, nc = 120, 420
	rng := rand.New(rand.NewSource(7))
	type clause [3]Lit
	clauses := make([]clause, nc)
	for i := range clauses {
		for j := 0; j < 3; j++ {
			clauses[i][j] = MkLit(rng.Intn(nv), rng.Intn(2) == 0)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nv; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c[0], c[1], c[2])
		}
		s.Solve()
	}
}

func BenchmarkIncrementalAssumptions(b *testing.B) {
	// One instance, many Solve calls under different assumptions — the
	// shape the engine's feasibility checks produce on a shared prefix.
	s := New()
	const nv = 60
	vars := make([]int, nv)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+2 < nv; i++ {
		s.AddClause(MkLit(vars[i], false), MkLit(vars[i+1], true), MkLit(vars[i+2], false))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(MkLit(vars[i%nv], i%2 == 0))
	}
}
