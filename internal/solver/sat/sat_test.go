package sat

import (
	"math/rand"
	"testing"
)

func TestEmptyInstanceIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("empty instance: got %v, want sat", got)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
	if !s.Value(a) || s.Value(b) {
		t.Fatalf("model: a=%v b=%v, want a=true b=false", s.Value(a), s.Value(b))
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	s.AddClause()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(a, true)) // tautology: no constraint
	if got := s.Solve(); got != Sat {
		t.Fatalf("got %v, want sat", got)
	}
}

// TestPigeonhole checks a classic small unsat family: n+1 pigeons, n holes.
func TestPigeonhole(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := New()
		// p[i][j]: pigeon i in hole j.
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			lits := make([]Lit, n)
			for j := 0; j < n; j++ {
				lits[j] = MkLit(p[i][j], false)
			}
			s.AddClause(lits...)
		}
		for j := 0; j < n; j++ {
			for i := 0; i <= n; i++ {
				for k := i + 1; k <= n; k++ {
					s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("pigeonhole(%d): got %v, want unsat", n, got)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if got := s.Solve(MkLit(a, false), MkLit(b, true)); got != Unsat {
		t.Fatalf("a ∧ ¬b with a→b: got %v, want unsat", got)
	}
	if got := s.Solve(MkLit(a, false)); got != Sat {
		t.Fatalf("a with a→b: got %v, want sat", got)
	}
	if !s.Value(b) {
		t.Fatalf("model under assumption a: b=false, want true")
	}
	// Solver must remain reusable after assumption-unsat.
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: got %v, want sat", got)
	}
}

func TestConflictingAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	if got := s.Solve(MkLit(a, false), MkLit(a, true)); got != Unsat {
		t.Fatalf("got %v, want unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("after conflicting assumptions: got %v, want sat", got)
	}
}

// bruteForce determines satisfiability of a CNF by enumeration.
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>(l.Var())&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce cross-checks CDCL against enumeration on
// random instances around the phase-transition density.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := int(4.3*float64(nVars)) + rng.Intn(5)
		clauses := make([][]Lit, nClauses)
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for i := range clauses {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses)
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: got %v, brute force says sat=%v", iter, got, want)
		}
		if got == Sat {
			// Model must satisfy every clause.
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model violates clause %d", iter, ci)
				}
			}
		}
	}
}

// TestIncrementalReuse solves a growing instance repeatedly.
func TestIncrementalReuse(t *testing.T) {
	s := New()
	var vars []int
	for i := 0; i < 20; i++ {
		v := s.NewVar()
		vars = append(vars, v)
		if i > 0 {
			// chain: v_i != v_{i-1}
			s.AddClause(MkLit(vars[i-1], false), MkLit(v, false))
			s.AddClause(MkLit(vars[i-1], true), MkLit(v, true))
		}
		if got := s.Solve(); got != Sat {
			t.Fatalf("step %d: got %v, want sat", i, got)
		}
	}
	// Force both ends equal with odd chain length: still sat for even i.
	if got := s.Solve(MkLit(vars[0], false), MkLit(vars[19], false)); got != Unsat {
		t.Fatalf("xor chain ends equal: got %v, want unsat", got)
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(c, false))
	s.AddClause(MkLit(b, true), MkLit(c, true))
	s.Solve()
	if s.Stats.Propagations == 0 && s.Stats.Decisions == 0 {
		t.Fatalf("expected some solver activity, got %+v", s.Stats)
	}
	if !validActivity(s.varInc) {
		t.Fatalf("variable activity increment degenerated: %v", s.varInc)
	}
}
