package solver

// Tests for the incremental session layer: prefix-extension reuse,
// fork-then-diverge correctness against the one-shot solver, and
// unsat-under-assumptions isolation.

import (
	"math/rand"
	"testing"

	"symmerge/internal/expr"
)

// chainPC builds a dependent conjunct chain x0 < x1 < ... < xn over 8-bit
// variables: every prefix is satisfiable for n <= 255, and the shared-
// variable graph is connected, so independence slicing cannot split it.
func chainPC(b *expr.Builder, n int) []*expr.Expr {
	vars := make([]*expr.Expr, n+1)
	for i := range vars {
		vars[i] = b.Var("c"+itoa(i), 8)
	}
	pc := make([]*expr.Expr, n)
	for i := 0; i < n; i++ {
		pc[i] = b.Ult(vars[i], vars[i+1])
	}
	return pc
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestSessionPrefixReuse(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{}) // no caches: measure the session itself
	sess := s.NewSession()
	pc := chainPC(b, 12)
	// Growing-prefix queries, the engine's MayBeTrue pattern.
	for i := 1; i <= len(pc); i++ {
		ok, m, err := s.CheckSatIn(sess, pc[:i])
		if err != nil || !ok {
			t.Fatalf("prefix %d: ok=%v err=%v", i, ok, err)
		}
		env := expr.Env(m)
		for _, c := range pc[:i] {
			if !expr.EvalBool(c, env) {
				t.Fatalf("prefix %d: model %v violates %s", i, m, c)
			}
		}
	}
	if got := sess.Conjuncts(); got != len(pc) {
		t.Fatalf("blasted %d conjuncts, want %d (each exactly once)", got, len(pc))
	}
	if s.Stats.SessionQueries != uint64(len(pc)) {
		t.Fatalf("SessionQueries=%d, want %d", s.Stats.SessionQueries, len(pc))
	}
	// Query i reuses i-1 already-blasted conjuncts: sum over i of (i-1).
	wantReuse := uint64(len(pc) * (len(pc) - 1) / 2)
	if s.Stats.SessionBlastReuse != wantReuse {
		t.Fatalf("SessionBlastReuse=%d, want %d", s.Stats.SessionBlastReuse, wantReuse)
	}
	// Re-querying the full prefix must not grow the instance.
	vars := sess.NumVars()
	if ok, _, err := s.CheckSatIn(sess, pc); err != nil || !ok {
		t.Fatalf("repeat query: ok=%v err=%v", ok, err)
	}
	if sess.NumVars() != vars {
		t.Fatalf("repeat query grew the instance: %d -> %d vars", vars, sess.NumVars())
	}
}

func TestSessionForkDiverge(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	oneShot := New(Options{})
	sess := s.NewSession()
	x := b.Var("x", 8)
	pc := []*expr.Expr{b.Ult(x, b.Const(100, 8)), b.Ugt(x, b.Const(10, 8))}
	for i := 1; i <= len(pc); i++ {
		if ok, _, err := s.CheckSatIn(sess, pc[:i]); err != nil || !ok {
			t.Fatalf("prefix %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Fork: left takes x < 50, right takes ¬(x < 50).
	left, right := sess, sess.Fork()
	cl := b.Ult(x, b.Const(50, 8))
	cr := b.Not(cl)
	pcL := append(append([]*expr.Expr{}, pc...), cl)
	pcR := append(append([]*expr.Expr{}, pc...), cr)
	// The engine checks each branch's feasibility before following it —
	// that query is what blasts the branch conjunct into the shared core.
	if ok, _, err := s.CheckSatIn(left, pcL); err != nil || !ok {
		t.Fatalf("left branch: ok=%v err=%v", ok, err)
	}
	if ok, _, err := s.CheckSatIn(right, pcR); err != nil || !ok {
		t.Fatalf("right branch: ok=%v err=%v", ok, err)
	}
	// Diverge further: left pins x = 20 (sat) then x = 60 (unsat under
	// its branch); right the mirror image.
	cases := []struct {
		sess *Session
		pc   []*expr.Expr
		pin  uint64
		want bool
	}{
		{left, pcL, 20, true},
		{left, pcL, 60, false},
		{right, pcR, 60, true},
		{right, pcR, 20, false},
	}
	for i, tc := range cases {
		q := append(append([]*expr.Expr{}, tc.pc...), b.Eq(x, b.Const(tc.pin, 8)))
		got, m, err := s.CheckSatIn(tc.sess, q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		wantRes, _, err := oneShot.CheckSat(q)
		if err != nil {
			t.Fatalf("case %d one-shot: %v", i, err)
		}
		if got != wantRes || got != tc.want {
			t.Fatalf("case %d: session=%v one-shot=%v want=%v", i, got, wantRes, tc.want)
		}
		if got && m[x] != tc.pin {
			t.Fatalf("case %d: model x=%d, want %d", i, m[x], tc.pin)
		}
	}
	// Both forks share one blasted set: pc, the two branch conjuncts, and
	// the two pin conjuncts — the pins are hash-consed, so querying x=60
	// on the right fork reuses the left fork's blasting of the same
	// expression. Nothing is blasted twice.
	if got, want := sess.Conjuncts(), len(pc)+2+2; got != want {
		t.Fatalf("blasted %d conjuncts across forks, want %d", got, want)
	}
}

func TestSessionUnsatNoPoison(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	sess := s.NewSession()
	x := b.Var("x", 8)
	pc := []*expr.Expr{b.Ult(x, b.Const(10, 8))}
	if ok, _, err := s.CheckSatIn(sess, pc); err != nil || !ok {
		t.Fatalf("pc alone: ok=%v err=%v", ok, err)
	}
	// Contradictory extension: unsat under assumptions.
	bad := append(append([]*expr.Expr{}, pc...), b.Ugt(x, b.Const(20, 8)))
	if ok, _, err := s.CheckSatIn(sess, bad); err != nil || ok {
		t.Fatalf("contradiction: ok=%v err=%v", ok, err)
	}
	// The unsat result must not leak into unrelated later queries on the
	// same persistent instance.
	good := append(append([]*expr.Expr{}, pc...), b.Eq(x, b.Const(7, 8)))
	ok, m, err := s.CheckSatIn(sess, good)
	if err != nil || !ok {
		t.Fatalf("post-unsat query: ok=%v err=%v", ok, err)
	}
	if m[x] != 7 {
		t.Fatalf("post-unsat model x=%d, want 7", m[x])
	}
	// And the original prefix still answers sat.
	if ok, _, err := s.CheckSatIn(sess, pc); err != nil || !ok {
		t.Fatalf("pc after unsat: ok=%v err=%v", ok, err)
	}
}

// TestSessionDifferential drives a session and a fresh one-shot solver
// through random branch sequences and demands identical verdicts — the
// session analogue of quick_test.go's property tests.
func TestSessionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := expr.NewBuilder()
	x := b.Var("x", 4)
	y := b.Var("y", 4)
	vars := []*expr.Expr{x, y}
	for trial := 0; trial < 60; trial++ {
		s := New(Options{})
		sess := s.NewSession()
		var pc []*expr.Expr
		for step := 0; step < 6; step++ {
			cond := randomBoolExpr(b, rng, vars, 3)
			if cond.IsConst() {
				continue
			}
			q := append(append([]*expr.Expr{}, pc...), cond)
			got, m, err := s.CheckSatIn(sess, q)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			want, _, err := New(Options{}).CheckSat(q)
			if err != nil {
				t.Fatalf("trial %d step %d one-shot: %v", trial, step, err)
			}
			if got != want {
				t.Fatalf("trial %d step %d: session=%v one-shot=%v on %v",
					trial, step, got, want, q)
			}
			if got {
				env := expr.Env(m)
				for _, c := range q {
					if !expr.EvalBool(c, env) {
						t.Fatalf("trial %d step %d: model %v violates %s",
							trial, step, m, c)
					}
				}
				pc = q // extend the path like the engine does
			}
		}
	}
}

// TestSessionRebase shrinks the rebase limit so the persistent core is
// rebuilt mid-lineage and verifies queries stay correct across the rebuild.
func TestSessionRebase(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	sess := s.NewSession()
	sess.SetRebaseLimit(64) // tiny: every few conjuncts trigger a rebuild
	pc := chainPC(b, 10)
	for i := 1; i <= len(pc); i++ {
		ok, m, err := s.CheckSatIn(sess, pc[:i])
		if err != nil || !ok {
			t.Fatalf("prefix %d: ok=%v err=%v", i, ok, err)
		}
		env := expr.Env(m)
		for _, c := range pc[:i] {
			if !expr.EvalBool(c, env) {
				t.Fatalf("prefix %d: model violates %s after rebase", i, c)
			}
		}
	}
	if s.Stats.SessionRebases == 0 {
		t.Fatal("rebase limit of 64 vars never triggered a rebuild")
	}
	// Unsat still detected post-rebase.
	x := b.Var("rb", 8)
	q := []*expr.Expr{b.Ult(x, b.Const(3, 8)), b.Ugt(x, b.Const(5, 8))}
	for i := 1; i <= len(q); i++ {
		if ok, _, err := s.CheckSatIn(sess, q[:i]); err != nil || ok == (i == 2) {
			t.Fatalf("rebased unsat check %d: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestSessionBypass verifies the routing policy: a query with more than one
// unknown conjunct takes the one-shot path, records the bypass, and syncs
// the conjuncts into the core so the lineage returns to the incremental
// path on its next query.
func TestSessionBypass(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	sess := s.NewSession()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	q := []*expr.Expr{b.Ult(x, b.Const(9, 8)), b.Ult(y, b.Const(9, 8)), b.Ult(x, y)}
	if ok, _, err := s.CheckSatIn(sess, q); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if s.Stats.SessionBypass != 1 || s.Stats.SessionQueries != 0 {
		t.Fatalf("bypass=%d sessionQueries=%d, want 1/0",
			s.Stats.SessionBypass, s.Stats.SessionQueries)
	}
	// The bypass synced the conjuncts, so an extension of the same prefix
	// routes incrementally.
	if sess.Conjuncts() != len(q) {
		t.Fatalf("bypass synced %d conjuncts, want %d", sess.Conjuncts(), len(q))
	}
	ext := append(append([]*expr.Expr{}, q...), b.Ugt(y, x))
	if ok, _, err := s.CheckSatIn(sess, ext); err != nil || !ok {
		t.Fatalf("extension: ok=%v err=%v", ok, err)
	}
	if s.Stats.SessionQueries != 1 || s.Stats.SessionBypass != 1 {
		t.Fatalf("post-sync routing: sessQ=%d bypass=%d, want 1/1",
			s.Stats.SessionQueries, s.Stats.SessionBypass)
	}
}

// TestSessionRebaseRecovery covers the post-rebase trap: after the shared
// core is rebuilt by one lineage's query, other lineages — whose conjuncts
// all vanished from the core — must find their way back to the incremental
// path via the bypass sync instead of bypassing forever.
func TestSessionRebaseRecovery(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	sess := s.NewSession()
	x := b.Var("x", 8)
	pcA := []*expr.Expr{b.Ult(x, b.Const(200, 8)), b.Ugt(x, b.Const(3, 8))}
	for i := 1; i <= len(pcA); i++ {
		if ok, _, err := s.CheckSatIn(sess, pcA[:i]); err != nil || !ok {
			t.Fatalf("lineage A prefix %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Another lineage's query triggers a rebase, dropping A's conjuncts.
	sess.SetRebaseLimit(1)
	other := sess.Fork()
	y := b.Var("y", 8)
	if ok, _, err := s.CheckSatIn(other, []*expr.Expr{b.Ult(y, b.Const(5, 8))}); err != nil || !ok {
		t.Fatalf("rebasing query: ok=%v err=%v", ok, err)
	}
	if s.Stats.SessionRebases == 0 {
		t.Fatal("rebase did not trigger")
	}
	sess.SetRebaseLimit(1 << 20) // stop rebasing; watch A recover
	rebases := s.Stats.SessionRebases
	// Lineage A queries again: first one bypasses (2 unknown conjuncts)
	// and syncs; the next extension routes incrementally again.
	if ok, _, err := s.CheckSatIn(sess, pcA); err != nil || !ok {
		t.Fatalf("A after rebase: ok=%v err=%v", ok, err)
	}
	if s.Stats.SessionBypass == 0 {
		t.Fatal("post-rebase catch-up query did not record a bypass")
	}
	sessQ := s.Stats.SessionQueries
	ext := append(append([]*expr.Expr{}, pcA...), b.Ult(x, b.Const(100, 8)))
	ok, m, err := s.CheckSatIn(sess, ext)
	if err != nil || !ok {
		t.Fatalf("A extension after recovery: ok=%v err=%v", ok, err)
	}
	if s.Stats.SessionQueries != sessQ+1 {
		t.Fatal("lineage did not return to the session path after bypass sync")
	}
	if s.Stats.SessionRebases != rebases {
		t.Fatal("unexpected extra rebase during recovery")
	}
	if v := m[x]; v <= 3 || v >= 100 {
		t.Fatalf("recovered model x=%d violates 3 < x < 100", v)
	}
}
