package solver

import (
	"testing"

	"symmerge/internal/expr"
)

// minimize is the test harness: solve pc over vars canonically.
func minimize(t *testing.T, b *expr.Builder, s *Solver, sess *Session, pc, vars []*expr.Expr) Model {
	t.Helper()
	m, err := s.MinModelIn(sess, pc, vars)
	if err != nil {
		t.Fatalf("MinModelIn: %v", err)
	}
	return m
}

func TestMinModelBasics(t *testing.T) {
	b := expr.NewBuilder()
	s := New(DefaultOptions())
	s.AttachBuilder(b)
	x := b.Var("x", 8)
	y := b.Var("y", 8)

	// Unconstrained variables minimize to zero.
	m := minimize(t, b, s, nil, nil, []*expr.Expr{x, y})
	if m[x] != 0 || m[y] != 0 {
		t.Fatalf("unconstrained: got x=%d y=%d, want 0 0", m[x], m[y])
	}

	// x > 10 (unsigned) has minimum 11.
	pc := []*expr.Expr{b.Ult(b.Const(10, 8), x)}
	m = minimize(t, b, s, nil, pc, []*expr.Expr{x, y})
	if m[x] != 11 || m[y] != 0 {
		t.Fatalf("x>10: got x=%d y=%d, want 11 0", m[x], m[y])
	}

	// Variable order matters: minimizing x first can push y up.
	// x + y == 200 with x <= 150: x minimizes to 50... no wait — x can be 0
	// only if y == 200. Minimizing x first gives x=0, y=200.
	pc = []*expr.Expr{b.Eq(b.Add(x, y), b.Const(200, 8))}
	m = minimize(t, b, s, nil, pc, []*expr.Expr{x, y})
	if m[x] != 0 || m[y] != 200 {
		t.Fatalf("x+y=200 (x first): got x=%d y=%d, want 0 200", m[x], m[y])
	}
	m = minimize(t, b, s, nil, pc, []*expr.Expr{y, x})
	if m[y] != 0 || m[x] != 200 {
		t.Fatalf("x+y=200 (y first): got x=%d y=%d, want 200 0", m[x], m[y])
	}

	// Unsat returns nil without error.
	pc = []*expr.Expr{b.Eq(x, b.Const(1, 8)), b.Eq(x, b.Const(2, 8))}
	if m, err := s.MinModelIn(nil, pc, []*expr.Expr{x}); err != nil || m != nil {
		t.Fatalf("unsat: got model %v err %v, want nil nil", m, err)
	}
}

func TestMinModelBool(t *testing.T) {
	b := expr.NewBuilder()
	s := New(DefaultOptions())
	s.AttachBuilder(b)
	p := b.Var("p", 0)
	q := b.Var("q", 0)
	pc := []*expr.Expr{b.Or(p, q)} // minimal: p=0, q=1
	m := minimize(t, b, s, nil, pc, []*expr.Expr{p, q})
	if m[p] != 0 || m[q] != 1 {
		t.Fatalf("p∨q: got p=%d q=%d, want 0 1", m[p], m[q])
	}
}

// TestMinModelSessionAgreesWithOneShot pins the determinism claim: the
// canonical model must not depend on whether a session (with its persistent
// learned clauses) or the one-shot path answers the probes.
func TestMinModelSessionAgreesWithOneShot(t *testing.T) {
	build := func() (*expr.Builder, []*expr.Expr, []*expr.Expr) {
		b := expr.NewBuilder()
		vars := make([]*expr.Expr, 6)
		for i := range vars {
			vars[i] = b.Var("v"+string(rune('0'+i)), 8)
		}
		pc := []*expr.Expr{
			b.Ult(b.Const(5, 8), vars[0]),                       // v0 > 5
			b.Eq(b.BAnd(vars[1], b.Const(3, 8)), b.Const(2, 8)), // v1 & 3 == 2
			b.Or(b.Eq(vars[2], b.Const(7, 8)), b.Eq(vars[3], b.Const(9, 8))),
			b.Ule(vars[4], vars[5]),
			b.Ult(b.Const(100, 8), b.Add(vars[4], vars[5])),
		}
		return b, pc, vars
	}

	b1, pc1, vars1 := build()
	s1 := New(DefaultOptions())
	s1.AttachBuilder(b1)
	sess := s1.NewSession()
	// Warm the session with extra history so its internal state differs
	// maximally from a fresh one-shot solver.
	for _, c := range pc1 {
		sess.NoteConjunct(c)
		if _, err := s1.MayBeTrueIn(sess, pc1[:1], c); err != nil {
			t.Fatal(err)
		}
	}
	mSess, err := s1.MinModelIn(sess, pc1, vars1)
	if err != nil {
		t.Fatal(err)
	}

	b2, pc2, vars2 := build()
	s2 := New(Options{}) // every optimization off, one-shot everything
	s2.AttachBuilder(b2)
	mShot, err := s2.MinModelIn(nil, pc2, vars2)
	if err != nil {
		t.Fatal(err)
	}

	for i := range vars1 {
		if mSess[vars1[i]] != mShot[vars2[i]] {
			t.Fatalf("var %d: session path got %d, one-shot got %d", i, mSess[vars1[i]], mShot[vars2[i]])
		}
	}
	// And the result is the known lexicographic minimum.
	want := []uint64{6, 2, 0, 9, 0, 101}
	for i, v := range vars1 {
		if mSess[v] != want[i] {
			t.Fatalf("var %d: got %d, want %d", i, mSess[v], want[i])
		}
	}
}
