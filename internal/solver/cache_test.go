package solver

// Tests for the counterexample cache: fingerprint keying, collision safety,
// segment-based eviction, and model-aliasing defenses.

import (
	"slices"
	"testing"

	"symmerge/internal/expr"
)

func TestCacheCollisionChecked(t *testing.T) {
	c := newCexCache()
	// Two distinct fingerprints forced into the same bucket.
	idsA := []uint64{1, 2, 3}
	idsB := []uint64{4, 5, 6}
	const hash = 42
	c.insert(hash, idsA, true, Model{})
	c.insert(hash, idsB, false, nil)
	if sat, _, ok := c.lookup(hash, idsA, true); !ok || !sat {
		t.Fatalf("A: sat=%v ok=%v", sat, ok)
	}
	if sat, _, ok := c.lookup(hash, idsB, true); !ok || sat {
		t.Fatalf("B: sat=%v ok=%v", sat, ok)
	}
	if _, _, ok := c.lookup(hash, []uint64{7}, true); ok {
		t.Fatal("phantom hit for unseen fingerprint in occupied bucket")
	}
}

func TestCacheSegmentEviction(t *testing.T) {
	c := newCexCache()
	c.setSegCap(4) // rotate every 4 entries entering the current generation
	// Keep every probe in one shard so the per-shard rotation arithmetic
	// below is exact (shardFor stripes on the high hash bits).
	key := func(i uint64) []uint64 { return []uint64{i} }
	for i := uint64(0); i < 6; i++ {
		c.insert(i, key(i), true, nil)
	}
	// Inserts 0..3 filled generation 1 (rotated to old at insert 3);
	// 4..5 live in the current generation. Everything is still visible:
	// no full-reset cliff.
	for i := uint64(0); i < 6; i++ {
		if _, _, ok := c.lookup(i, key(i), true); !ok {
			t.Fatalf("entry %d evicted too early", i)
		}
	}
	if c.Len() > 2*4 {
		t.Fatalf("cache grew past both segments: %d", c.Len())
	}
	// The lookups above promoted 0..3 out of the old generation; after
	// the next rotation (insert 20 tips the refilled current generation)
	// the promoted entries must survive while never-again-touched ones
	// from the dropped generation are gone.
	c.insert(20, key(20), true, nil)
	if _, _, ok := c.lookup(20, key(20), true); !ok {
		t.Fatal("fresh entry 20 missing after rotation")
	}
	survivors, dropped := 0, 0
	for i := uint64(0); i < 6; i++ {
		if _, _, ok := c.lookup(i, key(i), true); ok {
			survivors++
		} else {
			dropped++
		}
	}
	if survivors == 0 {
		t.Fatal("rotation behaved like a full reset: nothing survived")
	}
	if c.Len() > 2*4 {
		t.Fatalf("cache grew past both segments: %d", c.Len())
	}
}

func TestCacheModelAliasing(t *testing.T) {
	b := expr.NewBuilder()
	s := New(DefaultOptions())
	x := b.Var("x", 8)
	q := []*expr.Expr{b.Eq(x, b.Const(9, 8))}
	ok, m1, err := s.CheckSat(q)
	if err != nil || !ok || m1[x] != 9 {
		t.Fatalf("setup: ok=%v err=%v m=%v", ok, err, m1)
	}
	// Corrupt the returned model; the cached copy must be unaffected.
	m1[x] = 77
	y := b.Var("y", 8)
	m1[y] = 1
	ok, m2, err := s.CheckSat(q)
	if err != nil || !ok {
		t.Fatalf("cached: ok=%v err=%v", ok, err)
	}
	if m2[x] != 9 {
		t.Fatalf("cached model corrupted by caller mutation: x=%d", m2[x])
	}
	if _, leaked := m2[y]; leaked {
		t.Fatal("caller-added binding leaked into the cache")
	}
}

func TestRecentModelAliasing(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{EnableModelReuse: true})
	x := b.Var("x", 8)
	if ok, _, _ := s.CheckSat([]*expr.Expr{b.Eq(x, b.Const(9, 8))}); !ok {
		t.Fatal("setup query unsat")
	}
	// Reuse hit hands out a model; mutate it.
	ok, m, _ := s.CheckSat([]*expr.Expr{b.Ugt(x, b.Const(3, 8))})
	if !ok || m[x] != 9 {
		t.Fatalf("reuse: ok=%v m=%v", ok, m)
	}
	m[x] = 0 // would violate x > 3 if retained by the ring
	ok, m2, _ := s.CheckSat([]*expr.Expr{b.Ugt(x, b.Const(4, 8))})
	if !ok || m2[x] != 9 {
		t.Fatalf("ring corrupted by caller mutation: ok=%v m=%v", ok, m2)
	}
}

func TestFingerprintCanonical(t *testing.T) {
	b := expr.NewBuilder()
	s := New(Options{})
	x := b.Var("x", 8)
	c1 := b.Ult(x, b.Const(5, 8))
	c2 := b.Ugt(x, b.Const(1, 8))
	h1, ids1 := s.fingerprint([]*expr.Expr{c1, c2})
	ids1 = append([]uint64(nil), ids1...) // scratch: copy before reuse
	h2, ids2 := s.fingerprint([]*expr.Expr{c2, c1, c2})
	if h1 != h2 || !slices.Equal(ids1, ids2) {
		t.Fatalf("order/duplicates changed the fingerprint: %x/%v vs %x/%v",
			h1, ids1, h2, ids2)
	}
	h3, _ := s.fingerprint([]*expr.Expr{c1})
	if h3 == h1 {
		t.Fatal("distinct constraint sets hashed equal (FNV degenerate)")
	}
}
