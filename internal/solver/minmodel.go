package solver

// Canonical model extraction for replayable test generation.
//
// A plain GetModel answer depends on solver internals — clause order, the
// counterexample cache's contents, learned clauses inherited from earlier
// queries — none of which is stable across worker counts, search strategies,
// or merging regimes. The corpus subsystem (internal/corpus) needs the
// *same* concrete input for the same path no matter how the exploration was
// scheduled, so test files stay byte-identical across runs and deduplication
// is meaningful. MinModelIn delivers that: it fixes the given variables, in
// the caller's order, to the lexicographically smallest satisfying
// assignment (bit by bit, most significant first, preferring 0). The result
// depends only on the *semantics* of the constraint set and the variable
// order — every probe consults a sat/unsat verdict, which is an objective
// fact, never a model, which is an artifact.

import "symmerge/internal/expr"

// MinModelIn returns the lexicographically minimal satisfying assignment of
// pc over vars (in the given order; bits compared most significant first),
// or nil when pc is unsatisfiable. Variables of width 0 are booleans.
// Constant entries in vars are skipped. The session, when non-nil, answers
// the probe chain incrementally: each committed bound extends the blasted
// prefix by one conjunct, exactly the blast-once/assume-many pattern
// sessions exist for. Requires an attached builder.
func (s *Solver) MinModelIn(sess *Session, pc []*expr.Expr, vars []*expr.Expr) (Model, error) {
	sat, m, err := s.checkSatIn(sess, pc, true)
	if err != nil || !sat {
		return nil, err
	}
	// cur accumulates pc plus every committed per-bit bound. m is a witness
	// model for cur throughout: probes only run where m disagrees with the
	// minimal choice, so already-minimal assignments cost zero queries.
	cur := append(make([]*expr.Expr, 0, len(pc)+len(vars)), pc...)
	out := make(Model, len(vars))
	commit := func(c *expr.Expr) {
		cur = append(cur, c)
		sess.NoteConjunct(c)
	}
	for _, v := range vars {
		if v.IsConst() {
			continue
		}
		if v.Width == 0 { // boolean
			val := truncEnv(m, v)
			if val == 0 {
				commit(s.build.Not(v))
				out[v] = 0
				continue
			}
			ok, m2, err := s.checkSatIn(sess, append(cur, s.build.Not(v)), true)
			if err != nil {
				return nil, err
			}
			if ok {
				m = m2
				commit(s.build.Not(v))
				out[v] = 0
			} else {
				commit(v)
				out[v] = 1
			}
			continue
		}
		var val uint64
		for k := int(v.Width) - 1; k >= 0; k-- {
			mask := uint64(1) << uint(k)
			bit := s.build.BAnd(v, s.build.Const(mask, v.Width))
			zero := s.build.Eq(bit, s.build.Const(0, v.Width))
			if truncEnv(m, v)&mask == 0 {
				// The witness already has this bit low: minimal for free.
				commit(zero)
				continue
			}
			ok, m2, err := s.checkSatIn(sess, append(cur, zero), true)
			if err != nil {
				return nil, err
			}
			if ok {
				m = m2
				commit(zero)
			} else {
				// Every solution of cur has the bit high.
				commit(s.build.Eq(bit, s.build.Const(mask, v.Width)))
				val |= mask
			}
		}
		out[v] = val
	}
	return out, nil
}

// truncEnv reads a variable from a model with the don't-care convention
// (missing variables are zero — see expr.Env), truncated to its width.
func truncEnv(m Model, v *expr.Expr) uint64 {
	val := m[v]
	if v.Width == 0 {
		return val & 1
	}
	if v.Width < 64 {
		return val & ((1 << v.Width) - 1)
	}
	return val
}
