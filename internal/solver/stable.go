package solver

// The stable cache layer: a pluggable, builder-independent backend behind
// the counterexample cache, keyed by 128-bit content fingerprints
// (expr.Fingerprinter) instead of builder-local IDs. The in-memory ID cache
// stays the fast path; the stable layer is consulted only on an ID-cache
// miss and answers across builder rotations, process restarts, and
// near-repeat programs (independence groups shared between programs that
// differ elsewhere).
//
// The backend interface is defined here — not in internal/store — so the
// solver does not import its own persistence layer; internal/store
// implements StableBackend on top of its segment files.
//
// Soundness: verdicts are persisted only for queries that completed
// (err == nil); budget/timeout unknowns never enter the store. Models
// round-trip by (variable name, width), which identifies a variable in any
// builder. A persisted verdict can therefore only ever substitute for a
// solve that would have returned the same sat/unsat answer — and the
// canonical corpus derives from verdicts alone, so warm stores cannot
// change results, only skip work.

import (
	"sort"

	"symmerge/internal/expr"
)

// StableAssign is one variable binding of a persisted model, identified by
// name and width rather than by node pointer.
type StableAssign struct {
	Name  string `json:"n"`
	Width uint8  `json:"w"`
	Val   uint64 `json:"v,string"`
}

// StableBackend is a persistent verdict store keyed by stable query
// fingerprints. Implementations must be safe for concurrent use.
type StableBackend interface {
	// LookupCex returns the persisted verdict for a query fingerprint.
	LookupCex(fp expr.FP) (sat bool, model []StableAssign, ok bool)
	// InsertCex persists a verdict. Implementations may drop inserts
	// (capacity, shutdown); the layer is an accelerator, not a ledger.
	InsertCex(fp expr.FP, sat bool, model []StableAssign)
}

// AttachStable plugs a persistent backend behind the cache. The
// fingerprinter must be paired with the expression builder shared by every
// solver using this cache (fingerprints memoize by node pointer). Attach
// before the cache is shared with running solvers; the fields are read
// without synchronization afterwards.
func (c *Cache) AttachStable(b StableBackend, f *expr.Fingerprinter) {
	c.stable = b
	c.fper = f
}

// StableHits returns the aggregate count of queries (whole queries and
// independence groups) answered by the stable backend across all sharing
// solvers — the daemon's warm-cache counter.
func (c *Cache) StableHits() uint64 { return c.stableHits.Load() }

// stableFP canonicalizes a constraint set into one stable fingerprint.
func (s *Solver) stableFP(constraints []*expr.Expr) expr.FP {
	fps := s.keyFPs[:0]
	for _, c := range constraints {
		fps = append(fps, s.cache.fper.Of(c))
	}
	s.keyFPs = fps
	return expr.CombineFPs(fps)
}

// stableEnabled reports whether the stable layer can serve this solver: a
// backend is attached and the builder is available to materialize models.
func (s *Solver) stableEnabled() bool {
	return s.opts.EnableCexCache && s.cache.stable != nil && s.build != nil
}

// stableLookup consults the persistent backend for a constraint set and
// materializes the model into this solver's builder on a hit.
func (s *Solver) stableLookup(constraints []*expr.Expr) (bool, Model, bool) {
	fp := s.stableFP(constraints)
	sat, assigns, ok := s.cache.stable.LookupCex(fp)
	if !ok {
		return false, nil, false
	}
	s.cache.stableHits.Add(1)
	var m Model
	if sat {
		m = make(Model, len(assigns))
		for _, a := range assigns {
			m[s.build.Var(a.Name, a.Width)] = a.Val
		}
	}
	return sat, m, true
}

// stableInsert persists a completed verdict for a constraint set.
func (s *Solver) stableInsert(constraints []*expr.Expr, sat bool, m Model) {
	fp := s.stableFP(constraints)
	s.cache.stable.InsertCex(fp, sat, stableModel(m))
}

// stableModel serializes a model by (name, width), sorted by name for
// deterministic wire bytes. Non-variable keys (never produced by the
// blaster) are skipped rather than trusted.
func stableModel(m Model) []StableAssign {
	if len(m) == 0 {
		return nil
	}
	out := make([]StableAssign, 0, len(m))
	for v, val := range m {
		if v.Kind != expr.KVar {
			continue
		}
		out = append(out, StableAssign{Name: v.Name, Width: v.Width, Val: val})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Width < out[j].Width
	})
	return out
}
