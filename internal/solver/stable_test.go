package solver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"symmerge/internal/expr"
)

// memBackend is a map-backed StableBackend for tests.
type memBackend struct {
	mu      sync.Mutex
	entries map[expr.FP]memEntry
	inserts int
}

type memEntry struct {
	sat   bool
	model []StableAssign
}

func newMemBackend() *memBackend { return &memBackend{entries: map[expr.FP]memEntry{}} }

func (b *memBackend) LookupCex(fp expr.FP) (bool, []StableAssign, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[fp]
	return e.sat, e.model, ok
}

func (b *memBackend) InsertCex(fp expr.FP, sat bool, model []StableAssign) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inserts++
	b.entries[fp] = memEntry{sat: sat, model: model}
}

// domainSolver builds a (builder, cache-with-stable-backend, solver) triple
// the way symx.Domain wires them.
func domainSolver(back StableBackend) (*expr.Builder, *Solver) {
	b := expr.NewBuilder()
	c := NewSharedCache()
	c.AttachStable(back, &expr.Fingerprinter{})
	opts := DefaultOptions()
	opts.SharedCache = c
	s := New(opts)
	s.AttachBuilder(b)
	return b, s
}

// queries issues a fixed mixed workload (sat with model, unsat, grouped) and
// returns the verdicts observed.
func queries(t *testing.T, b *expr.Builder, s *Solver) []bool {
	t.Helper()
	x, y := b.Var("x", 8), b.Var("y", 8)
	sets := [][]*expr.Expr{
		{b.Eq(b.Add(x, b.Const(1, 8)), b.Const(5, 8))},
		{b.Ult(x, b.Const(3, 8)), b.Ugt(x, b.Const(5, 8))},
		// Two independent groups: x-only and y-only conjuncts.
		{b.Ugt(x, b.Const(200, 8)), b.Eq(b.Mul(y, b.Const(3, 8)), b.Const(33, 8))},
	}
	var out []bool
	for _, set := range sets {
		ok, m, err := s.CheckSat(set)
		if err != nil {
			t.Fatalf("CheckSat: %v", err)
		}
		if ok && !modelSatisfies(m, set) {
			t.Fatalf("returned model does not satisfy the constraints: %v", m)
		}
		out = append(out, ok)
	}
	return out
}

func TestStableBackendWarmHit(t *testing.T) {
	back := newMemBackend()

	bCold, sCold := domainSolver(back)
	cold := queries(t, bCold, sCold)
	if sCold.Stats.StableHits != 0 {
		t.Fatalf("cold run claims %d stable hits", sCold.Stats.StableHits)
	}
	if back.inserts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// Fresh builder + fresh ID cache, same backend: the warm "process".
	bWarm, sWarm := domainSolver(back)
	warm := queries(t, bWarm, sWarm)
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("query %d: cold verdict %v, warm verdict %v", i, cold[i], warm[i])
		}
	}
	if sWarm.Stats.StableHits == 0 {
		t.Fatalf("warm run hit the stable layer 0 times (SAT calls: %d)", sWarm.Stats.SATCalls)
	}
	if sWarm.Stats.SATCalls >= sCold.Stats.SATCalls {
		t.Errorf("warm run did not save SAT calls: cold %d, warm %d",
			sCold.Stats.SATCalls, sWarm.Stats.SATCalls)
	}
}

func TestStableGroupHitAcrossDifferentQueries(t *testing.T) {
	back := newMemBackend()

	b1, s1 := domainSolver(back)
	x, y := b1.Var("x", 8), b1.Var("y", 8)
	// Solve {P(x), Q(y)}: group verdicts for P and Q persist individually.
	if ok, _, err := s1.CheckSat([]*expr.Expr{
		b1.Eq(b1.Add(x, b1.Const(1, 8)), b1.Const(5, 8)),
		b1.Eq(b1.Mul(y, b1.Const(3, 8)), b1.Const(33, 8)),
	}); err != nil || !ok {
		t.Fatalf("seed query: ok=%v err=%v", ok, err)
	}

	// A different whole query that shares group P(x) with a new y conjunct:
	// the whole-query fingerprint misses, the P group hits.
	b2, s2 := domainSolver(back)
	x2, y2 := b2.Var("x", 8), b2.Var("y", 8)
	if ok, _, err := s2.CheckSat([]*expr.Expr{
		b2.Eq(b2.Add(x2, b2.Const(1, 8)), b2.Const(5, 8)),
		b2.Ult(y2, b2.Const(7, 8)),
	}); err != nil || !ok {
		t.Fatalf("near-repeat query: ok=%v err=%v", ok, err)
	}
	if s2.Stats.StableHits != 0 {
		t.Errorf("whole-query fingerprint unexpectedly hit (%d)", s2.Stats.StableHits)
	}
	if s2.Stats.StableGroupHits == 0 {
		t.Error("shared independence group did not hit the stable layer")
	}
}

func TestStableNeverPersistsBudgetVerdicts(t *testing.T) {
	back := newMemBackend()
	b := expr.NewBuilder()
	c := NewSharedCache()
	c.AttachStable(back, &expr.Fingerprinter{})
	opts := DefaultOptions()
	opts.SharedCache = c
	s := New(opts)
	s.AttachBuilder(b)
	s.SetDeadline(time.Now().Add(-time.Second)) // every SAT call times out

	// Pigeonhole (6 pigeons, 5 holes): unsat, and hard enough that CDCL
	// reaches its first restart — where the expired deadline is checked —
	// before settling. The whole set is one independence group (the
	// disequalities chain every variable together), so the error
	// propagates out of solveQuery rather than being a per-group miss.
	var vars, cs []*expr.Expr
	for i := 0; i <= 5; i++ {
		vars = append(vars, b.Var(fmt.Sprintf("p%d", i), 8))
		cs = append(cs, b.Ult(vars[i], b.Const(5, 8)))
	}
	for i := range vars {
		for j := i + 1; j < len(vars); j++ {
			cs = append(cs, b.Not(b.Eq(vars[i], vars[j])))
		}
	}
	_, _, err := s.CheckSat(cs)
	if err == nil {
		t.Fatal("expired deadline did not produce a budget error")
	}
	if back.inserts != 0 {
		t.Fatalf("budget-limited verdict was persisted (%d inserts)", back.inserts)
	}
}
