package solver

// Concurrency tests for the sharded counterexample cache: many goroutines
// hammer overlapping fingerprints while generations rotate. Run under
// `go test -race` these double as the race-cleanliness proof for the
// parallel exploration subsystem's shared cache.

import (
	"sync"
	"testing"
)

// TestCacheConcurrentHammer has G goroutines insert and look up an
// overlapping key space small enough to force constant two-generation
// rotation. Every lookup that hits must return the verdict that was
// inserted for that fingerprint (sat iff the key is even), and the total
// size must stay bounded by both segments across all shards.
func TestCacheConcurrentHammer(t *testing.T) {
	t.Parallel()
	c := newCexCache()
	c.setSegCap(32) // rotate often

	const (
		goroutines = 8
		rounds     = 4000
		keySpace   = 256
	)
	// Spread keys over all shards: shardFor stripes on the high bits.
	hashOf := func(k uint64) uint64 { return k<<48 | k }
	idsOf := func(k uint64) []uint64 { return []uint64{k, k + 1} }

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := uint64(g)*2654435761 + 1
			for i := 0; i < rounds; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := (rng >> 33) % keySpace
				sat := k%2 == 0
				if i%3 == 0 {
					var m Model
					if sat {
						m = Model{}
					}
					c.insert(hashOf(k), idsOf(k), sat, m)
					continue
				}
				got, _, ok := c.lookup(hashOf(k), idsOf(k), i%7 == 0)
				if ok && got != sat {
					errs <- "wrong cached verdict under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if max := 2 * 32 * cacheShards; c.Len() > max {
		t.Fatalf("cache exceeded both generations across shards: %d > %d", c.Len(), max)
	}
	if c.Hits()+c.Misses() == 0 {
		t.Fatal("atomic hit/miss counters recorded nothing")
	}
}

// TestCacheConcurrentEvictionSurvives checks the two-generation discipline
// under concurrent insert: a continuously re-touched entry survives
// rotations triggered by other goroutines' inserts (promotion path), while
// the overall verdicts stay correct.
func TestCacheConcurrentEvictionSurvives(t *testing.T) {
	t.Parallel()
	c := newCexCache()
	c.setSegCap(16)

	hot := []uint64{99}
	const hotHash = uint64(99) << 48
	c.insert(hotHash, hot, true, Model{})

	// Churners: flood shard-spread keys to force rotations everywhere.
	var churn sync.WaitGroup
	for g := 0; g < 4; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for i := uint64(0); i < 3000; i++ {
				k := uint64(g)<<12 | i%512
				c.insert(k<<48|k, []uint64{k}, false, nil)
			}
		}(g)
	}
	// Toucher: keep the hot entry promoted. It may still age out between
	// touches (both generations can rotate past it); re-insert then, as
	// the solver would on the resulting miss. The verdict must never flip.
	stop := make(chan struct{})
	var touch sync.WaitGroup
	touch.Add(1)
	go func() {
		defer touch.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sat, _, ok := c.lookup(hotHash, hot, false)
			if ok && !sat {
				t.Error("hot entry changed verdict")
				return
			}
			if !ok {
				c.insert(hotHash, hot, true, Model{})
			}
		}
	}()
	churn.Wait()
	close(stop)
	touch.Wait()

	if sat, _, ok := c.lookup(hotHash, hot, false); ok && !sat {
		t.Fatal("hot entry corrupted")
	}
}
