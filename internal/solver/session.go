package solver

// Incremental solver sessions: blast-once/assume-many solving over the path
// condition.
//
// The engine's feasibility queries share an ever-growing path-condition
// prefix: a state that explores k branches issues queries pc, pc∧c1,
// pc∧c1∧c2, ... whose conjunct sets overlap almost entirely. The one-shot
// path (checkSAT) re-Tseitin-blasts the whole set for every query, paying
// O(n·k) encoding work per path. A Session instead owns one persistent
// sat.Solver + blaster and blasts each conjunct exactly once, guarded by an
// activation literal a_c with the clause (¬a_c ∨ blast(c)). A query over a
// conjunct set Q is then a single Solve(a_c for c in Q) call: conjuncts
// outside Q stay dormant (their activation literals are free and default to
// false), learned clauses persist across queries — they are derived from the
// clause database alone, never from the assumptions, so an unsat result
// under one assumption set cannot poison later queries — and the CDCL
// instance amortizes across the whole state lineage.
//
// Sessions fork on state fork. All forks share one sessionCore: the
// activation-literal discipline makes the core's clause database a superset
// encoding of every lineage's path condition, so sharing *is* the
// prefix-sharing the engine wants, with zero copying at fork time.

import (
	"time"

	"symmerge/internal/expr"
	"symmerge/internal/solver/sat"
)

// defaultRebaseVars bounds the shared CDCL instance: once the variable count
// passes the limit, the core is rebuilt empty and live conjuncts re-blast on
// demand. This keeps a long exploration from dragging an unbounded variable
// order and watch structure through every query (the CDCL search must assign
// every allocated variable before reporting sat).
const defaultRebaseVars = 1 << 17

// actRecord is the per-conjunct bookkeeping of a session core.
type actRecord struct {
	act  sat.Lit      // activation literal: act → conjunct holds
	vars []*expr.Expr // input variables of the conjunct (for model extraction)
}

// sessionCore is the shared incremental state behind one or more Session
// handles: a persistent SAT instance, its blaster, and the activation map.
type sessionCore struct {
	ss         *sat.Solver
	bl         *blaster
	acts       map[*expr.Expr]actRecord
	rebaseVars int
}

func newSessionCore(limit int) *sessionCore {
	ss := sat.New()
	return &sessionCore{
		ss:         ss,
		bl:         newBlaster(ss),
		acts:       make(map[*expr.Expr]actRecord, 64),
		rebaseVars: limit,
	}
}

// reset discards the blasted state; conjuncts re-blast lazily on next use.
func (c *sessionCore) reset() {
	c.ss = sat.New()
	c.bl = newBlaster(c.ss)
	c.acts = make(map[*expr.Expr]actRecord, 64)
}

// addConjunct blasts a conjunct behind a fresh activation literal.
func (c *sessionCore) addConjunct(e *expr.Expr) actRecord {
	l := c.bl.blastBool(e)
	a := c.bl.fresh()
	c.ss.AddClause(a.Flip(), l)
	vs := map[*expr.Expr]bool{}
	e.Vars(vs)
	vars := make([]*expr.Expr, 0, len(vs))
	for v := range vs {
		vars = append(vars, v)
	}
	rec := actRecord{act: a, vars: vars}
	c.acts[e] = rec
	return rec
}

// Session answers satisfiability queries over conjunct sets that extend an
// already-blasted prefix. Obtain one with Solver.NewSession, thread it
// through Solver.CheckSatIn / MayBeTrueIn, and Fork it wherever the owning
// execution state forks.
type Session struct {
	solv *Solver
	core *sessionCore
}

// NewSession returns a fresh incremental session bound to this solver.
func (s *Solver) NewSession() *Session {
	return &Session{solv: s, core: newSessionCore(defaultRebaseVars)}
}

// Fork returns a session for a diverging state lineage. The blasted prefix
// is shared: both handles keep answering from the same underlying instance,
// selecting their own conjunct sets via assumptions.
func (sess *Session) Fork() *Session {
	if sess == nil {
		return nil
	}
	return &Session{solv: sess.solv, core: sess.core}
}

// Conjuncts reports how many distinct conjuncts the session has blasted.
func (sess *Session) Conjuncts() int { return len(sess.core.acts) }

// NumVars reports the persistent SAT instance's variable count.
func (sess *Session) NumVars() int { return sess.core.ss.NumVars() }

// SetRebaseLimit overrides the variable-count threshold that triggers a core
// rebuild (testing knob; the default suits production use).
func (sess *Session) SetRebaseLimit(n int) { sess.core.rebaseVars = n }

// NoteConjunct blasts a path-condition conjunct into the session core if it
// is not already there. The engine calls this whenever a conjunct joins a
// state's path condition, keeping the session in sync even when the query
// that admitted the conjunct was answered by a cache or model-reuse fast
// path (which never reaches the session). Each distinct conjunct is blasted
// exactly once per core regardless of how many queries or lineages use it.
func (sess *Session) NoteConjunct(c *expr.Expr) {
	if sess == nil || c == nil || c.IsConst() {
		return
	}
	if _, ok := sess.core.acts[c]; !ok {
		sess.core.addConjunct(c)
	}
}

// misses counts the conjuncts of live not yet blasted into the core. The
// routing policy in Solver.CheckSatIn sends a query to the session only when
// it extends a known prefix — at most one new conjunct — and falls back to
// the one-shot path (with independence slicing and equality substitution)
// otherwise.
func (sess *Session) misses(live []*expr.Expr) int {
	n := 0
	for _, c := range live {
		if _, ok := sess.core.acts[c]; !ok {
			n++
		}
	}
	return n
}

// check decides the conjunction of live under the session's persistent
// instance. Precondition: live has passed CheckSat's concrete fast path (no
// constant conjuncts). On sat, the model covers exactly the variables of
// live.
func (sess *Session) check(live []*expr.Expr) (bool, Model, error) {
	s := sess.solv
	core := sess.core
	rebased := false
	if core.ss.NumVars() >= core.rebaseVars {
		core.reset()
		rebased = true
		s.Stats.SessionRebases++
	}
	s.Stats.SATCalls++
	start := time.Now()
	defer func() { s.Stats.SATTime += time.Since(start) }()

	core.ss.Budget = s.opts.ConflictBudget
	core.ss.Deadline = s.deadline
	v0, c0 := core.ss.NumVars(), core.ss.NumClauses()
	assumps := make([]sat.Lit, len(live))
	for i, c := range live {
		rec, ok := core.acts[c]
		if ok {
			s.Stats.SessionBlastReuse++
		} else {
			// Unknown conjuncts register even when they are one-off
			// probes (negated bounds checks, assert refutations) that
			// never join a path condition: the registration overhead
			// beyond the Tseitin circuit — which any answer needs and
			// which the blaster caches — is one activation variable
			// and one binary clause per distinct hash-consed
			// expression, and registering keeps prefix walks routing
			// incrementally without special-casing the query tail.
			rec = core.addConjunct(c)
		}
		assumps[i] = rec.act
	}
	// Per-query encoding effort: only the delta this query blasted counts;
	// reused conjunct encodings are free — the whole point of the session.
	s.Stats.SATVars += uint64(core.ss.NumVars() - v0)
	s.Stats.SATClauses += core.ss.NumClauses() - c0
	if rebased && core.ss.NumVars() >= core.rebaseVars {
		// The live set alone overflows the limit: the reset we just did
		// could not get the core under it, and re-triggering on every
		// query would degrade to a full re-blast per call with no
		// learned-clause reuse. Grow the limit geometrically instead so
		// the lineage stays incremental.
		core.rebaseVars = core.ss.NumVars() * 2
	}
	switch core.ss.Solve(assumps...) {
	case sat.Sat:
		vs := map[*expr.Expr]bool{}
		for _, c := range live {
			for _, v := range core.acts[c].vars {
				vs[v] = true
			}
		}
		m := make(Model, len(vs))
		for v := range vs {
			m[v] = core.bl.modelValue(v)
		}
		return true, m, nil
	case sat.Unsat:
		return false, nil, nil
	default:
		s.Stats.Timeouts++
		return false, nil, ErrBudget
	}
}
