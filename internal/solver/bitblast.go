// Package solver is the SMT layer of the symbolic execution engine: it
// decides satisfiability of conjunctions of boolean expr constraints over
// bitvectors by bit-blasting to CNF (Tseitin encoding) and running the CDCL
// solver from symmerge/internal/solver/sat.
//
// It plays the role STP plays for KLEE in the paper, including the
// KLEE-style optimizations that the paper's measurements rely on:
// constraint-independence slicing, a counterexample cache, and a
// model-reuse fast path. On top of the one-shot path, Session provides
// incremental blast-once/assume-many solving over a shared path-condition
// prefix (see session.go).
package solver

import (
	"fmt"

	"symmerge/internal/expr"
	"symmerge/internal/solver/sat"
)

// blaster translates expressions to CNF over a sat.Solver. Booleans map to
// single literals; bitvectors map to literal slices, LSB first.
type blaster struct {
	s    *sat.Solver
	bits map[*expr.Expr][]sat.Lit // bv cache
	bool map[*expr.Expr]sat.Lit   // bool cache
	vars map[*expr.Expr][]sat.Lit // input variable -> its bits

	litTrue  sat.Lit
	litFalse sat.Lit
}

func newBlaster(s *sat.Solver) *blaster {
	b := &blaster{
		s:    s,
		bits: make(map[*expr.Expr][]sat.Lit),
		bool: make(map[*expr.Expr]sat.Lit),
		vars: make(map[*expr.Expr][]sat.Lit),
	}
	t := s.NewVar()
	s.AddClause(sat.MkLit(t, false))
	b.litTrue = sat.MkLit(t, false)
	b.litFalse = sat.MkLit(t, true)
	return b
}

func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.litTrue
	}
	return b.litFalse
}

func (b *blaster) fresh() sat.Lit { return sat.MkLit(b.s.NewVar(), false) }

// assertTrue adds the top-level constraint e (a boolean expression).
func (b *blaster) assertTrue(e *expr.Expr) {
	l := b.blastBool(e)
	b.s.AddClause(l)
}

// --- Tseitin gates ---

// gateAnd returns a literal equivalent to x ∧ y.
func (b *blaster) gateAnd(x, y sat.Lit) sat.Lit {
	if x == b.litFalse || y == b.litFalse {
		return b.litFalse
	}
	if x == b.litTrue {
		return y
	}
	if y == b.litTrue {
		return x
	}
	if x == y {
		return x
	}
	if x == y.Flip() {
		return b.litFalse
	}
	o := b.fresh()
	b.s.AddClause(o.Flip(), x)
	b.s.AddClause(o.Flip(), y)
	b.s.AddClause(o, x.Flip(), y.Flip())
	return o
}

func (b *blaster) gateOr(x, y sat.Lit) sat.Lit {
	return b.gateAnd(x.Flip(), y.Flip()).Flip()
}

// gateAndN returns a literal equivalent to the conjunction of xs, encoded
// as ONE clause group: n short clauses (¬o ∨ xᵢ) plus one long clause
// (o ∨ ¬x₁ ∨ … ∨ ¬xₙ). Compared to a chain of binary AND gates this costs
// one Tseitin variable and n+1 clauses instead of n−1 variables and
// 3(n−1) clauses — the reason the blaster keeps n-ary connectives n-ary.
// The list is normalized first (constants, duplicates, complements), so
// degenerate inputs cost nothing. xs is scratch and may be reordered.
func (b *blaster) gateAndN(xs []sat.Lit) sat.Lit {
	// Normalize: drop true, shortcut on false, dedupe, detect x ∧ ¬x.
	w := 0
	for _, x := range xs {
		if x == b.litTrue {
			continue
		}
		if x == b.litFalse {
			return b.litFalse
		}
		dup := false
		for _, o := range xs[:w] {
			if o == x {
				dup = true
				break
			}
			if o == x.Flip() {
				return b.litFalse
			}
		}
		if !dup {
			xs[w] = x
			w++
		}
	}
	xs = xs[:w]
	switch len(xs) {
	case 0:
		return b.litTrue
	case 1:
		return xs[0]
	case 2:
		return b.gateAnd(xs[0], xs[1])
	}
	o := b.fresh()
	long := make([]sat.Lit, 0, len(xs)+1)
	for _, x := range xs {
		b.s.AddClause(o.Flip(), x)
		long = append(long, x.Flip())
	}
	b.s.AddClause(append(long, o)...)
	return o
}

// gateOrN is the dual of gateAndN: one clause group for an n-ary OR.
func (b *blaster) gateOrN(xs []sat.Lit) sat.Lit {
	for i := range xs {
		xs[i] = xs[i].Flip()
	}
	return b.gateAndN(xs).Flip()
}

// gateXor returns a literal equivalent to x ⊕ y.
func (b *blaster) gateXor(x, y sat.Lit) sat.Lit {
	if x == b.litFalse {
		return y
	}
	if y == b.litFalse {
		return x
	}
	if x == b.litTrue {
		return y.Flip()
	}
	if y == b.litTrue {
		return x.Flip()
	}
	if x == y {
		return b.litFalse
	}
	if x == y.Flip() {
		return b.litTrue
	}
	o := b.fresh()
	b.s.AddClause(o.Flip(), x, y)
	b.s.AddClause(o.Flip(), x.Flip(), y.Flip())
	b.s.AddClause(o, x, y.Flip())
	b.s.AddClause(o, x.Flip(), y)
	return o
}

// gateIte returns a literal equivalent to c ? t : f.
func (b *blaster) gateIte(c, t, f sat.Lit) sat.Lit {
	if c == b.litTrue {
		return t
	}
	if c == b.litFalse {
		return f
	}
	if t == f {
		return t
	}
	if t == b.litTrue && f == b.litFalse {
		return c
	}
	if t == b.litFalse && f == b.litTrue {
		return c.Flip()
	}
	o := b.fresh()
	b.s.AddClause(o.Flip(), c.Flip(), t)
	b.s.AddClause(o.Flip(), c, f)
	b.s.AddClause(o, c.Flip(), t.Flip())
	b.s.AddClause(o, c, f.Flip())
	return o
}

// fullAdder returns (sum, carry) for x + y + cin.
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.gateXor(b.gateXor(x, y), cin)
	cout = b.gateOr(b.gateAnd(x, y), b.gateAnd(cin, b.gateXor(x, y)))
	return sum, cout
}

// adder returns x + y + cin over equal-length vectors, plus the carry out.
func (b *blaster) adder(x, y []sat.Lit, cin sat.Lit) ([]sat.Lit, sat.Lit) {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

func flipAll(xs []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(xs))
	for i, x := range xs {
		out[i] = x.Flip()
	}
	return out
}

// negate returns the two's complement of x.
func (b *blaster) negate(x []sat.Lit) []sat.Lit {
	zero := make([]sat.Lit, len(x))
	for i := range zero {
		zero[i] = b.litFalse
	}
	out, _ := b.adder(flipAll(x), zero, b.litTrue)
	return out
}

// eqVec returns a literal for x = y.
func (b *blaster) eqVec(x, y []sat.Lit) sat.Lit {
	acc := b.litTrue
	for i := range x {
		acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).Flip())
	}
	return acc
}

// ultVec returns a literal for x <u y via the borrow of x - y.
func (b *blaster) ultVec(x, y []sat.Lit) sat.Lit {
	// x < y iff x - y underflows iff carry out of x + ~y + 1 is 0.
	_, carry := b.adder(x, flipAll(y), b.litTrue)
	return carry.Flip()
}

// sltVec returns a literal for signed x < y: flip the sign bits and compare
// unsigned.
func (b *blaster) sltVec(x, y []sat.Lit) sat.Lit {
	n := len(x)
	x2 := append(append([]sat.Lit{}, x[:n-1]...), x[n-1].Flip())
	y2 := append(append([]sat.Lit{}, y[:n-1]...), y[n-1].Flip())
	return b.ultVec(x2, y2)
}

// muxVec returns c ? t : f elementwise.
func (b *blaster) muxVec(c sat.Lit, t, f []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(t))
	for i := range t {
		out[i] = b.gateIte(c, t[i], f[i])
	}
	return out
}

// shiftConstVec shifts x left (dir>0) or logically right (dir<0) by k,
// filling with fill.
func (b *blaster) shiftConstVec(x []sat.Lit, k int, left bool, fill sat.Lit) []sat.Lit {
	n := len(x)
	out := make([]sat.Lit, n)
	for i := range out {
		var src int
		if left {
			src = i - k
		} else {
			src = i + k
		}
		if src >= 0 && src < n {
			out[i] = x[src]
		} else {
			out[i] = fill
		}
	}
	return out
}

// barrelShift builds a barrel shifter for a symbolic shift amount.
func (b *blaster) barrelShift(x, amt []sat.Lit, left bool, fill sat.Lit) []sat.Lit {
	n := len(x)
	out := x
	// Stage i shifts by 2^i when amt[i] is set.
	for i := 0; i < len(amt) && (1<<i) < 2*n; i++ {
		shifted := b.shiftConstVec(out, 1<<i, left, fill)
		out = b.muxVec(amt[i], shifted, out)
	}
	// If any higher amt bit is set, the result is all fill.
	anyHigh := b.litFalse
	for i := 0; i < len(amt); i++ {
		if 1<<i >= 2*n {
			anyHigh = b.gateOr(anyHigh, amt[i])
		}
	}
	if anyHigh != b.litFalse {
		allFill := make([]sat.Lit, n)
		for i := range allFill {
			allFill[i] = fill
		}
		out = b.muxVec(anyHigh, allFill, out)
	}
	// Shift amounts in [n, 2n) also saturate; handle amounts ≥ n.
	geN := b.ultVec(amt, b.constVec(uint64(n), uint8(len(amt)))).Flip()
	allFill := make([]sat.Lit, n)
	for i := range allFill {
		allFill[i] = fill
	}
	return b.muxVec(geN, allFill, out)
}

func (b *blaster) constVec(v uint64, w uint8) []sat.Lit {
	out := make([]sat.Lit, w)
	for i := range out {
		out[i] = b.constLit(v>>uint(i)&1 == 1)
	}
	return out
}

// mulVec builds a shift-and-add multiplier.
func (b *blaster) mulVec(x, y []sat.Lit) []sat.Lit {
	n := len(x)
	acc := b.constVec(0, uint8(n))
	for i := 0; i < n; i++ {
		// partial = y[i] ? (x << i) : 0
		shifted := b.shiftConstVec(x, i, true, b.litFalse)
		partial := make([]sat.Lit, n)
		for j := range partial {
			partial[j] = b.gateAnd(y[i], shifted[j])
		}
		acc, _ = b.adder(acc, partial, b.litFalse)
	}
	return acc
}

// udivVec builds a restoring-division circuit returning (quotient,
// remainder) with the SMT-LIB convention handled by the caller.
func (b *blaster) udivVec(x, y []sat.Lit) (quot, rem []sat.Lit) {
	n := len(x)
	rem = b.constVec(0, uint8(n))
	quot = make([]sat.Lit, n)
	for i := n - 1; i >= 0; i-- {
		// rem = (rem << 1) | x[i]
		rem = append([]sat.Lit{x[i]}, rem[:n-1]...)
		// if rem >= y { rem -= y; quot[i] = 1 }
		ge := b.ultVec(rem, y).Flip()
		diff, _ := b.adder(rem, flipAll(y), b.litTrue)
		rem = b.muxVec(ge, diff, rem)
		quot[i] = ge
	}
	return quot, rem
}

// blastBool translates a boolean expression to a literal.
func (b *blaster) blastBool(e *expr.Expr) sat.Lit {
	if !e.IsBool() {
		panic(fmt.Sprintf("solver: blastBool on %s", e))
	}
	if l, ok := b.bool[e]; ok {
		return l
	}
	var l sat.Lit
	switch e.Kind {
	case expr.KConst:
		l = b.constLit(e.Val == 1)
	case expr.KVar:
		l = b.fresh()
		b.vars[e] = []sat.Lit{l}
	case expr.KNot:
		l = b.blastBool(e.Kids[0]).Flip()
	case expr.KAnd, expr.KOr:
		// N-ary connectives blast to one clause group per distinct node;
		// the memo above makes that "once per node" DAG-wide.
		lits := make([]sat.Lit, len(e.Kids))
		for i, k := range e.Kids {
			lits[i] = b.blastBool(k)
		}
		if e.Kind == expr.KAnd {
			l = b.gateAndN(lits)
		} else {
			l = b.gateOrN(lits)
		}
	case expr.KXor:
		l = b.gateXor(b.blastBool(e.Kids[0]), b.blastBool(e.Kids[1]))
	case expr.KImplies:
		l = b.gateOr(b.blastBool(e.Kids[0]).Flip(), b.blastBool(e.Kids[1]))
	case expr.KEq:
		if e.Kids[0].IsBool() {
			l = b.gateXor(b.blastBool(e.Kids[0]), b.blastBool(e.Kids[1])).Flip()
		} else {
			l = b.eqVec(b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1]))
		}
	case expr.KUlt:
		l = b.ultVec(b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1]))
	case expr.KUle:
		l = b.ultVec(b.blastBV(e.Kids[1]), b.blastBV(e.Kids[0])).Flip()
	case expr.KSlt:
		l = b.sltVec(b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1]))
	case expr.KSle:
		l = b.sltVec(b.blastBV(e.Kids[1]), b.blastBV(e.Kids[0])).Flip()
	case expr.KIte:
		l = b.gateIte(b.blastBool(e.Kids[0]), b.blastBool(e.Kids[1]), b.blastBool(e.Kids[2]))
	default:
		panic(fmt.Sprintf("solver: unexpected bool kind %v", e.Kind))
	}
	b.bool[e] = l
	return l
}

// blastBV translates a bitvector expression to its literal vector.
func (b *blaster) blastBV(e *expr.Expr) []sat.Lit {
	if e.IsBool() {
		panic(fmt.Sprintf("solver: blastBV on bool %s", e))
	}
	if v, ok := b.bits[e]; ok {
		return v
	}
	var out []sat.Lit
	switch e.Kind {
	case expr.KConst:
		out = b.constVec(e.Val, e.Width)
	case expr.KVar:
		out = make([]sat.Lit, e.Width)
		for i := range out {
			out[i] = b.fresh()
		}
		b.vars[e] = out
	case expr.KAdd:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out, _ = b.adder(x, y, b.litFalse)
	case expr.KSub:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out, _ = b.adder(x, flipAll(y), b.litTrue)
	case expr.KMul:
		out = b.mulVec(b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1]))
	case expr.KUDiv, expr.KURem:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		quot, rem := b.udivVec(x, y)
		yZero := b.eqVec(y, b.constVec(0, e.Width))
		if e.Kind == expr.KUDiv {
			// SMT-LIB: x udiv 0 = all ones.
			ones := b.constVec(^uint64(0), e.Width)
			out = b.muxVec(yZero, ones, quot)
		} else {
			// SMT-LIB: x urem 0 = x.
			out = b.muxVec(yZero, x, rem)
		}
	case expr.KSDiv, expr.KSRem:
		out = b.blastSigned(e)
	case expr.KBAnd:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = make([]sat.Lit, len(x))
		for i := range x {
			out[i] = b.gateAnd(x[i], y[i])
		}
	case expr.KBOr:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = make([]sat.Lit, len(x))
		for i := range x {
			out[i] = b.gateOr(x[i], y[i])
		}
	case expr.KBXor:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = make([]sat.Lit, len(x))
		for i := range x {
			out[i] = b.gateXor(x[i], y[i])
		}
	case expr.KBNot:
		out = flipAll(b.blastBV(e.Kids[0]))
	case expr.KNeg:
		out = b.negate(b.blastBV(e.Kids[0]))
	case expr.KShl:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = b.barrelShift(x, y, true, b.litFalse)
	case expr.KLShr:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = b.barrelShift(x, y, false, b.litFalse)
	case expr.KAShr:
		x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		sign := x[len(x)-1]
		// Arithmetic shift saturates at width-1, which the fill
		// already realizes (all bits become the sign).
		out = b.barrelShift(x, y, false, sign)
	case expr.KZExt:
		x := b.blastBV(e.Kids[0])
		out = make([]sat.Lit, e.Width)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = b.litFalse
			}
		}
	case expr.KSExt:
		x := b.blastBV(e.Kids[0])
		sign := x[len(x)-1]
		out = make([]sat.Lit, e.Width)
		for i := range out {
			if i < len(x) {
				out[i] = x[i]
			} else {
				out[i] = sign
			}
		}
	case expr.KExtract:
		x := b.blastBV(e.Kids[0])
		out = make([]sat.Lit, e.Width)
		copy(out, x[e.Aux:int(e.Aux)+int(e.Width)])
	case expr.KConcat:
		hi, lo := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
		out = make([]sat.Lit, 0, len(hi)+len(lo))
		out = append(out, lo...)
		out = append(out, hi...)
	case expr.KIte:
		c := b.blastBool(e.Kids[0])
		out = b.muxVec(c, b.blastBV(e.Kids[1]), b.blastBV(e.Kids[2]))
	default:
		panic(fmt.Sprintf("solver: unexpected bv kind %v", e.Kind))
	}
	if len(out) != int(e.Width) {
		panic(fmt.Sprintf("solver: blast width mismatch for %s: got %d", e, len(out)))
	}
	b.bits[e] = out
	return out
}

// blastSigned encodes sdiv/srem via unsigned division on magnitudes,
// following the SMT-LIB sign conventions.
func (b *blaster) blastSigned(e *expr.Expr) []sat.Lit {
	x, y := b.blastBV(e.Kids[0]), b.blastBV(e.Kids[1])
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	absX := b.muxVec(sx, b.negate(x), x)
	absY := b.muxVec(sy, b.negate(y), y)
	quot, rem := b.udivVec(absX, absY)
	yZero := b.eqVec(y, b.constVec(0, e.Width))
	if e.Kind == expr.KSDiv {
		// Sign of quotient: sx ⊕ sy.
		neg := b.gateXor(sx, sy)
		q := b.muxVec(neg, b.negate(quot), quot)
		// SMT-LIB: sdiv by 0 is 1 if x < 0 else -1.
		one := b.constVec(1, e.Width)
		ones := b.constVec(^uint64(0), e.Width)
		div0 := b.muxVec(sx, one, ones)
		return b.muxVec(yZero, div0, q)
	}
	// srem: sign follows the dividend; srem by 0 = x.
	r := b.muxVec(sx, b.negate(rem), rem)
	return b.muxVec(yZero, x, r)
}

// modelValue reads variable v's value out of the SAT model.
func (b *blaster) modelValue(v *expr.Expr) uint64 {
	lits, ok := b.vars[v]
	if !ok {
		return 0
	}
	var out uint64
	for i, l := range lits {
		if b.s.ValueLit(l) {
			out |= 1 << uint(i)
		}
	}
	return out
}
