package solver

import (
	"errors"
	"fmt"
	"maps"
	"sort"
	"strings"
	"time"

	"symmerge/internal/expr"
	"symmerge/internal/obs"
	"symmerge/internal/solver/sat"
)

// Model is a satisfying assignment, keyed by variable node.
type Model map[*expr.Expr]uint64

// String renders the model deterministically (sorted by variable name).
func (m Model) String() string {
	type kv struct {
		name string
		val  uint64
	}
	kvs := make([]kv, 0, len(m))
	for v, val := range m {
		kvs = append(kvs, kv{v.Name, val})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].name < kvs[j].name })
	var b strings.Builder
	for i, e := range kvs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", e.name, e.val)
	}
	return b.String()
}

// Stats counts solver-frontend activity. The engine reads these to report
// the paper's query metrics.
type Stats struct {
	Queries        uint64        // top-level satisfiability questions
	CacheHits      uint64        // answered by the counterexample cache
	ModelReuseHits uint64        // answered by re-evaluating a recent model
	SATCalls       uint64        // queries that reached bit-blasting + CDCL
	SATTime        time.Duration // time spent inside CDCL (incl. blasting)
	IndepSliced    uint64        // queries shrunk by independence slicing
	Timeouts       uint64        // budget-limited unknowns

	// Incremental-session activity (see session.go).
	SessionQueries    uint64 // queries answered by a persistent session
	SessionBlastReuse uint64 // conjuncts whose blasting was reused
	SessionBypass     uint64 // session available but query fell back to one-shot
	SessionRebases    uint64 // persistent cores rebuilt at the size limit

	// Stable (persistent) cache activity — see stable.go. StableHits are
	// whole queries answered by the attached StableBackend; StableGroupHits
	// are individual independence groups answered inside solveQuery (the
	// near-repeat-program path: group verdicts hit even when the whole
	// query's fingerprint differs).
	StableHits      uint64
	StableGroupHits uint64

	// SummaryQueries counts assume-summary feasibility queries: entry-guard
	// checks issued while a call site is discharged from the compositional
	// summary cache (the solver's summary scope — see SummaryScope).
	SummaryQueries uint64

	// Preprocessing-pass pipeline activity (see passes.go). Node counts
	// are summed Expr.Nodes() tree sizes (cheap, cached per node), not
	// distinct-DAG-node counts.
	PreprocQueries  uint64 // one-shot queries that ran the pipeline
	PreprocNodesIn  uint64 // constraint nodes entering the pipeline
	PreprocNodesOut uint64 // constraint nodes after all passes

	// CNF encoding effort: variables allocated and problem clauses
	// emitted by bit-blasting, summed over queries (on the session path,
	// only the newly blasted delta counts — reused encodings are free).
	SATVars    uint64
	SATClauses uint64
}

// Options configures a Solver.
type Options struct {
	// EnableCexCache turns on the counterexample cache (KLEE-style).
	EnableCexCache bool
	// EnableIndependence turns on constraint-independence slicing.
	EnableIndependence bool
	// EnableModelReuse tries recent models before calling SAT.
	EnableModelReuse bool
	// ConflictBudget bounds a single CDCL call; 0 means unlimited.
	ConflictBudget uint64
	// SharedCache, when non-nil, replaces the solver's private
	// counterexample cache with a cache shared across several solvers
	// (parallel exploration workers). The cache keys on builder-unique
	// expression IDs, so every sharing solver must also share one
	// expr.Builder. Ignored unless EnableCexCache is set.
	SharedCache *Cache

	// Passes is the ordered preprocessing pipeline applied to one-shot
	// queries before bit-blasting (see passes.go). nil selects the
	// default: simplification and equality substitution, plus
	// independence slicing when EnableIndependence is set. An explicit
	// empty slice disables preprocessing entirely — the
	// `-preprocess off` ablation baseline.
	Passes []Pass
}

// DefaultOptions enables every optimization, mirroring the paper's KLEE
// baseline configuration.
func DefaultOptions() Options {
	return Options{
		EnableCexCache:     true,
		EnableIndependence: true,
		EnableModelReuse:   true,
	}
}

// ErrBudget is returned when the per-query conflict budget is exhausted.
var ErrBudget = errors.New("solver: conflict budget exhausted")

// Solver decides satisfiability of conjunctions of boolean expressions.
//
// A Solver is single-goroutine state (scratch buffers, the recent-model
// ring, Stats): parallel exploration gives each worker its own Solver and
// shares only the counterexample cache (Options.SharedCache) and the
// expression builder across workers.
type Solver struct {
	opts   Options
	cache  *Cache
	build  *expr.Builder // for simplification + substitution; nil disables both
	passes []Pass        // resolved preprocessing pipeline (see New)

	// deadline bounds each underlying SAT call in wall-clock time; zero
	// means none. See SetDeadline.
	deadline time.Time

	// recentModels is a small ring of models for the reuse fast path.
	recentModels [8]Model
	recentNext   int

	// keyIDs is the scratch buffer for query fingerprints (sorted,
	// de-duplicated expression IDs), reused across queries to keep the
	// cache-key computation allocation-free.
	keyIDs []uint64

	// keyFPs is the scratch buffer for stable-layer fingerprints
	// (stable.go), reused the same way.
	keyFPs []expr.FP

	// obs is the owning engine's observability lane (nil when disabled):
	// every non-trivial query emits a begin/end span with its class,
	// verdict, latency, and SAT-encoding delta.
	obs *obs.Observer

	// summaryScope marks queries issued while a call site is discharged
	// from the summary cache; they are counted in Stats.SummaryQueries and
	// attributed to the obs.QuerySummary class regardless of which internal
	// path (session, cache, one-shot) answered them. See SummaryScope.
	summaryScope bool

	Stats Stats
}

// SummaryScope toggles assume-summary query attribution. The engine brackets
// each summary application with SummaryScope(true)/SummaryScope(false) so
// the feasibility checks it issues are reported as a distinct query class
// (the cost the paper's Q_t estimate must see per discharged call site).
func (s *Solver) SummaryScope(on bool) { s.summaryScope = on }

// Observe attaches an observability lane; the engine calls this with its
// own lane so solver spans land on the right trace row.
func (s *Solver) Observe(o *obs.Observer) { s.obs = o }

// SetDeadline bounds every subsequent SAT call by the wall clock: a call
// still running at t returns ErrBudget. The engine propagates its
// exploration deadline here so one pathological query (giant merged-state
// ite stores) cannot stall the run past its time budget.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// New returns a solver with the given options.
func New(opts Options) *Solver {
	cache := opts.SharedCache
	if cache == nil {
		cache = newCexCache()
	}
	s := &Solver{opts: opts, cache: cache}
	if opts.Passes != nil {
		s.passes = opts.Passes
	} else {
		s.passes = []Pass{SimplifyPass(), SubstitutePass()}
		if opts.EnableIndependence {
			s.passes = append(s.passes, SlicePass())
		}
	}
	return s
}

// Passes returns the resolved preprocessing pipeline (testing/reporting).
func (s *Solver) Passes() []Pass { return s.passes }

// AttachBuilder enables equality-substitution simplification; the builder
// must be the one that constructed the query expressions.
func (s *Solver) AttachBuilder(b *expr.Builder) { s.build = b }

// CheckSat decides whether the conjunction of the constraints is
// satisfiable. On sat it returns a model covering at least the variables of
// the constraints. The constraint slice is not modified.
func (s *Solver) CheckSat(constraints []*expr.Expr) (bool, Model, error) {
	return s.CheckSatIn(nil, constraints)
}

// CheckSatIn is CheckSat with an optional incremental session. When the
// query extends a conjunct prefix the session has already blasted (at most
// one new conjunct), it is answered by the session's persistent SAT
// instance under assumptions; otherwise it falls back to the one-shot
// path, where the preprocessing pipeline (simplification, equality
// substitution, independence slicing — see passes.go) applies, and the
// bypass is recorded in Stats.SessionBypass. A nil session always takes
// the one-shot path.
func (s *Solver) CheckSatIn(sess *Session, constraints []*expr.Expr) (bool, Model, error) {
	return s.checkSatIn(sess, constraints, true)
}

// checkSatIn implements CheckSatIn; needModel=false lets verdict-only
// callers (MayBeTrue's branch-feasibility pattern, the hottest path in the
// engine) skip the defensive model copy on cache and model-reuse hits.
func (s *Solver) checkSatIn(sess *Session, constraints []*expr.Expr, needModel bool) (bool, Model, error) {
	s.Stats.Queries++

	// Concrete fast path: drop trivially-true conjuncts, fail fast on
	// trivially-false ones.
	live := make([]*expr.Expr, 0, len(constraints))
	for _, c := range constraints {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			return false, nil, nil
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		return true, Model{}, nil
	}

	// Constant folding answered everything above this line; those
	// pseudo-queries never reach the cache or SAT and stay untraced. From
	// here on, each decision is one observable query span.
	if s.summaryScope {
		s.Stats.SummaryQueries++
	}
	if s.obs.Active() {
		qid := s.obs.QueryBegin()
		t0 := time.Now()
		v0, c0 := s.Stats.SATVars, s.Stats.SATClauses
		res, m, class, err := s.decide(sess, live, needModel)
		if s.summaryScope {
			class = obs.QuerySummary
		}
		s.obs.QueryEnd(qid, class, res, err != nil, time.Since(t0),
			s.Stats.SATVars-v0, s.Stats.SATClauses-c0)
		return res, m, err
	}
	res, m, _, err := s.decide(sess, live, needModel)
	return res, m, err
}

// decide answers a non-trivial query (live is non-empty, free of constant
// conjuncts) and classifies how it was answered: obs.QueryCached for
// model-reuse and counterexample-cache hits, obs.QuerySession for the
// incremental assume-many path, obs.QueryOneShot for a from-scratch blast.
func (s *Solver) decide(sess *Session, live []*expr.Expr, needModel bool) (bool, Model, obs.QueryClass, error) {
	if s.opts.EnableModelReuse {
		if m := s.tryRecentModels(live); m != nil {
			s.Stats.ModelReuseHits++
			if !needModel {
				return true, nil, obs.QueryCached, nil
			}
			return true, cloneModel(m), obs.QueryCached, nil
		}
	}

	hash, ids := s.fingerprint(live)
	if s.opts.EnableCexCache {
		if res, m, ok := s.cache.lookup(hash, ids, needModel); ok {
			s.Stats.CacheHits++
			return res, m, obs.QueryCached, nil
		}
		if s.stableEnabled() {
			// Persistent layer: verdicts from earlier runs (or earlier
			// builder generations) keyed by content fingerprints. A hit is
			// promoted into the ID cache so repeats stay on the fast path.
			if res, m, ok := s.stableLookup(live); ok {
				s.Stats.StableHits++
				s.cache.insert(hash, ids, res, m)
				if res && s.opts.EnableModelReuse {
					s.remember(m)
				}
				if !needModel {
					return res, nil, obs.QueryCached, nil
				}
				return res, m, obs.QueryCached, nil
			}
		}
	}

	var (
		res   bool
		m     Model
		err   error
		class obs.QueryClass
	)
	if sess != nil && sess.misses(live) <= 1 {
		// Incremental path: blast-once/assume-many over the shared
		// prefix. Slicing and substitution would rewrite the conjuncts
		// and defeat reuse, so they are deliberately skipped here.
		s.Stats.SessionQueries++
		class = obs.QuerySession
		res, m, err = sess.check(live)
	} else {
		if sess != nil {
			s.Stats.SessionBypass++
			// Catch-up sync: register the conjuncts so the next query
			// over this prefix extends a known set again. Without
			// this, a lineage whose core was rebased (or whose early
			// queries were absorbed by the fast paths) would miss the
			// session permanently — misses() never shrinks on its own.
			for _, c := range live {
				sess.NoteConjunct(c)
			}
		}
		// Preprocessing pipeline (passes.go): simplification, equality
		// substitution, and independence slicing run in Options.Passes
		// order. Any bindings a substitution pass extracted rejoin the
		// model afterwards so callers still see values for the
		// substituted variables.
		class = obs.QueryOneShot
		q := s.runPasses(live)
		res, m, err = s.solveQuery(q)
		if err == nil && res && len(q.Binding) > 0 {
			if m == nil {
				m = Model{}
			}
			for v, val := range q.Binding {
				m[v] = val
			}
		}
	}
	if err != nil {
		return false, nil, class, err
	}
	if s.opts.EnableCexCache {
		s.cache.insert(hash, ids, res, m)
		if s.stableEnabled() {
			// Persist only completed verdicts (err == nil above): budget
			// and timeout unknowns must never enter the store.
			s.stableInsert(live, res, m)
		}
	}
	if res && s.opts.EnableModelReuse {
		s.remember(m)
	}
	return res, m, class, nil
}

// substituteEqualities rewrites the constraint set using the equalities it
// contains (KLEE's ConstraintManager simplification): a conjunct of the form
// `x = const` lets every other conjunct evaluate x concretely, which often
// collapses whole subtrees before bit-blasting. One pass only — enough for
// the dominant pattern (branch conditions pinning argv bytes).
func substituteEqualities(b *expr.Builder, constraints []*expr.Expr) ([]*expr.Expr, expr.Env) {
	binding := expr.Env{}
	for _, c := range constraints {
		switch {
		case c.Kind == expr.KEq:
			l, r := c.Kids[0], c.Kids[1]
			if l.Kind == expr.KVar && r.IsConst() {
				binding[l] = r.Val
			} else if r.Kind == expr.KVar && l.IsConst() {
				binding[r] = l.Val
			}
		case c.Kind == expr.KVar:
			// A bare boolean variable conjunct pins it to true
			// (the builder folds Eq(b, true) to b).
			binding[c] = 1
		case c.Kind == expr.KNot && c.Kids[0].Kind == expr.KVar:
			binding[c.Kids[0]] = 0
		}
	}
	if len(binding) == 0 {
		return constraints, nil
	}
	out := make([]*expr.Expr, len(constraints))
	memo := make(map[*expr.Expr]*expr.Expr)
	for i, c := range constraints {
		out[i] = substitute(b, c, binding, memo)
	}
	return out, binding
}

// substitute rebuilds e with bound variables replaced by constants. The memo
// is essential: hash-consed expressions are DAGs with heavy sharing (merged
// states especially), and an unmemoized walk is exponential in DAG depth.
func substitute(b *expr.Builder, e *expr.Expr, binding expr.Env, memo map[*expr.Expr]*expr.Expr) *expr.Expr {
	if !e.IsSymbolic() {
		return e
	}
	if r, ok := memo[e]; ok {
		return r
	}
	if e.Kind == expr.KVar {
		r := e
		if v, ok := binding[e]; ok {
			if e.Width == 0 {
				r = b.Bool(v != 0)
			} else {
				r = b.Const(v, e.Width)
			}
		}
		memo[e] = r
		return r
	}
	kids := make([]*expr.Expr, len(e.Kids))
	changed := false
	for i, k := range e.Kids {
		kids[i] = substitute(b, k, binding, memo)
		changed = changed || kids[i] != k
	}
	r := e
	if changed {
		// Rebuild through the Builder so folding and every rewrite-table
		// rule apply to the substituted node.
		r = b.Rebuild(e, kids)
	}
	memo[e] = r
	return r
}

// solveQuery blasts and solves a preprocessed query: each independent
// group separately when the slice pass partitioned it, the whole set at
// once otherwise. The conjunction is sat iff every group is.
//
// With a stable backend attached, each group is first looked up (and, once
// solved, persisted) at group granularity. Group verdicts are the
// near-repeat lever: two programs that differ in one routine still share
// most independence groups, so their fingerprints hit even though every
// whole-query fingerprint differs. This is also where "blasted clause
// groups" persist in spirit — CNF itself is rebuilt per SAT instance by
// design (Tseitin synthesis is cheap; the solving is not), so what the
// store carries across runs is each group's settled verdict.
func (s *Solver) solveQuery(q *Query) (bool, Model, error) {
	if q.Groups == nil {
		return s.checkSAT(q.Constraints)
	}
	model := Model{}
	stable := s.stableEnabled()
	for _, g := range q.Groups {
		if stable {
			if res, m, ok := s.stableLookup(g); ok {
				s.Stats.StableGroupHits++
				if !res {
					return false, nil, nil
				}
				for k, v := range m {
					model[k] = v
				}
				continue
			}
		}
		res, m, err := s.checkSAT(g)
		if err != nil {
			return false, nil, err
		}
		if stable {
			s.stableInsert(g, res, m)
		}
		if !res {
			return false, nil, nil
		}
		for k, v := range m {
			model[k] = v
		}
	}
	return true, model, nil
}

// checkSAT bit-blasts and runs CDCL.
func (s *Solver) checkSAT(constraints []*expr.Expr) (bool, Model, error) {
	s.Stats.SATCalls++
	start := time.Now()
	defer func() { s.Stats.SATTime += time.Since(start) }()

	ss := sat.New()
	ss.Budget = s.opts.ConflictBudget
	ss.Deadline = s.deadline
	bl := newBlaster(ss)
	for _, c := range constraints {
		bl.assertTrue(c)
	}
	s.Stats.SATVars += uint64(ss.NumVars())
	s.Stats.SATClauses += ss.NumClauses()
	switch ss.Solve() {
	case sat.Sat:
		m := Model{}
		for v := range bl.vars {
			m[v] = bl.modelValue(v)
		}
		return true, m, nil
	case sat.Unsat:
		return false, nil, nil
	default:
		s.Stats.Timeouts++
		return false, nil, ErrBudget
	}
}

// cloneModel returns an independent copy of a model. Fast paths hand models
// to callers that may merge bindings into them; defensive copies keep the
// cached originals immutable.
func cloneModel(m Model) Model { return maps.Clone(m) }

// tryRecentModels evaluates the constraints under recently found models. It
// returns the ring's own map — checkSatIn clones it before handing it to a
// caller that wants the model.
func (s *Solver) tryRecentModels(constraints []*expr.Expr) Model {
	for _, m := range s.recentModels {
		if m == nil {
			continue
		}
		if modelSatisfies(m, constraints) {
			return m
		}
	}
	return nil
}

func modelSatisfies(m Model, constraints []*expr.Expr) bool {
	env := expr.Env(m)
	for _, c := range constraints {
		if !expr.EvalBool(c, env) {
			return false
		}
	}
	return true
}

func (s *Solver) remember(m Model) {
	// Retain a copy: the caller owns the returned model and may mutate it.
	s.recentModels[s.recentNext] = cloneModel(m)
	s.recentNext = (s.recentNext + 1) % len(s.recentModels)
}

// --- Derived queries (KLEE's query flavors) ---

// MayBeTrue reports whether cond can be true under the path condition.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr) (bool, error) {
	return s.MayBeTrueIn(nil, pc, cond)
}

// MayBeTrueIn is MayBeTrue through an optional incremental session.
func (s *Solver) MayBeTrueIn(sess *Session, pc []*expr.Expr, cond *expr.Expr) (bool, error) {
	if cond.IsTrue() {
		return true, nil
	}
	if cond.IsFalse() {
		return false, nil
	}
	q := append(append(make([]*expr.Expr, 0, len(pc)+1), pc...), cond)
	res, _, err := s.checkSatIn(sess, q, false) // verdict only: skip model copies
	return res, err
}

// MustBeTrue reports whether cond holds on every solution of the path
// condition; notCond must be the negation of cond (the caller owns the
// expression builder).
func (s *Solver) MustBeTrue(pc []*expr.Expr, notCond *expr.Expr) (bool, error) {
	may, err := s.MayBeTrue(pc, notCond)
	return !may, err
}

// GetModel returns a satisfying assignment of the path condition, or nil if
// it is unsatisfiable.
func (s *Solver) GetModel(pc []*expr.Expr) (Model, error) {
	return s.GetModelIn(nil, pc)
}

// GetModelIn is GetModel through an optional incremental session.
func (s *Solver) GetModelIn(sess *Session, pc []*expr.Expr) (Model, error) {
	res, m, err := s.CheckSatIn(sess, pc)
	if err != nil || !res {
		return nil, err
	}
	return m, nil
}

// --- Independence slicing ---

// independentGroups partitions constraints into connected components of the
// "shares a variable" graph using a union-find over variables.
func independentGroups(constraints []*expr.Expr) [][]*expr.Expr {
	parent := make([]int, len(constraints))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	varOwner := map[*expr.Expr]int{} // variable -> first constraint index
	varsOf := map[*expr.Expr]bool{}
	for i, c := range constraints {
		for k := range varsOf {
			delete(varsOf, k)
		}
		c.Vars(varsOf)
		for v := range varsOf {
			if j, ok := varOwner[v]; ok {
				union(i, j)
			} else {
				varOwner[v] = i
			}
		}
	}
	groupsByRoot := map[int][]*expr.Expr{}
	var roots []int
	for i, c := range constraints {
		r := find(i)
		if _, ok := groupsByRoot[r]; !ok {
			roots = append(roots, r)
		}
		groupsByRoot[r] = append(groupsByRoot[r], c)
	}
	sort.Ints(roots)
	out := make([][]*expr.Expr, 0, len(roots))
	for _, r := range roots {
		out = append(out, groupsByRoot[r])
	}
	return out
}

// fingerprint canonicalizes the constraint set into the sorted,
// de-duplicated list of expression IDs plus its FNV-1a hash. IDs are
// builder-unique, so within one engine run the id list identifies the
// constraint set exactly; the cache stores the list alongside the hash and
// verifies it on lookup, so hash collisions cannot alias distinct queries.
// The returned slice is the solver's reusable scratch buffer — valid until
// the next fingerprint call; the cache copies it when it retains an entry.
func (s *Solver) fingerprint(constraints []*expr.Expr) (uint64, []uint64) {
	ids := s.keyIDs[:0]
	for _, c := range constraints {
		ids = append(ids, c.ID())
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// De-duplicate in place (the slice is sorted).
	out := ids[:0]
	var last uint64 = ^uint64(0)
	for _, id := range ids {
		if id == last {
			continue
		}
		last = id
		out = append(out, id)
	}
	s.keyIDs = out
	return fnvIDs(out), out
}

// fnvIDs hashes a sorted id list with FNV-1a over the ids' bytes.
func fnvIDs(ids []uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		for i := 0; i < 8; i++ {
			h ^= (id >> (8 * uint(i))) & 0xff
			h *= prime64
		}
	}
	return h
}
