package solver

// cexCache is the counterexample cache: it memoizes the result (and model,
// when sat) of previously solved constraint sets, keyed by the canonical
// query key. This mirrors KLEE's CexCachingSolver, which the paper's
// baseline relies on; merged states re-issue many structurally identical
// feasibility queries, so the hit rate directly shapes the measured
// trade-off between merging and solving.
type cexCache struct {
	entries map[string]cexEntry
	// Bounded size with coarse eviction: when the cache exceeds maxEntries
	// it is reset. Symbolic-execution workloads churn through query keys
	// as the path condition grows, so an LRU would mostly age out anyway;
	// the reset keeps memory bounded with O(1) bookkeeping.
	maxEntries int
}

type cexEntry struct {
	sat   bool
	model Model
}

const defaultCacheSize = 1 << 16

func newCexCache() *cexCache {
	return &cexCache{
		entries:    make(map[string]cexEntry, 1024),
		maxEntries: defaultCacheSize,
	}
}

func (c *cexCache) lookup(key string) (satisfiable bool, model Model, ok bool) {
	e, ok := c.entries[key]
	if !ok {
		return false, nil, false
	}
	return e.sat, e.model, true
}

func (c *cexCache) insert(key string, satisfiable bool, model Model) {
	if len(c.entries) >= c.maxEntries {
		c.entries = make(map[string]cexEntry, 1024)
	}
	c.entries[key] = cexEntry{sat: satisfiable, model: model}
}

// Len reports the number of cached queries (used by tests).
func (c *cexCache) Len() int { return len(c.entries) }
