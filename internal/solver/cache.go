package solver

import (
	"slices"
	"sync"
	"sync/atomic"

	"symmerge/internal/expr"
)

// Cache is the counterexample cache: it memoizes the result (and model,
// when sat) of previously solved constraint sets, keyed by the FNV-1a hash
// of the canonical query fingerprint (sorted, de-duplicated expression IDs).
// This mirrors KLEE's CexCachingSolver, which the paper's baseline relies
// on; merged states re-issue many structurally identical feasibility
// queries, so the hit rate directly shapes the measured trade-off between
// merging and solving.
//
// The cache is safe for concurrent use and may be shared by several Solvers
// (NewSharedCache): parallel exploration workers re-discover each other's
// verdicts, which is exactly the cross-worker reuse a sharded frontier
// creates. Entries are striped over independently locked shards by
// fingerprint hash, so workers contend only when they touch the same
// stripe; the aggregate hit/miss counters are atomics.
//
// Hash buckets store the full id list and verify it on lookup, so a hash
// collision degrades to a bucket scan, never to a wrong answer. Fingerprint
// IDs are builder-unique, so sharing a cache requires sharing the
// expression builder too (the parallel subsystem does both).
//
// Eviction is segment-based per shard: entries live in two generations.
// Inserts go to the current generation; when it fills to half the shard
// capacity, the previous generation (the older half) is dropped and the
// current one takes its place. Lookups hitting the old generation promote
// the entry, keeping hot queries alive across rotations. Compared to a full
// reset, a long run no longer falls off a periodic 0%-hit-rate cliff, and
// the bookkeeping stays O(1) amortized.
type Cache struct {
	shards [cacheShards]cacheShard

	// hits/misses aggregate lookup outcomes across all sharing solvers
	// (per-solver counts live in Solver.Stats).
	hits   atomic.Uint64
	misses atomic.Uint64

	// stable/fper, when attached (AttachStable, see stable.go), back the
	// ID-keyed cache with a persistent verdict store keyed by stable
	// content fingerprints; stableHits aggregates its hits.
	stable     StableBackend
	fper       *expr.Fingerprinter
	stableHits atomic.Uint64
}

// cacheShard is one independently locked stripe of the cache.
type cacheShard struct {
	mu       sync.Mutex
	cur, old map[uint64][]cexEntry
	curN     int // entries in cur (map len counts buckets, not entries)
	oldN     int
	segCap   int // rotation threshold: half the shard capacity
}

type cexEntry struct {
	ids   []uint64 // canonical fingerprint, for collision checking
	sat   bool
	model Model
}

const (
	defaultCacheSize = 1 << 16
	// cacheShards stripes the lock. 16 is plenty: lookups are short
	// (hash + id-list compare) and the engine's worker counts are small.
	cacheShards = 16
)

func newCexCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].cur = make(map[uint64][]cexEntry, 64)
		c.shards[i].old = make(map[uint64][]cexEntry)
		c.shards[i].segCap = defaultCacheSize / 2 / cacheShards
	}
	return c
}

// NewSharedCache returns a counterexample cache intended to be shared by
// several Solvers via Options.SharedCache. All methods are safe for
// concurrent use.
func NewSharedCache() *Cache { return newCexCache() }

// setSegCap overrides every shard's rotation threshold (testing knob).
func (c *Cache) setSegCap(n int) {
	for i := range c.shards {
		c.shards[i].segCap = n
	}
}

func (c *Cache) shardFor(hash uint64) *cacheShard {
	// The low bits index map buckets; pick high bits for the stripe so the
	// two partitions stay independent.
	return &c.shards[(hash>>48)%cacheShards]
}

// lookup returns the cached verdict for a fingerprint. When needModel is
// set, the returned model is a defensive copy (callers may mutate it without
// corrupting the cache); verdict-only callers skip the copy.
func (c *Cache) lookup(hash uint64, ids []uint64, needModel bool) (satisfiable bool, model Model, ok bool) {
	sh := c.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	handOut := func(e cexEntry) (bool, Model, bool) {
		c.hits.Add(1)
		if !needModel {
			return e.sat, nil, true
		}
		return e.sat, cloneModel(e.model), true
	}
	for _, e := range sh.cur[hash] {
		if slices.Equal(e.ids, ids) {
			return handOut(e)
		}
	}
	for i, e := range sh.old[hash] {
		if slices.Equal(e.ids, ids) {
			// Promote into the current generation so a hot entry
			// survives the next rotation — unless that generation is
			// already full (the entry stays a plain old-gen hit then,
			// keeping the total bounded by both segments).
			if sh.curN < sh.segCap {
				sh.promote(hash, i, e)
			}
			return handOut(e)
		}
	}
	c.misses.Add(1)
	return false, nil, false
}

// promote moves an old-generation entry into the current generation. The
// caller holds the shard lock.
func (sh *cacheShard) promote(hash uint64, i int, e cexEntry) {
	bucket := sh.old[hash]
	bucket[i] = bucket[len(bucket)-1]
	if len(bucket) == 1 {
		delete(sh.old, hash)
	} else {
		sh.old[hash] = bucket[:len(bucket)-1]
	}
	sh.oldN--
	sh.cur[hash] = append(sh.cur[hash], e)
	sh.curN++
}

// insert records a verdict. The ids slice and the model are copied: the
// caller keeps ownership of (and may reuse or mutate) both. Concurrent
// inserts of the same fingerprint may briefly duplicate an entry in a
// bucket; both copies carry the same verdict (the solver is deterministic
// on a fixed constraint set), so lookups stay correct and the duplicate
// ages out with its generation.
func (c *Cache) insert(hash uint64, ids []uint64, satisfiable bool, model Model) {
	stored := cexEntry{
		ids:   append([]uint64(nil), ids...),
		sat:   satisfiable,
		model: cloneModel(model),
	}
	sh := c.shardFor(hash)
	sh.mu.Lock()
	sh.cur[hash] = append(sh.cur[hash], stored)
	sh.curN++
	sh.maybeRotate()
	sh.mu.Unlock()
}

// maybeRotate drops the older half once the current generation fills. The
// caller holds the shard lock.
func (sh *cacheShard) maybeRotate() {
	if sh.curN < sh.segCap {
		return
	}
	sh.old = sh.cur
	sh.oldN = sh.curN
	sh.cur = make(map[uint64][]cexEntry, 64)
	sh.curN = 0
}

// Len reports the number of cached queries (used by tests).
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.curN + sh.oldN
		sh.mu.Unlock()
	}
	return n
}

// Hits returns the aggregate lookup-hit count across all sharing solvers.
func (c *Cache) Hits() uint64 { return c.hits.Load() }

// Misses returns the aggregate lookup-miss count across all sharing solvers.
func (c *Cache) Misses() uint64 { return c.misses.Load() }
