package solver

import "slices"

// cexCache is the counterexample cache: it memoizes the result (and model,
// when sat) of previously solved constraint sets, keyed by the FNV-1a hash
// of the canonical query fingerprint (sorted, de-duplicated expression IDs).
// This mirrors KLEE's CexCachingSolver, which the paper's baseline relies
// on; merged states re-issue many structurally identical feasibility
// queries, so the hit rate directly shapes the measured trade-off between
// merging and solving.
//
// Hash buckets store the full id list and verify it on lookup, so a hash
// collision degrades to a bucket scan, never to a wrong answer.
//
// Eviction is segment-based: entries live in two generations. Inserts go to
// the current generation; when it fills to half the cache capacity, the
// previous generation (the older half) is dropped and the current one takes
// its place. Lookups hitting the old generation promote the entry, keeping
// hot queries alive across rotations. Compared to the previous full reset,
// a long run no longer falls off a periodic 0%-hit-rate cliff, and the
// bookkeeping stays O(1) amortized.
type cexCache struct {
	cur, old map[uint64][]cexEntry
	curN     int // entries in cur (map len counts buckets, not entries)
	oldN     int
	segCap   int // rotation threshold: half the total capacity
}

type cexEntry struct {
	ids   []uint64 // canonical fingerprint, for collision checking
	sat   bool
	model Model
}

const defaultCacheSize = 1 << 16

func newCexCache() *cexCache {
	return &cexCache{
		cur:    make(map[uint64][]cexEntry, 1024),
		old:    make(map[uint64][]cexEntry),
		segCap: defaultCacheSize / 2,
	}
}

// lookup returns the cached verdict for a fingerprint. When needModel is
// set, the returned model is a defensive copy (callers may mutate it without
// corrupting the cache); verdict-only callers skip the copy.
func (c *cexCache) lookup(hash uint64, ids []uint64, needModel bool) (satisfiable bool, model Model, ok bool) {
	handOut := func(e cexEntry) (bool, Model, bool) {
		if !needModel {
			return e.sat, nil, true
		}
		return e.sat, cloneModel(e.model), true
	}
	for _, e := range c.cur[hash] {
		if slices.Equal(e.ids, ids) {
			return handOut(e)
		}
	}
	for i, e := range c.old[hash] {
		if slices.Equal(e.ids, ids) {
			// Promote into the current generation so a hot entry
			// survives the next rotation — unless that generation is
			// already full (the entry stays a plain old-gen hit then,
			// keeping the total bounded by both segments).
			if c.curN < c.segCap {
				c.promote(hash, i, e)
			}
			return handOut(e)
		}
	}
	return false, nil, false
}

// promote moves an old-generation entry into the current generation.
func (c *cexCache) promote(hash uint64, i int, e cexEntry) {
	bucket := c.old[hash]
	bucket[i] = bucket[len(bucket)-1]
	if len(bucket) == 1 {
		delete(c.old, hash)
	} else {
		c.old[hash] = bucket[:len(bucket)-1]
	}
	c.oldN--
	c.cur[hash] = append(c.cur[hash], e)
	c.curN++
}

// insert records a verdict. The ids slice and the model are copied: the
// caller keeps ownership of (and may reuse or mutate) both.
func (c *cexCache) insert(hash uint64, ids []uint64, satisfiable bool, model Model) {
	stored := cexEntry{
		ids:   append([]uint64(nil), ids...),
		sat:   satisfiable,
		model: cloneModel(model),
	}
	c.cur[hash] = append(c.cur[hash], stored)
	c.curN++
	c.maybeRotate()
}

// maybeRotate drops the older half once the current generation fills.
func (c *cexCache) maybeRotate() {
	if c.curN < c.segCap {
		return
	}
	c.old = c.cur
	c.oldN = c.curN
	c.cur = make(map[uint64][]cexEntry, 1024)
	c.curN = 0
}

// Len reports the number of cached queries (used by tests).
func (c *cexCache) Len() int { return c.curN + c.oldN }
