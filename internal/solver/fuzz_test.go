package solver

// Randomized whole-pipeline fuzz: random expression trees over small
// bitvector variables are checked against brute-force enumeration of every
// assignment. This exercises arbitrary operator nestings that the pinned
// arithmetic tests cannot cover, end to end through the bit-blaster and the
// CDCL core, for both satisfiable and unsatisfiable instances.

import (
	"math/rand"
	"testing"

	"symmerge/internal/expr"
)

// exprGen builds random expression trees over two 4-bit variables.
type exprGen struct {
	rng  *rand.Rand
	b    *expr.Builder
	x, y *expr.Expr
}

func (g *exprGen) tree(depth int) *expr.Expr {
	if depth == 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return g.x
		case 1:
			return g.y
		default:
			return g.b.Const(uint64(g.rng.Intn(16)), 4)
		}
	}
	l := g.tree(depth - 1)
	r := g.tree(depth - 1)
	switch g.rng.Intn(10) {
	case 0:
		return g.b.Add(l, r)
	case 1:
		return g.b.Sub(l, r)
	case 2:
		return g.b.Mul(l, r)
	case 3:
		return g.b.BAnd(l, r)
	case 4:
		return g.b.BOr(l, r)
	case 5:
		return g.b.BXor(l, r)
	case 6:
		return g.b.UDiv(l, r)
	case 7:
		return g.b.URem(l, r)
	case 8:
		return g.b.Ite(g.cond(1), l, r)
	default:
		return g.b.BNot(l)
	}
}

func (g *exprGen) cond(depth int) *expr.Expr {
	l := g.tree(depth)
	r := g.tree(depth)
	switch g.rng.Intn(5) {
	case 0:
		return g.b.Eq(l, r)
	case 1:
		return g.b.Ne(l, r)
	case 2:
		return g.b.Ult(l, r)
	case 3:
		return g.b.Slt(l, r)
	default:
		return g.b.Ule(l, r)
	}
}

// TestFuzzRandomTreesAgainstBruteForce: for each random boolean condition,
// enumerate all 256 assignments of (x, y); the solver's verdict must match,
// and any model it returns must satisfy the condition under Eval.
func TestFuzzRandomTreesAgainstBruteForce(t *testing.T) {
	b := expr.NewBuilder()
	g := &exprGen{rng: rand.New(rand.NewSource(20120611)), b: b,
		x: b.Var("x", 4), y: b.Var("y", 4)}
	for _, opts := range []Options{{}, DefaultOptions()} {
		s := New(opts)
		sat, unsat := 0, 0
		for iter := 0; iter < 300; iter++ {
			cond := g.cond(3)
			want := false
			for xv := uint64(0); xv < 16 && !want; xv++ {
				for yv := uint64(0); yv < 16; yv++ {
					if expr.EvalBool(cond, expr.Env{g.x: xv, g.y: yv}) {
						want = true
						break
					}
				}
			}
			got, model, err := s.CheckSat([]*expr.Expr{cond})
			if err != nil {
				t.Fatalf("iter %d: solver error: %v", iter, err)
			}
			if got != want {
				t.Fatalf("iter %d: solver says sat=%v, brute force says %v for %s",
					iter, got, want, cond)
			}
			if got {
				sat++
				if !expr.EvalBool(cond, expr.Env(model)) {
					t.Fatalf("iter %d: model %v does not satisfy %s", iter, model, cond)
				}
			} else {
				unsat++
			}
		}
		// The generator must exercise both outcomes to mean anything
		// (random conditions are mostly satisfiable, so a handful of
		// unsat instances is expected and sufficient).
		if sat < 30 || unsat < 10 {
			t.Fatalf("lopsided fuzz: %d sat, %d unsat", sat, unsat)
		}
	}
}

// TestFuzzConjunctionsAgainstBruteForce stresses multi-conjunct instances —
// the shape of real path conditions — including the independence slicer's
// handling of constraints sharing variables.
func TestFuzzConjunctionsAgainstBruteForce(t *testing.T) {
	b := expr.NewBuilder()
	g := &exprGen{rng: rand.New(rand.NewSource(42)), b: b,
		x: b.Var("x", 4), y: b.Var("y", 4)}
	s := New(DefaultOptions())
	for iter := 0; iter < 150; iter++ {
		n := 1 + g.rng.Intn(4)
		cs := make([]*expr.Expr, n)
		for i := range cs {
			cs[i] = g.cond(2)
		}
		want := false
		for xv := uint64(0); xv < 16 && !want; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				env := expr.Env{g.x: xv, g.y: yv}
				all := true
				for _, c := range cs {
					if !expr.EvalBool(c, env) {
						all = false
						break
					}
				}
				if all {
					want = true
					break
				}
			}
		}
		got, model, err := s.CheckSat(cs)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: sat=%v, brute force %v", iter, got, want)
		}
		if got {
			env := expr.Env(model)
			for ci, c := range cs {
				if !expr.EvalBool(c, env) {
					t.Fatalf("iter %d: model violates conjunct %d: %s", iter, ci, c)
				}
			}
		}
	}
}

// TestDeepSharedDAGSubstitution is a regression test: equality substitution
// must walk hash-consed expressions as DAGs, not trees. The constraint below
// has ~60 levels of maximal sharing (each level references the previous one
// twice); an unmemoized walk would take 2^60 steps.
func TestDeepSharedDAGSubstitution(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	e := b.Add(x, y)
	for i := 0; i < 60; i++ {
		e = b.Add(b.Mul(e, e), b.Const(uint64(i+1), 32))
	}
	s := New(DefaultOptions())
	// The x = 3 conjunct triggers substitution into the deep DAG.
	cs := []*expr.Expr{
		b.Eq(x, b.Const(3, 32)),
		b.Eq(b.BAnd(e, b.Const(0, 32)), b.Const(0, 32)), // trivially true, keeps e alive
	}
	ok, _, err := s.CheckSat(cs)
	if err != nil || !ok {
		t.Fatalf("deep DAG query: ok=%v err=%v", ok, err)
	}
}

// TestFuzzOptimizedMatchesPlain: the counterexample cache, independence
// slicing and model reuse are pure optimizations — on an identical query
// stream, verdicts must match a plain solver's exactly.
func TestFuzzOptimizedMatchesPlain(t *testing.T) {
	b := expr.NewBuilder()
	g := &exprGen{rng: rand.New(rand.NewSource(7)), b: b,
		x: b.Var("x", 4), y: b.Var("y", 4)}
	plain := New(Options{})
	opt := New(DefaultOptions())
	// Repeats and supersets make the caches actually fire.
	var history []*expr.Expr
	for iter := 0; iter < 200; iter++ {
		var cs []*expr.Expr
		if len(history) > 0 && g.rng.Intn(2) == 0 {
			cs = append(cs, history[g.rng.Intn(len(history))])
		}
		c := g.cond(2)
		history = append(history, c)
		cs = append(cs, c)
		ok1, _, err1 := plain.CheckSat(cs)
		ok2, _, err2 := opt.CheckSat(cs)
		if err1 != nil || err2 != nil {
			t.Fatalf("iter %d: errors %v / %v", iter, err1, err2)
		}
		if ok1 != ok2 {
			t.Fatalf("iter %d: plain=%v optimized=%v for %v", iter, ok1, ok2, cs)
		}
	}
}
